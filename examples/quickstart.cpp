// Quickstart: build a Naru estimator over a table and ask it questions.
//
//   1. load (or here: synthesize) a relation,
//   2. train an autoregressive likelihood model on its tuples
//      (unsupervised -- no queries, no feedback, just data),
//   3. estimate selectivities of range/equality predicates with
//      progressive sampling, and compare against the exact answer.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/made.h"
#include "core/naru_estimator.h"
#include "core/trainer.h"
#include "data/datasets.h"
#include "query/executor.h"
#include "query/metrics.h"

using namespace naru;

int main() {
  // --- 1. A relation. Swap in LoadTableFromCsv(...) for your own data. ---
  Table table = MakeDmvLike(/*rows=*/30000, /*seed=*/1);
  std::printf("table '%s': %zu rows x %zu cols, joint space 10^%.1f\n",
              table.name().c_str(), table.num_rows(), table.num_columns(),
              table.Log10JointSpaceSize());

  // --- 2. Train the density model (maximum likelihood over tuples). ---
  std::vector<size_t> domains;
  for (size_t c = 0; c < table.num_columns(); ++c) {
    domains.push_back(table.column(c).DomainSize());
  }
  MadeModel::Config mcfg;
  mcfg.hidden_sizes = {128, 128, 128};
  mcfg.encoder.embed_dim = 32;  // embedding for large domains (§4.2)
  MadeModel model(domains, mcfg);

  TrainerConfig tcfg;
  tcfg.epochs = 8;
  tcfg.verbose = false;
  Trainer trainer(&model, tcfg);
  const auto nll_curve = trainer.Train(table);
  std::printf("trained %zu epochs: NLL %.2f -> %.2f bits/tuple, model %.1f KB\n",
              nll_curve.size(), nll_curve.front(), nll_curve.back(),
              model.SizeBytes() / 1024.0);

  // --- 3. Ask for selectivities. ---
  NaruEstimatorConfig ncfg;
  ncfg.num_samples = 2000;  // progressive sample paths (§5.1)
  NaruEstimator estimator(&model, ncfg, model.SizeBytes());

  // SELECT COUNT(*) WHERE reg_class <= 30 AND state = <s> AND rev_ind = 1
  const size_t reg_class = table.ColumnIndex("reg_class").ValueOrDie();
  const size_t state = table.ColumnIndex("state").ValueOrDie();
  const size_t rev_ind = table.ColumnIndex("rev_ind").ValueOrDie();
  std::vector<Predicate> preds = {
      {reg_class, CompareOp::kLe, 30, 0, {}},
      {state, CompareOp::kEq, table.column(state).code(0), 0, {}},
      {rev_ind, CompareOp::kEq, 1, 0, {}},
  };
  Query query(table, preds);

  const double est_sel = estimator.EstimateSelectivity(query);
  const double true_sel = ExecuteSelectivity(table, query);
  const double n = static_cast<double>(table.num_rows());
  std::printf("\nquery: %s\n", query.ToString(table).c_str());
  std::printf("  estimated cardinality: %.0f\n", est_sel * n);
  std::printf("  actual cardinality:    %.0f\n", true_sel * n);
  std::printf("  q-error:               %.2fx\n",
              QError(est_sel * n, true_sel * n));

  // --- 4. Or ask in batches: EstimateBatch serves many queries through ---
  // --- one engine (shared workspaces, caches, threads).               ---
  std::vector<Query> batch;
  batch.push_back(query);
  batch.push_back(Query(table, {{reg_class, CompareOp::kLe, 30, 0, {}}}));
  batch.push_back(Query(table, {{rev_ind, CompareOp::kEq, 1, 0, {}}}));
  std::vector<double> batch_sels;
  estimator.EstimateBatch(batch, &batch_sels);
  const auto batch_truth = ExecuteSelectivities(table, batch);
  std::printf("\nbatched (%zu queries):\n", batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    std::printf("  est %8.0f  actual %8.0f  q-error %.2fx\n",
                batch_sels[i] * n, batch_truth[i] * n,
                QError(batch_sels[i] * n, batch_truth[i] * n));
  }
  return 0;
}
