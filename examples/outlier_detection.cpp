// Example: likelihood-based outlier detection (§8, future-work application).
//
// A trained Naru model assigns every tuple a log-likelihood under the
// learned joint distribution. Tuples far below the typical likelihood are
// statistical outliers -- candidate dirty records. This example trains a
// model on a clean Conviva-A-like table, injects corrupted rows (random
// values breaking the column correlations), and shows that ranking by
// model log-likelihood separates the corrupted rows from the clean ones.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/entropy.h"
#include "core/made.h"
#include "core/trainer.h"
#include "data/datasets.h"
#include "util/random.h"

using namespace naru;

int main() {
  Table clean = MakeConvivaALike(20000, 11);
  std::vector<size_t> domains;
  for (size_t c = 0; c < clean.num_columns(); ++c) {
    domains.push_back(clean.column(c).DomainSize());
  }

  MadeModel::Config mcfg;
  mcfg.hidden_sizes = {128, 128, 128};
  mcfg.encoder.embed_dim = 32;
  MadeModel model(domains, mcfg);
  TrainerConfig tcfg;
  tcfg.epochs = 10;
  Trainer trainer(&model, tcfg);
  trainer.Train(clean);

  // Score a mixed batch: 500 clean rows + 50 corrupted rows whose cells
  // are drawn independently at random (correlations destroyed).
  constexpr size_t kClean = 500;
  constexpr size_t kDirty = 50;
  Rng rng(3);
  IntMatrix batch(kClean + kDirty, clean.num_columns());
  for (size_t r = 0; r < kClean; ++r) {
    clean.GetRowCodes(rng.UniformInt(clean.num_rows()), batch.Row(r));
  }
  for (size_t r = kClean; r < kClean + kDirty; ++r) {
    for (size_t c = 0; c < clean.num_columns(); ++c) {
      batch.At(r, c) = static_cast<int32_t>(rng.UniformInt(domains[c]));
    }
  }

  std::vector<double> log_probs;
  model.LogProbRows(batch, &log_probs);

  // Rank ascending: the lowest-likelihood rows should be the dirty ones.
  std::vector<size_t> order(log_probs.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return log_probs[a] < log_probs[b];
  });

  size_t dirty_in_top = 0;
  for (size_t i = 0; i < kDirty; ++i) {
    if (order[i] >= kClean) ++dirty_in_top;
  }
  std::printf("flagged the %zu lowest-likelihood tuples: %zu/%zu are truly "
              "corrupted (precision %.0f%%)\n",
              kDirty, dirty_in_top, kDirty,
              100.0 * static_cast<double>(dirty_in_top) / kDirty);

  double clean_avg = 0;
  double dirty_avg = 0;
  for (size_t i = 0; i < kClean; ++i) clean_avg += log_probs[i];
  for (size_t i = kClean; i < kClean + kDirty; ++i) {
    dirty_avg += log_probs[i];
  }
  std::printf("mean log-likelihood: clean %.1f nats vs corrupted %.1f nats\n",
              clean_avg / kClean, dirty_avg / kDirty);
  return 0;
}
