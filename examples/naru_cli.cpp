// naru_cli: train and query Naru estimators from the command line.
//
//   naru_cli train <data.csv> <model.bundle> [epochs]
//       Loads a CSV (header row, type-inferred columns), trains a MADE
//       model by maximum likelihood, writes a self-describing bundle.
//
//   naru_cli estimate <data.csv> <model.bundle> "<predicates>" [samples]
//       Reopens the bundle and estimates the selectivity/cardinality of a
//       conjunction like:  "city=SF AND price<=100 AND weight>10".
//       Literals are matched through each column's dictionary (ordered
//       domains, so range literals need not be present in the data).
//
//   naru_cli truth <data.csv> "<predicates>"
//       Exact answer by scanning (for comparison).
//
//   naru_cli serve <data.csv> <model.bundle> <queries.txt> [threads]
//       Serves a whole file of conjunctions (one per line) through the
//       batched InferenceEngine and prints one selectivity per line.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "core/bundle.h"
#include "core/naru_estimator.h"
#include "core/trainer.h"
#include "data/csv_table.h"
#include "query/executor.h"
#include "query/compound.h"
#include "query/parser.h"
#include "serve/inference_engine.h"
#include "util/string_util.h"

using namespace naru;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  naru_cli train <data.csv> <model.bundle> [epochs]\n"
               "  naru_cli estimate <data.csv> <model.bundle> \"<preds>\" "
               "[samples]\n"
               "  naru_cli truth <data.csv> \"<preds>\"\n"
               "  naru_cli serve <data.csv> <model.bundle> <queries.txt> "
               "[threads]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string cmd = argv[1];
  const std::string csv_path = argv[2];

  auto table_result = LoadTableFromCsv(csv_path, "table");
  if (!table_result.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 table_result.status().ToString().c_str());
    return 1;
  }
  const Table& table = table_result.ValueOrDie();
  std::fprintf(stderr, "# loaded %zu rows x %zu cols from %s\n",
               table.num_rows(), table.num_columns(), csv_path.c_str());

  if (cmd == "train") {
    if (argc < 4) return Usage();
    const size_t epochs =
        argc >= 5 ? static_cast<size_t>(std::atoll(argv[4])) : 12;
    std::vector<size_t> domains;
    for (size_t c = 0; c < table.num_columns(); ++c) {
      domains.push_back(table.column(c).DomainSize());
    }
    MadeModel::Config cfg;
    MadeModel model(domains, cfg);
    TrainerConfig tcfg;
    tcfg.epochs = epochs;
    tcfg.verbose = true;
    Trainer trainer(&model, tcfg);
    trainer.Train(table);
    const Status st = SaveModelBundle(argv[3], &model);
    if (!st.ok()) {
      std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("saved %s (%.1f KB)\n", argv[3],
                model.SizeBytes() / 1024.0);
    return 0;
  }

  if (cmd == "estimate") {
    if (argc < 5) return Usage();
    auto model = LoadModelBundle(argv[3]);
    if (!model.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   model.status().ToString().c_str());
      return 1;
    }
    auto disjuncts = ParseDisjunction(table, argv[4]);
    if (!disjuncts.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   disjuncts.status().ToString().c_str());
      return 1;
    }
    NaruEstimatorConfig ncfg;
    ncfg.num_samples =
        argc >= 6 ? static_cast<size_t>(std::atoll(argv[5])) : 2000;
    MadeModel* m = model.ValueOrDie().get();
    NaruEstimator est(m, ncfg, m->SizeBytes());
    // OR clauses evaluate through inclusion-exclusion (§2.2).
    const double sel = EstimateDisjunction(&est, disjuncts.ValueOrDie());
    std::printf("selectivity %.6g  cardinality %.0f\n", sel,
                sel * static_cast<double>(table.num_rows()));
    return 0;
  }

  if (cmd == "serve") {
    if (argc < 5) return Usage();
    auto model = LoadModelBundle(argv[3]);
    if (!model.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   model.status().ToString().c_str());
      return 1;
    }
    std::ifstream in(argv[4]);
    if (!in) {
      std::fprintf(stderr, "error: cannot open %s\n", argv[4]);
      return 1;
    }
    std::vector<Query> queries;
    std::string line;
    size_t lineno = 0;
    while (std::getline(in, line)) {
      ++lineno;
      if (line.empty() || line[0] == '#') continue;
      auto disjuncts = ParseDisjunction(table, line);
      if (!disjuncts.ok()) {
        std::fprintf(stderr, "error: line %zu: %s\n", lineno,
                     disjuncts.status().ToString().c_str());
        return 1;
      }
      if (disjuncts.ValueOrDie().size() != 1) {
        std::fprintf(stderr, "error: line %zu must be one conjunction\n",
                     lineno);
        return 1;
      }
      queries.push_back(disjuncts.ValueOrDie()[0]);
    }
    MadeModel* m = model.ValueOrDie().get();
    NaruEstimator est(m, NaruEstimatorConfig{}, m->SizeBytes());
    InferenceEngineConfig ecfg;
    const long long threads = argc >= 6 ? std::atoll(argv[5]) : 0;
    if (threads < 0 || threads > 256) {
      std::fprintf(stderr, "error: threads must be in [0, 256]\n");
      return 1;
    }
    ecfg.num_threads = static_cast<size_t>(threads);
    InferenceEngine engine(ecfg);
    std::vector<double> sels;
    engine.EstimateBatch(&est, queries, &sels);
    for (size_t i = 0; i < queries.size(); ++i) {
      std::printf("%.6g\t%.0f\t%s\n", sels[i],
                  sels[i] * static_cast<double>(table.num_rows()),
                  queries[i].ToString(table).c_str());
    }
    const auto stats = engine.stats();
    std::fprintf(stderr, "# served %zu queries (%zu sampled, %zu cached)\n",
                 stats.queries, stats.sampled, stats.memo_hits);
    return 0;
  }

  if (cmd == "truth") {
    if (argc < 4) return Usage();
    auto disjuncts = ParseDisjunction(table, argv[3]);
    if (!disjuncts.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   disjuncts.status().ToString().c_str());
      return 1;
    }
    const double sel =
        ExecuteDisjunctionSelectivity(table, disjuncts.ValueOrDie());
    std::printf("cardinality %.0f  selectivity %.6g\n",
                sel * static_cast<double>(table.num_rows()), sel);
    return 0;
  }
  return Usage();
}
