// naru_cli: train and query Naru estimators from the command line.
//
//   naru_cli train <data.csv> <model.bundle> [epochs]
//       Loads a CSV (header row, type-inferred columns), trains a MADE
//       model by maximum likelihood, writes a self-describing bundle.
//
//   naru_cli estimate <data.csv> <model.bundle> "<predicates>" [samples]
//       Reopens the bundle and estimates the selectivity/cardinality of a
//       conjunction like:  "city=SF AND price<=100 AND weight>10".
//       Literals are matched through each column's dictionary (ordered
//       domains, so range literals need not be present in the data).
//
//   naru_cli truth <data.csv> "<predicates>"
//       Exact answer by scanning (for comparison).
//
//   naru_cli serve <data.csv> <model.bundle> <queries.txt|-> [threads]
//       Serves conjunctions (one per line; `-` reads stdin) through the
//       serving engine and prints one result line per query.
//
//       Default mode reads the whole input and answers it as one blocking
//       EstimateBatch. With --async the CLI becomes a real accept loop:
//       every line is Submit()ed to the streaming AsyncEngine the moment
//       it is read, micro-batching happens in the background, and results
//       stream out in submission order as they complete.
//
//       Requests flow through the typed serving API (serve/request.h): a
//       line may carry, before the predicates, any of
//         @<ms>    arrival timestamp (milliseconds since serve start);
//                  --async replays recorded arrival times faithfully and
//                  reports per-query latency percentiles
//         ^high | ^low | ^normal
//                  priority class: the async dispatcher flushes pending
//                  work highest class first instead of pure FIFO
//         ~<ms>    soft deadline, milliseconds from submission; a request
//                  whose deadline expires before dispatch is SHED and its
//                  result line reports DeadlineExceeded instead of a value
//       e.g.  `@1250 ^high ~5 city=SF AND price<=100`. Shed or failed
//       requests print `NA  NA  <query>  # <status>` so the output stays
//       one line per request.
//
//       Both modes print full EngineStats (cache hit/miss/eviction
//       counters, plan-tree sizes/depth/fanout, prefix-share ratio,
//       workspace churn) on stderr at exit — including on SIGINT, which
//       winds the loop down cleanly instead of discarding the counters.
//
//   naru_cli serve <data.csv> <model.bundle> --listen host:port [--tenant N]
//       Network server: registers the model as one tenant in a
//       ModelRegistry and serves it over TCP (net/server.h). SIGINT
//       drains gracefully — in-flight requests resolve and flush before
//       the socket closes.
//
//   naru_cli serve <data.csv> <queries.txt|-> --connect host:port [--tenant N]
//       Network client: parses the SAME trace lines (tokens below) and
//       sends them to a --listen server instead of estimating locally.
//       Output is line-for-line identical to in-process serving; an
//       admission-shed response additionally prints the server's
//       `retry in <N> ms` back-off hint.
//
//       Serving knobs (flags map onto NARU_* env vars, see docs/SERVING.md):
//         --async            stream through AsyncEngine (accept loop)
//         --max-batch N      async micro-batch flush size   (default 64)
//         --max-wait-ms X    async micro-batch deadline     (default 2.0)
//         --max-pending N    admission control: bound the async pending
//                            queue; overflow sheds the lowest priority
//                            class first with a typed ResourceExhausted
//                            result line (default 0 = unbounded)
//         --cache-budget-mb N  per-model result-cache budget (default 4)
//         --group-width auto|N plan-tree fork fan-out cap (default auto:
//                            width-aware from model width x kernel)
//
//       Flags may appear anywhere, but a bare `--flag` consumes a
//       following non-flag token as its value — place flags after the
//       positional arguments or write `--flag=value`.
#include <csignal>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <future>
#include <iostream>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/bundle.h"
#include "core/naru_estimator.h"
#include "core/trainer.h"
#include "data/csv_table.h"
#include "net/client.h"
#include "net/registry.h"
#include "net/server.h"
#include "query/executor.h"
#include "query/compound.h"
#include "query/parser.h"
#include "serve/async_engine.h"
#include "serve/inference_engine.h"
#include "serve/request.h"
#include "serve/trace_format.h"
#include "tensor/kernel.h"
#include "util/env_config.h"
#include "util/quantile.h"
#include "util/string_util.h"

using namespace naru;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  naru_cli train <data.csv> <model.bundle> [epochs]\n"
               "  naru_cli estimate <data.csv> <model.bundle> \"<preds>\" "
               "[samples]\n"
               "  naru_cli truth <data.csv> \"<preds>\"\n"
               "  naru_cli serve <data.csv> <model.bundle> <queries.txt|-> "
               "[threads]\n"
               "  naru_cli serve <data.csv> <model.bundle> --listen "
               "host:port [--tenant NAME]\n"
               "  naru_cli serve <data.csv> <queries.txt|-> --connect "
               "host:port [--tenant NAME]\n"
               "    serve flags: --async --max-batch N --max-wait-ms X "
               "--max-pending N --cache-budget-mb N\n"
               "    estimate/serve: --kernel scalar|simd|simd_int8 "
               "(inference kernel; default scalar)\n"
               "    trace line prefix: @<ms> arrival, ^high|^low priority, "
               "~<ms> deadline\n");
  return 2;
}

/// Splits argv into positional arguments (returned, argv[0] first) and
/// `--flag [value]` pairs, which are applied onto the NARU_* environment
/// through ApplyFlagOverrides so every knob is reachable from the CLI.
std::vector<char*> ExtractPositionals(int argc, char** argv) {
  std::vector<char*> positionals{argv[0]};
  std::vector<char*> flags{argv[0]};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0 && arg.size() > 2) {
      flags.push_back(argv[i]);
      if (arg.find('=') == std::string::npos && i + 1 < argc &&
          std::string(argv[i + 1]).rfind("--", 0) != 0) {
        flags.push_back(argv[++i]);  // `--flag value` form
      }
    } else {
      positionals.push_back(argv[i]);
    }
  }
  if (!ApplyFlagOverrides(static_cast<int>(flags.size()), flags.data())) {
    std::exit(2);
  }
  return positionals;
}

/// Set by SIGINT. `serve` installs the handler WITHOUT SA_RESTART so a
/// blocking getline on stdin returns early (EINTR fails the stream); both
/// serve loops then wind down normally and print EngineStats on the way
/// out — Ctrl-C on a live accept loop reports the serving counters
/// instead of discarding them.
/// Resolves --kernel / NARU_KERNEL (default scalar); exits 2 on an
/// unknown name so a typo can't silently serve the scalar path.
KernelKind CliKernel() {
  const std::string name = GetEnvString("NARU_KERNEL", "scalar");
  KernelKind kernel = KernelKind::kScalar;
  if (!ParseKernelKind(name, &kernel)) {
    std::fprintf(stderr,
                 "error: unknown --kernel '%s' "
                 "(want scalar | simd | simd_int8)\n",
                 name.c_str());
    std::exit(2);
  }
  return kernel;
}

volatile std::sig_atomic_t g_interrupted = 0;

void HandleSigint(int) { g_interrupted = 1; }

void InstallSigintHandler() {
  struct sigaction sa = {};
  sa.sa_handler = HandleSigint;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: interrupt blocking reads
  sigaction(SIGINT, &sa, nullptr);
}

/// Waits until `at_ms` after `trace_start` in short slices so SIGINT is
/// honored promptly (sleep_until retries on EINTR). Returns false when
/// interrupted. Shared by the async and --connect replay loops.
bool ReplayWait(std::chrono::steady_clock::time_point trace_start,
                double at_ms) {
  const auto target =
      trace_start +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double, std::milli>(at_ms));
  while (!g_interrupted) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= target) return true;
    std::this_thread::sleep_for(
        std::min<std::chrono::steady_clock::duration>(
            target - now, std::chrono::milliseconds(50)));
  }
  return false;
}

}  // namespace

int main(int raw_argc, char** raw_argv) {
  std::vector<char*> args = ExtractPositionals(raw_argc, raw_argv);
  const int argc = static_cast<int>(args.size());
  char** argv = args.data();
  if (argc < 3) return Usage();
  const std::string cmd = argv[1];
  const std::string csv_path = argv[2];

  auto table_result = LoadTableFromCsv(csv_path, "table");
  if (!table_result.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 table_result.status().ToString().c_str());
    return 1;
  }
  const Table& table = table_result.ValueOrDie();
  std::fprintf(stderr, "# loaded %zu rows x %zu cols from %s\n",
               table.num_rows(), table.num_columns(), csv_path.c_str());

  if (cmd == "train") {
    if (argc < 4) return Usage();
    const size_t epochs =
        argc >= 5 ? static_cast<size_t>(std::atoll(argv[4])) : 12;
    std::vector<size_t> domains;
    for (size_t c = 0; c < table.num_columns(); ++c) {
      domains.push_back(table.column(c).DomainSize());
    }
    MadeModel::Config cfg;
    MadeModel model(domains, cfg);
    TrainerConfig tcfg;
    tcfg.epochs = epochs;
    tcfg.verbose = true;
    Trainer trainer(&model, tcfg);
    trainer.Train(table);
    const Status st = SaveModelBundle(argv[3], &model);
    if (!st.ok()) {
      std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("saved %s (%.1f KB)\n", argv[3],
                model.SizeBytes() / 1024.0);
    return 0;
  }

  if (cmd == "estimate") {
    if (argc < 5) return Usage();
    auto model = LoadModelBundle(argv[3]);
    if (!model.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   model.status().ToString().c_str());
      return 1;
    }
    auto disjuncts = ParseDisjunction(table, argv[4]);
    if (!disjuncts.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   disjuncts.status().ToString().c_str());
      return 1;
    }
    NaruEstimatorConfig ncfg;
    ncfg.num_samples =
        argc >= 6 ? static_cast<size_t>(std::atoll(argv[5])) : 2000;
    ncfg.kernel = CliKernel();
    MadeModel* m = model.ValueOrDie().get();
    NaruEstimator est(m, ncfg, m->SizeBytes());
    // OR clauses evaluate through inclusion-exclusion (§2.2).
    const double sel = EstimateDisjunction(&est, disjuncts.ValueOrDie());
    std::printf("selectivity %.6g  cardinality %.0f\n", sel,
                sel * static_cast<double>(table.num_rows()));
    return 0;
  }

  if (cmd == "serve") {
    const std::string listen_spec = GetEnvString("NARU_LISTEN", "");
    const std::string connect_spec = GetEnvString("NARU_CONNECT", "");
    const std::string tenant_name = GetEnvString("NARU_TENANT", "default");
    if (!listen_spec.empty() && !connect_spec.empty()) {
      std::fprintf(stderr,
                   "error: --listen and --connect are mutually exclusive\n");
      return 2;
    }
    const double num_rows = static_cast<double>(table.num_rows());
    InstallSigintHandler();

    if (!connect_spec.empty()) {
      // Network client: serve <data.csv> <queries.txt|-> --connect
      // host:port [--tenant NAME]. The model stays on the server — the
      // client needs only the table schema to parse predicates into wire
      // regions, and the SAME trace tokens (`@<ms>`, `^<class>`, `~<ms>`)
      // mean the same thing they do in-process: the deadline crosses the
      // wire as a relative budget the server pins to its own clock.
      if (argc < 4) return Usage();
      std::string host;
      uint16_t port = 0;
      Status st = ParseHostPort(connect_spec, &host, &port);
      if (!st.ok()) {
        std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
        return 2;
      }
      NetClient client;
      st = client.Connect(host, port);
      if (!st.ok()) {
        std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
        return 1;
      }
      std::fprintf(stderr, "# connected to %s:%u  tenant=%s\n", host.c_str(),
                   port, tenant_name.c_str());

      const std::string source = argv[3];
      const bool from_stdin = source == "-";
      std::ifstream file;
      if (!from_stdin) {
        file.open(source);
        if (!file) {
          std::fprintf(stderr, "error: cannot open %s\n", source.c_str());
          return 1;
        }
      }
      std::istream& in = from_stdin ? std::cin : file;

      QuantileSketch latency_ms;
      uint64_t next_id = 0;
      size_t rejected = 0;
      std::string line;
      std::string preds;
      size_t lineno = 0;
      const auto trace_start = std::chrono::steady_clock::now();
      while (!g_interrupted && std::getline(in, line)) {
        ++lineno;
        if (line.empty() || line[0] == '#') continue;
        const TracePrefix prefix = ParseTracePrefix(line, &preds);
        if (prefix.arrival_ms >= 0 &&
            !ReplayWait(trace_start, prefix.arrival_ms)) {
          break;
        }
        auto disjuncts = ParseDisjunction(table, preds);
        if (!disjuncts.ok() || disjuncts.ValueOrDie().size() != 1) {
          std::fprintf(stderr, "error: line %zu rejected: %s\n", lineno,
                       disjuncts.ok()
                           ? "must be one conjunction"
                           : disjuncts.status().ToString().c_str());
          ++rejected;
          continue;
        }
        const Query& query = disjuncts.ValueOrDie()[0];
        WireEstimateRequest request;
        request.request_id = ++next_id;
        request.tenant = tenant_name;
        request.regions = query.regions();
        request.deadline_ms = prefix.deadline_ms;
        request.priority = prefix.priority;
        const std::string text = query.ToString(table);
        const auto sent_at = std::chrono::steady_clock::now();
        WireEstimateResponse response;
        st = client.CallEstimate(request, &response);
        if (!st.ok()) {
          std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
          return 1;
        }
        const std::chrono::duration<double, std::milli> elapsed =
            std::chrono::steady_clock::now() - sent_at;
        latency_ms.Add(elapsed.count());
        // Typed results cross the wire losslessly, so shed requests print
        // the same NA line they would in-process — including the
        // `retry in N ms` hint on an admission shed.
        std::fputs(
            FormatResultLine(FromWireResponse(response), num_rows, text)
                .c_str(),
            stdout);
        std::fflush(stdout);
      }

      // Server-side view of the tenant on the way out, over the same
      // socket (the STATS control verb).
      WireControlRequest ctrl;
      ctrl.request_id = ++next_id;
      ctrl.verb = ControlVerb::kStats;
      ctrl.tenant = tenant_name;
      WireControlResponse ctrl_resp;
      st = client.CallControl(ctrl, &ctrl_resp);
      if (st.ok() && ctrl_resp.status_code == StatusCode::kOk) {
        std::fputs(ctrl_resp.text.c_str(), stderr);
      }
      if (rejected > 0) {
        std::fprintf(stderr, "# %zu lines rejected by the parser\n",
                     rejected);
      }
      if (!latency_ms.empty()) {
        std::fprintf(
            stderr,
            "# round-trip ms: p50 %.2f  p90 %.2f  p99 %.2f  max %.2f\n",
            latency_ms.Quantile(0.5), latency_ms.Quantile(0.9),
            latency_ms.Quantile(0.99), latency_ms.Max());
      }
      return 0;
    }

    // Remaining modes host the model in this process.
    if (argc < 4) return Usage();
    auto model = LoadModelBundle(argv[3]);
    if (!model.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   model.status().ToString().c_str());
      return 1;
    }
    const long long threads =
        argc >= 6 ? std::atoll(argv[5]) : GetEnvInt("NARU_THREADS", 0);
    if (threads < 0 || threads > 256) {
      std::fprintf(stderr, "error: threads must be in [0, 256]\n");
      return 1;
    }
    MadeModel* m = model.ValueOrDie().get();
    NaruEstimatorConfig ncfg;
    ncfg.kernel = CliKernel();
    // Dispatch probe up front: "simd" silently falling back to the
    // portable kernels is the first thing to rule out when serving is
    // slower than expected.
    std::fprintf(stderr, "# kernel=%s (%s)\n",
                 KernelKindName(ncfg.kernel), SimdDispatchString().c_str());

    InferenceEngineConfig ecfg;
    ecfg.num_threads = static_cast<size_t>(threads);
    ecfg.cache_budget_bytes = static_cast<size_t>(std::max<int64_t>(
                                  GetEnvInt("NARU_CACHE_BUDGET_MB", 4), 0)) *
                              1024 * 1024;
    // --group-width auto|N: plan-tree fork fan-out cap (auto = sized from
    // the model width and the active kernel).
    const std::string width_str = GetEnvString("NARU_GROUP_WIDTH", "auto");
    ecfg.group_width =
        width_str == "auto" || width_str == "0"
            ? 0
            : static_cast<size_t>(std::min<int64_t>(
                  std::max<int64_t>(GetEnvInt("NARU_GROUP_WIDTH", 0), 1),
                  4096));
    AsyncEngineConfig acfg;
    acfg.engine = ecfg;
    acfg.max_batch_size = static_cast<size_t>(
        std::max<int64_t>(GetEnvInt("NARU_MAX_BATCH", 64), 1));
    acfg.max_wait_ms = GetEnvDouble("NARU_MAX_WAIT_MS", 2.0);
    // 0 = unbounded; a bound sheds the lowest priority class first when
    // submissions outrun the service rate (typed ResourceExhausted lines).
    acfg.max_pending = static_cast<size_t>(
        std::max<int64_t>(GetEnvInt("NARU_MAX_PENDING", 0), 0));

    if (!listen_spec.empty()) {
      // Network server: serve <data.csv> <model.bundle> --listen
      // host:port [--tenant NAME]. One tenant is registered under
      // --tenant; every engine knob above becomes that tenant's isolated
      // serving stack. Ctrl-C drains gracefully: in-flight requests
      // resolve and their responses flush before the socket closes.
      std::string host;
      uint16_t port = 0;
      Status st = ParseHostPort(listen_spec, &host, &port);
      if (!st.ok()) {
        std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
        return 2;
      }
      std::vector<size_t> domains;
      for (size_t c = 0; c < table.num_columns(); ++c) {
        domains.push_back(table.column(c).DomainSize());
      }
      const size_t model_bytes = m->SizeBytes();
      TenantOptions topts;
      topts.estimator = ncfg;
      topts.engine = acfg;
      ModelRegistry registry;
      st = registry.AddTenant(tenant_name, csv_path, table.num_rows(),
                              std::move(domains),
                              std::move(model).ValueOrDie(), model_bytes,
                              topts);
      if (!st.ok()) {
        std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
        return 1;
      }
      NetServerConfig scfg;
      scfg.host = host;
      scfg.port = port;
      NetServer server(&registry, scfg);
      st = server.Start();
      if (!st.ok()) {
        std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
        return 1;
      }
      std::fprintf(stderr,
                   "# listening on %s:%u  tenant=%s  (Ctrl-C drains)\n",
                   host.c_str(), server.port(), tenant_name.c_str());
      while (!g_interrupted) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }
      std::fprintf(stderr, "# interrupted: draining in-flight requests\n");
      server.Shutdown();
      const NetServerStats ns = server.stats();
      std::fprintf(stderr,
                   "# net: %zu conns accepted, %zu frames, %zu submitted, "
                   "%zu responses, %zu control, %zu protocol errors "
                   "(%zu poisoned streams), %zu rejected, %zu orphaned\n",
                   ns.connections_accepted, ns.frames_received,
                   ns.requests_submitted, ns.responses_sent,
                   ns.control_requests, ns.protocol_errors,
                   ns.poisoned_streams, ns.rejected_requests,
                   ns.orphaned_responses);
      std::fputs(registry.FormatTenantStats("").c_str(), stderr);
      return 0;
    }

    if (argc < 5) return Usage();
    NaruEstimator est(m, ncfg, m->SizeBytes());
    const std::string source = argv[4];
    const bool from_stdin = source == "-";
    std::ifstream file;
    if (!from_stdin) {
      file.open(source);
      if (!file) {
        std::fprintf(stderr, "error: cannot open %s\n", source.c_str());
        return 1;
      }
    }
    std::istream& in = from_stdin ? std::cin : file;

    if (!GetEnvBool("NARU_ASYNC", false)) {
      // Blocking mode: read the whole input, answer it as one typed
      // batch. Arrival timestamps are ignored (there is no accept loop to
      // replay them on); priorities are recorded but moot (one batch, no
      // queue); `~<ms>` deadlines count from READ time, so a deadline
      // shorter than the collect+dispatch gap sheds. SIGINT while reading
      // stops collecting; what was read is served and the stats still
      // print.
      std::vector<EstimateRequest> requests;
      std::vector<std::string> texts;
      std::string line;
      std::string preds;
      size_t lineno = 0;
      while (!g_interrupted && std::getline(in, line)) {
        ++lineno;
        if (line.empty() || line[0] == '#') continue;
        const TracePrefix prefix = ParseTracePrefix(line, &preds);
        auto disjuncts = ParseDisjunction(table, preds);
        if (!disjuncts.ok()) {
          std::fprintf(stderr, "error: line %zu: %s\n", lineno,
                       disjuncts.status().ToString().c_str());
          return 1;
        }
        if (disjuncts.ValueOrDie().size() != 1) {
          std::fprintf(stderr, "error: line %zu must be one conjunction\n",
                       lineno);
          return 1;
        }
        EstimateRequest req(disjuncts.ValueOrDie()[0]);
        prefix.ApplyTo(&req.options);
        texts.push_back(req.query.ToString(table));
        requests.push_back(std::move(req));
      }
      InferenceEngine engine(ecfg);
      std::vector<EstimateResult> results;
      engine.EstimateBatch(&est, requests, &results);
      for (size_t i = 0; i < results.size(); ++i) {
        std::fputs(FormatResultLine(results[i], num_rows, texts[i]).c_str(),
                   stdout);
      }
      if (g_interrupted) {
        std::fprintf(stderr, "# interrupted: served what was read\n");
      }
      std::fputs(FormatEngineStats(engine.stats()).c_str(), stderr);
      return 0;
    }

    // Async accept loop: Submit each line as it arrives (honoring `@<ms>`
    // replay timestamps), stream results out in submission order, report
    // latency percentiles. Parse errors are reported and skipped — an
    // accept loop must not die on one malformed request.
    AsyncEngine engine(acfg);

    struct Slot {
      std::future<EstimateResult> result;
      std::string text;
    };
    std::deque<Slot> inflight;
    QuantileSketch latency_ms;
    std::mutex latency_mu;
    const auto trace_start = std::chrono::steady_clock::now();
    const auto print_ready_prefix = [&](bool block) {
      while (!inflight.empty() &&
             (block || inflight.front().result.wait_for(
                           std::chrono::seconds(0)) ==
                           std::future_status::ready)) {
        // Status end to end: shed (DeadlineExceeded) and failed requests
        // arrive as typed results, never exceptions — report the one
        // request and keep the loop serving.
        const EstimateResult r = inflight.front().result.get();
        std::fputs(
            FormatResultLine(r, num_rows, inflight.front().text).c_str(),
            stdout);
        std::fflush(stdout);
        inflight.pop_front();
      }
    };

    std::string line;
    std::string preds;
    size_t lineno = 0;
    size_t rejected = 0;
    while (!g_interrupted && std::getline(in, line)) {
      ++lineno;
      if (line.empty() || line[0] == '#') continue;
      const TracePrefix prefix = ParseTracePrefix(line, &preds);
      if (prefix.arrival_ms >= 0 &&
          !ReplayWait(trace_start, prefix.arrival_ms)) {
        break;
      }
      auto disjuncts = ParseDisjunction(table, preds);
      if (!disjuncts.ok() || disjuncts.ValueOrDie().size() != 1) {
        std::fprintf(stderr, "error: line %zu rejected: %s\n", lineno,
                     disjuncts.ok() ? "must be one conjunction"
                                    : disjuncts.status().ToString().c_str());
        ++rejected;
        continue;
      }
      EstimateRequest request(disjuncts.ValueOrDie()[0]);
      prefix.ApplyTo(&request.options);
      std::string text = request.query.ToString(table);
      const auto arrival = std::chrono::steady_clock::now();
      auto fut = engine.Submit(
          &est, std::move(request), [&, arrival](const EstimateResult&) {
            const std::chrono::duration<double, std::milli> elapsed =
                std::chrono::steady_clock::now() - arrival;
            std::lock_guard<std::mutex> lock(latency_mu);
            latency_ms.Add(elapsed.count());
          });
      inflight.push_back(Slot{std::move(fut), std::move(text)});
      print_ready_prefix(/*block=*/false);
    }
    engine.Drain();
    print_ready_prefix(/*block=*/true);

    const auto astats = engine.async_stats();
    if (g_interrupted) {
      std::fprintf(stderr, "# interrupted: drained in-flight work\n");
    }
    std::fprintf(stderr,
                 "# served %zu queries (%zu rejected, %zu joined in-flight "
                 "twins, %zu admission-shed, peak pending %zu) in %zu "
                 "micro-batches (largest %zu; %zu size / %zu deadline / %zu "
                 "drain flushes, %zu deadline reorders)\n",
                 astats.completed, rejected, astats.joined_duplicates,
                 astats.shed_admission, astats.max_pending_seen,
                 astats.batches, astats.largest_batch, astats.size_flushes,
                 astats.deadline_flushes, astats.drain_flushes,
                 astats.deadline_reorders);
    std::fputs(FormatEngineStats(engine.stats()).c_str(), stderr);
    if (!latency_ms.empty()) {
      std::fprintf(stderr,
                   "# latency ms: p50 %.2f  p90 %.2f  p99 %.2f  max %.2f\n",
                   latency_ms.Quantile(0.5), latency_ms.Quantile(0.9),
                   latency_ms.Quantile(0.99), latency_ms.Max());
    }
    return 0;
  }

  if (cmd == "truth") {
    if (argc < 4) return Usage();
    auto disjuncts = ParseDisjunction(table, argv[3]);
    if (!disjuncts.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   disjuncts.status().ToString().c_str());
      return 1;
    }
    const double sel =
        ExecuteDisjunctionSelectivity(table, disjuncts.ValueOrDie());
    std::printf("cardinality %.0f  selectivity %.6g\n",
                sel * static_cast<double>(table.num_rows()), sel);
    return 0;
  }
  return Usage();
}
