// Approximate query processing from the synopsis alone (§8).
//
// The paper's conclusion sketches this application: "Approximate query
// processing can sample in-distribution tuples from a compact synopsis,
// which may be much faster than sampling from the original storage."
//
// This example answers SQL-style aggregates
//
//   SELECT COUNT(*), AVG(bw_kbps), SUM(bw_kbps)
//   FROM conviva WHERE conn_type = <c> AND err_flag = 0
//
// three ways:
//   1. exact scan (ground truth),
//   2. weighted in-region importance samples from the trained model
//      (progressive draws; COUNT = sel x |T|, AVG = self-normalized mean),
//   3. unweighted in-region tuples from the independence Metropolis-
//      Hastings chain (§6.7.2) — the asymptotically exact generator.
//
// The table never gets scanned at query time in (2) and (3); everything
// comes out of the ~100KB model.
//
// Build & run:  ./build/examples/aqp_demo
#include <cstdio>

#include "core/generator.h"
#include "core/made.h"
#include "core/naru_estimator.h"
#include "core/trainer.h"
#include "data/datasets.h"
#include "query/executor.h"

using namespace naru;

int main() {
  // --- Data + model -------------------------------------------------------
  Table table = MakeConvivaALike(/*rows=*/30000, /*seed=*/7);
  std::printf("table '%s': %zu rows x %zu cols\n", table.name().c_str(),
              table.num_rows(), table.num_columns());

  std::vector<size_t> domains;
  for (size_t c = 0; c < table.num_columns(); ++c) {
    domains.push_back(table.column(c).DomainSize());
  }
  MadeModel::Config mcfg;
  mcfg.hidden_sizes = {128, 128, 128};
  mcfg.encoder.embed_dim = 32;
  MadeModel model(domains, mcfg);
  TrainerConfig tcfg;
  tcfg.epochs = 10;
  Trainer(&model, tcfg).Train(table);
  std::printf("model trained (%.1f KB)\n\n", model.SizeBytes() / 1024.0);

  // --- The aggregate query ------------------------------------------------
  // Pick a numeric column to aggregate and two filters.
  const size_t agg_col = table.ColumnIndex("bandwidth_kbps").ValueOrDie();
  const size_t conn = table.ColumnIndex("conn_type").ValueOrDie();
  const size_t err = table.ColumnIndex("error_flag").ValueOrDie();
  Query query(table, {{conn, CompareOp::kEq, 1, 0, {}},
                      {err, CompareOp::kEq, 0, 0, {}}});

  const auto code_value = [&](const int32_t* row) {
    return table.column(agg_col)
        .dict()
        .ValueFor(row[agg_col])
        .AsInt();  // bw_kbps is integral
  };

  // --- 1. Exact scan ------------------------------------------------------
  double exact_count = 0, exact_sum = 0;
  {
    std::vector<int32_t> row(table.num_columns());
    for (size_t r = 0; r < table.num_rows(); ++r) {
      table.GetRowCodes(r, row.data());
      if (!RowSatisfies(query, row.data())) continue;
      exact_count += 1;
      exact_sum += static_cast<double>(code_value(row.data()));
    }
  }
  const double exact_avg = exact_count > 0 ? exact_sum / exact_count : 0;

  // --- 2. Weighted importance samples (progressive draws) -----------------
  NaruEstimatorConfig ncfg;
  ncfg.num_samples = 2000;
  NaruEstimator estimator(&model, ncfg, model.SizeBytes());
  const double sel = estimator.EstimateSelectivity(query);
  const double aqp_count = sel * static_cast<double>(table.num_rows());
  const double aqp_avg = ConditionalExpectation(
      &model, query,
      [&](const int32_t* row) {
        return static_cast<double>(code_value(row));
      },
      /*num_samples=*/4000);
  const double aqp_sum = aqp_count * aqp_avg;

  // --- 3. Independence-MH tuples (unweighted in-region samples) -----------
  IndependenceMhChain chain(&model, query, /*seed=*/23);
  chain.Advance(500);  // burn-in
  IntMatrix states;
  chain.Sample(4000, /*thin=*/2, &states);
  double mh_avg = 0;
  for (size_t r = 0; r < states.rows(); ++r) {
    mh_avg += static_cast<double>(code_value(states.Row(r)));
  }
  mh_avg /= static_cast<double>(states.rows());
  const double mh_sum = aqp_count * mh_avg;

  // --- Report -------------------------------------------------------------
  std::printf("%-22s %14s %14s %14s\n", "", "COUNT(*)", "AVG(bw)", "SUM(bw)");
  std::printf("%-22s %14.0f %14.1f %14.0f\n", "exact scan", exact_count,
              exact_avg, exact_sum);
  std::printf("%-22s %14.0f %14.1f %14.0f\n",
              "model importance (IS)", aqp_count, aqp_avg, aqp_sum);
  std::printf("%-22s %14.0f %14.1f %14.0f\n", "model MH chain", aqp_count,
              mh_avg, mh_sum);
  std::printf("\nMH acceptance rate: %.1f%% (independence proposals from "
              "progressive draws)\n",
              100.0 * chain.acceptance_rate());
  const auto rel = [](double est, double truth) {
    return truth == 0 ? 0.0 : 100.0 * (est - truth) / truth;
  };
  std::printf("relative errors: COUNT %+.1f%%, AVG(IS) %+.1f%%, "
              "AVG(MH) %+.1f%%\n",
              rel(aqp_count, exact_count), rel(aqp_avg, exact_avg),
              rel(mh_avg, exact_avg));
  return 0;
}
