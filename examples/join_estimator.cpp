// Estimating over a joined relation (§4.1 "Joins", §2.2).
//
// "The estimator does not distinguish between the type of table it is
// built on" — materialize the join, feed its tuples to the model, and the
// estimator answers filters on ANY column of either side, capturing
// cross-relation correlations that per-table statistics cannot see.
//
// Scenario: a checkins fact table (user_id, city, stars) joined with a
// users dimension table (user_id, tier, age_bucket), where tier correlates
// with city through the users' home regions. A query filtering
// city AND tier is exactly where the classical "independent per-relation
// selectivities" heuristic breaks; Naru trained on the join gets it right.
//
// Build & run:  ./build/examples/join_estimator
#include <cstdio>
#include <string>
#include <vector>

#include "core/made.h"
#include "core/naru_estimator.h"
#include "core/trainer.h"
#include "data/join.h"
#include "data/table.h"
#include "query/executor.h"
#include "query/parser.h"
#include "util/random.h"

using namespace naru;

namespace {

constexpr size_t kUsers = 2000;
constexpr size_t kCheckins = 30000;
const char* kCities[] = {"amsterdam", "berlin", "chicago", "denver", "oslo"};
const char* kTiers[] = {"free", "plus", "pro"};

// Every user has a deterministic home city (u % 5); tier and checkin city
// both lean toward it, which is exactly the cross-relation correlation the
// joined estimator must capture.
size_t HomeCity(size_t u) { return u % 5; }

// Users: tier depends on the home city (city i leans toward tier i % 3).
Table MakeUsers(Rng* rng) {
  std::vector<Value> ids, tiers, ages;
  for (size_t u = 0; u < kUsers; ++u) {
    ids.emplace_back(static_cast<int64_t>(u));
    const size_t tier = rng->UniformDouble() < 0.7
                            ? HomeCity(u) % 3
                            : rng->UniformInt(3);
    tiers.emplace_back(std::string(kTiers[tier]));
    ages.emplace_back(static_cast<int64_t>(20 + 10 * rng->UniformInt(5)));
  }
  TableBuilder b("users");
  b.AddValueColumn("user_id", ids);
  b.AddValueColumn("tier", tiers);
  b.AddValueColumn("age_bucket", ages);
  return b.Build();
}

// Checkins: users mostly check in at their home city.
Table MakeCheckins(Rng* rng) {
  std::vector<Value> uids, cities, stars;
  for (size_t i = 0; i < kCheckins; ++i) {
    const size_t u = rng->UniformInt(kUsers);
    const size_t city =
        rng->UniformDouble() < 0.8 ? HomeCity(u) : rng->UniformInt(5);
    uids.emplace_back(static_cast<int64_t>(u));
    cities.emplace_back(std::string(kCities[city]));
    stars.emplace_back(static_cast<int64_t>(1 + rng->UniformInt(10)));
  }
  TableBuilder b("checkins");
  b.AddValueColumn("user_id", uids);
  b.AddValueColumn("city", cities);
  b.AddValueColumn("stars", stars);
  return b.Build();
}

}  // namespace

int main() {
  Rng rng(11);
  Table users = MakeUsers(&rng);
  Table checkins = MakeCheckins(&rng);

  // --- 1. Materialize checkins ⋈ users on user_id (§4.1). --------------
  auto joined = HashJoinTables(checkins, users,
                               {.left_key = "user_id",
                                .right_key = "user_id",
                                .output_name = "checkins_users"});
  if (!joined.ok()) {
    std::fprintf(stderr, "join failed: %s\n",
                 joined.status().ToString().c_str());
    return 1;
  }
  const Table& j = joined.ValueOrDie();
  std::printf("joined relation '%s': %zu rows x %zu cols\n",
              j.name().c_str(), j.num_rows(), j.num_columns());

  // --- 2. Train one Naru model over the joined tuples. -----------------
  std::vector<size_t> domains;
  for (size_t c = 0; c < j.num_columns(); ++c) {
    domains.push_back(j.column(c).DomainSize());
  }
  MadeModel::Config mcfg;
  mcfg.hidden_sizes = {128, 128};
  mcfg.encoder.embed_dim = 32;
  MadeModel model(domains, mcfg);
  TrainerConfig tcfg;
  tcfg.epochs = 10;
  Trainer(&model, tcfg).Train(j);

  NaruEstimatorConfig ncfg;
  ncfg.num_samples = 2000;
  NaruEstimator est(&model, ncfg, model.SizeBytes());

  // --- 3. Cross-relation filters. ---------------------------------------
  const std::vector<std::string> clauses = {
      "l_city = 'berlin' AND r_tier = 'plus'",   // correlated pair
      "l_city = 'berlin' AND r_tier = 'free'",   // anti-correlated pair
      "l_stars >= 8 AND r_age_bucket <= 30",
  };
  std::printf("\n%-46s %10s %10s %10s %8s\n", "WHERE", "true",
              "naru", "indep", "q-err");
  for (const auto& clause : clauses) {
    auto q = ParseWhere(j, clause);
    if (!q.ok()) {
      std::fprintf(stderr, "parse error: %s\n",
                   q.status().ToString().c_str());
      return 1;
    }
    const double truth = ExecuteSelectivity(j, q.ValueOrDie());
    const double naru_sel = est.EstimateSelectivity(q.ValueOrDie());

    // The classical heuristic: per-predicate selectivities multiplied
    // (per-relation stats cannot see the city <-> tier correlation).
    double indep = 1.0;
    for (const auto& pred : q.ValueOrDie().predicates()) {
      Query single(j, {pred});
      indep *= ExecuteSelectivity(j, single);
    }

    const auto qerr = [&](double e) {
      const double a = std::max(truth * j.num_rows(), 1.0);
      const double b = std::max(e * j.num_rows(), 1.0);
      return std::max(a, b) / std::min(a, b);
    };
    std::printf("%-46s %10.4f %10.4f %10.4f %8.2f vs %.2f\n", clause.c_str(),
                truth, naru_sel, indep, qerr(naru_sel), qerr(indep));
  }
  std::printf(
      "\nNaru trained on the join answers both-side filters directly; the\n"
      "independence heuristic misses the city <-> tier correlation in both\n"
      "directions (over- and under-estimation).\n");
  return 0;
}
