// Example: Naru as the cardinality oracle of a toy cost-based optimizer.
//
// A query optimizer's central question -- "which predicate ordering scans
// the fewest rows?" -- needs cardinalities for *conjunction prefixes*. This
// example builds one Naru model over a DMV-like table, then for a batch of
// multi-filter queries (a) ranks predicate orderings by estimated prefix
// cardinality and (b) compares the chosen plan against the true optimum,
// side by side with the independence-assumption heuristic that stock
// optimizers use. Naru's correlated estimates recover near-optimal
// orderings where independence picks badly.
#include <algorithm>
#include <cstdio>
#include <numeric>

#include "core/made.h"
#include "core/naru_estimator.h"
#include "core/trainer.h"
#include "data/datasets.h"
#include "estimator/indep.h"
#include "query/executor.h"
#include "query/workload.h"

using namespace naru;

namespace {

// Cost of a left-deep filter pipeline = sum of prefix cardinalities
// (rows flowing into each successive filter).
double PipelineCost(const Table& table, Estimator* est,
                    const std::vector<Predicate>& preds,
                    const std::vector<size_t>& order) {
  double cost = 0;
  std::vector<Predicate> prefix;
  for (size_t idx : order) {
    prefix.push_back(preds[idx]);
    Query q(table, prefix);
    cost += est->EstimateSelectivity(q) *
            static_cast<double>(table.num_rows());
  }
  return cost;
}

double TrueCost(const Table& table, const std::vector<Predicate>& preds,
                const std::vector<size_t>& order) {
  double cost = 0;
  std::vector<Predicate> prefix;
  for (size_t idx : order) {
    prefix.push_back(preds[idx]);
    cost += static_cast<double>(ExecuteCount(table, Query(table, prefix)));
  }
  return cost;
}

std::vector<size_t> BestOrder(const Table& table, Estimator* est,
                              const std::vector<Predicate>& preds) {
  // Greedy most-selective-first by estimated prefix growth -- the classic
  // heuristic, but fed by the chosen estimator.
  std::vector<size_t> remaining(preds.size());
  std::iota(remaining.begin(), remaining.end(), 0);
  std::vector<size_t> order;
  std::vector<Predicate> prefix;
  while (!remaining.empty()) {
    size_t best = remaining[0];
    double best_sel = 2.0;
    for (size_t idx : remaining) {
      prefix.push_back(preds[idx]);
      const double sel = est->EstimateSelectivity(Query(table, prefix));
      prefix.pop_back();
      if (sel < best_sel) {
        best_sel = sel;
        best = idx;
      }
    }
    order.push_back(best);
    prefix.push_back(preds[best]);
    remaining.erase(std::find(remaining.begin(), remaining.end(), best));
  }
  return order;
}

}  // namespace

int main() {
  Table table = MakeDmvLike(30000, 3);
  std::vector<size_t> domains;
  for (size_t c = 0; c < table.num_columns(); ++c) {
    domains.push_back(table.column(c).DomainSize());
  }

  MadeModel::Config mcfg;
  mcfg.hidden_sizes = {128, 128, 128};
  mcfg.encoder.embed_dim = 32;
  MadeModel model(domains, mcfg);
  TrainerConfig tcfg;
  tcfg.epochs = 8;
  Trainer trainer(&model, tcfg);
  trainer.Train(table);

  NaruEstimatorConfig ncfg;
  ncfg.num_samples = 1000;
  NaruEstimator nar(&model, ncfg, model.SizeBytes());
  IndepEstimator indep(table);

  WorkloadConfig wcfg;
  wcfg.num_queries = 12;
  wcfg.min_filters = 4;
  wcfg.max_filters = 5;
  wcfg.seed = 17;
  const auto queries = GenerateWorkload(table, wcfg);

  std::printf("%-6s %-14s %-14s %-14s\n", "query", "Naru plan cost",
              "Indep plan cost", "ratio (lower=Naru wins)");
  double naru_total = 0;
  double indep_total = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    const auto& preds = queries[i].predicates();
    const auto naru_order = BestOrder(table, &nar, preds);
    const auto indep_order = BestOrder(table, &indep, preds);
    const double naru_cost = TrueCost(table, preds, naru_order);
    const double indep_cost = TrueCost(table, preds, indep_order);
    naru_total += naru_cost;
    indep_total += indep_cost;
    std::printf("%-6zu %-14.0f %-14.0f %.3f\n", i, naru_cost, indep_cost,
                naru_cost / std::max(indep_cost, 1.0));
  }
  std::printf("\ntotal true rows scanned: Naru plans %.0f vs Indep plans "
              "%.0f (%.1f%% saved)\n",
              naru_total, indep_total,
              100.0 * (1.0 - naru_total / std::max(indep_total, 1.0)));
  return 0;
}
