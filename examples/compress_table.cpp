// Lossless table compression with the likelihood model (§8).
//
// "Data compression is also inherently linked to likelihood modeling."
// An arithmetic (range) coder spending -log2 P̂(x) bits per tuple turns the
// trained estimator into a compressor whose output size IS the model's
// cross entropy on the data — the entropy gap (§3.3) made physical:
//
//     coded bits/tuple  ≈  H(P)  +  entropy gap  (+ ~1% coder overhead)
//
// This example compresses a DMV-like relation with three models of
// increasing quality (untrained MADE ~ the naive dictionary bound,
// a Chow-Liu Bayes net, a trained MADE), verifies every blob decompresses
// to the exact original codes, and prints the bits/tuple ladder alongside
// the table's exact empirical joint entropy.
//
// Build & run:  ./build/examples/compress_table
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/compress.h"
#include "core/made.h"
#include "core/trainer.h"
#include "data/datasets.h"
#include "data/table_stats.h"
#include "estimator/bayesnet.h"

using namespace naru;

namespace {

bool VerifyRoundTrip(ConditionalModel* model, const Table& t,
                     const std::string& blob) {
  IntMatrix decoded;
  if (!DecompressTuples(model, blob, &decoded).ok()) return false;
  std::vector<int32_t> row(t.num_columns());
  for (size_t r = 0; r < t.num_rows(); ++r) {
    t.GetRowCodes(r, row.data());
    for (size_t c = 0; c < t.num_columns(); ++c) {
      if (decoded.At(r, c) != row[c]) return false;
    }
  }
  return true;
}

void Report(const char* name, ConditionalModel* model, const Table& t) {
  CompressionStats stats;
  auto blob = CompressTable(model, t, &stats);
  if (!blob.ok()) {
    std::printf("%-24s compression failed: %s\n", name,
                blob.status().ToString().c_str());
    return;
  }
  const bool ok = VerifyRoundTrip(model, t, blob.ValueOrDie());
  std::printf("%-24s %10.2f bits/tuple   %8.1f KB   round-trip %s\n", name,
              stats.bits_per_tuple,
              static_cast<double>(blob.ValueOrDie().size()) / 1024.0,
              ok ? "exact" : "FAILED");
}

}  // namespace

int main() {
  Table table = MakeDmvLike(/*rows=*/20000, /*seed=*/5);
  const double h_joint = TableStats::JointEntropyBits(table);

  std::vector<size_t> domains;
  double naive_bits = 0;
  for (size_t c = 0; c < table.num_columns(); ++c) {
    domains.push_back(table.column(c).DomainSize());
    naive_bits += std::ceil(std::log2(
        std::max<double>(2.0, static_cast<double>(domains.back()))));
  }
  std::printf("table: %zu rows x %zu cols\n", table.num_rows(),
              table.num_columns());
  std::printf("exact joint entropy H(P): %.2f bits/tuple\n", h_joint);
  std::printf("naive dictionary codes:   %.0f bits/tuple\n\n", naive_bits);

  // 1. Untrained MADE: near-uniform conditionals, ~ the naive bound.
  MadeModel::Config mcfg;
  mcfg.hidden_sizes = {128, 128, 128};
  mcfg.encoder.embed_dim = 32;
  MadeModel untrained(domains, mcfg);
  Report("MADE (untrained)", &untrained, table);

  // 2. Chow-Liu Bayes net: pairwise structure only.
  BayesNet bn(table);
  Report("Chow-Liu Bayes net", &bn, table);

  // 3. Trained MADE: the full joint approximation.
  MadeModel trained(domains, mcfg);
  TrainerConfig tcfg;
  tcfg.epochs = 12;
  Trainer(&trained, tcfg).Train(table);
  Report("MADE (trained)", &trained, table);

  std::printf(
      "\nThe gap between each row and H(P) is that model's entropy gap\n"
      "(§3.3); compression is the same quantity the estimator's accuracy\n"
      "rides on.\n");
  return 0;
}
