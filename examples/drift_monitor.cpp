// Example: operating a Naru estimator under continuous ingestion (§6.7.3).
//
// Simulates the "one new partition per day" pattern: partitions of a
// DMV-like table arrive one at a time; after each ingest the example
// (a) measures the live model's staleness via its q-errors on fresh
// queries, (b) decides whether to refresh using a cheap entropy-gap probe,
// and (c) fine-tunes on samples from the grown relation when needed --
// the maintenance loop a production deployment would run.
#include <cstdio>

#include "core/entropy.h"
#include "core/made.h"
#include "core/naru_estimator.h"
#include "core/trainer.h"
#include "data/datasets.h"
#include "data/table_stats.h"
#include "query/executor.h"
#include "query/metrics.h"
#include "query/workload.h"

using namespace naru;

int main() {
  constexpr int kPartitions = 5;
  constexpr size_t kRows = 30000;
  Table full = MakeDmvLike(kRows, 7, kPartitions);
  const size_t part_rows = full.num_rows() / kPartitions;

  std::vector<size_t> domains;
  for (size_t c = 0; c < full.num_columns(); ++c) {
    domains.push_back(full.column(c).DomainSize());
  }
  MadeModel::Config mcfg;
  mcfg.hidden_sizes = {128, 128};
  mcfg.encoder.embed_dim = 32;
  MadeModel model(domains, mcfg);

  TrainerConfig tcfg;
  tcfg.epochs = 8;
  Trainer trainer(&model, tcfg);
  Table first = full.Slice(0, part_rows, full.num_columns());
  trainer.Train(first);
  std::printf("day 0: trained on partition 1 (%zu rows)\n", first.num_rows());

  // Staleness threshold: refresh when the model's cross entropy on fresh
  // data drifts more than kRefreshBits above its value on the training day.
  const double base_ce = ModelCrossEntropyBits(&model, first, 5000);
  constexpr double kRefreshBits = 0.5;

  for (int day = 2; day <= kPartitions; ++day) {
    Table seen = full.Slice(0, part_rows * static_cast<size_t>(day),
                            full.num_columns());
    Table fresh = full.Slice(part_rows * static_cast<size_t>(day - 1),
                             part_rows * static_cast<size_t>(day),
                             full.num_columns());

    const double fresh_ce = ModelCrossEntropyBits(&model, fresh, 5000);
    const bool refresh = fresh_ce - base_ce > kRefreshBits;

    // Measure live accuracy before any refresh decision takes effect.
    WorkloadConfig wcfg;
    wcfg.num_queries = 40;
    wcfg.min_filters = 4;
    wcfg.max_filters = 8;
    wcfg.seed = 100 + static_cast<uint64_t>(day);
    QuantileSketch errs;
    NaruEstimatorConfig ncfg;
    ncfg.num_samples = 1000;
    NaruEstimator est(&model, ncfg, model.SizeBytes());
    const double n = static_cast<double>(seen.num_rows());
    for (const auto& q : GenerateWorkload(seen, wcfg)) {
      const double truth = ExecuteSelectivity(seen, q) * n;
      errs.Add(QError(est.EstimateSelectivity(q) * n, truth));
    }
    std::printf("day %d: ingested %zu rows | fresh-data CE drift %+.2f bits "
                "| q-error p90 %.2f max %.2f | %s\n",
                day - 1, fresh.num_rows(), fresh_ce - base_ce,
                errs.Quantile(0.9), errs.Quantile(1.0),
                refresh ? "refreshing" : "model still fresh");
    if (refresh) {
      trainer.FineTune(seen, /*passes=*/1);
    }
  }
  return 0;
}
