#include "bench_common.h"

#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "util/string_util.h"

namespace naru {
namespace bench {

BenchEnv GetBenchEnv() {
  BenchEnv env;
  env.dmv_rows = static_cast<size_t>(GetEnvInt("NARU_DMV_ROWS", 40000));
  env.conva_rows = static_cast<size_t>(GetEnvInt("NARU_CONVA_ROWS", 20000));
  env.convb_rows = static_cast<size_t>(GetEnvInt("NARU_CONVB_ROWS", 10000));
  env.queries = static_cast<size_t>(GetEnvInt("NARU_QUERIES", 60));
  env.epochs = static_cast<size_t>(GetEnvInt("NARU_EPOCHS", 10));
  env.mscn_queries =
      static_cast<size_t>(GetEnvInt("NARU_MSCN_QUERIES", 800));
  env.seed = static_cast<uint64_t>(GetEnvInt("NARU_SEED", 42));
  // Clamped: a negative value would wrap through size_t to 2^64-ish and
  // e.g. ask the serving engine for that many threads.
  env.threads = static_cast<size_t>(
      std::clamp<int64_t>(GetEnvInt("NARU_THREADS", 0), 0, 256));
  env.batch = static_cast<size_t>(
      std::clamp<int64_t>(GetEnvInt("NARU_BATCH", 0), 0, 1 << 20));
  const std::string kernel_name = GetEnvString("NARU_KERNEL", "scalar");
  if (!ParseKernelKind(kernel_name, &env.kernel)) {
    std::fprintf(stderr,
                 "unknown NARU_KERNEL '%s' (want scalar | simd | simd_int8)\n",
                 kernel_name.c_str());
    std::exit(2);
  }
  return env;
}

void InitBench(int argc, char** argv) {
  if (!ApplyFlagOverrides(argc, argv)) {
    std::exit(2);
  }
}

Workload MakeWorkload(const Table& table, size_t num_queries, uint64_t seed,
                      bool out_of_distribution, size_t min_filters,
                      size_t max_filters) {
  WorkloadConfig cfg;
  cfg.num_queries = num_queries;
  cfg.min_filters = min_filters;
  cfg.max_filters = max_filters;
  cfg.out_of_distribution = out_of_distribution;
  cfg.seed = seed;
  Workload w;
  w.queries = GenerateWorkload(table, cfg);
  w.cards = ExecuteCounts(table, w.queries);
  w.sels.reserve(w.cards.size());
  for (int64_t c : w.cards) {
    w.sels.push_back(static_cast<double>(c) /
                     static_cast<double>(table.num_rows()));
  }
  return w;
}

std::vector<size_t> TableDomains(const Table& table) {
  std::vector<size_t> domains;
  domains.reserve(table.num_columns());
  for (size_t c = 0; c < table.num_columns(); ++c) {
    domains.push_back(table.column(c).DomainSize());
  }
  return domains;
}

MadeModel::Config DmvModelConfig(uint64_t seed) {
  MadeModel::Config cfg;
  // Scaled-down analogue of the paper's 5-layer DMV MLP.
  cfg.hidden_sizes = {128, 128, 128, 128};
  cfg.encoder.onehot_threshold = 64;
  cfg.encoder.embed_dim = 32;
  cfg.embedding_reuse = true;
  cfg.seed = seed;
  return cfg;
}

MadeModel::Config ConvivaAModelConfig(uint64_t seed) {
  MadeModel::Config cfg;
  // The paper's Conviva-A model: 4 hidden layers of 128, h = 64.
  cfg.hidden_sizes = {128, 128, 128, 128};
  cfg.encoder.onehot_threshold = 64;
  cfg.encoder.embed_dim = 32;
  cfg.embedding_reuse = true;
  cfg.seed = seed;
  return cfg;
}

std::unique_ptr<MadeModel> TrainModel(const Table& table,
                                      MadeModel::Config config,
                                      size_t epochs,
                                      const std::string& tag) {
  auto model = std::make_unique<MadeModel>(TableDomains(table), config);
  TrainerConfig tcfg;
  tcfg.epochs = epochs;
  tcfg.batch_size = 512;
  tcfg.lr = 2e-3;
  tcfg.lr_decay = 0.92;
  Trainer trainer(model.get(), tcfg);
  Stopwatch sw;
  const auto curve = trainer.Train(table);
  std::printf("# trained %s: %zu epochs in %.1fs, NLL %.2f -> %.2f bits\n",
              tag.c_str(), epochs, sw.ElapsedSeconds(), curve.front(),
              curve.back());
  return model;
}

void EvaluateEstimator(Estimator* est, const Workload& workload,
                       size_t num_rows, ErrorReport* report,
                       QuantileSketch* latency_ms) {
  for (size_t i = 0; i < workload.queries.size(); ++i) {
    Stopwatch sw;
    const double sel = est->EstimateSelectivity(workload.queries[i]);
    if (latency_ms != nullptr) latency_ms->Add(sw.ElapsedMillis());
    report->Add(sel * static_cast<double>(num_rows),
                static_cast<double>(workload.cards[i]), workload.sels[i]);
  }
}

double EvaluateEstimatorBatched(Estimator* est, const Workload& workload,
                                size_t num_rows, size_t batch_size,
                                ErrorReport* report) {
  NARU_CHECK(batch_size >= 1);
  const size_t n = workload.queries.size();

  // Slice outside the timed window so the stopwatch sees only
  // EstimateBatch, matching what EvaluateEstimator times per query.
  std::vector<std::vector<Query>> batches;
  for (size_t lo = 0; lo < n; lo += batch_size) {
    const size_t hi = std::min(n, lo + batch_size);
    batches.emplace_back(
        workload.queries.begin() + static_cast<ptrdiff_t>(lo),
        workload.queries.begin() + static_cast<ptrdiff_t>(hi));
  }
  std::vector<std::vector<double>> outs(batches.size());

  Stopwatch sw;
  for (size_t b = 0; b < batches.size(); ++b) {
    est->EstimateBatch(batches[b], &outs[b]);
  }
  const double seconds = sw.ElapsedSeconds();

  size_t i = 0;
  for (const auto& sels : outs) {
    for (double sel : sels) {
      report->Add(sel * static_cast<double>(num_rows),
                  static_cast<double>(workload.cards[i]), workload.sels[i]);
      ++i;
    }
  }
  return seconds > 0 ? static_cast<double>(n) / seconds : 0.0;
}

void PrintErrorTable(const std::string& title,
                     const std::vector<const ErrorReport*>& reports) {
  std::printf("\n%s\n", title.c_str());
  std::printf("%s\n", ErrorReport::FormatHeader().c_str());
  std::printf("%s\n",
              std::string(14 + 3 * (3 + 4 * 9), '-').c_str());
  for (const auto* r : reports) {
    std::printf("%s\n", r->FormatRow().c_str());
  }
}

void PrintBanner(const std::string& experiment, const std::string& detail) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("%s\n", detail.c_str());
  std::printf("==============================================================\n");
}

bool PerfAssertsEnabled() {
  return GetEnvInt("NARU_SMOKE_NO_PERF_ASSERT", 0) == 0;
}

size_t BudgetBytes(const Table& table, double fraction) {
  const double raw = static_cast<double>(table.EstimatedRawBytes());
  return std::max<size_t>(static_cast<size_t>(raw * fraction), 256 * 1024);
}

size_t SampleRows(const Table& table, double fraction) {
  return std::max<size_t>(
      static_cast<size_t>(static_cast<double>(table.num_rows()) * fraction),
      32);
}

namespace {

std::string EscapeJsonString(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string EncodeObject(const JsonObject& obj) {
  std::string out = "{";
  for (size_t i = 0; i < obj.size(); ++i) {
    if (i > 0) out += ", ";
    out += EscapeJsonString(obj[i].first);
    out += ": ";
    out += obj[i].second.Encode();
  }
  out += "}";
  return out;
}

}  // namespace

namespace {

/// Short commit id: NARU_GIT_COMMIT wins (CI stamps it so containers
/// without a .git directory still record provenance), then a best-effort
/// `git rev-parse`, then "unknown". Never fails the bench.
std::string ResolveCommit() {
  std::string commit = GetEnvString("NARU_GIT_COMMIT", "");
  if (!commit.empty()) return commit;
  std::FILE* pipe = popen("git rev-parse --short=12 HEAD 2>/dev/null", "r");
  if (pipe != nullptr) {
    char buf[64] = {0};
    if (std::fgets(buf, sizeof(buf), pipe) != nullptr) {
      commit.assign(buf);
      while (!commit.empty() &&
             (commit.back() == '\n' || commit.back() == '\r')) {
        commit.pop_back();
      }
    }
    pclose(pipe);
  }
  return commit.empty() ? "unknown" : commit;
}

}  // namespace

JsonObject BenchRunMetadata() {
  JsonObject meta;
  char host[256];
  if (gethostname(host, sizeof(host)) != 0) {
    std::strncpy(host, "unknown", sizeof(host));
  }
  host[sizeof(host) - 1] = '\0';
  meta.emplace_back("host", std::string(host));
  meta.emplace_back("commit", ResolveCommit());
  meta.emplace_back("threads",
                    static_cast<double>(GetEnvInt("NARU_THREADS", 0)));
  meta.emplace_back("kernel", GetEnvString("NARU_KERNEL", "scalar"));
  meta.emplace_back("smoke", GetEnvInt("NARU_SMOKE", 0) != 0);
  return meta;
}

std::string JsonValue::Encode() const {
  switch (kind) {
    case Kind::kString:
      return EscapeJsonString(str);
    case Kind::kBool:
      return b ? "true" : "false";
    case Kind::kNumber:
      break;
  }
  if (!std::isfinite(num)) return "null";
  // Integers print exactly; everything else keeps float precision.
  if (num == static_cast<double>(static_cast<int64_t>(num)) &&
      std::fabs(num) < 1e15) {
    return StrFormat("%lld", static_cast<long long>(num));
  }
  return StrFormat("%.9g", num);
}

bool BenchJsonWriter::Write() const {
  const std::string dir = GetEnvString("NARU_BENCH_JSON_DIR", ".");
  const std::string path = StrFormat("%s/BENCH_%s.json", dir.c_str(),
                                     name_.c_str());
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "# could not write %s (continuing)\n", path.c_str());
    return false;
  }
  std::string body = "{\n";
  body += StrFormat("  \"bench\": %s,\n", EscapeJsonString(name_).c_str());
  body += "  \"schema_version\": 2,\n";
  body += StrFormat("  \"simd\": %s,\n",
                    EscapeJsonString(SimdDispatchString()).c_str());
  body += StrFormat("  \"meta\": %s,\n",
                    EncodeObject(BenchRunMetadata()).c_str());
  body += StrFormat("  \"config\": %s,\n", EncodeObject(config_).c_str());
  body += "  \"rows\": [\n";
  for (size_t i = 0; i < rows_.size(); ++i) {
    body += "    ";
    body += EncodeObject(rows_[i]);
    body += i + 1 < rows_.size() ? ",\n" : "\n";
  }
  body += "  ]\n}\n";
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  std::fclose(f);
  if (ok) std::printf("# wrote %s\n", path.c_str());
  return ok;
}

}  // namespace bench
}  // namespace naru
