// §5.1 ablation: progressive sampling vs the uniform-region strawman.
//
// Both samplers integrate the same trained model over the same queries with
// the same path budget. Expected shape (the paper's motivating failure):
// uniform sampling returns ~zero mass on most range queries over skewed,
// correlated data, collapsing at the tail, while progressive sampling stays
// accurate with the same number of paths.
#include <cstdio>

#include "bench_common.h"
#include "util/string_util.h"

namespace naru {
namespace bench {
namespace {

int Run() {
  const BenchEnv env = GetBenchEnv();
  const size_t queries = std::min<size_t>(env.queries, 60);
  PrintBanner("Ablation (§5.1): progressive vs uniform-region sampling",
              StrFormat("DMV rows=%zu queries=%zu", env.dmv_rows, queries));

  Table table = MakeDmvLike(env.dmv_rows, env.seed);
  const size_t n = table.num_rows();
  const Workload test = MakeWorkload(table, queries, env.seed + 1);
  auto model = TrainModel(table, DmvModelConfig(env.seed + 5), env.epochs,
                          "Naru(DMV)");

  std::vector<std::unique_ptr<ErrorReport>> reports;
  for (bool uniform : {false, true}) {
    for (size_t paths : {size_t{2000}}) {
      NaruEstimatorConfig ncfg;
      ncfg.num_samples = paths;
      ncfg.uniform_region = uniform;
      ncfg.enumeration_threshold = 0;
      ncfg.sampler_seed = env.seed + 6;
      NaruEstimator est(model.get(), ncfg, 0,
                        StrFormat("%s-%zu", uniform ? "Uniform" : "Progr",
                                  paths));
      reports.push_back(std::make_unique<ErrorReport>(est.name()));
      EvaluateEstimator(&est, test, n, reports.back().get());
    }
  }
  std::vector<const ErrorReport*> rows;
  for (const auto& r : reports) rows.push_back(r.get());
  PrintErrorTable("Errors grouped by true selectivity:", rows);

  // Count uniform-sampler zero estimates (the paper's collapse symptom).
  NaruEstimatorConfig ucfg;
  ucfg.num_samples = 4000;
  ucfg.uniform_region = true;
  ucfg.enumeration_threshold = 0;
  NaruEstimator uniform(model.get(), ucfg, 0, "Uniform");
  size_t zeros = 0;
  size_t nonzero_truth = 0;
  for (size_t i = 0; i < test.queries.size(); ++i) {
    if (test.cards[i] == 0) continue;
    ++nonzero_truth;
    if (uniform.EstimateSelectivity(test.queries[i]) * n < 0.5) ++zeros;
  }
  std::printf("\n# uniform sampler returned ~0 on %zu / %zu queries with "
              "true matches\n",
              zeros, nonzero_truth);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace naru

int main(int argc, char** argv) {
  naru::bench::InitBench(argc, argv);
  return naru::bench::Run();
}
