// Figure 6: per-query estimation latency CDFs on DMV.
//
// The paper's observation: Naru answers in ~10ms-class latency (here on
// CPU), flat across queries because every query walks all columns; scan-
// based estimators' latency scales with the sample and filter count.
#include <cstdio>
#include <memory>

#include "bench_common.h"
#include "estimator/dbms1.h"
#include "estimator/indep.h"
#include "estimator/kde.h"
#include "estimator/mscn.h"
#include "estimator/postgres1d.h"
#include "estimator/sample.h"
#include "util/string_util.h"

namespace naru {
namespace bench {
namespace {

void PrintLatencyRow(const std::string& name, const QuantileSketch& ms) {
  std::printf("%-14s %8.3f %8.3f %8.3f %8.3f %8.3f\n", name.c_str(),
              ms.Quantile(0.25), ms.Quantile(0.5), ms.Quantile(0.75),
              ms.Quantile(0.95), ms.Quantile(0.99));
}

int Run() {
  const BenchEnv env = GetBenchEnv();
  const size_t queries = std::min<size_t>(env.queries, 40);
  PrintBanner("Figure 6: estimator latency (ms, CPU)",
              StrFormat("rows=%zu queries=%zu", env.dmv_rows, queries));

  Table table = MakeDmvLike(env.dmv_rows, env.seed);
  const size_t n = table.num_rows();
  const size_t budget = BudgetBytes(table, 0.013);
  const Workload test = MakeWorkload(table, queries, env.seed + 1);
  const Workload train = MakeWorkload(table, 500, env.seed + 1000);

  std::printf("\n%-14s %8s %8s %8s %8s %8s\n", "Estimator", "p25", "p50",
              "p75", "p95", "p99");

  auto measure = [&](Estimator* est) {
    ErrorReport report(est->name());
    QuantileSketch latency;
    EvaluateEstimator(est, test, n, &report, &latency);
    PrintLatencyRow(est->name(), latency);
  };

  Postgres1dEstimator postgres(table);
  measure(&postgres);

  Dbms1Estimator dbms1(table);
  measure(&dbms1);

  auto sample = SampleEstimator(table, SampleRows(table, 0.013), env.seed + 2);
  measure(&sample);

  auto kde = KdeEstimator(table, SampleRows(table, 0.013), env.seed + 3);
  measure(&kde);

  MscnConfig mcfg;
  mcfg.sample_rows = 1000;
  mcfg.seed = env.seed + 4;
  MscnEstimator mscn(table, mcfg);
  mscn.Train(train.queries, train.cards);
  measure(&mscn);

  MscnConfig big = mcfg;
  big.sample_rows = 10000;
  big.name = "MSCN-10K";
  MscnEstimator mscn10k(table, big);
  mscn10k.Train(train.queries, train.cards);
  measure(&mscn10k);

  auto model = TrainModel(table, DmvModelConfig(env.seed + 5), env.epochs,
                          "Naru(DMV)");
  for (size_t samples : {size_t{1000}, size_t{2000}}) {
    NaruEstimatorConfig ncfg;
    ncfg.num_samples = samples;
    ncfg.enumeration_threshold = 0;  // pure sampling path for latency
    NaruEstimator est(model.get(), ncfg, model->SizeBytes());
    measure(&est);
  }

  // Amortized serving throughput for contrast with the per-query latencies
  // above (same workload, answered through EstimateBatch; errors identical
  // to the sequential path by construction).
  {
    NaruEstimatorConfig ncfg;
    ncfg.num_samples = 1000;
    ncfg.enumeration_threshold = 0;
    NaruEstimator est(model.get(), ncfg, model->SizeBytes());
    const size_t batch = env.batch > 0 ? env.batch : 16;
    ErrorReport report(est.name());
    const double qps =
        EvaluateEstimatorBatched(&est, test, n, batch, &report);
    std::printf("\n%s batched: %.1f queries/sec at batch=%zu "
                "(estimator-owned engine on the global pool; see "
                "bench_serving_throughput for the threads grid)\n",
                est.name().c_str(), qps, batch);
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace naru

int main(int argc, char** argv) {
  naru::bench::InitBench(argc, argv);
  return naru::bench::Run();
}
