// Serving throughput: queries/sec of the batched, thread-parallel
// InferenceEngine versus the sequential one-query-at-a-time path.
//
// Workload model: a serving TRACE, not a one-shot evaluation set. A query
// optimizer enumerating join orders (or a dashboard refreshing panels)
// re-issues many identical cardinality requests, so the trace draws
// `serve-requests` requests uniformly from a pool of `serve-unique`
// distinct query templates. The sequential baseline (threads=1 / batch=1,
// the pre-engine serving path) recomputes every request from scratch;
// engine configurations amortize across the batch with shard-parallel
// sampling, shared workspaces, and exact-result caches.
//
// Every configuration must produce bit-identical estimates for the whole
// trace (asserted at the end), so the grid measures execution efficiency
// only — no accuracy is traded anywhere.
//
// The template pool is prefix-correlated two ways: half shares a
// leading-wildcard run of `--serve-prefix-wildcards` columns, and a
// quarter shares CONSTRAINED leading prefixes (identical equality
// literals on `--serve-shared-prefix` columns, drawn from a few template
// tuples) — the two structures hierarchical plan trees (src/plan) fuse.
// Every engine grid point runs as a three-way PLAN ABLATION: legacy
// (planning off), flat (one-level prefix groups, the pre-tree planner),
// and tree (hierarchical prefix forking) — so the tree/flat and
// tree/legacy speedups are measured directly, and every leg must produce
// bit-identical estimates.
//
// A second phase compares inference KERNELS (tensor/kernel.h) at the
// largest grid point: scalar vs simd vs simd_int8, each with a fresh
// estimator + engine, reporting qps, q-error quantiles against executed
// ground truth, and a bit-determinism check across thread counts within
// each kernel. Emits BENCH_serving_throughput.json (shared schema,
// row_schema v2: grid rows carry "plan" in {legacy, flat, tree}).
//
// Knobs (env or flags, see bench_common.h):
//   --kernel K          kernel for the GRID phase: scalar|simd|simd_int8
//                       (default scalar; the kernel phase always runs all
//                       three)
//   --threads N         restrict the engine thread grid to {N}  (default 2/4/8)
//   --batch N           restrict the batch grid to {N}          (default 1/8/64)
//   --serve-requests N  trace length                            (default 512)
//   --serve-unique N    distinct query templates in the pool    (default 256)
//   --serve-samples N   progressive sample paths per query      (default 512)
//   --serve-prefix-wildcards N  leading wildcard columns forced on half
//                       the pool (default 2; 0 disables shaping)
//   --serve-shared-prefix N  constrained-prefix columns shared by a quarter
//                       of the pool (default 2; 0 disables shaping)
//   --group-width W     plan fork fan-out cap: auto (width-aware, the
//                       default) or a fixed positive integer
//   --smoke             CI preset: tiny model/trace, single grid point;
//                       exits nonzero if any planned leg's estimates
//                       diverge from the sequential (or legacy) path, if a
//                       kernel is non-deterministic across thread counts,
//                       or if int8's median q-error shifts >5% vs fp32
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "serve/inference_engine.h"
#include "util/random.h"
#include "util/string_util.h"

namespace naru {
namespace bench {
namespace {

int Run() {
  const BenchEnv env = GetBenchEnv();
  const bool smoke = GetEnvBool("NARU_SMOKE", false);
  const size_t rows =
      smoke ? 6000 : std::min<size_t>(env.dmv_rows, 20000);
  // Clamped to sane ranges so a negative flag value cannot wrap to 2^64.
  const size_t num_requests = static_cast<size_t>(std::clamp<int64_t>(
      GetEnvInt("NARU_SERVE_REQUESTS", smoke ? 128 : 512), 1, 1 << 22));
  const size_t num_unique = static_cast<size_t>(std::clamp<int64_t>(
      GetEnvInt("NARU_SERVE_UNIQUE", smoke ? 64 : 256), 1, 1 << 22));
  const size_t num_samples = static_cast<size_t>(std::clamp<int64_t>(
      GetEnvInt("NARU_SERVE_SAMPLES", smoke ? 256 : 512), 1, 1 << 20));
  const size_t prefix_wildcards = static_cast<size_t>(
      std::clamp<int64_t>(GetEnvInt("NARU_SERVE_PREFIX_WILDCARDS", 2), 0, 64));
  const size_t shared_prefix = static_cast<size_t>(
      std::clamp<int64_t>(GetEnvInt("NARU_SERVE_SHARED_PREFIX", 3), 0, 64));
  // --group-width auto|N: the plan fork fan-out cap (0 = width-aware auto).
  const std::string width_str = GetEnvString("NARU_GROUP_WIDTH", "auto");
  const size_t group_width =
      width_str == "auto" || width_str == "0"
          ? 0
          : static_cast<size_t>(std::clamp<int64_t>(
                GetEnvInt("NARU_GROUP_WIDTH", 0), 1, 4096));
  PrintBanner(
      "Serving throughput: tree vs flat vs legacy engine vs sequential",
      StrFormat("rows=%zu requests=%zu unique=%zu samples=%zu "
                "prefix-wildcards=%zu shared-prefix=%zu group-width=%s "
                "kernel=%s (%s)%s",
                rows, num_requests, num_unique, num_samples, prefix_wildcards,
                shared_prefix, width_str.c_str(), KernelKindName(env.kernel),
                SimdDispatchString().c_str(), smoke ? " (smoke)" : ""));

  Table table = MakeDmvLike(rows, env.seed);
  auto model = TrainModel(table, DmvModelConfig(env.seed + 5),
                          std::min<size_t>(env.epochs, smoke ? 2 : 3),
                          "Naru(serving)");

  // Template pool (no ground truth needed for throughput): mixed filter
  // widths, including single-filter queries — when the filter lands on the
  // first model column those take the exact leading-only shortcut and
  // never sample. (The marginal-mass cache itself only gets hits across
  // differently-configured estimators sharing a model; with one estimator
  // the full-query memo always answers first, so the marginal column
  // below prints 0.) Half the pool shares a leading-wildcard run of
  // `prefix_wildcards` columns — the batch shape the plan layer shares.
  WorkloadConfig wcfg;
  wcfg.num_queries = num_unique;
  wcfg.min_filters = 1;
  wcfg.max_filters = 8;
  wcfg.leading_wildcards = prefix_wildcards;
  wcfg.leading_wildcard_fraction = prefix_wildcards > 0 ? 0.5 : 0.0;
  wcfg.shared_prefix_columns = shared_prefix;
  // Constrained prefixes are invisible to flat plans (leading-wildcard run
  // 0), so this fraction is the tree-only share of the trace. Two template
  // tuples keep each batch's literal groups wide enough to fork-share.
  wcfg.shared_prefix_fraction = shared_prefix > 0 ? 0.6 : 0.0;
  wcfg.shared_prefix_templates = 2;
  wcfg.seed = env.seed + 17;
  const std::vector<Query> pool = GenerateWorkload(table, wcfg);
  if (prefix_wildcards > 0) {
    size_t shaped = 0;
    for (const Query& q : pool) {
      shaped += q.LeadingWildcardRun() >= prefix_wildcards ? 1 : 0;
    }
    std::printf("# pool: %zu of %zu templates share a >=%zu-column "
                "leading-wildcard run\n",
                shaped, pool.size(), prefix_wildcards);
  }
  if (shared_prefix > 0) {
    // Constrained-prefix shaping is visible as repeated leading literals:
    // count templates whose first `shared_prefix` columns are all equality
    // constrained (wildcard-free leading run of length 0 + point regions).
    size_t constrained = 0;
    for (const Query& q : pool) {
      bool all = true;
      for (size_t c = 0; c < shared_prefix && all; ++c) {
        all = q.wildcard_mask()[c] == 0;
      }
      constrained += all && q.LeadingWildcardRun() == 0 ? 1 : 0;
    }
    std::printf("# pool: %zu of %zu templates constrain their first %zu "
                "columns (shared-literal prefixes)\n",
                constrained, pool.size(), shared_prefix);
  }

  // The trace: uniform draws from the pool. Deterministic in the seed.
  // Template indices are kept so the kernel phase can attach per-request
  // ground truth without executing the trace itself.
  Rng trace_rng(env.seed + 23);
  std::vector<Query> trace;
  std::vector<size_t> trace_tpl;
  trace.reserve(num_requests);
  trace_tpl.reserve(num_requests);
  for (size_t i = 0; i < num_requests; ++i) {
    trace_tpl.push_back(trace_rng.UniformInt(pool.size()));
    trace.push_back(pool[trace_tpl.back()]);
  }

  NaruEstimatorConfig ncfg;
  ncfg.num_samples = num_samples;
  ncfg.enumeration_threshold = 0;  // pure sampling path: clean scaling story
  ncfg.kernel = env.kernel;        // grid phase runs on the --kernel choice
  NaruEstimator est(model.get(), ncfg, model->SizeBytes());

  std::vector<size_t> thread_grid = smoke ? std::vector<size_t>{2}
                                          : std::vector<size_t>{2, 4, 8};
  std::vector<size_t> batch_grid = smoke ? std::vector<size_t>{64}
                                         : std::vector<size_t>{1, 8, 64};
  if (env.threads > 0) thread_grid = {env.threads};
  if (env.batch > 0) batch_grid = {env.batch};

  std::printf("\n%8s %6s %6s %10s %10s %9s %9s %6s %6s %5s %6s\n", "threads",
              "batch", "plan", "qps", "speedup", "memo", "sampled", "trees",
              "share", "depth", "saved");

  // Baseline: the sequential pre-engine path — one thread, one query at a
  // time, no cross-query sharing of any kind.
  std::vector<double> reference(trace.size());
  double baseline_qps;
  {
    ScopedSerialRegion serial;
    Stopwatch sw;
    for (size_t i = 0; i < trace.size(); ++i) {
      reference[i] = est.EstimateSelectivity(trace[i]);
    }
    const double secs = sw.ElapsedSeconds();
    baseline_qps = secs > 0 ? static_cast<double>(trace.size()) / secs : 0.0;
  }
  std::printf(
      "%8d %6d %6s %10.1f %9.2fx %9s %9zu %6s %6s %5s %6s   (sequential)\n", 1,
      1, "-", baseline_qps, 1.0, "-", trace.size(), "-", "-", "-", "-");

  BenchJsonWriter json("serving_throughput");
  json.SetConfig("rows", rows);
  json.SetConfig("requests", num_requests);
  json.SetConfig("unique", num_unique);
  json.SetConfig("samples", num_samples);
  json.SetConfig("grid_kernel", KernelKindName(env.kernel));
  json.SetConfig("smoke", smoke);
  json.SetConfig("row_schema", "v2");
  json.SetConfig("group_width", width_str);

  // One ablation leg per grid point: planning off, flat one-level groups,
  // or hierarchical trees.
  struct PlanLeg {
    const char* name;
    bool planned;
    PlanMode mode;
  };
  const PlanLeg kLegs[] = {{"legacy", false, PlanMode::kFlat},
                           {"flat", true, PlanMode::kFlat},
                           {"tree", true, PlanMode::kTree}};

  // Runs the whole trace through a fresh engine; returns qps, fills
  // per-request estimates. Every result must come back OK — nothing here
  // carries a deadline.
  auto run_trace = [&](NaruEstimator* e, size_t threads, size_t batch,
                       const PlanLeg& leg, std::vector<double>* results,
                       EngineStats* stats_out) -> double {
    InferenceEngineConfig ecfg;
    ecfg.num_threads = threads;
    ecfg.enable_plan = leg.planned;
    ecfg.plan_mode = leg.mode;
    ecfg.group_width = group_width;
    InferenceEngine engine(ecfg);  // fresh engine: caches start cold
    results->assign(trace.size(), 0.0);
    std::vector<EstimateRequest> chunk;
    std::vector<EstimateResult> chunk_out;
    bool all_ok = true;
    Stopwatch sw;
    for (size_t lo = 0; lo < trace.size(); lo += batch) {
      const size_t hi = std::min(trace.size(), lo + batch);
      chunk.clear();
      for (size_t i = lo; i < hi; ++i) chunk.emplace_back(trace[i]);
      engine.EstimateBatch(e, chunk, &chunk_out);
      for (size_t i = lo; i < hi; ++i) {
        if (!chunk_out[i - lo].ok()) all_ok = false;
        (*results)[i] = chunk_out[i - lo].estimate;
      }
    }
    const double secs = sw.ElapsedSeconds();
    if (stats_out != nullptr) *stats_out = engine.stats();
    return all_ok && secs > 0 ? static_cast<double>(trace.size()) / secs
                              : 0.0;
  };

  double headline_tree = 0;    // largest threads x largest batch, trees
  double headline_flat = 0;    // same point, flat one-level groups
  double headline_legacy = 0;  // same point, planning disabled
  bool all_identical = true;

  for (size_t threads : thread_grid) {
    for (size_t batch : batch_grid) {
      for (const PlanLeg& leg : kLegs) {
        // Typed serving surface: default-option requests are required to
        // be bit-identical to the sequential path. Best-of-3 per leg: each
        // rep runs a fresh (cold) engine, so the max measures the engine,
        // not the scheduler's worst interruption.
        std::vector<double> results;
        EngineStats stats;
        double qps = 0.0;
        for (int rep = 0; rep < 3; ++rep) {
          qps = std::max(
              qps, run_trace(&est, threads, batch, leg, &results, &stats));
          if (results != reference) all_identical = false;
        }
        if (threads == thread_grid.back() && batch == batch_grid.back()) {
          if (!leg.planned) {
            headline_legacy = qps;
          } else if (leg.mode == PlanMode::kTree) {
            headline_tree = qps;
          } else {
            headline_flat = qps;
          }
        }

        // "saved" = shared column steps beyond what flat one-level groups
        // would have shared on the same batches.
        const size_t saved =
            stats.plan_shared_cols > stats.plan_flat_shared_cols
                ? stats.plan_shared_cols - stats.plan_flat_shared_cols
                : 0;
        std::printf(
            "%8zu %6zu %6s %10.1f %9.2fx %9zu %9zu %6zu %6.3f %5zu %6zu\n",
            threads, batch, leg.name, qps,
            baseline_qps > 0 ? qps / baseline_qps : 0.0, stats.memo_hits,
            stats.sampled, stats.plan_trees, stats.prefix_share_ratio(),
            stats.plan_max_depth, saved);
        json.AddRow({{"phase", "grid"},
                     {"threads", threads},
                     {"batch", batch},
                     {"plan", leg.name},
                     {"qps", qps},
                     {"speedup_vs_sequential",
                      baseline_qps > 0 ? qps / baseline_qps : 0.0}});
      }
    }
  }

  std::printf("\nestimates bit-identical across all configurations: %s\n",
              all_identical ? "yes" : "NO (BUG)");
  if (headline_legacy > 0 && headline_flat > 0 && headline_tree > 0) {
    std::printf(
        "headline: tree vs flat plans at threads=%zu/batch=%zu = %.2fx "
        "(tree %.2fx, flat %.2fx, legacy %.2fx over sequential)\n",
        thread_grid.back(), batch_grid.back(), headline_tree / headline_flat,
        baseline_qps > 0 ? headline_tree / baseline_qps : 0.0,
        baseline_qps > 0 ? headline_flat / baseline_qps : 0.0,
        baseline_qps > 0 ? headline_legacy / baseline_qps : 0.0);
    json.SetConfig("headline_tree_vs_flat", headline_tree / headline_flat);
  }

  // --- Kernel comparison at the largest grid point ---------------------
  //
  // One estimator per kernel, used strictly one at a time (the kernel is
  // model-wide state; see NaruEstimatorConfig::kernel). Ground truth is
  // executed once per template, so accuracy is a real q-error, not a
  // fp32-vs-fp32 diff. Within each kernel the estimates must be
  // bit-identical across thread counts; across kernels only the q-error
  // distribution is compared.
  const size_t kthreads = thread_grid.back();
  const size_t kbatch = batch_grid.back();
  std::printf("\nkernel comparison (threads=%zu batch=%zu, planned):\n",
              kthreads, kbatch);
  std::printf("%-10s %10s %9s %9s %9s %9s %6s\n", "kernel", "qps", "speedup",
              "qerr-med", "qerr-p95", "qerr-max", "det");
  const std::vector<int64_t> pool_cards = ExecuteCounts(table, pool);

  bool kernels_ok = true;
  double scalar_qps = 0, scalar_median = 0, int8_median = 0;
  for (const KernelKind kernel :
       {KernelKind::kScalar, KernelKind::kSimd, KernelKind::kSimdInt8}) {
    NaruEstimatorConfig kcfg = ncfg;
    kcfg.kernel = kernel;
    NaruEstimator kest(model.get(), kcfg, model->SizeBytes());

    std::vector<double> results, results_alt;
    const double qps =
        run_trace(&kest, kthreads, kbatch, kLegs[2], &results, nullptr);
    // Determinism contract: a different thread count must not change a
    // single bit of any estimate under the same kernel.
    const size_t alt_threads = kthreads > 2 ? 2 : kthreads + 1;
    run_trace(&kest, alt_threads, kbatch, kLegs[2], &results_alt, nullptr);
    const bool deterministic = results == results_alt;
    if (!deterministic) kernels_ok = false;

    QuantileSketch qerr;
    for (size_t i = 0; i < trace.size(); ++i) {
      qerr.Add(QError(results[i] * static_cast<double>(rows),
                      static_cast<double>(pool_cards[trace_tpl[i]])));
    }
    const ErrorQuantiles eq = ComputeErrorQuantiles(qerr);
    if (kernel == KernelKind::kScalar) {
      scalar_qps = qps;
      scalar_median = eq.median;
    }
    if (kernel == KernelKind::kSimdInt8) int8_median = eq.median;
    const double speedup = scalar_qps > 0 ? qps / scalar_qps : 0.0;
    std::printf("%-10s %10.1f %8.2fx %9.3f %9.3f %9.3f %6s\n",
                KernelKindName(kernel), qps, speedup, eq.median, eq.p95,
                eq.max, deterministic ? "yes" : "NO");
    json.AddRow({{"phase", "kernel"},
                 {"kernel", KernelKindName(kernel)},
                 {"threads", kthreads},
                 {"batch", kbatch},
                 {"qps", qps},
                 {"speedup_vs_scalar_kernel", speedup},
                 {"qerr_median", eq.median},
                 {"qerr_p95", eq.p95},
                 {"qerr_max", eq.max},
                 {"deterministic_across_threads", deterministic}});
  }
  // Quantization is allowed to move accuracy, but only barely: the int8
  // median q-error must stay within 5% of the fp32 one.
  const double int8_shift =
      scalar_median > 0 ? std::fabs(int8_median - scalar_median) / scalar_median
                        : 0.0;
  std::printf("int8 median q-error shift vs fp32: %.2f%% (bound 5%%)\n",
              int8_shift * 100.0);
  json.SetConfig("int8_median_qerr_shift", int8_shift);
  json.Write();
  if (!kernels_ok) {
    std::printf("FAIL: kernel estimates not bit-identical across threads\n");
  }
  if (smoke && int8_shift > 0.05) {
    std::printf("FAIL: int8 q-error shift exceeds 5%%\n");
    kernels_ok = false;
  }
  return all_identical && kernels_ok ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace naru

int main(int argc, char** argv) {
  naru::bench::InitBench(argc, argv);
  return naru::bench::Run();
}
