// Table 8: robustness to data shifts (§6.7.3).
//
// The DMV-like table is split into 5 date-ordered partitions with drifting
// cluster mix. Estimators are built after the first partition; after each
// subsequent ingest we query all data ingested so far, comparing a stale
// model against one refreshed with gradient updates on the grown relation.
// Expected shape: the refreshed model's errors stay flat; the stale model
// degrades gracefully but steadily.
#include <cstdio>

#include "bench_common.h"
#include "util/string_util.h"

namespace naru {
namespace bench {
namespace {

int Run() {
  const BenchEnv env = GetBenchEnv();
  const size_t queries = std::min<size_t>(env.queries, 40);
  const size_t psamples =
      static_cast<size_t>(GetEnvInt("NARU_T8_PSAMPLES", 1500));
  constexpr int kParts = 5;
  PrintBanner("Table 8: robustness to data shifts (5 partition ingests)",
              StrFormat("rows=%zu queries/ingest=%zu psamples=%zu",
                        env.dmv_rows, queries, psamples));

  Table full = MakeDmvLike(env.dmv_rows, env.seed, kParts);
  const size_t part_rows = full.num_rows() / kParts;

  Table part1 = full.Slice(0, part_rows, full.num_columns());
  MadeModel::Config mcfg = DmvModelConfig(env.seed + 5);

  MadeModel stale(TableDomains(full), mcfg);
  {
    TrainerConfig tcfg;
    tcfg.epochs = env.epochs;
    tcfg.batch_size = 512;
    Trainer t(&stale, tcfg);
    t.Train(part1);
  }
  MadeModel refreshed(TableDomains(full), mcfg);
  TrainerConfig rcfg;
  rcfg.epochs = env.epochs;
  rcfg.batch_size = 512;
  Trainer refresher(&refreshed, rcfg);
  refresher.Train(part1);

  std::printf("\n%-10s | %-22s | %-22s\n", "",
              "Naru refreshed", "Naru stale");
  std::printf("%-10s | %-10s %-10s | %-10s %-10s\n", "ingested", "90th",
              "max", "90th", "max");

  for (int part = 1; part <= kParts; ++part) {
    Table seen = full.Slice(0, part_rows * static_cast<size_t>(part),
                            full.num_columns());
    if (part > 1) {
      // Refresh on samples from the updated relation (§4.1).
      refresher.FineTune(seen, /*passes=*/1);
    }
    // Queries drawn from first-partition tuples, truth over all ingested
    // data (the paper's protocol).
    WorkloadConfig wcfg;
    wcfg.num_queries = queries;
    wcfg.min_filters = 5;
    wcfg.max_filters = 11;
    wcfg.seed = env.seed + 100 + static_cast<uint64_t>(part);
    auto probes = GenerateWorkload(part1, wcfg);
    // Re-bind the queries to the grown table (same regions, new truth).
    QuantileSketch refreshed_err;
    QuantileSketch stale_err;
    const double n = static_cast<double>(seen.num_rows());
    for (auto& q : probes) {
      Query grown(seen, q.predicates());
      const double truth =
          ExecuteSelectivity(seen, grown) * n;
      NaruEstimatorConfig ncfg;
      ncfg.num_samples = psamples;
      ncfg.sampler_seed = env.seed + 6;
      NaruEstimator est_fresh(&refreshed, ncfg, 0, "fresh");
      NaruEstimator est_stale(&stale, ncfg, 0, "stale");
      refreshed_err.Add(
          QError(est_fresh.EstimateSelectivity(grown) * n, truth));
      stale_err.Add(
          QError(est_stale.EstimateSelectivity(grown) * n, truth));
    }
    std::printf("%-10d | %-10s %-10s | %-10s %-10s\n", part,
                FormatPaperNumber(refreshed_err.Quantile(0.9)).c_str(),
                FormatPaperNumber(refreshed_err.Quantile(1.0)).c_str(),
                FormatPaperNumber(stale_err.Quantile(0.9)).c_str(),
                FormatPaperNumber(stale_err.Quantile(1.0)).c_str());
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace naru

int main(int argc, char** argv) {
  naru::bench::InitBench(argc, argv);
  return naru::bench::Run();
}
