// §3.1 ablation: column-order sensitivity and multi-order ensembling.
//
// The paper notes the autoregressive model "can be architected to use any
// ordering(s) of the attributes" and ships the table order. This bench
// quantifies what the choice costs: it trains K models over K different
// orders, evaluates each alone, and evaluates the K-way ensemble at a
// MATCHED total sample budget (each member gets budget/K progressive
// paths). Per-query variance depends on where the filtered columns fall in
// the walk order, so averaging across orders flattens the error tail —
// the effect NeuroCard later exploited.
#include <cstdio>

#include "bench_common.h"
#include "core/ensemble.h"
#include "util/string_util.h"

namespace naru {
namespace bench {
namespace {

int Run() {
  const BenchEnv env = GetBenchEnv();
  const size_t kOrders = 4;
  const size_t kTotalSamples = 2000;
  PrintBanner(
      "Ablation (§3.1): column orderings and multi-order ensembles",
      StrFormat("DMV rows=%zu queries=%zu orders=%zu total-samples=%zu",
                env.dmv_rows / 2, env.queries / 2, kOrders, kTotalSamples));

  Table table = MakeDmvLike(env.dmv_rows / 2, env.seed);
  Workload workload =
      MakeWorkload(table, env.queries / 2, env.seed + 31);

  MultiOrderConfig cfg;
  cfg.num_orders = kOrders;
  cfg.model = DmvModelConfig(env.seed + 7);
  cfg.trainer.epochs = std::max<size_t>(env.epochs / 2, 3);
  cfg.estimator.num_samples = kTotalSamples / kOrders;
  cfg.order_seed = env.seed + 91;
  MultiOrderEnsemble ensemble(table, cfg);
  std::printf("# trained %zu members (%s total)\n", ensemble.num_members(),
              HumanBytes(ensemble.SizeBytes()).c_str());

  // Each member alone, at the FULL budget (order sensitivity)...
  std::vector<std::unique_ptr<ErrorReport>> reports;
  for (size_t k = 0; k < kOrders; ++k) {
    auto rep = std::make_unique<ErrorReport>(StrFormat("order-%zu", k));
    for (size_t qi = 0; qi < workload.queries.size(); ++qi) {
      // Scale member estimates to the full budget by averaging repeats.
      double est = 0;
      for (size_t rep_i = 0; rep_i < kOrders; ++rep_i) {
        est += ensemble.MemberEstimate(k, workload.queries[qi]);
      }
      est /= static_cast<double>(kOrders);
      rep->Add(est * static_cast<double>(table.num_rows()),
               static_cast<double>(workload.cards[qi]),
               workload.sels[qi]);
    }
    reports.push_back(std::move(rep));
  }

  // ...vs the ensemble at the same total budget.
  auto ens_rep = std::make_unique<ErrorReport>(
      StrFormat("ensemble-%zux%zu", kOrders, kTotalSamples / kOrders));
  for (size_t qi = 0; qi < workload.queries.size(); ++qi) {
    const double est = ensemble.EstimateSelectivity(workload.queries[qi]);
    ens_rep->Add(est * static_cast<double>(table.num_rows()),
                 static_cast<double>(workload.cards[qi]),
                 workload.sels[qi]);
  }
  reports.push_back(std::move(ens_rep));

  std::vector<const ErrorReport*> ptrs;
  for (const auto& r : reports) ptrs.push_back(r.get());
  PrintErrorTable("Per-order estimators vs multi-order ensemble "
                  "(matched total sample budget)",
                  ptrs);
  std::printf(
      "# expected shape: individual orders differ noticeably at the tail; "
      "the ensemble\n# tracks (or beats) the best single order without "
      "knowing which one that is.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace naru

int main(int argc, char** argv) {
  naru::bench::InitBench(argc, argv);
  return naru::bench::Run();
}
