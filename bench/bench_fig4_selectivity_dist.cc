// Figure 4: distribution of true query selectivities for the generated
// workloads (DMV and Conviva-A). The §6.1.3 generator must cover a wide
// spectrum from <=0.1% to tens of percent.
#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "util/string_util.h"

namespace naru {
namespace bench {
namespace {

void PrintCdf(const std::string& name, std::vector<double> sels) {
  std::sort(sels.begin(), sels.end());
  std::printf("\n%s (n=%zu): selectivity CDF\n", name.c_str(), sels.size());
  std::printf("%-12s %s\n", "sel <=", "fraction of queries");
  for (double threshold :
       {1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1, 1.0}) {
    const auto it = std::upper_bound(sels.begin(), sels.end(), threshold);
    const double frac = static_cast<double>(it - sels.begin()) /
                        static_cast<double>(sels.size());
    std::printf("%-12g %.3f %s\n", threshold, frac,
                std::string(static_cast<size_t>(frac * 40), '#').c_str());
  }
  size_t high = 0;
  size_t medium = 0;
  size_t low = 0;
  for (double s : sels) {
    switch (BucketForSelectivity(s)) {
      case SelectivityBucket::kHigh:
        ++high;
        break;
      case SelectivityBucket::kMedium:
        ++medium;
        break;
      case SelectivityBucket::kLow:
        ++low;
        break;
    }
  }
  std::printf("buckets: high(>2%%)=%zu medium(0.5-2%%)=%zu low(<=0.5%%)=%zu\n",
              high, medium, low);
}

int Run() {
  const BenchEnv env = GetBenchEnv();
  PrintBanner("Figure 4: distribution of query selectivities",
              StrFormat("queries=%zu per dataset", env.queries));

  Table dmv = MakeDmvLike(env.dmv_rows, env.seed);
  PrintCdf("DMV", MakeWorkload(dmv, env.queries, env.seed + 1).sels);

  Table conviva = MakeConvivaALike(env.conva_rows, env.seed);
  PrintCdf("Conviva-A",
           MakeWorkload(conviva, env.queries, env.seed + 1).sels);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace naru

int main(int argc, char** argv) {
  naru::bench::InitBench(argc, argv);
  return naru::bench::Run();
}
