// Table 3: estimation errors on DMV across all estimator families.
//
// Reproduces the paper's headline comparison: q-error quantiles grouped by
// true selectivity for Hist, Indep, Postgres, DBMS-1, Sample, KDE,
// KDE-superv, MSCN-{base,0,10K} and Naru-{1000,2000}. Expected shape:
// independence-based estimators blow up at tail; Sample/MSCN collapse on
// low selectivity; Naru stays single-digit at the tail.
#include <cstdio>
#include <memory>

#include "bench_common.h"
#include "estimator/bayesnet.h"
#include "estimator/dbms1.h"
#include "estimator/hist_nd.h"
#include "estimator/indep.h"
#include "estimator/kde.h"
#include "estimator/mscn.h"
#include "estimator/postgres1d.h"
#include "estimator/sample.h"
#include "util/string_util.h"

namespace naru {
namespace bench {
namespace {

int Run() {
  const BenchEnv env = GetBenchEnv();
  PrintBanner("Table 3: estimation errors on DMV",
              StrFormat("rows=%zu queries=%zu epochs=%zu (env NARU_*)",
                        env.dmv_rows, env.queries, env.epochs));

  Table table = MakeDmvLike(env.dmv_rows, env.seed);
  const size_t n = table.num_rows();
  const size_t budget = BudgetBytes(table, 0.013);  // paper: 1.3% of data
  std::printf("# joint space 10^%.1f, budget %s\n",
              table.Log10JointSpaceSize(), HumanBytes(budget).c_str());

  const Workload test = MakeWorkload(table, env.queries, env.seed + 1);
  // Training workloads for the supervised baselines (disjoint seed).
  const Workload train =
      MakeWorkload(table, env.mscn_queries, env.seed + 1000);

  std::vector<std::unique_ptr<ErrorReport>> reports;
  std::vector<std::pair<std::string, size_t>> sizes;
  auto evaluate = [&](Estimator* est) {
    reports.push_back(std::make_unique<ErrorReport>(est->name()));
    EvaluateEstimator(est, test, n, reports.back().get());
    sizes.emplace_back(est->name(), est->SizeBytes());
  };

  HistNdEstimator hist(table, budget);
  evaluate(&hist);

  IndepEstimator indep(table);
  evaluate(&indep);

  Postgres1dEstimator postgres(table);
  evaluate(&postgres);

  Dbms1Estimator dbms1(table);
  evaluate(&dbms1);

  // Extension row (not in the paper's Table 3): the classic PRM-family
  // baseline — a Chow-Liu tree with exact inference. Captures pairwise
  // structure, so it sits between the independence family and Naru.
  BayesNetEstimator bayesnet(table);
  evaluate(&bayesnet);

  auto sample = SampleEstimator(table, SampleRows(table, 0.013), env.seed + 2);
  evaluate(&sample);

  auto kde = KdeEstimator(table, SampleRows(table, 0.013), env.seed + 3);
  evaluate(&kde);

  auto kde_superv =
      KdeEstimator(table, SampleRows(table, 0.013), env.seed + 3, "KDE-superv");
  {
    // Tune on a slice of the training workload (query feedback).
    const size_t tune = std::min<size_t>(train.queries.size(), 300);
    std::vector<Query> tq(train.queries.begin(),
                          train.queries.begin() + tune);
    std::vector<double> ts(train.sels.begin(), train.sels.begin() + tune);
    KdeSupervisedTune(&kde_superv, tq, ts, /*rounds=*/2);
  }
  evaluate(&kde_superv);

  auto train_mscn = [&](MscnConfig cfg) {
    auto mscn = std::make_unique<MscnEstimator>(table, cfg);
    mscn->Train(train.queries, train.cards);
    return mscn;
  };
  MscnConfig base_cfg;
  base_cfg.sample_rows = 1000;
  base_cfg.name = "MSCN-base";
  base_cfg.seed = env.seed + 4;
  auto mscn_base = train_mscn(base_cfg);
  evaluate(mscn_base.get());

  MscnConfig zero_cfg = base_cfg;
  zero_cfg.sample_rows = 0;
  zero_cfg.name = "MSCN-0";
  auto mscn_0 = train_mscn(zero_cfg);
  evaluate(mscn_0.get());

  MscnConfig big_cfg = base_cfg;
  big_cfg.sample_rows = 10000;
  big_cfg.name = "MSCN-10K";
  auto mscn_10k = train_mscn(big_cfg);
  evaluate(mscn_10k.get());

  auto model = TrainModel(table, DmvModelConfig(env.seed + 5), env.epochs,
                          "Naru(DMV)");
  for (size_t samples : {size_t{1000}, size_t{2000}}) {
    NaruEstimatorConfig ncfg;
    ncfg.num_samples = samples;
    ncfg.sampler_seed = env.seed + 6;
    NaruEstimator est(model.get(), ncfg, model->SizeBytes());
    evaluate(&est);
  }

  std::vector<const ErrorReport*> rows;
  for (const auto& r : reports) rows.push_back(r.get());
  PrintErrorTable("Errors grouped by true selectivity "
                  "(median / 95th / 99th / max):",
                  rows);

  std::printf("\nEstimator sizes:\n");
  for (const auto& [name, bytes] : sizes) {
    std::printf("  %-14s %s\n", name.c_str(), HumanBytes(bytes).c_str());
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace naru

int main(int argc, char** argv) {
  naru::bench::InitBench(argc, argv);
  return naru::bench::Run();
}
