// Async serving latency: Submit()-based streaming vs the blocking path,
// under OPEN-LOOP load.
//
// bench_serving_throughput measures closed-loop throughput (the next batch
// waits for the previous one); real servers face open-loop arrivals — a
// Poisson process that does not slow down when the server falls behind, so
// queueing delay shows up in the latency a client observes. This bench
// replays one such trace two ways:
//
//   blocking   sleep to each arrival, then answer that single query with a
//              blocking EstimateBatch before reading the next — request
//              arrival and sampling never overlap, so any service backlog
//              is paid as queueing delay;
//   async      sleep to each arrival, Submit() to the AsyncEngine, move
//              on — the dispatcher coalesces adaptive micro-batches
//              (flush on max-batch or the max-wait deadline) while later
//              requests keep arriving.
//
// Latency is measured against the SCHEDULED arrival (completion − arrival),
// so it includes queueing delay. Every configuration must produce estimates
// bit-identical to the sequential per-query path (checked; nonzero exit on
// mismatch) — the grid trades latency against batching, never accuracy.
//
// Knobs (env or flags, see bench_common.h):
//   --threads N         engine threads                  (default 4, smoke 2)
//   --serve-requests N  trace length                    (default 256)
//   --serve-unique N    distinct query templates        (default 64)
//   --serve-samples N   sample paths per query          (default 256)
//   --serve-qps X       open-loop arrival rate; 0 = all arrive at t=0
//                       (default 200, smoke 0)
//   --max-batch N       async flush size                (default 32)
//   --max-wait-ms X     restrict the deadline grid to {X} (default 0/2/8)
//   --serve-mixed-priority  also replay the trace with cycling priority
//                       classes and every 4th request carrying an expired
//                       deadline: asserts typed DEADLINE_EXCEEDED results,
//                       shed counters, and priority-ordered flushing
//                       (default off; ON under --smoke so CI exercises
//                       the shedding path on every push)
//   --serve-saturation  also replay the trace as an open-loop burst
//                       (QPS >> service rate) against a BOUNDED pending
//                       queue: asserts the admission policy — queue depth
//                       never exceeds --max-pending, only the low class
//                       is admission-shed while it has pending work
//                       (typed RESOURCE_EXHAUSTED), and every non-shed
//                       result stays bit-identical to the unsaturated
//                       sequential run (default off; ON under --smoke)
//   --max-pending N     pending-queue bound for the saturation phase
//                       (default 8)
//   --smoke             CI preset: tiny model, no arrival sleeps
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <future>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "serve/async_engine.h"
#include "util/string_util.h"

namespace naru {
namespace bench {
namespace {

using SteadyClock = std::chrono::steady_clock;

SteadyClock::duration MsToDuration(double ms) {
  return std::chrono::duration_cast<SteadyClock::duration>(
      std::chrono::duration<double, std::milli>(ms));
}

void PrintRow(const char* mode, double wait_ms, double achieved_qps,
              const QuantileSketch& latency_ms, size_t batches,
              size_t largest) {
  std::printf("%10s %9s %9.1f %8.2f %8.2f %8.2f %8.2f %8zu %8zu\n", mode,
              wait_ms < 0 ? "-" : StrFormat("%.1f", wait_ms).c_str(),
              achieved_qps, latency_ms.Quantile(0.5), latency_ms.Quantile(0.9),
              latency_ms.Quantile(0.99), latency_ms.Max(), batches, largest);
}

int Run() {
  const BenchEnv env = GetBenchEnv();
  const bool smoke = GetEnvBool("NARU_SMOKE", false);
  const size_t rows = std::min<size_t>(env.dmv_rows, smoke ? 4000 : 20000);
  const size_t epochs = std::min<size_t>(env.epochs, smoke ? 1 : 3);
  const size_t num_requests = static_cast<size_t>(std::clamp<int64_t>(
      GetEnvInt("NARU_SERVE_REQUESTS", smoke ? 64 : 256), 1, 1 << 22));
  const size_t num_unique = static_cast<size_t>(std::clamp<int64_t>(
      GetEnvInt("NARU_SERVE_UNIQUE", smoke ? 24 : 64), 1, 1 << 22));
  const size_t num_samples = static_cast<size_t>(std::clamp<int64_t>(
      GetEnvInt("NARU_SERVE_SAMPLES", smoke ? 128 : 256), 1, 1 << 20));
  const double qps =
      std::max(GetEnvDouble("NARU_SERVE_QPS", smoke ? 0.0 : 200.0), 0.0);
  const size_t threads = env.threads > 0 ? env.threads : (smoke ? 2 : 4);
  const size_t max_batch = static_cast<size_t>(
      std::clamp<int64_t>(GetEnvInt("NARU_MAX_BATCH", 32), 1, 1 << 20));
  std::vector<double> wait_grid = {0.0, 2.0, 8.0};
  const double wait_override = GetEnvDouble("NARU_MAX_WAIT_MS", -1.0);
  if (wait_override >= 0) wait_grid = {wait_override};
  if (smoke && wait_override < 0) wait_grid = {1.0};

  PrintBanner("Async serving latency: open-loop Submit vs blocking",
              StrFormat("rows=%zu requests=%zu unique=%zu samples=%zu "
                        "qps=%.0f threads=%zu max_batch=%zu",
                        rows, num_requests, num_unique, num_samples, qps,
                        threads, max_batch));

  Table table = MakeDmvLike(rows, env.seed);
  auto model = TrainModel(table, DmvModelConfig(env.seed + 5), epochs,
                          "Naru(async)");

  WorkloadConfig wcfg;
  wcfg.num_queries = num_unique;
  wcfg.min_filters = 1;
  wcfg.max_filters = 8;
  wcfg.seed = env.seed + 17;
  const std::vector<Query> pool = GenerateWorkload(table, wcfg);
  const std::vector<OpenLoopRequest> trace =
      GenerateOpenLoopTrace(num_requests, qps, pool.size(), env.seed + 29);

  NaruEstimatorConfig ncfg;
  ncfg.num_samples = num_samples;
  ncfg.enumeration_threshold = 0;
  NaruEstimator est(model.get(), ncfg, model->SizeBytes());

  // The bit-identity reference: the sequential per-query path.
  std::vector<double> reference(pool.size());
  {
    ScopedSerialRegion serial;
    for (size_t i = 0; i < pool.size(); ++i) {
      reference[i] = est.EstimateSelectivity(pool[i]);
    }
  }

  std::printf("\n%10s %9s %9s %8s %8s %8s %8s %8s %8s\n", "mode", "wait_ms",
              "qps", "p50_ms", "p90_ms", "p99_ms", "max_ms", "batches",
              "largest");

  bool all_identical = true;

  BenchJsonWriter json("serving_async");
  json.SetConfig("rows", rows);
  json.SetConfig("requests", num_requests);
  json.SetConfig("unique", num_unique);
  json.SetConfig("samples", num_samples);
  json.SetConfig("qps", qps);
  json.SetConfig("threads", threads);
  json.SetConfig("max_batch", max_batch);
  json.SetConfig("smoke", smoke);
  // One row per mode; "mode" is the row identity the regression checker
  // joins on, numeric fields are the gated metrics.
  const auto add_latency_row = [&json](const std::string& mode, double qps_out,
                                       const QuantileSketch& lat,
                                       size_t batches, size_t largest) {
    json.AddRow(JsonObject{{"mode", mode},
                           {"qps", qps_out},
                           {"p50_ms", lat.Quantile(0.5)},
                           {"p90_ms", lat.Quantile(0.9)},
                           {"p99_ms", lat.Quantile(0.99)},
                           {"max_ms", lat.Max()},
                           {"batches", batches},
                           {"largest_batch", largest}});
  };

  // ---- Blocking baseline: arrival and sampling never overlap. ----
  {
    InferenceEngineConfig ecfg;
    ecfg.num_threads = threads;
    InferenceEngine engine(ecfg);
    QuantileSketch latency_ms;
    std::vector<EstimateRequest> one;
    std::vector<EstimateResult> out;
    const auto start = SteadyClock::now();
    for (const OpenLoopRequest& req : trace) {
      const auto scheduled = start + MsToDuration(req.arrival_ms);
      std::this_thread::sleep_until(scheduled);
      one.assign(1, EstimateRequest(pool[req.pool_index]));
      engine.EstimateBatch(&est, one, &out);
      if (!out[0].ok() || out[0].estimate != reference[req.pool_index]) {
        all_identical = false;
      }
      const std::chrono::duration<double, std::milli> lat =
          SteadyClock::now() - scheduled;
      latency_ms.Add(lat.count());
    }
    const std::chrono::duration<double> total = SteadyClock::now() - start;
    const double achieved =
        total.count() > 0 ? num_requests / total.count() : 0.0;
    PrintRow("blocking", -1.0, achieved, latency_ms, num_requests, 1);
    add_latency_row("blocking", achieved, latency_ms, num_requests, 1);
  }

  // ---- Async grid: one max-wait deadline per row. ----
  for (const double wait_ms : wait_grid) {
    AsyncEngineConfig acfg;
    acfg.max_batch_size = max_batch;
    acfg.max_wait_ms = wait_ms;
    acfg.engine.num_threads = threads;
    AsyncEngine engine(acfg);

    std::vector<double> latencies(trace.size(), 0.0);
    std::vector<std::future<EstimateResult>> futures;
    futures.reserve(trace.size());
    const auto start = SteadyClock::now();
    for (size_t i = 0; i < trace.size(); ++i) {
      const auto scheduled = start + MsToDuration(trace[i].arrival_ms);
      std::this_thread::sleep_until(scheduled);
      futures.push_back(engine.Submit(
          &est, EstimateRequest(pool[trace[i].pool_index]),
          // Runs on the dispatcher thread right before the future
          // resolves; the later future.get() sequences the write.
          [&latencies, i, scheduled](const EstimateResult&) {
            const std::chrono::duration<double, std::milli> lat =
                SteadyClock::now() - scheduled;
            latencies[i] = lat.count();
          }));
    }
    engine.Drain();
    const std::chrono::duration<double> total = SteadyClock::now() - start;

    QuantileSketch latency_ms;
    for (size_t i = 0; i < trace.size(); ++i) {
      const EstimateResult r = futures[i].get();
      if (!r.ok() || r.estimate != reference[trace[i].pool_index]) {
        all_identical = false;
      }
      latency_ms.Add(latencies[i]);
    }
    const auto astats = engine.async_stats();
    const double achieved =
        total.count() > 0 ? num_requests / total.count() : 0.0;
    PrintRow("async", wait_ms, achieved, latency_ms, astats.batches,
             astats.largest_batch);
    add_latency_row(StrFormat("async-wait%.1f", wait_ms), achieved,
                    latency_ms, astats.batches, astats.largest_batch);
  }

  // ---- Mixed-priority, short-deadline traffic (the shedding path). ----
  //
  // Run by default under --smoke (so CI builds and exercises priority
  // flushing and deadline shedding on every push) or explicitly with
  // --serve-mixed-priority. Priorities cycle low/normal/high in
  // submission order; every 4th request carries an already-expired
  // deadline and MUST come back as a typed DEADLINE_EXCEEDED result —
  // never an exception, never a block — while every live request must
  // stay bit-identical to the sequential path.
  bool shedding_ok = true;
  if (GetEnvBool("NARU_SERVE_MIXED_PRIORITY", smoke)) {
    AsyncEngineConfig acfg;
    // Small flushes: backlog forces reordering. --max-batch can shrink
    // the geometry further but never widen it past the backlog.
    acfg.max_batch_size = std::min<size_t>(max_batch, 8);
    acfg.max_wait_ms = 0.5;
    acfg.engine.num_threads = threads;
    AsyncEngine engine(acfg);

    constexpr RequestPriority kCycle[3] = {RequestPriority::kLow,
                                           RequestPriority::kNormal,
                                           RequestPriority::kHigh};
    std::vector<std::future<EstimateResult>> futures;
    std::vector<uint8_t> expired(trace.size(), 0);
    futures.reserve(trace.size());
    for (size_t i = 0; i < trace.size(); ++i) {  // burst: no arrival sleeps
      EstimateRequest request(pool[trace[i].pool_index]);
      request.options.priority = kCycle[i % 3];
      if (i % 4 == 3) {
        request.options.deadline = EstimateOptions::DeadlineInMs(-1.0);
        expired[i] = 1;
      }
      futures.push_back(engine.Submit(&est, std::move(request)));
    }
    // Wait on the futures rather than Drain(): an active drain reverts
    // flushing to FIFO-by-arrival (its no-starvation guarantee), which
    // would suppress the priority reordering this phase asserts.

    size_t shed = 0;
    for (size_t i = 0; i < trace.size(); ++i) {
      const EstimateResult r = futures[i].get();
      if (expired[i]) {
        if (r.status.code() != StatusCode::kDeadlineExceeded) {
          shedding_ok = false;
        }
        ++shed;
      } else if (!r.ok() || r.estimate != reference[trace[i].pool_index]) {
        all_identical = false;
      }
    }
    const EngineStats stats = engine.stats();
    const auto astats = engine.async_stats();
    std::printf(
        "\nmixed-priority trace: %zu requests, %zu expired deadlines -> "
        "%zu shed (engine counted %zu), %zu priority flushes over %zu "
        "batches\n",
        trace.size(), shed, stats.results_shed, stats.shed_deadline,
        astats.priority_flushes, astats.batches);
    if (stats.shed_deadline != shed || stats.results_shed != shed) {
      shedding_ok = false;
    }
    // With a burst of 3 interleaved classes against 8-wide flushes, the
    // dispatcher must have jumped the FIFO order at least once. Whether a
    // backlog forms is scheduling-timing-coupled, so the trigger is
    // waived under NARU_SMOKE_NO_PERF_ASSERT (sanitizer legs) — the
    // typed-shed and bit-identity checks above stay enforced.
    if (PerfAssertsEnabled() && trace.size() >= 32 &&
        astats.priority_flushes == 0) {
      shedding_ok = false;
    }
    std::printf("shedding path typed and counted: %s\n",
                shedding_ok ? "yes" : "NO (BUG)");
    json.AddRow(JsonObject{{"mode", "mixed-priority"},
                           {"shed_deadline", stats.shed_deadline},
                           {"priority_flushes", astats.priority_flushes},
                           {"batches", astats.batches}});
  }

  // ---- Saturation: open-loop burst against a bounded pending queue. ----
  //
  // Run by default under --smoke or explicitly with --serve-saturation.
  // The burst submits far faster than the engine serves (caching off so
  // every request costs a walk), alternating low/high priority so a low
  // is always pending when a high arrives. Asserted invariants, per the
  // overload-safety contract:
  //   - the pending depth never exceeds max_pending (high-water mark);
  //   - highs are never admission-shed (a strictly lower class was always
  //     available when one arrived);
  //   - some lows ARE shed, each with a typed RESOURCE_EXHAUSTED result;
  //   - every non-shed result is bit-identical to the unsaturated
  //     sequential run with the same seed.
  bool saturation_ok = true;
  if (GetEnvBool("NARU_SERVE_SATURATION", smoke)) {
    const size_t max_pending = static_cast<size_t>(
        std::clamp<int64_t>(GetEnvInt("NARU_MAX_PENDING", 8), 1, 1 << 20));
    AsyncEngineConfig acfg;
    acfg.max_batch_size = 2;  // slow service: tiny batches, no deadline wait
    acfg.max_wait_ms = 0.0;
    acfg.max_pending = max_pending;
    acfg.engine.num_threads = threads;
    acfg.engine.enable_cache = false;  // a real walk per request: overload
    AsyncEngine engine(acfg);

    // Mostly lows, with FEWER than max_pending highs spread through the
    // burst: the queue can then never hold highs alone, so every high
    // arrives while a strictly lower class has pending work — making
    // "highs are never admission-shed" a policy guarantee to assert, not
    // a race.
    const size_t num_highs = std::min(max_pending - 1, trace.size() / 8);
    const size_t high_stride =
        num_highs > 0 ? trace.size() / (num_highs + 1) : trace.size() + 1;
    std::vector<std::future<EstimateResult>> futures;
    std::vector<uint8_t> is_high(trace.size(), 0);
    futures.reserve(trace.size());
    size_t highs_sent = 0;
    for (size_t i = 0; i < trace.size(); ++i) {  // burst: no arrival sleeps
      EstimateRequest request(pool[trace[i].pool_index]);
      if (highs_sent < num_highs && (i + 1) % high_stride == 0) {
        is_high[i] = 1;
        ++highs_sent;
      }
      request.options.priority =
          is_high[i] ? RequestPriority::kHigh : RequestPriority::kLow;
      futures.push_back(engine.Submit(&est, std::move(request)));
    }
    engine.Drain();

    size_t shed_low = 0, shed_high = 0, served = 0;
    bool retry_hints_ok = true;
    double max_retry_hint_ms = 0.0;
    for (size_t i = 0; i < trace.size(); ++i) {
      const EstimateResult r = futures[i].get();
      if (r.status.code() == StatusCode::kResourceExhausted) {
        ++(is_high[i] ? shed_high : shed_low);
        // Every admission shed must carry a positive retry-after hint
        // (pending depth × smoothed service time, floored): a client that
        // obeys it stops hammering a full queue.
        if (!(r.retry_after_ms > 0.0)) retry_hints_ok = false;
        max_retry_hint_ms = std::max(max_retry_hint_ms, r.retry_after_ms);
      } else if (!r.ok() ||
                 r.estimate != reference[trace[i].pool_index]) {
        saturation_ok = false;  // admitted requests must stay exact
      } else {
        ++served;
      }
    }
    const auto astats = engine.async_stats();
    const EngineStats stats = engine.stats();
    std::printf(
        "\nsaturation trace: %zu requests vs max_pending=%zu -> %zu served, "
        "%zu low / %zu high admission-shed (engine counted %zu), peak "
        "pending %zu\n",
        trace.size(), max_pending, served, shed_low, shed_high,
        stats.shed_admission, astats.max_pending_seen);
    // Bounded depth, low-first shedding, and conservation: every request
    // either served or shed, and the counters agree.
    if (astats.max_pending_seen > max_pending) saturation_ok = false;
    if (shed_high != 0) saturation_ok = false;
    if (trace.size() >= 4 * max_pending && shed_low == 0) {
      saturation_ok = false;  // a real burst must have overflowed
    }
    if (stats.shed_admission != shed_low + shed_high) saturation_ok = false;
    if (astats.submitted != astats.completed) saturation_ok = false;
    if (!retry_hints_ok) saturation_ok = false;
    std::printf(
        "admission control bounded and low-shed-first: %s "
        "(retry hints positive: %s, max %.2f ms)\n",
        saturation_ok ? "yes" : "NO (BUG)", retry_hints_ok ? "yes" : "NO",
        max_retry_hint_ms);
    json.AddRow(JsonObject{{"mode", "saturation"},
                           {"shed_admission", stats.shed_admission},
                           {"served", served},
                           {"peak_pending", astats.max_pending_seen}});
  }

  json.Write();

  std::printf("\nestimates bit-identical across all configurations: %s\n",
              all_identical ? "yes" : "NO (BUG)");
  return all_identical && shedding_ok && saturation_ok ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace naru

int main(int argc, char** argv) {
  naru::bench::InitBench(argc, argv);
  return naru::bench::Run();
}
