// Figure 8: accuracy vs number of columns (5..100) on Conviva-B with an
// exact oracle model.
//
// Expected shape: variance grows with column count, but a tractable number
// of progressive sample paths keeps worst-case error bounded even at 100
// columns / 10^190 joint space; more paths help monotonically.
#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "core/oracle_model.h"
#include "estimator/indep.h"
#include "estimator/sample.h"
#include "util/string_util.h"

namespace naru {
namespace bench {
namespace {

double MaxError(Estimator* est, const Workload& w, size_t n) {
  double max_err = 1.0;
  for (size_t i = 0; i < w.queries.size(); ++i) {
    const double est_card =
        est->EstimateSelectivity(w.queries[i]) * static_cast<double>(n);
    max_err = std::max(
        max_err, QError(est_card, static_cast<double>(w.cards[i])));
  }
  return max_err;
}

int Run() {
  const BenchEnv env = GetBenchEnv();
  const size_t queries =
      static_cast<size_t>(GetEnvInt("NARU_FIG8_QUERIES", 15));
  // Paper uses 10000 paths for the top line; default trimmed for runtime.
  const size_t max_paths =
      static_cast<size_t>(GetEnvInt("NARU_FIG8_PATHS", 4000));
  PrintBanner("Figure 8: accuracy vs column count (Conviva-B, oracle model)",
              StrFormat("rows=%zu queries=%zu", env.convb_rows, queries));

  Table full = MakeConvivaBLike(env.convb_rows, env.seed);
  const size_t n = full.num_rows();

  std::printf("\n%-8s %-10s %-12s %-12s %-12s %-10s %-12s\n", "cols",
              "joint", "Naru-100", "Naru-1000",
              StrFormat("Naru-%zu", max_paths).c_str(), "Indep",
              "Sample(1%)");
  for (size_t cols : {size_t{5}, size_t{15}, size_t{30}, size_t{50},
                      size_t{75}, size_t{100}}) {
    Table table = full.Slice(0, n, cols);
    // Predicates cover at most 12 columns (paper setup).
    const Workload test =
        MakeWorkload(table, queries, env.seed + cols, false,
                     std::min<size_t>(5, cols), std::min<size_t>(12, cols));
    OracleModel oracle(&table, 0.0);

    std::printf("%-8zu 10^%-7.0f", cols, table.Log10JointSpaceSize());
    for (size_t paths : {size_t{100}, size_t{1000}, max_paths}) {
      NaruEstimatorConfig ncfg;
      ncfg.num_samples = paths;
      ncfg.enumeration_threshold = 0;
      ncfg.sampler_seed = env.seed + 6;
      NaruEstimator est(&oracle, ncfg, 0, StrFormat("Naru-%zu", paths));
      std::printf(" %-12s",
                  FormatPaperNumber(MaxError(&est, test, n)).c_str());
    }
    IndepEstimator indep(table);
    SampleEstimator sample(table, std::max<size_t>(n / 100, 16),
                           env.seed + 2);
    std::printf(" %-10s %-12s\n",
                FormatPaperNumber(MaxError(&indep, test, n)).c_str(),
                FormatPaperNumber(MaxError(&sample, test, n)).c_str());
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace naru

int main(int argc, char** argv) {
  naru::bench::InitBench(argc, argv);
  return naru::bench::Run();
}
