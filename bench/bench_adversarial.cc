// Adversarial serving matrix: every overload policy must fire, and the
// numbers feed the perf trajectory.
//
// bench_serving_async proves each overload mechanism in isolation with a
// hand-shaped trace. This bench replays the full adversarial scenario
// matrix (src/workload/adversarial.h) — selectivity-banded pools, skewed
// literals, cache-churning key streams, bursty open-loop arrivals,
// deadline pressure — through the AsyncEngine and asserts that the
// policies the matrix is shaped to trigger actually fired:
//
//   deadline shed      (expired_deadline_fraction > 0  -> shed_deadline)
//   admission shed     (bursty arrival vs bounded queue -> shed_admission)
//   priority flush     (same cell, inverted class mix  -> priority_flushes)
//   mid-walk abandon   (huge sample budget + tight live deadline
//                                                      -> shed_midwalk)
//
// Per scenario it reports latency percentiles against the scheduled
// arrival, achieved qps, q-error quantiles vs the pool's EXECUTED ground
// truth, and the shed counters, and writes everything to
// BENCH_adversarial.json for tools/check_bench_regression.py.
//
// Knobs (env or flags, see bench_common.h):
//   --threads N          engine threads              (default 4, smoke 2)
//   --serve-requests N   requests per scenario       (default 192, smoke 48)
//   --serve-unique N     pool entries per scenario   (default 32, smoke 24)
//   --serve-samples N    baseline sample budget      (default 256, smoke 128)
//   --smoke              CI preset: tiny model, no arrival sleeps, scaled
//                        mid-walk budgets
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <future>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "serve/async_engine.h"
#include "util/string_util.h"
#include "workload/adversarial.h"

namespace naru {
namespace bench {
namespace {

using SteadyClock = std::chrono::steady_clock;

SteadyClock::duration MsToDuration(double ms) {
  return std::chrono::duration_cast<SteadyClock::duration>(
      std::chrono::duration<double, std::milli>(ms));
}

/// Q-error on cardinalities floored at one row (the zero band would
/// otherwise divide by zero; the floor is the standard convention).
double QError(double est_sel, double true_sel, double rows) {
  const double est = std::max(est_sel * rows, 1.0);
  const double truth = std::max(true_sel * rows, 1.0);
  return std::max(est / truth, truth / est);
}

int Run() {
  const BenchEnv env = GetBenchEnv();
  const bool smoke = GetEnvBool("NARU_SMOKE", false);
  const size_t rows = std::min<size_t>(env.dmv_rows, smoke ? 4000 : 20000);
  const size_t epochs = std::min<size_t>(env.epochs, smoke ? 1 : 3);
  const size_t num_requests = static_cast<size_t>(std::clamp<int64_t>(
      GetEnvInt("NARU_SERVE_REQUESTS", smoke ? 48 : 192), 1, 1 << 22));
  const size_t pool_size = static_cast<size_t>(std::clamp<int64_t>(
      GetEnvInt("NARU_SERVE_UNIQUE", smoke ? 24 : 32), 4, 1 << 20));
  const size_t num_samples = static_cast<size_t>(std::clamp<int64_t>(
      GetEnvInt("NARU_SERVE_SAMPLES", smoke ? 128 : 256), 1, 1 << 20));
  const size_t threads = env.threads > 0 ? env.threads : (smoke ? 2 : 4);

  PrintBanner("Adversarial serving matrix: overload policies under sweep",
              StrFormat("rows=%zu requests/scenario=%zu pool=%zu samples=%zu "
                        "threads=%zu smoke=%d",
                        rows, num_requests, pool_size, num_samples, threads,
                        smoke ? 1 : 0));

  Table table = MakeDmvLike(rows, env.seed);
  auto model = TrainModel(table, DmvModelConfig(env.seed + 7), epochs,
                          "Naru(adversarial)");
  NaruEstimatorConfig ncfg;
  ncfg.num_samples = num_samples;
  ncfg.enumeration_threshold = 0;
  NaruEstimator est(model.get(), ncfg, model->SizeBytes());

  BenchJsonWriter json("adversarial");
  json.SetConfig("rows", rows);
  json.SetConfig("requests", num_requests);
  json.SetConfig("pool", pool_size);
  json.SetConfig("samples", num_samples);
  json.SetConfig("threads", threads);
  json.SetConfig("smoke", smoke);

  std::printf("\n%-22s %8s %8s %8s %8s %8s %6s %6s %6s %6s\n", "scenario",
              "qps", "p50_ms", "p99_ms", "qerr50", "qerr95", "dl", "adm",
              "mid", "pflush");

  bool ok = true;
  size_t total_shed_deadline = 0, total_shed_admission = 0;
  size_t total_shed_midwalk = 0, total_priority_flushes = 0;

  for (AdversarialScenario sc : AdversarialScenarioMatrix()) {
    if (smoke && sc.request_samples > 0) {
      // Keep the mid-walk cell CI-sized: the contract is only that the
      // full walk takes MUCH longer than the live deadline, so an
      // abandonment lands at a column-step boundary in between.
      sc.request_samples = 4000;
      // ~One smoke-model micro-batch (two concurrent 4000-sample walks):
      // wide enough that tights arriving during the in-flight batch are
      // still live at their (tightest-first) dispatch, narrow enough
      // that their own walk overruns it.
      sc.tight_deadline_ms = 400.0;
    }
    const AdversarialTrace trace = GenerateAdversarialTrace(
        table, sc, pool_size, num_requests, env.seed + 101);

    AsyncEngineConfig acfg;
    // Mid-walk cells get tiny flushes (each walk is huge, batching them
    // only adds queue delay). Bursty cells face a BOUNDED queue so the
    // admission policy is in play, with flushes strictly narrower than
    // the bound — a flush that swallows the whole queue leaves nothing
    // behind to jump ahead of, and priority flushing could never fire.
    acfg.max_batch_size =
        (sc.request_samples > 0 || sc.arrival == ArrivalKind::kBursty) ? 2
                                                                       : 8;
    acfg.max_wait_ms = 0.5;
    acfg.max_pending = sc.arrival == ArrivalKind::kBursty ? 6 : 0;
    acfg.engine.num_threads = threads;
    AsyncEngine engine(acfg);

    // Smoke skips arrival sleeps EXCEPT on mid-walk cells: collapsing all
    // arrivals to t=0 there would let the whole tight-deadline population
    // expire inside the first in-flight batch, and the cell's point —
    // deadlines dying DURING a walk — would degenerate to dispatch sheds.
    // (The cell's ~250 qps trace costs <200 ms of wall-clock sleeping.)
    const bool sleep_arrivals = !smoke || sc.request_samples > 0;
    std::vector<double> latencies(trace.requests.size(), 0.0);
    std::vector<std::future<EstimateResult>> futures;
    futures.reserve(trace.requests.size());
    const auto start = SteadyClock::now();
    for (size_t i = 0; i < trace.requests.size(); ++i) {
      SteadyClock::time_point scheduled;
      EstimateRequest request = [&] {
        if (!sleep_arrivals) {
          // Pin each request's RELATIVE deadline to its actual submit
          // instant instead of the collapsed schedule (otherwise a
          // "tight" deadline at arrival_ms=900 would be ~900ms of slack
          // when everything submits at t=0).
          scheduled = SteadyClock::now();
          return MaterializeRequest(
              trace, i,
              scheduled - MsToDuration(trace.requests[i].arrival_ms));
        }
        scheduled = start + MsToDuration(trace.requests[i].arrival_ms);
        std::this_thread::sleep_until(scheduled);
        return MaterializeRequest(trace, i, start);
      }();
      futures.push_back(engine.Submit(
          &est, std::move(request),
          // Runs on the dispatcher thread right before the future
          // resolves; the later future.get() sequences the write.
          [&latencies, i, scheduled](const EstimateResult&) {
            latencies[i] = std::chrono::duration<double, std::milli>(
                               SteadyClock::now() - scheduled)
                               .count();
          }));
    }
    // Wait on the futures rather than Drain(): an active drain reverts
    // flushing to FIFO-by-arrival (its no-starvation guarantee), which
    // would suppress both the priority reordering and the tightest-
    // deadline-first dispatch this matrix asserts.
    std::vector<EstimateResult> results;
    results.reserve(futures.size());
    for (auto& f : futures) results.push_back(f.get());
    const std::chrono::duration<double> total = SteadyClock::now() - start;
    // Futures resolve at delivery, BEFORE the dispatcher's bookkeeping
    // for the batch; drain now (a no-op schedule-wise — everything is
    // done) so the counters below are final.
    engine.Drain();

    QuantileSketch latency_ms, qerr;
    size_t served = 0, shed = 0, failed = 0;
    for (size_t i = 0; i < results.size(); ++i) {
      const EstimateResult& r = results[i];
      latency_ms.Add(std::max(0.0, latencies[i]));
      if (r.ok()) {
        ++served;
        qerr.Add(QError(r.estimate,
                        trace.pool_true_sel[trace.requests[i].pool_index],
                        static_cast<double>(rows)));
      } else if (r.provenance == ResultProvenance::kShed) {
        ++shed;
      } else {
        ++failed;  // anything non-shed and non-OK is a real bug
      }
    }
    if (failed > 0) {
      std::printf("!! %s: %zu non-shed failures\n", sc.name.c_str(), failed);
      ok = false;
    }

    const EngineStats stats = engine.stats();
    const auto astats = engine.async_stats();
    if (astats.submitted != astats.completed) {
      std::printf("!! %s: submitted %zu != completed %zu\n", sc.name.c_str(),
                  astats.submitted, astats.completed);
      ok = false;
    }

    // The matrix cells are SHAPED to trigger specific policies; a zero
    // counter on the triggering cell means the policy silently stopped
    // firing — exactly the regression this bench exists to catch. The
    // triggers are wall-clock-coupled (which shed path fires depends on
    // whether a deadline expires before dispatch or mid-walk), so they
    // are waived under NARU_SMOKE_NO_PERF_ASSERT (sanitizer slowdown
    // shifts timing, not correctness); the conservation and typed-result
    // checks above stay enforced.
    if (PerfAssertsEnabled()) {
      if (sc.expired_deadline_fraction > 0) {
        if (stats.shed_deadline == 0) {
          std::printf("!! %s: expected deadline sheds, saw none\n",
                      sc.name.c_str());
          ok = false;
        }
        // The storm cell is also where flush-order is observable: an
        // UNBOUNDED deep backlog of interleaved classes (a bounded queue
        // would evict exactly the older-lower requests the detector keys
        // on).
        if (astats.priority_flushes == 0) {
          std::printf("!! %s: expected priority flushes, saw none\n",
                      sc.name.c_str());
          ok = false;
        }
      }
      if (sc.arrival == ArrivalKind::kBursty && stats.shed_admission == 0) {
        std::printf("!! %s: expected admission sheds, saw none\n",
                    sc.name.c_str());
        ok = false;
      }
      if (sc.request_samples > 0 && stats.shed_midwalk == 0) {
        std::printf("!! %s: expected mid-walk abandonments, saw none\n",
                    sc.name.c_str());
        ok = false;
      }
    }
    total_shed_deadline += stats.shed_deadline;
    total_shed_admission += stats.shed_admission;
    total_shed_midwalk += stats.shed_midwalk;
    total_priority_flushes += astats.priority_flushes;

    const double achieved =
        total.count() > 0 ? futures.size() / total.count() : 0.0;
    std::printf("%-22s %8.1f %8.2f %8.2f %8.2f %8.2f %6zu %6zu %6zu %6zu\n",
                sc.name.c_str(), achieved, latency_ms.Quantile(0.5),
                latency_ms.Quantile(0.99), qerr.Quantile(0.5),
                qerr.Quantile(0.95), stats.shed_deadline,
                stats.shed_admission, stats.shed_midwalk,
                astats.priority_flushes);
    json.AddRow(JsonObject{{"scenario", sc.name},
                           {"qps", achieved},
                           {"p50_ms", latency_ms.Quantile(0.5)},
                           {"p99_ms", latency_ms.Quantile(0.99)},
                           {"max_ms", latency_ms.Max()},
                           {"qerr_p50", qerr.Quantile(0.5)},
                           {"qerr_p95", qerr.Quantile(0.95)},
                           {"qerr_max", qerr.Max()},
                           {"served", served},
                           {"shed", shed},
                           {"shed_deadline", stats.shed_deadline},
                           {"shed_admission", stats.shed_admission},
                           {"shed_midwalk", stats.shed_midwalk},
                           {"priority_flushes", astats.priority_flushes}});
  }

  // Matrix-wide: every overload policy fired somewhere.
  std::printf(
      "\nmatrix totals: %zu deadline sheds, %zu admission sheds, "
      "%zu mid-walk abandonments, %zu priority flushes\n",
      total_shed_deadline, total_shed_admission, total_shed_midwalk,
      total_priority_flushes);
  if (PerfAssertsEnabled() &&
      (total_shed_deadline == 0 || total_shed_admission == 0 ||
       total_shed_midwalk == 0 || total_priority_flushes == 0)) {
    ok = false;
  }
  std::printf("every overload policy exercised: %s\n",
              ok ? "yes" : "NO (BUG)");

  json.Write();
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace naru

int main(int argc, char** argv) {
  naru::bench::InitBench(argc, argv);
  return naru::bench::Run();
}
