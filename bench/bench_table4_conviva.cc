// Table 4: estimation errors on Conviva-A (promising baselines only).
//
// Conviva-A has a much larger joint space (more/larger numeric domains);
// the paper shows most estimators degrade while a modest increase in
// progressive samples (Naru-4000) restores single-digit tail error.
#include <cstdio>
#include <memory>

#include "bench_common.h"
#include "estimator/dbms1.h"
#include "estimator/kde.h"
#include "estimator/mscn.h"
#include "estimator/sample.h"
#include "util/string_util.h"

namespace naru {
namespace bench {
namespace {

int Run() {
  const BenchEnv env = GetBenchEnv();
  PrintBanner("Table 4: estimation errors on Conviva-A",
              StrFormat("rows=%zu queries=%zu epochs=%zu", env.conva_rows,
                        env.queries, env.epochs));

  Table table = MakeConvivaALike(env.conva_rows, env.seed);
  const size_t n = table.num_rows();
  const size_t budget = BudgetBytes(table, 0.007);  // paper: 0.7%
  std::printf("# joint space 10^%.1f, budget %s\n",
              table.Log10JointSpaceSize(), HumanBytes(budget).c_str());

  const Workload test =
      MakeWorkload(table, env.queries, env.seed + 1, false, 5,
                   std::min<size_t>(11, table.num_columns()));
  const Workload train =
      MakeWorkload(table, env.mscn_queries, env.seed + 1000, false, 5, 11);

  std::vector<std::unique_ptr<ErrorReport>> reports;
  auto evaluate = [&](Estimator* est) {
    reports.push_back(std::make_unique<ErrorReport>(est->name()));
    EvaluateEstimator(est, test, n, reports.back().get());
  };

  Dbms1Estimator dbms1(table);
  evaluate(&dbms1);

  auto sample = SampleEstimator(table, SampleRows(table, 0.007), env.seed + 2);
  evaluate(&sample);

  auto kde = KdeEstimator(table, SampleRows(table, 0.007), env.seed + 3);
  evaluate(&kde);

  auto kde_superv =
      KdeEstimator(table, SampleRows(table, 0.007), env.seed + 3, "KDE-superv");
  {
    const size_t tune = std::min<size_t>(train.queries.size(), 300);
    std::vector<Query> tq(train.queries.begin(),
                          train.queries.begin() + tune);
    std::vector<double> ts(train.sels.begin(), train.sels.begin() + tune);
    KdeSupervisedTune(&kde_superv, tq, ts, /*rounds=*/2);
  }
  evaluate(&kde_superv);

  MscnConfig mcfg;
  mcfg.sample_rows = 1000;
  mcfg.name = "MSCN-base";
  mcfg.seed = env.seed + 4;
  MscnEstimator mscn(table, mcfg);
  mscn.Train(train.queries, train.cards);
  evaluate(&mscn);

  // The paper needs ~15 epochs for single-digit max error on Conviva-A
  // (§6.4); give this dataset proportionally more passes.
  auto model = TrainModel(table, ConvivaAModelConfig(env.seed + 5),
                          env.epochs + 8, "Naru(Conviva-A)");
  for (size_t samples : {size_t{1000}, size_t{2000}, size_t{4000}}) {
    NaruEstimatorConfig ncfg;
    ncfg.num_samples = samples;
    ncfg.sampler_seed = env.seed + 6;
    NaruEstimator est(model.get(), ncfg, model->SizeBytes());
    evaluate(&est);
  }

  std::vector<const ErrorReport*> rows;
  for (const auto& r : reports) rows.push_back(r.get());
  PrintErrorTable("Errors grouped by true selectivity "
                  "(median / 95th / 99th / max):",
                  rows);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace naru

int main(int argc, char** argv) {
  naru::bench::InitBench(argc, argv);
  return naru::bench::Run();
}
