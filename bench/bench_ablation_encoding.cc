// §4.2 ablation: encoding/decoding strategies for large-domain columns.
//
// Compares (a) embedding input + embedding-reuse decoding (Naru default),
// (b) embedding input + full FC decoding, and (c) binary input + full FC
// decoding, on a table dominated by a large-domain column. Reported:
// model size, entropy gap after fixed epochs, epoch time. Expected shape:
// embedding reuse cuts size substantially at equal-or-better quality.
#include <cstdio>

#include "bench_common.h"
#include "core/entropy.h"
#include "data/table_stats.h"
#include "util/string_util.h"

namespace naru {
namespace bench {
namespace {

int Run() {
  const BenchEnv env = GetBenchEnv();
  const size_t epochs = std::min<size_t>(env.epochs, 3);
  PrintBanner("Ablation (§4.2): large-domain encoding/decoding strategies",
              StrFormat("DMV rows=%zu epochs=%zu", env.dmv_rows, epochs));

  Table table = MakeDmvLike(env.dmv_rows / 2, env.seed);
  const double h_data = TableStats::JointEntropyBits(table);

  struct Variant {
    const char* name;
    bool reuse;
    bool binary;
  };
  const Variant variants[] = {
      {"embedding + reuse (default)", true, false},
      {"embedding + full FC head", false, false},
      {"binary input + full FC head", false, true},
  };

  std::printf("\n%-30s %-10s %-16s %-12s\n", "Variant", "Size",
              "Entropy gap", "s/epoch");
  for (const auto& v : variants) {
    MadeModel::Config cfg = DmvModelConfig(env.seed + 5);
    cfg.embedding_reuse = v.reuse;
    cfg.encoder.binary_for_large = v.binary;
    MadeModel model(TableDomains(table), cfg);
    TrainerConfig tcfg;
    tcfg.epochs = 1;
    tcfg.batch_size = 512;
    Trainer trainer(&model, tcfg);
    double total = 0;
    for (size_t e = 0; e < epochs; ++e) {
      Stopwatch sw;
      trainer.RunEpoch(table);
      total += sw.ElapsedSeconds();
    }
    const double gap =
        ModelCrossEntropyBits(&model, table, 10000) - h_data;
    std::printf("%-30s %-10s %13.3f   %9.2f\n", v.name,
                HumanBytes(model.SizeBytes()).c_str(), gap,
                total / static_cast<double>(epochs));
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace naru

int main(int argc, char** argv) {
  naru::bench::InitBench(argc, argv);
  return naru::bench::Run();
}
