// Extension ablation: column factorization (§6.7.2 scaling direction,
// NeuroCard lineage).
//
// On the DMV-like table (whose valid_date column has a ~2.1K domain) this
// compares a plain MADE estimator against a factorized one whose
// large-domain columns are split into ~sqrt(D) high/low sub-columns:
//   - model size (the factorization's reason to exist: O(sqrt(D))
//     embedding/one-hot tables instead of O(D)),
//   - valid-joint mass after training (the factorization's cost: the inner
//     model can waste mass on invalid sub-code combinations),
//   - q-error quantiles on the same workload at the same sample budget.
// Expected shape: factorization cuts model size substantially at a small
// accuracy cost that shrinks as training tightens the invalid mass.
#include <cstdio>

#include "bench_common.h"
#include "core/enumerator.h"
#include "core/factorized.h"
#include "util/string_util.h"

namespace naru {
namespace bench {
namespace {

int Run() {
  const BenchEnv env = GetBenchEnv();
  const size_t kSamples = 2000;
  PrintBanner("Ablation: column factorization (sub-column splitting)",
              StrFormat("DMV rows=%zu queries=%zu samples=%zu",
                        env.dmv_rows / 2, env.queries / 2, kSamples));

  Table table = MakeDmvLike(env.dmv_rows / 2, env.seed);
  Workload workload = MakeWorkload(table, env.queries / 2, env.seed + 53);
  const auto domains = TableDomains(table);
  const size_t epochs = std::max<size_t>(env.epochs / 2, 4);

  // Plain MADE.
  auto plain = TrainModel(table, DmvModelConfig(env.seed + 9), epochs,
                          "DMV(plain)");

  // Factorized MADE: split domains above 256.
  FactorizedLayout layout = FactorizedLayout::Build(domains, 256);
  size_t split_cols = 0;
  for (size_t c = 0; c < domains.size(); ++c) {
    split_cols += layout.column_is_split(c);
  }
  MadeModel::Config inner_cfg = DmvModelConfig(env.seed + 9);
  auto inner =
      std::make_unique<MadeModel>(layout.position_domains(), inner_cfg);
  FactorizedModel fact(std::move(inner), layout);
  {
    TrainerConfig tcfg;
    tcfg.epochs = epochs;
    Trainer(&fact, tcfg).Train(table);
  }
  std::printf("# %zu of %zu columns split; model sizes: plain %s, "
              "factorized %s\n",
              split_cols, domains.size(),
              HumanBytes(plain->SizeBytes()).c_str(),
              HumanBytes(fact.SizeBytes()).c_str());

  ErrorReport plain_rep(StrFormat("plain-%zu", kSamples));
  ErrorReport fact_rep(StrFormat("factorized-%zu", kSamples));
  NaruEstimatorConfig ncfg;
  ncfg.num_samples = kSamples;
  ncfg.sampler_seed = env.seed + 17;
  NaruEstimator plain_est(plain.get(), ncfg, plain->SizeBytes());
  NaruEstimator fact_est(&fact, ncfg, fact.SizeBytes());
  EvaluateEstimator(&plain_est, workload, table.num_rows(), &plain_rep);
  EvaluateEstimator(&fact_est, workload, table.num_rows(), &fact_rep);
  PrintErrorTable("Plain vs factorized MADE (same budget, same workload)",
                  {&plain_rep, &fact_rep});
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace naru

int main(int argc, char** argv) {
  naru::bench::InitBench(argc, argv);
  return naru::bench::Run();
}
