// Micro-benchmarks (google-benchmark) for the substrate layers: GEMM,
// model forward passes, conditional queries, progressive sample paths,
// oracle sessions and ground-truth scans. These calibrate the cost model
// behind Table 6 and document raw throughput on the host machine.
#include <benchmark/benchmark.h>

#include "core/made.h"
#include "core/oracle_model.h"
#include "core/sampler.h"
#include "data/datasets.h"
#include "query/executor.h"
#include "query/workload.h"
#include "tensor/gemm.h"
#include "util/random.h"

namespace naru {
namespace {

void FillRandom(Matrix* m, Rng* rng) {
  // Row-wise over cols(): Matrix rows are stride-padded and the padding
  // must stay zero (see tensor/matrix.h).
  for (size_t i = 0; i < m->rows(); ++i) {
    float* row = m->Row(i);
    for (size_t j = 0; j < m->cols(); ++j) {
      row[j] = static_cast<float>(rng->Gaussian());
    }
  }
}

void BM_GemmNN(benchmark::State& state) {
  const size_t dim = static_cast<size_t>(state.range(0));
  Rng rng(1);
  Matrix a(512, dim);
  Matrix b(dim, dim);
  Matrix c;
  FillRandom(&a, &rng);
  FillRandom(&b, &rng);
  for (auto _ : state) {
    GemmNN(a, b, &c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 512 *
                          static_cast<int64_t>(dim) *
                          static_cast<int64_t>(dim) * 2);
}
BENCHMARK(BM_GemmNN)->Arg(64)->Arg(128)->Arg(256);

struct ModelFixture {
  ModelFixture()
      : table(MakeDmvLike(20000, 3)),
        model(
            [&] {
              std::vector<size_t> domains;
              for (size_t c = 0; c < table.num_columns(); ++c) {
                domains.push_back(table.column(c).DomainSize());
              }
              MadeModel::Config cfg;
              cfg.hidden_sizes = {128, 128, 128, 128};
              cfg.encoder.embed_dim = 32;
              cfg.seed = 7;
              return MadeModel(domains, cfg);
            }()) {}
  Table table;
  MadeModel model;
};

ModelFixture* GetFixture() {
  static ModelFixture* fixture = new ModelFixture();
  return fixture;
}

void BM_MadeForwardBackward(benchmark::State& state) {
  auto* f = GetFixture();
  const size_t batch = static_cast<size_t>(state.range(0));
  IntMatrix codes(batch, f->table.num_columns());
  for (size_t r = 0; r < batch; ++r) {
    f->table.GetRowCodes(r % f->table.num_rows(), codes.Row(r));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(f->model.ForwardBackward(codes));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(batch));
}
BENCHMARK(BM_MadeForwardBackward)->Arg(128)->Arg(512);

void BM_MadeLogProb(benchmark::State& state) {
  auto* f = GetFixture();
  const size_t batch = 1024;
  IntMatrix codes(batch, f->table.num_columns());
  for (size_t r = 0; r < batch; ++r) {
    f->table.GetRowCodes(r % f->table.num_rows(), codes.Row(r));
  }
  std::vector<double> lp;
  for (auto _ : state) {
    f->model.LogProbRows(codes, &lp);
    benchmark::DoNotOptimize(lp.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * batch);
}
BENCHMARK(BM_MadeLogProb);

void BM_ProgressiveSampling(benchmark::State& state) {
  auto* f = GetFixture();
  const size_t paths = static_cast<size_t>(state.range(0));
  WorkloadConfig wcfg;
  wcfg.num_queries = 8;
  wcfg.seed = 3;
  const auto queries = GenerateWorkload(f->table, wcfg);
  ProgressiveSamplerConfig scfg;
  scfg.num_samples = paths;
  ProgressiveSampler sampler(&f->model, scfg);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sampler.EstimateSelectivity(queries[i++ % queries.size()]));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(paths));
}
BENCHMARK(BM_ProgressiveSampling)->Arg(500)->Arg(1000)->Arg(2000)
    ->Unit(benchmark::kMillisecond);

void BM_OracleSession(benchmark::State& state) {
  static Table* table = new Table(MakeConvivaBLike(10000, 5, 30));
  OracleModel oracle(table);
  WorkloadConfig wcfg;
  wcfg.num_queries = 4;
  wcfg.min_filters = 5;
  wcfg.max_filters = 12;
  wcfg.seed = 9;
  const auto queries = GenerateWorkload(*table, wcfg);
  ProgressiveSamplerConfig scfg;
  scfg.num_samples = 1000;
  ProgressiveSampler sampler(&oracle, scfg);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sampler.EstimateSelectivity(queries[i++ % queries.size()]));
  }
}
BENCHMARK(BM_OracleSession)->Unit(benchmark::kMillisecond);

void BM_ExecutorScan(benchmark::State& state) {
  auto* f = GetFixture();
  WorkloadConfig wcfg;
  wcfg.num_queries = 16;
  wcfg.seed = 11;
  const auto queries = GenerateWorkload(f->table, wcfg);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ExecuteCount(f->table, queries[i++ % queries.size()]));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(f->table.num_rows()));
}
BENCHMARK(BM_ExecutorScan);

}  // namespace
}  // namespace naru

BENCHMARK_MAIN();
