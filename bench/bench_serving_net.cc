// Network serving: the full socket path (wire protocol -> poll loop ->
// per-tenant AsyncEngine) under open-loop load, on a real loopback TCP
// connection.
//
// Everything below bench_serving_async measures the engine in-process;
// this bench adds the layers a deployed estimator actually runs behind —
// frame encode/decode, kernel socket buffers, the single-threaded I/O
// loop, and the multi-tenant registry — and checks that none of them
// costs correctness:
//
//   roundtrip    every pool query once against one quiet tenant: the
//                estimate that crosses the wire must be BIT-IDENTICAL to
//                a local sequential walk of the same model (doubles
//                cross as IEEE-754 bit patterns).
//   open-loop    two tenants driven concurrently from two connections,
//                pipelined (responses return in completion order and are
//                matched by request_id); per-tenant round-trip
//                percentiles measured from send time.
//   saturation   tenant alpha — bounded admission quota, cache off,
//                tiny batches — is flooded with DISTINCT queries while
//                tenant beta runs its normal trace on the other
//                connection. Asserts the isolation contract end to end:
//                alpha sheds (typed RESOURCE_EXHAUSTED with a positive
//                retry_after_ms hint on the wire), beta sheds NOTHING,
//                beta's estimates stay bit-identical, and beta's engine
//                counters show zero admission sheds.
//
// After the phases the server drains (Shutdown) and the conservation
// invariant is checked: every submitted request produced exactly one
// response, none orphaned, zero protocol errors.
//
// Knobs (env or flags, see bench_common.h):
//   --threads N         per-tenant engine threads       (default 4, smoke 2)
//   --serve-requests N  per-tenant open-loop trace length (default 192,
//                       smoke 48)
//   --serve-unique N    distinct query templates per tenant (default 48,
//                       smoke 16)
//   --serve-samples N   sample paths per query          (default 256,
//                       smoke 128)
//   --serve-qps X       open-loop arrival rate; 0 = burst (default 300,
//                       smoke 0)
//   --max-pending N     alpha's admission quota         (default 8)
//   --smoke             CI preset: tiny model, burst arrivals
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <thread>
#include <unordered_map>
#include <vector>

#include "bench_common.h"
#include "net/client.h"
#include "net/registry.h"
#include "net/server.h"
#include "query/workload.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace naru {
namespace bench {
namespace {

using SteadyClock = std::chrono::steady_clock;

SteadyClock::duration MsToDuration(double ms) {
  return std::chrono::duration_cast<SteadyClock::duration>(
      std::chrono::duration<double, std::milli>(ms));
}

/// One connection's view of one trace: pipelined sends (paced by the
/// trace's arrival times), then a read loop matching responses by id.
struct ClientRun {
  QuantileSketch latency_ms;
  size_t served = 0;
  size_t shed = 0;    ///< typed RESOURCE_EXHAUSTED responses
  size_t failed = 0;  ///< transport/protocol failures (must stay 0)
  double max_retry_ms = 0.0;
  bool retry_hints_ok = true;  ///< every shed carried a positive hint
  bool identical = true;       ///< served estimates match the reference
  double total_s = 0.0;
};

ClientRun DriveTenant(uint16_t port, const std::string& tenant,
                      const std::vector<Query>& pool,
                      const std::vector<OpenLoopRequest>& trace,
                      const std::vector<double>* reference,
                      RequestPriority priority) {
  ClientRun run;
  NetClient client;
  if (!client.Connect("127.0.0.1", port).ok()) {
    run.failed = trace.size();
    return run;
  }
  if (!client.SetRecvTimeoutMs(120000).ok()) {
    run.failed = trace.size();
    return run;
  }

  std::unordered_map<uint64_t, size_t> index_of;
  std::unordered_map<uint64_t, SteadyClock::time_point> sent_at;
  index_of.reserve(trace.size());
  sent_at.reserve(trace.size());

  const auto start = SteadyClock::now();
  for (size_t i = 0; i < trace.size(); ++i) {
    std::this_thread::sleep_until(start +
                                  MsToDuration(trace[i].arrival_ms));
    WireEstimateRequest request;
    request.request_id = i + 1;
    request.tenant = tenant;
    request.regions = pool[trace[i].pool_index].regions();
    request.priority = priority;
    if (!client.SendEstimate(request).ok()) {
      ++run.failed;
      continue;
    }
    index_of.emplace(i + 1, trace[i].pool_index);
    sent_at.emplace(i + 1, SteadyClock::now());
  }

  const size_t expected = index_of.size();
  for (size_t n = 0; n < expected; ++n) {
    Frame frame;
    if (!client.ReadFrame(&frame).ok() ||
        frame.type != FrameType::kEstimateResponse) {
      run.failed += expected - n;
      break;
    }
    const auto idx = index_of.find(frame.response.request_id);
    const auto sent = sent_at.find(frame.response.request_id);
    if (idx == index_of.end() || sent == sent_at.end()) {
      ++run.failed;
      continue;
    }
    const std::chrono::duration<double, std::milli> lat =
        SteadyClock::now() - sent->second;
    run.latency_ms.Add(lat.count());
    const EstimateResult result = FromWireResponse(frame.response);
    if (result.status.code() == StatusCode::kResourceExhausted) {
      ++run.shed;
      if (!(result.retry_after_ms > 0.0)) run.retry_hints_ok = false;
      run.max_retry_ms = std::max(run.max_retry_ms, result.retry_after_ms);
    } else if (!result.ok() ||
               (reference != nullptr &&
                result.estimate != (*reference)[idx->second])) {
      run.identical = false;
    } else {
      ++run.served;
    }
  }
  const std::chrono::duration<double> total = SteadyClock::now() - start;
  run.total_s = total.count();
  return run;
}

void PrintRun(const char* label, const ClientRun& run) {
  const double qps =
      run.total_s > 0
          ? (run.served + run.shed + run.failed) / run.total_s
          : 0.0;
  std::printf("%16s %8.1f %8.2f %8.2f %8.2f %8.2f %7zu %6zu %6zu\n", label,
              qps, run.latency_ms.Quantile(0.5),
              run.latency_ms.Quantile(0.9), run.latency_ms.Quantile(0.99),
              run.latency_ms.Max(), run.served, run.shed, run.failed);
}

int Run() {
  const BenchEnv env = GetBenchEnv();
  const bool smoke = GetEnvBool("NARU_SMOKE", false);
  const size_t rows = std::min<size_t>(env.dmv_rows, smoke ? 3000 : 20000);
  const size_t epochs = std::min<size_t>(env.epochs, smoke ? 1 : 3);
  const size_t num_requests = static_cast<size_t>(std::clamp<int64_t>(
      GetEnvInt("NARU_SERVE_REQUESTS", smoke ? 48 : 192), 1, 1 << 22));
  const size_t num_unique = static_cast<size_t>(std::clamp<int64_t>(
      GetEnvInt("NARU_SERVE_UNIQUE", smoke ? 16 : 48), 1, 1 << 22));
  const size_t num_samples = static_cast<size_t>(std::clamp<int64_t>(
      GetEnvInt("NARU_SERVE_SAMPLES", smoke ? 128 : 256), 1, 1 << 20));
  const double qps =
      std::max(GetEnvDouble("NARU_SERVE_QPS", smoke ? 0.0 : 300.0), 0.0);
  const size_t threads = env.threads > 0 ? env.threads : (smoke ? 2 : 4);
  const size_t max_pending = static_cast<size_t>(
      std::clamp<int64_t>(GetEnvInt("NARU_MAX_PENDING", 8), 1, 1 << 20));

  PrintBanner("Network serving: loopback TCP through the tenant registry",
              StrFormat("rows=%zu requests=%zu unique=%zu samples=%zu "
                        "qps=%.0f threads=%zu max_pending=%zu",
                        rows, num_requests, num_unique, num_samples, qps,
                        threads, max_pending));

  // Two tenants, two tables, two independently trained models.
  Table alpha_table = MakeDmvLike(rows, env.seed);
  Table beta_table = MakeDmvLike(rows, env.seed + 1);
  auto alpha_model = TrainModel(alpha_table, DmvModelConfig(env.seed + 5),
                                epochs, "Naru(alpha)");
  auto beta_model = TrainModel(beta_table, DmvModelConfig(env.seed + 6),
                               epochs, "Naru(beta)");

  WorkloadConfig wcfg;
  wcfg.num_queries = num_unique;
  wcfg.min_filters = 1;
  wcfg.max_filters = 8;
  wcfg.seed = env.seed + 17;
  const std::vector<Query> alpha_pool = GenerateWorkload(alpha_table, wcfg);
  wcfg.seed = env.seed + 18;
  const std::vector<Query> beta_pool = GenerateWorkload(beta_table, wcfg);
  // The flood: DISTINCT queries (duplicates would join in-flight twins
  // and bypass admission control), sized to overwhelm alpha's quota.
  wcfg.num_queries = std::max<size_t>(2 * num_requests, 8 * max_pending);
  wcfg.seed = env.seed + 19;
  const std::vector<Query> flood_pool = GenerateWorkload(alpha_table, wcfg);

  NaruEstimatorConfig ncfg;
  ncfg.num_samples = num_samples;
  ncfg.enumeration_threshold = 0;  // every request costs a sampled walk

  // Bit-identity references, computed sequentially before the models move
  // into the registry (training is deterministic, so this local walk and
  // the server's walks run the same weights).
  std::vector<double> alpha_ref(alpha_pool.size());
  std::vector<double> beta_ref(beta_pool.size());
  {
    ScopedSerialRegion serial;
    NaruEstimator alpha_est(alpha_model.get(), ncfg,
                            alpha_model->SizeBytes());
    NaruEstimator beta_est(beta_model.get(), ncfg, beta_model->SizeBytes());
    for (size_t i = 0; i < alpha_pool.size(); ++i) {
      alpha_ref[i] = alpha_est.EstimateSelectivity(alpha_pool[i]);
    }
    for (size_t i = 0; i < beta_pool.size(); ++i) {
      beta_ref[i] = beta_est.EstimateSelectivity(beta_pool[i]);
    }
  }
  // Alpha: the throttled tenant — bounded quota, no cache, tiny batches,
  // so a flood overflows admission instead of absorbing into batching.
  ModelRegistry registry;
  {
    TenantOptions alpha_opts;
    alpha_opts.estimator = ncfg;
    alpha_opts.engine.max_batch_size = 2;
    alpha_opts.engine.max_wait_ms = 0.0;
    alpha_opts.engine.max_pending = max_pending;
    alpha_opts.engine.engine.num_threads = threads;
    alpha_opts.engine.engine.enable_cache = false;
    std::vector<size_t> domains;
    for (size_t c = 0; c < alpha_table.num_columns(); ++c) {
      domains.push_back(alpha_table.column(c).DomainSize());
    }
    const size_t bytes = alpha_model->SizeBytes();
    const Status st =
        registry.AddTenant("alpha", "dmv_alpha", alpha_table.num_rows(),
                           std::move(domains), std::move(alpha_model),
                           bytes, alpha_opts);
    if (!st.ok()) {
      std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  // Beta: a standard tenant — unbounded admission, cache on.
  {
    TenantOptions beta_opts;
    beta_opts.estimator = ncfg;
    beta_opts.engine.max_batch_size = 32;
    beta_opts.engine.max_wait_ms = 1.0;
    beta_opts.engine.engine.num_threads = threads;
    std::vector<size_t> domains;
    for (size_t c = 0; c < beta_table.num_columns(); ++c) {
      domains.push_back(beta_table.column(c).DomainSize());
    }
    const size_t bytes = beta_model->SizeBytes();
    const Status st =
        registry.AddTenant("beta", "dmv_beta", beta_table.num_rows(),
                           std::move(domains), std::move(beta_model), bytes,
                           beta_opts);
    if (!st.ok()) {
      std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
      return 1;
    }
  }

  NetServer server(&registry);
  {
    const Status st = server.Start();
    if (!st.ok()) {
      std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  const uint16_t port = server.port();
  std::printf("\nserver on 127.0.0.1:%u, tenants: alpha (max_pending=%zu, "
              "cache off), beta (unbounded)\n",
              port, max_pending);

  BenchJsonWriter json("serving_net");
  json.SetConfig("rows", rows);
  json.SetConfig("requests", num_requests);
  json.SetConfig("unique", num_unique);
  json.SetConfig("samples", num_samples);
  json.SetConfig("qps", qps);
  json.SetConfig("threads", threads);
  json.SetConfig("max_pending", max_pending);
  json.SetConfig("smoke", smoke);
  const auto add_latency_row = [&json](const std::string& mode,
                                       const ClientRun& run) {
    const double qps_out =
        run.total_s > 0
            ? (run.served + run.shed + run.failed) / run.total_s
            : 0.0;
    json.AddRow(JsonObject{{"mode", mode},
                           {"qps", qps_out},
                           {"p50_ms", run.latency_ms.Quantile(0.5)},
                           {"p90_ms", run.latency_ms.Quantile(0.9)},
                           {"p99_ms", run.latency_ms.Quantile(0.99)},
                           {"max_ms", run.latency_ms.Max()}});
  };

  std::printf("\n%16s %8s %8s %8s %8s %8s %7s %6s %6s\n", "phase", "qps",
              "p50_ms", "p90_ms", "p99_ms", "max_ms", "served", "shed",
              "fail");

  bool ok = true;

  // ---- Phase 1: synchronous round-trip, bit-identity over the wire ----
  {
    std::vector<OpenLoopRequest> once(beta_pool.size());
    for (size_t i = 0; i < once.size(); ++i) {
      once[i].arrival_ms = 0.0;
      once[i].pool_index = i;
    }
    const ClientRun run = DriveTenant(port, "beta", beta_pool, once,
                                      &beta_ref, RequestPriority::kNormal);
    PrintRun("roundtrip", run);
    add_latency_row("roundtrip", run);
    if (!run.identical || run.failed != 0 || run.shed != 0 ||
        run.served != beta_pool.size()) {
      ok = false;
    }
    std::printf("%16s estimates bit-identical over the wire: %s\n", "",
                run.identical ? "yes" : "NO (BUG)");
  }

  // ---- Phase 2: two tenants, two connections, open-loop ----
  ClientRun baseline_beta;
  {
    const std::vector<OpenLoopRequest> alpha_trace = GenerateOpenLoopTrace(
        num_requests, qps, alpha_pool.size(), env.seed + 29);
    const std::vector<OpenLoopRequest> beta_trace = GenerateOpenLoopTrace(
        num_requests, qps, beta_pool.size(), env.seed + 31);
    ClientRun alpha_run;
    std::thread alpha_thread([&] {
      alpha_run = DriveTenant(port, "alpha", alpha_pool, alpha_trace,
                              &alpha_ref, RequestPriority::kNormal);
    });
    baseline_beta = DriveTenant(port, "beta", beta_pool, beta_trace,
                                &beta_ref, RequestPriority::kNormal);
    alpha_thread.join();
    PrintRun("open-loop-alpha", alpha_run);
    PrintRun("open-loop-beta", baseline_beta);
    add_latency_row("open-loop-alpha", alpha_run);
    add_latency_row("open-loop-beta", baseline_beta);
    // Alpha's bounded quota may legitimately shed under a burst; beta may
    // not, and both must stay exact on everything they served.
    if (!alpha_run.identical || !baseline_beta.identical ||
        alpha_run.failed + baseline_beta.failed != 0 ||
        baseline_beta.shed != 0 || !alpha_run.retry_hints_ok) {
      ok = false;
    }
  }

  // ---- Phase 3: flood alpha, watch beta not notice ----
  {
    std::vector<OpenLoopRequest> flood(flood_pool.size());
    for (size_t i = 0; i < flood.size(); ++i) {
      flood[i].arrival_ms = 0.0;  // burst: arrivals outrun service
      flood[i].pool_index = i;
    }
    const std::vector<OpenLoopRequest> beta_trace = GenerateOpenLoopTrace(
        num_requests, qps, beta_pool.size(), env.seed + 37);
    ClientRun flood_run;
    std::thread flood_thread([&] {
      // No reference for the flood: shed/served accounting is what
      // matters, and the flood pool was never walked locally.
      flood_run = DriveTenant(port, "alpha", flood_pool, flood,
                              /*reference=*/nullptr, RequestPriority::kLow);
    });
    const ClientRun beta_run = DriveTenant(port, "beta", beta_pool,
                                           beta_trace, &beta_ref,
                                           RequestPriority::kNormal);
    flood_thread.join();
    PrintRun("flood-alpha", flood_run);
    PrintRun("flooded-beta", beta_run);
    add_latency_row("flooded-beta", beta_run);

    const std::shared_ptr<Tenant> beta = registry.GetTenant("beta");
    const size_t beta_sheds = beta->engine->async_stats().shed_admission;
    const bool isolated = beta_run.shed == 0 && beta_run.identical &&
                          beta_run.failed == 0 && beta_sheds == 0;
    // The flood must actually overflow: distinct queries against a quota
    // of max_pending with service throttled to 2-wide batches.
    const bool flooded = flood_run.shed > 0 && flood_run.retry_hints_ok &&
                         flood_run.failed == 0;
    if (!isolated || !flooded) ok = false;
    std::printf(
        "\nflood: %zu of %zu alpha requests shed (max retry hint %.1f ms); "
        "beta: %zu shed, %zu engine admission sheds, bit-identical %s -> "
        "isolation %s\n",
        flood_run.shed, flood.size(), flood_run.max_retry_ms, beta_run.shed,
        beta_sheds, beta_run.identical ? "yes" : "NO",
        isolated && flooded ? "HELD" : "BROKEN");
    json.AddRow(JsonObject{{"mode", "saturation"},
                           {"shed", flood_run.shed},
                           {"served", flood_run.served},
                           {"beta_shed", beta_sheds}});
  }

  // ---- Drain and conservation ----
  server.Shutdown();
  const NetServerStats ns = server.stats();
  std::printf(
      "\nnet totals: %zu conns, %zu frames, %zu submitted, %zu responses, "
      "%zu rejected, %zu protocol errors, %zu orphaned\n",
      ns.connections_accepted, ns.frames_received, ns.requests_submitted,
      ns.responses_sent, ns.rejected_requests, ns.protocol_errors,
      ns.orphaned_responses);
  if (ns.requests_submitted != ns.responses_sent ||
      ns.orphaned_responses != 0 || ns.protocol_errors != 0 ||
      ns.rejected_requests != 0) {
    ok = false;
  }
  json.AddRow(JsonObject{{"mode", "totals"},
                         {"frames", ns.frames_received},
                         {"responses", ns.responses_sent}});
  json.Write();

  std::printf("\nwire path exact, isolated, and conserving: %s\n",
              ok ? "yes" : "NO (BUG)");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace naru

int main(int argc, char** argv) {
  naru::bench::InitBench(argc, argv);
  return naru::bench::Run();
}
