// Figure 5: training time vs estimation quality.
//
// After every epoch, reports (a) the entropy gap in bits and (b) the max
// q-error over the evaluation workload. Expected shape: both fall rapidly
// in the first epochs, then flatten (1 epoch already yields a usable DMV
// estimator in the paper).
#include <cstdio>

#include "bench_common.h"
#include "core/entropy.h"
#include "data/table_stats.h"
#include "util/string_util.h"

namespace naru {
namespace bench {
namespace {

void RunCurve(const Table& table, MadeModel::Config config, size_t epochs,
              size_t num_samples, const Workload& test,
              const std::string& tag) {
  const double h_data = TableStats::JointEntropyBits(table);
  std::printf("\n%s: |T|=%zu H(P)=%.2f bits, Naru-%zu\n", tag.c_str(),
              table.num_rows(), h_data, num_samples);
  std::printf("%-6s %-14s %-14s %-12s %-10s\n", "epoch", "train NLL(bits)",
              "entropy gap", "max q-err", "epoch(s)");

  MadeModel model(TableDomains(table), config);
  TrainerConfig tcfg;
  tcfg.batch_size = 512;
  tcfg.lr = 2e-3;
  tcfg.epochs = 1;
  Trainer trainer(&model, tcfg);

  const size_t n = table.num_rows();
  for (size_t epoch = 1; epoch <= epochs; ++epoch) {
    Stopwatch sw;
    const double nll_bits = trainer.RunEpoch(table);
    const double secs = sw.ElapsedSeconds();
    const double gap =
        ModelCrossEntropyBits(&model, table, /*max_rows=*/10000) - h_data;

    NaruEstimatorConfig ncfg;
    ncfg.num_samples = num_samples;
    NaruEstimator est(&model, ncfg, 0);
    double max_err = 0;
    for (size_t i = 0; i < test.queries.size(); ++i) {
      const double est_card = est.EstimateSelectivity(test.queries[i]) *
                              static_cast<double>(n);
      max_err = std::max(
          max_err, QError(est_card, static_cast<double>(test.cards[i])));
    }
    std::printf("%-6zu %-14.3f %-14.3f %-12s %-10.1f\n", epoch, nll_bits,
                gap, FormatPaperNumber(max_err).c_str(), secs);
  }
}

int Run() {
  const BenchEnv env = GetBenchEnv();
  PrintBanner("Figure 5: training time vs quality",
              StrFormat("epochs=%zu queries=%zu", env.epochs, env.queries));

  const size_t queries = std::min<size_t>(env.queries, 30);

  Table dmv = MakeDmvLike(env.dmv_rows, env.seed);
  const Workload dmv_test = MakeWorkload(dmv, queries, env.seed + 1);
  RunCurve(dmv, DmvModelConfig(env.seed + 5), std::min<size_t>(env.epochs, 5), 2000, dmv_test,
           "(a) DMV");

  Table conviva = MakeConvivaALike(env.conva_rows, env.seed);
  const Workload conviva_test =
      MakeWorkload(conviva, queries, env.seed + 1, false, 5, 11);
  RunCurve(conviva, ConvivaAModelConfig(env.seed + 5), std::min<size_t>(env.epochs, 5), 4000,
           conviva_test, "(b) Conviva-A");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace naru

int main(int argc, char** argv) {
  naru::bench::InitBench(argc, argv);
  return naru::bench::Run();
}
