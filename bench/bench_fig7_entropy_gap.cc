// Figure 7: accuracy vs artificial entropy gap on Conviva-B (first 15
// columns), using an oracle model smoothed toward uniform.
//
// Expected shape: Naru is best below ~2 bits of gap, degrades gracefully,
// and remains competitive up to ~10 bits; more sample paths cut variance
// (Naru-50 -> Naru-250 -> Naru-1000).
#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "core/oracle_model.h"
#include "core/sampler.h"
#include "estimator/indep.h"
#include "estimator/sample.h"
#include "util/string_util.h"

namespace naru {
namespace bench {
namespace {

double MaxError(Estimator* est, const Workload& w, size_t n) {
  double max_err = 1.0;
  for (size_t i = 0; i < w.queries.size(); ++i) {
    const double est_card =
        est->EstimateSelectivity(w.queries[i]) * static_cast<double>(n);
    max_err = std::max(
        max_err, QError(est_card, static_cast<double>(w.cards[i])));
  }
  return max_err;
}

int Run() {
  const BenchEnv env = GetBenchEnv();
  const size_t queries =
      static_cast<size_t>(GetEnvInt("NARU_FIG7_QUERIES", 30));  // paper: 50
  PrintBanner("Figure 7: accuracy vs artificial entropy gap "
              "(Conviva-B, first 15 columns)",
              StrFormat("rows=%zu queries=%zu", env.convb_rows, queries));

  Table full = MakeConvivaBLike(env.convb_rows, env.seed);
  Table table = full.Slice(0, full.num_rows(), 15);
  const size_t n = table.num_rows();
  const Workload test = MakeWorkload(table, queries, env.seed + 1, false, 5,
                                     11);

  // Baseline references (gap-independent).
  IndepEstimator indep(table);
  auto sample = SampleEstimator(table, std::max<size_t>(n / 100, 16),
                                env.seed + 2);  // Sample(1%)
  std::printf("# reference: Indep max err = %s, Sample(1%%) max err = %s\n",
              FormatPaperNumber(MaxError(&indep, test, n)).c_str(),
              FormatPaperNumber(MaxError(&sample, test, n)).c_str());

  OracleModel probe(&table, 0.0);
  std::printf("\n%-10s %-10s %-12s %-12s %-12s\n", "gap(bits)", "lambda",
              "Naru-50", "Naru-250", "Naru-1000");
  for (double target_gap : {0.0, 0.5, 2.0, 5.0, 10.0, 20.0}) {
    const double lambda = probe.FindLambdaForGapBits(target_gap);
    OracleModel oracle(&table, lambda);
    std::printf("%-10.1f %-10.4f", target_gap, lambda);
    for (size_t samples : {size_t{50}, size_t{250}, size_t{1000}}) {
      NaruEstimatorConfig ncfg;
      ncfg.num_samples = samples;
      ncfg.enumeration_threshold = 0;
      ncfg.sampler_seed = env.seed + 6;
      NaruEstimator est(&oracle, ncfg, 0,
                        StrFormat("Naru-%zu", samples));
      std::printf(" %-12s",
                  FormatPaperNumber(MaxError(&est, test, n)).c_str());
    }
    std::printf("\n");
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace naru

int main(int argc, char** argv) {
  naru::bench::InitBench(argc, argv);
  return naru::bench::Run();
}
