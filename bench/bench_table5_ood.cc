// Table 5: robustness to out-of-distribution queries on DMV.
//
// Literals are drawn uniformly from the whole joint domain, so ~all queries
// match nothing. MSCN (supervised on in-distribution queries) degrades
// badly; Sample/KDE correctly return ~0; Naru, having modeled the data
// distribution itself, assigns near-zero mass off-distribution.
#include <cstdio>
#include <memory>

#include "bench_common.h"
#include "estimator/kde.h"
#include "estimator/mscn.h"
#include "estimator/sample.h"
#include "util/string_util.h"

namespace naru {
namespace bench {
namespace {

void PrintQuantRow(const std::string& name, const QuantileSketch& s) {
  std::printf("%-14s %8s %8s %8s %8s\n", name.c_str(),
              FormatPaperNumber(s.Quantile(0.5)).c_str(),
              FormatPaperNumber(s.Quantile(0.95)).c_str(),
              FormatPaperNumber(s.Quantile(0.99)).c_str(),
              FormatPaperNumber(s.Quantile(1.0)).c_str());
}

int Run() {
  const BenchEnv env = GetBenchEnv();
  PrintBanner("Table 5: robustness to out-of-distribution queries (DMV)",
              StrFormat("rows=%zu queries=%zu", env.dmv_rows, env.queries));

  Table table = MakeDmvLike(env.dmv_rows, env.seed);
  const size_t n = table.num_rows();
  const size_t budget = BudgetBytes(table, 0.013);

  const Workload ood = MakeWorkload(table, env.queries, env.seed + 7,
                                    /*out_of_distribution=*/true, 8, 11);
  size_t zero_card = 0;
  for (int64_t c : ood.cards) {
    if (c == 0) ++zero_card;
  }
  std::printf("# %.0f%% of OOD queries have true cardinality 0\n",
              100.0 * static_cast<double>(zero_card) /
                  static_cast<double>(ood.cards.size()));

  // In-distribution training data for the supervised baselines.
  const Workload train =
      MakeWorkload(table, env.mscn_queries, env.seed + 1000);

  auto q_errors = [&](Estimator* est) {
    QuantileSketch s;
    for (size_t i = 0; i < ood.queries.size(); ++i) {
      const double est_card =
          est->EstimateSelectivity(ood.queries[i]) * static_cast<double>(n);
      s.Add(QError(est_card, static_cast<double>(ood.cards[i])));
    }
    return s;
  };

  std::printf("\n%-14s %8s %8s %8s %8s\n", "Estimator", "Median", "95th",
              "99th", "Max");

  MscnConfig mcfg;
  mcfg.sample_rows = 10000;
  mcfg.name = "MSCN-10K";
  mcfg.seed = env.seed + 4;
  MscnEstimator mscn(table, mcfg);
  mscn.Train(train.queries, train.cards);
  PrintQuantRow(mscn.name(), q_errors(&mscn));

  auto kde_superv =
      KdeEstimator(table, SampleRows(table, 0.013), env.seed + 3, "KDE-superv");
  {
    const size_t tune = std::min<size_t>(train.queries.size(), 300);
    std::vector<Query> tq(train.queries.begin(),
                          train.queries.begin() + tune);
    std::vector<double> ts(train.sels.begin(), train.sels.begin() + tune);
    KdeSupervisedTune(&kde_superv, tq, ts, 2);
  }
  PrintQuantRow(kde_superv.name(), q_errors(&kde_superv));

  auto sample = SampleEstimator(table, SampleRows(table, 0.013), env.seed + 2);
  PrintQuantRow(sample.name(), q_errors(&sample));

  auto model = TrainModel(table, DmvModelConfig(env.seed + 5), env.epochs,
                          "Naru(DMV)");
  NaruEstimatorConfig ncfg;
  ncfg.num_samples = 2000;
  ncfg.sampler_seed = env.seed + 6;
  NaruEstimator nar(model.get(), ncfg, model->SizeBytes());
  PrintQuantRow(nar.name(), q_errors(&nar));

  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace naru

int main(int argc, char** argv) {
  naru::bench::InitBench(argc, argv);
  return naru::bench::Run();
}
