// Micro-benchmark for the kernel layer (tensor/gemm_simd.cc): GFLOP/s of
// scalar vs SIMD vs int8 GEMM at the shapes the MADE serving path actually
// runs, plus the NT head-reuse shape. Single-threaded on purpose
// (ScopedSerialRegion) so the numbers measure the kernels, not the pool.
//
// Emits BENCH_micro_gemm.json (shared schema, see bench_common.h) with one
// row per (shape, kernel): GFLOP/s, speedup over scalar at the same shape,
// and matrix-level max relative error vs the scalar result.
//
// Exit status: nonzero when a kernel's result diverges from scalar beyond
// its epsilon (always), or — under --smoke with the AVX2 probe active —
// when the fp32 SIMD kernel fails a lenient 1.2x speedup floor at the
// 64x128x128 MADE hidden-layer shape (the CI tripwire; the acceptance
// target on dedicated hardware is 2x, reported in the headline line).
//
// Knobs: --smoke (shorter timing windows), NARU_KERNEL is ignored here —
// this bench always measures all kernels side by side.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "tensor/gemm.h"
#include "tensor/kernel.h"
#include "tensor/matrix.h"
#include "tensor/quant.h"
#include "util/macros.h"
#include "util/random.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace naru {
namespace bench {
namespace {

void FillRandom(Matrix* m, Rng* rng) {
  for (size_t i = 0; i < m->rows(); ++i) {
    float* row = m->Row(i);
    for (size_t j = 0; j < m->cols(); ++j) {
      row[j] = static_cast<float>(rng->Gaussian());
    }
  }
}

// One nonzero per 16-wide column group: the one-hot encoded input shape.
void FillOneHotish(Matrix* m, Rng* rng) {
  m->Zero();
  for (size_t i = 0; i < m->rows(); ++i) {
    for (size_t g = 0; g < m->cols(); g += 16) {
      const size_t span = std::min<size_t>(16, m->cols() - g);
      m->At(i, g + rng->UniformInt(span)) = 1.0f;
    }
  }
}

double MaxRelErr(const Matrix& ref, const Matrix& got) {
  double max_abs = 0, max_diff = 0;
  for (size_t i = 0; i < ref.rows(); ++i) {
    for (size_t j = 0; j < ref.cols(); ++j) {
      max_abs = std::max<double>(max_abs, std::fabs(ref.At(i, j)));
      max_diff =
          std::max<double>(max_diff, std::fabs(ref.At(i, j) - got.At(i, j)));
    }
  }
  return max_diff / (max_abs + 1e-12);
}

struct Case {
  const char* name;
  const char* op;  // "nn" | "nn_onehot" | "nt"
  size_t m, k, n;
};

// Timed loop: iterate until the window closes, report GFLOP/s.
template <typename Fn>
double TimeGflops(const Case& cs, double min_seconds, Fn&& fn) {
  fn();  // warm-up (also first-touch of the output)
  Stopwatch sw;
  size_t iters = 0;
  do {
    fn();
    ++iters;
  } while (sw.ElapsedSeconds() < min_seconds);
  const double secs = sw.ElapsedSeconds();
  const double flops = 2.0 * static_cast<double>(cs.m) *
                       static_cast<double>(cs.k) * static_cast<double>(cs.n) *
                       static_cast<double>(iters);
  return flops / secs / 1e9;
}

int Run() {
  const bool smoke = GetEnvBool("NARU_SMOKE", false);
  const double min_seconds = smoke ? 0.02 : 0.25;
  PrintBanner("Micro GEMM: scalar vs simd vs simd_int8",
              StrFormat("%s; window=%.0fms%s", SimdDispatchString().c_str(),
                        min_seconds * 1e3, smoke ? " (smoke)" : ""));

  const Case cases[] = {
      // The MADE hidden-layer shape (batch=samples-shard, 128->128): the
      // acceptance shape for the 2x target.
      {"made_hidden", "nn", 64, 128, 128},
      // A full progressive-sampling shard stack.
      {"made_stacked", "nn", 512, 128, 128},
      // The encoded input layer: one-hot rows into the first hidden layer.
      {"made_input_onehot", "nn_onehot", 64, 480, 128},
      // Embedding-reuse output head: logits = trunk x table^T.
      {"head_reuse_nt", "nt", 64, 32, 100},
  };

  BenchJsonWriter json("micro_gemm");
  json.SetConfig("smoke", smoke);
  json.SetConfig("min_seconds", min_seconds);

  std::printf("\n%-20s %-10s %10s %9s %12s\n", "shape", "kernel", "gflops",
              "speedup", "max_rel_err");

  ScopedSerialRegion serial;  // measure kernels, not the pool
  Rng rng(5);
  bool ok = true;
  double made_hidden_simd_speedup = 0;

  for (const Case& cs : cases) {
    Matrix a(cs.m, cs.k);
    const bool onehot = std::string(cs.op) == "nn_onehot";
    if (onehot) {
      FillOneHotish(&a, &rng);
    } else {
      FillRandom(&a, &rng);
    }
    const InputHint hint = onehot ? InputHint::kOneHot : InputHint::kDense;
    const bool nt = std::string(cs.op) == "nt";
    Matrix b(nt ? cs.n : cs.k, nt ? cs.k : cs.n);
    FillRandom(&b, &rng);
    QuantizedWeights q;
    if (!nt) QuantizeWeightsPerColumn(b, &q);

    Matrix ref, out;
    double scalar_gflops = 0;
    // Kernel sweep; int8 only exists for the NN weight path.
    std::vector<std::string> kernels = {"scalar", "simd"};
    if (!nt) kernels.push_back("simd_int8");
    for (const std::string& kname : kernels) {
      double gflops = 0;
      if (kname == "simd_int8") {
        gflops = TimeGflops(cs, min_seconds,
                            [&] { GemmNNInt8(a, q, &out, false, hint); });
      } else {
        KernelKind kernel = KernelKind::kScalar;
        NARU_CHECK(ParseKernelKind(kname, &kernel));
        if (nt) {
          gflops = TimeGflops(cs, min_seconds,
                              [&] { GemmNT(a, b, &out, false, kernel); });
        } else {
          gflops = TimeGflops(cs, min_seconds, [&] {
            GemmNN(a, b, &out, false, kernel, hint);
          });
        }
      }
      double rel_err = 0;
      if (kname == "scalar") {
        scalar_gflops = gflops;
        ref = out;
      } else {
        rel_err = MaxRelErr(ref, out);
        // fp32 kernels reassociate only; int8 adds quantization error.
        const double bound = kname == "simd_int8" ? 5e-2 : 1e-3;
        if (rel_err > bound) {
          std::printf("FAIL: %s/%s rel err %.3g exceeds %.3g\n", cs.name,
                      kname.c_str(), rel_err, bound);
          ok = false;
        }
      }
      const double speedup = scalar_gflops > 0 ? gflops / scalar_gflops : 0;
      if (std::string(cs.name) == "made_hidden" && kname == "simd") {
        made_hidden_simd_speedup = speedup;
      }
      std::printf("%-20s %-10s %10.2f %8.2fx %12.3g\n", cs.name,
                  kname.c_str(), gflops, speedup, rel_err);
      json.AddRow({{"shape", cs.name},
                   {"op", cs.op},
                   {"m", cs.m},
                   {"k", cs.k},
                   {"n", cs.n},
                   {"kernel", kname},
                   {"gflops", gflops},
                   {"speedup_vs_scalar", speedup},
                   {"max_rel_err", rel_err}});
    }
  }

  std::printf("\nheadline: simd speedup at 64x128x128 = %.2fx "
              "(acceptance target 2x on AVX2 hardware)\n",
              made_hidden_simd_speedup);
  json.SetConfig("made_hidden_simd_speedup", made_hidden_simd_speedup);
  json.Write();

  if (smoke && PerfAssertsEnabled() &&
      DetectedSimdLevel() == SimdLevel::kAvx2 &&
      made_hidden_simd_speedup < 1.2) {
    // Lenient CI floor: shared runners are noisy, so the tripwire is well
    // under the 2x acceptance target. Waived entirely under
    // NARU_SMOKE_NO_PERF_ASSERT (sanitizer legs): instrumentation skews
    // the scalar/simd ratio, not just absolute time.
    std::printf("FAIL: smoke speedup floor 1.2x not met (%.2fx)\n",
                made_hidden_simd_speedup);
    ok = false;
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace naru

int main(int argc, char** argv) {
  naru::bench::InitBench(argc, argv);
  return naru::bench::Run();
}
