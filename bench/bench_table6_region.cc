// Table 6: query region sizes vs estimated enumeration latency vs Naru's
// actual progressive-sampling latency, at the workload's 99th percentile.
//
// Enumeration cost is modeled as (points in region) / (measured model
// point-likelihood throughput) -- exactly how the paper derives its
// ">1000 hr" estimates; progressive sampling answers the same queries in
// milliseconds.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "core/entropy.h"
#include "util/string_util.h"

namespace naru {
namespace bench {
namespace {

struct RegionRow {
  double log10_region_p99;
  double enum_hours;
  double naru_ms_p99;
};

RegionRow Measure(const Table& table, MadeModel* model,
                  const Workload& test, size_t num_samples) {
  // Region sizes at the 99th percentile.
  QuantileSketch region_log10;
  for (const auto& q : test.queries) {
    region_log10.Add(q.Log10RegionSize());
  }
  const double p99 = region_log10.Quantile(0.99);

  // Model point-likelihood throughput (points/sec).
  constexpr size_t kProbe = 4096;
  IntMatrix probe(kProbe, table.num_columns());
  for (size_t r = 0; r < kProbe; ++r) {
    table.GetRowCodes(r % table.num_rows(), probe.Row(r));
  }
  std::vector<double> lp;
  Stopwatch sw;
  model->LogProbRows(probe, &lp);
  const double points_per_sec =
      static_cast<double>(kProbe) / std::max(sw.ElapsedSeconds(), 1e-9);

  // Naru's actual latency at p99.
  NaruEstimatorConfig ncfg;
  ncfg.num_samples = num_samples;
  ncfg.enumeration_threshold = 0;
  NaruEstimator est(model, ncfg, 0);
  QuantileSketch latency;
  for (const auto& q : test.queries) {
    Stopwatch qsw;
    est.EstimateSelectivity(q);
    latency.Add(qsw.ElapsedMillis());
  }

  RegionRow row;
  row.log10_region_p99 = p99;
  row.enum_hours = std::pow(10.0, p99) / points_per_sec / 3600.0;
  row.naru_ms_p99 = latency.Quantile(0.99);
  return row;
}

int Run() {
  const BenchEnv env = GetBenchEnv();
  const size_t queries = std::min<size_t>(env.queries, 100);
  PrintBanner("Table 6: query region size vs enumeration vs Naru latency",
              "99th-percentile query; enumeration estimated at measured "
              "model throughput");

  std::printf("\n%-12s %-16s %-16s %-14s\n", "Dataset", "Region (99th)",
              "Enum (est.)", "Naru (actual)");

  {
    Table dmv = MakeDmvLike(env.dmv_rows, env.seed);
    auto model = TrainModel(dmv, DmvModelConfig(env.seed + 5), 1, "DMV");
    const Workload test = MakeWorkload(dmv, queries, env.seed + 1);
    const RegionRow row = Measure(dmv, model.get(), test, 2000);
    std::printf("%-12s 10^%-13.1f %-13.3g hr %11.0f ms\n", "DMV",
                row.log10_region_p99, row.enum_hours, row.naru_ms_p99);
  }
  {
    Table conviva = MakeConvivaALike(env.conva_rows, env.seed);
    auto model =
        TrainModel(conviva, ConvivaAModelConfig(env.seed + 5), 1,
                   "Conviva-A");
    const Workload test =
        MakeWorkload(conviva, queries, env.seed + 1, false, 5, 11);
    const RegionRow row = Measure(conviva, model.get(), test, 4000);
    std::printf("%-12s 10^%-13.1f %-13.3g hr %11.0f ms\n", "Conviva-A",
                row.log10_region_p99, row.enum_hours, row.naru_ms_p99);
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace naru

int main(int argc, char** argv) {
  naru::bench::InitBench(argc, argv);
  return naru::bench::Run();
}
