// §4.3 ablation: architecture A (per-column nets) vs architecture B
// (masked MLP / MADE) at comparable parameter counts — extended with the
// other two architectures this repo implements: ResMADE (B + residual
// skips) and the causal Transformer (§3.1 names it among the pluggable
// autoregressive models).
//
// The paper reports A reaching ~8% better entropy gap at matched size, but
// B training faster per epoch; Naru ships B by default. This bench
// reproduces both measurements (gap after equal epochs + epoch wall time)
// across all four architectures.
#include <cstdio>

#include "bench_common.h"
#include "core/entropy.h"
#include "core/percolumn.h"
#include "core/transformer.h"
#include "data/table_stats.h"
#include "nn/adam.h"
#include "util/string_util.h"

namespace naru {
namespace bench {
namespace {

int Run() {
  const BenchEnv env = GetBenchEnv();
  const size_t epochs = std::min<size_t>(env.epochs, 3);
  PrintBanner("Ablation (§4.3): arch A (per-column nets) vs arch B (MADE)",
              StrFormat("Conviva-A rows=%zu epochs=%zu", env.conva_rows,
                        epochs));

  Table table = MakeConvivaALike(env.conva_rows / 2, env.seed);
  const double h_data = TableStats::JointEntropyBits(table);
  const auto domains = TableDomains(table);

  // Architecture B: MADE with 4 x 128 hidden.
  MadeModel::Config bcfg = ConvivaAModelConfig(env.seed + 5);
  MadeModel arch_b(domains, bcfg);

  // Architecture A: per-column nets sized to a comparable total parameter
  // count.
  PerColumnModel::Config acfg;
  acfg.hidden_sizes = {48, 48};
  acfg.encoder = bcfg.encoder;
  acfg.seed = env.seed + 5;
  PerColumnModel arch_a(domains, acfg);

  std::printf("# params: arch A = %s, arch B = %s, H(P) = %.2f bits\n",
              HumanBytes(arch_a.SizeBytes()).c_str(),
              HumanBytes(arch_b.SizeBytes()).c_str(), h_data);

  const IntMatrix codes = TableToCodes(table);
  const size_t batch_size = 512;

  auto run = [&](auto* model, const char* tag) {
    AdamOptions opts;
    opts.lr = 2e-3;
    opts.clip_global_norm = 5.0;
    Adam adam(model->Parameters(), opts);
    Rng shuffle(env.seed);
    std::vector<size_t> order(table.num_rows());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;

    double total_secs = 0;
    IntMatrix batch;
    for (size_t e = 0; e < epochs; ++e) {
      Stopwatch sw;
      shuffle.Shuffle(&order);
      for (size_t start = 0; start < order.size(); start += batch_size) {
        const size_t chunk = std::min(batch_size, order.size() - start);
        batch.Resize(chunk, table.num_columns());
        for (size_t i = 0; i < chunk; ++i) {
          for (size_t c = 0; c < table.num_columns(); ++c) {
            batch.At(i, c) = codes.At(order[start + i], c);
          }
        }
        model->ForwardBackward(batch);
        adam.Step();
      }
      total_secs += sw.ElapsedSeconds();
    }
    const double gap =
        ModelCrossEntropyBits(model, table, 10000) - h_data;
    std::printf("%-22s entropy gap %7.3f bits   %6.2f s/epoch\n", tag, gap,
                total_secs / static_cast<double>(epochs));
    return gap;
  };

  // ResMADE: same stack as B, residual skips on.
  MadeModel::Config rcfg = bcfg;
  rcfg.residual = true;
  MadeModel arch_res(domains, rcfg);

  // Causal Transformer sized to a comparable parameter count.
  TransformerModel::Config tcfg;
  tcfg.d_model = 48;
  tcfg.num_heads = 4;
  tcfg.num_layers = 2;
  tcfg.ffn_hidden = 128;
  tcfg.seed = env.seed + 5;
  TransformerModel arch_t(domains, tcfg);
  std::printf("# params: ResMADE = %s, Transformer = %s\n",
              HumanBytes(arch_res.SizeBytes()).c_str(),
              HumanBytes(arch_t.SizeBytes()).c_str());

  const double gap_b = run(&arch_b, "arch B (MADE)");
  const double gap_a = run(&arch_a, "arch A (per-column)");
  const double gap_r = run(&arch_res, "ResMADE");
  const double gap_t = run(&arch_t, "Transformer");
  std::printf("# relative gap difference (A vs B): %+.1f%%\n",
              100.0 * (gap_a - gap_b) / gap_b);
  std::printf("# relative gap difference (ResMADE vs B): %+.1f%%\n",
              100.0 * (gap_r - gap_b) / gap_b);
  std::printf("# relative gap difference (Transformer vs B): %+.1f%%\n",
              100.0 * (gap_t - gap_b) / gap_b);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace naru

int main(int argc, char** argv) {
  naru::bench::InitBench(argc, argv);
  return naru::bench::Run();
}
