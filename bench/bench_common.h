// Shared scaffolding for the per-table/per-figure benchmark binaries.
//
// Every bench runs at laptop scale by default and scales toward the paper's
// setup through environment variables:
//   NARU_DMV_ROWS        rows of the DMV-like table        (default 40000)
//   NARU_CONVA_ROWS      rows of the Conviva-A-like table  (default 20000)
//   NARU_CONVB_ROWS      rows of the Conviva-B-like table  (default 10000)
//   NARU_QUERIES         evaluation queries per workload   (default 60)
//   NARU_EPOCHS          Naru training epochs              (default 10)
//   NARU_MSCN_QUERIES    MSCN training queries             (default 800)
//   NARU_SEED            global experiment seed            (default 42)
//   NARU_THREADS         serving threads (0 = global pool) (default 0)
//   NARU_BATCH           EstimateBatch size (0 = per-bench default/grid)
//
// Serving benches add (see docs/SERVING.md for the full knob reference):
//   NARU_SERVE_REQUESTS  trace length
//   NARU_SERVE_UNIQUE    distinct query templates in the pool
//   NARU_SERVE_SAMPLES   progressive sample paths per query
//   NARU_SERVE_QPS       open-loop arrival rate (bench_serving_async)
//   NARU_MAX_BATCH       async micro-batch flush size
//   NARU_MAX_WAIT_MS     async micro-batch flush deadline
//   NARU_CACHE_BUDGET_MB per-model exact-result cache budget
//   NARU_KERNEL          inference kernel: scalar | simd | simd_int8
//   NARU_SMOKE           CI preset: tiny model, no arrival sleeps
//
// Every knob is also reachable as a command-line flag through
// InitBench(argc, argv): `--threads 4` sets NARU_THREADS=4, `--queries=200`
// sets NARU_QUERIES=200, and so on (see util/env_config.h).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/made.h"
#include "core/naru_estimator.h"
#include "core/trainer.h"
#include "data/datasets.h"
#include "estimator/estimator.h"
#include "query/executor.h"
#include "query/metrics.h"
#include "query/workload.h"
#include "tensor/kernel.h"
#include "util/env_config.h"
#include "util/quantile.h"
#include "util/stopwatch.h"

namespace naru {
namespace bench {

/// Environment-resolved experiment scale.
struct BenchEnv {
  size_t dmv_rows;
  size_t conva_rows;
  size_t convb_rows;
  size_t queries;
  size_t epochs;
  size_t mscn_queries;
  uint64_t seed;
  /// Serving threads for the inference engine (0 = share the global pool,
  /// 1 = strictly serial).
  size_t threads;
  /// Batch size for EstimateBatch-driven evaluation (0 = let each bench
  /// pick its default or sweep its grid).
  size_t batch;
  /// Inference kernel family (NARU_KERNEL / --kernel; default scalar).
  /// Terminates with exit code 2 on an unknown name so a typoed CI matrix
  /// leg fails loudly instead of silently benchmarking the scalar path.
  KernelKind kernel;
};
BenchEnv GetBenchEnv();

/// Applies `--flag value` overrides onto the NARU_* environment (so every
/// bench shares one knob surface) — call first in main(). Terminates with
/// exit code 2 on a malformed command line.
void InitBench(int argc, char** argv);

/// A workload with ground truth attached.
struct Workload {
  std::vector<Query> queries;
  std::vector<int64_t> cards;
  std::vector<double> sels;
};

/// Generates queries per §6.1.3 and executes them for ground truth.
Workload MakeWorkload(const Table& table, size_t num_queries, uint64_t seed,
                      bool out_of_distribution = false,
                      size_t min_filters = 5, size_t max_filters = 11);

std::vector<size_t> TableDomains(const Table& table);

/// Paper-inspired model configs scaled to the bench defaults.
MadeModel::Config DmvModelConfig(uint64_t seed);
MadeModel::Config ConvivaAModelConfig(uint64_t seed);

/// Trains and returns a model, logging per-epoch NLL.
std::unique_ptr<MadeModel> TrainModel(const Table& table,
                                      MadeModel::Config config,
                                      size_t epochs, const std::string& tag);

/// Runs `est` over the workload, filling the error report and (optionally)
/// per-query latency in milliseconds.
void EvaluateEstimator(Estimator* est, const Workload& workload,
                       size_t num_rows, ErrorReport* report,
                       QuantileSketch* latency_ms = nullptr);

/// Runs `est` over the workload through EstimateBatch in batches of
/// `batch_size` (>= 1), filling the report; returns achieved queries/sec.
/// For a fixed seed the per-query errors equal EvaluateEstimator's.
double EvaluateEstimatorBatched(Estimator* est, const Workload& workload,
                                size_t num_rows, size_t batch_size,
                                ErrorReport* report);

/// Prints the paper-style grouped error table.
void PrintErrorTable(const std::string& title,
                     const std::vector<const ErrorReport*>& reports);

/// Prints a banner for the experiment.
void PrintBanner(const std::string& experiment, const std::string& detail);

/// False when NARU_SMOKE_NO_PERF_ASSERT=1: wall-clock-sensitive pass/fail
/// checks (throughput floors, deadline-coupled shed-rate windows) are
/// reported but not enforced. The sanitizer CI legs set it — a 5-20x
/// TSan/ASan slowdown says nothing about a perf regression — while
/// correctness asserts (error bounds, conservation counters, determinism)
/// stay enforced unconditionally.
bool PerfAssertsEnabled();

/// Storage budget for a dataset: `fraction` of the raw table bytes, floored
/// so miniature runs keep baselines functional (sizes are printed so the
/// comparison stays honest).
size_t BudgetBytes(const Table& table, double fraction);

/// Row count for sampling-family estimators: `fraction` of the table's
/// rows (the paper's 1.3% / 0.7% budgets), NOT floored -- the point of the
/// Sample baseline is that small samples miss rare tuples.
size_t SampleRows(const Table& table, double fraction);

// ---------------------------------------------------------------------------
// Machine-readable results: BENCH_<name>.json
//
// Benches that feed dashboards/CI write one JSON file per run alongside
// their human-readable tables, all through this shared writer so the schema
// stays uniform:
//   {
//     "bench": "<name>", "schema_version": 2,
//     "simd": "<runtime dispatch probe, e.g. 'simd dispatch: avx2'>",
//     "meta": {
//       "host":    hostname of the machine that produced the run,
//       "commit":  NARU_GIT_COMMIT if set, else `git rev-parse --short HEAD`,
//                  else "unknown",
//       "threads": NARU_THREADS, "kernel": NARU_KERNEL, "smoke": bool
//     },
//     "config": { flat key -> string/number/bool },
//     "rows":   [ { flat key -> string/number/bool }, ... ]
//   }
// tools/check_bench_regression.py compares "rows" metrics against the
// checked-in trajectory under bench/trajectory/ and treats "meta" as
// provenance only (never compared). Schema history: v1 had no "meta".
// ---------------------------------------------------------------------------

/// A flat JSON scalar (enough for the bench schema: no nesting in rows).
struct JsonValue {
  enum class Kind { kString, kNumber, kBool };
  Kind kind;
  std::string str;
  double num = 0;
  bool b = false;

  JsonValue(const char* s) : kind(Kind::kString), str(s) {}          // NOLINT
  JsonValue(std::string s) : kind(Kind::kString), str(std::move(s)) {}  // NOLINT
  JsonValue(double v) : kind(Kind::kNumber), num(v) {}               // NOLINT
  JsonValue(int v) : kind(Kind::kNumber), num(v) {}                  // NOLINT
  JsonValue(size_t v)                                                // NOLINT
      : kind(Kind::kNumber), num(static_cast<double>(v)) {}
  JsonValue(bool v) : kind(Kind::kBool), b(v) {}                     // NOLINT

  /// JSON-encodes the value (strings escaped; non-finite numbers -> null).
  std::string Encode() const;
};

/// One flat JSON object, insertion-ordered.
using JsonObject = std::vector<std::pair<std::string, JsonValue>>;

/// Run provenance stamped into every BENCH_*.json "meta" block: host,
/// commit (NARU_GIT_COMMIT > git rev-parse > "unknown"), threads, kernel,
/// smoke. Exposed so tests can assert the stamp without parsing a file.
JsonObject BenchRunMetadata();

/// Accumulates config + result rows and writes BENCH_<name>.json.
class BenchJsonWriter {
 public:
  /// `name` becomes both the "bench" field and the file stem.
  explicit BenchJsonWriter(std::string name) : name_(std::move(name)) {}

  void SetConfig(const std::string& key, JsonValue value) {
    config_.emplace_back(key, std::move(value));
  }
  void AddRow(JsonObject row) { rows_.push_back(std::move(row)); }

  /// Writes BENCH_<name>.json into NARU_BENCH_JSON_DIR (default ".") and
  /// prints the path. Returns false (with a stderr note) on I/O failure —
  /// benches treat that as non-fatal so a read-only CWD can't fail a run.
  bool Write() const;

 private:
  std::string name_;
  JsonObject config_;
  std::vector<JsonObject> rows_;
};

}  // namespace bench
}  // namespace naru
