// Table 7: model size vs entropy gap on Conviva-A.
//
// Four MADE widths (32/64/128/256 x 4 layers) trained for a fixed number
// of epochs; larger models reach lower entropy gaps (with diminishing
// returns, per Figure 5's accuracy saturation).
#include <cstdio>

#include "bench_common.h"
#include "core/entropy.h"
#include "data/table_stats.h"
#include "util/string_util.h"

namespace naru {
namespace bench {
namespace {

int Run() {
  const BenchEnv env = GetBenchEnv();
  const size_t epochs =
      static_cast<size_t>(GetEnvInt("NARU_T7_EPOCHS", 3));  // paper: 5
  PrintBanner("Table 7: model size vs entropy gap (Conviva-A)",
              StrFormat("rows=%zu epochs=%zu", env.conva_rows, epochs));

  Table table = MakeConvivaALike(env.conva_rows, env.seed);
  const double h_data = TableStats::JointEntropyBits(table);
  std::printf("# H(P) = %.2f bits\n", h_data);
  std::printf("\n%-22s %-12s %-18s\n", "Architecture", "Size",
              StrFormat("Entropy gap, %zu epochs", epochs).c_str());

  for (size_t width : {32, 64, 128, 256}) {
    MadeModel::Config cfg = ConvivaAModelConfig(env.seed + 5);
    cfg.hidden_sizes = {width, width, width, width};
    MadeModel model(TableDomains(table), cfg);
    TrainerConfig tcfg;
    tcfg.epochs = epochs;
    tcfg.batch_size = 512;
    tcfg.lr = 2e-3;
    Trainer trainer(&model, tcfg);
    trainer.Train(table);
    const double gap =
        ModelCrossEntropyBits(&model, table, 10000) - h_data;
    std::printf("%-22s %-12s %11.2f bits\n",
                StrFormat("%zux%zux%zux%zu", width, width, width, width)
                    .c_str(),
                HumanBytes(model.SizeBytes()).c_str(), gap);
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace naru

int main(int argc, char** argv) {
  naru::bench::InitBench(argc, argv);
  return naru::bench::Run();
}
