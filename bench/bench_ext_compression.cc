// Extension (§8): lossless compression as an external check on model fit.
//
// The paper's conclusion links likelihood modeling to data compression;
// this bench makes the link measurable. For each model in a quality ladder
// (untrained MADE -> Chow-Liu Bayes net -> trained MADE) it range-codes the
// DMV-like table against the model's conditionals and reports bits/tuple
// next to the table's exact joint entropy H(P). The coded size minus H(P)
// is the entropy gap (§3.3) measured in actual output bytes, and every blob
// is decompressed and verified byte-exact.
#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "core/compress.h"
#include "data/table_stats.h"
#include "estimator/bayesnet.h"
#include "util/string_util.h"

namespace naru {
namespace bench {
namespace {

bool VerifyRoundTrip(ConditionalModel* model, const Table& t,
                     const std::string& blob) {
  IntMatrix decoded;
  if (!DecompressTuples(model, blob, &decoded).ok()) return false;
  std::vector<int32_t> row(t.num_columns());
  for (size_t r = 0; r < t.num_rows(); ++r) {
    t.GetRowCodes(r, row.data());
    for (size_t c = 0; c < t.num_columns(); ++c) {
      if (decoded.At(r, c) != row[c]) return false;
    }
  }
  return true;
}

int Run() {
  const BenchEnv env = GetBenchEnv();
  const size_t rows = env.dmv_rows / 2;
  PrintBanner("Extension (§8): model-driven lossless compression",
              StrFormat("DMV rows=%zu epochs=%zu", rows, env.epochs));

  Table table = MakeDmvLike(rows, env.seed);
  const double h_joint = TableStats::JointEntropyBits(table);
  const auto domains = TableDomains(table);

  double naive_bits = 0;
  for (size_t d : domains) {
    naive_bits += std::ceil(std::log2(std::max<double>(2.0, d)));
  }
  std::printf("# H(P) = %.2f bits/tuple, naive dictionary codes = %.0f "
              "bits/tuple\n",
              h_joint, naive_bits);
  std::printf("%-24s %14s %14s %12s\n", "model", "bits/tuple",
              "gap vs H(P)", "round-trip");

  auto report = [&](const char* name, ConditionalModel* model) {
    CompressionStats stats;
    auto blob = CompressTable(model, table, &stats);
    if (!blob.ok()) {
      std::printf("%-24s failed: %s\n", name,
                  blob.status().ToString().c_str());
      return;
    }
    const bool ok = VerifyRoundTrip(model, table, blob.ValueOrDie());
    std::printf("%-24s %14.2f %14.2f %12s\n", name, stats.bits_per_tuple,
                stats.bits_per_tuple - h_joint, ok ? "exact" : "FAILED");
  };

  MadeModel untrained(domains, DmvModelConfig(env.seed + 21));
  report("MADE (untrained)", &untrained);

  BayesNet bn(table);
  report("Chow-Liu Bayes net", &bn);

  auto trained = TrainModel(table, DmvModelConfig(env.seed + 22),
                            std::max<size_t>(env.epochs / 2, 4), "DMV");
  report("MADE (trained)", trained.get());

  std::printf("# shape: bits/tuple falls toward H(P) as model quality "
              "rises; all round-trips exact.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace naru

int main(int argc, char** argv) {
  naru::bench::InitBench(argc, argv);
  return naru::bench::Run();
}
