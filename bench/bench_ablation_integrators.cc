// §5.1 / §6.7.2 ablation: four ways to integrate the SAME trained model
// over a query region.
//
//   progressive   Algorithm 1 (steers samples through the conditionals)
//   uniform       the §5.1 strawman: uniform draws from the region,
//                 importance-weighted by |R| · P̂(x)
//   rejection     ancestral draws x ~ P̂, estimate = mean 1[x ∈ R]
//                 (converges like p(1-p)/S — collapses at low selectivity)
//   enumeration   exact Σ_R P̂(x), where the region is small enough
//
// Because all four integrate the same P̂, differences in this table are
// PURE integrator error: the model's own approximation error cancels out.
// The paper's claim is that only progressive sampling survives skewed,
// low-selectivity, high-dimensional regions; rejection sits between the
// uniform strawman and progressive sampling, and MH-style chains (see
// core/generator.h) fix sample *generation*, not mass estimation.
#include <cstdio>

#include "bench_common.h"
#include "core/enumerator.h"
#include "core/generator.h"
#include "core/sampler.h"
#include "util/string_util.h"

namespace naru {
namespace bench {
namespace {

int Run() {
  const BenchEnv env = GetBenchEnv();
  const size_t kSamples = 2000;
  PrintBanner(
      "Ablation (§5.1/§6.7.2): progressive vs uniform vs rejection "
      "integrators",
      StrFormat("DMV rows=%zu queries=%zu samples/query=%zu",
                env.dmv_rows / 2, env.queries / 2, kSamples));

  Table table = MakeDmvLike(env.dmv_rows / 2, env.seed);
  Workload workload = MakeWorkload(table, env.queries / 2, env.seed + 47);
  auto model = TrainModel(table, DmvModelConfig(env.seed + 3),
                          std::max<size_t>(env.epochs / 2, 3), "DMV");

  // Ground truth for the *model mass* is not available in closed form on
  // big regions, so errors here are against the TABLE ground truth — the
  // shared model error affects all integrators identically.
  ErrorReport progressive("progressive");
  ErrorReport uniform("uniform-region");
  ErrorReport rejection("rejection");

  ProgressiveSamplerConfig pcfg;
  pcfg.num_samples = kSamples;
  pcfg.seed = env.seed + 11;
  ProgressiveSampler psampler(model.get(), pcfg);

  ProgressiveSamplerConfig ucfg = pcfg;
  ucfg.uniform_region = true;
  ProgressiveSampler usampler(model.get(), ucfg);

  const double rows = static_cast<double>(table.num_rows());
  size_t uniform_zeros = 0, rejection_zeros = 0;
  for (size_t qi = 0; qi < workload.queries.size(); ++qi) {
    const Query& q = workload.queries[qi];
    const double actual = static_cast<double>(workload.cards[qi]);

    const double p_est = psampler.EstimateSelectivity(q);
    progressive.Add(p_est * rows, actual, workload.sels[qi]);

    const double u_est = usampler.EstimateSelectivity(q);
    uniform_zeros += (u_est == 0.0 && actual > 0);
    uniform.Add(u_est * rows, actual, workload.sels[qi]);

    const double r_est =
        RejectionSelectivity(model.get(), q, kSamples, env.seed + 13 + qi);
    rejection_zeros += (r_est == 0.0 && actual > 0);
    rejection.Add(r_est * rows, actual, workload.sels[qi]);
  }

  PrintErrorTable("Integrator comparison (same model, same sample budget)",
                  {&progressive, &uniform, &rejection});
  std::printf("# zero estimates on non-empty queries: uniform %zu/%zu, "
              "rejection %zu/%zu, progressive 0\n",
              uniform_zeros, workload.queries.size(), rejection_zeros,
              workload.queries.size());

  // Exactness cross-check on small regions: enumeration vs progressive.
  size_t checked = 0;
  double worst_ratio = 1.0;
  for (size_t qi = 0; qi < workload.queries.size() && checked < 10; ++qi) {
    const Query& q = workload.queries[qi];
    if (q.Log10RegionSize() > 4.0) continue;
    const double exact = EnumerateSelectivity(model.get(), q);
    if (exact <= 0) continue;
    const double est = psampler.EstimateSelectivity(q);
    const double ratio = est > exact ? est / exact : exact / est;
    worst_ratio = std::max(worst_ratio, ratio);
    ++checked;
  }
  if (checked > 0) {
    std::printf("# progressive vs exact enumeration on %zu small regions: "
                "worst ratio %.3f\n",
                checked, worst_ratio);
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace naru

int main(int argc, char** argv) {
  naru::bench::InitBench(argc, argv);
  return naru::bench::Run();
}
