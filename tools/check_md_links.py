#!/usr/bin/env python3
"""Fail on broken intra-repo markdown links.

Scans every tracked *.md file for inline links/images `[text](target)` and
reference definitions `[id]: target`, resolves relative targets against the
linking file, and exits nonzero listing any target that does not exist.
External links (scheme://, mailto:) and pure in-page anchors (#...) are
skipped; a `path#fragment` target is checked for the path only. Stdlib
only — runs anywhere python3 does.

Usage: python3 tools/check_md_links.py [repo_root]
"""
import os
import re
import sys

# Inline [text](target) — target may carry an optional "title"; images are
# the same syntax behind a '!'. Reference definitions are `[id]: target`.
INLINE = re.compile(r"\[[^\]]*\]\(\s*<?([^)<>\s]+)>?(?:\s+\"[^\"]*\")?\s*\)")
REFDEF = re.compile(r"^\s{0,3}\[[^\]]+\]:\s+<?(\S+?)>?\s*$", re.MULTILINE)
FENCE = re.compile(r"^(```|~~~)", re.MULTILINE)
SKIP_DIRS = {".git", "build", ".claude"}


def strip_code_fences(text):
    """Drop fenced code blocks so example links aren't checked."""
    out, keep = [], True
    for line in text.splitlines():
        if FENCE.match(line):
            keep = not keep
            continue
        if keep:
            out.append(line)
    return "\n".join(out)


def md_files(root):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if d not in SKIP_DIRS]
        for name in filenames:
            if name.endswith(".md"):
                yield os.path.join(dirpath, name)


def check(root):
    broken = []
    for path in sorted(md_files(root)):
        text = strip_code_fences(open(path, encoding="utf-8").read())
        targets = INLINE.findall(text) + REFDEF.findall(text)
        for target in targets:
            if re.match(r"^[a-zA-Z][a-zA-Z0-9+.-]*:", target):  # scheme:
                continue
            if target.startswith("#"):  # in-page anchor
                continue
            file_part = target.split("#", 1)[0]
            if not file_part:
                continue
            resolved = os.path.normpath(
                os.path.join(os.path.dirname(path), file_part))
            if not os.path.exists(resolved):
                broken.append((os.path.relpath(path, root), target))
    return broken


def main():
    root = os.path.abspath(sys.argv[1] if len(sys.argv) > 1 else ".")
    broken = check(root)
    for path, target in broken:
        print(f"BROKEN: {path}: ({target})")
    if broken:
        print(f"{len(broken)} broken intra-repo markdown link(s)")
        return 1
    print("all intra-repo markdown links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
