#!/usr/bin/env bash
# Repo lint gate: clang-tidy (AST-level, .clang-tidy profile) + the
# repo-specific rule checker (tools/check_repo_rules.py). The CI `lint`
# job runs this with --require-clang-tidy; locally it degrades gracefully
# when clang-tidy is not installed (the python checker always runs).
#
# Usage: tools/run_lint.sh [--require-clang-tidy] [--build-dir DIR]
#
#   --require-clang-tidy  Fail (exit 3) when clang-tidy is missing instead
#                         of skipping it. CI sets this so a runner-image
#                         change can never silently drop the AST half.
#   --build-dir DIR       Build tree holding compile_commands.json
#                         (default: build). Configure with
#                         cmake -B build -S .   — CMakeLists.txt exports
#                         compile commands unconditionally.
set -u -o pipefail

cd "$(dirname "$0")/.."

REQUIRE_TIDY=0
BUILD_DIR=build
while [[ $# -gt 0 ]]; do
  case "$1" in
    --require-clang-tidy) REQUIRE_TIDY=1; shift ;;
    --build-dir) BUILD_DIR="$2"; shift 2 ;;
    *) echo "run_lint.sh: unknown argument: $1" >&2; exit 2 ;;
  esac
done

FAILED=0

echo "== check_repo_rules.py =="
if ! python3 tools/check_repo_rules.py; then
  FAILED=1
fi

echo "== clang-tidy =="
TIDY_BIN=""
for cand in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16 clang-tidy-15; do
  if command -v "$cand" > /dev/null 2>&1; then
    TIDY_BIN="$cand"
    break
  fi
done

if [[ -z "$TIDY_BIN" ]]; then
  if [[ "$REQUIRE_TIDY" == 1 ]]; then
    echo "run_lint.sh: clang-tidy required but not found" >&2
    exit 3
  fi
  echo "clang-tidy not found; skipping the AST half (install clang-tidy," \
       "or run in CI where --require-clang-tidy enforces it)"
else
  if [[ ! -f "$BUILD_DIR/compile_commands.json" ]]; then
    echo "run_lint.sh: $BUILD_DIR/compile_commands.json missing —" \
         "configure first: cmake -B $BUILD_DIR -S ." >&2
    exit 2
  fi
  # Lint the first-party sources only (the compilation database also
  # lists gtest mains etc. — HeaderFilterRegex in .clang-tidy scopes
  # header diagnostics the same way).
  mapfile -t TIDY_FILES < <(git ls-files 'src/*.cc' 'bench/*.cc')
  echo "linting ${#TIDY_FILES[@]} files with $TIDY_BIN"
  if ! "$TIDY_BIN" -p "$BUILD_DIR" --quiet "${TIDY_FILES[@]}"; then
    FAILED=1
  fi
fi

if [[ "$FAILED" != 0 ]]; then
  echo "run_lint.sh: FAILED" >&2
  exit 1
fi
echo "run_lint.sh: clean"
