#!/usr/bin/env python3
"""Repo-specific concurrency/correctness lint rules (the grep-level half of
tools/run_lint.sh; clang-tidy is the AST-level half).

Rules enforced (each with an error code, listed per finding):

  NAKED_SYNC     src/ must not use std::mutex / std::condition_variable /
                 std::lock_guard / std::unique_lock / std::scoped_lock
                 outside src/util/thread_annotations.h. The annotated
                 naru::Mutex / naru::MutexLock / naru::CondVar wrappers are
                 the only sanctioned primitives — a naked std primitive is
                 invisible to the Clang thread-safety analysis
                 (-DNARU_THREAD_SAFETY=ON), so it would quietly bypass the
                 lock-discipline contract.

  IMPLICIT_ORDER Every std::atomic access in src/ must name its memory
                 order: load/store/fetch_*/exchange/compare_exchange with
                 an explicit std::memory_order argument plus a comment at
                 the declaration justifying the choice (the comment half
                 is reviewed, not machine-checked). Default seq_cst hides
                 the invariant the code actually relies on.

  VOID_CALL      src/serve and src/net must not (void)-discard a call
                 result. Status is [[nodiscard]] (NODISCARD rule below),
                 and a (void)-cast is the one spelling that silences it —
                 on a serving path a swallowed Status is a dropped error.
                 ((void)variable marks an intentionally-unused value and
                 stays legal; only (void)Call(...) is flagged.)

  NODISCARD      util/status.h must declare `class [[nodiscard]] Status`,
                 so ignoring a returned Status is a compiler warning
                 everywhere, not just where this script looks.

  NONDETERMINISM src/ and bench/ must not reach for ambient entropy or
                 wall-clock identity — rand/srand/std::random_device/
                 time(NULL)/localtime — anywhere results or BENCH_*.json
                 rows could inherit it. Benches are replayed against the
                 checked-in trajectory (tools/check_bench_regression.py),
                 which only works while runs are bit-reproducible from
                 NARU_SEED. (steady_clock/system_clock durations for
                 latency measurement are fine and not flagged.)

Exit status: 0 clean, 1 findings, 2 usage error. Findings print as
  <file>:<line>: [<RULE>] <message>
"""

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

CC_EXTS = {".cc", ".h", ".cpp", ".hpp"}

# -- NAKED_SYNC ------------------------------------------------------------
NAKED_SYNC_RE = re.compile(
    r"std::(mutex|recursive_mutex|shared_mutex|timed_mutex|"
    r"condition_variable(_any)?|lock_guard|unique_lock|scoped_lock|"
    r"shared_lock)\b"
)
NAKED_SYNC_ALLOW = {Path("src/util/thread_annotations.h")}

# -- IMPLICIT_ORDER --------------------------------------------------------
# An atomic access spelled without a memory_order argument. Matched
# textually: .load() / .store(x) / ->load() etc. with no
# "memory_order" inside the argument list on the same statement.
ATOMIC_CALL_RE = re.compile(
    r"(?:\.|->)\s*(load|store|exchange|fetch_add|fetch_sub|fetch_and|"
    r"fetch_or|fetch_xor|compare_exchange_weak|compare_exchange_strong)"
    r"\s*\("
)

# -- VOID_CALL -------------------------------------------------------------
# (void)Identifier( — a discarded call. (void)identifier; (a variable) is
# allowed.
VOID_CALL_RE = re.compile(r"\(void\)\s*[A-Za-z_][A-Za-z0-9_:.\->]*\s*\(")

# -- NONDETERMINISM --------------------------------------------------------
NONDET_RE = re.compile(
    r"\b(std::random_device|srand\s*\(|(?<![\w:])rand\s*\(\s*\)|"
    r"time\s*\(\s*(NULL|nullptr|0)\s*\)|localtime\s*\()"
)


def stripped_lines(path: Path):
    """Yields (lineno, code) with line comments, block comments, and string
    literal CONTENTS removed (so commented-out or quoted mentions of a
    primitive never trip a rule)."""
    text = path.read_text(encoding="utf-8", errors="replace")
    out_lines = []
    in_block = False
    for raw in text.splitlines():
        line = []
        i = 0
        n = len(raw)
        in_str = None  # the quote char when inside a literal
        while i < n:
            ch = raw[i]
            nxt = raw[i + 1] if i + 1 < n else ""
            if in_block:
                if ch == "*" and nxt == "/":
                    in_block = False
                    i += 2
                    continue
                i += 1
                continue
            if in_str:
                if ch == "\\":
                    i += 2
                    continue
                if ch == in_str:
                    in_str = None
                    line.append(ch)
                i += 1
                continue
            if ch == "/" and nxt == "/":
                break
            if ch == "/" and nxt == "*":
                in_block = True
                i += 2
                continue
            if ch in "\"'":
                in_str = ch
                line.append(ch)
                i += 1
                continue
            line.append(ch)
            i += 1
        out_lines.append("".join(line))
    return list(enumerate(out_lines, start=1))


def balanced_call_args(lines, start_idx, open_pos):
    """Joins lines from the '(' at (start_idx, open_pos) until its matching
    ')' (bounded lookahead) so multi-line calls are matched whole."""
    depth = 0
    collected = []
    for k in range(start_idx, min(start_idx + 6, len(lines))):
        seg = lines[k][1][open_pos if k == start_idx else 0:]
        for pos, ch in enumerate(seg):
            if ch == "(":
                depth += 1
            elif ch == ")":
                depth -= 1
                if depth == 0:
                    collected.append(seg[: pos + 1])
                    return "".join(collected)
        collected.append(seg)
        open_pos = 0
    return "".join(collected)


def main() -> int:
    findings = []

    def finding(path, lineno, rule, msg):
        findings.append(f"{path.relative_to(REPO)}:{lineno}: [{rule}] {msg}")

    src_files = sorted(p for p in (REPO / "src").rglob("*") if p.suffix in CC_EXTS)
    bench_files = sorted(
        p for p in (REPO / "bench").rglob("*") if p.suffix in CC_EXTS
    )
    serve_net_files = [
        p
        for p in src_files
        if p.relative_to(REPO).parts[:2] in {("src", "serve"), ("src", "net")}
    ]

    # NAKED_SYNC + IMPLICIT_ORDER over src/.
    for path in src_files:
        rel = path.relative_to(REPO)
        lines = stripped_lines(path)
        for lineno, code in lines:
            if rel not in NAKED_SYNC_ALLOW:
                m = NAKED_SYNC_RE.search(code)
                if m:
                    finding(
                        path,
                        lineno,
                        "NAKED_SYNC",
                        f"naked {m.group(0)}; use naru::Mutex/MutexLock/CondVar "
                        "(util/thread_annotations.h) so the thread-safety "
                        "analysis sees it",
                    )
            for m in ATOMIC_CALL_RE.finditer(code):
                args = balanced_call_args(lines, lineno - 1, m.end() - 1)
                if "memory_order" not in args:
                    finding(
                        path,
                        lineno,
                        "IMPLICIT_ORDER",
                        f"atomic {m.group(1)}() without an explicit "
                        "std::memory_order argument",
                    )

    # VOID_CALL over src/serve + src/net.
    for path in serve_net_files:
        for lineno, code in stripped_lines(path):
            m = VOID_CALL_RE.search(code)
            if m:
                finding(
                    path,
                    lineno,
                    "VOID_CALL",
                    f"(void)-discarded call result `{m.group(0)}...`; handle "
                    "or propagate it (Status is [[nodiscard]] on purpose)",
                )

    # NODISCARD on Status.
    status_h = REPO / "src" / "util" / "status.h"
    if not re.search(
        r"class\s+\[\[nodiscard\]\]\s+Status\b", status_h.read_text()
    ):
        finding(
            status_h,
            1,
            "NODISCARD",
            "util/status.h must declare `class [[nodiscard]] Status`",
        )

    # NONDETERMINISM over src/ + bench/.
    for path in src_files + bench_files:
        for lineno, code in stripped_lines(path):
            m = NONDET_RE.search(code)
            if m:
                finding(
                    path,
                    lineno,
                    "NONDETERMINISM",
                    f"ambient entropy/wall-clock identity `{m.group(0).strip()}`; "
                    "derive randomness from NARU_SEED via util Rng so runs "
                    "stay replayable against the checked-in trajectory",
                )

    if findings:
        print(f"check_repo_rules: {len(findings)} finding(s)", file=sys.stderr)
        for f in findings:
            print(f, file=sys.stderr)
        return 1
    print("check_repo_rules: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
