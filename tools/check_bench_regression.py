#!/usr/bin/env python3
"""Gate fresh bench runs against the checked-in perf trajectory.

Compares BENCH_<name>.json files produced by a fresh bench run (see
bench/bench_common.h for the schema) against the canonical baselines under
bench/trajectory/, failing (exit 1) when any gated metric drifts beyond its
noise band. docs/BENCHMARKS.md describes the trajectory workflow, the
bands, and how to refresh baselines.

Row matching
    Rows are joined on their IDENTITY: every string and bool field, plus
    the structural integer fields (threads, batch, m, k, n). A baseline row
    with no fresh counterpart is itself a failure — coverage must not
    silently shrink. Extra fresh rows are reported but never fail.

Metric classes (by field name), each with its own band:
    latency     *_ms                lower is better   --tol-latency
    qerr        qerr*, max_rel_err  lower is better   --tol-qerr
    throughput  qps, gflops,        higher is better  --tol-throughput
                *per_sec, speedup*
    counter     shed*, *_flushes,   symmetric drift   --tol-count
                served, batches,
                largest_batch,
                peak_pending
Anything else numeric is informational and never gated. A band is violated
only when BOTH the ratio exceeds the class tolerance AND the absolute delta
exceeds the class slack (so microsecond jitter on a 0.1 ms metric or a
±3 swing on a tiny counter cannot fail CI). JSON null (a non-finite
measurement) is skipped.

Exit codes: 0 clean, 1 regression (or missing file/row), 2 usage error.
"""

import argparse
import json
import math
import sys
from pathlib import Path

IDENTITY_NUMERIC = {"threads", "batch", "m", "k", "n"}
COUNTER_NAMES = {"served", "shed", "batches", "largest_batch", "peak_pending"}


def classify(name):
    """Metric class of a numeric row field, or None if informational."""
    if name in IDENTITY_NUMERIC:
        return None
    if name.endswith("_ms"):
        return "latency"
    if name.startswith("qerr") or name.endswith("_qerr") or name == "max_rel_err":
        return "qerr"
    if name == "qps" or name == "gflops" or name.endswith("per_sec") or \
            name.startswith("speedup"):
        return "throughput"
    if name.startswith("shed") or name.endswith("_flushes") or \
            name in COUNTER_NAMES:
        return "counter"
    return None


def row_identity(row):
    """Join key: strings, bools, and structural integers, order-insensitive."""
    parts = []
    for key, value in row.items():
        if isinstance(value, bool) or isinstance(value, str):
            parts.append((key, value))
        elif isinstance(value, (int, float)) and key in IDENTITY_NUMERIC:
            parts.append((key, int(value)))
    return tuple(sorted(parts))


def fmt_identity(identity):
    return "/".join(f"{k}={v}" for k, v in identity) or "<only row>"


def is_number(value):
    return isinstance(value, (int, float)) and not isinstance(value, bool)


class Bands:
    def __init__(self, args):
        # (ratio tolerance, absolute slack) per class.
        self.latency = (args.tol_latency, args.slack_ms)
        self.qerr = (args.tol_qerr, args.slack_qerr)
        self.throughput = (args.tol_throughput, 0.0)
        self.counter = (args.tol_count, args.slack_count)

    def check(self, cls, base, fresh):
        """Returns a violation description, or None if inside the band."""
        tol, slack = getattr(self, cls)
        if cls == "throughput":
            # Higher is better: gate the downward direction only.
            if fresh < base / tol and base - fresh > slack:
                return f"dropped {base:.6g} -> {fresh:.6g} (floor {base / tol:.6g})"
            return None
        if cls == "counter":
            # Symmetric: either direction of large drift is suspicious
            # (a vanished shed counter means a policy stopped firing).
            lo, hi = min(base, fresh), max(base, fresh)
            if hi - lo <= slack:
                return None
            if lo <= 0 or hi / lo > tol:
                return f"drifted {base:.6g} -> {fresh:.6g} (band x{tol:g} +/-{slack:g})"
            return None
        # Lower is better: gate the upward direction only.
        if fresh > base * tol and fresh - base > slack:
            return f"rose {base:.6g} -> {fresh:.6g} (ceiling {base * tol:.6g})"
        return None


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        return None, f"{path}: unreadable ({err})"
    if not isinstance(doc.get("rows"), list):
        return None, f"{path}: no rows[] array"
    return doc, None


def compare(name, base_doc, fresh_doc, bands, out):
    """Appends violation strings to `out`; returns (gated, skipped) counts."""
    fresh_rows = {}
    for row in fresh_doc["rows"]:
        fresh_rows.setdefault(row_identity(row), row)
    gated = 0
    seen = set()
    for base_row in base_doc["rows"]:
        identity = row_identity(base_row)
        seen.add(identity)
        fresh_row = fresh_rows.get(identity)
        if fresh_row is None:
            out.append(f"{name} [{fmt_identity(identity)}]: row missing from "
                       "fresh run (coverage shrank)")
            continue
        for key, base_val in base_row.items():
            cls = classify(key)
            if cls is None or not is_number(base_val):
                continue
            fresh_val = fresh_row.get(key)
            if not is_number(fresh_val):
                continue  # null / absent: measurement was non-finite
            if not (math.isfinite(base_val) and math.isfinite(fresh_val)):
                continue
            gated += 1
            violation = bands.check(cls, float(base_val), float(fresh_val))
            if violation is not None:
                out.append(
                    f"{name} [{fmt_identity(identity)}] {key}: {violation}")
    extra = [i for i in fresh_rows if i not in seen]
    for identity in extra:
        print(f"note: {name} [{fmt_identity(identity)}]: new row not in "
              "baseline (refresh the trajectory to start gating it)")
    return gated


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--baseline-dir", required=True,
                        help="directory of canonical BENCH_*.json baselines")
    parser.add_argument("--fresh-dir", required=True,
                        help="directory holding the fresh run's BENCH_*.json")
    parser.add_argument("--bench", action="append", default=None,
                        help="gate only BENCH_<name>.json (repeatable; "
                             "default: every baseline present)")
    parser.add_argument("--tol-latency", type=float, default=1.75,
                        help="latency ratio ceiling (default 1.75x)")
    parser.add_argument("--slack-ms", type=float, default=1.0,
                        help="latency absolute slack, ms (default 1.0)")
    parser.add_argument("--tol-qerr", type=float, default=1.25,
                        help="q-error ratio ceiling (default 1.25x)")
    parser.add_argument("--slack-qerr", type=float, default=0.05,
                        help="q-error absolute slack (default 0.05)")
    parser.add_argument("--tol-throughput", type=float, default=1.75,
                        help="throughput ratio floor divisor (default 1.75x)")
    parser.add_argument("--tol-count", type=float, default=4.0,
                        help="counter drift ratio band (default 4x)")
    parser.add_argument("--slack-count", type=float, default=8.0,
                        help="counter absolute slack (default 8)")
    args = parser.parse_args()

    baseline_dir = Path(args.baseline_dir)
    fresh_dir = Path(args.fresh_dir)
    if not baseline_dir.is_dir():
        print(f"error: baseline dir {baseline_dir} does not exist")
        return 2

    if args.bench:
        paths = [baseline_dir / f"BENCH_{b}.json" for b in args.bench]
        missing = [p for p in paths if not p.is_file()]
        if missing:
            print(f"error: no baseline for {', '.join(map(str, missing))}")
            return 2
    else:
        paths = sorted(baseline_dir.glob("BENCH_*.json"))
        if not paths:
            print(f"error: no BENCH_*.json baselines under {baseline_dir}")
            return 2

    bands = Bands(args)
    violations = []
    total_gated = 0
    for base_path in paths:
        name = base_path.stem
        base_doc, err = load(base_path)
        if err:
            violations.append(err)
            continue
        fresh_path = fresh_dir / base_path.name
        if not fresh_path.is_file():
            violations.append(
                f"{name}: fresh run produced no {fresh_path.name}")
            continue
        fresh_doc, err = load(fresh_path)
        if err:
            violations.append(err)
            continue
        total_gated += compare(name, base_doc, fresh_doc, bands, violations)

    if violations:
        print(f"PERF REGRESSION: {len(violations)} violation(s) against "
              f"{baseline_dir}:")
        for v in violations:
            print(f"  {v}")
        return 1
    print(f"perf trajectory clean: {total_gated} gated metrics across "
          f"{len(paths)} bench(es) within noise bands")
    return 0


if __name__ == "__main__":
    sys.exit(main())
