#include "query/metrics.h"

#include <algorithm>

#include "util/string_util.h"

namespace naru {

double QError(double estimated_cardinality, double actual_cardinality) {
  const double est = std::max(estimated_cardinality, 1.0);
  const double actual = std::max(actual_cardinality, 1.0);
  return std::max(est, actual) / std::min(est, actual);
}

SelectivityBucket BucketForSelectivity(double selectivity) {
  if (selectivity > 0.02) return SelectivityBucket::kHigh;
  if (selectivity > 0.005) return SelectivityBucket::kMedium;
  return SelectivityBucket::kLow;
}

const char* BucketName(SelectivityBucket b) {
  switch (b) {
    case SelectivityBucket::kHigh:
      return "High(>2%)";
    case SelectivityBucket::kMedium:
      return "Med(.5-2%)";
    case SelectivityBucket::kLow:
      return "Low(<=.5%)";
  }
  return "?";
}

void ErrorReport::Add(double estimated_card, double actual_card,
                      double true_sel) {
  const double err = QError(estimated_card, actual_card);
  buckets_[static_cast<int>(BucketForSelectivity(true_sel))].Add(err);
  overall_.Add(err);
}

ErrorQuantiles ErrorReport::Bucket(SelectivityBucket b) const {
  return ComputeErrorQuantiles(buckets_[static_cast<int>(b)]);
}

ErrorQuantiles ErrorReport::Overall() const {
  return ComputeErrorQuantiles(overall_);
}

std::string ErrorReport::FormatRow() const {
  std::string row = StrFormat("%-14s", name_.c_str());
  for (int b = 0; b < 3; ++b) {
    const auto q = ComputeErrorQuantiles(buckets_[b]);
    row += StrFormat(" | %8s %8s %8s %8s",
                     FormatPaperNumber(q.median).c_str(),
                     FormatPaperNumber(q.p95).c_str(),
                     FormatPaperNumber(q.p99).c_str(),
                     FormatPaperNumber(q.max).c_str());
  }
  return row;
}

std::string ErrorReport::FormatHeader() {
  std::string h = StrFormat("%-14s", "Estimator");
  for (int b = 0; b < 3; ++b) {
    h += StrFormat(" | %-8s %-8s %-8s %-8s",
                   BucketName(static_cast<SelectivityBucket>(b)), "95th",
                   "99th", "Max");
  }
  h += "\n";
  h += StrFormat("%-14s", "");
  for (int b = 0; b < 3; ++b) {
    h += StrFormat(" | %-8s %-8s %-8s %-8s", "Median", "", "", "");
  }
  return h;
}

}  // namespace naru
