// Per-column query regions over dictionary codes.
//
// A ValueSet is the set R_i ⊆ [0, D_i) that a conjunction of predicates on
// column i allows (§5): kAll for wildcards, a contiguous [lo, hi] interval
// for =, <, <=, >, >= and BETWEEN, or an explicit sorted code set for IN /
// != and for intersections that fragment. This is the object progressive
// sampling masks model distributions with.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/macros.h"

namespace naru {

class ValueSet {
 public:
  enum class Kind { kAll, kInterval, kSet };

  /// Wildcard over a domain of size `domain`.
  static ValueSet All(size_t domain);
  /// Closed interval [lo, hi]; an empty interval (hi < lo) is allowed and
  /// denotes the empty set.
  static ValueSet Interval(size_t domain, int64_t lo, int64_t hi);
  /// Explicit set; `codes` need not be sorted or deduped.
  static ValueSet Set(size_t domain, std::vector<int32_t> codes);
  /// The empty set.
  static ValueSet Empty(size_t domain);

  Kind kind() const { return kind_; }
  size_t domain() const { return domain_; }

  bool IsAll() const { return kind_ == Kind::kAll; }
  bool IsEmpty() const { return Count() == 0; }

  /// Number of codes in the set.
  size_t Count() const;

  /// Membership test.
  bool Contains(int32_t code) const;

  /// The k-th smallest code in the set (k < Count()); used for uniform
  /// sampling from query regions.
  int32_t NthCode(size_t k) const;

  /// Intersection with another set over the same domain.
  ValueSet Intersect(const ValueSet& other) const;

  /// Zeroes probs[c] for every code c outside this set; returns the
  /// remaining (pre-normalization) mass. `probs` has `domain()` entries.
  double MaskProbs(float* probs) const;

  /// Interval bounds (only for kInterval).
  int64_t lo() const { return lo_; }
  int64_t hi() const { return hi_; }
  /// Sorted unique codes (only for kSet).
  const std::vector<int32_t>& codes() const { return codes_; }

  std::string ToString() const;

 private:
  Kind kind_ = Kind::kAll;
  size_t domain_ = 0;
  int64_t lo_ = 0;
  int64_t hi_ = -1;
  std::vector<int32_t> codes_;
};

}  // namespace naru
