// Query representation: conjunctions of single-column predicates (§2.2).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/table.h"
#include "query/value_set.h"

namespace naru {

/// Comparison operators supported by the estimator (§2.2: the usual
/// operators; IN and BETWEEN are ranges in the formulation).
enum class CompareOp { kEq, kNeq, kLt, kLe, kGt, kGe, kIn, kBetween };

const char* CompareOpToString(CompareOp op);

/// One predicate `column <op> literal` (literals as dictionary codes).
struct Predicate {
  size_t column = 0;
  CompareOp op = CompareOp::kEq;
  int64_t literal = 0;        // code; primary literal (lo for BETWEEN)
  int64_t literal2 = 0;       // hi for BETWEEN
  std::vector<int32_t> in_list;  // codes for IN

  /// The region of the column's domain this predicate allows.
  ValueSet ToValueSet(size_t domain) const;
};

/// A conjunctive query over one table: per-column allowed regions.
/// Unfiltered columns hold wildcard (kAll) sets.
class Query {
 public:
  /// Builds the per-column region vector from a conjunction of predicates.
  /// Multiple predicates on one column intersect.
  Query(const Table& table, std::vector<Predicate> predicates);

  /// Builds directly from per-column regions (used by compound-query
  /// algebra; `predicates` is display-only metadata).
  explicit Query(std::vector<ValueSet> regions,
                 std::vector<Predicate> predicates = {});

  const std::vector<Predicate>& predicates() const { return predicates_; }
  const std::vector<ValueSet>& regions() const { return regions_; }
  const ValueSet& region(size_t col) const { return regions_[col]; }
  size_t num_columns() const { return regions_.size(); }

  /// Per-column wildcard bitmap (1 = the region is the full domain),
  /// materialized once at construction. The sampling-plan compiler
  /// (src/plan) and the sampler's wildcard checks consume this instead of
  /// re-deriving it from the ValueSets on every shard walk.
  const std::vector<uint8_t>& wildcard_mask() const { return wildcard_; }

  /// Number of columns with a non-wildcard region.
  size_t NumFilteredColumns() const;

  /// Index of the last non-wildcard column, or -1 if none (enables the
  /// trailing-wildcard early exit in the sampler).
  int LastFilteredColumn() const;

  /// Length of the leading run of wildcard columns in TABLE order (the
  /// serving benches report this to show how much shareable prefix a
  /// workload carries). Note the plan compiler derives its runs in
  /// MODEL-position order through ConditionalModel::PositionIsWildcard
  /// (permuted/factorized models reorder or subdivide columns); for
  /// identity-order models the two coincide.
  size_t LeadingWildcardRun() const;

  /// log10 of the number of points in the query region R_1 x ... x R_n
  /// (Table 6's "query region size"); wildcards count their full domain.
  double Log10RegionSize() const;

  /// True when some column's region is empty (selectivity is exactly 0).
  bool HasEmptyRegion() const;

  std::string ToString(const Table& table) const;

 private:
  void BuildWildcardMask();

  std::vector<Predicate> predicates_;
  std::vector<ValueSet> regions_;
  std::vector<uint8_t> wildcard_;  // 1 per column whose region IsAll()
};

}  // namespace naru
