// Ground-truth query execution by (parallel) full scan.
//
// Supplies the "actual" cardinalities against which every estimator's
// q-error is computed (the paper obtains these from Postgres; here the
// scan executor plays that role).
#pragma once

#include <cstdint>
#include <vector>

#include "data/table.h"
#include "query/query.h"

namespace naru {

/// Exact number of rows of `table` satisfying `query`.
int64_t ExecuteCount(const Table& table, const Query& query);

/// Exact selectivity in [0, 1].
double ExecuteSelectivity(const Table& table, const Query& query);

/// Batch variant, parallelized across queries.
std::vector<int64_t> ExecuteCounts(const Table& table,
                                   const std::vector<Query>& queries);

/// Batch selectivities — the ground-truth mirror of
/// Estimator::EstimateBatch (all zero for an empty table).
std::vector<double> ExecuteSelectivities(const Table& table,
                                         const std::vector<Query>& queries);

/// Bitmap of qualifying rows among rows [0, limit) -- used by the MSCN
/// baseline's materialized-sample featurization.
std::vector<uint8_t> ExecuteBitmap(const Table& table, const Query& query,
                                   size_t limit);

}  // namespace naru
