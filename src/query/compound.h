// Compound (disjunctive) query estimation via inclusion–exclusion (§2.2).
//
// Estimators answer conjunctions; "arbitrary conjunctions or disjunctions
// ... are supported via the inclusion-exclusion principle". This module
// evaluates a disjunction of conjunctive queries against any Estimator:
//   sel(q1 ∨ q2 ∨ ...) = Σ sel(qi) − Σ sel(qi ∧ qj) + ...
// Conjunctions of Query objects intersect their per-column regions, so
// each inclusion–exclusion term is itself one estimator call. The number
// of terms is 2^k − 1; keep k small (the API checks k <= 20).
#pragma once

#include <vector>

#include "estimator/estimator.h"
#include "query/query.h"

namespace naru {

/// Conjunction of two conjunctive queries over the same table: per-column
/// region intersection.
Query ConjoinQueries(const Query& a, const Query& b);

/// Selectivity of the disjunction of `disjuncts` under `estimator`,
/// computed by inclusion-exclusion. Result clamped to [0, 1].
double EstimateDisjunction(Estimator* estimator,
                           const std::vector<Query>& disjuncts);

/// Exact disjunction selectivity by scanning (ground truth for tests).
double ExecuteDisjunctionSelectivity(const Table& table,
                                     const std::vector<Query>& disjuncts);

}  // namespace naru
