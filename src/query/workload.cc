#include "query/workload.h"

#include <algorithm>
#include <cmath>

namespace naru {

std::vector<Query> GenerateWorkload(const Table& table,
                                    const WorkloadConfig& config) {
  NARU_CHECK(table.num_rows() > 0);
  NARU_CHECK(config.min_filters >= 1);
  const size_t num_cols = table.num_columns();
  const size_t max_filters = std::min(config.max_filters, num_cols);
  const size_t min_filters = std::min(config.min_filters, max_filters);

  Rng rng(config.seed);
  std::vector<Query> out;
  out.reserve(config.num_queries);

  // Anchor tuples for constrained-prefix shaping, pre-drawn so every shaped
  // query picks literals from the same small template pool (gated on the
  // knob: unshaped configs consume exactly the RNG stream they always did).
  const bool shape_shared_prefix = config.shared_prefix_columns > 0 &&
                                   config.shared_prefix_fraction > 0.0 &&
                                   config.shared_prefix_templates > 0;
  std::vector<size_t> template_rows;
  if (shape_shared_prefix) {
    template_rows.resize(config.shared_prefix_templates);
    for (size_t& r : template_rows) r = rng.UniformInt(table.num_rows());
  }

  std::vector<size_t> col_order(num_cols);
  for (size_t i = 0; i < num_cols; ++i) col_order[i] = i;

  for (size_t q = 0; q < config.num_queries; ++q) {
    size_t f = static_cast<size_t>(
        rng.UniformRange(static_cast<int64_t>(min_filters),
                         static_cast<int64_t>(max_filters)));
    // Choose f distinct columns via partial shuffle.
    rng.Shuffle(&col_order);

    // Constrained-prefix shaping: equality predicates on the leading
    // columns, literals from a shared anchor tuple. The f drawn filters
    // then avoid those columns, so the prefix predicates are exactly the
    // template's.
    size_t prefix_cols = 0;
    size_t template_row = 0;
    if (shape_shared_prefix &&
        rng.UniformDouble() < config.shared_prefix_fraction) {
      prefix_cols = std::min(config.shared_prefix_columns, num_cols);
      template_row = template_rows[rng.UniformInt(template_rows.size())];
      std::stable_partition(col_order.begin(), col_order.end(),
                            [&](size_t c) { return c >= prefix_cols; });
      f = std::min(f, num_cols - prefix_cols);
    } else if (config.leading_wildcards > 0 &&
               config.leading_wildcard_fraction > 0.0 &&
               rng.UniformDouble() < config.leading_wildcard_fraction) {
      // Leading-wildcard shaping: push the first `leading_wildcards`
      // columns out of filter range so this query keeps an unconstrained
      // leading run.
      std::stable_partition(
          col_order.begin(), col_order.end(),
          [&](size_t c) { return c >= config.leading_wildcards; });
      const size_t eligible =
          num_cols - std::min(config.leading_wildcards, num_cols);
      if (eligible > 0) f = std::max<size_t>(std::min(f, eligible), 1);
    }

    // Literals follow the data distribution: take them from one random
    // tuple (in-distribution) or uniformly from each domain (OOD).
    const size_t tuple_row = rng.UniformInt(table.num_rows());

    std::vector<Predicate> preds;
    preds.reserve(prefix_cols + f);
    for (size_t c = 0; c < prefix_cols; ++c) {
      Predicate p;
      p.column = c;
      p.op = CompareOp::kEq;
      p.literal = table.column(c).code(template_row);
      preds.push_back(p);
    }
    for (size_t k = 0; k < f; ++k) {
      const size_t col = col_order[k];
      const size_t domain = table.column(col).DomainSize();
      Predicate p;
      p.column = col;
      if (config.out_of_distribution) {
        p.literal = static_cast<int64_t>(rng.UniformInt(domain));
      } else {
        p.literal = table.column(col).code(tuple_row);
      }
      if (domain >= config.range_domain_threshold) {
        if (config.in_probability > 0 &&
            rng.UniformDouble() < config.in_probability) {
          // IN-list whose members follow the data distribution: literals
          // from several random tuples (plus the anchor tuple's value).
          p.op = CompareOp::kIn;
          const size_t len =
              1 + rng.UniformInt(std::max<size_t>(config.max_in_list, 1));
          p.in_list.push_back(static_cast<int32_t>(p.literal));
          for (size_t j = 1; j < len; ++j) {
            const size_t row = config.out_of_distribution
                                   ? 0
                                   : rng.UniformInt(table.num_rows());
            p.in_list.push_back(
                config.out_of_distribution
                    ? static_cast<int32_t>(rng.UniformInt(domain))
                    : table.column(col).code(row));
          }
        } else {
          switch (rng.UniformInt(3)) {
            case 0:
              p.op = CompareOp::kEq;
              break;
            case 1:
              p.op = CompareOp::kLe;
              break;
            default:
              p.op = CompareOp::kGe;
              break;
          }
        }
      } else {
        p.op = CompareOp::kEq;
      }
      preds.push_back(p);
    }
    out.emplace_back(table, std::move(preds));
  }
  return out;
}

std::vector<OpenLoopRequest> GenerateOpenLoopTrace(size_t num_requests,
                                                   double qps,
                                                   size_t pool_size,
                                                   uint64_t seed) {
  NARU_CHECK(pool_size > 0);
  Rng rng(seed);
  std::vector<OpenLoopRequest> trace;
  trace.reserve(num_requests);
  double clock_ms = 0.0;
  const double mean_gap_ms = qps > 0 ? 1000.0 / qps : 0.0;
  for (size_t i = 0; i < num_requests; ++i) {
    if (mean_gap_ms > 0) {
      // Exponential inter-arrival via inverse CDF; 1 - U avoids log(0).
      clock_ms += -std::log(1.0 - rng.UniformDouble()) * mean_gap_ms;
    }
    trace.push_back(OpenLoopRequest{clock_ms, rng.UniformInt(pool_size)});
  }
  return trace;
}

}  // namespace naru
