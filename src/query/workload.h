// The paper's random multidimensional workload generator (§6.1.3).
//
// Each query draws f ∈ [min_filters, max_filters] distinct columns; columns
// with domain >= `range_domain_threshold` get an operator uniform from
// {=, <=, >=}, small-domain columns get equality. Literals come from a
// random data tuple (in-distribution) or uniformly from the whole domain
// (the §6.3 out-of-distribution mode).
#pragma once

#include <cstdint>
#include <vector>

#include "data/table.h"
#include "query/query.h"
#include "util/random.h"

namespace naru {

struct WorkloadConfig {
  size_t num_queries = 2000;
  size_t min_filters = 5;
  size_t max_filters = 11;
  /// Domains >= this get range operators; below it, equality only (the
  /// paper avoids range predicates on low-domain categoricals).
  size_t range_domain_threshold = 10;
  /// Literals drawn uniformly from the joint domain instead of from data.
  bool out_of_distribution = false;
  /// Probability that a range-eligible column receives an IN-list predicate
  /// instead of {=, <=, >=} (§2.2 treats IN as a range; 0 disables).
  double in_probability = 0.0;
  /// Maximum IN-list length (literals drawn from distinct data tuples).
  size_t max_in_list = 5;
  /// Leading-wildcard shaping for serving/plan workloads: with probability
  /// `leading_wildcard_fraction`, a query's filters avoid the first
  /// `leading_wildcards` columns, giving it a leading run of unconstrained
  /// columns — the query-independent walk prefix that sampling plans
  /// (src/plan) share across the queries of a batch. 0 (the default)
  /// leaves generation untouched (existing seeds keep their workloads).
  size_t leading_wildcards = 0;
  double leading_wildcard_fraction = 0.0;
  /// Constrained-prefix shaping: with probability `shared_prefix_fraction`,
  /// a query's first `shared_prefix_columns` columns receive equality
  /// predicates whose literals come from one of `shared_prefix_templates`
  /// pre-drawn anchor tuples. Queries shaped from the same template carry
  /// identical leading (column, literal) pairs — the constrained prefixes
  /// that hierarchical plan trees (src/plan) share, walk and likelihood
  /// terms both. 0 columns or fraction 0 (the defaults) leave generation
  /// untouched; all new draws are gated on the knob, so existing seeds
  /// keep their workloads. A query shaped here skips leading-wildcard
  /// shaping (the two prefix styles are mutually exclusive per query).
  size_t shared_prefix_columns = 0;
  size_t shared_prefix_templates = 4;
  double shared_prefix_fraction = 0.0;
  uint64_t seed = 42;
};

/// Generates `config.num_queries` conjunctive queries against `table`.
std::vector<Query> GenerateWorkload(const Table& table,
                                    const WorkloadConfig& config);

/// One request of an open-loop serving trace: WHEN it arrives (milliseconds
/// since trace start) and WHICH template from a query pool it asks for.
/// Open-loop means arrivals are scheduled by a clock, not gated on earlier
/// completions — the load a server actually faces.
struct OpenLoopRequest {
  double arrival_ms = 0;
  size_t pool_index = 0;
};

/// Generates a Poisson arrival process at `qps` requests/second over a pool
/// of `pool_size` query templates (drawn uniformly). `qps <= 0` schedules
/// every arrival at t = 0 — maximum instantaneous pressure. Deterministic
/// in `seed`; arrivals are returned in nondecreasing time order.
std::vector<OpenLoopRequest> GenerateOpenLoopTrace(size_t num_requests,
                                                   double qps,
                                                   size_t pool_size,
                                                   uint64_t seed);

}  // namespace naru
