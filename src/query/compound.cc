#include "query/compound.h"

#include <algorithm>

namespace naru {

Query ConjoinQueries(const Query& a, const Query& b) {
  NARU_CHECK(a.num_columns() == b.num_columns());
  std::vector<ValueSet> regions;
  regions.reserve(a.num_columns());
  for (size_t c = 0; c < a.num_columns(); ++c) {
    regions.push_back(a.region(c).Intersect(b.region(c)));
  }
  std::vector<Predicate> preds = a.predicates();
  preds.insert(preds.end(), b.predicates().begin(), b.predicates().end());
  return Query(std::move(regions), std::move(preds));
}

double EstimateDisjunction(Estimator* estimator,
                           const std::vector<Query>& disjuncts) {
  NARU_CHECK(!disjuncts.empty());
  NARU_CHECK_MSG(disjuncts.size() <= 20,
                 "inclusion-exclusion over %zu disjuncts is intractable",
                 disjuncts.size());
  const size_t k = disjuncts.size();
  double total = 0;
  // Iterate all non-empty subsets; sign = (-1)^(|S|+1).
  for (uint32_t mask = 1; mask < (1u << k); ++mask) {
    Query term = disjuncts[static_cast<size_t>(
        __builtin_ctz(mask))];
    int bits = 1;
    for (size_t i = static_cast<size_t>(__builtin_ctz(mask)) + 1; i < k;
         ++i) {
      if (mask & (1u << i)) {
        term = ConjoinQueries(term, disjuncts[i]);
        ++bits;
      }
    }
    const double sel =
        term.HasEmptyRegion() ? 0.0 : estimator->EstimateSelectivity(term);
    total += (bits % 2 == 1) ? sel : -sel;
  }
  return std::clamp(total, 0.0, 1.0);
}

double ExecuteDisjunctionSelectivity(const Table& table,
                                     const std::vector<Query>& disjuncts) {
  NARU_CHECK(!disjuncts.empty());
  size_t hits = 0;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    bool any = false;
    for (const auto& q : disjuncts) {
      bool match = true;
      for (size_t c = 0; c < table.num_columns() && match; ++c) {
        const ValueSet& region = q.region(c);
        if (!region.IsAll() && !region.Contains(table.column(c).code(r))) {
          match = false;
        }
      }
      if (match) {
        any = true;
        break;
      }
    }
    if (any) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(table.num_rows());
}

}  // namespace naru
