#include "query/value_set.h"

#include <algorithm>

#include "util/string_util.h"

namespace naru {

ValueSet ValueSet::All(size_t domain) {
  ValueSet s;
  s.kind_ = Kind::kAll;
  s.domain_ = domain;
  return s;
}

ValueSet ValueSet::Interval(size_t domain, int64_t lo, int64_t hi) {
  ValueSet s;
  s.domain_ = domain;
  lo = std::max<int64_t>(lo, 0);
  hi = std::min<int64_t>(hi, static_cast<int64_t>(domain) - 1);
  if (lo == 0 && hi == static_cast<int64_t>(domain) - 1) {
    s.kind_ = Kind::kAll;
    return s;
  }
  s.kind_ = Kind::kInterval;
  s.lo_ = lo;
  s.hi_ = hi;
  return s;
}

ValueSet ValueSet::Set(size_t domain, std::vector<int32_t> codes) {
  std::sort(codes.begin(), codes.end());
  codes.erase(std::unique(codes.begin(), codes.end()), codes.end());
  // Clip out-of-domain codes.
  while (!codes.empty() && codes.back() >= static_cast<int64_t>(domain)) {
    codes.pop_back();
  }
  while (!codes.empty() && codes.front() < 0) {
    codes.erase(codes.begin());
  }
  if (codes.size() == domain) return All(domain);
  ValueSet s;
  s.kind_ = Kind::kSet;
  s.domain_ = domain;
  s.codes_ = std::move(codes);
  return s;
}

ValueSet ValueSet::Empty(size_t domain) {
  return Interval(domain, 0, -1);
}

size_t ValueSet::Count() const {
  switch (kind_) {
    case Kind::kAll:
      return domain_;
    case Kind::kInterval:
      return hi_ >= lo_ ? static_cast<size_t>(hi_ - lo_ + 1) : 0;
    case Kind::kSet:
      return codes_.size();
  }
  return 0;
}

bool ValueSet::Contains(int32_t code) const {
  switch (kind_) {
    case Kind::kAll:
      return code >= 0 && static_cast<size_t>(code) < domain_;
    case Kind::kInterval:
      return code >= lo_ && code <= hi_;
    case Kind::kSet:
      return std::binary_search(codes_.begin(), codes_.end(), code);
  }
  return false;
}

int32_t ValueSet::NthCode(size_t k) const {
  NARU_DCHECK(k < Count());
  switch (kind_) {
    case Kind::kAll:
      return static_cast<int32_t>(k);
    case Kind::kInterval:
      return static_cast<int32_t>(lo_ + static_cast<int64_t>(k));
    case Kind::kSet:
      return codes_[k];
  }
  return 0;
}

ValueSet ValueSet::Intersect(const ValueSet& other) const {
  NARU_CHECK(domain_ == other.domain_);
  if (IsAll()) return other;
  if (other.IsAll()) return *this;
  if (kind_ == Kind::kInterval && other.kind_ == Kind::kInterval) {
    return Interval(domain_, std::max(lo_, other.lo_),
                    std::min(hi_, other.hi_));
  }
  // At least one side is a set: filter its codes through the other side.
  const ValueSet& set_side = kind_ == Kind::kSet ? *this : other;
  const ValueSet& filter = kind_ == Kind::kSet ? other : *this;
  std::vector<int32_t> out;
  for (int32_t c : set_side.codes_) {
    if (filter.Contains(c)) out.push_back(c);
  }
  return Set(domain_, std::move(out));
}

double ValueSet::MaskProbs(float* probs) const {
  double mass = 0;
  switch (kind_) {
    case Kind::kAll: {
      for (size_t i = 0; i < domain_; ++i) mass += probs[i];
      return mass;
    }
    case Kind::kInterval: {
      const size_t lo = hi_ >= lo_ ? static_cast<size_t>(lo_) : domain_;
      const size_t hi =
          hi_ >= lo_ ? static_cast<size_t>(hi_) : 0;  // inclusive
      for (size_t i = 0; i < domain_; ++i) {
        if (i < lo || i > hi) {
          probs[i] = 0.0f;
        } else {
          mass += probs[i];
        }
      }
      return mass;
    }
    case Kind::kSet: {
      size_t k = 0;
      for (size_t i = 0; i < domain_; ++i) {
        if (k < codes_.size() && static_cast<int32_t>(i) == codes_[k]) {
          mass += probs[i];
          ++k;
        } else {
          probs[i] = 0.0f;
        }
      }
      return mass;
    }
  }
  return mass;
}

std::string ValueSet::ToString() const {
  switch (kind_) {
    case Kind::kAll:
      return "*";
    case Kind::kInterval:
      if (Count() == 0) return "{}";
      return StrFormat("[%lld, %lld]", static_cast<long long>(lo_),
                       static_cast<long long>(hi_));
    case Kind::kSet:
      return StrFormat("{%zu codes}", codes_.size());
  }
  return "?";
}

}  // namespace naru
