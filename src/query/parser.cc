#include "query/parser.h"

#include <cctype>
#include <cstdlib>
#include <string>

#include "util/string_util.h"

namespace naru {

namespace {

enum class TokKind { kIdent, kNumber, kString, kOp, kLParen, kRParen, kComma, kEnd };

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;  // identifier/literal text or operator symbol
  size_t pos = 0;    // byte offset (for error messages)
};

class Lexer {
 public:
  explicit Lexer(std::string_view s) : s_(s) {}

  Result<Token> Next() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
    Token t;
    t.pos = pos_;
    if (pos_ >= s_.size()) return t;  // kEnd

    const char c = s_[pos_];
    if (c == '(') {
      ++pos_;
      t.kind = TokKind::kLParen;
      return t;
    }
    if (c == ')') {
      ++pos_;
      t.kind = TokKind::kRParen;
      return t;
    }
    if (c == ',') {
      ++pos_;
      t.kind = TokKind::kComma;
      return t;
    }
    if (c == '\'' || c == '"') {
      const char quote = c;
      ++pos_;
      std::string out;
      while (pos_ < s_.size() && s_[pos_] != quote) out += s_[pos_++];
      if (pos_ >= s_.size()) {
        return Status::InvalidArgument(
            StrFormat("unterminated string literal at offset %zu", t.pos));
      }
      ++pos_;  // closing quote
      t.kind = TokKind::kString;
      t.text = std::move(out);
      return t;
    }
    if (c == '=' || c == '<' || c == '>' || c == '!') {
      std::string op(1, c);
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '=' || (c == '<' && s_[pos_] == '>'))) {
        op += s_[pos_++];
      }
      if (op == "!") {
        return Status::InvalidArgument(
            StrFormat("stray '!' at offset %zu (did you mean !=?)", t.pos));
      }
      t.kind = TokKind::kOp;
      t.text = std::move(op);
      return t;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '-' || c == '+' ||
        c == '.') {
      std::string num;
      while (pos_ < s_.size() &&
             (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
              s_[pos_] == '.' || s_[pos_] == '-' || s_[pos_] == '+' ||
              s_[pos_] == 'e' || s_[pos_] == 'E')) {
        num += s_[pos_++];
      }
      t.kind = TokKind::kNumber;
      t.text = std::move(num);
      return t;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string id;
      while (pos_ < s_.size() &&
             (std::isalnum(static_cast<unsigned char>(s_[pos_])) ||
              s_[pos_] == '_' || s_[pos_] == '.')) {
        id += s_[pos_++];
      }
      t.kind = TokKind::kIdent;
      t.text = std::move(id);
      return t;
    }
    return Status::InvalidArgument(
        StrFormat("unexpected character '%c' at offset %zu", c, t.pos));
  }

 private:
  std::string_view s_;
  size_t pos_ = 0;
};

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool IsKeyword(const Token& t, const char* kw) {
  return t.kind == TokKind::kIdent && ToUpper(t.text) == kw;
}

/// Interprets a literal token in the column's value type.
Result<Value> LiteralValue(const Dictionary& dict, const Token& tok) {
  if (tok.kind != TokKind::kNumber && tok.kind != TokKind::kString &&
      tok.kind != TokKind::kIdent) {
    return Status::InvalidArgument(
        StrFormat("expected a literal at offset %zu", tok.pos));
  }
  switch (dict.value_type()) {
    case ValueType::kInt: {
      char* end = nullptr;
      const long long v = std::strtoll(tok.text.c_str(), &end, 10);
      if (end == tok.text.c_str() || *end != '\0') {
        return Status::InvalidArgument(
            StrFormat("'%s' is not an integer (offset %zu)",
                      tok.text.c_str(), tok.pos));
      }
      return Value(static_cast<int64_t>(v));
    }
    case ValueType::kDouble: {
      char* end = nullptr;
      const double v = std::strtod(tok.text.c_str(), &end);
      if (end == tok.text.c_str() || *end != '\0') {
        return Status::InvalidArgument(
            StrFormat("'%s' is not a number (offset %zu)", tok.text.c_str(),
                      tok.pos));
      }
      return Value(v);
    }
    case ValueType::kString:
      return Value(tok.text);
  }
  return Status::InvalidArgument("unknown column value type");
}

/// The code of the largest dictionary entry <= v, or -1 when none is.
int32_t UpperBoundCode(const Dictionary& dict, const Value& v) {
  const auto exact = dict.CodeFor(v);
  if (exact.ok()) return exact.ValueOrDie();
  return dict.LowerBoundCode(v) - 1;
}

/// Encodes `column op literal` into an exact code-space predicate, mapping
/// absent range literals through the ordered domain.
Result<Predicate> EncodeComparison(size_t column, const Dictionary& dict,
                                   const std::string& op, const Value& v) {
  Predicate p;
  p.column = column;
  const auto exact = dict.CodeFor(v);
  if (op == "=") {
    if (exact.ok()) {
      p.op = CompareOp::kEq;
      p.literal = exact.ValueOrDie();
    } else {
      p.op = CompareOp::kIn;  // empty IN list: matches nothing (sel 0)
      p.in_list.clear();
    }
    return p;
  }
  if (op == "!=" || op == "<>") {
    if (exact.ok()) {
      p.op = CompareOp::kNeq;
      p.literal = exact.ValueOrDie();
    } else {
      p.op = CompareOp::kNeq;
      p.literal = -1;  // != nothing: matches everything
    }
    return p;
  }
  if (op == "<=") {
    p.op = CompareOp::kLe;
    p.literal = exact.ok() ? exact.ValueOrDie() : UpperBoundCode(dict, v);
    return p;
  }
  if (op == "<") {
    p.op = exact.ok() ? CompareOp::kLt : CompareOp::kLe;
    p.literal = exact.ok() ? exact.ValueOrDie() : UpperBoundCode(dict, v);
    return p;
  }
  if (op == ">=") {
    p.op = CompareOp::kGe;
    p.literal = exact.ok() ? exact.ValueOrDie() : dict.LowerBoundCode(v);
    return p;
  }
  if (op == ">") {
    p.op = exact.ok() ? CompareOp::kGt : CompareOp::kGe;
    p.literal = exact.ok() ? exact.ValueOrDie() : dict.LowerBoundCode(v);
    return p;
  }
  return Status::InvalidArgument("unknown operator: " + op);
}

class Parser {
 public:
  Parser(const Table& table, std::string_view clause)
      : table_(table), lexer_(clause) {}

  Result<std::vector<Predicate>> Parse() {
    NARU_ASSIGN_OR_RETURN(auto disjuncts, ParseDisjuncts());
    if (disjuncts.size() > 1) {
      return Status::InvalidArgument(
          "clause contains OR; use ParseDisjunction for disjunctions");
    }
    return disjuncts.empty() ? std::vector<Predicate>{}
                             : std::move(disjuncts[0]);
  }

  Result<std::vector<std::vector<Predicate>>> ParseDisjuncts() {
    NARU_RETURN_NOT_OK(Advance());
    std::vector<std::vector<Predicate>> disjuncts;
    if (cur_.kind == TokKind::kEnd) return disjuncts;  // empty: match all
    while (true) {  // one conjunction per iteration
      std::vector<Predicate> preds;
      while (true) {
        NARU_ASSIGN_OR_RETURN(Predicate p, Term());
        preds.push_back(std::move(p));
        if (cur_.kind == TokKind::kEnd || IsKeyword(cur_, "OR")) break;
        if (!IsKeyword(cur_, "AND")) {
          return Status::InvalidArgument(
              StrFormat("expected AND or OR at offset %zu", cur_.pos));
        }
        NARU_RETURN_NOT_OK(Advance());
      }
      disjuncts.push_back(std::move(preds));
      if (cur_.kind == TokKind::kEnd) break;
      NARU_RETURN_NOT_OK(Advance());  // consume OR
      if (cur_.kind == TokKind::kEnd) {
        return Status::InvalidArgument("dangling OR at end of clause");
      }
    }
    return disjuncts;
  }

 private:
  Status Advance() {
    NARU_ASSIGN_OR_RETURN(cur_, lexer_.Next());
    return Status::OK();
  }

  Result<Predicate> Term() {
    if (cur_.kind != TokKind::kIdent) {
      return Status::InvalidArgument(
          StrFormat("expected a column name at offset %zu", cur_.pos));
    }
    NARU_ASSIGN_OR_RETURN(size_t column, table_.ColumnIndex(cur_.text));
    const Dictionary& dict = table_.column(column).dict();
    NARU_RETURN_NOT_OK(Advance());

    if (IsKeyword(cur_, "BETWEEN")) {
      NARU_RETURN_NOT_OK(Advance());
      NARU_ASSIGN_OR_RETURN(Value lo, LiteralValue(dict, cur_));
      NARU_RETURN_NOT_OK(Advance());
      if (!IsKeyword(cur_, "AND")) {
        return Status::InvalidArgument(
            StrFormat("expected AND in BETWEEN at offset %zu", cur_.pos));
      }
      NARU_RETURN_NOT_OK(Advance());
      NARU_ASSIGN_OR_RETURN(Value hi, LiteralValue(dict, cur_));
      NARU_RETURN_NOT_OK(Advance());
      Predicate p;
      p.column = column;
      p.op = CompareOp::kBetween;
      const auto lo_exact = dict.CodeFor(lo);
      p.literal = lo_exact.ok() ? lo_exact.ValueOrDie() : dict.LowerBoundCode(lo);
      const auto hi_exact = dict.CodeFor(hi);
      p.literal2 = hi_exact.ok() ? hi_exact.ValueOrDie() : UpperBoundCode(dict, hi);
      return p;
    }

    if (IsKeyword(cur_, "IN")) {
      NARU_RETURN_NOT_OK(Advance());
      if (cur_.kind != TokKind::kLParen) {
        return Status::InvalidArgument(
            StrFormat("expected ( after IN at offset %zu", cur_.pos));
      }
      Predicate p;
      p.column = column;
      p.op = CompareOp::kIn;
      do {
        NARU_RETURN_NOT_OK(Advance());
        NARU_ASSIGN_OR_RETURN(Value v, LiteralValue(dict, cur_));
        const auto code = dict.CodeFor(v);
        if (code.ok()) p.in_list.push_back(code.ValueOrDie());
        // Absent IN literals match nothing; simply skipped.
        NARU_RETURN_NOT_OK(Advance());
      } while (cur_.kind == TokKind::kComma);
      if (cur_.kind != TokKind::kRParen) {
        return Status::InvalidArgument(
            StrFormat("expected , or ) in IN list at offset %zu", cur_.pos));
      }
      NARU_RETURN_NOT_OK(Advance());
      return p;
    }

    if (cur_.kind != TokKind::kOp) {
      return Status::InvalidArgument(StrFormat(
          "expected an operator, BETWEEN or IN at offset %zu", cur_.pos));
    }
    const std::string op = cur_.text;
    NARU_RETURN_NOT_OK(Advance());
    NARU_ASSIGN_OR_RETURN(Value v, LiteralValue(dict, cur_));
    NARU_RETURN_NOT_OK(Advance());
    return EncodeComparison(column, dict, op, v);
  }

  const Table& table_;
  Lexer lexer_;
  Token cur_;
};

}  // namespace

Result<std::vector<Predicate>> ParsePredicates(const Table& table,
                                               std::string_view clause) {
  return Parser(table, clause).Parse();
}

Result<Query> ParseWhere(const Table& table, std::string_view clause) {
  NARU_ASSIGN_OR_RETURN(std::vector<Predicate> preds,
                        ParsePredicates(table, clause));
  return Query(table, std::move(preds));
}

Result<std::vector<Query>> ParseDisjunction(const Table& table,
                                            std::string_view clause) {
  Parser parser(table, clause);
  NARU_ASSIGN_OR_RETURN(auto disjuncts, parser.ParseDisjuncts());
  std::vector<Query> queries;
  queries.reserve(std::max<size_t>(disjuncts.size(), 1));
  if (disjuncts.empty()) {
    queries.emplace_back(table, std::vector<Predicate>{});
    return queries;
  }
  for (auto& preds : disjuncts) {
    queries.emplace_back(table, std::move(preds));
  }
  return queries;
}

}  // namespace naru
