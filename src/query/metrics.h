// Accuracy metrics and paper-style reporting (§6.1.3).
//
// The q-error is max(est, actual) / min(est, actual) with both cardinalities
// floored at 1. Queries are bucketed by true selectivity into the paper's
// high (>2%), medium (0.5%-2%] and low (<=0.5%) groups, and each bucket is
// reported at {median, 95th, 99th, max}.
#pragma once

#include <string>
#include <vector>

#include "util/quantile.h"

namespace naru {

/// Multiplicative error between estimated and actual cardinalities,
/// both floored at 1 (guards division by zero for empty results).
double QError(double estimated_cardinality, double actual_cardinality);

/// Paper's selectivity buckets.
enum class SelectivityBucket { kHigh, kMedium, kLow };

SelectivityBucket BucketForSelectivity(double selectivity);
const char* BucketName(SelectivityBucket b);

/// Per-bucket q-error accumulator for one estimator.
class ErrorReport {
 public:
  explicit ErrorReport(std::string estimator_name)
      : name_(std::move(estimator_name)) {}

  /// Records one query's result.
  void Add(double estimated_card, double actual_card, double true_sel);

  const std::string& name() const { return name_; }
  ErrorQuantiles Bucket(SelectivityBucket b) const;
  ErrorQuantiles Overall() const;

  /// One table row: name | med/95/99/max for high | medium | low.
  std::string FormatRow() const;
  /// Header matching FormatRow.
  static std::string FormatHeader();

 private:
  std::string name_;
  QuantileSketch buckets_[3];
  QuantileSketch overall_;
};

}  // namespace naru
