#include "query/query.h"

#include <cmath>
#include <limits>

#include "util/string_util.h"

namespace naru {

const char* CompareOpToString(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNeq:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
    case CompareOp::kIn:
      return "IN";
    case CompareOp::kBetween:
      return "BETWEEN";
  }
  return "?";
}

ValueSet Predicate::ToValueSet(size_t domain) const {
  const int64_t d = static_cast<int64_t>(domain);
  switch (op) {
    case CompareOp::kEq:
      return ValueSet::Interval(domain, literal, literal);
    case CompareOp::kNeq: {
      std::vector<int32_t> codes;
      codes.reserve(domain - 1);
      for (int64_t c = 0; c < d; ++c) {
        if (c != literal) codes.push_back(static_cast<int32_t>(c));
      }
      return ValueSet::Set(domain, std::move(codes));
    }
    case CompareOp::kLt:
      return ValueSet::Interval(domain, 0, literal - 1);
    case CompareOp::kLe:
      return ValueSet::Interval(domain, 0, literal);
    case CompareOp::kGt:
      return ValueSet::Interval(domain, literal + 1, d - 1);
    case CompareOp::kGe:
      return ValueSet::Interval(domain, literal, d - 1);
    case CompareOp::kIn:
      return ValueSet::Set(domain, in_list);
    case CompareOp::kBetween:
      return ValueSet::Interval(domain, literal, literal2);
  }
  return ValueSet::All(domain);
}

Query::Query(const Table& table, std::vector<Predicate> predicates)
    : predicates_(std::move(predicates)) {
  regions_.reserve(table.num_columns());
  for (size_t c = 0; c < table.num_columns(); ++c) {
    regions_.push_back(ValueSet::All(table.column(c).DomainSize()));
  }
  for (const auto& p : predicates_) {
    NARU_CHECK(p.column < regions_.size());
    const size_t domain = regions_[p.column].domain();
    regions_[p.column] =
        regions_[p.column].Intersect(p.ToValueSet(domain));
  }
  BuildWildcardMask();
}

Query::Query(std::vector<ValueSet> regions,
             std::vector<Predicate> predicates)
    : predicates_(std::move(predicates)), regions_(std::move(regions)) {
  NARU_CHECK(!regions_.empty());
  BuildWildcardMask();
}

void Query::BuildWildcardMask() {
  wildcard_.resize(regions_.size());
  for (size_t c = 0; c < regions_.size(); ++c) {
    wildcard_[c] = regions_[c].IsAll() ? 1 : 0;
  }
}

size_t Query::NumFilteredColumns() const {
  size_t n = 0;
  for (uint8_t w : wildcard_) {
    if (!w) ++n;
  }
  return n;
}

int Query::LastFilteredColumn() const {
  for (int c = static_cast<int>(wildcard_.size()) - 1; c >= 0; --c) {
    if (!wildcard_[static_cast<size_t>(c)]) return c;
  }
  return -1;
}

size_t Query::LeadingWildcardRun() const {
  size_t run = 0;
  while (run < wildcard_.size() && wildcard_[run]) ++run;
  return run;
}

double Query::Log10RegionSize() const {
  double log10 = 0;
  for (const auto& r : regions_) {
    const size_t count = r.Count();
    if (count == 0) return -std::numeric_limits<double>::infinity();
    log10 += std::log10(static_cast<double>(count));
  }
  return log10;
}

bool Query::HasEmptyRegion() const {
  for (const auto& r : regions_) {
    if (r.Count() == 0) return true;
  }
  return false;
}

std::string Query::ToString(const Table& table) const {
  std::vector<std::string> parts;
  for (const auto& p : predicates_) {
    parts.push_back(StrFormat("%s %s %lld",
                              table.column(p.column).name().c_str(),
                              CompareOpToString(p.op),
                              static_cast<long long>(p.literal)));
  }
  return JoinStrings(parts, " AND ");
}

}  // namespace naru
