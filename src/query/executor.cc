#include "query/executor.h"

#include <atomic>

#include "util/thread_pool.h"

namespace naru {

namespace {

// Filters evaluated in ascending region-count order would be ideal; for
// simplicity we evaluate filtered columns in position order with early
// exit, which is already dominated by the first selective filter.
struct CompiledFilter {
  size_t column;
  const ValueSet* region;
};

std::vector<CompiledFilter> CompileFilters(const Query& query) {
  std::vector<CompiledFilter> filters;
  for (size_t c = 0; c < query.num_columns(); ++c) {
    if (!query.region(c).IsAll()) {
      filters.push_back({c, &query.region(c)});
    }
  }
  return filters;
}

}  // namespace

int64_t ExecuteCount(const Table& table, const Query& query) {
  const auto filters = CompileFilters(query);
  if (filters.empty()) return static_cast<int64_t>(table.num_rows());

  // Relaxed accumulator: per-chunk counts need only the fetch_add's RMW
  // atomicity, and the final load happens after ParallelFor's internal
  // completion edge (release/acquire in the pool) has already ordered
  // every chunk's increment before it.
  std::atomic<int64_t> total{0};
  ParallelFor(
      0, table.num_rows(),
      [&](size_t lo, size_t hi) {
        int64_t local = 0;
        for (size_t r = lo; r < hi; ++r) {
          bool match = true;
          for (const auto& f : filters) {
            if (!f.region->Contains(table.column(f.column).code(r))) {
              match = false;
              break;
            }
          }
          if (match) ++local;
        }
        total.fetch_add(local, std::memory_order_relaxed);
      },
      /*min_chunk=*/4096);
  return total.load(std::memory_order_relaxed);
}

double ExecuteSelectivity(const Table& table, const Query& query) {
  if (table.num_rows() == 0) return 0;
  return static_cast<double>(ExecuteCount(table, query)) /
         static_cast<double>(table.num_rows());
}

std::vector<int64_t> ExecuteCounts(const Table& table,
                                   const std::vector<Query>& queries) {
  std::vector<int64_t> out(queries.size());
  // Parallelism lives inside ExecuteCount; run queries serially so memory
  // stays bounded and the pool is not oversubscribed.
  for (size_t i = 0; i < queries.size(); ++i) {
    out[i] = ExecuteCount(table, queries[i]);
  }
  return out;
}

std::vector<double> ExecuteSelectivities(const Table& table,
                                         const std::vector<Query>& queries) {
  const auto counts = ExecuteCounts(table, queries);
  std::vector<double> sels(counts.size(), 0.0);
  if (table.num_rows() == 0) return sels;
  for (size_t i = 0; i < counts.size(); ++i) {
    sels[i] = static_cast<double>(counts[i]) /
              static_cast<double>(table.num_rows());
  }
  return sels;
}

std::vector<uint8_t> ExecuteBitmap(const Table& table, const Query& query,
                                   size_t limit) {
  const auto filters = CompileFilters(query);
  const size_t n = std::min(limit, table.num_rows());
  std::vector<uint8_t> bitmap(n, 1);
  for (size_t r = 0; r < n; ++r) {
    for (const auto& f : filters) {
      if (!f.region->Contains(table.column(f.column).code(r))) {
        bitmap[r] = 0;
        break;
      }
    }
  }
  return bitmap;
}

}  // namespace naru
