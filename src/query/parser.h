// SQL-ish WHERE-clause parser for conjunctive predicates (§2.2).
//
// Turns a textual filter into the library's Predicate / Query objects,
// resolving column names against a table and literals against the column
// dictionaries. Supported grammar (keywords case-insensitive):
//
//   clause  := conj ( OR conj )*
//   conj    := term ( AND term )*
//   term    := column op literal
//            | column BETWEEN literal AND literal
//            | column IN '(' literal ( ',' literal )* ')'
//   op      := '=' | '!=' | '<>' | '<' | '<=' | '>' | '>='
//   literal := number | 'quoted string' | "quoted string" | bareword
//
// AND binds tighter than OR. Disjunctions are evaluated against any
// estimator through inclusion-exclusion (query/compound.h, §2.2);
// ParsePredicates/ParseWhere accept only a single conjunction and report
// an error when the clause contains OR.
//
// Literals are interpreted in the column's value type and mapped to
// dictionary codes. Range literals absent from the data are encoded
// exactly through the ordered domain (LowerBoundCode); an equality or IN
// literal absent from the data matches nothing (the semantically exact
// answer — selectivity 0 — rather than an error), which also gives the
// §6.3 out-of-distribution behaviour when such queries are typed in.
#pragma once

#include <string_view>
#include <vector>

#include "data/table.h"
#include "query/query.h"
#include "util/status.h"

namespace naru {

/// Parses a conjunction; fails with InvalidArgument on syntax errors and
/// NotFound on unknown column names.
Result<std::vector<Predicate>> ParsePredicates(const Table& table,
                                               std::string_view clause);

/// Convenience: ParsePredicates + Query construction. An empty or
/// all-whitespace clause yields the match-everything query.
Result<Query> ParseWhere(const Table& table, std::string_view clause);

/// Parses `conj (OR conj)*` into one Query per disjunct, ready for
/// EstimateDisjunction / ExecuteDisjunctionSelectivity. A clause without
/// OR yields a single-element vector.
Result<std::vector<Query>> ParseDisjunction(const Table& table,
                                            std::string_view clause);

}  // namespace naru
