// Typed cell values for relational columns.
//
// Naru models every column as a finite discrete domain (§2.2): values are
// dictionary-encoded to dense integer codes whose order matches the value
// order, so range predicates on codes are range predicates on values.
#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "util/macros.h"

namespace naru {

/// Column datatype tag.
enum class ValueType { kInt, kDouble, kString };

/// A single cell value. Comparisons are only defined between values of the
/// same type (enforced by the Dictionary, which is homogeneous).
class Value {
 public:
  Value() : v_(int64_t{0}) {}
  explicit Value(int64_t v) : v_(v) {}
  explicit Value(double v) : v_(v) {}
  explicit Value(std::string v) : v_(std::move(v)) {}

  ValueType type() const {
    return static_cast<ValueType>(v_.index());
  }

  int64_t AsInt() const { return std::get<int64_t>(v_); }
  double AsDouble() const { return std::get<double>(v_); }
  const std::string& AsString() const { return std::get<std::string>(v_); }

  bool operator==(const Value& o) const { return v_ == o.v_; }
  bool operator<(const Value& o) const {
    NARU_DCHECK(type() == o.type());
    return v_ < o.v_;
  }

  std::string ToString() const {
    switch (type()) {
      case ValueType::kInt:
        return std::to_string(AsInt());
      case ValueType::kDouble:
        return std::to_string(AsDouble());
      case ValueType::kString:
        return AsString();
    }
    return "?";
  }

 private:
  std::variant<int64_t, double, std::string> v_;
};

}  // namespace naru
