#include "data/table.h"

#include <cmath>

#include "util/string_util.h"

namespace naru {

Result<size_t> Table::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i]->name() == name) return i;
  }
  return Status::NotFound("no column named " + name + " in table " + name_);
}

void Table::AddColumn(std::unique_ptr<Column> col) {
  if (columns_.empty()) {
    num_rows_ = col->num_rows();
  } else {
    NARU_CHECK_MSG(col->num_rows() == num_rows_,
                   "column %s has %zu rows, table has %zu",
                   col->name().c_str(), col->num_rows(), num_rows_);
  }
  columns_.push_back(std::move(col));
}

Status Table::AppendRows(const Table& other) {
  if (other.num_columns() != num_columns()) {
    return Status::InvalidArgument("schema mismatch: column count");
  }
  // Re-encode through values so appends work across separately-built
  // dictionaries. Unseen values require a ⊥ slot.
  std::vector<std::vector<int32_t>> recoded(num_columns());
  for (size_t c = 0; c < num_columns(); ++c) {
    const Column& dst = column(c);
    const Column& src = other.column(c);
    if (dst.name() != src.name()) {
      return Status::InvalidArgument(
          StrFormat("schema mismatch: column %zu is %s vs %s", c,
                    dst.name().c_str(), src.name().c_str()));
    }
    recoded[c].reserve(src.num_rows());
    for (size_t r = 0; r < src.num_rows(); ++r) {
      const int32_t src_code = src.code(r);
      const Value& v = src.dict().ValueFor(src_code);
      NARU_ASSIGN_OR_RETURN(int32_t dst_code, dst.dict().CodeFor(v));
      recoded[c].push_back(dst_code);
    }
  }
  for (size_t c = 0; c < num_columns(); ++c) {
    mutable_column(c).AppendCodes(recoded[c]);
  }
  num_rows_ += other.num_rows();
  return Status::OK();
}

Table Table::Slice(size_t row_begin, size_t row_end,
                   size_t prefix_cols) const {
  NARU_CHECK(row_begin <= row_end && row_end <= num_rows_);
  NARU_CHECK(prefix_cols <= num_columns());
  Table out(name_ + ".slice");
  for (size_t c = 0; c < prefix_cols; ++c) {
    const Column& src = column(c);
    std::vector<int32_t> codes(src.codes().begin() + row_begin,
                               src.codes().begin() + row_end);
    out.AddColumn(std::make_unique<Column>(src.name(), src.dict(),
                                           std::move(codes)));
  }
  return out;
}

double Table::Log10JointSpaceSize() const {
  double log10 = 0;
  for (const auto& col : columns_) {
    log10 += std::log10(static_cast<double>(col->DomainSize()));
  }
  return log10;
}

size_t Table::EstimatedRawBytes() const {
  // Approximate each attribute cell at 8 bytes (numeric width / pointer to
  // short string), matching how the paper budgets against in-memory size.
  return num_rows_ * num_columns() * 8;
}

void Table::GetRowCodes(size_t r, int32_t* out) const {
  for (size_t c = 0; c < columns_.size(); ++c) {
    out[c] = columns_[c]->code(r);
  }
}

TableBuilder& TableBuilder::AddValueColumn(const std::string& name,
                                           const std::vector<Value>& values,
                                           bool with_placeholder) {
  Dictionary dict = Dictionary::Build(values, with_placeholder);
  std::vector<int32_t> codes;
  codes.reserve(values.size());
  for (const auto& v : values) {
    codes.push_back(dict.CodeFor(v).ValueOrDie());
  }
  table_.AddColumn(
      std::make_unique<Column>(name, std::move(dict), std::move(codes)));
  return *this;
}

TableBuilder& TableBuilder::AddIntColumn(const std::string& name,
                                         const std::vector<int64_t>& values,
                                         bool with_placeholder) {
  std::vector<Value> vals;
  vals.reserve(values.size());
  for (int64_t v : values) vals.emplace_back(v);
  return AddValueColumn(name, vals, with_placeholder);
}

}  // namespace naru
