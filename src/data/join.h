// Join materialization substrate (§4.1 "Joins").
//
// Naru does not distinguish between base tables and join results: an
// estimator built over the tuples of a joined relation supports filters on
// any column of that relation. This module supplies the simplest of the
// paper's listed options — pre-computing and materializing the join — via
// an in-memory hash equi-join over dictionary values. (Streaming multi-way
// join samplers are orthogonal substrate work the paper defers to citations
// [55, 56, 5, 29].)
#pragma once

#include <string>

#include "data/table.h"
#include "util/status.h"

namespace naru {

struct JoinSpec {
  /// Column names of the equi-join keys.
  std::string left_key;
  std::string right_key;
  /// Name of the output relation.
  std::string output_name = "joined";
};

/// Materializes `left ⋈ right` on `spec.left_key == spec.right_key`
/// (values compared through the dictionaries, so separately-built tables
/// join correctly). The output contains all left columns followed by all
/// right columns except the (duplicate) right key; column names are
/// prefixed "l_" / "r_" to avoid collisions. Errors when a key column is
/// missing or the key value types differ.
Result<Table> HashJoinTables(const Table& left, const Table& right,
                             const JoinSpec& spec);

}  // namespace naru
