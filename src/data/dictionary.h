// Ordered dictionary encoding of a column domain (§4.2).
//
// All distinct values of a column are sorted and assigned dense codes
// [0, |A|), making the code order consistent with the value order; numerics
// and strings therefore support range predicates directly on codes. An
// optional placeholder slot (the paper's ⊥) can be reserved so an estimator
// built before new data arrived can still encode unseen values.
#pragma once

#include <map>
#include <vector>

#include "data/value.h"
#include "util/status.h"

namespace naru {

class Dictionary {
 public:
  Dictionary() = default;

  /// Builds from (not necessarily unique or sorted) values. All values must
  /// share one type. When `with_placeholder` is true, an extra code
  /// |A| (the ⊥ slot) is reserved for unseen values.
  static Dictionary Build(const std::vector<Value>& values,
                          bool with_placeholder = false);

  /// Domain size, including the placeholder slot when present.
  size_t size() const {
    return sorted_.size() + (has_placeholder_ ? 1 : 0);
  }
  bool has_placeholder() const { return has_placeholder_; }
  /// The ⊥ code (only valid when has_placeholder()).
  int32_t placeholder_code() const {
    return static_cast<int32_t>(sorted_.size());
  }

  /// Exact-match code for `v`; the placeholder code if reserved and `v` is
  /// unseen; error otherwise.
  Result<int32_t> CodeFor(const Value& v) const;

  /// Smallest code whose value is >= v (== size of real domain when none);
  /// the ordered-domain primitive for encoding range literals that are not
  /// present in the data.
  int32_t LowerBoundCode(const Value& v) const;

  /// Value for a (non-placeholder) code.
  const Value& ValueFor(int32_t code) const {
    NARU_DCHECK(code >= 0 && static_cast<size_t>(code) < sorted_.size());
    return sorted_[static_cast<size_t>(code)];
  }

  ValueType value_type() const { return type_; }

  /// Approximate in-memory footprint of the dictionary payload.
  size_t MemoryBytes() const;

 private:
  std::vector<Value> sorted_;
  std::map<Value, int32_t> index_;
  bool has_placeholder_ = false;
  ValueType type_ = ValueType::kInt;
};

}  // namespace naru
