// Synthetic dataset generators standing in for the paper's evaluation data.
//
// The real DMV CSV and the proprietary Conviva logs are unavailable offline;
// these generators reproduce the *statistical regime* each dataset supplies
// to the experiments (see DESIGN.md §2 for the substitution argument):
//   - DmvLike:     11 columns with the paper's exact domain sizes, strong
//                  latent-cluster correlations, Zipf skew.
//   - ConvivaALike: 15 columns mixing small categorical flags with
//                  large-domain correlated numeric quantities (joint 10^23).
//   - ConvivaBLike: 10K rows x 100 columns, low-rank latent structure,
//                  globally unique tuples (joint 10^190-scale).
// All generators are deterministic in (rows, seed).
#pragma once

#include <cstdint>

#include "data/table.h"

namespace naru {

/// DMV-like table. With `num_partitions` > 1, rows are grouped into
/// `num_partitions` contiguous date-ordered partitions whose underlying
/// cluster mix drifts from one partition to the next (for the §6.7.3
/// ingestion study); partition p occupies rows [p*rows/parts, ...).
Table MakeDmvLike(size_t rows, uint64_t seed, int num_partitions = 1);

/// Conviva-A-like table: 15 columns (6 categorical + 9 numeric).
Table MakeConvivaALike(size_t rows, uint64_t seed);

/// Conviva-B-like table: `cols` columns (default 100), unique rows.
Table MakeConvivaBLike(size_t rows, uint64_t seed, size_t cols = 100);

/// Small random correlated table for property tests: `domains[i]` gives
/// each column's maximum domain size; `skew` the Zipf exponent.
Table MakeRandomTable(size_t rows, const std::vector<size_t>& domains,
                      uint64_t seed, double skew = 1.0);

}  // namespace naru
