// In-memory dictionary-encoded columnar table — the relation under
// estimation (§2). Columns store dense int32 codes; the Dictionary maps
// codes back to typed values. Tables support appends (for the data-shift
// experiment, §6.7.3) and cheap row/column access for scans and training.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "data/dictionary.h"
#include "util/status.h"

namespace naru {

/// One dictionary-encoded column.
class Column {
 public:
  Column(std::string name, Dictionary dict, std::vector<int32_t> codes)
      : name_(std::move(name)),
        dict_(std::move(dict)),
        codes_(std::move(codes)) {}

  const std::string& name() const { return name_; }
  const Dictionary& dict() const { return dict_; }
  /// Domain size |A_i| (includes the ⊥ slot when reserved).
  size_t DomainSize() const { return dict_.size(); }
  size_t num_rows() const { return codes_.size(); }
  int32_t code(size_t row) const { return codes_[row]; }
  const std::vector<int32_t>& codes() const { return codes_; }

  void AppendCodes(const std::vector<int32_t>& more) {
    codes_.insert(codes_.end(), more.begin(), more.end());
  }

 private:
  std::string name_;
  Dictionary dict_;
  std::vector<int32_t> codes_;
};

/// A named collection of equal-length columns.
class Table {
 public:
  explicit Table(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return columns_.size(); }

  const Column& column(size_t i) const { return *columns_[i]; }
  Column& mutable_column(size_t i) { return *columns_[i]; }

  /// Index of the column with `name`, or error.
  Result<size_t> ColumnIndex(const std::string& name) const;

  /// Adds a fully-built column; must match the current row count (or be the
  /// first column).
  void AddColumn(std::unique_ptr<Column> col);

  /// Appends the rows of `other` (same schema: column count, names and
  /// compatible dictionaries -- codes are re-encoded through values unless
  /// dictionaries are shared). Used by the ingestion/drift experiment.
  Status AppendRows(const Table& other);

  /// Copies the first `prefix_cols` columns of rows [row_begin, row_end)
  /// into a fresh table (used for column-scaling and partition studies).
  Table Slice(size_t row_begin, size_t row_end, size_t prefix_cols) const;

  /// log10 of the exact joint-space size, prod |A_i| (paper Table 1's
  /// "Joint" column); log to avoid overflow at 10^190.
  double Log10JointSpaceSize() const;

  /// Estimated in-memory size of the raw (pre-encoding) table, used to set
  /// the storage budgets of Table 1.
  size_t EstimatedRawBytes() const;

  /// Writes row `r`'s codes into `out[0..num_columns)`.
  void GetRowCodes(size_t r, int32_t* out) const;

 private:
  std::string name_;
  size_t num_rows_ = 0;
  std::vector<std::unique_ptr<Column>> columns_;
};

/// Convenience builder: assembles a table column-by-column from raw values.
class TableBuilder {
 public:
  explicit TableBuilder(std::string name) : table_(std::move(name)) {}

  /// Dictionary-encodes `values` (order-preserving) and adds the column.
  TableBuilder& AddValueColumn(const std::string& name,
                               const std::vector<Value>& values,
                               bool with_placeholder = false);

  /// Adds a column whose values are the int64s in `values`.
  TableBuilder& AddIntColumn(const std::string& name,
                             const std::vector<int64_t>& values,
                             bool with_placeholder = false);

  Table Build() { return std::move(table_); }

 private:
  Table table_;
};

}  // namespace naru
