// Per-column marginal statistics computed by scanning a table once.
//
// These are the inputs to the classical baselines (Indep, Postgres1D,
// Dbms1) and to entropy computations.
#pragma once

#include <cstdint>
#include <vector>

#include "data/table.h"

namespace naru {

/// Marginal counts for one column: counts[code] = #rows with that code.
struct ColumnStats {
  std::vector<int64_t> counts;
  size_t distinct = 0;  // number of codes with count > 0

  /// Selectivity of a single code.
  double Fraction(int32_t code, size_t num_rows) const {
    return static_cast<double>(counts[static_cast<size_t>(code)]) /
           static_cast<double>(num_rows);
  }
};

/// All columns' marginal stats plus table-level aggregates.
class TableStats {
 public:
  static TableStats Compute(const Table& table);

  const ColumnStats& column(size_t i) const { return columns_[i]; }
  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return columns_.size(); }

  /// Exact empirical entropy H(P) of the joint, in bits, computed from the
  /// distinct-tuple histogram (feasible for the datasets we train on).
  static double JointEntropyBits(const Table& table);

 private:
  std::vector<ColumnStats> columns_;
  size_t num_rows_ = 0;
};

}  // namespace naru
