#include "data/join.h"

#include <unordered_map>
#include <vector>

namespace naru {

Result<Table> HashJoinTables(const Table& left, const Table& right,
                             const JoinSpec& spec) {
  NARU_ASSIGN_OR_RETURN(size_t lkey, left.ColumnIndex(spec.left_key));
  NARU_ASSIGN_OR_RETURN(size_t rkey, right.ColumnIndex(spec.right_key));
  const Column& lcol = left.column(lkey);
  const Column& rcol = right.column(rkey);
  if (lcol.dict().value_type() != rcol.dict().value_type()) {
    return Status::InvalidArgument(
        "join key type mismatch between " + spec.left_key + " and " +
        spec.right_key);
  }

  // Build side: right table rows indexed by key *value* (via the left
  // dictionary where possible, so probing is code-to-code).
  // Map right key codes -> left key codes once.
  std::vector<int32_t> r_to_l(rcol.DomainSize(), -1);
  for (size_t rc = 0; rc < rcol.DomainSize(); ++rc) {
    if (rcol.dict().has_placeholder() &&
        static_cast<int32_t>(rc) == rcol.dict().placeholder_code()) {
      continue;
    }
    const Value& v = rcol.dict().ValueFor(static_cast<int32_t>(rc));
    auto code = lcol.dict().CodeFor(v);
    if (code.ok()) r_to_l[rc] = code.ValueOrDie();
  }
  std::unordered_map<int32_t, std::vector<uint32_t>> build;
  build.reserve(right.num_rows());
  for (size_t r = 0; r < right.num_rows(); ++r) {
    const int32_t translated = r_to_l[static_cast<size_t>(rcol.code(r))];
    if (translated >= 0) {
      build[translated].push_back(static_cast<uint32_t>(r));
    }
  }

  // Probe side: collect matching row-id pairs.
  std::vector<std::pair<uint32_t, uint32_t>> matches;
  for (size_t l = 0; l < left.num_rows(); ++l) {
    const auto it = build.find(lcol.code(l));
    if (it == build.end()) continue;
    for (uint32_t r : it->second) {
      matches.emplace_back(static_cast<uint32_t>(l), r);
    }
  }

  // Materialize output columns through values (fresh dictionaries).
  TableBuilder builder(spec.output_name);
  std::vector<Value> values;
  values.reserve(matches.size());
  for (size_t c = 0; c < left.num_columns(); ++c) {
    const Column& col = left.column(c);
    values.clear();
    for (const auto& [l, r] : matches) {
      values.push_back(col.dict().ValueFor(col.code(l)));
    }
    builder.AddValueColumn("l_" + col.name(), values);
  }
  for (size_t c = 0; c < right.num_columns(); ++c) {
    if (c == rkey) continue;  // drop the duplicate key column
    const Column& col = right.column(c);
    values.clear();
    for (const auto& [l, r] : matches) {
      values.push_back(col.dict().ValueFor(col.code(r)));
    }
    builder.AddValueColumn("r_" + col.name(), values);
  }
  if (matches.empty()) {
    return Status::InvalidArgument(
        "join produced no rows; an estimator needs a non-empty relation");
  }
  return builder.Build();
}

}  // namespace naru
