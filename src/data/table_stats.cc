#include "data/table_stats.h"

#include <cmath>
#include <unordered_map>

namespace naru {

TableStats TableStats::Compute(const Table& table) {
  TableStats stats;
  stats.num_rows_ = table.num_rows();
  stats.columns_.resize(table.num_columns());
  for (size_t c = 0; c < table.num_columns(); ++c) {
    const Column& col = table.column(c);
    ColumnStats& cs = stats.columns_[c];
    cs.counts.assign(col.DomainSize(), 0);
    for (size_t r = 0; r < col.num_rows(); ++r) {
      ++cs.counts[static_cast<size_t>(col.code(r))];
    }
    cs.distinct = 0;
    for (int64_t v : cs.counts) {
      if (v > 0) ++cs.distinct;
    }
  }
  return stats;
}

double TableStats::JointEntropyBits(const Table& table) {
  const size_t n = table.num_rows();
  if (n == 0) return 0;
  const size_t cols = table.num_columns();
  // Hash each row's code tuple with a simple polynomial rolling hash over
  // 64-bit mixing; collisions are resolved by keying on the full tuple.
  struct VecHash {
    size_t operator()(const std::vector<int32_t>& v) const {
      uint64_t h = 0x9E3779B97F4A7C15ULL;
      for (int32_t x : v) {
        h ^= static_cast<uint64_t>(static_cast<uint32_t>(x)) +
             0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
      }
      return static_cast<size_t>(h);
    }
  };
  std::unordered_map<std::vector<int32_t>, int64_t, VecHash> counts;
  counts.reserve(n * 2);
  std::vector<int32_t> row(cols);
  for (size_t r = 0; r < n; ++r) {
    table.GetRowCodes(r, row.data());
    ++counts[row];
  }
  double h = 0;
  const double inv_n = 1.0 / static_cast<double>(n);
  for (const auto& [tuple, count] : counts) {
    const double p = static_cast<double>(count) * inv_n;
    h -= p * std::log2(p);
  }
  return h;
}

}  // namespace naru
