// CSV -> Table import with simple type inference.
//
// This is the path for loading the paper's real datasets (e.g. the NY DMV
// registration dump) when available; the benchmark suite falls back to the
// synthetic generators otherwise.
#pragma once

#include <string>
#include <vector>

#include "data/table.h"
#include "util/status.h"

namespace naru {

/// Loads `path` as a table named `name`. Column types are inferred per
/// column: all-int64 -> int, else all-double -> double, else string.
/// `columns`, when non-empty, selects (and orders) a subset by header name.
Result<Table> LoadTableFromCsv(const std::string& path,
                               const std::string& name,
                               const std::vector<std::string>& columns = {},
                               char delim = ',');

}  // namespace naru
