#include "data/csv_table.h"

#include <cstdlib>

#include "util/csv.h"
#include "util/string_util.h"

namespace naru {

namespace {

bool ParseInt(const std::string& s, int64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (end != s.c_str() + s.size()) return false;
  *out = static_cast<int64_t>(v);
  return true;
}

bool ParseDouble(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

}  // namespace

Result<Table> LoadTableFromCsv(const std::string& path,
                               const std::string& name,
                               const std::vector<std::string>& columns,
                               char delim) {
  NARU_ASSIGN_OR_RETURN(CsvContents csv, ReadCsvFile(path, delim));

  // Resolve the selected column indices.
  std::vector<size_t> selected;
  std::vector<std::string> out_names;
  if (columns.empty()) {
    for (size_t i = 0; i < csv.header.size(); ++i) selected.push_back(i);
    out_names = csv.header;
  } else {
    for (const auto& want : columns) {
      bool found = false;
      for (size_t i = 0; i < csv.header.size(); ++i) {
        if (csv.header[i] == want) {
          selected.push_back(i);
          out_names.push_back(want);
          found = true;
          break;
        }
      }
      if (!found) {
        return Status::NotFound("CSV column not found: " + want);
      }
    }
  }

  TableBuilder builder(name);
  for (size_t k = 0; k < selected.size(); ++k) {
    const size_t ci = selected[k];
    // Infer type with one pass, then materialize values.
    bool all_int = true;
    bool all_double = true;
    for (const auto& row : csv.rows) {
      int64_t iv;
      double dv;
      if (all_int && !ParseInt(row[ci], &iv)) all_int = false;
      if (!all_int && all_double && !ParseDouble(row[ci], &dv)) {
        all_double = false;
        break;
      }
    }
    std::vector<Value> values;
    values.reserve(csv.rows.size());
    for (const auto& row : csv.rows) {
      const std::string& cell = row[ci];
      if (all_int) {
        int64_t iv = 0;
        ParseInt(cell, &iv);
        values.emplace_back(iv);
      } else if (all_double) {
        double dv = 0;
        ParseDouble(cell, &dv);
        values.emplace_back(dv);
      } else {
        values.emplace_back(cell);
      }
    }
    builder.AddValueColumn(out_names[k], values);
  }
  return builder.Build();
}

}  // namespace naru
