#include "data/datasets.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "util/random.h"

namespace naru {

namespace {

// Mixes a column id into a per-column multiplier for base-value placement.
uint64_t ColumnHash(uint64_t c) {
  uint64_t z = c + 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

Table MakeDmvLike(size_t rows, uint64_t seed, int num_partitions) {
  NARU_CHECK(num_partitions >= 1);
  // The paper's 11 DMV columns with their reported domain sizes.
  const char* names[11] = {"record_type", "reg_class", "state",   "county",
                           "body_type",   "fuel_type", "valid_date", "color",
                           "sco_ind",     "sus_ind",   "rev_ind"};
  const size_t domains[11] = {4, 75, 89, 63, 59, 9, 2101, 225, 2, 2, 2};
  constexpr size_t kDateCol = 6;
  constexpr size_t kNumClusters = 64;

  Rng rng(seed);
  ZipfTable cluster_dist(kNumClusters, 1.35);
  std::vector<ZipfTable> local_offsets;
  std::vector<ZipfTable> global_dists;
  local_offsets.reserve(11);
  global_dists.reserve(11);
  for (size_t c = 0; c < 11; ++c) {
    const size_t width = std::max<size_t>(1, domains[c] / 16);
    local_offsets.emplace_back(width, 1.5);
    global_dists.emplace_back(domains[c], 1.05);
  }

  std::vector<std::vector<int64_t>> cols(11);
  for (auto& v : cols) v.reserve(rows);

  for (size_t r = 0; r < rows; ++r) {
    const int part =
        static_cast<int>((r * static_cast<size_t>(num_partitions)) / rows);
    // Later partitions shift the cluster mix (statistical drift).
    const size_t z =
        (cluster_dist.Sample(&rng) + static_cast<size_t>(part) * 5) %
        kNumClusters;
    for (size_t c = 0; c < 11; ++c) {
      const size_t d = domains[c];
      int64_t value;
      if (d == 2) {
        // Indicator columns track cluster bits with 5% noise.
        value = static_cast<int64_t>((z >> (c % 6)) & 1);
        if (rng.UniformDouble() < 0.05) value ^= 1;
      } else if (c == kDateCol) {
        // Dates live inside the partition's date window (§6.7.3 ingests
        // "one new partition per day"), clustered near the window start.
        const size_t window = d / static_cast<size_t>(num_partitions);
        const size_t base = static_cast<size_t>(part) * window;
        const size_t offset =
            (z * 31 + local_offsets[c].Sample(&rng)) % std::max<size_t>(window, 1);
        value = static_cast<int64_t>(base + offset);
      } else if (rng.UniformDouble() < 0.92) {
        // Correlated draw: cluster-determined base plus local Zipf offset.
        // Real registration data is dominated by default values (standard
        // record type, common colors); a 35% "mode" draw reproduces those
        // heavy hitters so equality literals often select fat values.
        const size_t base = (z * ColumnHash(c)) % d;
        const size_t offset = rng.UniformDouble() < 0.35
                                  ? 0
                                  : local_offsets[c].Sample(&rng);
        value = static_cast<int64_t>((base + offset) % d);
      } else {
        // Background noise: globally skewed draw.
        value = static_cast<int64_t>(global_dists[c].Sample(&rng));
      }
      cols[c].push_back(value);
    }
  }

  TableBuilder builder("dmv_like");
  for (size_t c = 0; c < 11; ++c) builder.AddIntColumn(names[c], cols[c]);
  return builder.Build();
}

Table MakeConvivaALike(size_t rows, uint64_t seed) {
  struct ColSpec {
    const char* name;
    size_t domain;
    bool numeric;
  };
  // 6 small-domain categoricals + 9 large-domain numeric quantities,
  // mirroring the paper's description (domains 2 - 1.9K).
  const ColSpec specs[15] = {
      {"error_flag", 2, false},     {"conn_type", 5, false},
      {"device", 12, false},        {"cdn", 6, false},
      {"asn_bucket", 40, false},    {"region", 25, false},
      {"bandwidth_kbps", 1900, true}, {"bitrate", 800, true},
      {"buffer_ms", 1200, true},    {"join_time", 1000, true},
      {"play_time", 1500, true},    {"bytes_mb", 1800, true},
      {"chunks", 300, true},        {"dropped", 150, true},
      {"session_len", 900, true},
  };
  constexpr size_t kNumClusters = 16;

  Rng rng(seed);
  ZipfTable cluster_dist(kNumClusters, 1.05);

  // Per-cluster latent means and per-column loadings.
  std::vector<std::array<double, 3>> mu(kNumClusters);
  Rng setup(seed ^ 0xABCDEF12345ULL);
  for (auto& m : mu) {
    for (double& x : m) x = setup.Gaussian() * 1.2;
  }
  std::vector<std::array<double, 3>> loadings(15);
  for (auto& l : loadings) {
    for (double& x : l) x = setup.Gaussian() * 0.8;
  }

  std::vector<std::vector<int64_t>> cols(15);
  for (auto& v : cols) v.reserve(rows);

  for (size_t r = 0; r < rows; ++r) {
    const size_t z = cluster_dist.Sample(&rng);
    double f[3];
    for (int k = 0; k < 3; ++k) f[k] = mu[z][k] + 0.5 * rng.Gaussian();
    for (size_t c = 0; c < 15; ++c) {
      const size_t d = specs[c].domain;
      int64_t value;
      if (!specs[c].numeric) {
        if (rng.UniformDouble() < 0.85) {
          value = static_cast<int64_t>((z * ColumnHash(c)) % d);
        } else {
          value = static_cast<int64_t>(rng.UniformInt(d));
        }
      } else if (rng.UniformDouble() < 0.40) {
        // Zero-inflation: telemetry quantities (dropped frames, buffering
        // time, ...) are dominated by a zero/idle mode in real logs.
        value = 0;
      } else {
        // Correlated log-normal quantity quantized onto [0, d).
        const double score = loadings[c][0] * f[0] + loadings[c][1] * f[1] +
                             loadings[c][2] * f[2] + 0.25 * rng.Gaussian();
        const double u = 1.0 / (1.0 + std::exp(-score));  // in (0,1)
        // Square to skew mass toward the low end (bandwidths, latencies).
        value = static_cast<int64_t>(u * u * static_cast<double>(d - 1));
      }
      cols[c].push_back(value);
    }
  }

  TableBuilder builder("conviva_a_like");
  for (size_t c = 0; c < 15; ++c) {
    builder.AddIntColumn(specs[c].name, cols[c]);
  }
  return builder.Build();
}

Table MakeConvivaBLike(size_t rows, uint64_t seed, size_t cols) {
  NARU_CHECK(cols >= 5);
  constexpr size_t kUniqueCol = 3;  // near-the-front unique session id
  Rng rng(seed);
  Rng setup(seed ^ 0x5DEECE66DULL);

  // Per-column domain schedule: flags, mid-size categoricals, larger
  // numerics; paper reports domains 2 - 10K.
  std::vector<size_t> domains(cols);
  for (size_t c = 0; c < cols; ++c) {
    if (c == kUniqueCol) {
      domains[c] = rows;  // unique session id column
    } else if (c % 5 == 0) {
      domains[c] = 2;
    } else if (c % 5 == 1) {
      domains[c] = 8 + ColumnHash(c) % 24;
    } else if (c % 5 == 2) {
      domains[c] = 50 + ColumnHash(c) % 200;
    } else {
      domains[c] = 300 + ColumnHash(c) % 1800;
    }
  }

  // Low-rank loadings (rank 4).
  std::vector<std::array<double, 4>> loadings(cols);
  for (auto& l : loadings) {
    for (double& x : l) x = setup.Gaussian();
  }

  // Unique ids: a fixed pseudo-random permutation of [0, rows).
  std::vector<int64_t> ids(rows);
  for (size_t r = 0; r < rows; ++r) ids[r] = static_cast<int64_t>(r);
  setup.Shuffle(&ids);

  std::vector<std::vector<int64_t>> data(cols);
  for (auto& v : data) v.reserve(rows);

  for (size_t r = 0; r < rows; ++r) {
    double f[4];
    for (double& x : f) x = rng.Gaussian();
    for (size_t c = 0; c < cols; ++c) {
      if (c == kUniqueCol) {
        data[c].push_back(ids[r]);
        continue;
      }
      double score = 0;
      for (int k = 0; k < 4; ++k) score += loadings[c][k] * f[k];
      score += 0.4 * rng.Gaussian();
      const double u = 1.0 / (1.0 + std::exp(-score));
      data[c].push_back(static_cast<int64_t>(
          u * static_cast<double>(domains[c] - 1) + 0.5));
    }
  }

  TableBuilder builder("conviva_b_like");
  for (size_t c = 0; c < cols; ++c) {
    builder.AddIntColumn("col" + std::to_string(c), data[c]);
  }
  return builder.Build();
}

Table MakeRandomTable(size_t rows, const std::vector<size_t>& domains,
                      uint64_t seed, double skew) {
  Rng rng(seed);
  const size_t k = std::max<size_t>(2, domains.size() * 2);
  ZipfTable cluster_dist(k, 1.0);
  std::vector<ZipfTable> offsets;
  offsets.reserve(domains.size());
  for (size_t d : domains) {
    offsets.emplace_back(std::max<size_t>(1, d / 2), skew);
  }
  std::vector<std::vector<int64_t>> data(domains.size());
  for (size_t r = 0; r < rows; ++r) {
    const size_t z = cluster_dist.Sample(&rng);
    for (size_t c = 0; c < domains.size(); ++c) {
      const size_t d = domains[c];
      const size_t base = (z * ColumnHash(c)) % d;
      data[c].push_back(
          static_cast<int64_t>((base + offsets[c].Sample(&rng)) % d));
    }
  }
  TableBuilder builder("random_table");
  for (size_t c = 0; c < domains.size(); ++c) {
    builder.AddIntColumn("c" + std::to_string(c), data[c]);
  }
  return builder.Build();
}

}  // namespace naru
