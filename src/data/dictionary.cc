#include "data/dictionary.h"

#include <algorithm>

namespace naru {

Dictionary Dictionary::Build(const std::vector<Value>& values,
                             bool with_placeholder) {
  Dictionary d;
  d.has_placeholder_ = with_placeholder;
  if (values.empty()) return d;
  d.type_ = values[0].type();
  for (const auto& v : values) {
    NARU_CHECK_MSG(v.type() == d.type_,
                   "mixed value types in one column dictionary");
    d.index_.emplace(v, 0);
  }
  d.sorted_.reserve(d.index_.size());
  int32_t code = 0;
  for (auto& [value, assigned] : d.index_) {
    assigned = code++;
    d.sorted_.push_back(value);
  }
  return d;
}

Result<int32_t> Dictionary::CodeFor(const Value& v) const {
  auto it = index_.find(v);
  if (it != index_.end()) return it->second;
  if (has_placeholder_) return placeholder_code();
  return Status::NotFound("value not in dictionary: " + v.ToString());
}

int32_t Dictionary::LowerBoundCode(const Value& v) const {
  auto it = index_.lower_bound(v);
  if (it == index_.end()) return static_cast<int32_t>(sorted_.size());
  return it->second;
}

size_t Dictionary::MemoryBytes() const {
  size_t bytes = 0;
  for (const auto& v : sorted_) {
    bytes += sizeof(Value);
    if (v.type() == ValueType::kString) bytes += v.AsString().capacity();
  }
  // The map roughly doubles it (nodes + values); good enough for budgets.
  return bytes * 2;
}

}  // namespace naru
