#include "core/conditional_model.h"

#include <cmath>

namespace naru {

namespace {

class StatelessSession : public SamplingSession {
 public:
  explicit StatelessSession(ConditionalModel* model) : model_(model) {}
  void Dist(const IntMatrix& samples, size_t col, Matrix* probs) override {
    model_->ConditionalDist(samples, col, probs);
  }

 private:
  ConditionalModel* model_;
};

}  // namespace

void ConditionalModel::LogProbRows(const IntMatrix& tuples,
                                   std::vector<double>* out_nats) {
  const size_t batch = tuples.rows();
  out_nats->assign(batch, 0.0);
  Matrix probs;
  for (size_t col = 0; col < num_columns(); ++col) {
    ConditionalDist(tuples, col, &probs);
    for (size_t r = 0; r < batch; ++r) {
      const double p =
          std::max<double>(probs.At(r, static_cast<size_t>(tuples.At(r, col))),
                           1e-38);
      (*out_nats)[r] += std::log(p);
    }
  }
}

std::unique_ptr<SamplingSession> ConditionalModel::StartSession(
    size_t /*batch*/) {
  return std::make_unique<StatelessSession>(this);
}

}  // namespace naru
