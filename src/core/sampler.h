// Progressive sampling: unbiased Monte Carlo range-density estimation (§5.1,
// Algorithm 1).
//
// For each of S sample paths, the sampler walks columns in model order.
// At column i it asks the model for P̂(X_i | sampled prefix), masks the
// distribution to the query region R_i, multiplies the path weight by the
// contained mass P̂(X_i ∈ R_i | prefix), and draws the next prefix value
// from the renormalized truncated distribution. The mean of the S path
// weights is an unbiased estimate of P(X_1 ∈ R_1, ..., X_n ∈ R_n)
// (Theorem 1). Wildcard columns contribute mass exactly 1; once every
// remaining column is a wildcard the walk stops early (the product of the
// remaining masses is identically 1, so the early exit is exact).
//
// Execution model: the S paths are cut into fixed-size SHARDS. Each shard
// draws from its own RNG stream derived from (seed, shard index) and walks
// its paths through a private SamplingSession using a SamplerWorkspace
// leased from a pool, so shards can run concurrently on a thread pool when
// the model allows it (ConditionalModel::SupportsConcurrentSampling). The
// shard layout and the final shard-order reduction are independent of the
// thread count, so estimates are bit-identical for a fixed seed whether the
// walk runs on one thread or many.
//
// A `uniform_region` mode implements the paper's strawman (§5.1 "first
// attempt"): sample uniformly from the region and importance-weight by
// |R| · P̂(x); it collapses on skewed data and exists for the ablation.
#pragma once

#include <atomic>
#include <chrono>
#include <memory>
#include <vector>

#include "core/conditional_model.h"
#include "query/query.h"
#include "util/deadline.h"
#include "util/random.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace naru {

/// Reusable per-shard sampling scratch. One workspace carries everything a
/// shard's walk mutates, so leasing a workspace per shard is what makes
/// concurrent shard execution safe: no two shards ever share a buffer.
/// Buffers keep their capacity between leases (steady-state serving does
/// not allocate).
struct SamplerWorkspace {
  IntMatrix samples;            ///< sampled prefix codes, paths x columns
  Matrix probs;                 ///< model conditionals for the current column
  std::vector<double> weights;  ///< per-path running products of masses
  std::vector<uint8_t> alive;   ///< per-path liveness (0 once weight hits 0)

  // Plan-execution scratch (src/plan): the frontier executor walks a plan
  // tree with one row block per live branch inside samples/weights/alive
  // above, and rebuilds that stacked layout at every retire/fork boundary
  // by ping-ponging into these spares (then swapping). One workspace
  // therefore carries a whole (tree, shard) task, keeping live workspaces
  // proportional to the number of concurrently running tasks.
  IntMatrix spare_samples;           ///< layout-rebuild target for samples
  std::vector<double> spare_weights; ///< layout-rebuild target for weights
  std::vector<uint8_t> spare_alive;  ///< layout-rebuild target for alive
};

/// Thread-safe free-list of SamplerWorkspaces. One pool can back many
/// samplers: the serving engine shares a single pool across every query of
/// a batch (and the async dispatcher across every micro-batch), so the
/// number of live workspaces tracks the number of concurrently running
/// shards, not the number of queries served.
class SamplerWorkspacePool {
 public:
  /// Leases a workspace (creating one if the free list is empty). Return it
  /// with Release — or use the RAII WorkspaceLease below.
  std::unique_ptr<SamplerWorkspace> Acquire();
  /// Returns a leased workspace to the free list; its buffers keep their
  /// capacity for the next lease.
  void Release(std::unique_ptr<SamplerWorkspace> ws);

  /// Total workspaces ever created (tests assert reuse keeps this small).
  size_t total_created() const;
  /// Workspaces currently on the free list.
  size_t available() const;

 private:
  mutable Mutex mu_;
  std::vector<std::unique_ptr<SamplerWorkspace>> free_ NARU_GUARDED_BY(mu_);
  size_t created_ NARU_GUARDED_BY(mu_) = 0;
};

/// RAII lease of a SamplerWorkspace from a pool.
class WorkspaceLease {
 public:
  explicit WorkspaceLease(SamplerWorkspacePool* pool)
      : pool_(pool), ws_(pool->Acquire()) {}
  ~WorkspaceLease() { pool_->Release(std::move(ws_)); }
  WorkspaceLease(const WorkspaceLease&) = delete;
  WorkspaceLease& operator=(const WorkspaceLease&) = delete;

  SamplerWorkspace* get() { return ws_.get(); }
  SamplerWorkspace* operator->() { return ws_.get(); }

 private:
  SamplerWorkspacePool* pool_;
  std::unique_ptr<SamplerWorkspace> ws_;
};

/// One query's block of sample paths inside a (possibly stacked) walk.
/// The sequential sampler uses a block spanning a whole workspace
/// (row_offset 0); the plan executor (src/plan) points blocks at row
/// ranges of one stacked matrix shared by every branch of a plan tree.
struct SamplerRowBlock {
  IntMatrix* samples = nullptr;  ///< sampled prefix codes (stacked rows)
  Matrix* probs = nullptr;       ///< this column's conditionals, row-aligned
  double* weights = nullptr;     ///< this block's path weights (length rows)
  uint8_t* alive = nullptr;      ///< this block's liveness flags
  size_t row_offset = 0;         ///< first row of the block in samples/probs
  size_t rows = 0;               ///< paths in the block
};

/// One column step of Algorithm 1 (lines 12-14) over one query's block:
/// per path, mask the conditional to the query region, fold the contained
/// mass into the path weight, and draw the next prefix code from the
/// truncated distribution (wildcard columns contribute mass exactly 1 and
/// draw from the full conditional). This is THE per-row walk kernel —
/// shared by ProgressiveSampler and the plan executor so the planned path
/// is bit-identical to the sequential one by construction.
void SamplerColumnStep(const ConditionalModel* model, const Query& query,
                       size_t col, bool wildcard,
                       const SamplerRowBlock& block, Rng* rng);

/// Independent RNG stream for shard `shard` of a fixed seed (splitmix64
/// finalizer; adjacent shards land in uncorrelated xoshiro seed regions).
/// The (seed, shard) -> stream map is part of the determinism contract:
/// every execution strategy derives its draws from it.
uint64_t SamplerShardSeed(uint64_t seed, size_t shard);

/// Shard count for `num_samples` paths in shards of `shard_size`.
size_t SamplerNumShards(size_t num_samples, size_t shard_size);

struct ProgressiveSamplerConfig {
  /// Number of sample paths S (the paper's Naru-1000/2000/4000 suffix).
  size_t num_samples = 1000;
  /// Paths are processed in shards of exactly this many (last shard takes
  /// the remainder). The shard is the unit of determinism AND of
  /// parallelism: per-shard RNG streams are derived from (seed, shard), so
  /// changing the thread count never changes an estimate. It also bounds
  /// workspace memory and amortizes model forward passes (per-row forward
  /// cost is flat from 128 rows up, so small shards cost nothing there).
  /// NOTE: because the shard layout defines the RNG streams, changing
  /// this value — including its default — changes every estimate for a
  /// given seed and invalidates any memoized results.
  size_t shard_size = 128;
  uint64_t seed = 7;
  /// Use the uniform-region strawman instead of progressive sampling.
  bool uniform_region = false;
  /// Degree of shard parallelism: 1 = serial on the calling thread, any
  /// other value = spread shards across `thread_pool`. Only consulted when
  /// the model supports concurrent sampling; results never depend on it.
  size_t parallelism = 0;
  /// Pool for shard execution (nullptr = the process-global pool). The
  /// serving engine injects its own sized pool here.
  ThreadPool* thread_pool = nullptr;
};

class ProgressiveSampler {
 public:
  /// `workspaces` may be nullptr (the sampler then uses a private pool) or
  /// a shared pool, e.g. the serving engine's, so concurrent queries reuse
  /// one set of buffers.
  ProgressiveSampler(ConditionalModel* model, ProgressiveSamplerConfig cfg,
                     SamplerWorkspacePool* workspaces = nullptr);

  /// Unbiased estimate of the query's selectivity.
  double EstimateSelectivity(const Query& query);

  /// As EstimateSelectivity, and also reports the Monte Carlo standard
  /// error of the estimate (sample stddev of the path weights / sqrt(S)).
  /// Exact answers (empty region, all-wildcard, single leading filter)
  /// report 0. A ±2·stderr interval is the usual ~95% confidence band an
  /// optimizer can use to decide whether to spend more sample paths.
  double EstimateWithStdError(const Query& query, double* std_error);

  /// Per-call overrides for the serving engine. The execution fields
  /// (parallelism, thread_pool, workspaces) affect only WHERE the work
  /// runs, never the estimate; num_samples is the one VALUE override —
  /// it changes how many paths are walked, i.e. what is computed.
  struct RunOptions {
    /// 0 = inherit config; 1 = serial on the calling thread (the engine
    /// uses this when it already runs one query per worker).
    size_t parallelism = 0;
    /// nullptr = inherit config (the engine injects its sized pool).
    ThreadPool* thread_pool = nullptr;
    /// nullptr = the sampler's own pool (the engine shares one pool across
    /// all queries of a batch).
    SamplerWorkspacePool* workspaces = nullptr;
    /// Per-call sample-path budget: 0 = inherit config. A nonzero value
    /// serves this call with that many paths — bit-identical to a sampler
    /// configured with the same num_samples (the shard layout and RNG
    /// streams depend only on (seed, shard_size, num_samples)). Carries
    /// EstimateRequest's per-request budget (serve/request.h).
    size_t num_samples = 0;
    /// Soft mid-walk deadline (steady_clock; kNoDeadline = none).
    /// Checked BETWEEN column steps of the sampled walk — never inside a
    /// kernel, so a walk that runs to completion is bit-identical to one
    /// run without a deadline. Once the shared inclusive predicate
    /// (util/deadline.h) trips, every shard of the walk is abandoned;
    /// `*abandoned` is set and the returned estimate is NaN — the caller
    /// must replace it with a typed DEADLINE_EXCEEDED status. Exact
    /// shortcut paths (empty, all-wildcard, leading-only) and the
    /// uniform-region strawman are never abandoned.
    std::chrono::steady_clock::time_point deadline = kNoDeadline;
    /// Out-param (may be nullptr): set to true when the walk was
    /// abandoned on `deadline`; never written otherwise.
    bool* abandoned = nullptr;
  };

  /// As EstimateWithStdError with per-call execution overrides. Estimates
  /// are identical for any options.
  double EstimateWithOptions(const Query& query, double* std_error,
                             const RunOptions& options);

  /// How a query will be answered. The serving engine routes on this so
  /// its fast paths can never diverge from the sampler's own.
  enum class Path {
    kEmpty,        ///< some region empty: exactly 0
    kAllWildcard,  ///< no constrained position: exactly 1
    kLeadingOnly,  ///< only position 0 constrained: exact marginal mass
    kSampled,      ///< full progressive-sampling walk
  };
  Path Classify(const Query& query) const;

  /// Exact contained mass of the query's region at model position 0,
  /// P̂(X_0 ∈ R_0) — the answer when position 0 is the only constrained
  /// position (the "single leading filter" fast path, no sampling needed).
  /// Exposed so the serving engine can cache it keyed on the masked region.
  double LeadingOnlyMass(const Query& query);

  /// Shard count for the configured S (diagnostics/tests).
  size_t NumShards() const;

  const ProgressiveSamplerConfig& config() const { return cfg_; }

 private:
  /// Walks one shard of `rows` paths; returns the shard's weight sum and
  /// adds squared weights into *weight_sq_sum. `deadline` (time_point::
  /// max() = none) is re-checked between column steps against the shared
  /// `abandoned` flag: the first shard to observe expiry sets it, every
  /// shard bails at its next column boundary, and the partial sums are
  /// discarded by the caller.
  double ShardWeightSum(const Query& query, size_t rows, int last_col,
                        Rng* rng, SamplerWorkspace* ws,
                        double* weight_sq_sum,
                        std::chrono::steady_clock::time_point deadline,
                        std::atomic<bool>* abandoned);
  double UniformShardWeightSum(const Query& query, size_t rows, Rng* rng,
                               SamplerWorkspace* ws);

  /// Independent RNG stream for shard `shard` of a fixed seed.
  static uint64_t ShardSeed(uint64_t seed, size_t shard);

  /// Last constrained model position of `query`, or -1 if none.
  int LastConstrainedPosition(const Query& query) const;

  ConditionalModel* model_;
  ProgressiveSamplerConfig cfg_;
  SamplerWorkspacePool own_workspaces_;
  SamplerWorkspacePool* workspaces_;  // external or &own_workspaces_
};

}  // namespace naru
