// Progressive sampling: unbiased Monte Carlo range-density estimation (§5.1,
// Algorithm 1).
//
// For each of S sample paths, the sampler walks columns in model order.
// At column i it asks the model for P̂(X_i | sampled prefix), masks the
// distribution to the query region R_i, multiplies the path weight by the
// contained mass P̂(X_i ∈ R_i | prefix), and draws the next prefix value
// from the renormalized truncated distribution. The mean of the S path
// weights is an unbiased estimate of P(X_1 ∈ R_1, ..., X_n ∈ R_n)
// (Theorem 1). Wildcard columns contribute mass exactly 1; once every
// remaining column is a wildcard the walk stops early (the product of the
// remaining masses is identically 1, so the early exit is exact).
//
// A `uniform_region` mode implements the paper's strawman (§5.1 "first
// attempt"): sample uniformly from the region and importance-weight by
// |R| · P̂(x); it collapses on skewed data and exists for the ablation.
#pragma once

#include "core/conditional_model.h"
#include "query/query.h"
#include "util/random.h"

namespace naru {

struct ProgressiveSamplerConfig {
  /// Number of sample paths S (the paper's Naru-1000/2000/4000 suffix).
  size_t num_samples = 1000;
  /// Paths are processed in chunks of at most this many (bounds memory and
  /// amortizes model forward passes).
  size_t max_batch = 512;
  uint64_t seed = 7;
  /// Use the uniform-region strawman instead of progressive sampling.
  bool uniform_region = false;
};

class ProgressiveSampler {
 public:
  ProgressiveSampler(ConditionalModel* model, ProgressiveSamplerConfig cfg);

  /// Unbiased estimate of the query's selectivity.
  double EstimateSelectivity(const Query& query);

  /// As EstimateSelectivity, and also reports the Monte Carlo standard
  /// error of the estimate (sample stddev of the path weights / sqrt(S)).
  /// Exact answers (empty region, all-wildcard, single leading filter)
  /// report 0. A ±2·stderr interval is the usual ~95% confidence band an
  /// optimizer can use to decide whether to spend more sample paths.
  double EstimateWithStdError(const Query& query, double* std_error);

 private:
  double ChunkWeightSum(const Query& query, size_t chunk, int last_col,
                        double* weight_sq_sum);
  double UniformChunkWeightSum(const Query& query, size_t chunk);

  ConditionalModel* model_;
  ProgressiveSamplerConfig cfg_;
  Rng rng_;
  // Workspace.
  IntMatrix samples_;
  Matrix probs_;
};

}  // namespace naru
