#include "core/generator.h"

#include <algorithm>
#include <cmath>

#include "util/macros.h"

namespace naru {

namespace {
constexpr size_t kChunk = 512;
}  // namespace

TupleGenerator::TupleGenerator(ConditionalModel* model, uint64_t seed)
    : model_(model), rng_(seed) {
  NARU_CHECK(model_ != nullptr);
}

void TupleGenerator::WalkChunk(const Query* query, size_t chunk,
                               IntMatrix* tuples,
                               std::vector<double>* weights) {
  const size_t n = model_->num_columns();
  samples_.Resize(chunk, n);
  samples_.Fill(0);
  weights->assign(chunk, 1.0);
  std::vector<uint8_t> alive(chunk, 1);

  auto session = model_->StartSession(chunk);
  for (size_t pos = 0; pos < n; ++pos) {
    const bool constrained =
        query != nullptr && !model_->PositionIsWildcard(*query, pos);
    session->Dist(samples_, pos, &probs_);
    const size_t d = model_->DomainSize(pos);
    for (size_t r = 0; r < chunk; ++r) {
      float* row = probs_.Row(r);
      if (!alive[r]) {
        samples_.At(r, pos) =
            query ? model_->FallbackCode(*query, pos) : 0;
        continue;
      }
      if (constrained) {
        const double mass =
            model_->MaskProbsToRegion(*query, samples_.Row(r), pos, row);
        if (!(mass > 0.0) || !std::isfinite(mass)) {
          (*weights)[r] = 0.0;
          alive[r] = 0;
          samples_.At(r, pos) = model_->FallbackCode(*query, pos);
          continue;
        }
        (*weights)[r] *= std::min(mass, 1.0);
      }
      samples_.At(r, pos) = static_cast<int32_t>(rng_.Categorical(row, d));
    }
  }

  // Emit in table order (sub-column layouts re-join here).
  tuples->Resize(chunk, model_->num_table_columns());
  for (size_t r = 0; r < chunk; ++r) {
    model_->DecodeToTableRow(samples_.Row(r), tuples->Row(r));
  }
}

void TupleGenerator::DrawUnconditional(size_t count, IntMatrix* tuples) {
  const size_t n = model_->num_table_columns();
  tuples->Resize(count, n);
  IntMatrix chunk_tuples;
  std::vector<double> chunk_weights;
  size_t done = 0;
  while (done < count) {
    const size_t chunk = std::min(kChunk, count - done);
    WalkChunk(nullptr, chunk, &chunk_tuples, &chunk_weights);
    for (size_t r = 0; r < chunk; ++r) {
      std::copy(chunk_tuples.Row(r), chunk_tuples.Row(r) + n,
                tuples->Row(done + r));
    }
    done += chunk;
  }
}

void TupleGenerator::DrawWeighted(const Query& query, size_t count,
                                  IntMatrix* tuples,
                                  std::vector<double>* weights) {
  NARU_CHECK(query.num_columns() == model_->num_table_columns());
  const size_t n = model_->num_table_columns();
  tuples->Resize(count, n);
  weights->assign(count, 0.0);
  if (query.HasEmptyRegion()) return;

  IntMatrix chunk_tuples;
  std::vector<double> chunk_weights;
  size_t done = 0;
  while (done < count) {
    const size_t chunk = std::min(kChunk, count - done);
    WalkChunk(&query, chunk, &chunk_tuples, &chunk_weights);
    for (size_t r = 0; r < chunk; ++r) {
      std::copy(chunk_tuples.Row(r), chunk_tuples.Row(r) + n,
                tuples->Row(done + r));
      (*weights)[done + r] = chunk_weights[r];
    }
    done += chunk;
  }
}

bool RowSatisfies(const Query& query, const int32_t* row) {
  for (size_t c = 0; c < query.num_columns(); ++c) {
    const ValueSet& region = query.region(c);
    if (!region.IsAll() && !region.Contains(row[c])) return false;
  }
  return true;
}

double RejectionSelectivity(ConditionalModel* model, const Query& query,
                            size_t num_samples, uint64_t seed) {
  NARU_CHECK(num_samples > 0);
  if (query.HasEmptyRegion()) return 0.0;
  TupleGenerator gen(model, seed);
  IntMatrix tuples;
  size_t hits = 0;
  size_t done = 0;
  while (done < num_samples) {
    const size_t chunk = std::min(kChunk, num_samples - done);
    gen.DrawUnconditional(chunk, &tuples);
    for (size_t r = 0; r < chunk; ++r) {
      if (RowSatisfies(query, tuples.Row(r))) ++hits;
    }
    done += chunk;
  }
  return static_cast<double>(hits) / static_cast<double>(num_samples);
}

IndependenceMhChain::IndependenceMhChain(ConditionalModel* model,
                                         const Query& query, uint64_t seed)
    : gen_(model, seed), query_(&query), rng_(seed ^ 0x5bf0a8b1u) {
  NARU_CHECK(!query.HasEmptyRegion());
  state_.resize(model->num_table_columns(), 0);
  // Initialize from the first positive-weight proposal.
  for (int attempt = 0; attempt < 64 && state_weight_ <= 0; ++attempt) {
    gen_.WalkChunk(query_, kChunk, &prop_tuples_, &prop_weights_);
    for (size_t r = 0; r < kChunk; ++r) {
      if (prop_weights_[r] > 0) {
        std::copy(prop_tuples_.Row(r),
                  prop_tuples_.Row(r) + prop_tuples_.cols(), state_.begin());
        state_weight_ = prop_weights_[r];
        break;
      }
    }
  }
  NARU_CHECK(state_weight_ > 0);  // region has mass under the model
  buffer_pos_ = prop_tuples_.rows();  // discard the rest of the init chunk
}

void IndependenceMhChain::Propose() {
  if (buffer_pos_ >= prop_tuples_.rows()) {
    gen_.WalkChunk(query_, kChunk, &prop_tuples_, &prop_weights_);
    buffer_pos_ = 0;
  }
  const size_t r = buffer_pos_++;
  ++proposals_;
  const double w = prop_weights_[r];
  if (w <= 0) return;  // reject
  // Hastings ratio for the independence proposal q(x) = P̂(x)/w(x) and
  // target ∝ P̂(x)·1[x∈R]: α = min(1, w' / w).
  if (w >= state_weight_ || rng_.UniformDouble() < w / state_weight_) {
    std::copy(prop_tuples_.Row(r), prop_tuples_.Row(r) + prop_tuples_.cols(),
              state_.begin());
    state_weight_ = w;
    ++accepts_;
  }
}

void IndependenceMhChain::Advance(size_t steps) {
  for (size_t i = 0; i < steps; ++i) Propose();
}

void IndependenceMhChain::Sample(size_t count, size_t thin,
                                 IntMatrix* tuples) {
  const size_t n = state_.size();
  tuples->Resize(count, n);
  for (size_t i = 0; i < count; ++i) {
    Advance(std::max<size_t>(thin, 1));
    std::copy(state_.begin(), state_.end(), tuples->Row(i));
  }
}

double ConditionalExpectation(
    ConditionalModel* model, const Query& query,
    const std::function<double(const int32_t*)>& g, size_t num_samples,
    uint64_t seed) {
  TupleGenerator gen(model, seed);
  IntMatrix tuples;
  std::vector<double> weights;
  gen.DrawWeighted(query, num_samples, &tuples, &weights);
  double num = 0, den = 0;
  for (size_t r = 0; r < num_samples; ++r) {
    if (weights[r] <= 0) continue;
    num += weights[r] * g(tuples.Row(r));
    den += weights[r];
  }
  return den > 0 ? num / den : 0.0;
}

}  // namespace naru
