#include "core/ensemble.h"

#include "util/string_util.h"

namespace naru {

MultiOrderEnsemble::MultiOrderEnsemble(const Table& table,
                                       MultiOrderConfig config) {
  NARU_CHECK(config.num_orders >= 1);
  const size_t n = table.num_columns();
  std::vector<size_t> table_domains(n);
  for (size_t c = 0; c < n; ++c) {
    table_domains[c] = table.column(c).DomainSize();
  }

  Rng order_rng(config.order_seed);
  members_.reserve(config.num_orders);
  for (size_t k = 0; k < config.num_orders; ++k) {
    std::vector<size_t> order;
    if (k == 0) {
      order.resize(n);
      for (size_t i = 0; i < n; ++i) order[i] = i;
    } else {
      order = OrderedModel::RandomOrder(n, &order_rng);
    }

    MadeModel::Config mcfg = config.model;
    mcfg.seed = config.model.seed + k;
    auto inner = std::make_unique<MadeModel>(
        OrderedModel::PermuteDomains(table_domains, order), mcfg);
    auto model =
        std::make_unique<OrderedModel>(std::move(inner), std::move(order));

    TrainerConfig tcfg = config.trainer;
    tcfg.shuffle_seed = config.trainer.shuffle_seed + k;
    Trainer(model.get(), tcfg).Train(table);

    NaruEstimatorConfig ecfg = config.estimator;
    ecfg.sampler_seed = config.estimator.sampler_seed + k;
    const size_t bytes = model->SizeBytes();
    size_bytes_ += bytes;
    auto est = std::make_unique<NaruEstimator>(
        model.get(), ecfg, bytes, StrFormat("NaruOrd%zu", k));
    members_.push_back(Member{std::move(model), std::move(est)});
  }
  name_ = StrFormat("Naru-%zuo-%zu", members_.size(),
                    config.estimator.num_samples);
}

double MultiOrderEnsemble::EstimateSelectivity(const Query& query) {
  double sum = 0;
  for (auto& m : members_) sum += m.estimator->EstimateSelectivity(query);
  return sum / static_cast<double>(members_.size());
}

void MultiOrderEnsemble::EstimateBatch(const std::vector<Query>& queries,
                                       std::vector<double>* out) {
  // Each member serves the whole batch through its engine; summing member
  // results in member order matches the sequential path bit for bit.
  out->assign(queries.size(), 0.0);
  std::vector<double> member_out;
  for (auto& m : members_) {
    m.estimator->EstimateBatch(queries, &member_out);
    for (size_t i = 0; i < queries.size(); ++i) (*out)[i] += member_out[i];
  }
  const double k = static_cast<double>(members_.size());
  for (double& v : *out) v /= k;
}

double MultiOrderEnsemble::MemberEstimate(size_t k, const Query& query) {
  NARU_CHECK(k < members_.size());
  return members_[k].estimator->EstimateSelectivity(query);
}

const std::vector<size_t>& MultiOrderEnsemble::member_order(size_t k) const {
  NARU_CHECK(k < members_.size());
  return members_[k].model->order();
}

}  // namespace naru
