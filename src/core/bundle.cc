#include "core/bundle.h"

#include <fstream>
#include <sstream>

#include "util/string_util.h"

namespace naru {

namespace {
constexpr char kMagicLine[] = "naru-bundle-v1";
}

Status SaveModelBundle(const std::string& path, MadeModel* model) {
  std::ofstream os(path);
  if (!os.good()) return Status::IOError("cannot open for write: " + path);
  const MadeModel::Config& cfg = model->config();
  os << kMagicLine << "\n";
  os << "columns " << model->num_columns() << "\n";
  os << "domains";
  for (size_t c = 0; c < model->num_columns(); ++c) {
    os << ' ' << model->DomainSize(c);
  }
  os << "\n";
  os << "hidden";
  for (size_t h : cfg.hidden_sizes) os << ' ' << h;
  os << "\n";
  os << "onehot_threshold " << cfg.encoder.onehot_threshold << "\n";
  os << "embed_dim " << cfg.encoder.embed_dim << "\n";
  os << "binary_for_large " << (cfg.encoder.binary_for_large ? 1 : 0)
     << "\n";
  os << "embedding_reuse " << (cfg.embedding_reuse ? 1 : 0) << "\n";
  os << "residual " << (cfg.residual ? 1 : 0) << "\n";
  os << "seed " << cfg.seed << "\n";
  if (!os.good()) return Status::IOError("manifest write failed: " + path);
  os.close();
  return model->Save(path + ".weights");
}

Result<std::unique_ptr<MadeModel>> LoadModelBundle(const std::string& path) {
  std::ifstream is(path);
  if (!is.good()) return Status::IOError("cannot open: " + path);
  std::string line;
  if (!std::getline(is, line) || line != kMagicLine) {
    return Status::InvalidArgument("not a naru bundle: " + path);
  }

  size_t columns = 0;
  std::vector<size_t> domains;
  MadeModel::Config cfg;
  cfg.hidden_sizes.clear();

  while (std::getline(is, line)) {
    std::istringstream ss(line);
    std::string key;
    ss >> key;
    if (key == "columns") {
      ss >> columns;
    } else if (key == "domains") {
      size_t d;
      while (ss >> d) domains.push_back(d);
    } else if (key == "hidden") {
      size_t h;
      while (ss >> h) cfg.hidden_sizes.push_back(h);
    } else if (key == "onehot_threshold") {
      ss >> cfg.encoder.onehot_threshold;
    } else if (key == "embed_dim") {
      ss >> cfg.encoder.embed_dim;
    } else if (key == "binary_for_large") {
      int v = 0;
      ss >> v;
      cfg.encoder.binary_for_large = v != 0;
    } else if (key == "embedding_reuse") {
      int v = 0;
      ss >> v;
      cfg.embedding_reuse = v != 0;
    } else if (key == "residual") {
      int v = 0;
      ss >> v;
      cfg.residual = v != 0;
    } else if (key == "seed") {
      ss >> cfg.seed;
    } else if (!key.empty()) {
      return Status::InvalidArgument("unknown bundle key: " + key);
    }
  }
  if (columns == 0 || domains.size() != columns) {
    return Status::InvalidArgument(
        StrFormat("bundle %s: domains (%zu) inconsistent with columns (%zu)",
                  path.c_str(), domains.size(), columns));
  }
  auto model = std::make_unique<MadeModel>(domains, cfg);
  NARU_RETURN_NOT_OK(model->Load(path + ".weights"));
  return model;
}

}  // namespace naru
