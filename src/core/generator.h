// Tuple generation and alternative Monte Carlo integrators (§5.1, §6.7.2,
// §8).
//
// Progressive sampling (Algorithm 1) is one member of a family of
// model-driven Monte Carlo schemes. This module provides the rest:
//
//  - Ancestral sampling: full tuples x ~ P̂ drawn by walking the chain-rule
//    conditionals (the §8 "sample in-distribution tuples from a compact
//    synopsis" primitive for approximate query processing).
//  - Rejection (indicator) estimation: sel ≈ mean 1[x ∈ R] over ancestral
//    samples — unbiased but useless for small regions; the natural third
//    point in the uniform-vs-progressive integrator ablation.
//  - Weighted in-region draws: the progressive walk returned as
//    (tuple, weight) pairs. The proposal density is q(x) = P̂(x) / w(x)
//    with w(x) the path weight, so these double as importance samples for
//    any conditional expectation under the model.
//  - Independence Metropolis-Hastings (the §6.7.2 pointer): a chain with
//    target ∝ P̂(x)·1[x ∈ R] and progressive draws as the independence
//    proposal. The acceptance ratio collapses to min(1, w'/w) — the path
//    weights are sufficient — giving asymptotically exact in-region
//    samples (progressive draws alone are q-biased; reweighting or MH
//    corrects them).
#pragma once

#include <functional>
#include <vector>

#include "core/conditional_model.h"
#include "query/query.h"
#include "util/random.h"

namespace naru {

/// Draws weighted in-region tuples and unconditional model samples by
/// walking the model's conditionals. All emitted tuples are in TABLE
/// column order regardless of the model's internal ordering.
class TupleGenerator {
 public:
  TupleGenerator(ConditionalModel* model, uint64_t seed = 11);

  /// `count` tuples x ~ P̂ (ancestral sampling; every region wildcard).
  void DrawUnconditional(size_t count, IntMatrix* tuples);

  /// `count` in-region tuples with their progressive path weights.
  /// Each weight is an unbiased estimate of P̂(X ∈ R); a path that hits a
  /// zero-mass conditional gets weight 0 (its tuple is an arbitrary filler
  /// and must be ignored by consumers). E_q[w] = P̂(R) (Theorem 1).
  void DrawWeighted(const Query& query, size_t count, IntMatrix* tuples,
                    std::vector<double>* weights);

  ConditionalModel* model() { return model_; }

 private:
  friend class IndependenceMhChain;

  /// Walks one chunk of paths; regions indexed by table column.
  void WalkChunk(const Query* query, size_t chunk, IntMatrix* tuples,
                 std::vector<double>* weights);

  ConditionalModel* model_;
  Rng rng_;
  IntMatrix samples_;  // model-position order workspace
  Matrix probs_;
};

/// Selectivity by the indicator method: mean of 1[x ∈ R] over ancestral
/// samples. Converges like p(1-p)/S — hopeless for low selectivities,
/// which is exactly what the integrator ablation demonstrates.
double RejectionSelectivity(ConditionalModel* model, const Query& query,
                            size_t num_samples, uint64_t seed = 13);

/// True when `row` (table order) satisfies every region of `query`.
bool RowSatisfies(const Query& query, const int32_t* row);

/// Independence Metropolis-Hastings over the query region (§6.7.2).
///
/// Target density π(x) ∝ P̂(x)·1[x ∈ R]; proposals are progressive draws
/// with proposal density q(x) = P̂(x)/w(x), so the Hastings ratio is
///   α = min(1, w(x') / w(x)).
/// After burn-in the chain states are distributed as P̂ conditioned on the
/// region — unweighted in-region tuples for AQP-style consumers.
class IndependenceMhChain {
 public:
  IndependenceMhChain(ConditionalModel* model, const Query& query,
                      uint64_t seed = 17);

  /// Advances the chain `steps` proposals (burn-in or thinning).
  void Advance(size_t steps);

  /// Emits `count` states, advancing `thin` proposals between emissions.
  /// Rows are table-order tuples.
  void Sample(size_t count, size_t thin, IntMatrix* tuples);

  /// Fraction of proposals accepted so far (diagnostic; independence MH
  /// with a well-matched proposal accepts most moves).
  double acceptance_rate() const {
    return proposals_ == 0
               ? 0.0
               : static_cast<double>(accepts_) / static_cast<double>(proposals_);
  }

 private:
  void Propose();

  TupleGenerator gen_;
  const Query* query_;
  Rng rng_;
  std::vector<int32_t> state_;  // table order
  double state_weight_ = 0;
  size_t accepts_ = 0;
  size_t proposals_ = 0;
  IntMatrix prop_tuples_;
  std::vector<double> prop_weights_;
  size_t buffer_pos_ = 0;  // next unread row of the proposal buffer
};

/// Self-normalized estimate of E[g(X) | X ∈ R] under the model:
/// Σ g(x_i) w_i / Σ w_i over weighted in-region draws. The workhorse of
/// the §8 approximate-query-processing application (AVG/SUM aggregates
/// under predicates without scanning).
double ConditionalExpectation(
    ConditionalModel* model, const Query& query,
    const std::function<double(const int32_t*)>& g, size_t num_samples,
    uint64_t seed = 19);

}  // namespace naru
