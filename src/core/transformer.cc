#include "core/transformer.h"

#include <cmath>
#include <cstring>

#include "nn/init.h"
#include "nn/loss.h"
#include "nn/serialize.h"
#include "tensor/gemm.h"
#include "tensor/ops.h"
#include "util/macros.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace naru {

TransformerModel::Block::Block(const std::string& name, size_t d_model,
                               size_t ffn_hidden, Rng* rng)
    : ln1(name + ".ln1", d_model),
      wq(name + ".wq", d_model, d_model, rng),
      wk(name + ".wk", d_model, d_model, rng),
      wv(name + ".wv", d_model, d_model, rng),
      wo(name + ".wo", d_model, d_model, rng),
      ln2(name + ".ln2", d_model),
      ffn(name + ".ffn", {d_model, ffn_hidden, d_model}, rng) {}

TransformerModel::TransformerModel(std::vector<size_t> domains, Config config)
    : domains_(std::move(domains)),
      config_(config),
      rng_(config.seed),
      pos_("tfm.pos", domains_.size(), config.d_model),
      sos_("tfm.sos", 1, config.d_model),
      lnf_("tfm.lnf", config.d_model) {
  NARU_CHECK(!domains_.empty());
  NARU_CHECK(config_.d_model % config_.num_heads == 0);
  NARU_CHECK(config_.num_layers > 0);
  const size_t n = domains_.size();
  const size_t e = config_.d_model;

  embeds_.reserve(n);
  for (size_t c = 0; c < n; ++c) {
    embeds_.push_back(std::make_unique<Embedding>(
        StrFormat("tfm.embed%zu", c), domains_[c], e, &rng_));
  }
  NormalInit(&pos_.value, 0.02, &rng_);
  NormalInit(&sos_.value, 0.02, &rng_);

  blocks_.reserve(config_.num_layers);
  for (size_t l = 0; l < config_.num_layers; ++l) {
    blocks_.emplace_back(StrFormat("tfm.block%zu", l), e,
                         config_.ffn_hidden, &rng_);
  }

  heads_.resize(n);
  if (!config_.embedding_reuse) {
    for (size_t c = 0; c < n; ++c) {
      heads_[c] = std::make_unique<Linear>(StrFormat("tfm.head%zu", c), e,
                                           domains_[c], &rng_);
    }
  }
  xs_.resize(config_.num_layers + 1);
}

namespace {

inline float DotSlice(const float* a, const float* b, size_t n) {
  float s = 0;
  for (size_t i = 0; i < n; ++i) s += a[i] * b[i];
  return s;
}

}  // namespace

void TransformerModel::AttendForward(const Matrix& qm, const Matrix& km,
                                     const Matrix& vm, Matrix* probs,
                                     Matrix* cat, size_t num_heads, size_t b,
                                     size_t h, size_t T) {
  const size_t dh = qm.cols() / num_heads;
  const size_t off = h * dh;
  const float scale = 1.0f / std::sqrt(static_cast<float>(dh));
  for (size_t i = 0; i < T; ++i) {
    float* prow = probs->Row((b * num_heads + h) * T + i);
    const float* qi = qm.Row(b * T + i) + off;
    // Causal scores over j <= i, softmax-stabilized.
    float maxv = -1e30f;
    for (size_t j = 0; j <= i; ++j) {
      const float s = scale * DotSlice(qi, km.Row(b * T + j) + off, dh);
      prow[j] = s;
      if (s > maxv) maxv = s;
    }
    float z = 0;
    for (size_t j = 0; j <= i; ++j) {
      prow[j] = std::exp(prow[j] - maxv);
      z += prow[j];
    }
    const float inv_z = 1.0f / z;
    for (size_t j = 0; j <= i; ++j) prow[j] *= inv_z;
    for (size_t j = i + 1; j < T; ++j) prow[j] = 0.0f;
    // Head output: weighted sum of V rows.
    float* out = cat->Row(b * T + i) + off;
    std::memset(out, 0, dh * sizeof(float));
    for (size_t j = 0; j <= i; ++j) {
      const float w = prow[j];
      const float* vj = vm.Row(b * T + j) + off;
      for (size_t d = 0; d < dh; ++d) out[d] += w * vj[d];
    }
  }
}

void TransformerModel::AttendBackwardOne(Block* blk, size_t b, size_t h,
                                         size_t T, const Matrix& dcat) {
  const size_t dh = config_.d_model / config_.num_heads;
  const size_t off = h * dh;
  const float scale = 1.0f / std::sqrt(static_cast<float>(dh));
  std::vector<float> ds(T);
  for (size_t i = 0; i < T; ++i) {
    const float* prow =
        blk->attn_probs.Row((b * config_.num_heads + h) * T + i);
    const float* doi = dcat.Row(b * T + i) + off;
    // dS_ij = <dO_i, V_j>; dV_j += P_ij dO_i.
    for (size_t j = 0; j <= i; ++j) {
      const float* vj = blk->v.Row(b * T + j) + off;
      float* dvj = dv_.Row(b * T + j) + off;
      const float p = prow[j];
      float s = 0;
      for (size_t d = 0; d < dh; ++d) {
        s += doi[d] * vj[d];
        dvj[d] += p * doi[d];
      }
      ds[j] = s;
    }
    // Softmax backward over the causal slice.
    float dot = 0;
    for (size_t j = 0; j <= i; ++j) dot += prow[j] * ds[j];
    // dQ_i += sum_j dS'_ij K_j * scale; dK_j += dS'_ij Q_i * scale.
    float* dqi = dq_.Row(b * T + i) + off;
    const float* qi = blk->q.Row(b * T + i) + off;
    for (size_t j = 0; j <= i; ++j) {
      const float g = prow[j] * (ds[j] - dot) * scale;
      const float* kj = blk->k.Row(b * T + j) + off;
      float* dkj = dk_.Row(b * T + j) + off;
      for (size_t d = 0; d < dh; ++d) {
        dqi[d] += g * kj[d];
        dkj[d] += g * qi[d];
      }
    }
  }
}

void TransformerModel::ForwardTrunk(const IntMatrix& codes, size_t seq_len,
                                    KernelKind kernel) {
  const size_t batch = codes.rows();
  const size_t T = seq_len;
  const size_t e = config_.d_model;
  NARU_CHECK(T >= 1 && T <= domains_.size());

  Matrix& x0 = xs_[0];
  x0.Resize(batch * T, e);
  for (size_t b = 0; b < batch; ++b) {
    for (size_t p = 0; p < T; ++p) {
      float* row = x0.Row(b * T + p);
      const float* src =
          p == 0 ? sos_.value.Row(0)
                 : embeds_[p - 1]->table().value.Row(
                       static_cast<size_t>(codes.At(b, p - 1)));
      const float* pe = pos_.value.Row(p);
      for (size_t d = 0; d < e; ++d) row[d] = src[d] + pe[d];
    }
  }

  for (size_t l = 0; l < blocks_.size(); ++l) {
    Block& blk = blocks_[l];
    const Matrix& x = xs_[l];
    blk.ln1.Forward(x, &blk.ln1_out);
    blk.wq.Forward(blk.ln1_out, &blk.q, kernel);
    blk.wk.Forward(blk.ln1_out, &blk.k, kernel);
    blk.wv.Forward(blk.ln1_out, &blk.v, kernel);
    blk.attn_probs.Resize(batch * config_.num_heads * T, T);
    blk.attn_cat.Resize(batch * T, e);
    ParallelFor(0, batch, [&](size_t lo, size_t hi) {
      for (size_t b = lo; b < hi; ++b) {
        for (size_t h = 0; h < config_.num_heads; ++h) {
          AttendForward(blk.q, blk.k, blk.v, &blk.attn_probs, &blk.attn_cat,
                        config_.num_heads, b, h, T);
        }
      }
    });
    blk.wo.Forward(blk.attn_cat, &blk.attn_proj, kernel);
    blk.res1.Resize(batch * T, e);
    std::memcpy(blk.res1.data(), x.data(), x.size() * sizeof(float));
    Axpy(blk.attn_proj, 1.0f, &blk.res1);
    blk.ln2.Forward(blk.res1, &blk.ln2_out);
    blk.ffn.Forward(blk.ln2_out, &blk.ffn_out, kernel);
    Matrix& next = xs_[l + 1];
    next.Resize(batch * T, e);
    std::memcpy(next.data(), blk.res1.data(),
                blk.res1.size() * sizeof(float));
    Axpy(blk.ffn_out, 1.0f, &next);
  }
  lnf_.Forward(xs_.back(), &y_);
}

void TransformerModel::ForwardTrunkWith(EvalContext* ctx,
                                        const IntMatrix& codes,
                                        size_t seq_len,
                                        KernelKind kernel) const {
  const size_t batch = codes.rows();
  const size_t T = seq_len;
  const size_t e = config_.d_model;
  NARU_CHECK(T >= 1 && T <= domains_.size());

  Matrix& x = ctx->x;
  x.Resize(batch * T, e);
  for (size_t b = 0; b < batch; ++b) {
    for (size_t p = 0; p < T; ++p) {
      float* row = x.Row(b * T + p);
      const float* src =
          p == 0 ? sos_.value.Row(0)
                 : embeds_[p - 1]->table().value.Row(
                       static_cast<size_t>(codes.At(b, p - 1)));
      const float* pe = pos_.value.Row(p);
      for (size_t d = 0; d < e; ++d) row[d] = src[d] + pe[d];
    }
  }

  for (const Block& blk : blocks_) {
    blk.ln1.Forward(x, &ctx->ln1_out);
    blk.wq.Forward(ctx->ln1_out, &ctx->q, kernel);
    blk.wk.Forward(ctx->ln1_out, &ctx->k, kernel);
    blk.wv.Forward(ctx->ln1_out, &ctx->v, kernel);
    ctx->attn_probs.Resize(batch * config_.num_heads * T, T);
    ctx->attn_cat.Resize(batch * T, e);
    ParallelFor(0, batch, [&](size_t lo, size_t hi) {
      for (size_t b = lo; b < hi; ++b) {
        for (size_t h = 0; h < config_.num_heads; ++h) {
          AttendForward(ctx->q, ctx->k, ctx->v, &ctx->attn_probs,
                        &ctx->attn_cat, config_.num_heads, b, h, T);
        }
      }
    });
    blk.wo.Forward(ctx->attn_cat, &ctx->attn_proj, kernel);
    ctx->res1.Resize(batch * T, e);
    std::memcpy(ctx->res1.data(), x.data(), x.size() * sizeof(float));
    Axpy(ctx->attn_proj, 1.0f, &ctx->res1);
    blk.ln2.Forward(ctx->res1, &ctx->ln2_out);
    blk.ffn.ForwardInference(ctx->ln2_out, &ctx->ffn_out, kernel);
    // x <- res1 + ffn_out (x's storage is reused as the next block input).
    std::memcpy(x.data(), ctx->res1.data(), ctx->res1.size() * sizeof(float));
    Axpy(ctx->ffn_out, 1.0f, &x);
  }
  lnf_.Forward(x, &ctx->y);
}

void TransformerModel::HeadForward(size_t col, size_t batch, size_t seq_len,
                                   KernelKind kernel) {
  const size_t e = config_.d_model;
  ybuf_.Resize(batch, e);
  for (size_t b = 0; b < batch; ++b) {
    std::memcpy(ybuf_.Row(b), y_.Row(b * seq_len + col), e * sizeof(float));
  }
  if (config_.embedding_reuse) {
    // Tied logits stay fp32 (SIMD when enabled): the embedding table is
    // shared with the input encoding and is not quantized.
    GemmNT(ybuf_, embeds_[col]->table().value, &logits_,
           /*accumulate=*/false, kernel);
  } else {
    heads_[col]->Forward(ybuf_, &logits_, kernel);
  }
}

void TransformerModel::HeadForwardWith(EvalContext* ctx, size_t col,
                                       size_t batch, size_t seq_len,
                                       KernelKind kernel) const {
  const size_t e = config_.d_model;
  ctx->ybuf.Resize(batch, e);
  for (size_t b = 0; b < batch; ++b) {
    std::memcpy(ctx->ybuf.Row(b), ctx->y.Row(b * seq_len + col),
                e * sizeof(float));
  }
  if (config_.embedding_reuse) {
    // Tied logits stay fp32 (SIMD when enabled), as in HeadForward.
    GemmNT(ctx->ybuf, embeds_[col]->table().value, &ctx->logits,
           /*accumulate=*/false, kernel);
  } else {
    heads_[col]->Forward(ctx->ybuf, &ctx->logits, kernel);
  }
}

void TransformerModel::ConditionalDistWith(EvalContext* ctx,
                                           const IntMatrix& samples,
                                           size_t col, Matrix* probs) const {
  NARU_CHECK(col < domains_.size());
  const size_t T = col + 1;
  ForwardTrunkWith(ctx, samples, T, inference_kernel_);
  HeadForwardWith(ctx, col, samples.rows(), T, inference_kernel_);
  SoftmaxRows(ctx->logits, probs);
}

void TransformerModel::ConditionalDist(const IntMatrix& samples, size_t col,
                                       Matrix* probs) {
  ConditionalDistWith(&eval_, samples, col, probs);
}

namespace {
// Sampling cursor with private scratch: distinct sessions evaluate the
// (read-only) weights concurrently.
class TransformerSession : public SamplingSession {
 public:
  explicit TransformerSession(const TransformerModel* model)
      : model_(model) {}
  void Dist(const IntMatrix& samples, size_t col, Matrix* probs) override {
    model_->ConditionalDistWith(&ctx_, samples, col, probs);
  }

 private:
  const TransformerModel* model_;
  TransformerModel::EvalContext ctx_;
};
}  // namespace

std::unique_ptr<SamplingSession> TransformerModel::StartSession(size_t batch) {
  (void)batch;  // contexts size themselves on first Dist
  return std::make_unique<TransformerSession>(this);
}

void TransformerModel::SetInferenceKernel(KernelKind kernel) {
  inference_kernel_ = kernel;
  if (kernel != KernelKind::kSimdInt8) return;
  for (auto& blk : blocks_) {
    blk.wq.PrepareInt8Inference();
    blk.wk.PrepareInt8Inference();
    blk.wv.PrepareInt8Inference();
    blk.wo.PrepareInt8Inference();
    blk.ffn.PrepareInt8Inference();
  }
  for (auto& h : heads_) {
    if (h) h->PrepareInt8Inference();
  }
}

void TransformerModel::LogProbRows(const IntMatrix& tuples,
                                   std::vector<double>* out_nats) {
  const size_t batch = tuples.rows();
  const size_t n = domains_.size();
  out_nats->assign(batch, 0.0);
  ForwardTrunkWith(&eval_, tuples, n, inference_kernel_);
  for (size_t c = 0; c < n; ++c) {
    HeadForwardWith(&eval_, c, batch, n, inference_kernel_);
    for (size_t b = 0; b < batch; ++b) {
      const float* row = eval_.logits.Row(b);
      const double lse = LogSumExpSlice(row, 0, domains_[c]);
      (*out_nats)[b] += row[tuples.At(b, c)] - lse;
    }
  }
}

double TransformerModel::ForwardBackward(const IntMatrix& codes) {
  const size_t batch = codes.rows();
  const size_t n = domains_.size();
  const size_t e = config_.d_model;
  NARU_CHECK(codes.cols() == n);
  // Training is pinned to the scalar reference kernel.
  ForwardTrunk(codes, n, KernelKind::kScalar);

  // Heads + loss; dy_ collects gradients w.r.t. y_.
  const float gscale = 1.0f / static_cast<float>(batch);
  dy_.Resize(batch * n, e);
  dy_.Zero();
  targets_.resize(batch);
  double total_nll = 0;
  for (size_t c = 0; c < n; ++c) {
    HeadForward(c, batch, n, KernelKind::kScalar);
    for (size_t b = 0; b < batch; ++b) targets_[b] = codes.At(b, c);
    dlogits_.Resize(batch, domains_[c]);
    dlogits_.Zero();
    total_nll += SoftmaxCrossEntropySlice(logits_, 0, domains_[c],
                                          targets_.data(), gscale, &dlogits_);
    if (config_.embedding_reuse) {
      GemmTN(dlogits_, ybuf_, &embeds_[c]->table().grad, /*accumulate=*/true);
      GemmNN(dlogits_, embeds_[c]->table().value, &dybuf_);
    } else {
      heads_[c]->Backward(ybuf_, dlogits_, &dybuf_);
    }
    for (size_t b = 0; b < batch; ++b) {
      float* dst = dy_.Row(b * n + c);
      const float* src = dybuf_.Row(b);
      for (size_t d = 0; d < e; ++d) dst[d] += src[d];
    }
  }

  // Trunk backward.
  lnf_.Backward(xs_.back(), dy_, &dx_);
  for (size_t li = blocks_.size(); li-- > 0;) {
    Block& blk = blocks_[li];
    // xs_[li+1] = res1 + ffn(ln2(res1)); dx_ holds d xs_[li+1].
    blk.ffn.Backward(dx_, &dtmp_);                  // d ln2_out
    blk.ln2.Backward(blk.res1, dtmp_, &dtmp2_);     // d res1 via ffn path
    dres1_.Resize(dx_.rows(), e);
    std::memcpy(dres1_.data(), dx_.data(), dx_.size() * sizeof(float));
    Axpy(dtmp2_, 1.0f, &dres1_);
    // res1 = xs_[li] + wo(attn_cat).
    blk.wo.Backward(blk.attn_cat, dres1_, &dcat_);
    dq_.Resize(dcat_.rows(), e);
    dk_.Resize(dcat_.rows(), e);
    dv_.Resize(dcat_.rows(), e);
    dq_.Zero();
    dk_.Zero();
    dv_.Zero();
    ParallelFor(0, batch, [&](size_t lo, size_t hi) {
      for (size_t b = lo; b < hi; ++b) {
        for (size_t h = 0; h < config_.num_heads; ++h) {
          AttendBackwardOne(&blk, b, h, n, dcat_);
        }
      }
    });
    // d ln1_out = dq Wq^T + dk Wk^T + dv Wv^T.
    blk.wq.Backward(blk.ln1_out, dq_, &dtmp_);
    blk.wk.Backward(blk.ln1_out, dk_, &dtmp2_);
    Axpy(dtmp2_, 1.0f, &dtmp_);
    blk.wv.Backward(blk.ln1_out, dv_, &dtmp2_);
    Axpy(dtmp2_, 1.0f, &dtmp_);
    blk.ln1.Backward(xs_[li], dtmp_, &dtmp2_);
    // d xs_[li] = d res1 (residual) + attention path.
    dx_ = dres1_;
    Axpy(dtmp2_, 1.0f, &dx_);
  }

  // Input gradients: positional, SOS, and value embeddings.
  for (size_t b = 0; b < batch; ++b) {
    for (size_t p = 0; p < n; ++p) {
      const float* g = dx_.Row(b * n + p);
      float* dpos = pos_.grad.Row(p);
      for (size_t d = 0; d < e; ++d) dpos[d] += g[d];
      float* demb =
          p == 0 ? sos_.grad.Row(0)
                 : embeds_[p - 1]->table().grad.Row(
                       static_cast<size_t>(codes.At(b, p - 1)));
      for (size_t d = 0; d < e; ++d) demb[d] += g[d];
    }
  }
  return total_nll;
}

Status TransformerModel::Save(const std::string& path) {
  return SaveParameters(path, Parameters());
}

Status TransformerModel::Load(const std::string& path) {
  return LoadParameters(path, Parameters());
}

std::vector<Parameter*> TransformerModel::Parameters() {
  std::vector<Parameter*> out;
  for (auto& emb : embeds_) emb->CollectParameters(&out);
  out.push_back(&pos_);
  out.push_back(&sos_);
  for (auto& blk : blocks_) {
    blk.ln1.CollectParameters(&out);
    blk.wq.CollectParameters(&out);
    blk.wk.CollectParameters(&out);
    blk.wv.CollectParameters(&out);
    blk.wo.CollectParameters(&out);
    blk.ln2.CollectParameters(&out);
    blk.ffn.CollectParameters(&out);
  }
  lnf_.CollectParameters(&out);
  for (auto& h : heads_) {
    if (h) h->CollectParameters(&out);
  }
  return out;
}

}  // namespace naru
