// Training-side interface of Naru models.
//
// ConditionalModel is the *query-side* contract (what progressive sampling
// needs); TrainableModel is the *training-side* contract (what the Trainer
// and the serialization bundle need). Every learned architecture — MADE
// (arch B), the per-column nets (arch A), the causal Transformer — derives
// from both; the scanning Oracle derives only from ConditionalModel since
// it has nothing to train.
#pragma once

#include <cstddef>
#include <vector>

#include "nn/parameter.h"
#include "tensor/matrix.h"

namespace naru {

class TrainableModel {
 public:
  virtual ~TrainableModel() = default;

  virtual size_t num_columns() const = 0;

  /// Width of the batches ForwardBackward accepts. Equals num_columns()
  /// except for models with an internal sub-column layout (FactorizedModel
  /// accepts TABLE rows and splits them itself).
  virtual size_t num_input_columns() const { return num_columns(); }

  /// Fused forward/backward over a batch of full dictionary-code tuples.
  /// Accumulates parameter gradients (mean-scaled over the batch) and
  /// returns the batch's summed negative log-likelihood in nats.
  virtual double ForwardBackward(const IntMatrix& codes) = 0;

  /// All trainable parameters, for optimizer registration and (de)serialization.
  virtual std::vector<Parameter*> Parameters() = 0;

  /// float32 model size in bytes (the paper's reported estimator size).
  virtual size_t SizeBytes() { return ParameterBytes(Parameters()); }
};

}  // namespace naru
