#include "core/sampler.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace naru {

ProgressiveSampler::ProgressiveSampler(ConditionalModel* model,
                                       ProgressiveSamplerConfig cfg)
    : model_(model), cfg_(cfg), rng_(cfg.seed) {
  NARU_CHECK(cfg_.num_samples >= 1);
  NARU_CHECK(cfg_.max_batch >= 1);
}

double ProgressiveSampler::EstimateSelectivity(const Query& query) {
  return EstimateWithStdError(query, nullptr);
}

double ProgressiveSampler::EstimateWithStdError(const Query& query,
                                                double* std_error) {
  NARU_CHECK(query.num_columns() == model_->num_table_columns());
  if (std_error != nullptr) *std_error = 0.0;
  if (query.HasEmptyRegion()) return 0.0;

  // Last constrained *model position* (not table column): permuted models
  // serve table columns out of order and factorized models subdivide them,
  // so the trailing-wildcard early exit must respect the model's own walk
  // order.
  int last_col = -1;
  for (size_t i = 0; i < model_->num_columns(); ++i) {
    if (!model_->PositionIsWildcard(query, i)) {
      last_col = static_cast<int>(i);
    }
  }
  if (last_col < 0 && !cfg_.uniform_region) return 1.0;  // all wildcards

  double weight_sum = 0;
  double weight_sq_sum = 0;
  size_t remaining = cfg_.num_samples;
  while (remaining > 0) {
    const size_t chunk = std::min(remaining, cfg_.max_batch);
    weight_sum += cfg_.uniform_region
                      ? UniformChunkWeightSum(query, chunk)
                      : ChunkWeightSum(query, chunk, last_col,
                                       &weight_sq_sum);
    remaining -= chunk;
  }
  const double s = static_cast<double>(cfg_.num_samples);
  const double mean = weight_sum / s;
  if (std_error != nullptr && !cfg_.uniform_region && cfg_.num_samples > 1) {
    // Unbiased sample variance of the path weights.
    const double var =
        std::max(0.0, (weight_sq_sum - s * mean * mean) / (s - 1.0));
    *std_error = std::sqrt(var / s);
  }
  return mean;
}

double ProgressiveSampler::ChunkWeightSum(const Query& query, size_t chunk,
                                          int last_col,
                                          double* weight_sq_sum) {
  const size_t n = model_->num_columns();
  samples_.Resize(chunk, n);
  samples_.Fill(0);
  std::vector<double> weights(chunk, 1.0);
  std::vector<uint8_t> alive(chunk, 1);

  auto session = model_->StartSession(chunk);
  for (size_t col = 0; col <= static_cast<size_t>(last_col); ++col) {
    const bool wildcard = model_->PositionIsWildcard(query, col);
    session->Dist(samples_, col, &probs_);
    const size_t d = model_->DomainSize(col);
    NARU_CHECK(probs_.rows() == chunk && probs_.cols() == d);
    for (size_t r = 0; r < chunk; ++r) {
      float* row = probs_.Row(r);
      if (!alive[r]) {
        // Dead paths keep a valid (but irrelevant) prefix so stateful
        // sessions stay well-defined.
        samples_.At(r, col) = model_->FallbackCode(query, col);
        continue;
      }
      double mass;
      if (wildcard) {
        mass = 1.0;  // wildcard position: P(X ∈ full domain) is exactly 1
      } else {
        // Per-path mask: the model zeroes entries outside the allowed set
        // given this path's sampled prefix (Alg. 1 lines 12-14).
        mass = model_->MaskProbsToRegion(query, samples_.Row(r), col, row);
      }
      if (!(mass > 0.0) || !std::isfinite(mass)) {
        weights[r] = 0.0;
        alive[r] = 0;
        samples_.At(r, col) = model_->FallbackCode(query, col);
        continue;
      }
      weights[r] *= std::min(mass, 1.0);
      // Draw from the truncated, renormalized conditional (the row has
      // been zeroed outside the region; Categorical renormalizes).
      const size_t v = rng_.Categorical(row, d);
      samples_.At(r, col) = static_cast<int32_t>(v);
    }
  }

  double sum = 0;
  for (double w : weights) {
    sum += w;
    *weight_sq_sum += w * w;
  }
  return sum;
}

double ProgressiveSampler::UniformChunkWeightSum(const Query& query,
                                                 size_t chunk) {
  // The uniform-region strawman exists only for the §5.1 ablation and is
  // not generalized to factorized position layouts.
  NARU_CHECK(model_->num_columns() == model_->num_table_columns());
  const size_t n = model_->num_columns();
  samples_.Resize(chunk, n);
  samples_.Fill(0);
  std::vector<double> weights(chunk, 1.0);

  // First materialize uniform draws from the full region R_1 x ... x R_n,
  // then weight each point by |R| · P̂(x) (naive Monte Carlo integration).
  auto session = model_->StartSession(chunk);
  for (size_t col = 0; col < n; ++col) {
    const ValueSet& region = query.region(model_->TableColumnOf(col));
    const size_t count = region.Count();
    NARU_CHECK(count > 0);
    session->Dist(samples_, col, &probs_);
    for (size_t r = 0; r < chunk; ++r) {
      const int32_t v = region.NthCode(rng_.UniformInt(count));
      const double p = static_cast<double>(
          probs_.At(r, static_cast<size_t>(v)));
      weights[r] *= p * static_cast<double>(count);
      samples_.At(r, col) = v;
    }
  }

  double sum = 0;
  for (double w : weights) sum += w;
  return sum;
}

}  // namespace naru
