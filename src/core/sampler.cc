#include "core/sampler.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <vector>

namespace naru {

std::unique_ptr<SamplerWorkspace> SamplerWorkspacePool::Acquire() {
  {
    MutexLock lock(&mu_);
    if (!free_.empty()) {
      auto ws = std::move(free_.back());
      free_.pop_back();
      return ws;
    }
    ++created_;
  }
  return std::make_unique<SamplerWorkspace>();
}

void SamplerWorkspacePool::Release(std::unique_ptr<SamplerWorkspace> ws) {
  if (ws == nullptr) return;
  MutexLock lock(&mu_);
  free_.push_back(std::move(ws));
}

size_t SamplerWorkspacePool::total_created() const {
  MutexLock lock(&mu_);
  return created_;
}

size_t SamplerWorkspacePool::available() const {
  MutexLock lock(&mu_);
  return free_.size();
}

void SamplerColumnStep(const ConditionalModel* model, const Query& query,
                       size_t col, bool wildcard,
                       const SamplerRowBlock& block, Rng* rng) {
  const size_t d = block.probs->cols();
  for (size_t r = 0; r < block.rows; ++r) {
    const size_t row_index = block.row_offset + r;
    float* row = block.probs->Row(row_index);
    if (!block.alive[r]) {
      // Dead paths keep a valid (but irrelevant) prefix so stateful
      // sessions stay well-defined.
      block.samples->At(row_index, col) = model->FallbackCode(query, col);
      continue;
    }
    double mass;
    if (wildcard) {
      mass = 1.0;  // wildcard position: P(X ∈ full domain) is exactly 1
    } else {
      // Per-path mask: the model zeroes entries outside the allowed set
      // given this path's sampled prefix (Alg. 1 lines 12-14).
      mass = model->MaskProbsToRegion(query, block.samples->Row(row_index),
                                      col, row);
    }
    if (!(mass > 0.0) || !std::isfinite(mass)) {
      block.weights[r] = 0.0;
      block.alive[r] = 0;
      block.samples->At(row_index, col) = model->FallbackCode(query, col);
      continue;
    }
    block.weights[r] *= std::min(mass, 1.0);
    // Draw from the truncated, renormalized conditional (the row has
    // been zeroed outside the region; Categorical renormalizes).
    const size_t v = rng->Categorical(row, d);
    block.samples->At(row_index, col) = static_cast<int32_t>(v);
  }
}

uint64_t SamplerShardSeed(uint64_t seed, size_t shard) {
  // splitmix64 finalizer over (seed, shard): adjacent shards land in
  // uncorrelated regions of the xoshiro seed space.
  uint64_t z = seed + 0x9E3779B97F4A7C15ULL * (static_cast<uint64_t>(shard) + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

size_t SamplerNumShards(size_t num_samples, size_t shard_size) {
  return (num_samples + shard_size - 1) / shard_size;
}

ProgressiveSampler::ProgressiveSampler(ConditionalModel* model,
                                       ProgressiveSamplerConfig cfg,
                                       SamplerWorkspacePool* workspaces)
    : model_(model),
      cfg_(cfg),
      workspaces_(workspaces != nullptr ? workspaces : &own_workspaces_) {
  NARU_CHECK(cfg_.num_samples >= 1);
  NARU_CHECK(cfg_.shard_size >= 1);
}

uint64_t ProgressiveSampler::ShardSeed(uint64_t seed, size_t shard) {
  return SamplerShardSeed(seed, shard);
}

size_t ProgressiveSampler::NumShards() const {
  return SamplerNumShards(cfg_.num_samples, cfg_.shard_size);
}

double ProgressiveSampler::EstimateSelectivity(const Query& query) {
  return EstimateWithStdError(query, nullptr);
}

int ProgressiveSampler::LastConstrainedPosition(const Query& query) const {
  // Last constrained *model position* (not table column): permuted models
  // serve table columns out of order and factorized models subdivide them,
  // so the trailing-wildcard early exit must respect the model's own walk
  // order.
  int last_col = -1;
  for (size_t i = 0; i < model_->num_columns(); ++i) {
    if (!model_->PositionIsWildcard(query, i)) {
      last_col = static_cast<int>(i);
    }
  }
  return last_col;
}

ProgressiveSampler::Path ProgressiveSampler::Classify(
    const Query& query) const {
  if (query.HasEmptyRegion()) return Path::kEmpty;
  // The uniform-region strawman integrates over the full region and takes
  // none of the exact shortcuts.
  if (cfg_.uniform_region) return Path::kSampled;
  const int last_col = LastConstrainedPosition(query);
  if (last_col < 0) return Path::kAllWildcard;
  if (last_col == 0) return Path::kLeadingOnly;
  return Path::kSampled;
}

double ProgressiveSampler::EstimateWithStdError(const Query& query,
                                                double* std_error) {
  return EstimateWithOptions(query, std_error, RunOptions{});
}

double ProgressiveSampler::LeadingOnlyMass(const Query& query) {
  // Position 0 has no prefix, so one 1-row session step yields the exact
  // contained mass P̂(X_0 ∈ R_0) — identical to what any sample path would
  // multiply in, with zero Monte Carlo variance.
  auto session = model_->StartSession(1);
  IntMatrix dummy(1, model_->num_columns());
  dummy.Fill(0);
  Matrix probs;
  session->Dist(dummy, 0, &probs);
  NARU_CHECK(probs.rows() == 1 && probs.cols() == model_->DomainSize(0));
  const double mass =
      model_->MaskProbsToRegion(query, dummy.Row(0), 0, probs.Row(0));
  if (!(mass > 0.0) || !std::isfinite(mass)) return 0.0;
  return std::min(mass, 1.0);
}

double ProgressiveSampler::EstimateWithOptions(const Query& query,
                                               double* std_error,
                                               const RunOptions& options) {
  const size_t parallelism =
      options.parallelism != 0 ? options.parallelism : cfg_.parallelism;
  SamplerWorkspacePool* workspaces =
      options.workspaces != nullptr ? options.workspaces : workspaces_;
  const size_t num_samples =
      options.num_samples != 0 ? options.num_samples : cfg_.num_samples;
  NARU_CHECK(query.num_columns() == model_->num_table_columns());
  if (std_error != nullptr) *std_error = 0.0;
  switch (Classify(query)) {
    case Path::kEmpty:
      return 0.0;
    case Path::kAllWildcard:
      return 1.0;
    case Path::kLeadingOnly:
      return LeadingOnlyMass(query);
    case Path::kSampled:
      break;
  }
  const int last_col = LastConstrainedPosition(query);

  const size_t num_shards = SamplerNumShards(num_samples, cfg_.shard_size);
  std::vector<double> shard_w(num_shards, 0.0);
  std::vector<double> shard_w2(num_shards, 0.0);

  // Shared mid-walk abandonment flag: the first shard to observe
  // `options.deadline` expired (between columns, never inside a kernel)
  // sets it, and every other shard bails at its next column boundary.
  // Relaxed order at every touch — the flag is monotonic (false -> true)
  // and publishes nothing: an abandoned walk's partial sums are
  // discarded below, and completed shard sums are published by the
  // thread pool's completion edge, not by this flag.
  std::atomic<bool> walk_abandoned{false};
  auto run_shard = [&](size_t k) {
    if (walk_abandoned.load(std::memory_order_relaxed)) return;
    const size_t lo = k * cfg_.shard_size;
    const size_t rows = std::min(cfg_.shard_size, num_samples - lo);
    Rng rng(ShardSeed(cfg_.seed, k));
    WorkspaceLease ws(workspaces);
    shard_w[k] = cfg_.uniform_region
                     ? UniformShardWeightSum(query, rows, &rng, ws.get())
                     : ShardWeightSum(query, rows, last_col, &rng, ws.get(),
                                      &shard_w2[k], options.deadline,
                                      &walk_abandoned);
  };

  // The model's kernel-level parallelism (gemm) is suppressed inside shard
  // execution whenever shard-level parallelism is available, so thread
  // accounting stays honest: "parallelism 1" on a concurrent-capable model
  // really runs on one thread.
  const bool concurrent_ok = model_->SupportsConcurrentSampling();
  // A caller-established serial region wins over any parallelism setting:
  // whoever opened it (the serving engine's per-query workers, a bench's
  // sequential baseline) is accounting threads at a coarser grain.
  const bool parallel = concurrent_ok && parallelism != 1 &&
                        num_shards > 1 && !ScopedSerialRegion::Active();
  if (parallel) {
    ThreadPool* pool = options.thread_pool != nullptr ? options.thread_pool
                       : cfg_.thread_pool != nullptr  ? cfg_.thread_pool
                                                      : GlobalThreadPool();
    pool->ParallelFor(
        0, num_shards,
        [&](size_t lo, size_t hi) {
          ScopedSerialRegion serial;
          for (size_t k = lo; k < hi; ++k) run_shard(k);
        },
        /*min_chunk=*/1);
  } else if ((concurrent_ok && num_shards > 1) || parallelism == 1) {
    // Serial was chosen even though parallelism was available (an explicit
    // parallelism=1, or a caller's serial region): honest thread
    // accounting, kernels run inline.
    ScopedSerialRegion serial;
    for (size_t k = 0; k < num_shards; ++k) run_shard(k);
  } else {
    // No shard parallelism to trade on (a single shard, or a model
    // without concurrent sessions): keep the kernels' internal pool
    // parallelism — it is the only parallelism available.
    for (size_t k = 0; k < num_shards; ++k) run_shard(k);
  }

  if (walk_abandoned.load(std::memory_order_relaxed)) {
    // Partial shard sums are meaningless; the caller turns this into a
    // typed DEADLINE_EXCEEDED result. Reached only when the caller set a
    // deadline, so legacy callers never observe it.
    if (options.abandoned != nullptr) *options.abandoned = true;
    return std::numeric_limits<double>::quiet_NaN();
  }

  // Reduce in shard order: the sum is independent of execution order.
  double weight_sum = 0;
  double weight_sq_sum = 0;
  for (size_t k = 0; k < num_shards; ++k) {
    weight_sum += shard_w[k];
    weight_sq_sum += shard_w2[k];
  }
  const double s = static_cast<double>(num_samples);
  const double mean = weight_sum / s;
  if (std_error != nullptr && !cfg_.uniform_region && num_samples > 1) {
    // Unbiased sample variance of the path weights.
    const double var =
        std::max(0.0, (weight_sq_sum - s * mean * mean) / (s - 1.0));
    *std_error = std::sqrt(var / s);
  }
  return mean;
}

double ProgressiveSampler::ShardWeightSum(
    const Query& query, size_t rows, int last_col, Rng* rng,
    SamplerWorkspace* ws, double* weight_sq_sum,
    std::chrono::steady_clock::time_point deadline,
    std::atomic<bool>* abandoned) {
  const size_t n = model_->num_columns();
  const bool has_deadline = deadline != kNoDeadline;
  ws->samples.Resize(rows, n);
  ws->samples.Fill(0);
  ws->weights.assign(rows, 1.0);
  ws->alive.assign(rows, 1);

  auto session = model_->StartSession(rows);
  for (size_t col = 0; col <= static_cast<size_t>(last_col); ++col) {
    // Mid-walk deadline checkpoint: BETWEEN columns only, so a walk that
    // is not abandoned consumes exactly the draws and arithmetic of a
    // deadline-free walk (bit-identity). Expiry is the shared inclusive
    // predicate (util/deadline.h).
    if (has_deadline) {
      if (abandoned->load(std::memory_order_relaxed)) return 0.0;
      if (DeadlineExpired(deadline, std::chrono::steady_clock::now())) {
        abandoned->store(true, std::memory_order_relaxed);
        return 0.0;
      }
    }
    const bool wildcard = model_->PositionIsWildcard(query, col);
    session->Dist(ws->samples, col, &ws->probs);
    NARU_CHECK(ws->probs.rows() == rows &&
               ws->probs.cols() == model_->DomainSize(col));
    SamplerColumnStep(model_, query, col, wildcard,
                      SamplerRowBlock{&ws->samples, &ws->probs,
                                      ws->weights.data(), ws->alive.data(),
                                      /*row_offset=*/0, rows},
                      rng);
  }

  double sum = 0;
  for (size_t r = 0; r < rows; ++r) {
    const double w = ws->weights[r];
    sum += w;
    *weight_sq_sum += w * w;
  }
  return sum;
}

double ProgressiveSampler::UniformShardWeightSum(const Query& query,
                                                 size_t rows, Rng* rng,
                                                 SamplerWorkspace* ws) {
  // The uniform-region strawman exists only for the §5.1 ablation and is
  // not generalized to factorized position layouts.
  NARU_CHECK(model_->num_columns() == model_->num_table_columns());
  const size_t n = model_->num_columns();
  ws->samples.Resize(rows, n);
  ws->samples.Fill(0);
  ws->weights.assign(rows, 1.0);

  // First materialize uniform draws from the full region R_1 x ... x R_n,
  // then weight each point by |R| · P̂(x) (naive Monte Carlo integration).
  auto session = model_->StartSession(rows);
  for (size_t col = 0; col < n; ++col) {
    const ValueSet& region = query.region(model_->TableColumnOf(col));
    const size_t count = region.Count();
    NARU_CHECK(count > 0);
    session->Dist(ws->samples, col, &ws->probs);
    for (size_t r = 0; r < rows; ++r) {
      const int32_t v = region.NthCode(rng->UniformInt(count));
      const double p =
          static_cast<double>(ws->probs.At(r, static_cast<size_t>(v)));
      ws->weights[r] *= p * static_cast<double>(count);
      ws->samples.At(r, col) = v;
    }
  }

  double sum = 0;
  for (double w : ws->weights) sum += w;
  return sum;
}

}  // namespace naru
