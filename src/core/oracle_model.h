// Emulated perfect-accuracy "oracle" conditional model (§6.7).
//
// For small tables (Conviva-B: 10K x 100) the exact conditionals
// P(X_i | x_<i) can be computed by scanning the data, which isolates
// progressive-sampling error from model error. A smoothing knob mixes each
// conditional with the uniform distribution,
//     P'(v | prefix) = (1-λ) P_data(v | prefix) + λ / |A_i|,
// injecting a controllable artificial entropy gap (Figure 7);
// FindLambdaForGapBits inverts the (monotone) gap(λ) map by bisection.
//
// Sampling sessions group paths that share an identical sampled prefix, so
// matching-row lists are filtered once per distinct prefix instead of once
// per path; groups are disjoint row subsets, keeping each column's total
// filtering cost O(rows).
#pragma once

#include <memory>
#include <vector>

#include "core/conditional_model.h"
#include "data/table.h"

namespace naru {

class OracleModel : public ConditionalModel {
 public:
  /// The table must outlive the model. `smoothing_lambda` in [0, 1].
  explicit OracleModel(const Table* table, double smoothing_lambda = 0.0);

  size_t num_columns() const override { return table_->num_columns(); }
  size_t DomainSize(size_t col) const override {
    return table_->column(col).DomainSize();
  }

  /// Scan-based conditional (no incremental state; used by tests and by
  /// the default LogProbRows).
  void ConditionalDist(const IntMatrix& samples, size_t col,
                       Matrix* probs) override;

  std::unique_ptr<SamplingSession> StartSession(size_t batch) override;

  /// Sessions keep private path-group state and only read the table.
  bool SupportsConcurrentSampling() const override { return true; }

  double smoothing_lambda() const { return lambda_; }
  void set_smoothing_lambda(double lambda) { lambda_ = lambda; }

  /// Cross entropy H(P, P') in bits of the smoothed oracle against its own
  /// table (== H(P) at λ=0; grows with λ).
  double CrossEntropyBits() const;

  /// λ such that H(P, P'_λ) - H(P) ≈ target_gap_bits (bisection to `tol`
  /// bits). Returns 0 for target 0 and 1 when the target exceeds the
  /// maximum achievable gap.
  double FindLambdaForGapBits(double target_gap_bits,
                              double tol = 0.05) const;

  const Table& table() const { return *table_; }

 private:
  const Table* table_;
  double lambda_;
};

}  // namespace naru
