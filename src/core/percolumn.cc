#include "core/percolumn.h"

#include <cmath>

#include "nn/loss.h"
#include "nn/serialize.h"
#include "tensor/ops.h"
#include "util/string_util.h"

namespace naru {

PerColumnModel::PerColumnModel(std::vector<size_t> domains, Config config)
    : domains_(std::move(domains)),
      config_(std::move(config)),
      rng_(config_.seed),
      encoder_(domains_, config_.encoder, &rng_) {
  nets_.reserve(domains_.size());
  for (size_t c = 0; c < domains_.size(); ++c) {
    // Input: prefix encoding width + 1 bias slot.
    const size_t in_dim = encoder_.offset(c) + 1;
    std::vector<size_t> dims;
    dims.push_back(in_dim);
    for (size_t h : config_.hidden_sizes) dims.push_back(h);
    dims.push_back(domains_[c]);
    nets_.push_back(std::make_unique<Mlp>(StrFormat("colnet%zu", c), dims,
                                          &rng_));
  }
}

void PerColumnModel::BuildInput(const IntMatrix& codes, size_t col,
                                Matrix* x) {
  const size_t batch = codes.rows();
  const size_t width = encoder_.offset(col);
  // EncodeBatchPrefix writes into a full-width matrix; copy the prefix
  // slice and append the constant slot.
  encoder_.EncodeBatchPrefix(codes, col, &enc_);
  x->Resize(batch, width + 1);
  for (size_t r = 0; r < batch; ++r) {
    const float* src = enc_.Row(r);
    float* dst = x->Row(r);
    for (size_t j = 0; j < width; ++j) dst[j] = src[j];
    dst[width] = 1.0f;
  }
}

void PerColumnModel::ConditionalDist(const IntMatrix& samples, size_t col,
                                     Matrix* probs) {
  BuildInput(samples, col, &in_);
  nets_[col]->ForwardInference(in_, &logits_);
  SoftmaxRows(logits_, probs);
}

void PerColumnModel::LogProbRows(const IntMatrix& tuples,
                                 std::vector<double>* out_nats) {
  const size_t batch = tuples.rows();
  out_nats->assign(batch, 0.0);
  for (size_t c = 0; c < num_columns(); ++c) {
    BuildInput(tuples, c, &in_);
    nets_[c]->ForwardInference(in_, &logits_);
    for (size_t r = 0; r < batch; ++r) {
      const float* row = logits_.Row(r);
      const double log_z = LogSumExpSlice(row, 0, domains_[c]);
      (*out_nats)[r] +=
          static_cast<double>(row[tuples.At(r, c)]) - log_z;
    }
  }
}

double PerColumnModel::ForwardBackward(const IntMatrix& codes) {
  const size_t batch = codes.rows();
  const float grad_scale = 1.0f / static_cast<float>(batch);
  targets_.resize(batch);
  double total_nll = 0;
  for (size_t c = 0; c < num_columns(); ++c) {
    BuildInput(codes, c, &in_);
    nets_[c]->Forward(in_, &logits_);
    for (size_t r = 0; r < batch; ++r) targets_[r] = codes.At(r, c);
    dlogits_.Resize(logits_.rows(), logits_.cols());
    dlogits_.Zero();
    total_nll += SoftmaxCrossEntropySlice(logits_, 0, domains_[c],
                                          targets_.data(), grad_scale,
                                          &dlogits_);
    nets_[c]->Backward(dlogits_, &din_);
    // Scatter gradient into the embedding tables feeding the prefix.
    if (din_.cols() > 1) {
      // din_ includes the constant slot at the end; embeddings only occupy
      // the prefix columns. Reassemble a full-width gradient.
      Matrix full(batch, encoder_.total_width());
      full.Zero();
      const size_t width = encoder_.offset(c);
      for (size_t r = 0; r < batch; ++r) {
        const float* src = din_.Row(r);
        float* dst = full.Row(r);
        for (size_t j = 0; j < width; ++j) dst[j] = src[j];
      }
      encoder_.Backward(codes, full);
    }
  }
  return total_nll;
}

std::vector<Parameter*> PerColumnModel::Parameters() {
  std::vector<Parameter*> params;
  encoder_.CollectParameters(&params);
  for (auto& net : nets_) net->CollectParameters(&params);
  return params;
}

size_t PerColumnModel::SizeBytes() { return ParameterBytes(Parameters()); }

Status PerColumnModel::Save(const std::string& path) {
  return SaveParameters(path, Parameters());
}

Status PerColumnModel::Load(const std::string& path) {
  return LoadParameters(path, Parameters());
}

}  // namespace naru
