#include "core/naru_estimator.h"

#include <cmath>

#include "core/enumerator.h"
#include "serve/inference_engine.h"
#include "util/string_util.h"

namespace naru {

NaruEstimator::NaruEstimator(ConditionalModel* model,
                             NaruEstimatorConfig config,
                             size_t model_size_bytes, std::string name)
    : model_(model),
      config_(config),
      sampler_(model,
               ProgressiveSamplerConfig{
                   .num_samples = config.num_samples,
                   .shard_size = config.shard_size,
                   .seed = config.sampler_seed,
                   .uniform_region = config.uniform_region,
               }),
      model_size_bytes_(model_size_bytes),
      name_(name.empty() ? StrFormat("Naru-%zu", config.num_samples)
                         : std::move(name)) {}

NaruEstimator::~NaruEstimator() = default;

bool NaruEstimator::ShouldEnumerate(const Query& query) const {
  if (config_.enumeration_threshold == 0) return false;
  return query.Log10RegionSize() <=
         std::log10(static_cast<double>(config_.enumeration_threshold));
}

double NaruEstimator::EstimateSelectivity(const Query& query) {
  if (query.HasEmptyRegion()) return 0.0;
  if (ShouldEnumerate(query)) {
    return EnumerateSelectivity(model_, query);
  }
  return sampler_.EstimateSelectivity(query);
}

void NaruEstimator::InvalidateServingCaches() {
  // Enter the same call_once as EstimateBatch: a plain null-check here
  // would race with a concurrent first EstimateBatch constructing engine_.
  std::call_once(engine_once_,
                 [this] { engine_ = std::make_unique<InferenceEngine>(); });
  engine_->ClearCachesFor(model_);
}

void NaruEstimator::EstimateBatch(const std::vector<Query>& queries,
                                  std::vector<double>* out) {
  std::call_once(engine_once_,
                 [this] { engine_ = std::make_unique<InferenceEngine>(); });
  engine_->EstimateBatch(this, queries, out);
}

}  // namespace naru
