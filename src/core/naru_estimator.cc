#include "core/naru_estimator.h"

#include <cmath>
#include <limits>

#include "core/enumerator.h"
#include "serve/inference_engine.h"
#include "util/string_util.h"

namespace naru {

NaruEstimator::NaruEstimator(ConditionalModel* model,
                             NaruEstimatorConfig config,
                             size_t model_size_bytes, std::string name)
    : model_(model),
      config_(config),
      sampler_(model,
               ProgressiveSamplerConfig{
                   .num_samples = config.num_samples,
                   .shard_size = config.shard_size,
                   .seed = config.sampler_seed,
                   .uniform_region = config.uniform_region,
               }),
      model_size_bytes_(model_size_bytes),
      name_(name.empty() ? StrFormat("Naru-%zu", config.num_samples)
                         : std::move(name)) {
  // Model-wide: see NaruEstimatorConfig::kernel. Scalar is a real (re)set,
  // not a no-op, so a fresh estimator restores the reference path.
  model_->SetInferenceKernel(config_.kernel);
}

NaruEstimator::~NaruEstimator() = default;

bool NaruEstimator::ShouldEnumerate(const Query& query) const {
  if (config_.enumeration_threshold == 0) return false;
  return query.Log10RegionSize() <=
         std::log10(static_cast<double>(config_.enumeration_threshold));
}

EstimateResult NaruEstimator::Estimate(const Query& query,
                                       const EstimateOptions& options) {
  EstimateResult result;
  if (options.ExpiredAt(std::chrono::steady_clock::now())) {
    result.status =
        Status::DeadlineExceeded("deadline expired before dispatch");
    result.provenance = ResultProvenance::kShed;
    return result;
  }
  result.status = Status::OK();
  if (query.HasEmptyRegion()) {
    result.estimate = 0.0;
    result.provenance = ResultProvenance::kExact;
    return result;
  }
  if (ShouldEnumerate(query)) {
    // The deadline propagates into exact enumeration too: expiry is
    // re-checked between LogProbRows batches and the enumeration is
    // abandoned once it passes — the same typed DEADLINE_EXCEEDED as a
    // mid-walk abandonment (deadline-free requests pay no clock reads).
    bool enum_abandoned = false;
    result.estimate = EnumerateSelectivity(model_, query, /*batch=*/2048,
                                           options.deadline, &enum_abandoned);
    if (enum_abandoned) {
      result.estimate = std::numeric_limits<double>::quiet_NaN();
      result.status =
          Status::DeadlineExceeded("deadline expired mid-enumeration");
      result.provenance = ResultProvenance::kShed;
      return result;
    }
    result.provenance = ResultProvenance::kEnumerated;
    return result;
  }
  ProgressiveSampler::RunOptions run;
  run.num_samples = options.num_samples;  // 0 = the configured budget
  // Propagate the soft deadline into the walk: the sampler re-checks it
  // between column steps (same inclusive predicate as the dispatch-time
  // shed above) and abandons the walk once it expires. Deadline-free
  // requests (the default, and the bit-identity reference) never pay a
  // clock read.
  bool abandoned = false;
  run.deadline = options.deadline;
  run.abandoned = &abandoned;
  result.estimate =
      sampler_.EstimateWithOptions(query, &result.std_error, run);
  if (abandoned) {
    result.estimate = std::numeric_limits<double>::quiet_NaN();
    result.std_error = 0.0;
    result.status = Status::DeadlineExceeded("deadline expired mid-walk");
    result.provenance = ResultProvenance::kShed;
    return result;
  }
  // The sampler short-circuits all-wildcard and leading-only queries to
  // exact answers; label those honestly instead of claiming a walk.
  if (sampler_.Classify(query) == ProgressiveSampler::Path::kSampled) {
    result.provenance = ResultProvenance::kSampled;
    result.samples_used = options.EffectiveSamples(config_.num_samples);
  } else {
    result.provenance = ResultProvenance::kExact;
  }
  return result;
}

double NaruEstimator::EstimateSelectivity(const Query& query) {
  return Estimate(query).estimate;
}

void NaruEstimator::InvalidateServingCaches() {
  // Enter the same call_once as EstimateBatch: a plain null-check here
  // would race with a concurrent first EstimateBatch constructing engine_.
  std::call_once(engine_once_,
                 [this] { engine_ = std::make_unique<InferenceEngine>(); });
  engine_->ClearCachesFor(model_);
}

void NaruEstimator::EstimateBatch(const std::vector<Query>& queries,
                                  std::vector<double>* out) {
  std::call_once(engine_once_,
                 [this] { engine_ = std::make_unique<InferenceEngine>(); });
  engine_->EstimateBatch(this, queries, out);
}

}  // namespace naru
