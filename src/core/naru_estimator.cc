#include "core/naru_estimator.h"

#include <cmath>

#include "core/enumerator.h"
#include "util/string_util.h"

namespace naru {

NaruEstimator::NaruEstimator(ConditionalModel* model,
                             NaruEstimatorConfig config,
                             size_t model_size_bytes, std::string name)
    : model_(model),
      config_(config),
      sampler_(model,
               ProgressiveSamplerConfig{
                   .num_samples = config.num_samples,
                   .max_batch = 512,
                   .seed = config.sampler_seed,
                   .uniform_region = config.uniform_region,
               }),
      model_size_bytes_(model_size_bytes),
      name_(name.empty() ? StrFormat("Naru-%zu", config.num_samples)
                         : std::move(name)) {}

double NaruEstimator::EstimateSelectivity(const Query& query) {
  if (query.HasEmptyRegion()) return 0.0;
  if (config_.enumeration_threshold > 0) {
    const double log10_points = query.Log10RegionSize();
    if (log10_points <= std::log10(config_.enumeration_threshold)) {
      return EnumerateSelectivity(model_, query);
    }
  }
  return sampler_.EstimateSelectivity(query);
}

}  // namespace naru
