// Per-column input encoding strategies (§4.2).
//
// Small domains are one-hot encoded (indicator variables); large domains use
// a learnable embedding matrix of width h (default 64) that is also reused
// as the output decoder under "embedding reuse". A compact binary encoding
// (ceil(log2 |A|) bits) is available as a space-lean alternative for large
// domains when embedding reuse is disabled.
#pragma once

#include <memory>
#include <vector>

#include "nn/embedding.h"
#include "tensor/matrix.h"
#include "util/random.h"

namespace naru {

enum class ColEncoding { kOneHot, kEmbedding, kBinary };

struct EncoderConfig {
  /// Domains <= this are one-hot encoded (paper default 64).
  size_t onehot_threshold = 64;
  /// Embedding width h (paper default 64).
  size_t embed_dim = 64;
  /// Use binary instead of embedding encoding for large domains.
  bool binary_for_large = false;
};

/// Encodes batches of dictionary-code tuples into the model's input matrix
/// and owns the per-column embedding tables.
class InputEncoder {
 public:
  InputEncoder(const std::vector<size_t>& domains, const EncoderConfig& cfg,
               Rng* rng);

  size_t num_columns() const { return domains_.size(); }
  size_t total_width() const { return total_width_; }
  size_t domain(size_t col) const { return domains_[col]; }

  ColEncoding encoding(size_t col) const { return kinds_[col]; }
  /// Input width contributed by column `col`.
  size_t width(size_t col) const { return widths_[col]; }
  /// Offset of column `col`'s slice within the input row.
  size_t offset(size_t col) const { return offsets_[col]; }

  /// Fraction of the input width produced by one-hot slices (exact zeros
  /// except one 1 per encoded column). Drives the GEMM sparse-input hint
  /// for the first hidden layer: with mostly-one-hot inputs the zero-skip
  /// fast path pays; with embedding-dominated inputs it does not.
  double OneHotWidthFraction() const {
    if (total_width_ == 0) return 0.0;
    size_t w = 0;
    for (size_t c = 0; c < kinds_.size(); ++c) {
      if (kinds_[c] == ColEncoding::kOneHot) w += widths_[c];
    }
    return static_cast<double>(w) / static_cast<double>(total_width_);
  }

  /// Embedding table for `col` (nullptr when not embedding-encoded).
  Embedding* embedding(size_t col) { return embeddings_[col].get(); }
  const Embedding* embedding(size_t col) const {
    return embeddings_[col].get();
  }

  /// Encodes all columns of the batch into x (batch x total_width).
  void EncodeBatch(const IntMatrix& codes, Matrix* x) const;

  /// Encodes only columns < upto; remaining slices are zero. MADE's masks
  /// make the zeros irrelevant, but zeroing keeps inputs well-defined.
  void EncodeBatchPrefix(const IntMatrix& codes, size_t upto,
                         Matrix* x) const;

  /// Scatters input gradients into the embedding tables (one-hot and
  /// binary slices have no parameters).
  void Backward(const IntMatrix& codes, const Matrix& dx);

  void CollectParameters(std::vector<Parameter*>* out) {
    for (auto& e : embeddings_) {
      if (e) e->CollectParameters(out);
    }
  }

 private:
  void EncodeColumns(const IntMatrix& codes, size_t upto, Matrix* x) const;

  std::vector<size_t> domains_;
  std::vector<ColEncoding> kinds_;
  std::vector<size_t> widths_;
  std::vector<size_t> offsets_;
  std::vector<std::unique_ptr<Embedding>> embeddings_;
  size_t total_width_ = 0;
};

}  // namespace naru
