// Architecture A (§3.2): one compact network per column.
//
// Column i owns a small MLP whose input is the aggregated (concatenated)
// encodings of columns < i and whose output is the distribution
// P̂(X_i | x_<i). Unlike MADE (architecture B) there is no weight sharing
// across columns; autoregressiveness holds by construction because column
// i's net is only ever fed the prefix slice of the encoded input. The paper
// finds A slightly better in entropy gap at matched parameter count but
// ships B for speed (§4.3) — this class exists to reproduce that ablation.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/conditional_model.h"
#include "core/encoding.h"
#include "core/trainable_model.h"
#include "nn/mlp.h"
#include "util/status.h"

namespace naru {

class PerColumnModel : public ConditionalModel, public TrainableModel {
 public:
  struct Config {
    /// Hidden widths of every per-column net (two hidden layers default).
    std::vector<size_t> hidden_sizes = {64, 64};
    EncoderConfig encoder;
    uint64_t seed = 1;
  };

  PerColumnModel(std::vector<size_t> domains, Config config);

  size_t num_columns() const override { return domains_.size(); }
  size_t DomainSize(size_t col) const override { return domains_[col]; }
  void ConditionalDist(const IntMatrix& samples, size_t col,
                       Matrix* probs) override;
  void LogProbRows(const IntMatrix& tuples,
                   std::vector<double>* out_nats) override;

  /// Fused training step; accumulates gradients, returns summed NLL nats.
  double ForwardBackward(const IntMatrix& codes) override;

  std::vector<Parameter*> Parameters() override;
  size_t SizeBytes() override;

  /// Weight (de)serialization; the loading model must be constructed with
  /// the same domains and Config.
  Status Save(const std::string& path);
  Status Load(const std::string& path);

 private:
  /// Input view for column c: encoded columns < c plus a constant-1 slot
  /// (so column 0's "marginal net" still has an input).
  void BuildInput(const IntMatrix& codes, size_t col, Matrix* x);

  std::vector<size_t> domains_;
  Config config_;
  Rng rng_;
  InputEncoder encoder_;
  std::vector<std::unique_ptr<Mlp>> nets_;
  // Workspace.
  Matrix enc_;
  Matrix in_;
  Matrix logits_;
  Matrix dlogits_;
  Matrix din_;
  std::vector<int32_t> targets_;
};

}  // namespace naru
