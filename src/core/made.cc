#include "core/made.h"

#include <cmath>

#include "nn/loss.h"
#include "nn/serialize.h"
#include "tensor/gemm.h"
#include "tensor/ops.h"
#include "util/string_util.h"

namespace naru {

Matrix MadeModel::BuildMask(const std::vector<int>& in_deg,
                            const std::vector<int>& out_deg, bool strict) {
  Matrix mask(in_deg.size(), out_deg.size());
  for (size_t i = 0; i < in_deg.size(); ++i) {
    float* row = mask.Row(i);
    for (size_t j = 0; j < out_deg.size(); ++j) {
      const bool allowed =
          strict ? (out_deg[j] > in_deg[i]) : (out_deg[j] >= in_deg[i]);
      row[j] = allowed ? 1.0f : 0.0f;
    }
  }
  return mask;
}

MadeModel::MadeModel(std::vector<size_t> domains, Config config)
    : domains_(std::move(domains)),
      config_(std::move(config)),
      rng_(config_.seed),
      encoder_(domains_, config_.encoder, &rng_) {
  const size_t n = domains_.size();
  NARU_CHECK(n >= 1);

  // Input degrees: every input dimension carries its column index.
  input_degrees_.reserve(encoder_.total_width());
  for (size_t c = 0; c < n; ++c) {
    for (size_t k = 0; k < encoder_.width(c); ++k) {
      input_degrees_.push_back(static_cast<int>(c));
    }
  }

  // Hidden degrees cycle over {0 .. n-2}: degree d = "sees columns <= d".
  const int max_deg = n >= 2 ? static_cast<int>(n) - 1 : 1;
  std::vector<int> prev_deg = input_degrees_;
  bool prev_is_input = true;
  for (size_t l = 0; l < config_.hidden_sizes.size(); ++l) {
    const size_t width = config_.hidden_sizes[l];
    std::vector<int> deg(width);
    for (size_t k = 0; k < width; ++k) {
      deg[k] = static_cast<int>(k % static_cast<size_t>(max_deg));
    }
    // input->hidden needs "hidden_deg >= input_col"; hidden->hidden needs
    // "out_deg >= in_deg". Both are the non-strict comparison, but for the
    // input layer the degree means "is column c", which is compatible.
    Matrix mask = BuildMask(prev_deg, deg, /*strict=*/false);
    hidden_.emplace_back(StrFormat("made.h%zu", l), prev_deg.size(), width,
                         std::move(mask), &rng_);
    layer_degrees_.push_back(deg);
    prev_deg = std::move(deg);
    prev_is_input = false;
  }
  (void)prev_is_input;

  // Output heads: block i may only read units with degree < i, hence the
  // strict mask. Column 0's head sees nothing (bias-only marginal start);
  // that is intended: P(X_0) is learned through the bias + softmax.
  heads_.resize(n);
  for (size_t c = 0; c < n; ++c) {
    const bool reuse = config_.embedding_reuse &&
                       encoder_.encoding(c) == ColEncoding::kEmbedding;
    const size_t out_width =
        reuse ? config_.encoder.embed_dim : domains_[c];
    std::vector<int> out_deg(out_width, static_cast<int>(c));
    Matrix mask = BuildMask(prev_deg, out_deg, /*strict=*/true);
    heads_[c].reuse = reuse;
    heads_[c].fc = std::make_unique<MaskedLinear>(
        StrFormat("made.out%zu", c), prev_deg.size(), out_width,
        std::move(mask), &rng_);
  }
  eval_.acts.resize(hidden_.size());

  // With a mostly-one-hot input row the first layer's zero-skip fast path
  // pays (one nonzero per one-hot column); embedding-dominated inputs are
  // dense and run branch-free.
  input_hint_ = encoder_.OneHotWidthFraction() > 0.5 ? InputHint::kOneHot
                                                     : InputHint::kDense;
}

void MadeModel::SetInferenceKernel(KernelKind kernel) {
  inference_kernel_ = kernel;
  if (kernel == KernelKind::kSimdInt8) {
    for (auto& h : hidden_) h.PrepareInt8Inference();
    for (auto& head : heads_) head.fc->PrepareInt8Inference();
  }
}

bool MadeModel::HasSkip(size_t layer) const {
  return config_.residual && layer > 0 &&
         hidden_[layer].in_dim() == hidden_[layer].out_dim();
}

void MadeModel::ForwardTrunk(const IntMatrix& codes, size_t upto,
                             EvalContext* ctx, KernelKind kernel) const {
  if (ctx->acts.size() != hidden_.size()) ctx->acts.resize(hidden_.size());
  encoder_.EncodeBatchPrefix(codes, upto, &ctx->x);
  const Matrix* cur = &ctx->x;
  for (size_t l = 0; l < hidden_.size(); ++l) {
    // Only the encoded input is one-hot sparse; hidden activations are
    // dense post-ReLU.
    const InputHint hint = l == 0 ? input_hint_ : InputHint::kDense;
    hidden_[l].Forward(*cur, &ctx->acts[l], kernel, hint);
    if (HasSkip(l)) Axpy(*cur, 1.0f, &ctx->acts[l]);
    ReluForward(ctx->acts[l], &ctx->acts[l]);
    cur = &ctx->acts[l];
  }
}

void MadeModel::HeadForward(size_t col, EvalContext* ctx, Matrix* block,
                            KernelKind kernel) const {
  const Head& head = heads_[col];
  // Linear (no-hidden) MADE heads read the one-hot input directly.
  const InputHint hint = hidden_.empty() ? input_hint_ : InputHint::kDense;
  if (!head.reuse) {
    head.fc->Forward(final_hidden(*ctx), block, kernel, hint);
    return;
  }
  head.fc->Forward(final_hidden(*ctx), &ctx->head_tmp, kernel,
                   hint);  // (B x h)
  const Embedding* emb = encoder_.embedding(col);
  NARU_CHECK(emb != nullptr);
  // Embedding-reuse logits stay fp32 (SIMD when enabled): the table is
  // shared with the input encoding, so it is not quantized.
  GemmNT(ctx->head_tmp, emb->table().value, block, /*accumulate=*/false,
         kernel);  // (B x D)
}

void MadeModel::HeadBackward(size_t col, const Matrix& dblock,
                             Matrix* dfinal) {
  Head& head = heads_[col];
  if (!head.reuse) {
    head.fc->Backward(final_hidden(eval_), dblock, dfinal,
                      /*accumulate_dx=*/true);
    return;
  }
  Embedding* emb = encoder_.embedding(col);
  // logits = tmp · E^T  =>  dtmp = dblock · E;  dE += dblock^T · tmp.
  GemmNN(dblock, emb->table().value, &dtmp_);
  GemmTN(dblock, eval_.head_tmp, &emb->table().grad, /*accumulate=*/true);
  head.fc->Backward(final_hidden(eval_), dtmp_, dfinal,
                    /*accumulate_dx=*/true);
}

void MadeModel::ConditionalDist(const IntMatrix& samples, size_t col,
                                Matrix* probs) {
  ConditionalDistWith(&eval_, samples, col, probs);
}

void MadeModel::ConditionalDistWith(EvalContext* ctx, const IntMatrix& samples,
                                    size_t col, Matrix* probs) const {
  NARU_CHECK(col < num_columns());
  ForwardTrunk(samples, col, ctx, inference_kernel_);
  HeadForward(col, ctx, &ctx->block, inference_kernel_);
  SoftmaxRows(ctx->block, probs);
}

namespace {
// Sampling cursor with private scratch: distinct sessions evaluate the
// (read-only) weights concurrently.
class MadeSession : public SamplingSession {
 public:
  explicit MadeSession(const MadeModel* model) : model_(model) {}
  void Dist(const IntMatrix& samples, size_t col, Matrix* probs) override {
    model_->ConditionalDistWith(&ctx_, samples, col, probs);
  }

 private:
  const MadeModel* model_;
  MadeModel::EvalContext ctx_;
};
}  // namespace

std::unique_ptr<SamplingSession> MadeModel::StartSession(size_t batch) {
  (void)batch;  // contexts size themselves on first Dist
  return std::make_unique<MadeSession>(this);
}

void MadeModel::LogProbRows(const IntMatrix& tuples,
                            std::vector<double>* out_nats) {
  const size_t batch = tuples.rows();
  out_nats->assign(batch, 0.0);
  ForwardTrunk(tuples, num_columns(), &eval_, inference_kernel_);
  for (size_t c = 0; c < num_columns(); ++c) {
    HeadForward(c, &eval_, &eval_.block, inference_kernel_);
    const size_t d = domains_[c];
    for (size_t r = 0; r < batch; ++r) {
      const float* row = eval_.block.Row(r);
      const double log_z = LogSumExpSlice(row, 0, d);
      const int32_t target = tuples.At(r, c);
      (*out_nats)[r] += static_cast<double>(row[target]) - log_z;
    }
  }
}

double MadeModel::ForwardBackward(const IntMatrix& codes) {
  const size_t batch = codes.rows();
  NARU_CHECK(batch > 0);
  // Training is pinned to the scalar reference kernel: gradients must match
  // the arithmetic the tests and the determinism contract were built on.
  ForwardTrunk(codes, num_columns(), &eval_, KernelKind::kScalar);

  const float grad_scale = 1.0f / static_cast<float>(batch);
  Matrix dfinal(final_hidden(eval_).rows(), final_hidden(eval_).cols());
  targets_.resize(batch);

  double total_nll = 0;
  for (size_t c = 0; c < num_columns(); ++c) {
    HeadForward(c, &eval_, &eval_.block, KernelKind::kScalar);
    for (size_t r = 0; r < batch; ++r) targets_[r] = codes.At(r, c);
    dblock_.Resize(eval_.block.rows(), eval_.block.cols());
    dblock_.Zero();
    total_nll += SoftmaxCrossEntropySlice(eval_.block, 0, domains_[c],
                                          targets_.data(), grad_scale,
                                          &dblock_);
    HeadBackward(c, dblock_, &dfinal);
  }

  // Backprop through the hidden stack.
  Matrix grad = std::move(dfinal);
  Matrix grad_prev;
  for (size_t l = hidden_.size(); l-- > 0;) {
    // acts[l] is post-ReLU; its positivity gates the ReLU backward.
    ReluBackward(eval_.acts[l], grad, &grad);
    const Matrix& input = (l == 0) ? eval_.x : eval_.acts[l - 1];
    hidden_[l].Backward(input, grad, &grad_prev);
    // ResMADE identity path: z = W h + b + h, so dh gains the gated
    // upstream gradient in addition to the masked-linear term.
    if (HasSkip(l)) Axpy(grad, 1.0f, &grad_prev);
    grad = std::move(grad_prev);
    grad_prev = Matrix();
  }
  if (hidden_.empty()) {
    // Degenerate linear MADE: heads consumed x_ directly and dfinal is the
    // gradient w.r.t. x_ (now held in `grad`).
  }
  encoder_.Backward(codes, grad);
  return total_nll;
}

std::vector<Parameter*> MadeModel::Parameters() {
  std::vector<Parameter*> params;
  encoder_.CollectParameters(&params);
  for (auto& h : hidden_) h.CollectParameters(&params);
  for (auto& head : heads_) head.fc->CollectParameters(&params);
  return params;
}

size_t MadeModel::SizeBytes() { return ParameterBytes(Parameters()); }

Status MadeModel::Save(const std::string& path) {
  return SaveParameters(path, Parameters());
}

Status MadeModel::Load(const std::string& path) {
  NARU_RETURN_NOT_OK(LoadParameters(path, Parameters()));
  for (auto& h : hidden_) h.ProjectWeights();
  for (auto& head : heads_) head.fc->ProjectWeights();
  return Status::OK();
}

}  // namespace naru
