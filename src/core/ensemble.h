// Multi-order ensemble estimator (§3.1 "any ordering(s)").
//
// Trains K MADE models, each over a different permutation of the table's
// columns (member 0 keeps the natural order), and answers a query with the
// mean of the K progressive-sampling estimates. Every member estimate is
// unbiased (Theorem 1), so the mean is too; because the per-query variance
// depends strongly on where the filtered columns fall in the walk order,
// averaging over orders flattens the variance tail at equal total sample
// budget.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/made.h"
#include "core/naru_estimator.h"
#include "core/ordered_model.h"
#include "core/trainer.h"
#include "data/table.h"
#include "estimator/estimator.h"

namespace naru {

struct MultiOrderConfig {
  /// Ensemble size K (member 0 uses the natural table order).
  size_t num_orders = 4;
  /// Architecture shared by every member; member k trains with seed
  /// model.seed + k so inits differ.
  MadeModel::Config model;
  TrainerConfig trainer;
  /// Per-member sampler configuration. num_samples is the PER-MEMBER path
  /// count; the ensemble's total budget is num_orders * num_samples.
  NaruEstimatorConfig estimator;
  uint64_t order_seed = 97;
};

class MultiOrderEnsemble : public Estimator {
 public:
  /// Builds and trains all members on `table` (blocking).
  MultiOrderEnsemble(const Table& table, MultiOrderConfig config);

  std::string name() const override { return name_; }
  /// Mean of the member estimates.
  double EstimateSelectivity(const Query& query) override;
  /// Mean of the member batch estimates (each member serves the batch
  /// through its own serving engine; results match the sequential path).
  void EstimateBatch(const std::vector<Query>& queries,
                     std::vector<double>* out) override;
  /// Sum of member model sizes.
  size_t SizeBytes() const override { return size_bytes_; }

  size_t num_members() const { return members_.size(); }
  /// Estimate from member k alone (diagnostics, tests, ablations).
  double MemberEstimate(size_t k, const Query& query);
  const std::vector<size_t>& member_order(size_t k) const;

 private:
  struct Member {
    std::unique_ptr<OrderedModel> model;
    std::unique_ptr<NaruEstimator> estimator;
  };
  std::vector<Member> members_;
  size_t size_bytes_ = 0;
  std::string name_;
};

}  // namespace naru
