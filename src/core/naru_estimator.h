// The end-to-end Naru estimator (§4, §5): a trained autoregressive model
// queried through progressive sampling, with exact enumeration for small
// query regions.
#pragma once

#include <memory>
#include <string>

#include "core/conditional_model.h"
#include "core/sampler.h"
#include "estimator/estimator.h"

namespace naru {

struct NaruEstimatorConfig {
  /// Progressive sample paths (names the estimator "Naru-<S>").
  size_t num_samples = 1000;
  /// Regions with at most this many points are answered by exact
  /// enumeration instead of sampling (0 disables enumeration).
  double enumeration_threshold = 10000;
  uint64_t sampler_seed = 7;
  /// Use the §5.1 uniform-region strawman (ablation only).
  bool uniform_region = false;
};

/// Wraps any ConditionalModel (a trained MadeModel, an arch-A model, or an
/// OracleModel) as an Estimator. Does not own the model.
class NaruEstimator : public Estimator {
 public:
  NaruEstimator(ConditionalModel* model, NaruEstimatorConfig config,
                size_t model_size_bytes, std::string name = "");

  std::string name() const override { return name_; }
  double EstimateSelectivity(const Query& query) override;
  size_t SizeBytes() const override { return model_size_bytes_; }

 private:
  ConditionalModel* model_;
  NaruEstimatorConfig config_;
  ProgressiveSampler sampler_;
  size_t model_size_bytes_;
  std::string name_;
};

}  // namespace naru
