// The end-to-end Naru estimator (§4, §5): a trained autoregressive model
// queried through progressive sampling, with exact enumeration for small
// query regions. Batched estimation is served through an InferenceEngine
// (src/serve), which shards sample paths across threads and shares
// workspaces and exact-result caches across the queries of a batch;
// streaming submission goes through serve/async_engine.h. For a fixed seed
// the batched and streamed results are identical to the sequential ones
// (see docs/SERVING.md for the full determinism contract).
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/conditional_model.h"
#include "core/sampler.h"
#include "estimator/estimator.h"
// The typed request/result vocabulary (a leaf header: query + util only).
#include "serve/request.h"

namespace naru {

class InferenceEngine;

struct NaruEstimatorConfig {
  /// Progressive sample paths (names the estimator "Naru-<S>").
  size_t num_samples = 1000;
  /// Regions with at most this many points are answered by exact
  /// enumeration instead of sampling (0 disables enumeration).
  size_t enumeration_threshold = 10000;
  uint64_t sampler_seed = 7;
  /// Sample-path shard size (see ProgressiveSamplerConfig::shard_size).
  /// Part of the RNG-stream contract: changing it changes every sampled
  /// estimate for a given seed, so it participates in serving memo keys.
  size_t shard_size = 128;
  /// Use the §5.1 uniform-region strawman (ablation only).
  bool uniform_region = false;
  /// Kernel family for the model's inference forward passes (tensor layer;
  /// see kernel.h). Applied to the wrapped model at construction. Scalar is
  /// the bit-stable default; simd / simd_int8 trade bit-compatibility with
  /// scalar for speed (each is still bit-deterministic across thread
  /// counts and batch sizes on its own), so the kernel participates in
  /// serving memo keys. NOTE: the kernel is model-wide state — wrapping
  /// one model with estimators of different kernels is unsupported (the
  /// last constructed wins); use one model instance per kernel to A/B.
  KernelKind kernel = KernelKind::kScalar;
};

/// Wraps any ConditionalModel (a trained MadeModel, an arch-A model, or an
/// OracleModel) as an Estimator. Does not own the model.
class NaruEstimator : public Estimator {
 public:
  NaruEstimator(ConditionalModel* model, NaruEstimatorConfig config,
                size_t model_size_bytes, std::string name = "");
  ~NaruEstimator() override;

  std::string name() const override { return name_; }

  /// The typed sequential path: one request in, one EstimateResult out —
  /// estimate, Status (DEADLINE_EXCEEDED when the request's deadline has
  /// already passed), std-error when sampled, provenance, samples used.
  /// Engine-free: no caches, no batching, no threads beyond the
  /// sampler's own — this is the reference computation every serving
  /// surface must reproduce bit-identically for default options.
  EstimateResult Estimate(const Query& query,
                          const EstimateOptions& options = {});
  EstimateResult Estimate(const EstimateRequest& request) {
    return Estimate(request.query, request.options);
  }

  /// Legacy adapter over Estimate() (default options can neither shed nor
  /// fail, so the bare estimate is always valid).
  double EstimateSelectivity(const Query& query) override;
  /// Serves the batch through a lazily created private InferenceEngine
  /// (defaults: shared global pool, caching on). Construct an engine
  /// explicitly to control threads or share caches across estimators.
  void EstimateBatch(const std::vector<Query>& queries,
                     std::vector<double>* out) override;
  size_t SizeBytes() const override { return model_size_bytes_; }

  /// True when `query`'s region is small enough for exact enumeration
  /// under this config. Exposed so the serving engine applies exactly the
  /// same policy as the sequential path.
  bool ShouldEnumerate(const Query& query) const;

  /// Drops the private serving engine's cached results for this model.
  /// Call after retraining the wrapped model in place, or EstimateBatch
  /// would keep serving pre-retrain memo entries while
  /// EstimateSelectivity reflects the new weights.
  void InvalidateServingCaches();

  ConditionalModel* model() const { return model_; }
  const NaruEstimatorConfig& config() const { return config_; }
  ProgressiveSampler* sampler() { return &sampler_; }

 private:
  ConditionalModel* model_;
  NaruEstimatorConfig config_;
  ProgressiveSampler sampler_;
  size_t model_size_bytes_;
  std::string name_;
  std::once_flag engine_once_;               // EstimateBatch may race on first use
  std::unique_ptr<InferenceEngine> engine_;  // lazily built by EstimateBatch
};

}  // namespace naru
