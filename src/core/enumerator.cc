#include "core/enumerator.h"

#include <cmath>
#include <limits>
#include <vector>

namespace naru {

double EnumerateSelectivity(ConditionalModel* model, const Query& query,
                            size_t batch,
                            std::chrono::steady_clock::time_point deadline,
                            bool* abandoned) {
  NARU_CHECK(query.num_columns() == model->num_table_columns());
  if (query.HasEmptyRegion()) return 0.0;
  const size_t n = model->num_table_columns();
  // Deadline-free enumerations (the bit-identity reference) never read
  // the clock; with a deadline, expiry is re-checked before each
  // LogProbRows batch — between kernels, mirroring the sampler's
  // between-column-steps checks.
  const bool has_deadline = deadline != kNoDeadline;

  // Odometer over the per-column regions, in code order.
  std::vector<size_t> counts(n);
  std::vector<size_t> idx(n, 0);
  for (size_t c = 0; c < n; ++c) counts[c] = query.region(c).Count();

  IntMatrix tuples(batch, n);
  std::vector<double> log_probs;
  double total = 0;
  size_t filled = 0;
  bool done = false;
  bool expired = false;

  auto flush = [&]() {
    if (filled == 0) return;
    if (has_deadline &&
        DeadlineExpired(deadline, std::chrono::steady_clock::now())) {
      expired = true;
      filled = 0;
      return;
    }
    IntMatrix chunk(filled, n);
    for (size_t r = 0; r < filled; ++r) {
      for (size_t c = 0; c < n; ++c) chunk.At(r, c) = tuples.At(r, c);
    }
    model->LogProbRows(chunk, &log_probs);
    for (double lp : log_probs) total += std::exp(lp);
    filled = 0;
  };

  while (!done && !expired) {
    for (size_t c = 0; c < n; ++c) {
      tuples.At(filled, c) = query.region(c).NthCode(idx[c]);
    }
    ++filled;
    if (filled == batch) flush();
    // Advance the odometer (last column fastest).
    size_t c = n;
    while (c-- > 0) {
      if (++idx[c] < counts[c]) break;
      idx[c] = 0;
      if (c == 0) done = true;
    }
  }
  flush();
  if (expired) {
    if (abandoned != nullptr) *abandoned = true;
    return std::numeric_limits<double>::quiet_NaN();
  }
  return total;
}

double EstimateEnumerationSeconds(const Query& query,
                                  double points_per_second) {
  NARU_CHECK(points_per_second > 0);
  const double log10_points = query.Log10RegionSize();
  return std::pow(10.0, log10_points) / points_per_second;
}

}  // namespace naru
