#include "core/entropy.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "data/table_stats.h"
#include "util/random.h"

namespace naru {

IntMatrix TableToCodes(const Table& table) {
  IntMatrix codes(table.num_rows(), table.num_columns());
  for (size_t c = 0; c < table.num_columns(); ++c) {
    const Column& col = table.column(c);
    for (size_t r = 0; r < table.num_rows(); ++r) {
      codes.At(r, c) = col.code(r);
    }
  }
  return codes;
}

double ModelCrossEntropyBits(ConditionalModel* model, const Table& table,
                             size_t max_rows, uint64_t seed) {
  const size_t n = table.num_rows();
  NARU_CHECK(n > 0);
  std::vector<size_t> rows;
  if (n <= max_rows) {
    rows.resize(n);
    for (size_t r = 0; r < n; ++r) rows[r] = r;
  } else {
    Rng rng(seed);
    rows.resize(max_rows);
    for (size_t i = 0; i < max_rows; ++i) rows[i] = rng.UniformInt(n);
  }

  const size_t cols = table.num_columns();
  constexpr size_t kBatch = 1024;
  double total_nats = 0;
  std::vector<double> log_probs;
  for (size_t start = 0; start < rows.size(); start += kBatch) {
    const size_t chunk = std::min(kBatch, rows.size() - start);
    IntMatrix batch(chunk, cols);
    for (size_t i = 0; i < chunk; ++i) {
      table.GetRowCodes(rows[start + i], batch.Row(i));
    }
    model->LogProbRows(batch, &log_probs);
    for (double lp : log_probs) total_nats -= lp;
  }
  return total_nats / static_cast<double>(rows.size()) / std::log(2.0);
}

double EntropyGapBits(ConditionalModel* model, const Table& table,
                      size_t max_rows, uint64_t seed) {
  const double ce = ModelCrossEntropyBits(model, table, max_rows, seed);
  const double h = TableStats::JointEntropyBits(table);
  return ce - h;
}

}  // namespace naru
