#include "core/factorized.h"

#include <algorithm>
#include <cmath>

#include "util/macros.h"

namespace naru {

FactorizedLayout FactorizedLayout::Build(
    const std::vector<size_t>& table_domains, size_t threshold) {
  NARU_CHECK(threshold >= 2);
  FactorizedLayout layout;
  layout.table_domains_ = table_domains;
  layout.split_.assign(table_domains.size(), 0);
  for (size_t c = 0; c < table_domains.size(); ++c) {
    const size_t d = table_domains[c];
    NARU_CHECK(d >= 1);
    if (d <= threshold) {
      Position p;
      p.table_col = c;
      p.domain = d;
      layout.positions_.push_back(p);
      continue;
    }
    // shift = half the bit width: both sub-domains land near sqrt(d).
    size_t bits = 0;
    while ((size_t{1} << bits) < d) ++bits;
    const size_t shift = (bits + 1) / 2;
    const size_t block = size_t{1} << shift;
    Position hi;
    hi.table_col = c;
    hi.domain = (d + block - 1) / block;
    hi.shift = shift;
    hi.is_high = true;
    Position lo;
    lo.table_col = c;
    lo.domain = block;
    lo.shift = shift;
    lo.is_low = true;
    layout.positions_.push_back(hi);
    layout.positions_.push_back(lo);
    layout.split_[c] = 1;
  }
  return layout;
}

std::vector<size_t> FactorizedLayout::position_domains() const {
  std::vector<size_t> out(positions_.size());
  for (size_t i = 0; i < positions_.size(); ++i) out[i] = positions_[i].domain;
  return out;
}

void FactorizedLayout::EncodeRow(const int32_t* table_codes,
                                 int32_t* model_codes) const {
  for (size_t i = 0; i < positions_.size(); ++i) {
    const Position& p = positions_[i];
    const int32_t v = table_codes[p.table_col];
    if (p.is_high) {
      model_codes[i] = v >> p.shift;
    } else if (p.is_low) {
      model_codes[i] = v & static_cast<int32_t>((1u << p.shift) - 1);
    } else {
      model_codes[i] = v;
    }
  }
}

void FactorizedLayout::DecodeRow(const int32_t* model_codes,
                                 int32_t* table_codes) const {
  for (size_t i = 0; i < positions_.size(); ++i) {
    const Position& p = positions_[i];
    if (p.is_high) {
      // The matching low position follows immediately (Build invariant).
      table_codes[p.table_col] =
          (model_codes[i] << p.shift) | model_codes[i + 1];
    } else if (!p.is_low) {
      table_codes[p.table_col] = model_codes[i];
    }
  }
}

void FactorizedModel::LogProbRows(const IntMatrix& tuples,
                                  std::vector<double>* out_nats) {
  NARU_CHECK(tuples.cols() == num_table_columns());
  buf_.Resize(tuples.rows(), num_columns());
  for (size_t r = 0; r < tuples.rows(); ++r) {
    layout_.EncodeRow(tuples.Row(r), buf_.Row(r));
  }
  cond_->LogProbRows(buf_, out_nats);
}

double FactorizedModel::ForwardBackward(const IntMatrix& codes) {
  NARU_CHECK(codes.cols() == num_table_columns());
  buf_.Resize(codes.rows(), num_columns());
  for (size_t r = 0; r < codes.rows(); ++r) {
    layout_.EncodeRow(codes.Row(r), buf_.Row(r));
  }
  return train_->ForwardBackward(buf_);
}

bool FactorizedModel::PositionIsWildcard(const Query& query,
                                         size_t pos) const {
  const Position& p = layout_.position(pos);
  const ValueSet& region = query.region(p.table_col);
  if (!region.IsAll()) return false;
  if (!p.is_low) return true;  // unsplit or high: every sub-code is valid
  // A wildcard low position is only mask-free when the domain fills the
  // last high block exactly; otherwise codes >= D must be excluded.
  const size_t d = layout_.table_domain(p.table_col);
  return (d & ((size_t{1} << p.shift) - 1)) == 0;
}

double FactorizedModel::MaskHigh(const ValueSet& region, const Position& p,
                                 float* probs_row) const {
  const size_t dh = p.domain;
  switch (region.kind()) {
    case ValueSet::Kind::kAll: {
      double mass = 0;
      for (size_t v = 0; v < dh; ++v) mass += probs_row[v];
      return mass;
    }
    case ValueSet::Kind::kInterval: {
      const int64_t lo = region.lo() >> p.shift;
      const int64_t hi = region.hi() >> p.shift;
      double mass = 0;
      for (int64_t v = 0; v < static_cast<int64_t>(dh); ++v) {
        if (v < lo || v > hi) {
          probs_row[v] = 0.0f;
        } else {
          mass += probs_row[v];
        }
      }
      return mass;
    }
    case ValueSet::Kind::kSet: {
      std::vector<uint8_t> allowed(dh, 0);
      for (int32_t code : region.codes()) {
        allowed[static_cast<size_t>(code) >> p.shift] = 1;
      }
      double mass = 0;
      for (size_t v = 0; v < dh; ++v) {
        if (allowed[v]) {
          mass += probs_row[v];
        } else {
          probs_row[v] = 0.0f;
        }
      }
      return mass;
    }
  }
  return 0;
}

double FactorizedModel::MaskLow(const ValueSet& region, const Position& p,
                                int32_t high, float* probs_row) const {
  const int64_t block = int64_t{1} << p.shift;
  const int64_t base = static_cast<int64_t>(high) << p.shift;
  const int64_t d = static_cast<int64_t>(layout_.table_domain(p.table_col));
  // Validity bound: re-joined codes must stay below the table domain.
  const int64_t vmax = std::min(block, d - base);  // exclusive
  int64_t lo = 0, hi = vmax - 1;                   // inclusive window
  switch (region.kind()) {
    case ValueSet::Kind::kAll:
      break;
    case ValueSet::Kind::kInterval:
      lo = std::max<int64_t>(lo, region.lo() - base);
      hi = std::min<int64_t>(hi, region.hi() - base);
      break;
    case ValueSet::Kind::kSet: {
      double mass = 0;
      std::vector<uint8_t> allowed(static_cast<size_t>(block), 0);
      for (int32_t code : region.codes()) {
        const int64_t rel = static_cast<int64_t>(code) - base;
        if (rel >= 0 && rel < vmax) allowed[static_cast<size_t>(rel)] = 1;
      }
      for (int64_t v = 0; v < block; ++v) {
        if (allowed[static_cast<size_t>(v)]) {
          mass += probs_row[v];
        } else {
          probs_row[v] = 0.0f;
        }
      }
      return mass;
    }
  }
  double mass = 0;
  for (int64_t v = 0; v < block; ++v) {
    if (v < lo || v > hi) {
      probs_row[v] = 0.0f;
    } else {
      mass += probs_row[v];
    }
  }
  return mass;
}

double FactorizedModel::MaskProbsToRegion(const Query& query,
                                          const int32_t* prefix, size_t pos,
                                          float* probs_row) const {
  const Position& p = layout_.position(pos);
  const ValueSet& region = query.region(p.table_col);
  if (p.is_high) return MaskHigh(region, p, probs_row);
  if (p.is_low) {
    // The high position immediately precedes this one (Build invariant),
    // so the sampled high part is the previous prefix entry.
    return MaskLow(region, p, prefix[pos - 1], probs_row);
  }
  return region.MaskProbs(probs_row);
}

int32_t FactorizedModel::FallbackCode(const Query& query, size_t pos) const {
  const Position& p = layout_.position(pos);
  const ValueSet& region = query.region(p.table_col);
  if (p.is_low) return 0;  // valid for every sampled high part
  if (p.is_high) {
    if (region.IsAll() || region.IsEmpty()) return 0;
    return region.NthCode(0) >> p.shift;
  }
  return region.IsEmpty() ? 0 : region.NthCode(0);
}

}  // namespace naru
