#include "core/trainer.h"

#include <algorithm>
#include <cmath>

#include "core/entropy.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace naru {

Trainer::Trainer(TrainableModel* model, TrainerConfig config)
    : model_(model), config_(config), rng_(config.shuffle_seed) {
  AdamOptions opts;
  opts.lr = config_.lr;
  opts.clip_global_norm = config_.clip_global_norm;
  optimizer_ = std::make_unique<Adam>(model_->Parameters(), opts);
}

double Trainer::RunEpoch(const Table& table) {
  const size_t n = table.num_rows();
  NARU_CHECK(n > 0);
  const size_t cols = table.num_columns();
  NARU_CHECK(cols == model_->num_input_columns());

  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  rng_.Shuffle(&order);

  double total_nll_nats = 0;
  IntMatrix batch;
  for (size_t start = 0; start < n; start += config_.batch_size) {
    const size_t chunk = std::min(config_.batch_size, n - start);
    batch.Resize(chunk, cols);
    for (size_t i = 0; i < chunk; ++i) {
      table.GetRowCodes(order[start + i], batch.Row(i));
    }
    total_nll_nats += model_->ForwardBackward(batch);
    optimizer_->Step();
  }
  return total_nll_nats / static_cast<double>(n) / std::log(2.0);
}

std::vector<double> Trainer::Train(const Table& table) {
  std::vector<double> curve;
  curve.reserve(config_.epochs);
  for (size_t e = 0; e < config_.epochs; ++e) {
    const double bits = RunEpoch(table);
    curve.push_back(bits);
    if (config_.verbose) {
      NARU_LOG_INFO("epoch %zu/%zu: train NLL %.3f bits/tuple (lr %.2g)",
                    e + 1, config_.epochs, bits, optimizer_->lr());
    }
    optimizer_->set_lr(optimizer_->lr() * config_.lr_decay);
  }
  return curve;
}

void Trainer::FineTune(const Table& new_partition, size_t passes) {
  for (size_t p = 0; p < passes; ++p) RunEpoch(new_partition);
}

}  // namespace naru
