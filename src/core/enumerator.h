// Exact enumeration querying (§5): sums model point densities over every
// tuple in the query region. Practical only when the region is small; the
// NaruEstimator falls back to it below a configurable region size, and
// Table 6 uses its cost model to report naive-enumeration latencies.
#pragma once

#include "core/conditional_model.h"
#include "query/query.h"

namespace naru {

/// Sum of P̂(x) over all x in R_1 x ... x R_n, batching tuples through the
/// model. The caller is responsible for checking the region is small
/// (e.g. via Query::Log10RegionSize).
double EnumerateSelectivity(ConditionalModel* model, const Query& query,
                            size_t batch = 2048);

/// Estimated wall-clock seconds a naive enumeration of `query` would take
/// at `points_per_second` model throughput (Table 6's "Enum (est.)").
double EstimateEnumerationSeconds(const Query& query,
                                  double points_per_second);

}  // namespace naru
