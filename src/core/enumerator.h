// Exact enumeration querying (§5): sums model point densities over every
// tuple in the query region. Practical only when the region is small; the
// NaruEstimator falls back to it below a configurable region size, and
// Table 6 uses its cost model to report naive-enumeration latencies.
#pragma once

#include <chrono>

#include "core/conditional_model.h"
#include "query/query.h"
#include "util/deadline.h"

namespace naru {

/// Sum of P̂(x) over all x in R_1 x ... x R_n, batching tuples through the
/// model. The caller is responsible for checking the region is small
/// (e.g. via Query::Log10RegionSize).
///
/// Soft-deadline contract (mirrors the sampler's mid-walk checks): the
/// shared inclusive DeadlineExpired predicate is re-checked BETWEEN
/// LogProbRows batches — never inside a kernel — and before the final
/// partial batch. Once expired the enumeration is abandoned: *abandoned
/// is set and the return value is NaN (must not be used). Deadline-free
/// calls (the default, and the bit-identity reference) never pay a clock
/// read and are unchanged.
double EnumerateSelectivity(
    ConditionalModel* model, const Query& query, size_t batch = 2048,
    std::chrono::steady_clock::time_point deadline = kNoDeadline,
    bool* abandoned = nullptr);

/// Estimated wall-clock seconds a naive enumeration of `query` would take
/// at `points_per_second` model throughput (Table 6's "Enum (est.)").
double EstimateEnumerationSeconds(const Query& query,
                                  double points_per_second);

}  // namespace naru
