// The autoregressive-conditional interface queried by progressive sampling.
//
// Any model that can produce P̂(X_i | x_<i) plugs into the sampler (§3.2,
// Eq. 1): the learned MADE network (architecture B), the per-column
// aggregation network (architecture A), or the scanning Oracle used for the
// §6.7 microbenchmarks. The sampler drives a SamplingSession so stateful
// models (the Oracle's shrinking row lists) can serve columns incrementally.
#pragma once

#include <memory>
#include <vector>

#include "query/query.h"
#include "tensor/kernel.h"
#include "tensor/matrix.h"

namespace naru {

/// A per-query stateful cursor over the model's conditionals.
///
/// The sampler calls Dist with col = 0, 1, ..., in increasing order; before
/// the call for column c, samples(r, j) holds the sampled code of column j
/// for every j < c and every path r. Dist fills probs (batch x domain(col))
/// with P̂(X_col = v | samples_<col>) for each path row.
class SamplingSession {
 public:
  virtual ~SamplingSession() = default;
  virtual void Dist(const IntMatrix& samples, size_t col, Matrix* probs) = 0;
};

/// A joint distribution factored in column order (chain rule, §2.1).
class ConditionalModel {
 public:
  virtual ~ConditionalModel() = default;

  virtual size_t num_columns() const = 0;
  virtual size_t DomainSize(size_t col) const = 0;

  /// Table column served at model position `model_col`. Models trained
  /// over a permutation of the table order (multi-order ensembles; §3.1
  /// notes the model "can be architected to use any ordering(s)") override
  /// this so the sampler can map query regions onto model positions. The
  /// default is the identity (model order == table order).
  virtual size_t TableColumnOf(size_t model_col) const { return model_col; }

  /// Number of TABLE columns this model covers. Equals num_columns()
  /// except for models whose positions subdivide table columns
  /// (FactorizedModel splits large domains into high/low sub-columns);
  /// queries are always expressed over table columns.
  virtual size_t num_table_columns() const { return num_columns(); }

  /// True when model position `pos` is unconstrained by `query`: the
  /// contained mass at that step is exactly 1 and the sampler can draw
  /// from the full conditional (and exit early on a trailing run). The
  /// default reads the query's materialized wildcard bitmap.
  virtual bool PositionIsWildcard(const Query& query, size_t pos) const {
    return query.wildcard_mask()[TableColumnOf(pos)] != 0;
  }

  /// Zeroes the entries of `probs_row` (length DomainSize(pos)) outside
  /// the set allowed at model position `pos` for a path whose sampled
  /// model prefix is `prefix` (positions < pos are valid); returns the
  /// remaining mass. The default masks with the table column's query
  /// region identically for every path; factorized models restrict a low
  /// sub-column using the already-sampled high part, which is why the
  /// prefix is part of the contract.
  virtual double MaskProbsToRegion(const Query& query, const int32_t* prefix,
                                   size_t pos, float* probs_row) const {
    (void)prefix;
    return query.region(TableColumnOf(pos)).MaskProbs(probs_row);
  }

  /// An in-domain code for position `pos` used to keep dead sample paths
  /// well-defined (their weights are already 0; the value never affects
  /// estimates, it only has to be a legal input to the model).
  virtual int32_t FallbackCode(const Query& query, size_t pos) const {
    const ValueSet& region = query.region(TableColumnOf(pos));
    return region.IsEmpty() ? 0 : region.NthCode(0);
  }

  /// Translates one TABLE-order row (num_table_columns codes) into the
  /// model's position layout (num_columns codes). The default permutes by
  /// TableColumnOf, covering both identity and reordered models.
  virtual void EncodeTableRow(const int32_t* table_codes,
                              int32_t* model_codes) const {
    for (size_t pos = 0; pos < num_columns(); ++pos) {
      model_codes[pos] = table_codes[TableColumnOf(pos)];
    }
  }

  /// Inverse of EncodeTableRow.
  virtual void DecodeToTableRow(const int32_t* model_codes,
                                int32_t* table_codes) const {
    for (size_t pos = 0; pos < num_columns(); ++pos) {
      table_codes[TableColumnOf(pos)] = model_codes[pos];
    }
  }

  /// Stateless conditional query: fills probs (batch x DomainSize(col))
  /// given the prefix codes in `samples` (columns >= col are ignored).
  virtual void ConditionalDist(const IntMatrix& samples, size_t col,
                               Matrix* probs) = 0;

  /// log P̂(x) in nats for each full tuple row. The default composes
  /// ConditionalDist column by column; models with a one-pass likelihood
  /// (MADE) override it.
  virtual void LogProbRows(const IntMatrix& tuples,
                           std::vector<double>* out_nats);

  /// Starts a sampling cursor; the default session forwards to
  /// ConditionalDist.
  virtual std::unique_ptr<SamplingSession> StartSession(size_t batch);

  /// True when independently started sessions may run Dist concurrently
  /// from different threads (the model's weights are read-only at inference
  /// and every session owns its evaluation workspace). The sharded sampler
  /// and the serving engine only parallelize over models that declare this;
  /// the default is the conservative false because the default session
  /// forwards to ConditionalDist, which most models back with shared
  /// scratch buffers.
  virtual bool SupportsConcurrentSampling() const { return false; }

  /// Selects the kernel family the INFERENCE forward paths use
  /// (ConditionalDist, sessions, LogProbRows); training always stays
  /// scalar fp32. kSimdInt8 additionally (re)quantizes the model's linear
  /// weights into int8 side panels. The setting is model-wide state: all
  /// sessions observe it, so wrapping one model with estimators of
  /// different kernels is unsupported (last set wins) — use one model
  /// instance per kernel to A/B. Default: no-op (model stays scalar) for
  /// models without tuned kernels (the Oracle, per-column nets).
  virtual void SetInferenceKernel(KernelKind kernel) { (void)kernel; }
  virtual KernelKind inference_kernel() const { return KernelKind::kScalar; }

  /// True when this model's sampling sessions are PURE: Dist(samples, col)
  /// is a function of its arguments alone — callable at any column without
  /// prior calls, with any row count, and row-independent, so rows from
  /// unrelated walks may be stacked into one matrix and evaluated in one
  /// call with per-row results bit-identical to evaluating each walk
  /// separately. This is the contract the sampling-plan executor
  /// (src/plan) relies on for both prefix forking (resume a walk at column
  /// L through a fresh session) and cross-query GEMM fusion (one stacked
  /// forward pass for a plan tree's whole frontier). Feed-forward models whose
  /// sessions recompute from the prefix (MADE) declare this; models with
  /// incremental per-session state (the Oracle's shrinking row lists) must
  /// not.
  virtual bool SupportsStackedEvaluation() const { return false; }

  /// Dominant GEMM inner width of the stacked inference path (the widest
  /// hidden layer a stacked Dist call multiplies through). The plan
  /// compiler's AutoGroupWidth uses it, together with the kernel and
  /// shard size, to pick a fork fan-out cap whose stacked GEMM shapes
  /// land in the sweet spot bench_micro_gemm measured. Purely advisory:
  /// it never affects estimates. 0 = unknown (callers fall back to a
  /// fixed cap).
  virtual size_t StackedWidthHint() const { return 0; }
};

}  // namespace naru
