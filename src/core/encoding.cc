#include "core/encoding.h"

#include <cstring>
#include <string>

namespace naru {

namespace {
size_t BitsFor(size_t domain) {
  size_t bits = 1;
  while ((size_t{1} << bits) < domain) ++bits;
  return bits;
}
}  // namespace

InputEncoder::InputEncoder(const std::vector<size_t>& domains,
                           const EncoderConfig& cfg, Rng* rng)
    : domains_(domains) {
  const size_t n = domains_.size();
  kinds_.resize(n);
  widths_.resize(n);
  offsets_.resize(n);
  embeddings_.resize(n);
  size_t offset = 0;
  for (size_t c = 0; c < n; ++c) {
    NARU_CHECK(domains_[c] >= 1);
    if (domains_[c] <= cfg.onehot_threshold) {
      kinds_[c] = ColEncoding::kOneHot;
      widths_[c] = domains_[c];
    } else if (cfg.binary_for_large) {
      kinds_[c] = ColEncoding::kBinary;
      widths_[c] = BitsFor(domains_[c]);
    } else {
      kinds_[c] = ColEncoding::kEmbedding;
      widths_[c] = cfg.embed_dim;
      embeddings_[c] = std::make_unique<Embedding>(
          "enc.col" + std::to_string(c), domains_[c], cfg.embed_dim, rng);
    }
    offsets_[c] = offset;
    offset += widths_[c];
  }
  total_width_ = offset;
}

void InputEncoder::EncodeColumns(const IntMatrix& codes, size_t upto,
                                 Matrix* x) const {
  const size_t batch = codes.rows();
  x->Resize(batch, total_width_);
  x->Zero();
  for (size_t c = 0; c < upto; ++c) {
    const size_t off = offsets_[c];
    switch (kinds_[c]) {
      case ColEncoding::kOneHot:
        for (size_t r = 0; r < batch; ++r) {
          const int32_t code = codes.At(r, c);
          NARU_DCHECK(code >= 0 &&
                      static_cast<size_t>(code) < domains_[c]);
          x->At(r, off + static_cast<size_t>(code)) = 1.0f;
        }
        break;
      case ColEncoding::kBinary:
        for (size_t r = 0; r < batch; ++r) {
          const uint32_t code = static_cast<uint32_t>(codes.At(r, c));
          for (size_t b = 0; b < widths_[c]; ++b) {
            x->At(r, off + b) = (code >> b) & 1u ? 1.0f : 0.0f;
          }
        }
        break;
      case ColEncoding::kEmbedding: {
        // Row-strided gather (codes are row-major tuples).
        const Matrix& table = embeddings_[c]->table().value;
        for (size_t r = 0; r < batch; ++r) {
          const int32_t code = codes.At(r, c);
          NARU_DCHECK(code >= 0 &&
                      static_cast<size_t>(code) < domains_[c]);
          std::memcpy(x->Row(r) + off, table.Row(code),
                      widths_[c] * sizeof(float));
        }
        break;
      }
    }
  }
}

void InputEncoder::EncodeBatch(const IntMatrix& codes, Matrix* x) const {
  EncodeColumns(codes, num_columns(), x);
}

void InputEncoder::EncodeBatchPrefix(const IntMatrix& codes, size_t upto,
                                     Matrix* x) const {
  EncodeColumns(codes, upto, x);
}

void InputEncoder::Backward(const IntMatrix& codes, const Matrix& dx) {
  const size_t batch = codes.rows();
  for (size_t c = 0; c < num_columns(); ++c) {
    if (kinds_[c] != ColEncoding::kEmbedding) continue;
    const size_t off = offsets_[c];
    for (size_t r = 0; r < batch; ++r) {
      const int32_t code = codes.At(r, c);
      float* grow = embeddings_[c]->table().grad.Row(code);
      const float* srow = dx.Row(r) + off;
      for (size_t j = 0; j < widths_[c]; ++j) grow[j] += srow[j];
    }
  }
}

}  // namespace naru
