// Lossless table compression driven by the likelihood model (§8).
//
// "Data compression is also inherently linked to likelihood modeling": an
// entropy coder fed the model's conditionals P̂(X_i | x_<i) spends
// -log2 P̂(x) bits per tuple, so a well-fit autoregressive model compresses
// the relation to within quantization overhead of its cross entropy — the
// same quantity the §3.3 entropy gap measures. This module provides:
//
//  - a carry-aware byte-oriented range coder (LZMA-style, 64-bit low /
//    32-bit range) usable with any integer frequency table, and
//  - a model-driven codec that walks the model's column order, quantizes
//    each conditional into integer frequencies (deterministically on both
//    sides), and range-codes every dictionary code of every tuple.
//
// Decompression replays the identical conditional computations: after
// decoding column i of a batch of rows, those codes become the prefix for
// column i+1 — the same trick progressive sampling uses, with the coder
// standing in for the sampler. Works over any ConditionalModel (MADE,
// Transformer, permuted orders, Bayes nets, the Oracle).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/conditional_model.h"
#include "data/table.h"
#include "util/status.h"

namespace naru {

/// Byte-oriented range encoder (Subbotin/LZMA lineage). Symbols are coded
/// as [cum, cum+freq) slices of a [0, total) frequency line.
class RangeEncoder {
 public:
  /// Appends coded bytes to `*out` (not owned).
  explicit RangeEncoder(std::string* out);

  /// Codes a symbol occupying [cum, cum + freq) of [0, total).
  /// Requires freq >= 1, cum + freq <= total, total <= kMaxTotal.
  void Encode(uint32_t cum, uint32_t freq, uint32_t total);

  /// Flushes the coder state; call exactly once, after the last symbol.
  void Finish();

  /// Frequency totals above this lose coding precision guarantees.
  static constexpr uint32_t kMaxTotal = 1u << 22;

 private:
  static constexpr uint32_t kTop = 1u << 24;
  void ShiftLow();

  std::string* out_;
  uint64_t low_ = 0;
  uint32_t range_ = 0xFFFFFFFFu;
  uint8_t cache_ = 0;
  uint64_t cache_size_ = 1;
};

/// Mirror decoder over a byte buffer.
class RangeDecoder {
 public:
  RangeDecoder(const uint8_t* data, size_t size);

  /// Returns a value in [0, total); the caller maps it to the symbol whose
  /// [cum, cum+freq) contains it, then calls Consume with that interval.
  uint32_t DecodeTarget(uint32_t total);
  void Consume(uint32_t cum, uint32_t freq);

  /// True when more bytes were requested than provided (corrupt stream).
  bool overran() const { return overran_; }

 private:
  static constexpr uint32_t kTop = 1u << 24;
  uint8_t NextByte();

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  uint32_t range_ = 0xFFFFFFFFu;
  uint32_t code_ = 0;
  bool overran_ = false;
};

/// Quantizes a float probability row into integer frequencies >= 1.
/// freq[v] = 1 + floor(probs[v] * scale); returns the total. Deterministic,
/// so encoder and decoder derive identical tables from identical floats.
uint32_t QuantizeFreqs(const float* probs, size_t domain, uint32_t scale,
                       std::vector<uint32_t>* freqs);

struct CompressionStats {
  size_t rows = 0;
  size_t payload_bytes = 0;  ///< range-coded bytes (excl. header)
  double bits_per_tuple = 0;
  /// Naive dictionary-code cost: sum_i ceil(log2 |A_i|) bits per tuple.
  double naive_bits_per_tuple = 0;
};

/// Compresses all rows of `table` against `model`'s conditionals into a
/// self-describing blob (header + range-coded payload).
/// The model must have been built over the table's domains.
Result<std::string> CompressTable(ConditionalModel* model,
                                  const Table& table,
                                  CompressionStats* stats = nullptr,
                                  size_t batch = 512);

/// Inverse of CompressTable: reconstructs the dictionary codes (row-major,
/// table column order). Fails cleanly on bad magic, truncated input, or a
/// model/blob domain mismatch.
Status DecompressTuples(ConditionalModel* model, const std::string& blob,
                        IntMatrix* tuples, size_t batch = 512);

}  // namespace naru
