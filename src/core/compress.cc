#include "core/compress.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "util/macros.h"
#include "util/string_util.h"

namespace naru {

// ---------------------------------------------------------------------------
// Range coder
// ---------------------------------------------------------------------------

RangeEncoder::RangeEncoder(std::string* out) : out_(out) {
  NARU_CHECK(out_ != nullptr);
}

void RangeEncoder::ShiftLow() {
  // LZMA-style carry handling: the top 32 bits of low_ carry into the
  // cached byte run. cache_size_ starts at 1, which emits one leading
  // byte the decoder skips by priming with 5 reads.
  if (static_cast<uint32_t>(low_) < 0xFF000000u ||
      static_cast<uint32_t>(low_ >> 32) != 0) {
    uint8_t carry = static_cast<uint8_t>(low_ >> 32);
    do {
      out_->push_back(static_cast<char>(cache_ + carry));
      cache_ = 0xFF;
    } while (--cache_size_ != 0);
    cache_ = static_cast<uint8_t>(low_ >> 24);
  }
  ++cache_size_;
  low_ = (low_ & 0x00FFFFFFu) << 8;
}

void RangeEncoder::Encode(uint32_t cum, uint32_t freq, uint32_t total) {
  NARU_DCHECK(freq >= 1 && cum + freq <= total && total <= kMaxTotal);
  range_ /= total;
  low_ += static_cast<uint64_t>(cum) * range_;
  range_ *= freq;
  while (range_ < kTop) {
    range_ <<= 8;
    ShiftLow();
  }
}

void RangeEncoder::Finish() {
  for (int i = 0; i < 5; ++i) ShiftLow();
}

RangeDecoder::RangeDecoder(const uint8_t* data, size_t size)
    : data_(data), size_(size) {
  // The first of the five priming bytes is the encoder's initial zero
  // cache byte; it shifts out of the 32-bit code register.
  for (int i = 0; i < 5; ++i) code_ = (code_ << 8) | NextByte();
}

uint8_t RangeDecoder::NextByte() {
  if (pos_ >= size_) {
    overran_ = true;
    return 0;
  }
  return data_[pos_++];
}

uint32_t RangeDecoder::DecodeTarget(uint32_t total) {
  range_ /= total;
  const uint32_t t = code_ / range_;
  return std::min(t, total - 1);
}

void RangeDecoder::Consume(uint32_t cum, uint32_t freq) {
  code_ -= cum * range_;
  range_ *= freq;
  while (range_ < kTop) {
    code_ = (code_ << 8) | NextByte();
    range_ <<= 8;
  }
}

// ---------------------------------------------------------------------------
// Model-driven codec
// ---------------------------------------------------------------------------

uint32_t QuantizeFreqs(const float* probs, size_t domain, uint32_t scale,
                       std::vector<uint32_t>* freqs) {
  freqs->resize(domain);
  uint32_t total = 0;
  for (size_t v = 0; v < domain; ++v) {
    const float p = probs[v];
    const float clamped = p > 0.0f ? (p < 1.0f ? p : 1.0f) : 0.0f;
    const uint32_t f =
        1u + static_cast<uint32_t>(clamped * static_cast<float>(scale));
    (*freqs)[v] = f;
    total += f;
  }
  return total;
}

namespace {

constexpr char kMagic[8] = {'N', 'A', 'R', 'U', 'C', 'M', 'P', '1'};
// Per-symbol probability resolution. domain + kScale must stay below
// RangeEncoder::kMaxTotal; 2^16 leaves room for domains up to ~4M.
constexpr uint32_t kScale = 1u << 16;

void AppendU32(std::string* s, uint32_t v) {
  for (int i = 0; i < 4; ++i) s->push_back(static_cast<char>(v >> (8 * i)));
}
void AppendU64(std::string* s, uint64_t v) {
  for (int i = 0; i < 8; ++i) s->push_back(static_cast<char>(v >> (8 * i)));
}
uint32_t ReadU32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}
uint64_t ReadU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

}  // namespace

Result<std::string> CompressTable(ConditionalModel* model, const Table& table,
                                  CompressionStats* stats, size_t batch) {
  NARU_CHECK(model != nullptr && batch >= 1);
  const size_t n = model->num_columns();
  if (table.num_columns() != model->num_table_columns()) {
    return Status::InvalidArgument(
        StrFormat("model covers %zu table columns, table has %zu",
                  model->num_table_columns(), table.num_columns()));
  }

  std::string blob(kMagic, sizeof(kMagic));
  AppendU64(&blob, table.num_rows());
  AppendU32(&blob, static_cast<uint32_t>(n));
  for (size_t pos = 0; pos < n; ++pos) {
    AppendU32(&blob, static_cast<uint32_t>(model->DomainSize(pos)));
  }
  const size_t header_bytes = blob.size();

  std::string payload;
  RangeEncoder enc(&payload);
  IntMatrix tuples;    // model-position order, per batch
  Matrix probs;
  std::vector<uint32_t> freqs;

  const size_t rows = table.num_rows();
  std::vector<int32_t> row_codes(model->num_table_columns());
  for (size_t start = 0; start < rows; start += batch) {
    const size_t chunk = std::min(batch, rows - start);
    tuples.Resize(chunk, n);
    for (size_t r = 0; r < chunk; ++r) {
      table.GetRowCodes(start + r, row_codes.data());
      model->EncodeTableRow(row_codes.data(), tuples.Row(r));
      for (size_t pos = 0; pos < n; ++pos) {
        if (static_cast<size_t>(tuples.At(r, pos)) >=
            model->DomainSize(pos)) {
          return Status::InvalidArgument(StrFormat(
              "row %zu encodes outside model domain at position %zu "
              "(table/model mismatch)",
              start + r, pos));
        }
      }
    }
    // Column-major within the batch: the decoder can batch the same way.
    for (size_t pos = 0; pos < n; ++pos) {
      model->ConditionalDist(tuples, pos, &probs);
      const size_t d = model->DomainSize(pos);
      for (size_t r = 0; r < chunk; ++r) {
        const uint32_t total = QuantizeFreqs(probs.Row(r), d, kScale, &freqs);
        const uint32_t sym = static_cast<uint32_t>(tuples.At(r, pos));
        uint32_t cum = 0;
        for (uint32_t v = 0; v < sym; ++v) cum += freqs[v];
        enc.Encode(cum, freqs[sym], total);
      }
    }
  }
  enc.Finish();
  blob += payload;

  if (stats != nullptr) {
    stats->rows = rows;
    stats->payload_bytes = blob.size() - header_bytes;
    stats->bits_per_tuple =
        rows == 0 ? 0
                  : 8.0 * static_cast<double>(stats->payload_bytes) /
                        static_cast<double>(rows);
    double naive = 0;
    for (size_t pos = 0; pos < n; ++pos) {
      naive += std::ceil(std::log2(
          std::max<double>(2.0, static_cast<double>(model->DomainSize(pos)))));
    }
    stats->naive_bits_per_tuple = naive;
  }
  return blob;
}

Status DecompressTuples(ConditionalModel* model, const std::string& blob,
                        IntMatrix* tuples, size_t batch) {
  NARU_CHECK(model != nullptr && tuples != nullptr && batch >= 1);
  const size_t n = model->num_columns();
  const size_t min_header = sizeof(kMagic) + 8 + 4;
  if (blob.size() < min_header ||
      std::memcmp(blob.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("not a naru compressed blob");
  }
  const uint8_t* p = reinterpret_cast<const uint8_t*>(blob.data());
  size_t off = sizeof(kMagic);
  const uint64_t rows = ReadU64(p + off);
  off += 8;
  const uint32_t cols = ReadU32(p + off);
  off += 4;
  if (cols != n) {
    return Status::InvalidArgument(
        StrFormat("blob has %u columns, model has %zu", cols, n));
  }
  if (blob.size() < off + 4 * static_cast<size_t>(cols)) {
    return Status::InvalidArgument("truncated blob header");
  }
  for (size_t pos = 0; pos < n; ++pos) {
    const uint32_t d = ReadU32(p + off);
    off += 4;
    if (d != model->DomainSize(pos)) {
      return Status::InvalidArgument(StrFormat(
          "blob domain %u vs model domain %zu at position %zu", d,
          model->DomainSize(pos), pos));
    }
  }

  RangeDecoder dec(p + off, blob.size() - off);
  IntMatrix work;  // model-position order
  Matrix probs;
  std::vector<uint32_t> freqs;
  tuples->Resize(rows, model->num_table_columns());

  for (size_t start = 0; start < rows; start += batch) {
    const size_t chunk = std::min<size_t>(batch, rows - start);
    work.Resize(chunk, n);
    work.Fill(0);
    for (size_t pos = 0; pos < n; ++pos) {
      model->ConditionalDist(work, pos, &probs);
      const size_t d = model->DomainSize(pos);
      for (size_t r = 0; r < chunk; ++r) {
        const uint32_t total = QuantizeFreqs(probs.Row(r), d, kScale, &freqs);
        const uint32_t target = dec.DecodeTarget(total);
        uint32_t cum = 0;
        uint32_t sym = 0;
        while (sym + 1 < d && cum + freqs[sym] <= target) {
          cum += freqs[sym];
          ++sym;
        }
        dec.Consume(cum, freqs[sym]);
        work.At(r, pos) = static_cast<int32_t>(sym);
      }
    }
    if (dec.overran()) {
      return Status::InvalidArgument("compressed payload truncated");
    }
    for (size_t r = 0; r < chunk; ++r) {
      model->DecodeToTableRow(work.Row(r), tuples->Row(start + r));
    }
  }
  return Status::OK();
}

}  // namespace naru
