// MADE: masked autoregressive network over relational tuples (§3.2, §4.3 B).
//
// The model maps an encoded tuple to one output block per column, where
// block i is (after softmax) the conditional distribution
// P̂(X_i | x_1..x_{i-1}). Autoregressiveness is enforced with MADE weight
// masks (Germain et al. 2015): every input dimension carries the index of
// the column it encodes, hidden units carry degrees in {0..n-2} meaning
// "may depend on columns <= degree", and output block i may only read
// hidden units with degree < i. Column order is the table order (§3.1).
//
// Output heads are per-column MaskedLinears. Large-domain columns can use
// the paper's "embedding reuse" (§4.2): the head emits h dims and logits
// are formed against the input embedding table, logits = H · E_i^T, saving
// a |A_i| x F output layer.
#pragma once

#include <string>
#include <vector>

#include "core/conditional_model.h"
#include "core/encoding.h"
#include "core/trainable_model.h"
#include "nn/masked_linear.h"
#include "util/status.h"

namespace naru {

class MadeModel : public ConditionalModel, public TrainableModel {
 public:
  struct Config {
    /// Hidden layer widths; empty = linear (bias/logistic) MADE.
    std::vector<size_t> hidden_sizes = {128, 128, 128, 128};
    EncoderConfig encoder;
    /// Use embedding reuse for columns that are embedding-encoded.
    bool embedding_reuse = true;
    /// ResMADE: pre-activation residual skips between equal-width hidden
    /// layers, h_{l+1} = ReLU(W h_l + b + h_l). Degree vectors of
    /// equal-width layers coincide, so the identity path is mask-safe and
    /// the autoregressive property is preserved. Deeper MADE stacks train
    /// noticeably faster with this on.
    bool residual = false;
    uint64_t seed = 1;
  };

  /// `domains[i]` is |A_i| for column i in model (= table) order.
  MadeModel(std::vector<size_t> domains, Config config);

  /// Scratch buffers for one inference forward pass. The model's weights
  /// are read-only at inference, so callers holding distinct contexts may
  /// evaluate concurrently; every sampling session owns one (which is what
  /// makes SupportsConcurrentSampling() true). Training keeps using the
  /// model's own member context.
  struct EvalContext {
    Matrix x;
    std::vector<Matrix> acts;
    Matrix head_tmp;  // reuse heads' h-dim output
    Matrix block;     // current head logits
  };

  // --- ConditionalModel ---
  size_t num_columns() const override { return domains_.size(); }
  size_t DomainSize(size_t col) const override { return domains_[col]; }
  void ConditionalDist(const IntMatrix& samples, size_t col,
                       Matrix* probs) override;
  /// Re-entrant ConditionalDist evaluating through caller-owned scratch.
  void ConditionalDistWith(EvalContext* ctx, const IntMatrix& samples,
                           size_t col, Matrix* probs) const;
  /// Stacked-rows entry point for the sampling-plan executor (src/plan):
  /// `samples` rows may stack the walk states of several queries, and the
  /// one trunk forward + head evaluation here fuses what would otherwise
  /// be one GEMM sequence per query. Per-row results are bit-identical to
  /// evaluating each query's rows separately because every kernel on the
  /// path (encode, gemm, bias, relu, softmax) is row-independent — the
  /// property SupportsStackedEvaluation() advertises.
  void StackedConditionalDist(EvalContext* ctx, const IntMatrix& samples,
                              size_t col, Matrix* probs) const {
    ConditionalDistWith(ctx, samples, col, probs);
  }
  void LogProbRows(const IntMatrix& tuples,
                   std::vector<double>* out_nats) override;
  /// Sessions own an EvalContext each, so they can run concurrently.
  std::unique_ptr<SamplingSession> StartSession(size_t batch) override;
  bool SupportsConcurrentSampling() const override { return true; }
  /// Switches the inference forward paths (ConditionalDist*, LogProbRows,
  /// sessions) to `kernel`; training stays scalar. kSimdInt8 (re)quantizes
  /// every hidden layer and head into int8 panels; the embedding-reuse
  /// logits GEMM stays fp32 SIMD (the embedding table doubles as an input
  /// encoder, so it is not quantized).
  void SetInferenceKernel(KernelKind kernel) override;
  KernelKind inference_kernel() const override { return inference_kernel_; }
  /// Sessions route through ConditionalDistWith, a pure function of
  /// (samples, col) — see StackedConditionalDist above.
  bool SupportsStackedEvaluation() const override { return true; }
  /// The widest hidden layer dominates the stacked GEMM chain (linear
  /// MADE: no hidden GEMMs, leave the hint unknown).
  size_t StackedWidthHint() const override {
    size_t width = 0;
    for (size_t h : config_.hidden_sizes) width = std::max(width, h);
    return width;
  }

  // --- Training ---
  /// Fused forward/backward over a batch of full tuples; accumulates
  /// parameter gradients (mean-scaled) and returns the summed NLL in nats.
  double ForwardBackward(const IntMatrix& codes);

  /// All trainable parameters (optimizer registration, serialization).
  std::vector<Parameter*> Parameters();

  /// float32 model size (the paper's reported estimator size).
  size_t SizeBytes();

  Status Save(const std::string& path);
  Status Load(const std::string& path);

  const Config& config() const { return config_; }
  const InputEncoder& encoder() const { return encoder_; }

 private:
  /// Encodes columns < upto and runs the hidden stack into `ctx`; the
  /// result lives in final_hidden(*ctx). With upto == num_columns() this is
  /// a full forward. Const: only caller scratch is written. `kernel` picks
  /// the GEMM family (training passes kScalar, inference the configured
  /// inference_kernel_).
  void ForwardTrunk(const IntMatrix& codes, size_t upto, EvalContext* ctx,
                    KernelKind kernel) const;

  const Matrix& final_hidden(const EvalContext& ctx) const {
    return ctx.acts.empty() ? ctx.x : ctx.acts.back();
  }

  /// Computes the raw logits block for `col` from the last ForwardTrunk
  /// through `ctx`. The block is written into `block` (batch x
  /// domains_[col]), which may alias &ctx->block.
  void HeadForward(size_t col, EvalContext* ctx, Matrix* block,
                   KernelKind kernel) const;

  /// Backpropagates a logits-block gradient through head `col`,
  /// accumulating into dfinal (batch x F). Reads the member context's
  /// forward activations (training is single-threaded by design).
  void HeadBackward(size_t col, const Matrix& dblock, Matrix* dfinal);

  /// Builds the MADE mask between two degree vectors.
  static Matrix BuildMask(const std::vector<int>& in_deg,
                          const std::vector<int>& out_deg, bool strict);

  /// True when hidden layer `layer` carries a ResMADE residual skip.
  bool HasSkip(size_t layer) const;

  std::vector<size_t> domains_;
  Config config_;
  Rng rng_;
  InputEncoder encoder_;
  std::vector<int> input_degrees_;             // per input dim
  std::vector<std::vector<int>> layer_degrees_;  // per hidden layer
  std::vector<MaskedLinear> hidden_;

  struct Head {
    std::unique_ptr<MaskedLinear> fc;
    bool reuse = false;  // logits = fc_out · E^T
  };
  std::vector<Head> heads_;

  // Inference kernel (scalar by default; see SetInferenceKernel) and the
  // sparse-input hint for the first hidden layer, fixed at construction
  // from the encoder's one-hot width fraction.
  KernelKind inference_kernel_ = KernelKind::kScalar;
  InputHint input_hint_ = InputHint::kDense;

  // Member workspace for the single-threaded paths (training, the
  // stateless ConditionalDist, LogProbRows). Concurrent inference goes
  // through session-owned EvalContexts instead.
  EvalContext eval_;
  Matrix dblock_;
  Matrix dtmp_;
  std::vector<int32_t> targets_;
};

}  // namespace naru
