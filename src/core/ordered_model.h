// A model trained over a permutation of the table's column order (§3.1:
// the model "can be architected to use any ordering(s) of the attributes").
//
// The wrapper owns an inner autoregressive model that was constructed over
// the *permuted* domain list and exposes it under the ConditionalModel /
// TrainableModel contracts:
//   - training tuples and LogProbRows inputs arrive in TABLE order and are
//     permuted before reaching the inner model, so the Trainer and the
//     exact enumerator work unchanged;
//   - ConditionalDist / sampling sessions speak MODEL positions (the
//     progressive sampler walks positions 0..n-1 and maps query regions
//     through TableColumnOf).
//
// Different orders factor the same joint differently; each is exact in
// expectation, but their progressive-sampling variances differ per query.
// Averaging estimates across a few orders (MultiOrderEnsemble) keeps
// unbiasedness and shrinks the tail — the ensembling idea NeuroCard later
// built on.
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "core/conditional_model.h"
#include "core/trainable_model.h"
#include "util/random.h"

namespace naru {

class OrderedModel : public ConditionalModel, public TrainableModel {
 public:
  /// `order[i]` = table column served at model position i; `inner` must
  /// have been built over domains {table_domains[order[0]], ...}. M must
  /// derive from both ConditionalModel and TrainableModel.
  template <typename M>
  OrderedModel(std::unique_ptr<M> inner, std::vector<size_t> order)
      : cond_(inner.get()),
        train_(inner.get()),
        owned_(std::move(inner)),
        order_(std::move(order)) {
    NARU_CHECK(cond_->num_columns() == order_.size());
    // Verify `order_` is a permutation of [0, n).
    std::vector<uint8_t> seen(order_.size(), 0);
    for (size_t c : order_) {
      NARU_CHECK(c < order_.size() && !seen[c]);
      seen[c] = 1;
    }
  }

  /// The inner model's domain list for a given table + order (construction
  /// helper: build the inner model over this, then wrap).
  static std::vector<size_t> PermuteDomains(
      const std::vector<size_t>& table_domains,
      const std::vector<size_t>& order) {
    std::vector<size_t> out(order.size());
    for (size_t i = 0; i < order.size(); ++i) out[i] = table_domains[order[i]];
    return out;
  }

  /// A uniformly random permutation of [0, n).
  static std::vector<size_t> RandomOrder(size_t n, Rng* rng) {
    std::vector<size_t> order(n);
    for (size_t i = 0; i < n; ++i) order[i] = i;
    rng->Shuffle(&order);
    return order;
  }

  const std::vector<size_t>& order() const { return order_; }

  // --- ConditionalModel (model-position indexed) ---
  size_t num_columns() const override { return order_.size(); }
  size_t DomainSize(size_t col) const override {
    return cond_->DomainSize(col);
  }
  size_t TableColumnOf(size_t model_col) const override {
    return order_[model_col];
  }
  void ConditionalDist(const IntMatrix& samples, size_t col,
                       Matrix* probs) override {
    cond_->ConditionalDist(samples, col, probs);
  }
  std::unique_ptr<SamplingSession> StartSession(size_t batch) override {
    return cond_->StartSession(batch);
  }
  bool SupportsConcurrentSampling() const override {
    return cond_->SupportsConcurrentSampling();
  }
  /// Sessions are the inner model's, so purity is inherited.
  bool SupportsStackedEvaluation() const override {
    return cond_->SupportsStackedEvaluation();
  }
  size_t StackedWidthHint() const override {
    return cond_->StackedWidthHint();
  }

  void SetInferenceKernel(KernelKind kernel) override {
    cond_->SetInferenceKernel(kernel);
  }
  KernelKind inference_kernel() const override {
    return cond_->inference_kernel();
  }

  /// Accepts TABLE-order tuples (permutes, then delegates).
  void LogProbRows(const IntMatrix& tuples,
                   std::vector<double>* out_nats) override {
    PermuteRows(tuples);
    cond_->LogProbRows(buf_, out_nats);
  }

  // --- TrainableModel (table-order batches) ---
  double ForwardBackward(const IntMatrix& codes) override {
    PermuteRows(codes);
    return train_->ForwardBackward(buf_);
  }
  std::vector<Parameter*> Parameters() override {
    return train_->Parameters();
  }
  size_t SizeBytes() override { return train_->SizeBytes(); }

 private:
  void PermuteRows(const IntMatrix& table_order) {
    NARU_CHECK(table_order.cols() == order_.size());
    buf_.Resize(table_order.rows(), table_order.cols());
    for (size_t r = 0; r < table_order.rows(); ++r) {
      const int32_t* src = table_order.Row(r);
      int32_t* dst = buf_.Row(r);
      for (size_t i = 0; i < order_.size(); ++i) dst[i] = src[order_[i]];
    }
  }

  ConditionalModel* cond_;
  TrainableModel* train_;
  std::shared_ptr<void> owned_;
  std::vector<size_t> order_;
  IntMatrix buf_;
};

}  // namespace naru
