// Maximum-likelihood training loop for Naru models (§3.2, §4.1).
//
// Unsupervised: the trainer only reads tuples from the table (no queries,
// no feedback) and minimizes the cross entropy H(P, P̂) (Eq. 2). One epoch
// is one shuffled pass over the data; RunEpoch returns the epoch's average
// negative log-likelihood in bits/tuple, which (minus the exact data
// entropy) is the §3.3 entropy gap.
#pragma once

#include <memory>
#include <vector>

#include "core/trainable_model.h"
#include "data/table.h"
#include "nn/adam.h"
#include "util/random.h"

namespace naru {

struct TrainerConfig {
  size_t epochs = 10;
  size_t batch_size = 512;
  double lr = 2e-3;
  /// Multiplied into lr after each epoch (1.0 = constant).
  double lr_decay = 1.0;
  /// Global-norm gradient clip; 0 disables.
  double clip_global_norm = 5.0;
  uint64_t shuffle_seed = 123;
  bool verbose = false;
};

class Trainer {
 public:
  Trainer(TrainableModel* model, TrainerConfig config);

  /// One shuffled pass over `table`; returns average NLL in bits/tuple.
  double RunEpoch(const Table& table);

  /// config.epochs passes; returns the per-epoch NLL (bits/tuple) curve.
  std::vector<double> Train(const Table& table);

  /// Incremental refresh on newly ingested data (§6.7.3): `passes` epochs
  /// over `new_partition` only, at the (possibly decayed) current lr.
  void FineTune(const Table& new_partition, size_t passes = 1);

  Adam& optimizer() { return *optimizer_; }

 private:
  TrainableModel* model_;
  TrainerConfig config_;
  std::unique_ptr<Adam> optimizer_;
  Rng rng_;
};

}  // namespace naru
