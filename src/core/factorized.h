// Column factorization: sub-column splitting for very large domains
// (the scaling direction the paper points at in §6.7.2, later developed by
// NeuroCard).
//
// A column with domain D above a threshold is split into two model
// positions — a HIGH part (code >> shift) and a LOW part
// (code & (2^shift - 1)) — with shift ≈ log2(D)/2, so each sub-domain is
// ~sqrt(D). The inner autoregressive model is built over the sub-domains:
// its one-hot/embedding tables shrink from O(D) to O(sqrt(D)) and nothing
// about training changes (tuples are split before they reach the model).
//
// Querying needs one genuine generalization: the allowed LOW set depends
// on the sampled HIGH part, i.e. the query region over the factorized
// positions is NOT a cross product. Progressive sampling handles this
// unchanged — Algorithm 1 only needs "zero out disallowed slots given the
// prefix, renormalize" at each step, which is exactly the
// ConditionalModel::MaskProbsToRegion contract (the unbiasedness proof
// never uses rectangularity). This class implements that mask:
//   high position:  {v >> shift : v ∈ R}
//   low  position:  {v & (2^shift-1) : v ∈ R, v >> shift == sampled high}
// both intersected with validity (re-joined codes must be < D).
//
// Caveat (inherent to factorization, shared with NeuroCard): the inner
// model can place mass on invalid (high, low) combinations — codes >= D.
// All query paths mask them out, so estimates measure valid-region mass
// only, but an UNTRAINED factorized model's valid mass sums below 1;
// training drives the invalid mass toward 0.
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "core/conditional_model.h"
#include "core/trainable_model.h"

namespace naru {

/// The table-column -> model-position mapping of a factorized model.
class FactorizedLayout {
 public:
  struct Position {
    size_t table_col = 0;
    size_t domain = 0;   ///< sub-domain size at this position
    size_t shift = 0;    ///< low-part bit width of the parent column
    bool is_high = false;
    bool is_low = false;  ///< !is_high && !is_low => unsplit column
  };

  /// Splits every column with domain > `threshold`; threshold must be
  /// >= 2. Unsplit columns keep one position; split columns contribute a
  /// high position immediately followed by its low position.
  static FactorizedLayout Build(const std::vector<size_t>& table_domains,
                                size_t threshold);

  size_t num_positions() const { return positions_.size(); }
  size_t num_table_columns() const { return table_domains_.size(); }
  const Position& position(size_t pos) const { return positions_[pos]; }
  size_t table_domain(size_t col) const { return table_domains_[col]; }
  bool column_is_split(size_t col) const { return split_[col]; }

  /// Domain per model position (inner model construction input).
  std::vector<size_t> position_domains() const;

  void EncodeRow(const int32_t* table_codes, int32_t* model_codes) const;
  void DecodeRow(const int32_t* model_codes, int32_t* table_codes) const;

 private:
  std::vector<size_t> table_domains_;
  std::vector<Position> positions_;
  std::vector<uint8_t> split_;  // per table column
};

/// Wraps an inner autoregressive model trained over a FactorizedLayout.
/// Training and LogProbRows speak TABLE rows; ConditionalDist and sampling
/// sessions speak model positions (as everywhere else).
class FactorizedModel : public ConditionalModel, public TrainableModel {
 public:
  /// M must derive from ConditionalModel and TrainableModel and must have
  /// been built over layout.position_domains().
  template <typename M>
  FactorizedModel(std::unique_ptr<M> inner, FactorizedLayout layout)
      : cond_(inner.get()),
        train_(inner.get()),
        owned_(std::move(inner)),
        layout_(std::move(layout)) {
    NARU_CHECK(cond_->num_columns() == layout_.num_positions());
  }

  const FactorizedLayout& layout() const { return layout_; }

  // --- ConditionalModel ---
  size_t num_columns() const override { return layout_.num_positions(); }
  size_t num_table_columns() const override {
    return layout_.num_table_columns();
  }
  size_t DomainSize(size_t pos) const override {
    return layout_.position(pos).domain;
  }
  size_t TableColumnOf(size_t pos) const override {
    return layout_.position(pos).table_col;
  }
  void ConditionalDist(const IntMatrix& samples, size_t pos,
                       Matrix* probs) override {
    cond_->ConditionalDist(samples, pos, probs);
  }
  std::unique_ptr<SamplingSession> StartSession(size_t batch) override {
    return cond_->StartSession(batch);
  }
  bool SupportsConcurrentSampling() const override {
    return cond_->SupportsConcurrentSampling();
  }
  /// Sessions are the inner model's, so purity is inherited; the
  /// prefix-dependent low-sub-column masking lives in MaskProbsToRegion,
  /// which the plan executor applies per row exactly as the sequential
  /// sampler does.
  bool SupportsStackedEvaluation() const override {
    return cond_->SupportsStackedEvaluation();
  }
  size_t StackedWidthHint() const override {
    return cond_->StackedWidthHint();
  }
  void SetInferenceKernel(KernelKind kernel) override {
    cond_->SetInferenceKernel(kernel);
  }
  KernelKind inference_kernel() const override {
    return cond_->inference_kernel();
  }
  void LogProbRows(const IntMatrix& tuples,
                   std::vector<double>* out_nats) override;

  bool PositionIsWildcard(const Query& query, size_t pos) const override;
  double MaskProbsToRegion(const Query& query, const int32_t* prefix,
                           size_t pos, float* probs_row) const override;
  int32_t FallbackCode(const Query& query, size_t pos) const override;
  void EncodeTableRow(const int32_t* table_codes,
                      int32_t* model_codes) const override {
    layout_.EncodeRow(table_codes, model_codes);
  }
  void DecodeToTableRow(const int32_t* model_codes,
                        int32_t* table_codes) const override {
    layout_.DecodeRow(model_codes, table_codes);
  }

  // --- TrainableModel (table-order batches) ---
  size_t num_input_columns() const override {
    return layout_.num_table_columns();
  }
  double ForwardBackward(const IntMatrix& codes) override;
  std::vector<Parameter*> Parameters() override {
    return train_->Parameters();
  }
  size_t SizeBytes() override { return train_->SizeBytes(); }

 private:
  using Position = FactorizedLayout::Position;

  /// Masks a HIGH-position row to {v >> shift : v in region}; returns mass.
  double MaskHigh(const ValueSet& region, const Position& p,
                  float* probs_row) const;
  /// Masks a LOW-position row given the sampled high part; returns mass.
  double MaskLow(const ValueSet& region, const Position& p, int32_t high,
                 float* probs_row) const;

  ConditionalModel* cond_;
  TrainableModel* train_;
  std::shared_ptr<void> owned_;
  FactorizedLayout layout_;
  IntMatrix buf_;
};

}  // namespace naru
