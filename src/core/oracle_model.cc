#include "core/oracle_model.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace naru {

namespace {

// Fills one probs row with the smoothed conditional from a count histogram.
void WriteSmoothedRow(const std::vector<int64_t>& counts, int64_t total,
                      double lambda, float* row, size_t domain) {
  const double uniform = lambda / static_cast<double>(domain);
  if (total <= 0) {
    // No supporting rows for this prefix: the data conditional is taken as
    // uniform, so the smoothed conditional is uniform too.
    const float u = 1.0f / static_cast<float>(domain);
    for (size_t v = 0; v < domain; ++v) row[v] = u;
    return;
  }
  const double scale = (1.0 - lambda) / static_cast<double>(total);
  for (size_t v = 0; v < domain; ++v) {
    row[v] =
        static_cast<float>(static_cast<double>(counts[v]) * scale + uniform);
  }
}

// Groups of sample paths sharing an identical sampled prefix; each group
// holds the table rows matching that prefix. Groups' row sets are disjoint.
struct PathGroup {
  std::vector<uint32_t> rows;
  std::vector<uint32_t> paths;
};

class OracleSession : public SamplingSession {
 public:
  OracleSession(const Table* table, double lambda, size_t batch)
      : table_(table), lambda_(lambda), batch_(batch) {}

  void Dist(const IntMatrix& samples, size_t col, Matrix* probs) override {
    if (col == 0) {
      // One root group: all paths, all rows.
      groups_.clear();
      PathGroup root;
      root.rows.resize(table_->num_rows());
      for (size_t r = 0; r < table_->num_rows(); ++r) {
        root.rows[r] = static_cast<uint32_t>(r);
      }
      root.paths.resize(batch_);
      for (size_t p = 0; p < batch_; ++p) {
        root.paths[p] = static_cast<uint32_t>(p);
      }
      groups_.push_back(std::move(root));
    } else {
      RefineGroups(samples, col - 1);
    }

    const size_t domain = table_->column(col).DomainSize();
    probs->Resize(batch_, domain);
    std::vector<int64_t> counts(domain);
    const Column& column = table_->column(col);
    for (const auto& g : groups_) {
      std::fill(counts.begin(), counts.end(), 0);
      for (uint32_t r : g.rows) ++counts[static_cast<size_t>(column.code(r))];
      // Compute the shared smoothed row once, copy to each member path.
      std::vector<float> shared(domain);
      WriteSmoothedRow(counts, static_cast<int64_t>(g.rows.size()), lambda_,
                       shared.data(), domain);
      for (uint32_t p : g.paths) {
        std::copy(shared.begin(), shared.end(), probs->Row(p));
      }
    }
  }

 private:
  // Splits every group by the value its paths sampled for `split_col` and
  // filters the row lists accordingly.
  void RefineGroups(const IntMatrix& samples, size_t split_col) {
    const Column& column = table_->column(split_col);
    std::vector<PathGroup> next;
    for (auto& g : groups_) {
      // Partition member paths by sampled value.
      std::unordered_map<int32_t, std::vector<uint32_t>> by_value;
      for (uint32_t p : g.paths) {
        by_value[samples.At(p, split_col)].push_back(p);
      }
      if (by_value.size() == 1) {
        // Fast path: in-place row filtering, no list copy for paths.
        const int32_t v = by_value.begin()->first;
        auto& rows = g.rows;
        rows.erase(std::remove_if(rows.begin(), rows.end(),
                                  [&](uint32_t r) {
                                    return column.code(r) != v;
                                  }),
                   rows.end());
        next.push_back(std::move(g));
        continue;
      }
      // Bucket the rows by value once, then hand each bucket to its group.
      std::unordered_map<int32_t, std::vector<uint32_t>> rows_by_value;
      for (uint32_t r : g.rows) {
        const int32_t v = column.code(r);
        if (by_value.count(v) > 0) rows_by_value[v].push_back(r);
      }
      for (auto& [v, paths] : by_value) {
        PathGroup sub;
        sub.paths = std::move(paths);
        auto it = rows_by_value.find(v);
        if (it != rows_by_value.end()) sub.rows = std::move(it->second);
        next.push_back(std::move(sub));
      }
    }
    groups_ = std::move(next);
  }

  const Table* table_;
  double lambda_;
  size_t batch_;
  std::vector<PathGroup> groups_;
};

}  // namespace

OracleModel::OracleModel(const Table* table, double smoothing_lambda)
    : table_(table), lambda_(smoothing_lambda) {
  NARU_CHECK(table_ != nullptr);
  NARU_CHECK(lambda_ >= 0.0 && lambda_ <= 1.0);
}

void OracleModel::ConditionalDist(const IntMatrix& samples, size_t col,
                                  Matrix* probs) {
  const size_t batch = samples.rows();
  const size_t domain = DomainSize(col);
  probs->Resize(batch, domain);
  std::vector<int64_t> counts(domain);
  const Column& column = table_->column(col);
  for (size_t s = 0; s < batch; ++s) {
    std::fill(counts.begin(), counts.end(), 0);
    int64_t total = 0;
    for (size_t r = 0; r < table_->num_rows(); ++r) {
      bool match = true;
      for (size_t c = 0; c < col; ++c) {
        if (table_->column(c).code(r) != samples.At(s, c)) {
          match = false;
          break;
        }
      }
      if (match) {
        ++counts[static_cast<size_t>(column.code(r))];
        ++total;
      }
    }
    WriteSmoothedRow(counts, total, lambda_, probs->Row(s), domain);
  }
}

std::unique_ptr<SamplingSession> OracleModel::StartSession(size_t batch) {
  return std::make_unique<OracleSession>(table_, lambda_, batch);
}

double OracleModel::CrossEntropyBits() const {
  // Walk columns left to right keeping groups of rows that share a prefix;
  // each row's -log2 P'(v | prefix) accumulates from its group's histogram.
  const size_t n = table_->num_rows();
  if (n == 0) return 0;
  std::vector<std::vector<uint32_t>> groups(1);
  groups[0].resize(n);
  for (size_t r = 0; r < n; ++r) groups[0][r] = static_cast<uint32_t>(r);

  double ce = 0;
  for (size_t col = 0; col < table_->num_columns(); ++col) {
    const Column& column = table_->column(col);
    const size_t domain = column.DomainSize();
    const double uniform = lambda_ / static_cast<double>(domain);
    std::vector<std::vector<uint32_t>> next;
    std::vector<int64_t> counts(domain);
    for (const auto& g : groups) {
      std::fill(counts.begin(), counts.end(), 0);
      for (uint32_t r : g) ++counts[static_cast<size_t>(column.code(r))];
      const double scale = (1.0 - lambda_) / static_cast<double>(g.size());
      // Accumulate each row's log-prob and split the group by value.
      std::unordered_map<int32_t, std::vector<uint32_t>> split;
      for (uint32_t r : g) {
        const int32_t v = column.code(r);
        const double p =
            static_cast<double>(counts[static_cast<size_t>(v)]) * scale +
            uniform;
        ce -= std::log2(std::max(p, 1e-300));
        split[v].push_back(r);
      }
      for (auto& [v, rows] : split) next.push_back(std::move(rows));
    }
    groups = std::move(next);
  }
  return ce / static_cast<double>(n);
}

double OracleModel::FindLambdaForGapBits(double target_gap_bits,
                                         double tol) const {
  NARU_CHECK(target_gap_bits >= 0);
  OracleModel probe(table_, 0.0);
  const double h_data = probe.CrossEntropyBits();  // λ=0 -> exact H(P)
  if (target_gap_bits <= tol) return 0.0;
  probe.set_smoothing_lambda(1.0);
  const double max_gap = probe.CrossEntropyBits() - h_data;
  if (target_gap_bits >= max_gap) return 1.0;
  double lo = 0.0;
  double hi = 1.0;
  for (int iter = 0; iter < 50; ++iter) {
    const double mid = 0.5 * (lo + hi);
    probe.set_smoothing_lambda(mid);
    const double gap = probe.CrossEntropyBits() - h_data;
    if (std::fabs(gap - target_gap_bits) <= tol) return mid;
    if (gap < target_gap_bits) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace naru
