// Goodness-of-fit via the entropy gap (§3.3).
//
// H(P, P̂) - H(P) = KL(P || P̂) >= 0; zero means a perfect fit. H(P) is the
// exact empirical entropy of the table; H(P, P̂) is estimated by averaging
// -log2 P̂(x) over (a sample of) the table's tuples.
#pragma once

#include "core/conditional_model.h"
#include "data/table.h"

namespace naru {

/// -E_{x ~ T}[log2 P̂(x)], averaged over up to `max_rows` tuples (all rows
/// when the table is smaller; sampled deterministically by `seed`).
double ModelCrossEntropyBits(ConditionalModel* model, const Table& table,
                             size_t max_rows = 20000, uint64_t seed = 99);

/// Entropy gap in bits: ModelCrossEntropyBits - exact H(P).
double EntropyGapBits(ConditionalModel* model, const Table& table,
                      size_t max_rows = 20000, uint64_t seed = 99);

/// Converts codes of the full table into one IntMatrix (training input).
IntMatrix TableToCodes(const Table& table);

}  // namespace naru
