// Causal Transformer autoregressive model (§3.1, §4.3).
//
// The paper's framework accepts any model of the Eq. 1 form; it names the
// Transformer [Vaswani et al. 2017] among the candidate architectures and
// self-attention as a candidate aggregator ⊕ for architecture A. This is
// that third architecture: each column is one token position, a causal
// (lower-triangular) attention mask enforces autoregressiveness, and output
// position i reads only the SOS token plus columns < i — exactly
// P̂(X_i | x_<i).
//
// Layout: pre-LayerNorm blocks,
//   h = x + Attn(LN1(x));  x' = h + FFN(LN2(h))
// followed by a final LayerNorm and one logits head per column. Column
// values enter through per-column embedding tables of width d_model; with
// `embedding_reuse` the same table decodes the output block
// (logits = y_i · E_i^T, GPT-style weight tying — the §4.2 optimization).
//
// Forward/backward are hand-written against the tensor substrate. The
// per-query cost of ConditionalDist(col) is attention over col+1 positions
// only, so early sampler columns are cheap.
#pragma once

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "core/conditional_model.h"
#include "core/trainable_model.h"
#include "nn/embedding.h"
#include "nn/layernorm.h"
#include "nn/linear.h"
#include "nn/mlp.h"
#include "util/random.h"
#include "util/status.h"

namespace naru {

class TransformerModel : public ConditionalModel, public TrainableModel {
 public:
  struct Config {
    size_t d_model = 64;     ///< Token width; must be divisible by num_heads.
    size_t num_heads = 4;    ///< Attention heads per block.
    size_t num_layers = 2;   ///< Transformer blocks.
    size_t ffn_hidden = 256; ///< FFN inner width.
    /// Tie each column's output logits to its input embedding (§4.2).
    bool embedding_reuse = true;
    uint64_t seed = 1;
  };

  /// `domains[i]` is |A_i| for column i in table order.
  TransformerModel(std::vector<size_t> domains, Config config);

  /// Scratch for one inference forward pass: the block activations are
  /// ping-ponged through a single set of matrices (inference needs no
  /// per-block stashes — those exist only for backward). Weights are
  /// read-only at inference, so callers holding distinct contexts may
  /// evaluate concurrently; every sampling session owns one. Training
  /// keeps the member workspace (ForwardBackward reads the stashes).
  struct EvalContext {
    Matrix x;  // current block input/output (batch*T x E)
    Matrix ln1_out, q, k, v;
    Matrix attn_probs;  // (batch*heads*T x T), causal rows
    Matrix attn_cat, attn_proj;
    Matrix res1, ln2_out, ffn_out;
    Matrix y;  // lnf_ output
    Matrix ybuf, logits;
  };

  // --- ConditionalModel ---
  size_t num_columns() const override { return domains_.size(); }
  size_t DomainSize(size_t col) const override { return domains_[col]; }
  void ConditionalDist(const IntMatrix& samples, size_t col,
                       Matrix* probs) override;
  /// Re-entrant ConditionalDist evaluating through caller-owned scratch.
  void ConditionalDistWith(EvalContext* ctx, const IntMatrix& samples,
                           size_t col, Matrix* probs) const;
  /// Stacked-rows entry point for the sampling-plan executor (src/plan):
  /// rows of `samples` may stack the walk states of several queries into
  /// one trunk forward. Per-row results are bit-identical to evaluating
  /// each query's rows separately because causal attention only mixes
  /// token positions *within* a row — across rows every kernel on the
  /// path (embed, layernorm, gemm, attention, softmax) is row-independent.
  void StackedConditionalDist(EvalContext* ctx, const IntMatrix& samples,
                              size_t col, Matrix* probs) const {
    ConditionalDistWith(ctx, samples, col, probs);
  }
  /// Sessions own an EvalContext each, so they can run concurrently.
  std::unique_ptr<SamplingSession> StartSession(size_t batch) override;
  bool SupportsConcurrentSampling() const override { return true; }
  /// Sessions route through ConditionalDistWith, a pure function of
  /// (samples, col) — see StackedConditionalDist above.
  bool SupportsStackedEvaluation() const override { return true; }
  /// The widest GEMM in the stacked chain is the FFN inner layer (or the
  /// d_model-wide projections when ffn_hidden is smaller).
  size_t StackedWidthHint() const override {
    return std::max(config_.d_model, config_.ffn_hidden);
  }
  void LogProbRows(const IntMatrix& tuples,
                   std::vector<double>* out_nats) override;
  /// Switches inference GEMMs (projections, FFN, untied heads) to `kernel`;
  /// training stays scalar. kSimdInt8 quantizes those Linears; embedding
  /// tables (input encoding + tied logits) and the per-head attention math
  /// stay fp32.
  void SetInferenceKernel(KernelKind kernel) override;
  KernelKind inference_kernel() const override { return inference_kernel_; }

  // --- TrainableModel ---
  double ForwardBackward(const IntMatrix& codes) override;
  std::vector<Parameter*> Parameters() override;

  /// Weight (de)serialization; the loading model must be constructed with
  /// the same domains and Config.
  Status Save(const std::string& path);
  Status Load(const std::string& path);

  const Config& config() const { return config_; }

 private:
  struct Block {
    Block(const std::string& name, size_t d_model, size_t ffn_hidden,
          Rng* rng);

    LayerNorm ln1;
    Linear wq, wk, wv, wo;
    LayerNorm ln2;
    Mlp ffn;

    // Forward stashes (batch*T rows unless noted).
    Matrix ln1_out, q, k, v;
    Matrix attn_probs;  // (batch*heads*T x T), causal rows
    Matrix attn_cat;    // concatenated head outputs
    Matrix attn_proj;
    Matrix res1;        // x + attn_proj
    Matrix ln2_out;
    Matrix ffn_out;
  };

  /// Runs the trunk on the first `seq_len` token positions of `codes`
  /// (column j feeds position j+1; columns >= seq_len-1 are never read).
  /// Leaves the final normalized activations in y_ (batch*seq_len x E),
  /// keeping every block's stashes for backward. `kernel` picks the GEMM
  /// family (training passes kScalar).
  void ForwardTrunk(const IntMatrix& codes, size_t seq_len,
                    KernelKind kernel);

  /// Inference trunk through caller scratch: same math as ForwardTrunk but
  /// activations ping-pong through one set of matrices (no per-block
  /// stashes) and the FFN uses its stateless inference path. Const: only
  /// `ctx` is written. Leaves the normalized activations in ctx->y.
  void ForwardTrunkWith(EvalContext* ctx, const IntMatrix& codes,
                        size_t seq_len, KernelKind kernel) const;

  /// Head `col` logits from y_ position `col` into logits_ (batch x D_col).
  void HeadForward(size_t col, size_t batch, size_t seq_len,
                   KernelKind kernel);

  /// Head `col` logits from ctx->y into ctx->logits. Const.
  void HeadForwardWith(EvalContext* ctx, size_t col, size_t batch,
                       size_t seq_len, KernelKind kernel) const;

  /// Multi-head causal attention for one example/head pair, reading Q/K/V
  /// and writing probs/cat through explicit matrices so the training path
  /// (block stashes) and the inference path (EvalContext scratch) share
  /// the exact same arithmetic.
  static void AttendForward(const Matrix& qm, const Matrix& km,
                            const Matrix& vm, Matrix* probs, Matrix* cat,
                            size_t num_heads, size_t b, size_t h, size_t T);
  void AttendBackwardOne(Block* blk, size_t b, size_t h, size_t T,
                         const Matrix& dcat);

  std::vector<size_t> domains_;
  Config config_;
  Rng rng_;
  KernelKind inference_kernel_ = KernelKind::kScalar;

  std::vector<std::unique_ptr<Embedding>> embeds_;  // per column, width E
  Parameter pos_;  // (n x E) learned positional embedding
  Parameter sos_;  // (1 x E) start-of-tuple token
  std::vector<Block> blocks_;
  LayerNorm lnf_;
  std::vector<std::unique_ptr<Linear>> heads_;  // null under reuse

  // Training workspaces (ForwardBackward reads these stashes).
  std::vector<Matrix> xs_;  // xs_[l] = input to block l; xs_[L] = trunk out
  Matrix y_;                // lnf_(xs_[L])
  Matrix ybuf_, logits_, dlogits_, dybuf_;
  Matrix dy_, dx_, dres1_, dcat_, dq_, dk_, dv_, dtmp_, dtmp2_;
  std::vector<int32_t> targets_;

  // Member context for the single-threaded inference paths (the stateless
  // ConditionalDist, LogProbRows). Concurrent inference goes through
  // session-owned EvalContexts instead.
  EvalContext eval_;
};

}  // namespace naru
