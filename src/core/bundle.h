// Self-describing estimator persistence.
//
// MadeModel::Save/Load store only parameter tensors and require the caller
// to reconstruct the exact architecture first. A *bundle* additionally
// stores the column domains and the model configuration in a small text
// header, so a trained estimator can be reopened with a single call — the
// workflow a DBMS integration needs (train offline, ship the artifact to
// the optimizer process, §4.1).
//
// Layout: "<path>" is a text manifest, "<path>.weights" holds the tensors.
#pragma once

#include <memory>
#include <string>

#include "core/made.h"
#include "util/status.h"

namespace naru {

/// Writes the manifest + weights for a trained model.
Status SaveModelBundle(const std::string& path, MadeModel* model);

/// Reconstructs the model (architecture from the manifest, weights from
/// the sidecar file).
Result<std::unique_ptr<MadeModel>> LoadModelBundle(const std::string& path);

}  // namespace naru
