// Binary (de)serialization of named parameter sets.
//
// Format: magic "NARUPRM1", u64 count, then per parameter:
//   u32 name_len, name bytes, u64 rows, u64 cols, rows*cols float32.
// Loading matches parameters by name and requires identical shapes, so a
// model must be constructed with the same architecture before LoadParameters.
#pragma once

#include <string>
#include <vector>

#include "nn/parameter.h"
#include "util/status.h"

namespace naru {

/// Writes all parameter values to `path`.
Status SaveParameters(const std::string& path,
                      const std::vector<Parameter*>& params);

/// Reads parameter values from `path` into the matching (by name) entries
/// of `params`. Fails if any file entry is missing from `params` or any
/// shape differs.
Status LoadParameters(const std::string& path,
                      const std::vector<Parameter*>& params);

}  // namespace naru
