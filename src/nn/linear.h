// Fully-connected layer y = x W + b with explicit forward/backward.
//
// Layers are stateless with respect to activations: the caller owns the
// input/output matrices and passes the forward input back into Backward.
// This keeps memory management explicit and makes layers trivially reusable
// across batch sizes.
//
// Forward takes a KernelKind (kernel.h): the default kScalar is the
// reference path; kSimd runs the blocked SIMD kernels; kSimdInt8 uses the
// int8 weight panel prepared by PrepareInt8Inference (falling back to fp32
// SIMD when none is prepared). Backward is training-only and always scalar.
#pragma once

#include <string>

#include "nn/parameter.h"
#include "tensor/quant.h"
#include "util/random.h"

namespace naru {

class Linear {
 public:
  /// Constructs an (in_dim x out_dim) layer with Kaiming-uniform weights.
  Linear(std::string name, size_t in_dim, size_t out_dim, Rng* rng);

  size_t in_dim() const { return w_.value.rows(); }
  size_t out_dim() const { return w_.value.cols(); }

  /// y = x W + b. x is (batch x in), y resized to (batch x out).
  void Forward(const Matrix& x, Matrix* y,
               KernelKind kernel = KernelKind::kScalar,
               InputHint hint = InputHint::kDense) const;

  /// Given the forward input `x` and upstream gradient `dy`, accumulates
  /// dW += x^T dy, db += colsum(dy) and computes dx = dy W^T (skipped when
  /// dx == nullptr, e.g. at the first layer).
  void Backward(const Matrix& x, const Matrix& dy, Matrix* dx);

  /// (Re)quantizes the current weights into the int8 side panel used by
  /// kSimdInt8 forwards. Call after weights settle (model load / end of
  /// training); training updates do NOT requantize automatically.
  void PrepareInt8Inference();
  /// Drops the int8 panel (kSimdInt8 forwards fall back to fp32 SIMD).
  void ClearInt8Inference() { q8_.Clear(); }
  const QuantizedWeights& int8_weights() const { return q8_; }

  Parameter& weight() { return w_; }
  Parameter& bias() { return b_; }
  const Parameter& weight() const { return w_; }
  const Parameter& bias() const { return b_; }

  /// Appends this layer's parameters to `out` (optimizer registration).
  void CollectParameters(std::vector<Parameter*>* out) {
    out->push_back(&w_);
    out->push_back(&b_);
  }

 private:
  Parameter w_;  // (in x out)
  Parameter b_;  // (1 x out)
  QuantizedWeights q8_;
};

}  // namespace naru
