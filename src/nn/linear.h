// Fully-connected layer y = x W + b with explicit forward/backward.
//
// Layers are stateless with respect to activations: the caller owns the
// input/output matrices and passes the forward input back into Backward.
// This keeps memory management explicit and makes layers trivially reusable
// across batch sizes.
#pragma once

#include <string>

#include "nn/parameter.h"
#include "util/random.h"

namespace naru {

class Linear {
 public:
  /// Constructs an (in_dim x out_dim) layer with Kaiming-uniform weights.
  Linear(std::string name, size_t in_dim, size_t out_dim, Rng* rng);

  size_t in_dim() const { return w_.value.rows(); }
  size_t out_dim() const { return w_.value.cols(); }

  /// y = x W + b. x is (batch x in), y resized to (batch x out).
  void Forward(const Matrix& x, Matrix* y) const;

  /// Given the forward input `x` and upstream gradient `dy`, accumulates
  /// dW += x^T dy, db += colsum(dy) and computes dx = dy W^T (skipped when
  /// dx == nullptr, e.g. at the first layer).
  void Backward(const Matrix& x, const Matrix& dy, Matrix* dx);

  Parameter& weight() { return w_; }
  Parameter& bias() { return b_; }
  const Parameter& weight() const { return w_; }
  const Parameter& bias() const { return b_; }

  /// Appends this layer's parameters to `out` (optimizer registration).
  void CollectParameters(std::vector<Parameter*>* out) {
    out->push_back(&w_);
    out->push_back(&b_);
  }

 private:
  Parameter w_;  // (in x out)
  Parameter b_;  // (1 x out)
};

}  // namespace naru
