#include "nn/embedding.h"

#include <cstring>

#include "nn/init.h"

namespace naru {

Embedding::Embedding(std::string name, size_t num, size_t dim, Rng* rng)
    : table_(name + ".emb", num, dim) {
  NormalInit(&table_.value, /*std_dev=*/0.1, rng);
}

void Embedding::Lookup(const int32_t* codes, size_t batch, Matrix* dst,
                       size_t dst_offset) const {
  const size_t d = dim();
  NARU_CHECK(dst->rows() >= batch && dst_offset + d <= dst->cols());
  for (size_t r = 0; r < batch; ++r) {
    const int32_t code = codes[r];
    NARU_DCHECK(code >= 0 && static_cast<size_t>(code) < num());
    std::memcpy(dst->Row(r) + dst_offset, table_.value.Row(code),
                d * sizeof(float));
  }
}

void Embedding::Accumulate(const int32_t* codes, size_t batch,
                           const Matrix& dsrc, size_t src_offset) {
  const size_t d = dim();
  NARU_CHECK(dsrc.rows() >= batch && src_offset + d <= dsrc.cols());
  for (size_t r = 0; r < batch; ++r) {
    const int32_t code = codes[r];
    NARU_DCHECK(code >= 0 && static_cast<size_t>(code) < num());
    float* grow = table_.grad.Row(code);
    const float* srow = dsrc.Row(r) + src_offset;
    for (size_t j = 0; j < d; ++j) grow[j] += srow[j];
  }
}

}  // namespace naru
