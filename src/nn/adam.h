// Adam optimizer (Kingma & Ba, 2015) over a registered parameter set,
// with optional global-norm gradient clipping.
#pragma once

#include <vector>

#include "nn/parameter.h"

namespace naru {

struct AdamOptions {
  double lr = 2e-3;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double eps = 1e-8;
  /// 0 disables clipping.
  double clip_global_norm = 0.0;
};

class Adam {
 public:
  Adam(std::vector<Parameter*> params, AdamOptions opts);

  /// Applies one update from the accumulated gradients, then zeroes them.
  void Step();

  /// Zeroes all gradients without stepping.
  void ZeroGrad();

  void set_lr(double lr) { opts_.lr = lr; }
  double lr() const { return opts_.lr; }
  int64_t step_count() const { return t_; }

 private:
  std::vector<Parameter*> params_;
  AdamOptions opts_;
  std::vector<Matrix> m_;
  std::vector<Matrix> v_;
  int64_t t_ = 0;
};

}  // namespace naru
