#include "nn/masked_linear.h"

#include "nn/init.h"
#include "tensor/gemm.h"

namespace naru {

MaskedLinear::MaskedLinear(std::string name, size_t in_dim, size_t out_dim,
                           Matrix mask, Rng* rng)
    : w_(name + ".w", in_dim, out_dim),
      b_(name + ".b", 1, out_dim),
      mask_(std::move(mask)) {
  NARU_CHECK(mask_.rows() == in_dim && mask_.cols() == out_dim);
  KaimingUniformInit(&w_.value, in_dim, rng);
  ProjectWeights();
}

void MaskedLinear::Forward(const Matrix& x, Matrix* y, KernelKind kernel,
                           InputHint hint) const {
  // Weights are maintained pre-masked, so the plain GEMM is correct.
  if (kernel == KernelKind::kSimdInt8 && q8_.valid()) {
    GemmNNInt8(x, q8_, y, /*accumulate=*/false, hint);
  } else {
    GemmNN(x, w_.value, y, /*accumulate=*/false, kernel, hint);
  }
  AddBiasRows(b_.value, y);
}

void MaskedLinear::Backward(const Matrix& x, const Matrix& dy, Matrix* dx,
                            bool accumulate_dx) {
  // dx must use the masked weights (they are, by invariant).
  if (dx != nullptr) GemmNT(dy, w_.value, dx, accumulate_dx);
  // Weight grad must be masked so masked entries never receive updates.
  Matrix dw;
  GemmTN(x, dy, &dw, /*accumulate=*/false);
  const float* m = mask_.data();
  const float* src = dw.data();
  float* dst = w_.grad.data();
  for (size_t i = 0; i < dw.size(); ++i) dst[i] += src[i] * m[i];
  AccumulateBiasGrad(dy, &b_.grad);
}

void MaskedLinear::ProjectWeights() {
  const float* m = mask_.data();
  float* w = w_.value.data();
  for (size_t i = 0; i < w_.value.size(); ++i) w[i] *= m[i];
}

void MaskedLinear::PrepareInt8Inference() {
  QuantizeWeightsPerColumn(w_.value, &q8_);
}

}  // namespace naru
