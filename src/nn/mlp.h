// Generic ReLU multi-layer perceptron with stored activations.
//
// Used by the MSCN baseline's regression head and by Naru's architecture-A
// per-column networks. The MLP owns its intermediate activation buffers, so
// Forward must be followed by a matching Backward (training), or used alone
// (inference).
#pragma once

#include <string>
#include <vector>

#include "nn/linear.h"

namespace naru {

class Mlp {
 public:
  /// dims = {in, hidden..., out}. ReLU between layers, linear final layer.
  Mlp(std::string name, const std::vector<size_t>& dims, Rng* rng);

  size_t in_dim() const { return layers_.front().in_dim(); }
  size_t out_dim() const { return layers_.back().out_dim(); }

  /// y = MLP(x); stashes activations for a subsequent Backward. The kernel
  /// applies to the GEMMs only; pass non-scalar kernels solely on inference
  /// paths (Backward assumes scalar-forward arithmetic).
  void Forward(const Matrix& x, Matrix* y,
               KernelKind kernel = KernelKind::kScalar);

  /// Inference-only forward that does not touch the stored activations
  /// (safe to call concurrently from const contexts).
  void ForwardInference(const Matrix& x, Matrix* y,
                        KernelKind kernel = KernelKind::kScalar) const;

  /// (Re)quantizes every layer for kSimdInt8 inference (see Linear).
  void PrepareInt8Inference() {
    for (auto& l : layers_) l.PrepareInt8Inference();
  }

  /// Backpropagates dy (w.r.t. the last Forward output), accumulating
  /// parameter grads; writes dx unless nullptr.
  void Backward(const Matrix& dy, Matrix* dx);

  void CollectParameters(std::vector<Parameter*>* out) {
    for (auto& l : layers_) l.CollectParameters(out);
  }

  std::vector<Linear>& layers() { return layers_; }

 private:
  std::vector<Linear> layers_;
  // inputs_[i] is the input fed to layer i on the last Forward;
  // pre_[i] is layer i's pre-activation output.
  std::vector<Matrix> inputs_;
  std::vector<Matrix> pre_;
};

}  // namespace naru
