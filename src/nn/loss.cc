#include "nn/loss.h"

#include <algorithm>
#include <cmath>

#include "util/macros.h"

namespace naru {

double SoftmaxCrossEntropySlice(const Matrix& logits, size_t begin,
                                size_t end, const int32_t* targets,
                                float grad_scale, Matrix* dlogits) {
  NARU_CHECK(end <= logits.cols() && begin < end);
  NARU_CHECK(dlogits->rows() == logits.rows() &&
             dlogits->cols() == logits.cols());
  const size_t k = end - begin;
  double total_nll = 0;
  for (size_t r = 0; r < logits.rows(); ++r) {
    const float* in = logits.Row(r) + begin;
    float* dout = dlogits->Row(r) + begin;
    const int32_t target = targets[r];
    NARU_DCHECK(target >= 0 && static_cast<size_t>(target) < k);
    float mx = in[0];
    for (size_t i = 1; i < k; ++i) mx = std::max(mx, in[i]);
    double sum = 0;
    for (size_t i = 0; i < k; ++i) {
      sum += std::exp(static_cast<double>(in[i]) - mx);
    }
    const double log_z = static_cast<double>(mx) + std::log(sum);
    total_nll += log_z - static_cast<double>(in[target]);
    const double inv_sum = 1.0 / sum;
    for (size_t i = 0; i < k; ++i) {
      const double p =
          std::exp(static_cast<double>(in[i]) - mx) * inv_sum;
      dout[i] += static_cast<float>(p) * grad_scale;
    }
    dout[target] -= grad_scale;
  }
  return total_nll;
}

double MeanSquaredError(const Matrix& pred, const float* targets,
                        Matrix* dpred) {
  NARU_CHECK(pred.cols() == 1);
  const size_t n = pred.rows();
  NARU_CHECK(n > 0);
  dpred->Resize(n, 1);
  double total = 0;
  const float inv_n = 1.0f / static_cast<float>(n);
  for (size_t r = 0; r < n; ++r) {
    const float diff = pred.At(r, 0) - targets[r];
    total += static_cast<double>(diff) * diff;
    dpred->At(r, 0) = 2.0f * diff * inv_n;
  }
  return total / static_cast<double>(n);
}

}  // namespace naru
