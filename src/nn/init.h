// Weight initialization schemes.
#pragma once

#include "tensor/matrix.h"
#include "util/random.h"

namespace naru {

/// He/Kaiming uniform init: U(-sqrt(6/fan_in), +sqrt(6/fan_in)).
/// Appropriate for ReLU MLPs; used for Linear/MaskedLinear weights.
void KaimingUniformInit(Matrix* w, size_t fan_in, Rng* rng);

/// N(0, std) init; used for embedding tables (std defaults to small).
void NormalInit(Matrix* w, double std_dev, Rng* rng);

}  // namespace naru
