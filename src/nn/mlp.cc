#include "nn/mlp.h"

#include "tensor/ops.h"
#include "util/string_util.h"

namespace naru {

Mlp::Mlp(std::string name, const std::vector<size_t>& dims, Rng* rng) {
  NARU_CHECK(dims.size() >= 2);
  layers_.reserve(dims.size() - 1);
  for (size_t i = 0; i + 1 < dims.size(); ++i) {
    layers_.emplace_back(StrFormat("%s.l%zu", name.c_str(), i), dims[i],
                         dims[i + 1], rng);
  }
  inputs_.resize(layers_.size());
  pre_.resize(layers_.size());
}

void Mlp::Forward(const Matrix& x, Matrix* y, KernelKind kernel) {
  const Matrix* cur = &x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    inputs_[i] = *cur;  // copy; batches are small relative to weights
    layers_[i].Forward(inputs_[i], &pre_[i], kernel);
    if (i + 1 < layers_.size()) {
      ReluForward(pre_[i], &pre_[i]);
      cur = &pre_[i];
    }
  }
  *y = pre_.back();
}

void Mlp::ForwardInference(const Matrix& x, Matrix* y,
                           KernelKind kernel) const {
  Matrix a = x;
  Matrix b;
  for (size_t i = 0; i < layers_.size(); ++i) {
    layers_[i].Forward(a, &b, kernel);
    if (i + 1 < layers_.size()) ReluForward(b, &b);
    a = std::move(b);
    b = Matrix();
  }
  *y = std::move(a);
}

void Mlp::Backward(const Matrix& dy, Matrix* dx) {
  Matrix grad = dy;
  Matrix grad_prev;
  for (size_t i = layers_.size(); i-- > 0;) {
    Matrix* out_grad = (i == 0) ? dx : &grad_prev;
    layers_[i].Backward(inputs_[i], grad, out_grad);
    if (i > 0) {
      // inputs_[i] is post-ReLU of layer i-1; its positivity pattern equals
      // that of the pre-activation, so it serves as the ReLU backward gate.
      ReluBackward(inputs_[i], grad_prev, &grad_prev);
      grad = std::move(grad_prev);
      grad_prev = Matrix();
    }
  }
}

}  // namespace naru
