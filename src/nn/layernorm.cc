#include "nn/layernorm.h"

#include <cmath>

#include "util/macros.h"

namespace naru {

LayerNorm::LayerNorm(std::string name, size_t dim)
    : gamma_(name + ".gamma", 1, dim), beta_(name + ".beta", 1, dim) {
  gamma_.value.Fill(1.0f);
}

namespace {

// Mean and 1/sqrt(var + eps) of one row.
void RowStats(const float* x, size_t dim, float eps, float* mean,
              float* rstd) {
  double sum = 0;
  for (size_t c = 0; c < dim; ++c) sum += x[c];
  const float mu = static_cast<float>(sum / static_cast<double>(dim));
  double ss = 0;
  for (size_t c = 0; c < dim; ++c) {
    const float d = x[c] - mu;
    ss += static_cast<double>(d) * d;
  }
  *mean = mu;
  *rstd = 1.0f / std::sqrt(static_cast<float>(ss / static_cast<double>(dim)) +
                           eps);
}

}  // namespace

void LayerNorm::Forward(const Matrix& x, Matrix* y) const {
  const size_t dim = this->dim();
  NARU_CHECK(x.cols() == dim);
  y->Resize(x.rows(), dim);
  const float* g = gamma_.value.data();
  const float* b = beta_.value.data();
  for (size_t r = 0; r < x.rows(); ++r) {
    const float* xr = x.Row(r);
    float* yr = y->Row(r);
    float mu, rstd;
    RowStats(xr, dim, kEps, &mu, &rstd);
    for (size_t c = 0; c < dim; ++c) {
      yr[c] = (xr[c] - mu) * rstd * g[c] + b[c];
    }
  }
}

void LayerNorm::Backward(const Matrix& x, const Matrix& dy, Matrix* dx) {
  const size_t dim = this->dim();
  NARU_CHECK(x.cols() == dim && dy.cols() == dim && dy.rows() == x.rows());
  dx->Resize(x.rows(), dim);
  const float* g = gamma_.value.data();
  float* dg = gamma_.grad.data();
  float* db = beta_.grad.data();
  const float inv_dim = 1.0f / static_cast<float>(dim);
  for (size_t r = 0; r < x.rows(); ++r) {
    const float* xr = x.Row(r);
    const float* dyr = dy.Row(r);
    float* dxr = dx->Row(r);
    float mu, rstd;
    RowStats(xr, dim, kEps, &mu, &rstd);
    // dxhat_c = dy_c * gamma_c;
    // dx = rstd * (dxhat - mean(dxhat) - xhat * mean(dxhat * xhat)).
    double sum_dxhat = 0, sum_dxhat_xhat = 0;
    for (size_t c = 0; c < dim; ++c) {
      const float xhat = (xr[c] - mu) * rstd;
      const float dxhat = dyr[c] * g[c];
      sum_dxhat += dxhat;
      sum_dxhat_xhat += static_cast<double>(dxhat) * xhat;
      dg[c] += dyr[c] * xhat;
      db[c] += dyr[c];
    }
    const float m1 = static_cast<float>(sum_dxhat) * inv_dim;
    const float m2 = static_cast<float>(sum_dxhat_xhat) * inv_dim;
    for (size_t c = 0; c < dim; ++c) {
      const float xhat = (xr[c] - mu) * rstd;
      const float dxhat = dyr[c] * g[c];
      dxr[c] = rstd * (dxhat - m1 - xhat * m2);
    }
  }
}

}  // namespace naru
