#include "nn/linear.h"

#include "nn/init.h"
#include "tensor/gemm.h"

namespace naru {

Linear::Linear(std::string name, size_t in_dim, size_t out_dim, Rng* rng)
    : w_(name + ".w", in_dim, out_dim), b_(name + ".b", 1, out_dim) {
  KaimingUniformInit(&w_.value, in_dim, rng);
}

void Linear::Forward(const Matrix& x, Matrix* y, KernelKind kernel,
                     InputHint hint) const {
  if (kernel == KernelKind::kSimdInt8 && q8_.valid()) {
    GemmNNInt8(x, q8_, y, /*accumulate=*/false, hint);
  } else {
    GemmNN(x, w_.value, y, /*accumulate=*/false, kernel, hint);
  }
  AddBiasRows(b_.value, y);
}

void Linear::Backward(const Matrix& x, const Matrix& dy, Matrix* dx) {
  GemmTN(x, dy, &w_.grad, /*accumulate=*/true);
  AccumulateBiasGrad(dy, &b_.grad);
  if (dx != nullptr) GemmNT(dy, w_.value, dx);
}

void Linear::PrepareInt8Inference() {
  QuantizeWeightsPerColumn(w_.value, &q8_);
}

}  // namespace naru
