// Row-wise layer normalization (Ba et al. 2016), used by the Transformer
// blocks (§3.1/§4.3 list the Transformer [54] among the pluggable
// autoregressive architectures).
//
// Follows the Linear convention: the layer is stateless with respect to
// activations — Backward recomputes the per-row mean/rstd from the forward
// input, which is cheaper than stashing normalized activations for the
// small feature widths used here.
#pragma once

#include <string>

#include "nn/parameter.h"

namespace naru {

class LayerNorm {
 public:
  /// Normalizes each length-`dim` row to zero mean / unit variance, then
  /// applies the learned affine y = xhat * gamma + beta.
  LayerNorm(std::string name, size_t dim);

  size_t dim() const { return gamma_.value.cols(); }

  /// y = LN(x); x is (batch x dim), y resized to match (y may alias x only
  /// if the caller no longer needs x — Backward requires the original x).
  void Forward(const Matrix& x, Matrix* y) const;

  /// Given the forward input `x` and upstream gradient `dy`, accumulates
  /// dgamma/dbeta and writes dx (may alias dy; never aliases x).
  void Backward(const Matrix& x, const Matrix& dy, Matrix* dx);

  Parameter& gamma() { return gamma_; }
  Parameter& beta() { return beta_; }

  void CollectParameters(std::vector<Parameter*>* out) {
    out->push_back(&gamma_);
    out->push_back(&beta_);
  }

 private:
  static constexpr float kEps = 1e-5f;

  Parameter gamma_;  // (1 x dim), initialized to 1
  Parameter beta_;   // (1 x dim), initialized to 0
};

}  // namespace naru
