#include "nn/init.h"

#include <cmath>

namespace naru {

// Initializers draw row-wise over the logical columns: the RNG stream is a
// function of the logical shape, not the padded stride (keeps checkpoints
// and seeded runs stable across padding changes), and row padding stays
// zero as matrix.h requires.

void KaimingUniformInit(Matrix* w, size_t fan_in, Rng* rng) {
  NARU_CHECK(fan_in > 0);
  const double bound = std::sqrt(6.0 / static_cast<double>(fan_in));
  for (size_t r = 0; r < w->rows(); ++r) {
    float* row = w->Row(r);
    for (size_t c = 0; c < w->cols(); ++c) {
      row[c] =
          static_cast<float>((rng->UniformDouble() * 2.0 - 1.0) * bound);
    }
  }
}

void NormalInit(Matrix* w, double std_dev, Rng* rng) {
  for (size_t r = 0; r < w->rows(); ++r) {
    float* row = w->Row(r);
    for (size_t c = 0; c < w->cols(); ++c) {
      row[c] = static_cast<float>(rng->Gaussian() * std_dev);
    }
  }
}

}  // namespace naru
