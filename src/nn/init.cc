#include "nn/init.h"

#include <cmath>

namespace naru {

void KaimingUniformInit(Matrix* w, size_t fan_in, Rng* rng) {
  NARU_CHECK(fan_in > 0);
  const double bound = std::sqrt(6.0 / static_cast<double>(fan_in));
  float* data = w->data();
  for (size_t i = 0; i < w->size(); ++i) {
    data[i] = static_cast<float>((rng->UniformDouble() * 2.0 - 1.0) * bound);
  }
}

void NormalInit(Matrix* w, double std_dev, Rng* rng) {
  float* data = w->data();
  for (size_t i = 0; i < w->size(); ++i) {
    data[i] = static_cast<float>(rng->Gaussian() * std_dev);
  }
}

}  // namespace naru
