// Trainable parameter: a value matrix plus its gradient accumulator.
#pragma once

#include <string>
#include <vector>

#include "tensor/matrix.h"

namespace naru {

/// One trainable tensor. Layers expose their parameters so optimizers can
/// iterate over them uniformly.
struct Parameter {
  std::string name;
  Matrix value;
  Matrix grad;

  Parameter() = default;
  Parameter(std::string n, size_t rows, size_t cols)
      : name(std::move(n)), value(rows, cols), grad(rows, cols) {}

  void ZeroGrad() { grad.Zero(); }

  /// Number of scalar weights (logical shape, excludes row padding).
  size_t count() const { return value.rows() * value.cols(); }
};

/// Total scalar count across a parameter set.
inline size_t TotalParameterCount(const std::vector<Parameter*>& params) {
  size_t n = 0;
  for (const auto* p : params) n += p->count();
  return n;
}

/// Model size in bytes assuming float32 storage (paper reports MB sizes).
inline size_t ParameterBytes(const std::vector<Parameter*>& params) {
  return TotalParameterCount(params) * sizeof(float);
}

}  // namespace naru
