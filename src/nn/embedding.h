// Learnable embedding table for large-domain column encodings (§4.2).
//
// Forward looks up rows by dictionary code and writes them into a column
// slice of the destination batch matrix; backward scatters gradients back
// into the used rows. The same table doubles as the output decoder under
// the paper's "embedding reuse" optimization (logits = H E^T).
#pragma once

#include <cstdint>
#include <string>

#include "nn/parameter.h"
#include "util/random.h"

namespace naru {

class Embedding {
 public:
  /// `num` domain entries, `dim` embedding width (the paper's h, default 64).
  Embedding(std::string name, size_t num, size_t dim, Rng* rng);

  size_t num() const { return table_.value.rows(); }
  size_t dim() const { return table_.value.cols(); }

  /// For each batch row r, copies table[codes[r]] into
  /// dst->Row(r)[dst_offset .. dst_offset+dim).
  void Lookup(const int32_t* codes, size_t batch, Matrix* dst,
              size_t dst_offset) const;

  /// Scatters the gradient slice back: grad_table[codes[r]] +=
  /// dsrc->Row(r)[offset..offset+dim).
  void Accumulate(const int32_t* codes, size_t batch, const Matrix& dsrc,
                  size_t src_offset);

  Parameter& table() { return table_; }
  const Parameter& table() const { return table_; }

  void CollectParameters(std::vector<Parameter*>* out) {
    out->push_back(&table_);
  }

 private:
  Parameter table_;  // (num x dim)
};

}  // namespace naru
