#include "nn/serialize.h"

#include <cstring>
#include <fstream>
#include <unordered_map>

#include "util/string_util.h"

namespace naru {

namespace {
constexpr char kMagic[8] = {'N', 'A', 'R', 'U', 'P', 'R', 'M', '1'};

template <typename T>
void WritePod(std::ofstream& os, T v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
bool ReadPod(std::ifstream& is, T* v) {
  is.read(reinterpret_cast<char*>(v), sizeof(T));
  return is.good();
}
}  // namespace

Status SaveParameters(const std::string& path,
                      const std::vector<Parameter*>& params) {
  std::ofstream os(path, std::ios::binary);
  if (!os.good()) return Status::IOError("cannot open for write: " + path);
  os.write(kMagic, sizeof(kMagic));
  WritePod<uint64_t>(os, params.size());
  for (const auto* p : params) {
    WritePod<uint32_t>(os, static_cast<uint32_t>(p->name.size()));
    os.write(p->name.data(), static_cast<std::streamsize>(p->name.size()));
    WritePod<uint64_t>(os, p->value.rows());
    WritePod<uint64_t>(os, p->value.cols());
    // Row-wise: the file holds rows*cols floats regardless of the in-memory
    // padded stride (matrix.h), so the format is layout-independent.
    for (size_t r = 0; r < p->value.rows(); ++r) {
      os.write(reinterpret_cast<const char*>(p->value.Row(r)),
               static_cast<std::streamsize>(p->value.cols() * sizeof(float)));
    }
  }
  if (!os.good()) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Status LoadParameters(const std::string& path,
                      const std::vector<Parameter*>& params) {
  std::ifstream is(path, std::ios::binary);
  if (!is.good()) return Status::IOError("cannot open: " + path);
  char magic[8];
  is.read(magic, sizeof(magic));
  if (!is.good() || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("bad magic in parameter file: " + path);
  }
  std::unordered_map<std::string, Parameter*> by_name;
  for (auto* p : params) by_name[p->name] = p;

  uint64_t count = 0;
  if (!ReadPod(is, &count)) return Status::IOError("truncated file");
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t name_len = 0;
    if (!ReadPod(is, &name_len)) return Status::IOError("truncated file");
    std::string name(name_len, '\0');
    is.read(name.data(), name_len);
    uint64_t rows = 0;
    uint64_t cols = 0;
    if (!ReadPod(is, &rows) || !ReadPod(is, &cols)) {
      return Status::IOError("truncated file");
    }
    auto it = by_name.find(name);
    if (it == by_name.end()) {
      return Status::InvalidArgument("unknown parameter in file: " + name);
    }
    Parameter* p = it->second;
    if (p->value.rows() != rows || p->value.cols() != cols) {
      return Status::InvalidArgument(StrFormat(
          "shape mismatch for %s: file %llux%llu vs model %zux%zu",
          name.c_str(), static_cast<unsigned long long>(rows),
          static_cast<unsigned long long>(cols), p->value.rows(),
          p->value.cols()));
    }
    for (size_t r = 0; r < p->value.rows(); ++r) {
      is.read(reinterpret_cast<char*>(p->value.Row(r)),
              static_cast<std::streamsize>(p->value.cols() * sizeof(float)));
    }
    if (!is.good()) return Status::IOError("truncated tensor data");
  }
  return Status::OK();
}

}  // namespace naru
