// MADE-style masked fully-connected layer.
//
// A MaskedLinear is a Linear whose weight matrix is elementwise-multiplied
// by a fixed binary mask that enforces the autoregressive property
// (Germain et al., 2015). The mask is applied once to the initial weights
// and re-applied to every weight gradient, so masked entries stay exactly
// zero through training.
#pragma once

#include <string>

#include "nn/parameter.h"
#include "tensor/quant.h"
#include "util/random.h"

namespace naru {

class MaskedLinear {
 public:
  /// `mask` must be (in_dim x out_dim) with entries in {0, 1}.
  MaskedLinear(std::string name, size_t in_dim, size_t out_dim, Matrix mask,
               Rng* rng);

  size_t in_dim() const { return w_.value.rows(); }
  size_t out_dim() const { return w_.value.cols(); }

  /// Same kernel semantics as Linear::Forward. The int8 panel (when
  /// prepared) quantizes the pre-masked weights, so masked entries stay
  /// exactly zero in int8 too.
  void Forward(const Matrix& x, Matrix* y,
               KernelKind kernel = KernelKind::kScalar,
               InputHint hint = InputHint::kDense) const;

  /// Accumulates masked weight grads; dx computed unless nullptr.
  /// With `accumulate_dx`, dx += dy W^T instead of overwriting (used when
  /// several output heads feed gradient into one shared hidden layer).
  void Backward(const Matrix& x, const Matrix& dy, Matrix* dx,
                bool accumulate_dx = false);

  const Matrix& mask() const { return mask_; }
  Parameter& weight() { return w_; }
  Parameter& bias() { return b_; }

  void CollectParameters(std::vector<Parameter*>* out) {
    out->push_back(&w_);
    out->push_back(&b_);
  }

  /// Re-applies the mask to the weight values. Called after deserialization
  /// (and defensively after optimizer steps in debug builds).
  void ProjectWeights();

  /// (Re)quantizes the current (pre-masked) weights for kSimdInt8 forwards.
  void PrepareInt8Inference();
  void ClearInt8Inference() { q8_.Clear(); }
  const QuantizedWeights& int8_weights() const { return q8_; }

 private:
  Parameter w_;
  Parameter b_;
  Matrix mask_;
  QuantizedWeights q8_;
};

}  // namespace naru
