#include "nn/adam.h"

#include <cmath>

namespace naru {

Adam::Adam(std::vector<Parameter*> params, AdamOptions opts)
    : params_(std::move(params)), opts_(opts) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto* p : params_) {
    m_.emplace_back(p->value.rows(), p->value.cols());
    v_.emplace_back(p->value.rows(), p->value.cols());
  }
}

void Adam::Step() {
  ++t_;
  double scale = 1.0;
  if (opts_.clip_global_norm > 0) {
    double sq = 0;
    for (const auto* p : params_) sq += p->grad.SumSquares();
    const double norm = std::sqrt(sq);
    if (norm > opts_.clip_global_norm) scale = opts_.clip_global_norm / norm;
  }
  const double bc1 = 1.0 - std::pow(opts_.beta1, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(opts_.beta2, static_cast<double>(t_));
  const float b1 = static_cast<float>(opts_.beta1);
  const float b2 = static_cast<float>(opts_.beta2);
  const float one_minus_b1 = 1.0f - b1;
  const float one_minus_b2 = 1.0f - b2;
  const double step_size = opts_.lr / bc1;

  for (size_t i = 0; i < params_.size(); ++i) {
    Parameter* p = params_[i];
    float* w = p->value.data();
    float* g = p->grad.data();
    float* m = m_[i].data();
    float* v = v_[i].data();
    const size_t n = p->value.size();
    for (size_t j = 0; j < n; ++j) {
      const float grad = g[j] * static_cast<float>(scale);
      m[j] = b1 * m[j] + one_minus_b1 * grad;
      v[j] = b2 * v[j] + one_minus_b2 * grad * grad;
      const double vhat = static_cast<double>(v[j]) / bc2;
      w[j] -= static_cast<float>(step_size * m[j] /
                                 (std::sqrt(vhat) + opts_.eps));
      g[j] = 0.0f;
    }
  }
}

void Adam::ZeroGrad() {
  for (auto* p : params_) p->ZeroGrad();
}

}  // namespace naru
