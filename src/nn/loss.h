// Loss functions with fused gradient computation.
#pragma once

#include <cstdint>

#include "tensor/matrix.h"

namespace naru {

/// Softmax cross-entropy over a column slice of a logits batch.
///
/// For each batch row r, treats logits[r, begin:end) as unnormalized scores
/// of a categorical over (end-begin) classes with target `targets[r]`
/// (an offset within the slice). Adds the gradient
/// d(loss)/d(logits) = (softmax - onehot) * grad_scale into the same slice
/// of `dlogits` (which must be pre-sized to match logits; other columns are
/// untouched). Returns the summed negative log-likelihood in nats.
double SoftmaxCrossEntropySlice(const Matrix& logits, size_t begin,
                                size_t end, const int32_t* targets,
                                float grad_scale, Matrix* dlogits);

/// Mean squared error loss between a (batch x 1) prediction and targets;
/// writes d(loss)/d(pred) into dpred (resized). Returns mean loss.
double MeanSquaredError(const Matrix& pred, const float* targets,
                        Matrix* dpred);

}  // namespace naru
