// Fixed-size worker pool with a blocking ParallelFor.
//
// Used to parallelize batched matrix multiplies, ground-truth query execution
// and dataset generation. The pool is created once (see GlobalThreadPool) and
// reused; ParallelFor partitions [begin, end) into contiguous chunks.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "util/macros.h"

namespace naru {

class ThreadPool {
 public:
  /// Creates `num_threads` workers (>= 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  NARU_DISALLOW_COPY_AND_ASSIGN(ThreadPool);

  size_t num_threads() const { return threads_.size(); }

  /// Runs fn(chunk_begin, chunk_end) over a partition of [begin, end) and
  /// blocks until all chunks complete. The calling thread participates.
  /// fn must be safe to call concurrently on disjoint ranges.
  void ParallelFor(size_t begin, size_t end,
                   const std::function<void(size_t, size_t)>& fn,
                   size_t min_chunk = 1);

 private:
  void Submit(std::function<void()> task);
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Process-wide pool sized to the hardware concurrency (capped at 16).
/// Lazily constructed, never destroyed before exit.
ThreadPool* GlobalThreadPool();

/// Convenience wrapper over GlobalThreadPool()->ParallelFor.
void ParallelFor(size_t begin, size_t end,
                 const std::function<void(size_t, size_t)>& fn,
                 size_t min_chunk = 1);

}  // namespace naru
