// Fixed-size worker pool with a blocking ParallelFor.
//
// Used to parallelize batched matrix multiplies, ground-truth query execution
// and dataset generation. The pool is created once (see GlobalThreadPool) and
// reused; ParallelFor partitions [begin, end) into contiguous chunks.
#pragma once

#include <cstddef>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "util/macros.h"
#include "util/thread_annotations.h"

namespace naru {

class ThreadPool {
 public:
  /// Creates `num_threads` workers (>= 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  NARU_DISALLOW_COPY_AND_ASSIGN(ThreadPool);

  size_t num_threads() const { return threads_.size(); }

  /// Runs fn(chunk_begin, chunk_end) over a partition of [begin, end) and
  /// blocks until all chunks complete. The calling thread participates.
  /// fn must be safe to call concurrently on disjoint ranges.
  void ParallelFor(size_t begin, size_t end,
                   const std::function<void(size_t, size_t)>& fn,
                   size_t min_chunk = 1) NARU_EXCLUDES(mu_);

 private:
  void Submit(std::function<void()> task) NARU_EXCLUDES(mu_);
  void WorkerLoop() NARU_EXCLUDES(mu_);

  std::vector<std::thread> threads_;
  Mutex mu_;
  std::queue<std::function<void()>> tasks_ NARU_GUARDED_BY(mu_);
  CondVar cv_;  ///< wakes workers: a task arrived or stop_ was set
  bool stop_ NARU_GUARDED_BY(mu_) = false;
};

/// Process-wide pool sized to the hardware concurrency (capped at 16).
/// Lazily constructed, never destroyed before exit.
ThreadPool* GlobalThreadPool();

/// Convenience wrapper over GlobalThreadPool()->ParallelFor. Runs inline on
/// the calling thread while a ScopedSerialRegion is active (see below).
void ParallelFor(size_t begin, size_t end,
                 const std::function<void(size_t, size_t)>& fn,
                 size_t min_chunk = 1);

/// While alive, the free-function ParallelFor runs its body inline on the
/// calling thread instead of fanning out to the global pool. Used by code
/// that manages parallelism at a coarser grain (the sharded progressive
/// sampler, the serving engine's per-query workers) so the fine-grained
/// kernel parallelism in gemm/ops does not oversubscribe the pool — and so
/// a "1 thread" serving configuration really uses one thread. Nesting-safe;
/// the flag is per-thread.
class ScopedSerialRegion {
 public:
  ScopedSerialRegion();
  ~ScopedSerialRegion();
  NARU_DISALLOW_COPY_AND_ASSIGN(ScopedSerialRegion);

  /// True when the calling thread is inside a ScopedSerialRegion.
  static bool Active();
};

}  // namespace naru
