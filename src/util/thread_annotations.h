// Clang thread-safety annotations + annotation-aware mutex primitives.
//
// The serving stack promises lock-discipline invariants in prose ("the
// outbox block is shared with engine callbacks under mu", "caches +
// stats" behind one engine mutex). This header turns those sentences into
// machine-checked contracts: state is declared NARU_GUARDED_BY its mutex,
// internal helpers declare NARU_REQUIRES, and a Clang build with
// `-Wthread-safety -Werror=thread-safety` (CMake -DNARU_THREAD_SAFETY=ON;
// the CI `lint` job runs it) refuses to compile an access outside the
// lock. Under GCC — which has no thread-safety analysis — every macro
// expands to nothing and the wrappers compile to the std primitives they
// wrap, so the annotations are free everywhere the analysis cannot run.
//
// Use the wrappers, not the std types, for new synchronized state:
//   naru::Mutex mu_;                    // capability the analysis tracks
//   int value_ NARU_GUARDED_BY(mu_);    // enforced, not just documented
//   naru::MutexLock lock(&mu_);         // scoped acquisition
//   naru::CondVar cv_;                  // waits keep mu_ held (REQUIRES)
// tools/check_repo_rules.py (the repo lint gate) rejects naked std::mutex
// / std::condition_variable under src/ outside this header so the
// analysis can never be quietly bypassed.
//
// Annotation-analysis caveat that shaped the call sites: Clang does not
// propagate lock state into lambda bodies, so a cv-wait predicate written
// as a capturing lambda would warn on every guarded read inside it. The
// repo therefore writes waits as explicit loops over NARU_REQUIRES
// predicate helpers:
//   while (!ReadyLocked()) cv_.Wait(mu_);
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

// The attribute spellings, active only where the analysis exists. GCC
// defines __GNUC__ but not the capability attributes; probing
// __has_attribute keeps the header correct for any future compiler.
#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define NARU_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef NARU_THREAD_ANNOTATION
#define NARU_THREAD_ANNOTATION(x)  // no analysis on this compiler
#endif

/// Declares that a member is protected by the given capability (mutex):
/// reads require the lock held (shared or exclusive), writes require it
/// exclusive.
#define NARU_GUARDED_BY(x) NARU_THREAD_ANNOTATION(guarded_by(x))

/// Like NARU_GUARDED_BY for pointer members: the POINTED-TO data is
/// guarded (the pointer itself may be read freely).
#define NARU_PT_GUARDED_BY(x) NARU_THREAD_ANNOTATION(pt_guarded_by(x))

/// Declares that a function may only be called with the capability held
/// (and that it does not release it).
#define NARU_REQUIRES(...) \
  NARU_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Declares that a function acquires the capability (and returns with it
/// held).
#define NARU_ACQUIRE(...) \
  NARU_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Declares that a function releases the capability.
#define NARU_RELEASE(...) \
  NARU_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Declares that a function attempts the capability, acquiring it exactly
/// when it returns `result`.
#define NARU_TRY_ACQUIRE(result, ...) \
  NARU_THREAD_ANNOTATION(try_acquire_capability(result, __VA_ARGS__))

/// Declares that the caller must NOT hold the capability (deadlock
/// documentation: public entry points that take the lock themselves).
#define NARU_EXCLUDES(...) \
  NARU_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Declares that a function returns a reference to the capability that
/// guards the returned/handed-out state.
#define NARU_RETURN_CAPABILITY(x) \
  NARU_THREAD_ANNOTATION(lock_returned(x))

/// Marks a type as a capability the analysis tracks.
#define NARU_CAPABILITY(x) NARU_THREAD_ANNOTATION(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases.
#define NARU_SCOPED_CAPABILITY NARU_THREAD_ANNOTATION(scoped_lockable)

/// Escape hatch: disables the analysis for one function. Reserve for
/// provably-correct patterns the analysis cannot express; every use needs
/// a comment saying why it is sound.
#define NARU_NO_THREAD_SAFETY_ANALYSIS \
  NARU_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace naru {

/// An annotated std::mutex: the capability object NARU_GUARDED_BY /
/// NARU_REQUIRES refer to. Also satisfies BasicLockable (lower-case
/// lock/unlock) so std::condition_variable_any can release and reacquire
/// it inside CondVar::Wait.
class NARU_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() NARU_ACQUIRE() { mu_.lock(); }
  void Unlock() NARU_RELEASE() { mu_.unlock(); }
  bool TryLock() NARU_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// BasicLockable surface for std::condition_variable_any (CondVar
  /// below). Annotated like Lock/Unlock so a stray direct use is tracked.
  void lock() NARU_ACQUIRE() { mu_.lock(); }
  void unlock() NARU_RELEASE() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

/// Scoped acquisition of a Mutex (the std::lock_guard analogue the
/// analysis understands).
class NARU_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) NARU_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() NARU_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

/// Condition variable over naru::Mutex. Every wait REQUIRES the mutex:
/// it is held at entry, released while blocked, and reacquired before
/// returning — which is exactly what the analysis assumes when the
/// annotation says "requires", so guarded predicate state may be read
/// immediately before and after a wait. Write waits as explicit loops
/// over NARU_REQUIRES predicate helpers (see the header comment):
///   while (!ReadyLocked()) cv_.Wait(mu_);
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified (spurious wakeups possible — always re-check
  /// the predicate in a loop).
  void Wait(Mutex& mu) NARU_REQUIRES(mu) { cv_.wait(mu); }

  /// Blocks until notified or `deadline`; std::cv_status::timeout when the
  /// deadline passed.
  template <typename Clock, typename Duration>
  std::cv_status WaitUntil(
      Mutex& mu, const std::chrono::time_point<Clock, Duration>& deadline)
      NARU_REQUIRES(mu) {
    return cv_.wait_until(mu, deadline);
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace naru
