#include "util/logging.h"

#include <atomic>
#include <cstdio>

#include "util/env_config.h"
#include "util/string_util.h"

namespace naru {

namespace {
// Lazily-initialized log level (-1 = unread). Relaxed order everywhere:
// the value is a self-contained int — no other data is published through
// it — and the CAS's RMW atomicity alone guarantees exactly one thread's
// env read wins, so racing initializers still agree on the level.
std::atomic<int> g_level{-1};

int LoadLevel() {
  int expected = -1;
  int from_env = static_cast<int>(GetEnvInt("NARU_LOG_LEVEL", 1));
  if (from_env < 0) from_env = 0;
  if (from_env > 4) from_env = 4;
  g_level.compare_exchange_strong(expected, from_env,
                                  std::memory_order_relaxed);
  return g_level.load(std::memory_order_relaxed);
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() {
  int level = g_level.load(std::memory_order_relaxed);
  if (level < 0) level = LoadLevel();
  return static_cast<LogLevel>(level);
}

void SetLogLevel(LogLevel level) {
  // Relaxed for the same reason as LoadLevel: the level is the only datum.
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

void LogMessage(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < static_cast<int>(GetLogLevel())) return;
  std::fprintf(stderr, "[naru %s] %s\n", LevelName(level), msg.c_str());
}

}  // namespace naru
