#include "util/logging.h"

#include <atomic>
#include <cstdio>

#include "util/env_config.h"
#include "util/string_util.h"

namespace naru {

namespace {
std::atomic<int> g_level{-1};

int LoadLevel() {
  int expected = -1;
  int from_env = static_cast<int>(GetEnvInt("NARU_LOG_LEVEL", 1));
  if (from_env < 0) from_env = 0;
  if (from_env > 4) from_env = 4;
  g_level.compare_exchange_strong(expected, from_env);
  return g_level.load();
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() {
  int level = g_level.load();
  if (level < 0) level = LoadLevel();
  return static_cast<LogLevel>(level);
}

void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }

void LogMessage(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < static_cast<int>(GetLogLevel())) return;
  std::fprintf(stderr, "[naru %s] %s\n", LevelName(level), msg.c_str());
}

}  // namespace naru
