// Exact quantile accumulation for error/latency reporting.
//
// The paper reports q-errors at {median, 95th, 99th, max}; workloads are a
// few thousand queries so an exact (store-all) accumulator is appropriate.
#pragma once

#include <string>
#include <vector>

namespace naru {

/// Collects doubles and answers exact quantile queries.
class QuantileSketch {
 public:
  void Add(double x) {
    values_.push_back(x);
    sorted_ = false;
  }

  size_t count() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  /// Exact q-quantile with linear interpolation, q in [0, 1].
  /// Quantile(0.5) is the median, Quantile(1.0) the maximum.
  double Quantile(double q) const;

  double Max() const { return Quantile(1.0); }
  double Min() const { return Quantile(0.0); }
  double Mean() const;

  const std::vector<double>& values() const { return values_; }

 private:
  mutable std::vector<double> values_;
  mutable bool sorted_ = false;
};

/// The paper's standard error report row: median / 95th / 99th / max.
struct ErrorQuantiles {
  double median = 0;
  double p95 = 0;
  double p99 = 0;
  double max = 0;
  size_t count = 0;
};

/// Computes the standard report from a sketch (all zeros when empty).
ErrorQuantiles ComputeErrorQuantiles(const QuantileSketch& sketch);

/// Formats a value the way the paper's tables do: "3 · 10^4" magnitudes
/// collapse to engineering-style strings; small values keep 2 decimals.
std::string FormatPaperNumber(double v);

}  // namespace naru
