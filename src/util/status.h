// Status / Result error-handling primitives (Arrow/Abseil style).
//
// Fallible operations return Status (or Result<T> when they produce a value)
// instead of throwing. Callers either handle the error or propagate it with
// NARU_RETURN_NOT_OK / NARU_ASSIGN_OR_RETURN.
#pragma once

#include <string>
#include <utility>
#include <variant>

#include "util/macros.h"

namespace naru {

/// Error categories for Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kIOError,
  kUnimplemented,
  kInternal,
  kDeadlineExceeded,
  kResourceExhausted,
};

/// Returns a human-readable name for a status code, e.g. "InvalidArgument".
const char* StatusCodeToString(StatusCode code);

/// Lightweight success-or-error value. Ok Statuses carry no allocation.
// [[nodiscard]]: a returned Status is an error-handling obligation — the
// serving/net paths must never drop one silently, and the attribute makes
// the compiler flag every call site that tries (see also
// tools/check_repo_rules.py VOID_CALL, which rejects the (void)-cast
// workaround under src/serve and src/net).
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  /// Aborts the process if this status is not OK. Use at call sites where
  /// failure indicates a bug (e.g. in tests and examples).
  void CheckOK() const {
    NARU_CHECK_MSG(ok(), "status not OK: %s", ToString().c_str());
  }

 private:
  StatusCode code_;
  std::string msg_;
};

/// A value-or-error union: holds either a T or a non-OK Status.
template <typename T>
class Result {
 public:
  /// Implicit from value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT
  /// Implicit from error status. Must not be OK.
  Result(Status status) : value_(std::move(status)) {  // NOLINT
    NARU_CHECK(!std::get<Status>(value_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(value_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(value_);
  }

  /// Returns the contained value; aborts if this Result holds an error.
  const T& ValueOrDie() const& {
    NARU_CHECK_MSG(ok(), "Result holds error: %s",
                   std::get<Status>(value_).ToString().c_str());
    return std::get<T>(value_);
  }
  T&& ValueOrDie() && {
    NARU_CHECK_MSG(ok(), "Result holds error: %s",
                   std::get<Status>(value_).ToString().c_str());
    return std::move(std::get<T>(value_));
  }

  const T& operator*() const& { return ValueOrDie(); }

 private:
  std::variant<T, Status> value_;
};

}  // namespace naru

/// Propagates a non-OK Status to the caller.
#define NARU_RETURN_NOT_OK(expr)            \
  do {                                      \
    ::naru::Status _st = (expr);            \
    if (!_st.ok()) return _st;              \
  } while (0)

#define NARU_CONCAT_IMPL(x, y) x##y
#define NARU_CONCAT(x, y) NARU_CONCAT_IMPL(x, y)

/// Assigns the value of a Result<T> expression to `lhs`, or propagates the
/// error. Usage: NARU_ASSIGN_OR_RETURN(auto table, LoadCsv(path));
#define NARU_ASSIGN_OR_RETURN(lhs, rexpr)                        \
  auto NARU_CONCAT(_result_, __LINE__) = (rexpr);                \
  if (!NARU_CONCAT(_result_, __LINE__).ok())                     \
    return NARU_CONCAT(_result_, __LINE__).status();             \
  lhs = std::move(NARU_CONCAT(_result_, __LINE__)).ValueOrDie()
