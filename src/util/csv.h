// Minimal CSV reading/writing for table import/export.
//
// Supports RFC4180-style double-quote escaping on read, header rows, and
// configurable delimiters. This is the on-ramp for loading real datasets
// (e.g. the DMV registration CSV) into naru::Table.
#pragma once

#include <string>
#include <vector>

#include "util/status.h"

namespace naru {

/// Parsed CSV contents: a header row plus data rows of equal arity.
struct CsvContents {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;
};

/// Parses one CSV line (handles quoted fields with embedded delimiters).
std::vector<std::string> ParseCsvLine(const std::string& line, char delim);

/// Reads `path` fully. When `has_header` is false the header vector is
/// filled with "col0..colN-1". Rows with a different arity than the header
/// produce an InvalidArgument error.
Result<CsvContents> ReadCsvFile(const std::string& path, char delim = ',',
                                bool has_header = true);

/// Writes rows (with optional header) to `path`.
Status WriteCsvFile(const std::string& path, const CsvContents& contents,
                    char delim = ',');

}  // namespace naru
