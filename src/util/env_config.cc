#include "util/env_config.h"

#include <cstdlib>

namespace naru {

int64_t GetEnvInt(const std::string& name, int64_t def) {
  const char* v = std::getenv(name.c_str());
  if (v == nullptr || *v == '\0') return def;
  char* end = nullptr;
  const long long parsed = std::strtoll(v, &end, 10);
  if (end == v) return def;
  return static_cast<int64_t>(parsed);
}

double GetEnvDouble(const std::string& name, double def) {
  const char* v = std::getenv(name.c_str());
  if (v == nullptr || *v == '\0') return def;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  if (end == v) return def;
  return parsed;
}

std::string GetEnvString(const std::string& name, const std::string& def) {
  const char* v = std::getenv(name.c_str());
  if (v == nullptr) return def;
  return v;
}

}  // namespace naru
