#include "util/env_config.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace naru {

int64_t GetEnvInt(const std::string& name, int64_t def) {
  const char* v = std::getenv(name.c_str());
  if (v == nullptr || *v == '\0') return def;
  char* end = nullptr;
  const long long parsed = std::strtoll(v, &end, 10);
  if (end == v) return def;
  return static_cast<int64_t>(parsed);
}

double GetEnvDouble(const std::string& name, double def) {
  const char* v = std::getenv(name.c_str());
  if (v == nullptr || *v == '\0') return def;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  if (end == v) return def;
  return parsed;
}

bool GetEnvBool(const std::string& name, bool def) {
  const char* v = std::getenv(name.c_str());
  if (v == nullptr || *v == '\0') return def;
  std::string s;
  for (const char* p = v; *p != '\0'; ++p) {
    s += static_cast<char>(std::tolower(static_cast<unsigned char>(*p)));
  }
  if (s == "1" || s == "true" || s == "yes" || s == "on") return true;
  if (s == "0" || s == "false" || s == "no" || s == "off") return false;
  return def;
}

std::string GetEnvString(const std::string& name, const std::string& def) {
  const char* v = std::getenv(name.c_str());
  if (v == nullptr) return def;
  return v;
}

bool ApplyFlagOverrides(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0 || arg.size() <= 2) {
      std::fprintf(stderr, "unrecognized argument '%s' (expected --flag)\n",
                   arg.c_str());
      return false;
    }
    arg = arg.substr(2);
    std::string value;
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      value = argv[++i];
    } else {
      value = "1";
    }
    std::string name = "NARU_";
    for (char c : arg) {
      name += (c == '-') ? '_' : static_cast<char>(std::toupper(
                                     static_cast<unsigned char>(c)));
    }
    ::setenv(name.c_str(), value.c_str(), /*overwrite=*/1);
  }
  return true;
}

}  // namespace naru
