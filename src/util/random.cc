#include "util/random.h"

#include <algorithm>
#include <cmath>

namespace naru {

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// splitmix64, used to expand the seed into the xoshiro state.
inline uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::UniformInt(uint64_t n) {
  NARU_DCHECK(n > 0);
  // Lemire's nearly-divisionless bounded sampling with rejection.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < n) {
    uint64_t t = -n % n;
    while (l < t) {
      x = Next();
      m = static_cast<__uint128_t>(x) * n;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformRange(int64_t lo, int64_t hi) {
  NARU_DCHECK(lo <= hi);
  return lo + static_cast<int64_t>(
                  UniformInt(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::UniformDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Gaussian() {
  // Box-Muller; discards the second variate for simplicity.
  double u1 = UniformDouble();
  double u2 = UniformDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

size_t Rng::Categorical(const double* weights, size_t n) {
  NARU_DCHECK(n > 0);
  double total = 0;
  for (size_t i = 0; i < n; ++i) total += weights[i];
  NARU_CHECK_MSG(total > 0, "Categorical requires positive total weight");
  double r = UniformDouble() * total;
  double acc = 0;
  for (size_t i = 0; i < n; ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  // Fall through on floating-point slack: return last positive-weight index.
  for (size_t i = n; i > 0; --i) {
    if (weights[i - 1] > 0) return i - 1;
  }
  return n - 1;
}

size_t Rng::Categorical(const float* weights, size_t n) {
  NARU_DCHECK(n > 0);
  double total = 0;
  for (size_t i = 0; i < n; ++i) total += weights[i];
  NARU_CHECK_MSG(total > 0, "Categorical requires positive total weight");
  double r = UniformDouble() * total;
  double acc = 0;
  for (size_t i = 0; i < n; ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  for (size_t i = n; i > 0; --i) {
    if (weights[i - 1] > 0) return i - 1;
  }
  return n - 1;
}

size_t Rng::Zipf(size_t n, double s) {
  NARU_DCHECK(n > 0);
  // Direct inverse-CDF scan; fine for the occasional draw.
  double total = 0;
  for (size_t k = 0; k < n; ++k) total += 1.0 / std::pow(k + 1.0, s);
  double r = UniformDouble() * total;
  double acc = 0;
  for (size_t k = 0; k < n; ++k) {
    acc += 1.0 / std::pow(k + 1.0, s);
    if (r < acc) return k;
  }
  return n - 1;
}

Rng Rng::Fork() { return Rng(Next() ^ 0xD1B54A32D192ED03ULL); }

ZipfTable::ZipfTable(size_t n, double s) {
  NARU_CHECK(n > 0);
  cdf_.resize(n);
  double acc = 0;
  for (size_t k = 0; k < n; ++k) {
    acc += 1.0 / std::pow(k + 1.0, s);
    cdf_[k] = acc;
  }
}

size_t ZipfTable::Sample(Rng* rng) const {
  double r = rng->UniformDouble() * cdf_.back();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), r);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<size_t>(it - cdf_.begin());
}

}  // namespace naru
