#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>

namespace naru {

ThreadPool::ThreadPool(size_t num_threads) {
  NARU_CHECK(num_threads >= 1);
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    stop_ = true;
  }
  cv_.NotifyAll();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(&mu_);
    tasks_.push(std::move(task));
  }
  cv_.NotifyOne();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      mu_.Lock();
      while (!stop_ && tasks_.empty()) cv_.Wait(mu_);
      if (stop_ && tasks_.empty()) {
        mu_.Unlock();
        return;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
      mu_.Unlock();
    }
    task();
  }
}

namespace {
// Shared work-stealing state for one ParallelFor call. Heap-allocated so
// that straggler helper tasks that wake after the call returned still see
// valid memory (they only observe next >= num_chunks and exit).
struct PforState {
  /// Chunk-ticket counter. Relaxed is sufficient: the fetch_add's RMW
  /// atomicity alone guarantees each chunk index is claimed exactly once,
  /// and no data is published through this counter — the chunk's writes
  /// are ordered by `done` below.
  std::atomic<size_t> next{0};
  /// Completed-chunk count. Incremented with RELEASE after a chunk's
  /// fn(lo, hi) writes, loaded with ACQUIRE by the waiting caller: the
  /// final increment therefore publishes every chunk's writes to the
  /// caller before ParallelFor returns.
  std::atomic<size_t> done{0};
  size_t begin = 0;
  size_t end = 0;
  size_t chunk = 1;
  size_t num_chunks = 0;
  std::function<void(size_t, size_t)> fn;
  Mutex mu;
  CondVar cv;  ///< wakes the ParallelFor caller once done == num_chunks

  bool AllDone() const {
    return done.load(std::memory_order_acquire) == num_chunks;
  }

  void RunChunks() {
    for (;;) {
      const size_t c = next.fetch_add(1, std::memory_order_relaxed);
      if (c >= num_chunks) break;
      const size_t lo = begin + c * chunk;
      const size_t hi = std::min(end, lo + chunk);
      fn(lo, hi);
      if (done.fetch_add(1, std::memory_order_release) + 1 == num_chunks) {
        // Empty critical section on purpose: it pairs with the waiter's
        // predicate check under mu so the notify cannot slip between the
        // waiter's check and its sleep.
        { MutexLock lock(&mu); }
        cv.NotifyAll();
      }
    }
  }
};
}  // namespace

void ThreadPool::ParallelFor(size_t begin, size_t end,
                             const std::function<void(size_t, size_t)>& fn,
                             size_t min_chunk) {
  if (begin >= end) return;
  const size_t n = end - begin;
  const size_t max_chunks = num_threads() * 4;
  const size_t chunk =
      std::max<size_t>(min_chunk, (n + max_chunks - 1) / max_chunks);
  const size_t num_chunks = (n + chunk - 1) / chunk;
  if (num_chunks <= 1) {
    fn(begin, end);
    return;
  }

  auto state = std::make_shared<PforState>();
  state->begin = begin;
  state->end = end;
  state->chunk = chunk;
  state->num_chunks = num_chunks;
  state->fn = fn;

  const size_t helpers = std::min(num_threads(), num_chunks - 1);
  for (size_t i = 0; i < helpers; ++i) {
    Submit([state] { state->RunChunks(); });
  }
  state->RunChunks();

  state->mu.Lock();
  while (!state->AllDone()) state->cv.Wait(state->mu);
  state->mu.Unlock();
}

ThreadPool* GlobalThreadPool() {
  static ThreadPool* pool = [] {
    size_t hw = std::thread::hardware_concurrency();
    if (hw == 0) hw = 4;
    return new ThreadPool(std::min<size_t>(hw, 16));
  }();
  return pool;
}

namespace {
thread_local int serial_region_depth = 0;
}  // namespace

ScopedSerialRegion::ScopedSerialRegion() { ++serial_region_depth; }
ScopedSerialRegion::~ScopedSerialRegion() { --serial_region_depth; }
bool ScopedSerialRegion::Active() { return serial_region_depth > 0; }

void ParallelFor(size_t begin, size_t end,
                 const std::function<void(size_t, size_t)>& fn,
                 size_t min_chunk) {
  if (ScopedSerialRegion::Active()) {
    if (begin < end) fn(begin, end);
    return;
  }
  GlobalThreadPool()->ParallelFor(begin, end, fn, min_chunk);
}

}  // namespace naru
