#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>

namespace naru {

ThreadPool::ThreadPool(size_t num_threads) {
  NARU_CHECK(num_threads >= 1);
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

namespace {
// Shared work-stealing state for one ParallelFor call. Heap-allocated so
// that straggler helper tasks that wake after the call returned still see
// valid memory (they only observe next >= num_chunks and exit).
struct PforState {
  std::atomic<size_t> next{0};
  std::atomic<size_t> done{0};
  size_t begin = 0;
  size_t end = 0;
  size_t chunk = 1;
  size_t num_chunks = 0;
  std::function<void(size_t, size_t)> fn;
  std::mutex mu;
  std::condition_variable cv;

  void RunChunks() {
    for (;;) {
      const size_t c = next.fetch_add(1);
      if (c >= num_chunks) break;
      const size_t lo = begin + c * chunk;
      const size_t hi = std::min(end, lo + chunk);
      fn(lo, hi);
      if (done.fetch_add(1) + 1 == num_chunks) {
        std::lock_guard<std::mutex> lock(mu);
        cv.notify_all();
      }
    }
  }
};
}  // namespace

void ThreadPool::ParallelFor(size_t begin, size_t end,
                             const std::function<void(size_t, size_t)>& fn,
                             size_t min_chunk) {
  if (begin >= end) return;
  const size_t n = end - begin;
  const size_t max_chunks = num_threads() * 4;
  const size_t chunk =
      std::max<size_t>(min_chunk, (n + max_chunks - 1) / max_chunks);
  const size_t num_chunks = (n + chunk - 1) / chunk;
  if (num_chunks <= 1) {
    fn(begin, end);
    return;
  }

  auto state = std::make_shared<PforState>();
  state->begin = begin;
  state->end = end;
  state->chunk = chunk;
  state->num_chunks = num_chunks;
  state->fn = fn;

  const size_t helpers = std::min(num_threads(), num_chunks - 1);
  for (size_t i = 0; i < helpers; ++i) {
    Submit([state] { state->RunChunks(); });
  }
  state->RunChunks();

  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock,
                 [&] { return state->done.load() == state->num_chunks; });
}

ThreadPool* GlobalThreadPool() {
  static ThreadPool* pool = [] {
    size_t hw = std::thread::hardware_concurrency();
    if (hw == 0) hw = 4;
    return new ThreadPool(std::min<size_t>(hw, 16));
  }();
  return pool;
}

namespace {
thread_local int serial_region_depth = 0;
}  // namespace

ScopedSerialRegion::ScopedSerialRegion() { ++serial_region_depth; }
ScopedSerialRegion::~ScopedSerialRegion() { --serial_region_depth; }
bool ScopedSerialRegion::Active() { return serial_region_depth > 0; }

void ParallelFor(size_t begin, size_t end,
                 const std::function<void(size_t, size_t)>& fn,
                 size_t min_chunk) {
  if (ScopedSerialRegion::Active()) {
    if (begin < end) fn(begin, end);
    return;
  }
  GlobalThreadPool()->ParallelFor(begin, end, fn, min_chunk);
}

}  // namespace naru
