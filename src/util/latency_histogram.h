// Fixed-memory latency accumulation for long-running serving stats.
//
// QuantileSketch (util/quantile.h) stores every sample — exact, and right
// for bench workloads of a few thousand queries, but unbounded for a
// serving engine that lives for millions of requests. This histogram is
// the engine-side alternative: log-scale buckets at ~19% resolution
// (quarter-powers of two), O(1) memory and Add, exact count and max,
// approximate quantiles by bucket interpolation. Deterministic: the same
// sample stream always produces the same answers.
#pragma once

#include <algorithm>
#include <array>
#include <cmath>
#include <cstddef>

namespace naru {

class LatencyHistogram {
 public:
  /// Records one latency in milliseconds (negatives clamp to 0).
  void Add(double ms) {
    ms = std::max(ms, 0.0);
    ++buckets_[BucketIndex(ms)];
    ++count_;
    max_ms_ = std::max(max_ms_, ms);
  }

  size_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  /// Exact maximum recorded value (0 when empty).
  double max_ms() const { return max_ms_; }

  /// Approximate q-quantile, q in [0, 1]: the geometric midpoint of the
  /// bucket holding the q-th sample (error bounded by the ~19% bucket
  /// width). Quantile(1.0) returns the exact maximum; 0 when empty.
  double Quantile(double q) const {
    if (count_ == 0) return 0.0;
    if (q >= 1.0) return max_ms_;
    const auto rank =
        static_cast<size_t>(q * static_cast<double>(count_ - 1));
    size_t seen = 0;
    for (size_t b = 0; b < kBuckets; ++b) {
      seen += buckets_[b];
      if (seen > rank) return std::min(BucketMid(b), max_ms_);
    }
    return max_ms_;
  }

  void Clear() { *this = LatencyHistogram(); }

 private:
  // Bucket 0 holds everything below kMinMs; above it, 4 buckets per
  // doubling. 96 buckets cover kMinMs * 2^24 ≈ 4.6 hours.
  static constexpr size_t kBuckets = 96;
  static constexpr double kMinMs = 1e-3;
  static constexpr double kBucketsPerDoubling = 4.0;

  static size_t BucketIndex(double ms) {
    if (ms <= kMinMs) return 0;
    const double pos = std::log2(ms / kMinMs) * kBucketsPerDoubling;
    return std::min(static_cast<size_t>(pos) + 1, kBuckets - 1);
  }
  static double BucketMid(size_t b) {
    if (b == 0) return kMinMs / 2;
    // Geometric midpoint of [lo, lo * 2^(1/4)).
    const double lo =
        kMinMs *
        std::exp2((static_cast<double>(b) - 1.0) / kBucketsPerDoubling);
    return lo * std::exp2(0.5 / kBucketsPerDoubling);
  }

  std::array<size_t, kBuckets> buckets_{};
  size_t count_ = 0;
  double max_ms_ = 0.0;
};

}  // namespace naru
