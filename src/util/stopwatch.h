// Wall-clock stopwatch for latency measurements (Figure 6, Table 6).
#pragma once

#include <chrono>

namespace naru {

/// Monotonic stopwatch started at construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time in seconds since construction or last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace naru
