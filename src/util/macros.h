// Common assertion and class-decoration macros used across the library.
//
// We follow a no-exceptions policy (Google C++ style): recoverable errors are
// reported through naru::Status / naru::Result, while programming errors and
// violated invariants abort through NARU_CHECK.
#pragma once

#include <cstdio>
#include <cstdlib>

// Aborts the process with a file/line message when `condition` is false.
// Use for invariants that indicate a programming bug, not for user errors.
#define NARU_CHECK(condition)                                                \
  do {                                                                       \
    if (!(condition)) {                                                      \
      std::fprintf(stderr, "NARU_CHECK failed at %s:%d: %s\n", __FILE__,     \
                   __LINE__, #condition);                                    \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

// Like NARU_CHECK but with a printf-style message appended.
#define NARU_CHECK_MSG(condition, ...)                                       \
  do {                                                                       \
    if (!(condition)) {                                                      \
      std::fprintf(stderr, "NARU_CHECK failed at %s:%d: %s: ", __FILE__,     \
                   __LINE__, #condition);                                    \
      std::fprintf(stderr, __VA_ARGS__);                                     \
      std::fprintf(stderr, "\n");                                            \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

// Debug-only check; compiled out in release builds.
#ifdef NDEBUG
#define NARU_DCHECK(condition) \
  do {                         \
  } while (0)
#else
#define NARU_DCHECK(condition) NARU_CHECK(condition)
#endif

// Deletes copy construction/assignment for `TypeName`.
#define NARU_DISALLOW_COPY_AND_ASSIGN(TypeName) \
  TypeName(const TypeName&) = delete;           \
  TypeName& operator=(const TypeName&) = delete
