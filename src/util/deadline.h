// THE deadline-expiry predicate, shared by every layer that sheds or
// abandons on a soft deadline: the serve-layer dispatch checks
// (EstimateOptions::ExpiredAt), the sampler's mid-walk between-column
// checks (core/sampler), and the plan executor's group abandonment
// (plan/plan_executor). One definition so the sites cannot drift — the
// predicate is INCLUSIVE at the deadline instant (a request whose
// deadline equals the check time is already expired, matching the
// documented "expired by dispatch time"); an exclusive `>` at one site
// is exactly the bug this header exists to prevent.
#pragma once

#include <chrono>

namespace naru {

/// Sentinel for "no deadline": never expires.
inline constexpr std::chrono::steady_clock::time_point kNoDeadline =
    std::chrono::steady_clock::time_point::max();

/// True once `now` has reached `deadline` (inclusive). kNoDeadline never
/// expires.
inline bool DeadlineExpired(std::chrono::steady_clock::time_point deadline,
                            std::chrono::steady_clock::time_point now) {
  return deadline != kNoDeadline && now >= deadline;
}

}  // namespace naru
