#include "util/string_util.h"

#include <cstdarg>
#include <cstdio>

namespace naru {

std::vector<std::string> SplitString(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        const std::string& delim) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += delim;
    out += parts[i];
  }
  return out;
}

std::string TrimString(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\r' ||
                   s[b] == '\n')) {
    ++b;
  }
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r' ||
                   s[e - 1] == '\n')) {
    --e;
  }
  return std::string(s.substr(b, e - b));
}

std::string HumanBytes(uint64_t bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  double v = static_cast<double>(bytes);
  int u = 0;
  while (v >= 1024.0 && u < 4) {
    v /= 1024.0;
    ++u;
  }
  char buf[32];
  if (u == 0) {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f %s", v, units[u]);
  }
  return buf;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out(static_cast<size_t>(n), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

}  // namespace naru
