// Small string helpers shared across modules.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace naru {

/// Splits `s` on `delim`; keeps empty fields.
std::vector<std::string> SplitString(std::string_view s, char delim);

/// Joins `parts` with `delim`.
std::string JoinStrings(const std::vector<std::string>& parts,
                        const std::string& delim);

/// Strips ASCII whitespace from both ends.
std::string TrimString(std::string_view s);

/// "12.7 MB"-style human-readable byte counts.
std::string HumanBytes(uint64_t bytes);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace naru
