// Minimal leveled logging to stderr.
//
// Controlled by NARU_LOG_LEVEL (0=debug, 1=info, 2=warn, 3=error, 4=off);
// default is info. Logging is line-buffered and safe to call from multiple
// threads (each line is emitted with a single fprintf).
#pragma once

#include <string>

namespace naru {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,
};

/// Current minimum level (from NARU_LOG_LEVEL at first use).
LogLevel GetLogLevel();

/// Overrides the level programmatically (tests).
void SetLogLevel(LogLevel level);

/// Emits one log line if `level` >= the configured level.
void LogMessage(LogLevel level, const std::string& msg);

}  // namespace naru

#define NARU_LOG_DEBUG(...) \
  ::naru::LogMessage(::naru::LogLevel::kDebug, ::naru::StrFormat(__VA_ARGS__))
#define NARU_LOG_INFO(...) \
  ::naru::LogMessage(::naru::LogLevel::kInfo, ::naru::StrFormat(__VA_ARGS__))
#define NARU_LOG_WARN(...) \
  ::naru::LogMessage(::naru::LogLevel::kWarn, ::naru::StrFormat(__VA_ARGS__))
#define NARU_LOG_ERROR(...) \
  ::naru::LogMessage(::naru::LogLevel::kError, ::naru::StrFormat(__VA_ARGS__))
