// Deterministic pseudo-random number generation.
//
// All stochastic components of the library (dataset generators, workload
// generators, weight init, samplers) draw from naru::Rng so that runs are
// reproducible given a seed. The engine is xoshiro256++, a small, fast,
// high-quality non-cryptographic PRNG.
#pragma once

#include <cstdint>
#include <vector>

#include "util/macros.h"

namespace naru {

/// xoshiro256++ PRNG with convenience distributions.
///
/// Not thread-safe; use one Rng per thread (see Rng::Fork for deriving
/// independent per-thread streams).
class Rng {
 public:
  /// Seeds the engine. Any seed (including 0) is valid.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64 random bits.
  uint64_t Next();

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Standard normal via Box-Muller.
  double Gaussian();

  /// Samples an index proportional to the (non-negative) weights.
  /// Requires at least one strictly positive weight.
  size_t Categorical(const double* weights, size_t n);
  size_t Categorical(const std::vector<double>& weights) {
    return Categorical(weights.data(), weights.size());
  }
  /// Float-weight overload (used for sampling from model softmax rows).
  size_t Categorical(const float* weights, size_t n);

  /// Zipf-distributed integer in [0, n) with exponent `s` (s=0 is uniform).
  /// Uses an O(n) precomputed table-free rejection-less inverse-CDF on first
  /// call per (n, s) -- callers that need many draws should use ZipfTable.
  size_t Zipf(size_t n, double s);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = UniformInt(i);
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Derives an independent child stream (for per-thread use).
  Rng Fork();

 private:
  uint64_t s_[4];
};

/// Precomputed Zipf sampler: cumulative weights w_k = 1/(k+1)^s over [0, n).
class ZipfTable {
 public:
  ZipfTable(size_t n, double s);
  /// Draws one Zipf-distributed index in [0, n).
  size_t Sample(Rng* rng) const;
  size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace naru
