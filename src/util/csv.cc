#include "util/csv.h"

#include <fstream>
#include <sstream>

#include "util/string_util.h"

namespace naru {

std::vector<std::string> ParseCsvLine(const std::string& line, char delim) {
  std::vector<std::string> fields;
  std::string cur;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == delim) {
      fields.push_back(std::move(cur));
      cur.clear();
    } else if (c != '\r') {
      cur.push_back(c);
    }
  }
  fields.push_back(std::move(cur));
  return fields;
}

Result<CsvContents> ReadCsvFile(const std::string& path, char delim,
                                bool has_header) {
  std::ifstream in(path);
  if (!in.good()) {
    return Status::IOError("cannot open CSV file: " + path);
  }
  CsvContents out;
  std::string line;
  bool first = true;
  size_t arity = 0;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    auto fields = ParseCsvLine(line, delim);
    if (first) {
      first = false;
      if (has_header) {
        out.header = std::move(fields);
        arity = out.header.size();
        continue;
      }
      arity = fields.size();
      for (size_t i = 0; i < arity; ++i) {
        out.header.push_back("col" + std::to_string(i));
      }
    }
    if (fields.size() != arity) {
      return Status::InvalidArgument(
          StrFormat("CSV arity mismatch at line %zu in %s: got %zu want %zu",
                    line_no, path.c_str(), fields.size(), arity));
    }
    out.rows.push_back(std::move(fields));
  }
  return out;
}

Status WriteCsvFile(const std::string& path, const CsvContents& contents,
                    char delim) {
  std::ofstream os(path);
  if (!os.good()) return Status::IOError("cannot open for write: " + path);
  auto write_row = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) os << delim;
      const std::string& f = row[i];
      const bool needs_quote = f.find(delim) != std::string::npos ||
                               f.find('"') != std::string::npos ||
                               f.find('\n') != std::string::npos;
      if (needs_quote) {
        os << '"';
        for (char c : f) {
          if (c == '"') os << "\"\"";
          else os << c;
        }
        os << '"';
      } else {
        os << f;
      }
    }
    os << '\n';
  };
  if (!contents.header.empty()) write_row(contents.header);
  for (const auto& row : contents.rows) write_row(row);
  if (!os.good()) return Status::IOError("write failed: " + path);
  return Status::OK();
}

}  // namespace naru
