// Environment-variable driven configuration for benchmarks and examples.
//
// All benchmark binaries run with laptop-scale defaults; NARU_* environment
// variables scale them toward the paper's full setup (see README).
#pragma once

#include <cstdint>
#include <string>

namespace naru {

/// Returns the integer value of env var `name`, or `def` when unset/invalid.
int64_t GetEnvInt(const std::string& name, int64_t def);

/// Returns the double value of env var `name`, or `def` when unset/invalid.
double GetEnvDouble(const std::string& name, double def);

/// Returns the boolean value of env var `name`: "1"/"true"/"yes"/"on" are
/// true, "0"/"false"/"no"/"off" are false (case-insensitive), anything
/// else (or unset) yields `def`. Bare flags (`--async`, `--smoke`) map to
/// "1" through ApplyFlagOverrides below, so they read as true here.
bool GetEnvBool(const std::string& name, bool def);

/// Returns the string value of env var `name`, or `def` when unset.
std::string GetEnvString(const std::string& name, const std::string& def);

/// Maps command-line flags onto the NARU_* environment knobs so benches and
/// examples share one configuration surface: `--threads 4` / `--threads=4`
/// sets NARU_THREADS=4 (dashes become underscores, names are upper-cased),
/// after which the GetEnv* accessors above observe the override. A bare
/// trailing flag sets the variable to "1". Returns false (after printing to
/// stderr) on a malformed argument list; unknown flags are accepted — every
/// NARU_* knob is reachable this way.
bool ApplyFlagOverrides(int argc, char** argv);

}  // namespace naru
