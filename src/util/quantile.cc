#include "util/quantile.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/macros.h"

namespace naru {

double QuantileSketch::Quantile(double q) const {
  NARU_CHECK(!values_.empty());
  NARU_CHECK(q >= 0.0 && q <= 1.0);
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
  if (values_.size() == 1) return values_[0];
  const double pos = q * static_cast<double>(values_.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, values_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values_[lo] * (1.0 - frac) + values_[hi] * frac;
}

double QuantileSketch::Mean() const {
  NARU_CHECK(!values_.empty());
  double sum = 0;
  for (double v : values_) sum += v;
  return sum / static_cast<double>(values_.size());
}

ErrorQuantiles ComputeErrorQuantiles(const QuantileSketch& sketch) {
  ErrorQuantiles out;
  out.count = sketch.count();
  if (sketch.empty()) return out;
  out.median = sketch.Quantile(0.5);
  out.p95 = sketch.Quantile(0.95);
  out.p99 = sketch.Quantile(0.99);
  out.max = sketch.Quantile(1.0);
  return out;
}

std::string FormatPaperNumber(double v) {
  char buf[64];
  if (!std::isfinite(v)) {
    std::snprintf(buf, sizeof(buf), "inf");
  } else if (v >= 10000.0) {
    const int exp = static_cast<int>(std::floor(std::log10(v)));
    const double mant = v / std::pow(10.0, exp);
    std::snprintf(buf, sizeof(buf), "%.0fe%d", mant, exp);
  } else if (v >= 100.0) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f", v);
  }
  return buf;
}

}  // namespace naru
