#include "workload/adversarial.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>

#include "query/executor.h"
#include "serve/query_key.h"
#include "util/random.h"
#include "util/string_util.h"

namespace naru {
namespace {

// Band edges as fractions of the table (see header): zero / narrow /
// medium / broad.
constexpr double kNarrowEdge = 0.005;
constexpr double kMediumEdge = 0.1;

// Zipf exponents: row skew (hot anchor tuples) and key churn (hot pool
// indices). Both > 1 so the head genuinely dominates.
constexpr double kRowZipfS = 1.1;
constexpr double kChurnZipfS = 1.2;

// Candidate budget multiplier for the rejection-sampling phase.
constexpr size_t kAttemptsPerSlot = 64;

double ExponentialGapMs(Rng* rng, double qps) {
  if (qps <= 0) return 0.0;
  // Inverse CDF; 1 - U avoids log(0).
  return -std::log(1.0 - rng->UniformDouble()) * (1000.0 / qps);
}

// One candidate query for the scenario's shape/skew. `attempt` cycles the
// filter count (and, for wildcard-prefix shapes, the run length) so the
// candidate stream sweeps the whole selectivity spectrum instead of
// clustering where one filter count lands.
Query MakeCandidate(const Table& table, const AdversarialScenario& s,
                    size_t attempt, Rng* rng, const ZipfTable* row_zipf) {
  const size_t num_cols = table.num_columns();
  const size_t max_f =
      s.max_filters == 0 ? num_cols : std::min(s.max_filters, num_cols);
  const size_t min_f = std::clamp<size_t>(s.min_filters, 1, max_f);
  const size_t span = max_f - min_f + 1;
  size_t f = min_f + attempt % span;

  const size_t rows = table.num_rows();

  // `lead` columns are withheld from the random filter draw: left
  // unconstrained (wildcard prefix) or pinned to a shared template tuple
  // (shared literal prefix).
  size_t lead = 0;
  size_t template_row = 0;
  const bool shared_prefix =
      s.shape == PredicateShape::kSharedLiteralPrefix && num_cols > 1;
  if ((s.shape == PredicateShape::kWildcardPrefix || shared_prefix) &&
      num_cols > 1) {
    lead = 1 + (attempt / span) % (num_cols - 1);
    f = std::min(f, num_cols - lead);
    // A handful of template tuples shared across candidates, so many pool
    // entries carry IDENTICAL leading (column, literal) pairs — the
    // constrained prefixes plan trees fuse. Deterministic in `attempt`.
    if (shared_prefix) template_row = (((attempt / span) % 4) * 131) % rows;
  }

  std::vector<size_t> cols;
  cols.reserve(num_cols - lead);
  for (size_t c = lead; c < num_cols; ++c) cols.push_back(c);
  rng->Shuffle(&cols);
  f = std::min(f, cols.size());

  const size_t anchor =
      row_zipf != nullptr ? row_zipf->Sample(rng) : rng->UniformInt(rows);
  const bool cold = s.skew == SkewKind::kZipfCold;

  std::vector<Predicate> preds;
  preds.reserve(lead + f);
  if (shared_prefix) {
    for (size_t c = 0; c < lead; ++c) {
      Predicate p;
      p.column = c;
      p.op = CompareOp::kEq;
      p.literal = table.column(c).code(template_row);
      preds.push_back(std::move(p));
    }
  }
  for (size_t k = 0; k < f; ++k) {
    const size_t col = cols[k];
    const size_t domain = table.column(col).DomainSize();
    const int64_t lit = cold ? static_cast<int64_t>(rng->UniformInt(domain))
                             : table.column(col).code(anchor);
    Predicate p;
    p.column = col;
    p.op = CompareOp::kEq;
    p.literal = lit;
    if (domain >= 2) {
      switch (s.shape) {
        case PredicateShape::kPoint:
        case PredicateShape::kWildcardPrefix:
        case PredicateShape::kSharedLiteralPrefix:
          break;
        case PredicateShape::kRange: {
          const int64_t other =
              cold ? static_cast<int64_t>(rng->UniformInt(domain))
                   : table.column(col).code(rng->UniformInt(rows));
          switch (rng->UniformInt(3)) {
            case 0:
              p.op = CompareOp::kLe;
              break;
            case 1:
              p.op = CompareOp::kGe;
              break;
            default:
              p.op = CompareOp::kBetween;
              p.literal = std::min(lit, other);
              p.literal2 = std::max(lit, other);
              break;
          }
          break;
        }
        case PredicateShape::kInList: {
          p.op = CompareOp::kIn;
          p.in_list.push_back(static_cast<int32_t>(lit));
          const size_t extra = rng->UniformInt(4);
          for (size_t j = 0; j < extra; ++j) {
            p.in_list.push_back(
                cold ? static_cast<int32_t>(rng->UniformInt(domain))
                     : table.column(col).code(rng->UniformInt(rows)));
          }
          break;
        }
      }
    }
    preds.push_back(std::move(p));
  }
  return Query(table, std::move(preds));
}

// Deterministic fallback when rejection sampling cannot reach a band with
// the scenario's shape (e.g. pure point queries on a near-uniform table
// rarely land broad). Returns false only when the table itself cannot
// express the band (all domains 1, ...).
bool SynthesizeBandQuery(const Table& table, size_t band, Query* out,
                         double* sel_out) {
  const size_t num_cols = table.num_columns();
  const size_t rows = table.num_rows();
  switch (band) {
    case 0: {  // zero: contradictory equalities on one column
      for (size_t c = 0; c < num_cols; ++c) {
        if (table.column(c).DomainSize() < 2) continue;
        std::vector<Predicate> preds(2);
        preds[0].column = c;
        preds[0].op = CompareOp::kEq;
        preds[0].literal = 0;
        preds[1].column = c;
        preds[1].op = CompareOp::kEq;
        preds[1].literal = 1;
        *out = Query(table, std::move(preds));
        *sel_out = 0.0;
        return true;
      }
      return false;
    }
    case 3: {  // broad: the all-wildcard query (selectivity exactly 1)
      *out = Query(table, std::vector<Predicate>{});
      *sel_out = 1.0;
      return true;
    }
    case 1:    // narrow: full point queries on real tuples
    case 2: {  // medium: single-column equalities on real tuples
      for (size_t t = 0; t < std::min<size_t>(rows, 24); ++t) {
        // Stride through the table so the probes see distinct tuples.
        const size_t row = (t * 97) % rows;
        if (band == 1) {
          std::vector<Predicate> preds;
          preds.reserve(num_cols);
          for (size_t c = 0; c < num_cols; ++c) {
            Predicate p;
            p.column = c;
            p.op = CompareOp::kEq;
            p.literal = table.column(c).code(row);
            preds.push_back(p);
          }
          Query q(table, std::move(preds));
          const double sel = ExecuteSelectivity(table, q);
          if (ClassifySelectivityBand(sel) == band) {
            *out = std::move(q);
            *sel_out = sel;
            return true;
          }
        } else {
          for (size_t c = 0; c < num_cols; ++c) {
            std::vector<Predicate> preds(1);
            preds[0].column = c;
            preds[0].op = CompareOp::kEq;
            preds[0].literal = table.column(c).code(row);
            Query q(table, std::move(preds));
            const double sel = ExecuteSelectivity(table, q);
            if (ClassifySelectivityBand(sel) == band) {
              *out = std::move(q);
              *sel_out = sel;
              return true;
            }
          }
        }
      }
      return false;
    }
    default:
      return false;
  }
}

std::string HexEncode(const std::string& bytes) {
  static const char* kHex = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (const char c : bytes) {
    const auto b = static_cast<unsigned char>(c);
    out.push_back(kHex[b >> 4]);
    out.push_back(kHex[b & 0xF]);
  }
  return out;
}

}  // namespace

const char* SelectivityBandName(size_t band) {
  switch (band) {
    case 0:
      return "zero";
    case 1:
      return "narrow";
    case 2:
      return "medium";
    case 3:
      return "broad";
    default:
      return "?";
  }
}

size_t ClassifySelectivityBand(double selectivity) {
  if (selectivity <= 0.0) return 0;
  if (selectivity <= kNarrowEdge) return 1;
  if (selectivity <= kMediumEdge) return 2;
  return 3;
}

const char* PredicateShapeToString(PredicateShape shape) {
  switch (shape) {
    case PredicateShape::kPoint:
      return "point";
    case PredicateShape::kRange:
      return "range";
    case PredicateShape::kInList:
      return "in_list";
    case PredicateShape::kWildcardPrefix:
      return "wildcard_prefix";
    case PredicateShape::kSharedLiteralPrefix:
      return "shared_literal_prefix";
  }
  return "?";
}

const char* SkewKindToString(SkewKind skew) {
  switch (skew) {
    case SkewKind::kUniform:
      return "uniform";
    case SkewKind::kZipfHot:
      return "zipf_hot";
    case SkewKind::kZipfCold:
      return "zipf_cold";
  }
  return "?";
}

const char* ArrivalKindToString(ArrivalKind arrival) {
  switch (arrival) {
    case ArrivalKind::kInstant:
      return "instant";
    case ArrivalKind::kPoisson:
      return "poisson";
    case ArrivalKind::kBursty:
      return "bursty";
  }
  return "?";
}

const char* PriorityMixToString(PriorityMixKind mix) {
  switch (mix) {
    case PriorityMixKind::kAllNormal:
      return "all_normal";
    case PriorityMixKind::kMixed:
      return "mixed";
    case PriorityMixKind::kInverted:
      return "inverted";
  }
  return "?";
}

const char* ChurnKindToString(ChurnKind churn) {
  switch (churn) {
    case ChurnKind::kRepeatHot:
      return "repeat_hot";
    case ChurnKind::kCyclicSweep:
      return "cyclic_sweep";
  }
  return "?";
}

AdversarialTrace GenerateAdversarialTrace(const Table& table,
                                          const AdversarialScenario& scenario,
                                          size_t pool_size,
                                          size_t num_requests, uint64_t seed) {
  NARU_CHECK(table.num_rows() > 0);
  NARU_CHECK(pool_size > 0);
  size_t quota_sum = 0;
  for (const size_t q : scenario.band_quota) quota_sum += q;
  NARU_CHECK(quota_sum <= pool_size);

  AdversarialTrace trace;
  trace.scenario = scenario.name;

  Rng rng(seed);
  std::unique_ptr<ZipfTable> row_zipf;
  if (scenario.skew == SkewKind::kZipfHot) {
    row_zipf = std::make_unique<ZipfTable>(table.num_rows(), kRowZipfS);
  }

  // --- Pool: rejection sampling against executed ground truth. ---
  // Candidates that land in an unmet band are accepted immediately; the
  // rest are stashed and used to top the pool up once quotas are settled.
  std::array<size_t, kNumSelectivityBands> quota_left = scenario.band_quota;
  auto quota_unmet = [&quota_left]() {
    for (const size_t q : quota_left) {
      if (q > 0) return true;
    }
    return false;
  };

  std::vector<Query> overflow;
  std::vector<double> overflow_sel;
  const size_t budget = kAttemptsPerSlot * pool_size;
  auto accept = [&trace](Query q, double sel) {
    const size_t band = ClassifySelectivityBand(sel);
    trace.pool_true_sel.push_back(sel);
    trace.pool_band.push_back(band);
    trace.pool_wildcard_run.push_back(q.LeadingWildcardRun());
    trace.band_counts[band]++;
    trace.pool.push_back(std::move(q));
  };

  for (size_t attempt = 0;
       attempt < budget && (quota_unmet() || trace.pool.size() < pool_size);
       ++attempt) {
    Query q = MakeCandidate(table, scenario, attempt, &rng, row_zipf.get());
    const double sel = ExecuteSelectivity(table, q);
    const size_t band = ClassifySelectivityBand(sel);
    if (quota_left[band] > 0 && trace.pool.size() < pool_size) {
      quota_left[band]--;
      accept(std::move(q), sel);
    } else if (overflow.size() < pool_size) {
      overflow.push_back(std::move(q));
      overflow_sel.push_back(sel);
    }
  }

  // Bands the shape could not reach get deterministic synthesized
  // representatives (contradictions, the all-wildcard query, tuple-anchored
  // point probes); a band the table itself cannot express stays unmet and
  // is visible in band_counts.
  for (size_t band = 0; band < kNumSelectivityBands; ++band) {
    while (quota_left[band] > 0 && trace.pool.size() < pool_size) {
      Query q(table, std::vector<Predicate>{});  // placeholder, overwritten
      double sel = 0.0;
      if (!SynthesizeBandQuery(table, band, &q, &sel)) break;
      quota_left[band]--;
      accept(std::move(q), sel);
    }
  }

  // Top up to pool_size from the stash (generation order), then — only if
  // the budget produced too few candidates — from fresh unconditional ones.
  for (size_t i = 0; i < overflow.size() && trace.pool.size() < pool_size;
       ++i) {
    accept(std::move(overflow[i]), overflow_sel[i]);
  }
  for (size_t attempt = budget; trace.pool.size() < pool_size; ++attempt) {
    Query q = MakeCandidate(table, scenario, attempt, &rng, row_zipf.get());
    const double sel = ExecuteSelectivity(table, q);
    accept(std::move(q), sel);
  }

  // --- Requests: arrivals, churn, priorities, deadlines, cache policy. ---
  std::unique_ptr<ZipfTable> churn_zipf;
  if (scenario.churn == ChurnKind::kRepeatHot) {
    churn_zipf = std::make_unique<ZipfTable>(trace.pool.size(), kChurnZipfS);
  }
  const double cycle_ms = scenario.burst_on_ms + scenario.burst_off_ms;
  double clock_ms = 0.0;
  trace.requests.reserve(num_requests);
  for (size_t i = 0; i < num_requests; ++i) {
    AdversarialRequest r;
    switch (scenario.arrival) {
      case ArrivalKind::kInstant:
        break;
      case ArrivalKind::kPoisson:
        clock_ms += ExponentialGapMs(&rng, scenario.qps);
        break;
      case ArrivalKind::kBursty: {
        clock_ms += ExponentialGapMs(&rng, scenario.qps);
        if (cycle_ms > 0 && scenario.burst_off_ms > 0) {
          const double phase = std::fmod(clock_ms, cycle_ms);
          // An arrival drifting into the off-window snaps to the next
          // on-window start — the on/off square wave the scenario declares.
          if (phase > scenario.burst_on_ms) clock_ms += cycle_ms - phase;
        }
        break;
      }
    }
    r.arrival_ms = clock_ms;
    r.pool_index = churn_zipf != nullptr ? churn_zipf->Sample(&rng)
                                         : i % trace.pool.size();
    switch (scenario.priority_mix) {
      case PriorityMixKind::kAllNormal:
        break;
      case PriorityMixKind::kMixed: {
        const double u = rng.UniformDouble();
        r.priority = u < 0.5    ? RequestPriority::kLow
                     : u < 0.85 ? RequestPriority::kNormal
                                : RequestPriority::kHigh;
        break;
      }
      case PriorityMixKind::kInverted: {
        const double u = rng.UniformDouble();
        r.priority = u < 0.5    ? RequestPriority::kHigh
                     : u < 0.85 ? RequestPriority::kNormal
                                : RequestPriority::kLow;
        break;
      }
    }
    if (scenario.expired_deadline_fraction > 0 ||
        scenario.tight_deadline_fraction > 0) {
      const double u = rng.UniformDouble();
      if (u < scenario.expired_deadline_fraction) {
        r.deadline_ms = 0.0;
      } else if (u < scenario.expired_deadline_fraction +
                         scenario.tight_deadline_fraction) {
        r.deadline_ms = scenario.tight_deadline_ms;
      }
    }
    if (scenario.bypass_cache_fraction > 0 &&
        rng.UniformDouble() < scenario.bypass_cache_fraction) {
      r.cache_policy = CachePolicy::kBypass;
    }
    r.num_samples = scenario.request_samples;
    trace.requests.push_back(r);
  }
  return trace;
}

std::vector<AdversarialScenario> AdversarialScenarioMatrix() {
  std::vector<AdversarialScenario> matrix;

  {  // Baseline: the friendliest cell — everything else deviates from it.
    AdversarialScenario s;
    s.name = "point_uniform_poisson";
    matrix.push_back(std::move(s));
  }
  {  // Range shapes over a hot-tuple skew (repeating popular literals).
    AdversarialScenario s;
    s.name = "range_hot_skew";
    s.shape = PredicateShape::kRange;
    s.skew = SkewKind::kZipfHot;
    matrix.push_back(std::move(s));
  }
  {  // IN-lists with cold out-of-distribution literals (empty/rare heavy).
    AdversarialScenario s;
    s.name = "in_list_cold";
    s.shape = PredicateShape::kInList;
    s.skew = SkewKind::kZipfCold;
    matrix.push_back(std::move(s));
  }
  {  // Leading wildcard runs of every length: the plan layer's best case,
     // and a sweep of the shareable-prefix dimension.
    AdversarialScenario s;
    s.name = "wildcard_prefix_sweep";
    s.shape = PredicateShape::kWildcardPrefix;
    matrix.push_back(std::move(s));
  }
  {  // Shared CONSTRAINED prefixes of every length: many pool entries pin
     // their leading columns to the same few template tuples, the case
     // where hierarchical plan trees share walk segments AND likelihood
     // terms. Cyclic churn keeps the result caches out of the way so the
     // plan path actually executes.
    AdversarialScenario s;
    s.name = "shared_literal_prefix_sweep";
    s.shape = PredicateShape::kSharedLiteralPrefix;
    s.churn = ChurnKind::kCyclicSweep;
    matrix.push_back(std::move(s));
  }
  {  // Cache-adversarial: cyclic sweep defeats LRU reuse, and a quarter of
     // the stream bypasses the caches outright.
    AdversarialScenario s;
    s.name = "cache_churn_cycle";
    s.churn = ChurnKind::kCyclicSweep;
    s.bypass_cache_fraction = 0.25;
    matrix.push_back(std::move(s));
  }
  {  // Deadline storm: a quarter of requests arrive already expired
     // (deadline shed) under an INVERTED priority stream — high-majority
     // traffic is where dispatch-time shedding hurts most.
    AdversarialScenario s;
    s.name = "deadline_storm";
    s.priority_mix = PriorityMixKind::kInverted;
    s.expired_deadline_fraction = 0.25;
    matrix.push_back(std::move(s));
  }
  {  // Bursty overload: on/off arrival bursts against a bounded pending
     // queue (the bench pairs this cell with a small max_pending). The
     // LOW-majority mix is what admission control needs: lows are the
     // eviction victims. (An inverted mix converges the bounded queue to
     // all-high — everything else is rejected at admission — and the
     // eviction side of the policy is never visible. Note admission
     // eviction also removes exactly the older-lower backlog that
     // priority-FLUSH detection keys on, so flush-order behavior is
     // asserted on deadline_storm's unbounded backlog instead.)
    AdversarialScenario s;
    s.name = "burst_admission";
    s.arrival = ArrivalKind::kBursty;
    s.priority_mix = PriorityMixKind::kMixed;
    s.qps = 20000.0;
    matrix.push_back(std::move(s));
  }
  {  // Mid-walk abandonment: tight-but-live deadlines over walks made slow
     // by a large per-request sample budget. The deadline is set on the
     // order of ONE micro-batch: long enough that tights arriving during
     // the in-flight batch are still live when the (tightest-first) cut
     // dispatches them, short enough that their own walk overruns it.
    AdversarialScenario s;
    s.name = "midwalk_deadlines";
    s.tight_deadline_fraction = 0.5;
    s.tight_deadline_ms = 800.0;
    s.request_samples = 20000;
    s.qps = 250.0;
    matrix.push_back(std::move(s));
  }
  return matrix;
}

std::string TraceToString(const AdversarialTrace& trace) {
  std::string out = "adversarial-trace v1\n";
  out += StrFormat("scenario %s\n", trace.scenario.c_str());
  out += StrFormat("pool %zu\n", trace.pool.size());
  for (size_t i = 0; i < trace.pool.size(); ++i) {
    out += StrFormat("%zu band=%zu sel=%.17g run=%zu key=%s\n", i,
                     trace.pool_band[i], trace.pool_true_sel[i],
                     trace.pool_wildcard_run[i],
                     HexEncode(QueryKey(trace.pool[i])).c_str());
  }
  out += StrFormat("requests %zu\n", trace.requests.size());
  for (size_t i = 0; i < trace.requests.size(); ++i) {
    const AdversarialRequest& r = trace.requests[i];
    out += StrFormat(
        "%zu t=%.17g q=%zu pri=%d dl=%.17g cache=%d samples=%zu\n", i,
        r.arrival_ms, r.pool_index, static_cast<int>(r.priority),
        r.deadline_ms, static_cast<int>(r.cache_policy), r.num_samples);
  }
  return out;
}

EstimateRequest MaterializeRequest(
    const AdversarialTrace& trace, size_t i,
    std::chrono::steady_clock::time_point start) {
  const AdversarialRequest& r = trace.requests[i];
  EstimateRequest req(trace.pool[r.pool_index]);
  req.options.priority = r.priority;
  req.options.cache_policy = r.cache_policy;
  req.options.num_samples = r.num_samples;
  if (r.deadline_ms >= 0) {
    req.options.deadline =
        start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double, std::milli>(r.arrival_ms +
                                                              r.deadline_ms));
  }
  return req;
}

}  // namespace naru
