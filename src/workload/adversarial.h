// Adversarial serving workloads: the scenario matrix behind bench_adversarial.
//
// The paper's §6.1.3 generator (query/workload.h) draws one query shape from
// one distribution — good for accuracy tables, useless for proving the
// serving stack's overload behavior. "An Empirical Analysis of Deep Learning
// for Cardinality Estimation" (Ortiz et al.) shows these estimators fail in
// workload-dependent ways a single shaped trace never exposes, and Hyrise's
// calibration_query_generator sweeps the query space for the same reason.
// This header is the serving-side analogue: a deterministic, seeded
// generator that sweeps
//
//   - selectivity bands       (zero / narrow / medium / broad, with quotas
//                              enforced by rejection sampling against
//                              executed ground truth),
//   - predicate shape         (point / range / IN-list / leading-wildcard
//                              runs of varying length),
//   - column & literal skew   (uniform, Zipf-hot rows, cold out-of-
//                              distribution literals),
//   - priority mix            (all-normal, mixed, inverted),
//   - cache-adversarial churn (Zipf-hot repeats vs a cyclic sweep that
//                              defeats LRU),
//   - arrival burstiness      (instant, Poisson, bursty on/off),
//   - deadline pressure       (pre-expired and tight-but-live fractions)
//
// and emits a reproducible trace of serving requests: same (table, scenario,
// seed) ⇒ byte-identical TraceToString. Traces carry RELATIVE deadlines
// (milliseconds after arrival) because EstimateOptions::deadline is an
// absolute steady_clock instant; MaterializeRequest pins them to a trace
// start time at submit time.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "data/table.h"
#include "query/query.h"
#include "serve/request.h"

namespace naru {

/// Dominant predicate shape of a scenario's query pool.
enum class PredicateShape : uint8_t {
  kPoint = 0,          ///< equality on every filtered column
  kRange,              ///< <= / >= / BETWEEN around an anchor tuple
  kInList,             ///< IN-lists whose members follow the data
  kWildcardPrefix,     ///< point filters behind a leading wildcard run
  kSharedLiteralPrefix,  ///< leading equality literals drawn from a small
                         ///< template set, so pool entries share identical
                         ///< CONSTRAINED prefixes (the walk+likelihood
                         ///< sharing case of hierarchical plan trees)
};

/// How anchor tuples / literals are drawn.
enum class SkewKind : uint8_t {
  kUniform = 0,  ///< anchor tuples uniform over rows
  kZipfHot,      ///< Zipf over rows: hot tuples dominate (hot literals)
  kZipfCold,     ///< literals uniform over the DOMAIN (OOD-ish, cold/rare)
};

/// Open-loop arrival process of a trace.
enum class ArrivalKind : uint8_t {
  kInstant = 0,  ///< every request at t = 0 (maximum instantaneous pressure)
  kPoisson,      ///< exponential inter-arrivals at `qps`
  kBursty,       ///< Poisson at `qps` inside on-windows, silent off-windows
};

/// Priority-class mix of a trace.
enum class PriorityMixKind : uint8_t {
  kAllNormal = 0,
  kMixed,     ///< ~50% low / 35% normal / 15% high (admission-shed shaped)
  kInverted,  ///< ~50% high / 35% normal / 15% low (flush-order shaped)
};

/// Pool-index access pattern of a trace (what the result caches see).
enum class ChurnKind : uint8_t {
  kRepeatHot = 0,  ///< Zipf-hot indices: few keys repeat, caches help
  kCyclicSweep,    ///< round-robin over the whole pool: the LRU-adversarial
                   ///< pattern (every key evicted before its next use once
                   ///< the pool outsizes the cache)
};

/// Declared selectivity bands. Band edges are fractions of the table:
/// zero (sel == 0), narrow (0, 0.005], medium (0.005, 0.1], broad (0.1, 1].
inline constexpr size_t kNumSelectivityBands = 4;

/// Short lower-case band name ("zero", "narrow", "medium", "broad").
const char* SelectivityBandName(size_t band);

/// Band index of a true selectivity (see edges above).
size_t ClassifySelectivityBand(double selectivity);

const char* PredicateShapeToString(PredicateShape shape);
const char* SkewKindToString(SkewKind skew);
const char* ArrivalKindToString(ArrivalKind arrival);
const char* PriorityMixToString(PriorityMixKind mix);
const char* ChurnKindToString(ChurnKind churn);

/// One cell of the scenario matrix: everything GenerateAdversarialTrace
/// needs besides the table, sizes, and seed.
struct AdversarialScenario {
  std::string name;
  PredicateShape shape = PredicateShape::kPoint;
  SkewKind skew = SkewKind::kUniform;
  ArrivalKind arrival = ArrivalKind::kPoisson;
  PriorityMixKind priority_mix = PriorityMixKind::kAllNormal;
  ChurnKind churn = ChurnKind::kRepeatHot;

  /// Arrival rate (Poisson rate, or the on-window rate when bursty).
  double qps = 4000.0;
  /// Bursty on/off window lengths (ignored unless arrival == kBursty).
  double burst_on_ms = 4.0;
  double burst_off_ms = 16.0;

  /// Fraction of requests whose deadline is already expired at arrival
  /// (relative deadline 0 — the inclusive predicate sheds them at
  /// dispatch). Drives the deadline-shed policy.
  double expired_deadline_fraction = 0.0;
  /// Fraction carrying a tight-but-live deadline of `tight_deadline_ms`.
  /// With a large per-request sample budget these are the mid-walk
  /// abandonment drivers.
  double tight_deadline_fraction = 0.0;
  double tight_deadline_ms = 50.0;

  /// Per-request sample budget override (0 = inherit the estimator's).
  size_t request_samples = 0;

  /// Fraction of requests with CachePolicy::kBypass (cache-adversarial
  /// even when the key stream repeats).
  double bypass_cache_fraction = 0.0;

  /// Filter-count range for candidate queries (max 0 = all columns).
  size_t min_filters = 1;
  size_t max_filters = 0;

  /// Minimum pool entries per selectivity band, enforced by rejection
  /// sampling plus deterministic fallback synthesis. A zero entry
  /// declares the band unused (nothing asserted for it).
  std::array<size_t, kNumSelectivityBands> band_quota = {1, 1, 1, 1};
};

/// One request of an adversarial trace. Deadlines are RELATIVE to the
/// request's arrival instant, in milliseconds; < 0 means no deadline and 0
/// means expired-on-arrival (see AdversarialScenario fractions).
struct AdversarialRequest {
  double arrival_ms = 0.0;
  size_t pool_index = 0;
  RequestPriority priority = RequestPriority::kNormal;
  double deadline_ms = -1.0;
  CachePolicy cache_policy = CachePolicy::kReadWrite;
  size_t num_samples = 0;  ///< 0 = inherit
};

/// A reproducible adversarial trace: the query pool with executed ground
/// truth, plus the timed request stream over it.
struct AdversarialTrace {
  std::string scenario;
  std::vector<Query> pool;
  /// Executed (full-scan) true selectivity per pool entry.
  std::vector<double> pool_true_sel;
  /// Selectivity band per pool entry (ClassifySelectivityBand of the above).
  std::vector<size_t> pool_band;
  /// Leading wildcard-run length per pool entry (table order).
  std::vector<size_t> pool_wildcard_run;
  /// Achieved pool entries per band (quota satisfaction is visible here).
  std::array<size_t, kNumSelectivityBands> band_counts = {0, 0, 0, 0};
  std::vector<AdversarialRequest> requests;
};

/// Generates the pool (rejection-sampled against executed ground truth to
/// meet `scenario.band_quota`, deterministic fallback synthesis for bands
/// the shape cannot reach) and the timed request stream. Deterministic in
/// (table contents, scenario, pool_size, num_requests, seed).
AdversarialTrace GenerateAdversarialTrace(const Table& table,
                                          const AdversarialScenario& scenario,
                                          size_t pool_size,
                                          size_t num_requests, uint64_t seed);

/// The default scenario matrix bench_adversarial sweeps: every enum
/// dimension appears in at least one cell, and the overload cells
/// (deadline_storm, burst_admission, midwalk_deadlines) are shaped so the
/// corresponding policy counters must fire under the bench's engine
/// geometry.
std::vector<AdversarialScenario> AdversarialScenarioMatrix();

/// Canonical byte serialization of a trace (pool via QueryKey bytes, all
/// numeric fields at full precision). Two traces from the same inputs are
/// byte-identical — THE seed-determinism contract, asserted in
/// tests/test_workload_harness.
std::string TraceToString(const AdversarialTrace& trace);

/// Pins request `i` of `trace` to an absolute trace start instant: fills
/// query, priority, cache policy, sample budget, and converts the relative
/// deadline to `start + arrival_ms + deadline_ms`.
EstimateRequest MaterializeRequest(
    const AdversarialTrace& trace, size_t i,
    std::chrono::steady_clock::time_point start);

}  // namespace naru
