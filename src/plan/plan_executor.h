// Executes compiled SamplingPlans: shared prefix walks, forked suffix
// walks, cross-query GEMM fusion.
//
// Execution model. The unit of work is a (group, shard) task:
//
//   1. PREFIX — walk the group's shared leading-wildcard prefix once, on
//      one block of shard_size paths, drawing from the shard's RNG stream
//      Rng(SamplerShardSeed(seed, shard)). Every position in the prefix is
//      unconstrained for every member, so masses are exactly 1, no path
//      dies, and the resulting (samples, RNG state) is what EVERY member's
//      sequential walk would hold after those columns.
//   2. FORK — copy the prefix block into one row block per member of a
//      stacked sample matrix and give each member a private copy of the
//      post-prefix RNG state.
//   3. SUFFIX — walk the remaining columns column-synchronously: ONE
//      stacked model evaluation per column covers every still-active
//      member (the cross-query GEMM fusion; requires
//      ConditionalModel::SupportsStackedEvaluation), then each member's
//      block runs the shared SamplerColumnStep kernel with its own RNG.
//      Members are ordered by last constrained position descending, so a
//      finished member's rows are dropped from the stacked matrix by
//      truncating its tail.
//
// Determinism: per member, the draws consumed and the arithmetic applied
// are those of ProgressiveSampler's sequential shard walk, and every
// kernel on the stacked evaluation path is row-independent — so estimates
// (and standard errors) are bit-identical to the sequential path for a
// fixed seed, regardless of grouping, batch composition, or thread count.
#pragma once

#include <vector>

#include "core/sampler.h"
#include "plan/sampling_plan.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace naru {

/// Execution knobs. Sampling fields mirror ProgressiveSamplerConfig (and
/// are part of the RNG-stream contract); execution fields only move work
/// between threads and never affect a result.
struct PlanExecutionOptions {
  /// Default sample-path budget; a PlanGroup carrying a nonzero
  /// num_samples (a per-request budget from serve/request.h) overrides it
  /// for that group's members.
  size_t num_samples = 1000;
  size_t shard_size = 128;
  uint64_t seed = 7;
  /// 1 = strictly serial on the calling thread; any other value spreads
  /// (group, shard) tasks across `thread_pool` when the model supports
  /// concurrent sampling.
  size_t parallelism = 0;
  /// nullptr = the process-global pool.
  ThreadPool* thread_pool = nullptr;
  /// nullptr = a private pool for this call (the serving engine injects
  /// its shared pool so concurrent batches reuse one set of buffers).
  SamplerWorkspacePool* workspaces = nullptr;
};

/// Runs `plan` against `model`; (*estimates)[i] is the unbiased
/// selectivity estimate for plan.queries[i] — bit-identical to
/// ProgressiveSampler::EstimateWithStdError under the same
/// (num_samples, shard_size, seed). `std_errors` (optional) receives the
/// matching Monte Carlo standard errors. Requires
/// model->SupportsStackedEvaluation().
///
/// Mid-walk abandonment: a group whose abandon_deadline (the latest
/// member deadline) has passed is given up BETWEEN column steps — never
/// inside a kernel — and every member of an abandoned group reports a
/// DEADLINE_EXCEEDED entry in `statuses` (optional; parallel to
/// `estimates`, OK elsewhere) with a NaN estimate. Expiry is inclusive
/// (now >= deadline), the serve-layer predicate. Groups that are not
/// abandoned are bit-identical to a deadline-free run: the checkpoint
/// reads the clock, it never touches RNG streams or weights.
void ExecuteSamplingPlan(ConditionalModel* model, const SamplingPlan& plan,
                         const PlanExecutionOptions& options,
                         std::vector<double>* estimates,
                         std::vector<double>* std_errors = nullptr,
                         std::vector<Status>* statuses = nullptr);

}  // namespace naru
