// Executes compiled SamplingPlans: hierarchical shared walk segments,
// forked branch walks, cross-query GEMM fusion.
//
// Execution model. The unit of work is a (tree, shard) task, walked
// column-synchronously with a FRONTIER of live branches:
//
//   1. The frontier starts as the tree's root — one block of shard_size
//      paths drawing from the shard's RNG stream
//      Rng(SamplerShardSeed(seed, shard)). Every query below a node takes
//      an identical column step across the node's segment (all wildcard,
//      or all constrained by the same region), so one block serves them
//      all: the (samples, weights, liveness, RNG state) after the segment
//      is what EVERY member's sequential walk would hold there.
//   2. At a column where some frontier node's segment ends, the stacked
//      row layout is rebuilt: the node's terminal queries reduce their
//      weight sums from the node's block (their walk is complete), and
//      each child forks off with a private copy of the block and of the
//      post-segment RNG state. Deeper shared segments then continue —
//      multi-depth sharing, not the single prefix+fork of the flat plans.
//   3. At every column, ONE stacked model evaluation covers every live
//      branch (the cross-query GEMM fusion; requires
//      ConditionalModel::SupportsStackedEvaluation), then each branch's
//      block runs the shared SamplerColumnStep kernel with its own RNG.
//
// Determinism: per member query, the draws consumed and the arithmetic
// applied are those of ProgressiveSampler's sequential shard walk — forks
// copy RNG state exactly where the sequential walks coincide, and every
// kernel on the stacked evaluation path is row-independent — so estimates
// (and standard errors) are bit-identical to the sequential path for a
// fixed seed, regardless of tree shape, batch composition, or thread
// count.
#pragma once

#include <vector>

#include "core/sampler.h"
#include "plan/sampling_plan.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace naru {

/// Execution knobs. Sampling fields mirror ProgressiveSamplerConfig (and
/// are part of the RNG-stream contract); execution fields only move work
/// between threads and never affect a result.
struct PlanExecutionOptions {
  /// Default sample-path budget; a PlanTree carrying a nonzero
  /// num_samples (a per-request budget from serve/request.h) overrides it
  /// for that tree's members.
  size_t num_samples = 1000;
  size_t shard_size = 128;
  uint64_t seed = 7;
  /// 1 = strictly serial on the calling thread; any other value spreads
  /// (tree, shard) tasks across `thread_pool` when the model supports
  /// concurrent sampling.
  size_t parallelism = 0;
  /// nullptr = the process-global pool.
  ThreadPool* thread_pool = nullptr;
  /// nullptr = a private pool for this call (the serving engine injects
  /// its shared pool so concurrent batches reuse one set of buffers).
  SamplerWorkspacePool* workspaces = nullptr;
};

/// Runs `plan` against `model`; (*estimates)[i] is the unbiased
/// selectivity estimate for plan.queries[i] — bit-identical to
/// ProgressiveSampler::EstimateWithStdError under the same
/// (num_samples, shard_size, seed). `std_errors` (optional) receives the
/// matching Monte Carlo standard errors. Requires
/// model->SupportsStackedEvaluation().
///
/// Mid-walk abandonment: a tree whose abandon_deadline (the latest
/// member deadline) has passed is given up BETWEEN column steps — never
/// inside a kernel — and every member of an abandoned tree reports a
/// DEADLINE_EXCEEDED entry in `statuses` (optional; parallel to
/// `estimates`, OK elsewhere) with a NaN estimate. Expiry is inclusive
/// (now >= deadline), the serve-layer predicate. Trees that are not
/// abandoned are bit-identical to a deadline-free run: the checkpoint
/// reads the clock, it never touches RNG streams or weights.
void ExecuteSamplingPlan(ConditionalModel* model, const SamplingPlan& plan,
                         const PlanExecutionOptions& options,
                         std::vector<double>* estimates,
                         std::vector<double>* std_errors = nullptr,
                         std::vector<Status>* statuses = nullptr);

}  // namespace naru
