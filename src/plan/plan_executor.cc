#include "plan/plan_executor.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <limits>

namespace naru {

namespace {

// True once the group's walk may be abandoned: every member's deadline
// has passed (abandon_deadline is their max; the shared inclusive expiry
// predicate, util/deadline.h). Reads the shared flag first so sibling
// shards of an already-abandoned group bail without a clock read.
bool GroupExpired(const PlanGroup& group, std::atomic<uint8_t>* abandoned) {
  if (group.abandon_deadline == kNoDeadline) return false;
  if (abandoned->load(std::memory_order_relaxed) != 0) return true;
  if (DeadlineExpired(group.abandon_deadline,
                      std::chrono::steady_clock::now())) {
    abandoned->store(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

// One (group, shard) task: prefix walk, fork, stacked suffix walk.
// Writes each member's shard weight sum / squared sum into the flat
// per-(query, shard) result arrays. Between column steps (never inside a
// kernel) the task checks the group's abandon deadline; once it trips,
// the task returns early, `abandoned` stays set, and the caller marks
// every member DEADLINE_EXCEEDED — partial sums are discarded.
void RunGroupShard(ConditionalModel* model, const SamplingPlan& plan,
                   const PlanGroup& group, size_t shard, size_t rows,
                   uint64_t seed, size_t slot_stride, SamplerWorkspace* ws,
                   std::vector<double>* shard_w, std::vector<double>* shard_w2,
                   std::atomic<uint8_t>* abandoned) {
  const size_t n = model->num_columns();
  const size_t members = group.members.size();
  const size_t prefix_len = group.prefix_len;

  // --- Prefix: one walk over the shared leading-wildcard run. ---
  Rng rng(SamplerShardSeed(seed, shard));
  ws->prefix_samples.Resize(rows, n);
  ws->prefix_samples.Fill(0);
  ws->weights.assign(rows, 1.0);
  ws->alive.assign(rows, 1);
  auto session = model->StartSession(rows);
  const Query& lead_query = *plan.queries[group.members.front()].query;
  for (size_t col = 0; col < prefix_len; ++col) {
    if (GroupExpired(group, abandoned)) return;
    session->Dist(ws->prefix_samples, col, &ws->prefix_probs);
    NARU_CHECK(ws->prefix_probs.rows() == rows &&
               ws->prefix_probs.cols() == model->DomainSize(col));
    // Wildcard for every member by construction of prefix_len; the query
    // argument is never consulted on the wildcard path.
    SamplerColumnStep(model, lead_query, col, /*wildcard=*/true,
                      SamplerRowBlock{&ws->prefix_samples, &ws->prefix_probs,
                                      ws->weights.data(), ws->alive.data(),
                                      /*row_offset=*/0, rows},
                      &rng);
  }

  // --- Fork: one row block and one RNG copy per member. ---
  const size_t total = members * rows;
  ws->samples.Resize(total, n);
  for (size_t b = 0; b < members; ++b) {
    // Row-major and same column count: each member's block is one
    // contiguous copy of the whole prefix block.
    std::memcpy(ws->samples.Row(b * rows), ws->prefix_samples.Row(0),
                rows * n * sizeof(int32_t));
  }
  ws->weights.assign(total, 1.0);
  ws->alive.assign(total, 1);
  std::vector<Rng> rngs(members, rng);

  // --- Suffix: column-synchronous stacked walk. Members are ordered by
  // last_col descending, so the active set is always a leading slice of
  // the stacked matrix and finished members drop off by truncation. ---
  const int max_last = plan.queries[group.members.front()].last_col;
  size_t active = members;
  for (size_t col = prefix_len; col <= static_cast<size_t>(max_last); ++col) {
    while (active > 0 &&
           plan.queries[group.members[active - 1]].last_col <
               static_cast<int>(col)) {
      --active;
    }
    if (active == 0) break;
    if (GroupExpired(group, abandoned)) return;
    ws->samples.Resize(active * rows, n);  // truncation keeps leading rows
    session->Dist(ws->samples, col, &ws->probs);
    NARU_CHECK(ws->probs.rows() == active * rows &&
               ws->probs.cols() == model->DomainSize(col));
    for (size_t b = 0; b < active; ++b) {
      const QueryPlan& qp = plan.queries[group.members[b]];
      SamplerColumnStep(model, *qp.query, col, qp.wildcard[col] != 0,
                        SamplerRowBlock{&ws->samples, &ws->probs,
                                        ws->weights.data() + b * rows,
                                        ws->alive.data() + b * rows,
                                        /*row_offset=*/b * rows, rows},
                        &rngs[b]);
    }
  }

  // --- Reduce each member's block into its (query, shard) slot. ---
  for (size_t b = 0; b < members; ++b) {
    double sum = 0;
    double sq = 0;
    for (size_t r = 0; r < rows; ++r) {
      const double w = ws->weights[b * rows + r];
      sum += w;
      sq += w * w;
    }
    const size_t slot = group.members[b] * slot_stride + shard;
    (*shard_w)[slot] = sum;
    (*shard_w2)[slot] = sq;
  }
}

}  // namespace

void ExecuteSamplingPlan(ConditionalModel* model, const SamplingPlan& plan,
                         const PlanExecutionOptions& options,
                         std::vector<double>* estimates,
                         std::vector<double>* std_errors,
                         std::vector<Status>* statuses) {
  NARU_CHECK(model->SupportsStackedEvaluation());
  NARU_CHECK(options.num_samples >= 1);
  NARU_CHECK(options.shard_size >= 1);
  const size_t m = plan.queries.size();
  estimates->assign(m, 0.0);
  if (std_errors != nullptr) std_errors->assign(m, 0.0);
  if (statuses != nullptr) statuses->assign(m, Status::OK());
  if (m == 0) return;

  // Per-request budgets (serve/request.h) make the shard count a GROUP
  // property: each group walks SamplerNumShards(its budget, shard_size)
  // shards. The flat (query, shard) result arrays are strided by the
  // widest shard count; a query only ever fills its own group's shards.
  const auto effective_samples = [&](size_t group_budget) {
    return group_budget != 0 ? group_budget : options.num_samples;
  };
  size_t max_shards = 1;
  std::vector<size_t> group_of(m, 0);  // query -> owning group
  std::vector<std::pair<size_t, size_t>> tasks;  // (group, shard)
  for (size_t g = 0; g < plan.groups.size(); ++g) {
    for (size_t member : plan.groups[g].members) group_of[member] = g;
    const size_t ns = effective_samples(plan.groups[g].num_samples);
    NARU_CHECK(ns >= 1);
    const size_t shards = SamplerNumShards(ns, options.shard_size);
    max_shards = std::max(max_shards, shards);
    for (size_t k = 0; k < shards; ++k) tasks.emplace_back(g, k);
  }
  std::vector<double> shard_w(m * max_shards, 0.0);
  std::vector<double> shard_w2(m * max_shards, 0.0);

  SamplerWorkspacePool local_pool;
  SamplerWorkspacePool* workspaces =
      options.workspaces != nullptr ? options.workspaces : &local_pool;

  // One abandonment flag per group, shared by its (group, shard) tasks:
  // the first task to observe the group's abandon_deadline expired sets
  // it and every sibling bails at its next column boundary (or skips
  // entirely, below).
  std::vector<std::atomic<uint8_t>> abandoned(plan.groups.size());
  for (auto& flag : abandoned) flag.store(0, std::memory_order_relaxed);

  const size_t num_tasks = tasks.size();
  auto run_task = [&](size_t t) {
    const auto [g, k] = tasks[t];
    if (abandoned[g].load(std::memory_order_relaxed) != 0) return;
    const size_t ns = effective_samples(plan.groups[g].num_samples);
    const size_t lo = k * options.shard_size;
    const size_t rows = std::min(options.shard_size, ns - lo);
    WorkspaceLease ws(workspaces);
    RunGroupShard(model, plan, plan.groups[g], k, rows, options.seed,
                  max_shards, ws.get(), &shard_w, &shard_w2, &abandoned[g]);
  };

  // Same scheduling discipline as ProgressiveSampler: shard/group
  // parallelism only on concurrent-capable models, a caller's serial
  // region wins, and whenever coarse parallelism is exercised (or an
  // explicit parallelism=1 asked for one thread) the kernels inside run
  // inline so thread accounting stays honest.
  const bool concurrent_ok = model->SupportsConcurrentSampling();
  const bool parallel = concurrent_ok && options.parallelism != 1 &&
                        num_tasks > 1 && !ScopedSerialRegion::Active();
  if (parallel) {
    ThreadPool* pool = options.thread_pool != nullptr ? options.thread_pool
                                                      : GlobalThreadPool();
    pool->ParallelFor(
        0, num_tasks,
        [&](size_t lo, size_t hi) {
          ScopedSerialRegion serial;
          for (size_t t = lo; t < hi; ++t) run_task(t);
        },
        /*min_chunk=*/1);
  } else if ((concurrent_ok && num_tasks > 1) || options.parallelism == 1) {
    ScopedSerialRegion serial;
    for (size_t t = 0; t < num_tasks; ++t) run_task(t);
  } else {
    for (size_t t = 0; t < num_tasks; ++t) run_task(t);
  }

  // Reduce in shard order per query — independent of execution order, and
  // the same arithmetic as ProgressiveSampler::EstimateWithOptions. Each
  // query reduces over ITS budget's shard count. Members of an abandoned
  // group have incomplete shard sums: they report a typed
  // DEADLINE_EXCEEDED instead of a value.
  for (size_t q = 0; q < m; ++q) {
    if (abandoned[group_of[q]].load(std::memory_order_relaxed) != 0) {
      (*estimates)[q] = std::numeric_limits<double>::quiet_NaN();
      if (statuses != nullptr) {
        (*statuses)[q] =
            Status::DeadlineExceeded("deadline expired mid-walk");
      }
      continue;
    }
    const size_t ns = effective_samples(plan.queries[q].num_samples);
    const size_t shards = SamplerNumShards(ns, options.shard_size);
    double weight_sum = 0;
    double weight_sq_sum = 0;
    for (size_t k = 0; k < shards; ++k) {
      weight_sum += shard_w[q * max_shards + k];
      weight_sq_sum += shard_w2[q * max_shards + k];
    }
    const double s = static_cast<double>(ns);
    const double mean = weight_sum / s;
    (*estimates)[q] = mean;
    if (std_errors != nullptr && ns > 1) {
      const double var =
          std::max(0.0, (weight_sq_sum - s * mean * mean) / (s - 1.0));
      (*std_errors)[q] = std::sqrt(var / s);
    }
  }
}

}  // namespace naru
