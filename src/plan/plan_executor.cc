#include "plan/plan_executor.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <limits>
#include <utility>

namespace naru {

namespace {

// True once the tree's walk may be abandoned: every member's deadline
// has passed (abandon_deadline is their max; the shared inclusive expiry
// predicate, util/deadline.h). Reads the shared flag first so sibling
// shards of an already-abandoned tree bail without a clock read.
// Memory order: RELAXED throughout — the flag is monotonic (0 -> 1,
// never reset) and publishes no data: an abandoned tree's partial sums
// are discarded unread, and the surviving trees' results are published
// by the thread pool's completion edge, not by this flag.
bool TreeExpired(const PlanTree& tree, std::atomic<uint8_t>* abandoned) {
  if (tree.abandon_deadline == kNoDeadline) return false;
  if (abandoned->load(std::memory_order_relaxed) != 0) return true;
  if (DeadlineExpired(tree.abandon_deadline,
                      std::chrono::steady_clock::now())) {
    abandoned->store(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

// One live branch of the frontier: the plan-tree node whose segment it is
// walking, plus its private RNG stream. Branch i owns rows
// [i*rows, (i+1)*rows) of the stacked walk state.
struct FrontierEntry {
  size_t node = 0;
  Rng rng;
};

// One (tree, shard) task: the column-synchronous frontier walk described
// in the header. Writes each finished query's shard weight sum / squared
// sum into the flat per-(query, shard) result arrays. Between column
// steps (never inside a kernel) the task checks the tree's abandon
// deadline; once it trips, the task returns early, `abandoned` stays set,
// and the caller marks every member DEADLINE_EXCEEDED — partial sums are
// discarded.
void RunTreeShard(ConditionalModel* model, const SamplingPlan& plan,
                  const PlanTree& tree, size_t shard, size_t rows,
                  uint64_t seed, size_t slot_stride, SamplerWorkspace* ws,
                  std::vector<double>* shard_w, std::vector<double>* shard_w2,
                  std::atomic<uint8_t>* abandoned) {
  const size_t n = model->num_columns();

  IntMatrix* samples = &ws->samples;
  IntMatrix* spare_samples = &ws->spare_samples;
  std::vector<double>* weights = &ws->weights;
  std::vector<double>* spare_weights = &ws->spare_weights;
  std::vector<uint8_t>* alive = &ws->alive;
  std::vector<uint8_t>* spare_alive = &ws->spare_alive;

  // The root's block: a fresh shard walk, exactly the sequential start.
  std::vector<FrontierEntry> entries;
  entries.push_back(FrontierEntry{0, Rng(SamplerShardSeed(seed, shard))});
  samples->Resize(rows, n);
  samples->Fill(0);
  weights->assign(rows, 1.0);
  alive->assign(rows, 1);

  auto session = model->StartSession(rows);

  size_t col = 0;
  while (!entries.empty()) {
    // --- Retire / fork boundary: rebuild the stacked layout whenever a
    // frontier node's segment ends at this column. Terminal queries
    // reduce, children fork with copies of the block and the RNG stream.
    // Row position never enters per-row arithmetic, so relayout is
    // invisible to the estimates. ---
    bool boundary = false;
    size_t out_count = 0;
    for (const FrontierEntry& e : entries) {
      const PlanTreeNode& node = tree.nodes[e.node];
      if (node.end == col) {
        boundary = true;
        out_count += node.children.size();
      } else {
        out_count += 1;
      }
    }
    if (boundary) {
      spare_samples->Resize(out_count * rows, n);
      spare_weights->resize(out_count * rows);
      spare_alive->resize(out_count * rows);
      std::vector<FrontierEntry> next;
      next.reserve(out_count);
      for (size_t i = 0; i < entries.size(); ++i) {
        FrontierEntry& e = entries[i];
        const PlanTreeNode& node = tree.nodes[e.node];
        const size_t src = i * rows;
        const auto copy_block_to = [&](size_t dst) {
          if (rows > 0) {
            std::memcpy(spare_samples->Row(dst * rows), samples->Row(src),
                        rows * n * sizeof(int32_t));
          }
          std::copy(weights->begin() + static_cast<ptrdiff_t>(src),
                    weights->begin() + static_cast<ptrdiff_t>(src + rows),
                    spare_weights->begin() + static_cast<ptrdiff_t>(dst * rows));
          std::copy(alive->begin() + static_cast<ptrdiff_t>(src),
                    alive->begin() + static_cast<ptrdiff_t>(src + rows),
                    spare_alive->begin() + static_cast<ptrdiff_t>(dst * rows));
        };
        if (node.end != col) {
          copy_block_to(next.size());
          next.push_back(std::move(e));
          continue;
        }
        // Queries finishing in this segment: the block's weights are
        // their complete walk (their last constrained column is col-1) —
        // the same sums the sequential shard would reduce.
        for (size_t q : node.terminals) {
          double sum = 0;
          double sq = 0;
          for (size_t r = 0; r < rows; ++r) {
            const double w = (*weights)[src + r];
            sum += w;
            sq += w * w;
          }
          (*shard_w)[q * slot_stride + shard] = sum;
          (*shard_w2)[q * slot_stride + shard] = sq;
        }
        // Fork: every child continues from an identical copy of the walk
        // state — block AND RNG stream — which is exactly where each
        // child's sequential walk would stand after these columns.
        for (size_t child : node.children) {
          copy_block_to(next.size());
          next.push_back(FrontierEntry{child, e.rng});
        }
      }
      std::swap(samples, spare_samples);
      std::swap(weights, spare_weights);
      std::swap(alive, spare_alive);
      entries = std::move(next);
      if (entries.empty()) return;  // every branch retired
    }

    if (TreeExpired(tree, abandoned)) return;

    // --- One stacked evaluation for the whole frontier, then the shared
    // per-row column step per branch (each with its own RNG). The node's
    // representative query stands in for every member below it: across
    // the segment they share the wildcard flag, the masked region, and
    // the dead-path fallback code by construction. ---
    session->Dist(*samples, col, &ws->probs);
    NARU_CHECK(ws->probs.rows() == entries.size() * rows &&
               ws->probs.cols() == model->DomainSize(col));
    for (size_t i = 0; i < entries.size(); ++i) {
      const PlanTreeNode& node = tree.nodes[entries[i].node];
      const QueryPlan& qp = plan.queries[node.rep];
      SamplerColumnStep(model, *qp.query, col, qp.wildcard[col] != 0,
                        SamplerRowBlock{samples, &ws->probs,
                                        weights->data() + i * rows,
                                        alive->data() + i * rows,
                                        /*row_offset=*/i * rows, rows},
                        &entries[i].rng);
    }
    ++col;
  }
}

}  // namespace

void ExecuteSamplingPlan(ConditionalModel* model, const SamplingPlan& plan,
                         const PlanExecutionOptions& options,
                         std::vector<double>* estimates,
                         std::vector<double>* std_errors,
                         std::vector<Status>* statuses) {
  NARU_CHECK(model->SupportsStackedEvaluation());
  NARU_CHECK(options.num_samples >= 1);
  NARU_CHECK(options.shard_size >= 1);
  const size_t m = plan.queries.size();
  estimates->assign(m, 0.0);
  if (std_errors != nullptr) std_errors->assign(m, 0.0);
  if (statuses != nullptr) statuses->assign(m, Status::OK());
  if (m == 0) return;

  // Per-request budgets (serve/request.h) make the shard count a TREE
  // property: each tree walks SamplerNumShards(its budget, shard_size)
  // shards. The flat (query, shard) result arrays are strided by the
  // widest shard count; a query only ever fills its own tree's shards.
  const auto effective_samples = [&](size_t tree_budget) {
    return tree_budget != 0 ? tree_budget : options.num_samples;
  };
  size_t max_shards = 1;
  std::vector<size_t> tree_of(m, 0);  // query -> owning tree
  std::vector<std::pair<size_t, size_t>> tasks;  // (tree, shard)
  for (size_t t = 0; t < plan.trees.size(); ++t) {
    for (size_t member : plan.trees[t].members) tree_of[member] = t;
    const size_t ns = effective_samples(plan.trees[t].num_samples);
    NARU_CHECK(ns >= 1);
    const size_t shards = SamplerNumShards(ns, options.shard_size);
    max_shards = std::max(max_shards, shards);
    for (size_t k = 0; k < shards; ++k) tasks.emplace_back(t, k);
  }
  std::vector<double> shard_w(m * max_shards, 0.0);
  std::vector<double> shard_w2(m * max_shards, 0.0);

  SamplerWorkspacePool local_pool;
  SamplerWorkspacePool* workspaces =
      options.workspaces != nullptr ? options.workspaces : &local_pool;

  // One abandonment flag per tree, shared by its (tree, shard) tasks:
  // the first task to observe the tree's abandon_deadline expired sets
  // it and every sibling bails at its next column boundary (or skips
  // entirely, below). Relaxed order everywhere (see TreeExpired): the
  // flag is monotonic and carries no payload — a late-observing sibling
  // merely runs one extra column step.
  std::vector<std::atomic<uint8_t>> abandoned(plan.trees.size());
  for (auto& flag : abandoned) flag.store(0, std::memory_order_relaxed);

  const size_t num_tasks = tasks.size();
  auto run_task = [&](size_t t) {
    const auto [tree, k] = tasks[t];
    if (abandoned[tree].load(std::memory_order_relaxed) != 0) return;
    const size_t ns = effective_samples(plan.trees[tree].num_samples);
    const size_t lo = k * options.shard_size;
    const size_t rows = std::min(options.shard_size, ns - lo);
    WorkspaceLease ws(workspaces);
    RunTreeShard(model, plan, plan.trees[tree], k, rows, options.seed,
                 max_shards, ws.get(), &shard_w, &shard_w2, &abandoned[tree]);
  };

  // Same scheduling discipline as ProgressiveSampler: shard/tree
  // parallelism only on concurrent-capable models, a caller's serial
  // region wins, and whenever coarse parallelism is exercised (or an
  // explicit parallelism=1 asked for one thread) the kernels inside run
  // inline so thread accounting stays honest.
  const bool concurrent_ok = model->SupportsConcurrentSampling();
  const bool parallel = concurrent_ok && options.parallelism != 1 &&
                        num_tasks > 1 && !ScopedSerialRegion::Active();
  if (parallel) {
    ThreadPool* pool = options.thread_pool != nullptr ? options.thread_pool
                                                      : GlobalThreadPool();
    pool->ParallelFor(
        0, num_tasks,
        [&](size_t lo, size_t hi) {
          ScopedSerialRegion serial;
          for (size_t t = lo; t < hi; ++t) run_task(t);
        },
        /*min_chunk=*/1);
  } else if ((concurrent_ok && num_tasks > 1) || options.parallelism == 1) {
    ScopedSerialRegion serial;
    for (size_t t = 0; t < num_tasks; ++t) run_task(t);
  } else {
    for (size_t t = 0; t < num_tasks; ++t) run_task(t);
  }

  // Reduce in shard order per query — independent of execution order, and
  // the same arithmetic as ProgressiveSampler::EstimateWithOptions. Each
  // query reduces over ITS budget's shard count. Members of an abandoned
  // tree have incomplete shard sums: they report a typed
  // DEADLINE_EXCEEDED instead of a value.
  for (size_t q = 0; q < m; ++q) {
    if (abandoned[tree_of[q]].load(std::memory_order_relaxed) != 0) {
      (*estimates)[q] = std::numeric_limits<double>::quiet_NaN();
      if (statuses != nullptr) {
        (*statuses)[q] =
            Status::DeadlineExceeded("deadline expired mid-walk");
      }
      continue;
    }
    const size_t ns = effective_samples(plan.queries[q].num_samples);
    const size_t shards = SamplerNumShards(ns, options.shard_size);
    double weight_sum = 0;
    double weight_sq_sum = 0;
    for (size_t k = 0; k < shards; ++k) {
      weight_sum += shard_w[q * max_shards + k];
      weight_sq_sum += shard_w2[q * max_shards + k];
    }
    const double s = static_cast<double>(ns);
    const double mean = weight_sum / s;
    (*estimates)[q] = mean;
    if (std_errors != nullptr && ns > 1) {
      const double var =
          std::max(0.0, (weight_sq_sum - s * mean * mean) / (s - 1.0));
      (*std_errors)[q] = std::sqrt(var / s);
    }
  }
}

}  // namespace naru
