#include "plan/sampling_plan.h"

#include <algorithm>
#include <numeric>

namespace naru {

size_t SamplingPlan::WalkColumns() const {
  size_t cols = 0;
  for (const auto& q : queries) {
    cols += static_cast<size_t>(q.last_col) + 1;
  }
  return cols;
}

size_t SamplingPlan::SharedPrefixColumns() const {
  size_t saved = 0;
  for (const auto& g : groups) {
    if (g.members.size() > 1) saved += g.prefix_len * (g.members.size() - 1);
  }
  return saved;
}

double SamplingPlan::PrefixShareRatio() const {
  const size_t walk = WalkColumns();
  if (walk == 0) return 0.0;
  return static_cast<double>(SharedPrefixColumns()) /
         static_cast<double>(walk);
}

SamplingPlan CompileSamplingPlan(const ConditionalModel* model,
                                 const std::vector<const Query*>& queries,
                                 const SamplingPlanOptions& options) {
  SamplingPlan plan;
  plan.queries.reserve(queries.size());
  NARU_CHECK(options.budgets.empty() ||
             options.budgets.size() == queries.size());
  NARU_CHECK(options.deadlines.empty() ||
             options.deadlines.size() == queries.size());
  const size_t n = model->num_columns();
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const Query* q = queries[qi];
    QueryPlan qp;
    qp.query = q;
    qp.num_samples = options.budgets.empty() ? 0 : options.budgets[qi];
    if (!options.deadlines.empty()) qp.deadline = options.deadlines[qi];
    qp.wildcard.resize(n);
    for (size_t pos = 0; pos < n; ++pos) {
      qp.wildcard[pos] = model->PositionIsWildcard(*q, pos) ? 1 : 0;
      if (!qp.wildcard[pos]) qp.last_col = static_cast<int>(pos);
    }
    while (qp.wildcard_run < n && qp.wildcard[qp.wildcard_run]) {
      ++qp.wildcard_run;
    }
    NARU_CHECK(qp.last_col >= 0);  // plans carry sampled queries only
    plan.queries.push_back(std::move(qp));
  }
  const size_t m = plan.queries.size();
  if (m == 0) return plan;

  // Groups a budget class: `indices` (in batch order) all share one
  // sample budget, so the savings-maximizing partition is free to fuse
  // any of them.
  const auto group_class = [&](const std::vector<size_t>& indices) {
    const size_t mc = indices.size();
    // Sort by leading-run length descending (stable on batch order) so any
    // contiguous segment's shareable prefix is its LAST element's run.
    std::vector<size_t> order = indices;
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return plan.queries[a].wildcard_run > plan.queries[b].wildcard_run;
    });

    // Partition the sorted sequence into contiguous segments maximizing
    // the prefix-sharing savings Σ run(last) · (len - 1); on equal
    // savings, prefer fewer segments (wider stacked GEMMs). best[j] =
    // optimum for the first j queries.
    struct Best {
      size_t savings = 0;
      size_t segments = 0;
      size_t cut = 0;  // segment start for the partition ending at j
    };
    std::vector<Best> best(mc + 1);
    for (size_t j = 1; j <= mc; ++j) {
      best[j].savings = 0;
      best[j].segments = mc + 1;
      for (size_t i = 0; i < j; ++i) {  // segment [i, j)
        const size_t run = plan.queries[order[j - 1]].wildcard_run;
        const size_t cand = best[i].savings + run * (j - 1 - i);
        const size_t segs = best[i].segments + 1;
        if (cand > best[j].savings ||
            (cand == best[j].savings && segs < best[j].segments)) {
          best[j].savings = cand;
          best[j].segments = segs;
          best[j].cut = i;
        }
      }
    }

    // Recover segments, then split any that exceed max_group_width.
    std::vector<std::pair<size_t, size_t>> segments;  // [begin, end)
    for (size_t j = mc; j > 0; j = best[j].cut) {
      segments.emplace_back(best[j].cut, j);
    }
    std::reverse(segments.begin(), segments.end());

    const size_t cap = std::max<size_t>(options.max_group_width, 1);
    for (const auto& [seg_begin, seg_end] : segments) {
      const size_t len = seg_end - seg_begin;
      const size_t pieces = (len + cap - 1) / cap;
      // Even split: every piece keeps the segment's shared prefix.
      const size_t base = len / pieces;
      const size_t extra = len % pieces;
      size_t at = seg_begin;
      for (size_t p = 0; p < pieces; ++p) {
        const size_t take = base + (p < extra ? 1 : 0);
        PlanGroup group;
        group.members.assign(order.begin() + static_cast<ptrdiff_t>(at),
                             order.begin() + static_cast<ptrdiff_t>(at + take));
        at += take;
        group.prefix_len = plan.queries[group.members.front()].wildcard_run;
        for (size_t member : group.members) {
          group.prefix_len =
              std::min(group.prefix_len, plan.queries[member].wildcard_run);
        }
        group.num_samples = plan.queries[group.members.front()].num_samples;
        // Abandonable only past the LATEST member deadline: the shared
        // walk serves every member, so it may be given up only once all
        // of them have expired. kNoDeadline is time_point::max(), so one
        // deadline-free member disables abandonment via the max.
        group.abandon_deadline =
            std::chrono::steady_clock::time_point::min();
        for (size_t member : group.members) {
          group.abandon_deadline = std::max(group.abandon_deadline,
                                            plan.queries[member].deadline);
        }
        // Tail blocks must be droppable by truncation once their queries
        // pass their last constrained position.
        std::stable_sort(group.members.begin(), group.members.end(),
                         [&](size_t a, size_t b) {
                           return plan.queries[a].last_col >
                                  plan.queries[b].last_col;
                         });
        plan.groups.push_back(std::move(group));
      }
    }
  };

  // Partition by sample budget first — a group's shared prefix walk and
  // shard layout are functions of the budget, so cross-budget fusion is
  // impossible by construction. Classes run in ascending-budget order
  // (deterministic); with one class this is exactly the budget-free path.
  std::vector<size_t> budgets_seen;
  for (const auto& qp : plan.queries) budgets_seen.push_back(qp.num_samples);
  std::sort(budgets_seen.begin(), budgets_seen.end());
  budgets_seen.erase(std::unique(budgets_seen.begin(), budgets_seen.end()),
                     budgets_seen.end());
  std::vector<size_t> class_indices;
  for (const size_t budget : budgets_seen) {
    class_indices.clear();
    for (size_t qi = 0; qi < m; ++qi) {
      if (plan.queries[qi].num_samples == budget) class_indices.push_back(qi);
    }
    group_class(class_indices);
  }
  return plan;
}

}  // namespace naru
