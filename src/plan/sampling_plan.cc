#include "plan/sampling_plan.h"

#include <algorithm>
#include <numeric>
#include <string>
#include <utility>

#include "serve/query_key.h"

namespace naru {

namespace {

// Queries-under-node counts (terminals plus all descendants), computable
// in one reverse pass because children always follow their parent.
std::vector<size_t> CountsUnder(const PlanTree& tree) {
  std::vector<size_t> counts(tree.nodes.size(), 0);
  for (size_t id = tree.nodes.size(); id > 0; --id) {
    const PlanTreeNode& node = tree.nodes[id - 1];
    size_t c = node.terminals.size();
    for (size_t child : node.children) c += counts[child];
    counts[id - 1] = c;
  }
  return counts;
}

}  // namespace

size_t SamplingPlan::WalkColumns() const {
  size_t cols = 0;
  for (const auto& q : queries) {
    cols += static_cast<size_t>(q.last_col) + 1;
  }
  return cols;
}

size_t SamplingPlan::SharedColumns() const {
  size_t saved = 0;
  for (const auto& tree : trees) {
    const std::vector<size_t> counts = CountsUnder(tree);
    for (size_t id = 0; id < tree.nodes.size(); ++id) {
      const PlanTreeNode& node = tree.nodes[id];
      if (counts[id] > 1) {
        saved += (node.end - node.begin) * (counts[id] - 1);
      }
    }
  }
  return saved;
}

double SamplingPlan::PrefixShareRatio() const {
  const size_t walk = WalkColumns();
  if (walk == 0) return 0.0;
  return static_cast<double>(SharedColumns()) / static_cast<double>(walk);
}

size_t SamplingPlan::MaxForkDepth() const {
  size_t depth = 0;
  for (const auto& tree : trees) depth = std::max(depth, tree.fork_depth);
  return depth;
}

size_t SamplingPlan::MaxFanout() const {
  size_t fanout = 1;
  for (const auto& tree : trees) fanout = std::max(fanout, tree.max_fanout);
  return fanout;
}

size_t AutoGroupWidth(size_t width_hint, KernelKind kernel,
                      size_t shard_size) {
  if (width_hint == 0) return 32;  // no hint: the PR 3 cap
  // Target stacked rows per GEMM: the scalar ikj loops peak early and
  // then just burn cache, while the blocked SIMD kernels keep scaling to
  // a few thousand stacked rows (bench_micro_gemm), and the int8 path —
  // half the weight traffic — to roughly twice that.
  size_t target_rows = 1024;
  if (kernel == KernelKind::kSimd) target_rows = 4096;
  if (kernel == KernelKind::kSimdInt8) target_rows = 8192;
  // Wider hidden layers fill the cache with fewer rows; narrow ones need
  // more rows to amortize the per-GEMM fixed cost.
  if (width_hint >= 512) target_rows /= 2;
  if (width_hint <= 64) target_rows *= 2;
  const size_t width = target_rows / std::max<size_t>(shard_size, 1);
  return std::min<size_t>(64, std::max<size_t>(4, width));
}

namespace {

// Per-query, per-model-position walk-step descriptors. Two queries take
// bit-identical column steps at position `pos` iff their descriptors
// match: both wildcard (mass 1, draw from the full conditional), or both
// constrained by a region with identical canonical bytes (RegionKey) —
// MaskProbsToRegion and FallbackCode are functions of that region and of
// walk state the queries share inside a common segment. Wildcard encodes
// as "" (a real region key is never empty), so string equality is the
// whole test.
std::vector<std::string> PositionDescriptors(const ConditionalModel* model,
                                             const QueryPlan& qp) {
  const size_t n = qp.wildcard.size();
  std::vector<std::string> desc(n);
  for (size_t pos = 0; pos < n; ++pos) {
    if (qp.wildcard[pos]) continue;
    AppendRegionKey(qp.query->region(model->TableColumnOf(pos)), &desc[pos]);
  }
  return desc;
}

// Shared trie-segment scan: starting at `col`, the longest run of columns
// every query in `members` steps through identically — no member finishes
// (last_col < cur) and all descriptors agree. Returns the break column.
size_t SegmentEnd(const std::vector<QueryPlan>& queries,
                  const std::vector<std::vector<std::string>>& desc,
                  const std::vector<size_t>& members, size_t col, size_t n) {
  size_t cur = col;
  while (cur < n) {
    bool brk = false;
    const std::string& lead = desc[members.front()][cur];
    for (size_t m : members) {
      if (queries[m].last_col < static_cast<int>(cur) ||
          desc[m][cur] != lead) {
        brk = true;
        break;
      }
    }
    if (brk) break;
    ++cur;
  }
  return cur;
}

// Splits `members` at the break column into (terminals, child partitions
// keyed by descriptor in first-occurrence order).
void SplitAtBreak(const std::vector<QueryPlan>& queries,
                  const std::vector<std::vector<std::string>>& desc,
                  const std::vector<size_t>& members, size_t brk, size_t n,
                  std::vector<size_t>* terminals,
                  std::vector<std::vector<size_t>>* parts) {
  terminals->clear();
  parts->clear();
  for (size_t m : members) {
    if (queries[m].last_col < static_cast<int>(brk)) {
      terminals->push_back(m);
      continue;
    }
    NARU_CHECK(brk < n);  // a survivor implies the break is a real column
    std::vector<std::vector<size_t>>& ps = *parts;
    bool placed = false;
    for (auto& part : ps) {
      if (desc[part.front()][brk] == desc[m][brk]) {
        part.push_back(m);
        placed = true;
        break;
      }
    }
    if (!placed) ps.push_back({m});
  }
}

class TreeCompiler {
 public:
  TreeCompiler(const ConditionalModel* model, SamplingPlan* plan,
               const SamplingPlanOptions& options)
      : plan_(plan),
        n_(model->num_columns()),
        cap_(std::max<size_t>(options.max_group_width, 1)) {
    desc_.reserve(plan->queries.size());
    for (const QueryPlan& qp : plan->queries) {
      desc_.push_back(PositionDescriptors(model, qp));
    }
  }

  /// Hierarchical mode: recursively cut the budget class into clusters of
  /// at most `cap_` queries (splitting at trie fork points, greedily
  /// re-packing small sibling clusters so stacked GEMMs stay wide), then
  /// build one trie per cluster.
  void EmitTreeClass(const std::vector<size_t>& indices) {
    for (const std::vector<size_t>& cluster : SplitCluster(indices, 0)) {
      EmitTrie(cluster);
    }
  }

  /// Flat mode: PR 3 groups expressed as depth-1 trees (root = the shared
  /// leading-wildcard prefix, one leaf per member).
  void EmitFlatClass(const std::vector<size_t>& indices) {
    for (const auto& [prefix_len, members] : FlatGroups(indices)) {
      PlanTree tree;
      tree.members = members;
      PlanTreeNode root;
      root.begin = 0;
      root.end = prefix_len;
      root.rep = members.front();
      if (members.size() == 1) {
        root.end = static_cast<size_t>(plan_->queries[members[0]].last_col) + 1;
        root.terminals = members;
        tree.nodes.push_back(std::move(root));
      } else {
        tree.nodes.push_back(root);
        for (size_t m : members) {
          PlanTreeNode leaf;
          leaf.begin = prefix_len;
          leaf.end = static_cast<size_t>(plan_->queries[m].last_col) + 1;
          leaf.rep = m;
          leaf.terminals = {m};
          tree.nodes[0].children.push_back(tree.nodes.size());
          tree.nodes.push_back(std::move(leaf));
        }
      }
      FinishTree(std::move(tree));
    }
  }

  /// The PR 3 savings-maximizing DP over leading-wildcard runs, width-cap
  /// splitting included: returns (prefix_len, members) groups with
  /// members ordered by last_col descending. Also the flat baseline the
  /// FlatSharedColumns() stat is computed from.
  std::vector<std::pair<size_t, std::vector<size_t>>> FlatGroups(
      const std::vector<size_t>& indices) const {
    const std::vector<QueryPlan>& queries = plan_->queries;
    const size_t mc = indices.size();
    // Sort by leading-run length descending (stable on batch order) so any
    // contiguous segment's shareable prefix is its LAST element's run.
    std::vector<size_t> order = indices;
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return queries[a].wildcard_run > queries[b].wildcard_run;
    });

    // Partition the sorted sequence into contiguous segments maximizing
    // the prefix-sharing savings Σ run(last) · (len - 1); on equal
    // savings, prefer fewer segments (wider stacked GEMMs). best[j] =
    // optimum for the first j queries.
    struct Best {
      size_t savings = 0;
      size_t segments = 0;
      size_t cut = 0;  // segment start for the partition ending at j
    };
    std::vector<Best> best(mc + 1);
    for (size_t j = 1; j <= mc; ++j) {
      best[j].savings = 0;
      best[j].segments = mc + 1;
      for (size_t i = 0; i < j; ++i) {  // segment [i, j)
        const size_t run = queries[order[j - 1]].wildcard_run;
        const size_t cand = best[i].savings + run * (j - 1 - i);
        const size_t segs = best[i].segments + 1;
        if (cand > best[j].savings ||
            (cand == best[j].savings && segs < best[j].segments)) {
          best[j].savings = cand;
          best[j].segments = segs;
          best[j].cut = i;
        }
      }
    }

    // Recover segments, then split any that exceed the width cap.
    std::vector<std::pair<size_t, size_t>> segments;  // [begin, end)
    for (size_t j = mc; j > 0; j = best[j].cut) {
      segments.emplace_back(best[j].cut, j);
    }
    std::reverse(segments.begin(), segments.end());

    std::vector<std::pair<size_t, std::vector<size_t>>> groups;
    for (const auto& [seg_begin, seg_end] : segments) {
      const size_t len = seg_end - seg_begin;
      const size_t pieces = (len + cap_ - 1) / cap_;
      // Even split: every piece keeps the segment's shared prefix.
      const size_t base = len / pieces;
      const size_t extra = len % pieces;
      size_t at = seg_begin;
      for (size_t p = 0; p < pieces; ++p) {
        const size_t take = base + (p < extra ? 1 : 0);
        std::vector<size_t> members(
            order.begin() + static_cast<ptrdiff_t>(at),
            order.begin() + static_cast<ptrdiff_t>(at + take));
        at += take;
        size_t prefix_len = queries[members.front()].wildcard_run;
        for (size_t m : members) {
          prefix_len = std::min(prefix_len, queries[m].wildcard_run);
        }
        // Tail blocks must be droppable by truncation once their queries
        // pass their last constrained position.
        std::stable_sort(members.begin(), members.end(),
                         [&](size_t a, size_t b) {
                           return queries[a].last_col > queries[b].last_col;
                         });
        groups.emplace_back(prefix_len, std::move(members));
      }
    }
    return groups;
  }

  /// Flat baseline savings on this class (for FlatSharedColumns()).
  size_t FlatSavings(const std::vector<size_t>& indices) const {
    size_t saved = 0;
    for (const auto& [prefix_len, members] : FlatGroups(indices)) {
      if (members.size() > 1) saved += prefix_len * (members.size() - 1);
    }
    return saved;
  }

 private:
  std::vector<std::vector<size_t>> SplitCluster(
      const std::vector<size_t>& members, size_t col) const {
    if (members.size() <= cap_) return {members};
    const size_t brk = SegmentEnd(plan_->queries, desc_, members, col, n_);
    std::vector<size_t> terminals;
    std::vector<std::vector<size_t>> parts;
    SplitAtBreak(plan_->queries, desc_, members, brk, n_, &terminals, &parts);
    // Units: cap-sized chunks of the terminals, then each sub-part cut
    // recursively. All units share the walk over [col, brk), so greedy
    // first-fit packing of consecutive units keeps GEMMs wide without
    // ever fusing what the trie would not.
    std::vector<std::vector<size_t>> units;
    for (size_t at = 0; at < terminals.size(); at += cap_) {
      const size_t take = std::min(cap_, terminals.size() - at);
      units.emplace_back(terminals.begin() + static_cast<ptrdiff_t>(at),
                         terminals.begin() + static_cast<ptrdiff_t>(at + take));
    }
    for (const std::vector<size_t>& part : parts) {
      std::vector<std::vector<size_t>> sub = SplitCluster(part, brk);
      for (auto& s : sub) units.push_back(std::move(s));
    }
    std::vector<std::vector<size_t>> bins;
    for (std::vector<size_t>& unit : units) {
      if (!bins.empty() && bins.back().size() + unit.size() <= cap_) {
        bins.back().insert(bins.back().end(), unit.begin(), unit.end());
      } else {
        bins.push_back(std::move(unit));
      }
    }
    return bins;
  }

  /// Builds the trie over `cluster` and appends the finished tree.
  void EmitTrie(const std::vector<size_t>& cluster) {
    PlanTree tree;
    tree.members = cluster;
    BuildNode(&tree, cluster, 0);
    FinishTree(std::move(tree));
  }

  size_t BuildNode(PlanTree* tree, const std::vector<size_t>& members,
                   size_t col) const {
    const size_t id = tree->nodes.size();
    tree->nodes.emplace_back();
    const size_t end = SegmentEnd(plan_->queries, desc_, members, col, n_);
    std::vector<size_t> terminals;
    std::vector<std::vector<size_t>> parts;
    SplitAtBreak(plan_->queries, desc_, members, end, n_, &terminals, &parts);
    // Fill through the index: recursion below reallocates `nodes`.
    tree->nodes[id].begin = col;
    tree->nodes[id].end = end;
    tree->nodes[id].rep = members.front();
    tree->nodes[id].terminals = std::move(terminals);
    for (const std::vector<size_t>& part : parts) {
      const size_t child = BuildNode(tree, part, end);
      tree->nodes[id].children.push_back(child);
    }
    return id;
  }

  /// Budget, deadline, and shape stats; appends to the plan.
  void FinishTree(PlanTree tree) {
    const std::vector<QueryPlan>& queries = plan_->queries;
    tree.num_samples = queries[tree.members.front()].num_samples;
    // Abandonable only past the LATEST member deadline: the shared walk
    // serves every member, so it may be given up only once all of them
    // have expired. kNoDeadline is time_point::max(), so one
    // deadline-free member disables abandonment via the max.
    tree.abandon_deadline = std::chrono::steady_clock::time_point::min();
    for (size_t m : tree.members) {
      tree.abandon_deadline =
          std::max(tree.abandon_deadline, queries[m].deadline);
    }
    // Fork depth / fanout by one reverse pass (children follow parents).
    std::vector<size_t> depth(tree.nodes.size(), 0);
    for (size_t id = tree.nodes.size(); id > 0; --id) {
      const PlanTreeNode& node = tree.nodes[id - 1];
      size_t below = 0;
      for (size_t child : node.children) {
        below = std::max(below, depth[child]);
      }
      const size_t branches =
          node.children.size() + (node.terminals.empty() ? 0 : 1);
      depth[id - 1] = below + (branches >= 2 ? 1 : 0);
      tree.max_fanout =
          std::max(tree.max_fanout, std::max<size_t>(node.children.size(), 1));
    }
    if (!tree.nodes.empty()) tree.fork_depth = depth[0];
    plan_->trees.push_back(std::move(tree));
  }

  SamplingPlan* plan_;
  const size_t n_;
  const size_t cap_;
  std::vector<std::vector<std::string>> desc_;
};

}  // namespace

SamplingPlan CompileSamplingPlan(const ConditionalModel* model,
                                 const std::vector<const Query*>& queries,
                                 const SamplingPlanOptions& options) {
  SamplingPlan plan;
  plan.mode = options.mode;
  plan.queries.reserve(queries.size());
  NARU_CHECK(options.budgets.empty() ||
             options.budgets.size() == queries.size());
  NARU_CHECK(options.deadlines.empty() ||
             options.deadlines.size() == queries.size());
  const size_t n = model->num_columns();
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const Query* q = queries[qi];
    QueryPlan qp;
    qp.query = q;
    qp.num_samples = options.budgets.empty() ? 0 : options.budgets[qi];
    if (!options.deadlines.empty()) qp.deadline = options.deadlines[qi];
    qp.wildcard.resize(n);
    for (size_t pos = 0; pos < n; ++pos) {
      qp.wildcard[pos] = model->PositionIsWildcard(*q, pos) ? 1 : 0;
      if (!qp.wildcard[pos]) qp.last_col = static_cast<int>(pos);
    }
    while (qp.wildcard_run < n && qp.wildcard[qp.wildcard_run]) {
      ++qp.wildcard_run;
    }
    NARU_CHECK(qp.last_col >= 0);  // plans carry sampled queries only
    plan.queries.push_back(std::move(qp));
  }
  const size_t m = plan.queries.size();
  if (m == 0) return plan;

  TreeCompiler compiler(model, &plan, options);

  // Partition by sample budget first — a tree's shared walk segments and
  // shard layout are functions of the budget, so cross-budget fusion is
  // impossible by construction. Classes run in ascending-budget order
  // (deterministic); with one class this is exactly the budget-free path.
  std::vector<size_t> budgets_seen;
  for (const auto& qp : plan.queries) budgets_seen.push_back(qp.num_samples);
  std::sort(budgets_seen.begin(), budgets_seen.end());
  budgets_seen.erase(std::unique(budgets_seen.begin(), budgets_seen.end()),
                     budgets_seen.end());
  std::vector<size_t> class_indices;
  for (const size_t budget : budgets_seen) {
    class_indices.clear();
    for (size_t qi = 0; qi < m; ++qi) {
      if (plan.queries[qi].num_samples == budget) class_indices.push_back(qi);
    }
    plan.flat_shared_cols += compiler.FlatSavings(class_indices);
    if (options.mode == PlanMode::kFlat) {
      compiler.EmitFlatClass(class_indices);
    } else {
      compiler.EmitTreeClass(class_indices);
    }
  }
  return plan;
}

}  // namespace naru
