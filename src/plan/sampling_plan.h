// Sampling plans: compiled batch execution layouts for progressive
// sampling.
//
// The sequential sampler (§5.1, Algorithm 1) walks every query of a batch
// independently, re-deriving per-column wildcard flags and early-exit
// points on every shard and re-running the model forward pass once per
// (query, column, shard). A SamplingPlan moves all of that to compile
// time, before any walk starts:
//
//   - per-query region-mask metadata is materialized once (wildcard flag
//     per model position, last constrained position, leading-wildcard run
//     length);
//   - queries are partitioned into PLAN GROUPS by shared leading-wildcard
//     prefix. The walk state over a leading run of unconstrained positions
//     is query-independent for a fixed (seed, shard) RNG stream — every
//     position contributes mass exactly 1 and draws from the full
//     conditional — so one shard walk over the group's common prefix is
//     computed once and forked into per-query suffix walks, exactly;
//   - within a group, the per-column model evaluations of all queries are
//     fused into single stacked forward passes (one GEMM sequence for the
//     whole group instead of one per query); see plan_executor.h.
//
// Grouping maximizes the number of prefix column-walks saved,
// Σ prefix_len · (group size - 1), by dynamic programming over queries
// sorted by leading-run length; ties prefer fewer, wider groups (wider
// stacked GEMMs). The partition only decides WHERE rows sit in stacked
// matrices and which columns are walked once instead of per query — never
// what is computed — so estimates are bit-identical to the sequential
// path for any group layout (the test oracle throughout src/plan).
#pragma once

#include <chrono>
#include <cstddef>
#include <vector>

#include "core/conditional_model.h"
#include "query/query.h"
#include "util/deadline.h"

namespace naru {

/// Compile-time walk metadata for one query of a plan (model-position
/// indexed; the compiler applies ConditionalModel::PositionIsWildcard so
/// permuted and factorized layouts resolve here, once, instead of per
/// shard).
struct QueryPlan {
  const Query* query = nullptr;
  /// Last constrained model position (the trailing-wildcard early exit).
  /// Plans are compiled for sampled queries only, so this is >= 0.
  int last_col = -1;
  /// Leading run of wildcard model positions (the shareable prefix).
  size_t wildcard_run = 0;
  /// Wildcard flag per model position 0..num_columns-1.
  std::vector<uint8_t> wildcard;
  /// Per-request sample-path budget (serve/request.h); 0 = the executor's
  /// default. Part of the VALUE contract: the compiler never groups
  /// queries with different budgets, because a group's members share one
  /// prefix walk and one shard layout — both functions of the budget.
  size_t num_samples = 0;
  /// Per-request soft deadline (steady_clock; kNoDeadline = none).
  /// Scheduling metadata only — it NEVER affects grouping, and a group's
  /// walk is abandoned mid-column only once EVERY member has expired
  /// (see PlanGroup::abandon_deadline), so a deadline can only replace an
  /// answer with a typed DEADLINE_EXCEEDED status, never change one.
  std::chrono::steady_clock::time_point deadline = kNoDeadline;
};

/// One group of queries sharing a leading-wildcard prefix walk.
struct PlanGroup {
  /// Shared prefix length: min wildcard_run over members (possibly 0 —
  /// such a group still fuses its members' forward passes).
  size_t prefix_len = 0;
  /// Indices into SamplingPlan::queries, ordered by last_col descending
  /// so that finished queries always occupy the TAIL blocks of the
  /// stacked walk and can be dropped by truncation.
  std::vector<size_t> members;
  /// The members' common sample budget (0 = executor default). Uniform
  /// across the group by construction.
  size_t num_samples = 0;
  /// Instant past which the group's walk may be abandoned between column
  /// steps: the LATEST member deadline — every member must have expired
  /// before a shared walk is given up, because one walk serves them all.
  /// kNoDeadline (any deadline-free member) disables abandonment.
  std::chrono::steady_clock::time_point abandon_deadline = kNoDeadline;
};

struct SamplingPlan {
  std::vector<QueryPlan> queries;
  std::vector<PlanGroup> groups;

  /// Per-shard column-walks the sequential path would run: Σ (last_col+1).
  size_t WalkColumns() const;
  /// Per-shard column-walks saved by prefix sharing:
  /// Σ_groups prefix_len · (members-1).
  size_t SharedPrefixColumns() const;
  /// SharedPrefixColumns / WalkColumns in [0, 1).
  double PrefixShareRatio() const;
};

struct SamplingPlanOptions {
  /// Upper bound on queries per group. Bounds stacked-walk memory
  /// (group_width · shard_size rows of model activations) and yields more
  /// (group, shard) tasks for the executor to spread across threads.
  /// Never affects estimates.
  size_t max_group_width = 32;
  /// Per-query sample-path budgets, parallel to the `queries` argument of
  /// CompileSamplingPlan (0 entries = executor default). Empty = every
  /// query uses the default. Queries are partitioned by budget BEFORE the
  /// savings-maximizing grouping runs, so a group only ever fuses queries
  /// with identical budgets — with a single budget class the grouping is
  /// exactly the budget-free one.
  std::vector<size_t> budgets;
  /// Per-query soft deadlines, parallel to `queries` (empty = none; see
  /// QueryPlan::deadline). Unlike budgets these never partition or
  /// reorder the grouping — they only set each group's abandon_deadline.
  std::vector<std::chrono::steady_clock::time_point> deadlines;
};

/// Compiles the batch `queries` (distinct, sampled-path queries against
/// `model`) into groups. Deterministic: depends only on the query batch
/// and options, never on threads or timing.
SamplingPlan CompileSamplingPlan(const ConditionalModel* model,
                                 const std::vector<const Query*>& queries,
                                 const SamplingPlanOptions& options = {});

}  // namespace naru
