// Sampling plans: compiled batch execution layouts for progressive
// sampling.
//
// The sequential sampler (§5.1, Algorithm 1) walks every query of a batch
// independently, re-deriving per-column wildcard flags and early-exit
// points on every shard and re-running the model forward pass once per
// (query, column, shard). A SamplingPlan moves all of that to compile
// time, before any walk starts:
//
//   - per-query region-mask metadata is materialized once (wildcard flag
//     per model position, last constrained position, leading-wildcard run
//     length);
//   - queries are compiled into PLAN TREES: prefix tries in which every
//     node is a maximal run of columns over which all queries below the
//     node take the SAME walk step, and children fork at the first column
//     where they diverge. A shared segment is walked once per shard and
//     forked — copying samples, weights, liveness, and the RNG stream —
//     into each child, so a batch sharing columns 0-3 and then splitting
//     into two sub-groups sharing 4-6 walks columns 0-3 exactly once;
//   - sharing is not limited to wildcards: two queries whose leading
//     columns carry IDENTICAL constrained regions (the same point / range
//     / IN-list predicate, compared by canonical RegionKey bytes) take
//     bit-identical column steps there — same masked mass folded into the
//     weights, same truncated draw — so the walk AND its likelihood terms
//     are shared;
//   - within a tree, the per-column model evaluations of every live
//     branch are fused into single stacked forward passes (one GEMM
//     sequence for the whole frontier instead of one per query); see
//     plan_executor.h.
//
// The tree layout only decides WHERE rows sit in stacked matrices and
// which columns are walked once instead of per query — never what is
// computed — so estimates are bit-identical to the sequential path for
// any tree shape (the test oracle throughout src/plan).
//
// PlanMode::kFlat preserves the PR 3 single-level grouping (savings-
// maximizing DP over leading-wildcard runs only, one fork per group) as a
// degenerate tree shape, for ablations and as the conservative fallback.
#pragma once

#include <chrono>
#include <cstddef>
#include <vector>

#include "core/conditional_model.h"
#include "query/query.h"
#include "tensor/kernel.h"
#include "util/deadline.h"

namespace naru {

/// Compile-time walk metadata for one query of a plan (model-position
/// indexed; the compiler applies ConditionalModel::PositionIsWildcard so
/// permuted and factorized layouts resolve here, once, instead of per
/// shard).
struct QueryPlan {
  const Query* query = nullptr;
  /// Last constrained model position (the trailing-wildcard early exit).
  /// Plans are compiled for sampled queries only, so this is >= 0.
  int last_col = -1;
  /// Leading run of wildcard model positions (the flat-mode prefix).
  size_t wildcard_run = 0;
  /// Wildcard flag per model position 0..num_columns-1.
  std::vector<uint8_t> wildcard;
  /// Per-request sample-path budget (serve/request.h); 0 = the executor's
  /// default. Part of the VALUE contract: the compiler never fuses
  /// queries with different budgets, because a tree's members share walk
  /// segments and one shard layout — both functions of the budget.
  size_t num_samples = 0;
  /// Per-request soft deadline (steady_clock; kNoDeadline = none).
  /// Scheduling metadata only — it NEVER affects tree shape, and a tree's
  /// walk is abandoned mid-column only once EVERY member has expired
  /// (see PlanTree::abandon_deadline), so a deadline can only replace an
  /// answer with a typed DEADLINE_EXCEEDED status, never change one.
  std::chrono::steady_clock::time_point deadline = kNoDeadline;
};

/// One node of a plan tree: a chain-compressed trie node, i.e. a maximal
/// column run [begin, end) over which every query below the node takes an
/// identical walk step (all wildcard, or all carrying the same constrained
/// region by canonical key). At column `end` the node's terminals finish
/// (their last constrained position is end-1) and each child forks off
/// with a private copy of the walk state.
struct PlanTreeNode {
  size_t begin = 0;  ///< first column of the shared segment
  size_t end = 0;    ///< one past the last column (begin == end: pure fork)
  /// Representative member (index into SamplingPlan::queries): the
  /// executor reads the segment's regions and wildcard flags through this
  /// query — valid for every member below the node by construction.
  size_t rep = 0;
  /// Queries (indices into SamplingPlan::queries) whose walk finishes in
  /// this segment: last_col == end - 1. Reduced when the node retires.
  std::vector<size_t> terminals;
  /// Child node ids (into PlanTree::nodes) forking at column `end`, in
  /// deterministic first-member order. Children always appear after their
  /// parent in PlanTree::nodes.
  std::vector<size_t> children;
};

/// One prefix trie of queries sharing walk structure; the executor's unit
/// of GEMM fusion (a (tree, shard) pair is one task).
struct PlanTree {
  /// nodes[0] is the root (begin == 0).
  std::vector<PlanTreeNode> nodes;
  /// Every member query of the tree (union of node terminals).
  std::vector<size_t> members;
  /// The members' common sample budget (0 = executor default). Uniform
  /// across the tree by construction.
  size_t num_samples = 0;
  /// Instant past which the tree's walk may be abandoned between column
  /// steps: the LATEST member deadline — every member must have expired
  /// before a shared walk is given up, because one walk serves them all.
  /// kNoDeadline (any deadline-free member) disables abandonment.
  std::chrono::steady_clock::time_point abandon_deadline = kNoDeadline;
  /// Fork depth: maximum number of fork points (nodes with >= 2 children
  /// or any terminal alongside survivors) on a root-to-leaf path. 0 for a
  /// single-query tree.
  size_t fork_depth = 0;
  /// Widest single fork (max children count over nodes; 1 if none).
  size_t max_fanout = 1;
};

/// How CompileSamplingPlan shapes its trees.
enum class PlanMode {
  /// Hierarchical prefix-forking trie: multi-depth sharing over wildcard
  /// AND identically-constrained leading columns. The default.
  kTree,
  /// PR 3 flat grouping: one shared leading-wildcard prefix per group,
  /// one fork, members stacked until they finish. Kept for the
  /// legacy/flat/tree ablation in bench_serving_throughput.
  kFlat,
};

struct SamplingPlan {
  std::vector<QueryPlan> queries;
  std::vector<PlanTree> trees;
  PlanMode mode = PlanMode::kTree;

  /// Per-shard column-walks the sequential path would run: Σ (last_col+1).
  size_t WalkColumns() const;
  /// Per-shard column-walks saved by segment sharing:
  /// Σ_nodes (end - begin) · (queries under node - 1). In kFlat mode this
  /// reduces to the PR 3 quantity Σ_groups prefix_len · (members - 1).
  size_t SharedColumns() const;
  /// Column-walks the FLAT single-level leading-wildcard grouping would
  /// have saved on the same batch (computed by the compiler in both
  /// modes); SharedColumns() - FlatSharedColumns() is the headroom the
  /// hierarchical / constrained sharing added.
  size_t FlatSharedColumns() const { return flat_shared_cols; }
  /// SharedColumns / WalkColumns in [0, 1).
  double PrefixShareRatio() const;
  /// Max PlanTree::fork_depth over trees (0 when empty).
  size_t MaxForkDepth() const;
  /// Max PlanTree::max_fanout over trees (1 when empty).
  size_t MaxFanout() const;

  size_t flat_shared_cols = 0;  ///< see FlatSharedColumns()
};

struct SamplingPlanOptions {
  /// Tree shape: hierarchical trie (default) or flat PR 3 grouping.
  PlanMode mode = PlanMode::kTree;
  /// Fork fan-out cap: upper bound on queries fused into one tree. Bounds
  /// stacked-walk memory (width · shard_size rows of model activations)
  /// and yields more (tree, shard) tasks for the executor to spread
  /// across threads. Never affects estimates. 32 matches the PR 3 cap;
  /// serving derives it from AutoGroupWidth below instead.
  size_t max_group_width = 32;
  /// Per-query sample-path budgets, parallel to the `queries` argument of
  /// CompileSamplingPlan (0 entries = executor default). Empty = every
  /// query uses the default. Queries are partitioned by budget BEFORE any
  /// tree is built, so a tree only ever fuses queries with identical
  /// budgets — with a single budget class the shape is exactly the
  /// budget-free one.
  std::vector<size_t> budgets;
  /// Per-query soft deadlines, parallel to `queries` (empty = none; see
  /// QueryPlan::deadline). Unlike budgets these never partition or
  /// reorder the trees — they only set each tree's abandon_deadline.
  std::vector<std::chrono::steady_clock::time_point> deadlines;
};

/// Width auto-tuning: picks a fork fan-out cap so stacked GEMM shapes land
/// in the sweet spot bench_micro_gemm measured — SIMD kernels amortize
/// over far more stacked rows than the scalar loops before going
/// memory-bound, and wider hidden layers saturate cache with fewer rows.
/// `width_hint` is the model's dominant GEMM inner width
/// (ConditionalModel::StackedWidthHint); 0 falls back to the PR 3 cap of
/// 32. Deterministic: a pure function of its arguments.
size_t AutoGroupWidth(size_t width_hint, KernelKind kernel,
                      size_t shard_size);

/// Compiles the batch `queries` (distinct, sampled-path queries against
/// `model`) into plan trees. Deterministic: depends only on the query
/// batch and options, never on threads or timing.
SamplingPlan CompileSamplingPlan(const ConditionalModel* model,
                                 const std::vector<const Query*>& queries,
                                 const SamplingPlanOptions& options = {});

}  // namespace naru
