#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/string_util.h"

namespace naru {

namespace {

Status Errno(const char* what) {
  return Status::IOError(StrFormat("%s: %s", what, std::strerror(errno)));
}

}  // namespace

Status ParseHostPort(std::string_view spec, std::string* host,
                     uint16_t* port) {
  if (spec.empty()) {
    return Status::InvalidArgument("empty host:port");
  }
  std::string_view host_part = "127.0.0.1";
  std::string_view port_part = spec;
  const size_t colon = spec.rfind(':');
  if (colon != std::string_view::npos) {
    if (colon > 0) host_part = spec.substr(0, colon);
    port_part = spec.substr(colon + 1);
  }
  if (port_part.empty()) {
    return Status::InvalidArgument(
        StrFormat("missing port in '%.*s'", static_cast<int>(spec.size()),
                  spec.data()));
  }
  long value = 0;
  for (char c : port_part) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument(
          StrFormat("bad port in '%.*s'", static_cast<int>(spec.size()),
                    spec.data()));
    }
    value = value * 10 + (c - '0');
    if (value > 65535) {
      return Status::InvalidArgument(
          StrFormat("port out of range in '%.*s'",
                    static_cast<int>(spec.size()), spec.data()));
    }
  }
  if (value == 0) {
    return Status::InvalidArgument("port must be nonzero");
  }
  *host = std::string(host_part);
  *port = static_cast<uint16_t>(value);
  return Status::OK();
}

NetClient::~NetClient() { Close(); }

Status NetClient::Connect(const std::string& host, uint16_t port) {
  Close();
  fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return Errno("socket");
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    return Status::InvalidArgument(
        StrFormat("cannot parse host '%s' (IPv4 literal expected)",
                  host.c_str()));
  }
  if (connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status st = Errno("connect");
    Close();
    return st;
  }
  const int one = 1;
  setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Status::OK();
}

Status NetClient::SetRecvTimeoutMs(int timeout_ms) {
  if (fd_ < 0) return Status::IOError("not connected");
  timeval tv = {};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  if (setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0) {
    return Errno("setsockopt(SO_RCVTIMEO)");
  }
  return Status::OK();
}

void NetClient::FinishWrites() {
  if (fd_ >= 0) shutdown(fd_, SHUT_WR);
}

void NetClient::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
  inbuf_.clear();
}

Status NetClient::SendRaw(std::string_view bytes) {
  if (fd_ < 0) return Status::IOError("not connected");
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status NetClient::SendEstimate(const WireEstimateRequest& request) {
  std::string bytes;
  EncodeEstimateRequest(request, &bytes);
  return SendRaw(bytes);
}

Status NetClient::SendControl(const WireControlRequest& request) {
  std::string bytes;
  EncodeControlRequest(request, &bytes);
  return SendRaw(bytes);
}

Status NetClient::ReadFrame(Frame* out) {
  if (fd_ < 0) return Status::IOError("not connected");
  char buf[64 * 1024];
  for (;;) {
    Status prefix_error;
    const size_t size =
        FrameSizeBytes(inbuf_, kMaxFramePayloadBytes, &prefix_error);
    if (!prefix_error.ok()) return prefix_error;
    if (size != 0) {
      const Status st = DecodeFrame(
          std::string_view(inbuf_).substr(kFrameHeaderBytes,
                                          size - kFrameHeaderBytes),
          out);
      inbuf_.erase(0, size);
      return st;
    }
    const ssize_t n = recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      inbuf_.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) {
      return Status::IOError("connection closed by server");
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::IOError("timed out waiting for a frame");
    }
    return Errno("recv");
  }
}

namespace {

/// Shared shape of the two Call* wrappers: read until the wanted frame
/// type echoes `request_id`, translating kError frames into a Status.
Status AwaitFrame(NetClient* client, FrameType want, uint64_t request_id,
                  Frame* out) {
  for (;;) {
    Status st = client->ReadFrame(out);
    if (!st.ok()) return st;
    if (out->type == FrameType::kError) {
      return Status(out->error.status_code,
                    StrFormat("server error%s: %s",
                              out->error.fatal ? " (fatal)" : "",
                              out->error.message.c_str()));
    }
    if (out->type != want) {
      return Status::Internal(StrFormat(
          "unexpected frame type %u while awaiting %u",
          static_cast<unsigned>(out->type), static_cast<unsigned>(want)));
    }
    const uint64_t got = want == FrameType::kEstimateResponse
                             ? out->response.request_id
                             : out->control_response.request_id;
    if (got == request_id) return Status::OK();
    // A response for a different id with one request outstanding means
    // the caller mixed Call* with unmatched pipelined sends.
    return Status::Internal(
        StrFormat("response for request %llu while awaiting %llu",
                  static_cast<unsigned long long>(got),
                  static_cast<unsigned long long>(request_id)));
  }
}

}  // namespace

Status NetClient::CallEstimate(const WireEstimateRequest& request,
                               WireEstimateResponse* response) {
  Status st = SendEstimate(request);
  if (!st.ok()) return st;
  Frame frame;
  st = AwaitFrame(this, FrameType::kEstimateResponse, request.request_id,
                  &frame);
  if (!st.ok()) return st;
  *response = std::move(frame.response);
  return Status::OK();
}

Status NetClient::CallControl(const WireControlRequest& request,
                              WireControlResponse* response) {
  Status st = SendControl(request);
  if (!st.ok()) return st;
  Frame frame;
  st = AwaitFrame(this, FrameType::kControlResponse, request.request_id,
                  &frame);
  if (!st.ok()) return st;
  *response = std::move(frame.control_response);
  return Status::OK();
}

}  // namespace naru
