// Wire protocol for the network serving front-end (src/net).
//
// Framing: every message is a length-prefixed frame
//
//   +----------------+---------+-------+----------------------+
//   | u32 payload_len| u8 ver  | u8 ty | type-specific body   |
//   +----------------+---------+-------+----------------------+
//    4 bytes, LE      kProtocolVersion  (payload_len counts
//                                        everything after the
//                                        length field)
//
// All integers are little-endian; doubles cross the wire as their IEEE-754
// bit pattern in a u64, so encode/decode round-trips are BIT-exact (the
// contract tests/test_net.cc asserts): an estimate computed server-side is
// the same double the client prints, NaN payloads included. Strings are
// u32 length + raw bytes (no terminator, any bytes allowed).
//
// The payload serializes the typed serving API (serve/request.h)
// losslessly. Two impedance mismatches are resolved here:
//   - EstimateOptions::deadline is an ABSOLUTE steady_clock instant that
//     cannot cross machines; the wire carries the RELATIVE deadline in
//     milliseconds (< 0 = none) and the SERVER pins it to its own clock
//     when it decodes the request — identical semantics to the in-process
//     `~<ms>` trace token (serve/trace_format.h).
//   - A Query is reconstructed from its per-column regions; the canonical
//     region encoding here (kind + domain + payload) is a superset of
//     serve/query_key.h's cache key (which omits domains because the
//     engine already knows the model).
//
// Error handling: decoding NEVER dies on malformed input. A frame whose
// LENGTH PREFIX is unusable (payload larger than `max_payload`, or too
// short to carry version+type) poisons the stream — the reader cannot
// resynchronize, so the server replies with a typed ERROR frame and closes
// the connection. Every other malformation (bad version, unknown type,
// truncated or trailing body bytes, out-of-range enum, garbage tenant) is
// confined to its frame: the server replies with a typed error and keeps
// serving the connection's next frame.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "query/query.h"
#include "query/value_set.h"
#include "serve/request.h"
#include "util/status.h"

namespace naru {

/// Version byte of every frame this build emits. A decoder receiving a
/// different version replies with a typed error (it cannot know the body
/// layout) but the FRAME boundary is still trusted — the length prefix is
/// version-invariant by design, so the stream survives.
inline constexpr uint8_t kProtocolVersion = 1;

/// Hard ceiling a reader enforces on the length prefix before trusting it.
/// Generous for real queries (a frame is a few hundred bytes unless an
/// IN-list is huge) while keeping a corrupt / hostile prefix from turning
/// into a multi-gigabyte allocation.
inline constexpr size_t kMaxFramePayloadBytes = 16u << 20;

/// Bytes of the length prefix itself.
inline constexpr size_t kFrameHeaderBytes = 4;

/// Frame discriminator (the byte after the version).
enum class FrameType : uint8_t {
  kEstimateRequest = 1,   ///< client -> server: one typed estimate request
  kEstimateResponse = 2,  ///< server -> client: its typed result
  kControlRequest = 3,    ///< client -> server: STATS / LIST verb
  kControlResponse = 4,   ///< server -> client: rendered control output
  /// server -> client: a frame could not be decoded (or the stream is
  /// poisoned). Carries the Status and the request id when one was
  /// recovered before the malformation (0 otherwise).
  kError = 5,
};

/// Control verbs (kControlRequest body).
enum class ControlVerb : uint8_t {
  kStats = 1,  ///< per-tenant EngineStats rendering (all tenants when the
               ///< request's tenant field is empty)
  kList = 2,   ///< one line per registered tenant: name, columns, rows
};

/// One estimate request as it crosses the wire. `request_id` is assigned
/// by the client and echoed verbatim in the response so requests can be
/// pipelined — the server resolves futures in completion order, not
/// submission order.
struct WireEstimateRequest {
  uint64_t request_id = 0;
  std::string tenant;
  /// Per-column allowed regions (table order), reconstructed into a Query
  /// server-side. Domains ride along so the server can validate them
  /// against the tenant's schema before touching the model.
  std::vector<ValueSet> regions;
  /// EstimateOptions fields, wire-safe forms (see header comment).
  uint64_t num_samples = 0;
  double deadline_ms = -1.0;  ///< relative ms; < 0 = no deadline
  RequestPriority priority = RequestPriority::kNormal;
  CachePolicy cache_policy = CachePolicy::kReadWrite;
};

/// One estimate result as it crosses the wire: every field of
/// EstimateResult (serve/request.h), bit-exactly.
struct WireEstimateResponse {
  uint64_t request_id = 0;
  StatusCode status_code = StatusCode::kOk;
  std::string status_message;
  double estimate = 0.0;
  double std_error = 0.0;
  ResultProvenance provenance = ResultProvenance::kUnknown;
  uint64_t samples_used = 0;
  double queue_ms = 0.0;
  double compute_ms = 0.0;
  double retry_after_ms = 0.0;
};

struct WireControlRequest {
  uint64_t request_id = 0;
  ControlVerb verb = ControlVerb::kStats;
  /// STATS: tenant to report on (empty = every tenant). Ignored by LIST.
  std::string tenant;
};

struct WireControlResponse {
  uint64_t request_id = 0;
  StatusCode status_code = StatusCode::kOk;
  std::string status_message;
  std::string text;  ///< rendered stats / tenant list
};

/// Typed decode-failure reply. `fatal` mirrors what the server did next:
/// true when the stream was poisoned (unusable length prefix) and the
/// connection is being closed, false when only this frame was rejected.
struct WireError {
  uint64_t request_id = 0;  ///< 0 when the id could not be recovered
  StatusCode status_code = StatusCode::kInvalidArgument;
  std::string message;
  bool fatal = false;
};

/// A decoded frame: `type` selects which member is meaningful.
struct Frame {
  FrameType type = FrameType::kError;
  WireEstimateRequest request;
  WireEstimateResponse response;
  WireControlRequest control;
  WireControlResponse control_response;
  WireError error;
};

// ---- Encoding (always succeeds; output is the full frame incl. prefix) --

void EncodeEstimateRequest(const WireEstimateRequest& msg, std::string* out);
void EncodeEstimateResponse(const WireEstimateResponse& msg,
                            std::string* out);
void EncodeControlRequest(const WireControlRequest& msg, std::string* out);
void EncodeControlResponse(const WireControlResponse& msg, std::string* out);
void EncodeError(const WireError& msg, std::string* out);

// ---- Decoding -----------------------------------------------------------

/// Inspects the front of a receive buffer. Returns the total byte size
/// (prefix + payload) of the first frame once it is fully buffered, or 0
/// when more bytes are needed. An unusable length prefix — payload larger
/// than `max_payload` or too small for version+type — returns 0 and sets
/// *error: the stream cannot be resynchronized (close after replying).
size_t FrameSizeBytes(std::string_view buf, size_t max_payload,
                      Status* error);

/// Decodes one frame payload (the bytes AFTER the length prefix; pass
/// exactly the payload, e.g. buf.substr(4, size - 4)). On any
/// malformation returns InvalidArgument with a reason and leaves *out
/// unspecified; the caller's stream position is still valid (the frame
/// boundary came from FrameSizeBytes).
Status DecodeFrame(std::string_view payload, Frame* out);

// ---- Conversions to/from the typed serving API --------------------------

/// Builds the server-side EstimateRequest: reconstructs the Query from the
/// wire regions and pins the relative deadline to `now` (the decode
/// instant), matching the in-process `~<ms>` semantics.
EstimateRequest ToEstimateRequest(const WireEstimateRequest& wire,
                                  std::chrono::steady_clock::time_point now);

/// Flattens a served EstimateResult into its wire form, echoing `id`.
WireEstimateResponse ToWireResponse(uint64_t id, const EstimateResult& res);

/// Reconstructs the client-side EstimateResult (estimate, Status,
/// std_error, provenance, samples, latencies, retry hint — bit-exact).
EstimateResult FromWireResponse(const WireEstimateResponse& wire);

}  // namespace naru
