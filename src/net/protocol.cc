#include "net/protocol.h"

#include <cstring>

#include "util/string_util.h"

namespace naru {

namespace {

// ---- Little-endian primitives ------------------------------------------
// Byte-at-a-time shifts instead of memcpy: the wire format is defined as
// little-endian, not as "whatever the host does".

void PutU8(uint8_t v, std::string* out) {
  out->push_back(static_cast<char>(v));
}

void PutU32(uint32_t v, std::string* out) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(uint64_t v, std::string* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutI64(int64_t v, std::string* out) {
  PutU64(static_cast<uint64_t>(v), out);
}

void PutI32(int32_t v, std::string* out) {
  PutU32(static_cast<uint32_t>(v), out);
}

void PutF64(double v, std::string* out) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));  // IEEE-754 bit pattern, LE on wire
  PutU64(bits, out);
}

void PutString(const std::string& s, std::string* out) {
  PutU32(static_cast<uint32_t>(s.size()), out);
  out->append(s);
}

/// Sequential reader over a frame payload. Every Get* returns false once
/// the payload is exhausted; decoders turn that into one InvalidArgument
/// instead of checking lengths at every site.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  bool GetU8(uint8_t* v) {
    if (pos_ + 1 > data_.size()) return false;
    *v = static_cast<uint8_t>(data_[pos_++]);
    return true;
  }
  bool GetU32(uint32_t* v) {
    if (pos_ + 4 > data_.size()) return false;
    uint32_t r = 0;
    for (int i = 0; i < 4; ++i) {
      r |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    *v = r;
    return true;
  }
  bool GetU64(uint64_t* v) {
    if (pos_ + 8 > data_.size()) return false;
    uint64_t r = 0;
    for (int i = 0; i < 8; ++i) {
      r |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    *v = r;
    return true;
  }
  bool GetI64(int64_t* v) {
    uint64_t u;
    if (!GetU64(&u)) return false;
    *v = static_cast<int64_t>(u);
    return true;
  }
  bool GetI32(int32_t* v) {
    uint32_t u;
    if (!GetU32(&u)) return false;
    *v = static_cast<int32_t>(u);
    return true;
  }
  bool GetF64(double* v) {
    uint64_t bits;
    if (!GetU64(&bits)) return false;
    std::memcpy(v, &bits, sizeof(*v));
    return true;
  }
  bool GetString(std::string* s) {
    uint32_t len;
    if (!GetU32(&len)) return false;
    if (pos_ + len > data_.size()) return false;
    s->assign(data_.substr(pos_, len));
    pos_ += len;
    return true;
  }

  /// Every payload byte consumed? Trailing garbage is a malformation —
  /// it would silently desynchronize a decoder trusting field order.
  bool Exhausted() const { return pos_ == data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

// ---- Region / query codec ----------------------------------------------

void PutRegions(const std::vector<ValueSet>& regions, std::string* out) {
  PutU32(static_cast<uint32_t>(regions.size()), out);
  for (const ValueSet& region : regions) {
    PutU8(static_cast<uint8_t>(region.kind()), out);
    PutU64(region.domain(), out);
    switch (region.kind()) {
      case ValueSet::Kind::kAll:
        break;
      case ValueSet::Kind::kInterval:
        PutI64(region.lo(), out);
        PutI64(region.hi(), out);
        break;
      case ValueSet::Kind::kSet:
        PutU32(static_cast<uint32_t>(region.codes().size()), out);
        for (int32_t c : region.codes()) PutI32(c, out);
        break;
    }
  }
}

bool GetRegions(Reader* in, std::vector<ValueSet>* regions) {
  uint32_t count;
  if (!in->GetU32(&count)) return false;
  // A column count the remaining bytes cannot possibly carry (>= 9 bytes
  // per region) is rejected before reserving anything.
  if (count > in->remaining() / 9 + 1) return false;
  regions->clear();
  regions->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint8_t kind;
    uint64_t domain;
    if (!in->GetU8(&kind) || !in->GetU64(&domain)) return false;
    switch (static_cast<ValueSet::Kind>(kind)) {
      case ValueSet::Kind::kAll:
        regions->push_back(ValueSet::All(domain));
        break;
      case ValueSet::Kind::kInterval: {
        int64_t lo, hi;
        if (!in->GetI64(&lo) || !in->GetI64(&hi)) return false;
        regions->push_back(ValueSet::Interval(domain, lo, hi));
        break;
      }
      case ValueSet::Kind::kSet: {
        uint32_t n;
        if (!in->GetU32(&n)) return false;
        if (static_cast<size_t>(n) * 4 > in->remaining()) return false;
        std::vector<int32_t> codes(n);
        for (uint32_t k = 0; k < n; ++k) {
          if (!in->GetI32(&codes[k])) return false;
        }
        regions->push_back(ValueSet::Set(domain, std::move(codes)));
        break;
      }
      default:
        return false;  // unknown region kind
    }
  }
  return true;
}

// ---- Frame assembly -----------------------------------------------------

/// Starts a frame: length placeholder + version + type. FinishFrame
/// backpatches the length.
size_t BeginFrame(FrameType type, std::string* out) {
  const size_t prefix_at = out->size();
  PutU32(0, out);  // patched by FinishFrame
  PutU8(kProtocolVersion, out);
  PutU8(static_cast<uint8_t>(type), out);
  return prefix_at;
}

void FinishFrame(size_t prefix_at, std::string* out) {
  const uint32_t payload =
      static_cast<uint32_t>(out->size() - prefix_at - kFrameHeaderBytes);
  for (int i = 0; i < 4; ++i) {
    (*out)[prefix_at + i] = static_cast<char>((payload >> (8 * i)) & 0xff);
  }
}

Status Malformed(const char* what) {
  return Status::InvalidArgument(StrFormat("malformed frame: %s", what));
}

}  // namespace

void EncodeEstimateRequest(const WireEstimateRequest& msg, std::string* out) {
  const size_t at = BeginFrame(FrameType::kEstimateRequest, out);
  PutU64(msg.request_id, out);
  PutString(msg.tenant, out);
  PutRegions(msg.regions, out);
  PutU64(msg.num_samples, out);
  PutF64(msg.deadline_ms, out);
  PutU8(static_cast<uint8_t>(msg.priority), out);
  PutU8(static_cast<uint8_t>(msg.cache_policy), out);
  FinishFrame(at, out);
}

void EncodeEstimateResponse(const WireEstimateResponse& msg,
                            std::string* out) {
  const size_t at = BeginFrame(FrameType::kEstimateResponse, out);
  PutU64(msg.request_id, out);
  PutU8(static_cast<uint8_t>(msg.status_code), out);
  PutString(msg.status_message, out);
  PutF64(msg.estimate, out);
  PutF64(msg.std_error, out);
  PutU8(static_cast<uint8_t>(msg.provenance), out);
  PutU64(msg.samples_used, out);
  PutF64(msg.queue_ms, out);
  PutF64(msg.compute_ms, out);
  PutF64(msg.retry_after_ms, out);
  FinishFrame(at, out);
}

void EncodeControlRequest(const WireControlRequest& msg, std::string* out) {
  const size_t at = BeginFrame(FrameType::kControlRequest, out);
  PutU64(msg.request_id, out);
  PutU8(static_cast<uint8_t>(msg.verb), out);
  PutString(msg.tenant, out);
  FinishFrame(at, out);
}

void EncodeControlResponse(const WireControlResponse& msg, std::string* out) {
  const size_t at = BeginFrame(FrameType::kControlResponse, out);
  PutU64(msg.request_id, out);
  PutU8(static_cast<uint8_t>(msg.status_code), out);
  PutString(msg.status_message, out);
  PutString(msg.text, out);
  FinishFrame(at, out);
}

void EncodeError(const WireError& msg, std::string* out) {
  const size_t at = BeginFrame(FrameType::kError, out);
  PutU64(msg.request_id, out);
  PutU8(static_cast<uint8_t>(msg.status_code), out);
  PutString(msg.message, out);
  PutU8(msg.fatal ? 1 : 0, out);
  FinishFrame(at, out);
}

size_t FrameSizeBytes(std::string_view buf, size_t max_payload,
                      Status* error) {
  *error = Status::OK();
  if (buf.size() < kFrameHeaderBytes) return 0;
  uint32_t payload = 0;
  for (int i = 0; i < 4; ++i) {
    payload |= static_cast<uint32_t>(static_cast<uint8_t>(buf[i])) << (8 * i);
  }
  if (payload > max_payload) {
    *error = Status::InvalidArgument(
        StrFormat("frame payload of %u bytes exceeds the %zu-byte limit; "
                  "stream cannot be resynchronized",
                  payload, max_payload));
    return 0;
  }
  if (payload < 2) {  // version + type at minimum
    *error = Status::InvalidArgument(StrFormat(
        "frame payload of %u bytes cannot carry a version and type", payload));
    return 0;
  }
  if (buf.size() < kFrameHeaderBytes + payload) return 0;  // need more
  return kFrameHeaderBytes + payload;
}

Status DecodeFrame(std::string_view payload, Frame* out) {
  Reader in(payload);
  uint8_t version, type;
  if (!in.GetU8(&version) || !in.GetU8(&type)) {
    return Malformed("payload shorter than version + type");
  }
  if (version != kProtocolVersion) {
    return Status::InvalidArgument(
        StrFormat("unsupported protocol version %u (this build speaks %u)",
                  version, kProtocolVersion));
  }
  switch (static_cast<FrameType>(type)) {
    case FrameType::kEstimateRequest: {
      out->type = FrameType::kEstimateRequest;
      WireEstimateRequest* msg = &out->request;
      uint8_t priority, policy;
      if (!in.GetU64(&msg->request_id) || !in.GetString(&msg->tenant) ||
          !GetRegions(&in, &msg->regions) || !in.GetU64(&msg->num_samples) ||
          !in.GetF64(&msg->deadline_ms) || !in.GetU8(&priority) ||
          !in.GetU8(&policy)) {
        return Malformed("truncated estimate-request body");
      }
      if (priority > static_cast<uint8_t>(RequestPriority::kHigh)) {
        return Malformed("priority out of range");
      }
      if (policy > static_cast<uint8_t>(CachePolicy::kBypass)) {
        return Malformed("cache policy out of range");
      }
      msg->priority = static_cast<RequestPriority>(priority);
      msg->cache_policy = static_cast<CachePolicy>(policy);
      break;
    }
    case FrameType::kEstimateResponse: {
      out->type = FrameType::kEstimateResponse;
      WireEstimateResponse* msg = &out->response;
      uint8_t code, provenance;
      if (!in.GetU64(&msg->request_id) || !in.GetU8(&code) ||
          !in.GetString(&msg->status_message) || !in.GetF64(&msg->estimate) ||
          !in.GetF64(&msg->std_error) || !in.GetU8(&provenance) ||
          !in.GetU64(&msg->samples_used) || !in.GetF64(&msg->queue_ms) ||
          !in.GetF64(&msg->compute_ms) || !in.GetF64(&msg->retry_after_ms)) {
        return Malformed("truncated estimate-response body");
      }
      if (code > static_cast<uint8_t>(StatusCode::kResourceExhausted)) {
        return Malformed("status code out of range");
      }
      if (provenance > static_cast<uint8_t>(ResultProvenance::kShed)) {
        return Malformed("provenance out of range");
      }
      msg->status_code = static_cast<StatusCode>(code);
      msg->provenance = static_cast<ResultProvenance>(provenance);
      break;
    }
    case FrameType::kControlRequest: {
      out->type = FrameType::kControlRequest;
      WireControlRequest* msg = &out->control;
      uint8_t verb;
      if (!in.GetU64(&msg->request_id) || !in.GetU8(&verb) ||
          !in.GetString(&msg->tenant)) {
        return Malformed("truncated control-request body");
      }
      if (verb != static_cast<uint8_t>(ControlVerb::kStats) &&
          verb != static_cast<uint8_t>(ControlVerb::kList)) {
        return Malformed("unknown control verb");
      }
      msg->verb = static_cast<ControlVerb>(verb);
      break;
    }
    case FrameType::kControlResponse: {
      out->type = FrameType::kControlResponse;
      WireControlResponse* msg = &out->control_response;
      uint8_t code;
      if (!in.GetU64(&msg->request_id) || !in.GetU8(&code) ||
          !in.GetString(&msg->status_message) || !in.GetString(&msg->text)) {
        return Malformed("truncated control-response body");
      }
      if (code > static_cast<uint8_t>(StatusCode::kResourceExhausted)) {
        return Malformed("status code out of range");
      }
      msg->status_code = static_cast<StatusCode>(code);
      break;
    }
    case FrameType::kError: {
      out->type = FrameType::kError;
      WireError* msg = &out->error;
      uint8_t code, fatal;
      if (!in.GetU64(&msg->request_id) || !in.GetU8(&code) ||
          !in.GetString(&msg->message) || !in.GetU8(&fatal)) {
        return Malformed("truncated error body");
      }
      if (code > static_cast<uint8_t>(StatusCode::kResourceExhausted)) {
        return Malformed("status code out of range");
      }
      msg->status_code = static_cast<StatusCode>(code);
      msg->fatal = fatal != 0;
      break;
    }
    default:
      return Status::InvalidArgument(
          StrFormat("unknown frame type %u", type));
  }
  if (!in.Exhausted()) return Malformed("trailing bytes after body");
  return Status::OK();
}

EstimateRequest ToEstimateRequest(const WireEstimateRequest& wire,
                                  std::chrono::steady_clock::time_point now) {
  EstimateRequest request{Query(wire.regions)};
  request.options.num_samples = wire.num_samples;
  request.options.priority = wire.priority;
  request.options.cache_policy = wire.cache_policy;
  if (wire.deadline_ms >= 0) {
    request.options.deadline =
        now + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double, std::milli>(wire.deadline_ms));
  }
  return request;
}

WireEstimateResponse ToWireResponse(uint64_t id, const EstimateResult& res) {
  WireEstimateResponse wire;
  wire.request_id = id;
  wire.status_code = res.status.code();
  wire.status_message = res.status.message();
  wire.estimate = res.estimate;
  wire.std_error = res.std_error;
  wire.provenance = res.provenance;
  wire.samples_used = res.samples_used;
  wire.queue_ms = res.queue_ms;
  wire.compute_ms = res.compute_ms;
  wire.retry_after_ms = res.retry_after_ms;
  return wire;
}

EstimateResult FromWireResponse(const WireEstimateResponse& wire) {
  EstimateResult res;
  res.status = wire.status_code == StatusCode::kOk
                   ? Status::OK()
                   : Status(wire.status_code, wire.status_message);
  res.estimate = wire.estimate;
  res.std_error = wire.std_error;
  res.provenance = wire.provenance;
  res.samples_used = wire.samples_used;
  res.queue_ms = wire.queue_ms;
  res.compute_ms = wire.compute_ms;
  res.retry_after_ms = wire.retry_after_ms;
  return res;
}

}  // namespace naru
