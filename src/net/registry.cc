#include "net/registry.h"

#include <algorithm>
#include <utility>

#include "serve/inference_engine.h"
#include "util/string_util.h"

namespace naru {

Status Tenant::ValidateRegions(const std::vector<ValueSet>& regions) const {
  if (regions.size() != domains.size()) {
    return Status::InvalidArgument(StrFormat(
        "query has %zu columns but tenant '%s' serves %zu", regions.size(),
        name.c_str(), domains.size()));
  }
  for (size_t c = 0; c < regions.size(); ++c) {
    if (regions[c].domain() != domains[c]) {
      return Status::InvalidArgument(StrFormat(
          "column %zu domain mismatch: query says %zu, tenant '%s' has %zu",
          c, regions[c].domain(), name.c_str(), domains[c]));
    }
  }
  return Status::OK();
}

Status ModelRegistry::AddTenant(const std::string& name,
                                std::string table_name, size_t num_rows,
                                std::vector<size_t> domains,
                                std::unique_ptr<ConditionalModel> model,
                                size_t model_size_bytes,
                                const TenantOptions& options) {
  if (name.empty()) {
    return Status::InvalidArgument("tenant name must not be empty");
  }
  if (model == nullptr) {
    return Status::InvalidArgument(
        StrFormat("tenant '%s' registered without a model", name.c_str()));
  }
  auto tenant = std::make_shared<Tenant>();
  tenant->name = name;
  tenant->table_name = std::move(table_name);
  tenant->num_rows = num_rows;
  tenant->model_size_bytes = model_size_bytes;
  tenant->domains = std::move(domains);
  tenant->options = options;
  tenant->model = std::move(model);
  tenant->estimator = std::make_unique<NaruEstimator>(
      tenant->model.get(), options.estimator, model_size_bytes, name);
  tenant->engine = std::make_unique<AsyncEngine>(options.engine);

  MutexLock lock(&mu_);
  if (tenants_.count(name) != 0) {
    return Status::AlreadyExists(
        StrFormat("tenant '%s' is already registered", name.c_str()));
  }
  tenants_.emplace(name, std::move(tenant));
  return Status::OK();
}

bool ModelRegistry::HasTenant(const std::string& name) const {
  MutexLock lock(&mu_);
  return tenants_.count(name) != 0;
}

std::shared_ptr<Tenant> ModelRegistry::GetTenant(
    const std::string& name) const {
  MutexLock lock(&mu_);
  auto it = tenants_.find(name);
  return it == tenants_.end() ? nullptr : it->second;
}

Status ModelRegistry::DropTenant(const std::string& name) {
  MutexLock lock(&mu_);
  if (tenants_.erase(name) == 0) {
    return Status::NotFound(
        StrFormat("no tenant named '%s'", name.c_str()));
  }
  return Status::OK();
}

std::vector<std::string> ModelRegistry::TenantNames() const {
  std::vector<std::string> names;
  {
    MutexLock lock(&mu_);
    names.reserve(tenants_.size());
    for (const auto& [name, tenant] : tenants_) names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

size_t ModelRegistry::NumTenants() const {
  MutexLock lock(&mu_);
  return tenants_.size();
}

void ModelRegistry::DrainAll() {
  // Snapshot first: Drain blocks, and holding mu_ across it would stall
  // concurrent lookups (and could deadlock a callback that resolves a
  // tenant).
  std::vector<std::shared_ptr<Tenant>> snapshot;
  {
    MutexLock lock(&mu_);
    snapshot.reserve(tenants_.size());
    for (const auto& [name, tenant] : tenants_) snapshot.push_back(tenant);
  }
  for (const auto& tenant : snapshot) tenant->engine->Drain();
}

std::string ModelRegistry::FormatTenantList() const {
  std::string out;
  for (const std::string& name : TenantNames()) {
    const std::shared_ptr<Tenant> tenant = GetTenant(name);
    if (tenant == nullptr) continue;  // dropped between the two calls
    const AsyncEngineConfig& acfg = tenant->options.engine;
    out += StrFormat(
        "%s  table=%s cols=%zu rows=%zu model_kb=%.1f samples=%zu "
        "max_pending=%zu cache_mb=%.1f\n",
        name.c_str(), tenant->table_name.c_str(), tenant->domains.size(),
        tenant->num_rows, tenant->model_size_bytes / 1024.0,
        tenant->options.estimator.num_samples, acfg.max_pending,
        acfg.engine.cache_budget_bytes / (1024.0 * 1024.0));
  }
  if (out.empty()) out = "(no tenants registered)\n";
  return out;
}

std::string ModelRegistry::FormatTenantStats(const std::string& name) const {
  std::vector<std::string> names;
  if (name.empty()) {
    names = TenantNames();
    if (names.empty()) return "(no tenants registered)\n";
  } else {
    names.push_back(name);
  }
  std::string out;
  for (const std::string& tenant_name : names) {
    const std::shared_ptr<Tenant> tenant = GetTenant(tenant_name);
    if (tenant == nullptr) {
      out += StrFormat("no tenant named '%s'\n", tenant_name.c_str());
      continue;
    }
    const AsyncEngineStats astats = tenant->engine->async_stats();
    out += StrFormat(
        "== tenant %s ==\n"
        "# async: %zu submitted, %zu completed, %zu batches (largest %zu), "
        "%zu joined twins, %zu admission-shed, peak pending %zu\n",
        tenant_name.c_str(), astats.submitted, astats.completed,
        astats.batches, astats.largest_batch, astats.joined_duplicates,
        astats.shed_admission, astats.max_pending_seen);
    out += FormatEngineStats(tenant->engine->stats());
  }
  return out;
}

}  // namespace naru
