#include "net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <limits>

#include "util/string_util.h"

namespace naru {

namespace {

Status Errno(const char* what) {
  return Status::IOError(StrFormat("%s: %s", what, std::strerror(errno)));
}

bool SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

}  // namespace

NetServer::NetServer(ModelRegistry* registry, NetServerConfig config)
    : registry_(registry), cfg_(std::move(config)) {}

NetServer::~NetServer() {
  Shutdown();
  if (listen_fd_ >= 0) close(listen_fd_);
  if (wake_read_fd_ >= 0) close(wake_read_fd_);
  if (wake_write_fd_ >= 0) close(wake_write_fd_);
}

Status NetServer::Start() {
  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Errno("socket");
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(cfg_.port);
  if (inet_pton(AF_INET, cfg_.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument(
        StrFormat("cannot parse listen host '%s'", cfg_.host.c_str()));
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Errno("bind");
  }
  if (listen(listen_fd_, cfg_.backlog) != 0) return Errno("listen");
  socklen_t len = sizeof(addr);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    return Errno("getsockname");
  }
  port_ = ntohs(addr.sin_port);
  if (!SetNonBlocking(listen_fd_)) return Errno("fcntl(listen)");

  int pipe_fds[2];
  if (pipe(pipe_fds) != 0) return Errno("pipe");
  wake_read_fd_ = pipe_fds[0];
  wake_write_fd_ = pipe_fds[1];
  if (!SetNonBlocking(wake_read_fd_) || !SetNonBlocking(wake_write_fd_)) {
    return Errno("fcntl(pipe)");
  }

  running_.store(true, std::memory_order_release);
  io_thread_ = std::thread([this] { IoLoop(); });
  return Status::OK();
}

void NetServer::Shutdown() {
  // Serialized and idempotent: the second caller (e.g. the destructor
  // after an explicit Shutdown) finds the thread already joined.
  MutexLock shutdown_lock(&state_mu_);
  if (!io_thread_.joinable()) return;
  stop_requested_.store(true, std::memory_order_release);
  Wake();
  {
    // state_mu_ is already held; wait on a secondary predicate loop.
    // quiesced_ is set by the I/O thread under quiesce_mu_.
    MutexLock lock(&quiesce_mu_);
    while (!quiesced_) quiesce_cv_.Wait(quiesce_mu_);
  }
  // Every request the I/O thread will ever submit has been submitted;
  // resolve them all. Callbacks land the responses in the outboxes.
  registry_->DrainAll();
  finish_requested_.store(true, std::memory_order_release);
  Wake();
  io_thread_.join();
  running_.store(false, std::memory_order_release);
}

NetServerStats NetServer::stats() const {
  MutexLock lock(&stats_mu_);
  return stats_;
}

void NetServer::Wake() {
  const ssize_t n = write(wake_write_fd_, "w", 1);
  (void)n;  // EAGAIN on a full pipe is fine: a wake is already pending
}

void NetServer::IoLoop() {
  bool listen_closed = false;
  bool quiesce_signaled = false;
  std::chrono::steady_clock::time_point finish_deadline{};
  bool finish_seen = false;

  std::vector<pollfd> fds;
  std::vector<std::shared_ptr<Conn>> polled;
  for (;;) {
    const bool stopping = stop_requested_.load(std::memory_order_acquire);
    const bool finishing = finish_requested_.load(std::memory_order_acquire);

    if (stopping && !listen_closed) {
      close(listen_fd_);
      listen_fd_ = -1;
      listen_closed = true;
    }
    if (stopping && !quiesce_signaled) {
      // From this iteration on no socket is read, so nothing new can be
      // submitted: everything parsed so far went to the engines in
      // earlier iterations of this same thread.
      {
        MutexLock lock(&quiesce_mu_);
        quiesced_ = true;
      }
      quiesce_cv_.NotifyAll();
      quiesce_signaled = true;
    }
    if (finishing && !finish_seen) {
      finish_seen = true;
      finish_deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration_cast<
                            std::chrono::steady_clock::duration>(
                            std::chrono::duration<double, std::milli>(
                                cfg_.drain_flush_timeout_ms));
    }

    // Finish phase: close connections as their outboxes drain; leave once
    // none remain (or a non-reading client exhausts the flush budget).
    if (finish_seen) {
      std::vector<int> done;
      for (auto& [fd, conn] : conns_) {
        MutexLock lock(&conn->mu);
        if (conn->outbox.empty()) done.push_back(fd);
      }
      const bool expired = std::chrono::steady_clock::now() >= finish_deadline;
      if (expired) {
        done.clear();
        for (auto& [fd, conn] : conns_) done.push_back(fd);
      }
      for (int fd : done) {
        auto it = conns_.find(fd);
        if (it != conns_.end()) CloseConn(it->second);
      }
      if (conns_.empty()) break;
    }

    fds.clear();
    polled.clear();
    fds.push_back({wake_read_fd_, POLLIN, 0});
    if (!stopping && listen_fd_ >= 0) {
      fds.push_back({listen_fd_, POLLIN, 0});
    }
    const size_t conn_base = fds.size();
    for (auto& [fd, conn] : conns_) {
      short events = 0;
      if (!stopping && !conn->stopped_reading && !conn->poisoned) {
        events |= POLLIN;
      }
      {
        MutexLock lock(&conn->mu);
        if (!conn->outbox.empty()) events |= POLLOUT;
      }
      fds.push_back({fd, events, 0});
      polled.push_back(conn);
    }

    const int timeout_ms = finish_seen ? 20 : 100;
    const int n = poll(fds.data(), fds.size(), timeout_ms);
    if (n < 0 && errno != EINTR) break;  // unrecoverable poll failure

    if (fds[0].revents & POLLIN) {
      char buf[256];
      while (read(wake_read_fd_, buf, sizeof(buf)) > 0) {
      }
    }
    if (!stopping && conn_base == 2 && (fds[1].revents & POLLIN)) {
      AcceptReady();
    }

    std::vector<std::shared_ptr<Conn>> to_close;
    for (size_t i = 0; i < polled.size(); ++i) {
      const std::shared_ptr<Conn>& conn = polled[i];
      const short revents = fds[conn_base + i].revents;
      bool dead = false;
      if (revents & POLLIN) {
        dead = !ReadReady(conn);
      } else if (revents & (POLLERR | POLLHUP) &&
                 !(revents & POLLOUT)) {
        // No data direction left to service: if the peer reset the
        // connection entirely, a read attempt reports it.
        if (!conn->stopped_reading && !conn->poisoned) {
          dead = !ReadReady(conn);
        }
      }
      if (!dead) dead = !FlushOutbox(conn);
      if (!dead) {
        // Half-closed or poisoned connections linger only until their
        // last response is out.
        MutexLock lock(&conn->mu);
        if ((conn->poisoned || conn->stopped_reading) &&
            conn->outbox.empty() && conn->inflight == 0) {
          dead = true;
        }
      }
      if (dead) to_close.push_back(conn);
    }
    for (const auto& conn : to_close) CloseConn(conn);
  }

  // Loop exit: everything left is force-closed (flush budget exhausted).
  std::vector<std::shared_ptr<Conn>> rest;
  rest.reserve(conns_.size());
  for (auto& [fd, conn] : conns_) rest.push_back(conn);
  for (const auto& conn : rest) CloseConn(conn);
  if (!quiesce_signaled) {
    // Abnormal exit (poll failure) — never leave Shutdown() waiting.
    {
      MutexLock lock(&quiesce_mu_);
      quiesced_ = true;
    }
    quiesce_cv_.NotifyAll();
  }
}

void NetServer::AcceptReady() {
  for (;;) {
    const int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN / transient accept failure: poll again
    }
    if (!SetNonBlocking(fd)) {
      close(fd);
      continue;
    }
    const int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<Conn>();
    conn->fd = fd;
    conns_.emplace(fd, std::move(conn));
    MutexLock lock(&stats_mu_);
    ++stats_.connections_accepted;
  }
}

bool NetServer::ReadReady(const std::shared_ptr<Conn>& conn) {
  char buf[64 * 1024];
  bool eof = false;
  for (;;) {
    const ssize_t n = recv(conn->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn->inbuf.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) {
      eof = true;  // peer half-closed: parse what arrived, keep writing
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    return false;  // hard socket error
  }

  // Reassemble and dispatch every complete frame in the buffer.
  std::string_view view(conn->inbuf);
  size_t pos = 0;
  while (!conn->poisoned) {
    Status prefix_error;
    const size_t size = FrameSizeBytes(view.substr(pos),
                                       cfg_.max_frame_payload, &prefix_error);
    if (!prefix_error.ok()) {
      // Unrecoverable: the reader cannot find the next frame boundary.
      QueueError(conn, 0, prefix_error, /*fatal=*/true);
      conn->poisoned = true;
      {
        MutexLock lock(&stats_mu_);
        ++stats_.poisoned_streams;
      }
      pos = view.size();  // discard the rest of the stream
      break;
    }
    if (size == 0) break;  // incomplete: wait for more bytes
    {
      MutexLock lock(&stats_mu_);
      ++stats_.frames_received;
    }
    Frame frame;
    const Status st = DecodeFrame(
        view.substr(pos + kFrameHeaderBytes, size - kFrameHeaderBytes),
        &frame);
    if (!st.ok()) {
      QueueError(conn, 0, st, /*fatal=*/false);
    } else {
      HandleFrame(conn, frame);
    }
    pos += size;
  }
  conn->inbuf.erase(0, pos);

  if (eof) {
    conn->stopped_reading = true;
    const bool idle = [&] {
      MutexLock lock(&conn->mu);
      return conn->outbox.empty() && conn->inflight == 0;
    }();
    if (idle && conn->inbuf.empty()) return false;  // nothing left to say
    // A trailing partial frame at EOF is a truncated-frame malformation;
    // nobody is listening for an error reply, so it is only counted.
    if (!conn->inbuf.empty()) {
      MutexLock lock(&stats_mu_);
      ++stats_.protocol_errors;
      conn->inbuf.clear();
    }
  }
  return true;
}

void NetServer::HandleFrame(const std::shared_ptr<Conn>& conn,
                            const Frame& frame) {
  switch (frame.type) {
    case FrameType::kEstimateRequest:
      HandleEstimate(conn, frame.request);
      return;
    case FrameType::kControlRequest:
      HandleControl(conn, frame.control);
      return;
    default:
      // Well-formed but nonsensical from a client (a response or error
      // frame sent AT the server): rejected per-frame, stream survives.
      QueueError(conn, 0,
                 Status::InvalidArgument(StrFormat(
                     "unexpected frame type %u from client",
                     static_cast<unsigned>(frame.type))),
                 /*fatal=*/false);
      return;
  }
}

void NetServer::HandleEstimate(const std::shared_ptr<Conn>& conn,
                               const WireEstimateRequest& wire) {
  const std::shared_ptr<Tenant> tenant = registry_->GetTenant(wire.tenant);
  Status reject;
  if (tenant == nullptr) {
    reject = Status::NotFound(
        StrFormat("no tenant named '%s'", wire.tenant.c_str()));
  } else {
    reject = tenant->ValidateRegions(wire.regions);
  }
  if (!reject.ok()) {
    {
      MutexLock lock(&stats_mu_);
      ++stats_.rejected_requests;
    }
    EstimateResult result;
    result.status = reject;
    result.provenance = ResultProvenance::kUnknown;
    std::string bytes;
    EncodeEstimateResponse(ToWireResponse(wire.request_id, result), &bytes);
    QueueBytes(conn, std::move(bytes));
    return;
  }

  EstimateRequest request =
      ToEstimateRequest(wire, std::chrono::steady_clock::now());
  {
    MutexLock lock(&conn->mu);
    ++conn->inflight;
  }
  {
    MutexLock lock(&stats_mu_);
    ++stats_.requests_submitted;
  }
  const uint64_t id = wire.request_id;
  std::shared_ptr<Conn> owner = conn;
  // The future is intentionally dropped: delivery rides the callback. The
  // tenant (and with it the engine and estimator) is captured so a
  // concurrent DropTenant cannot tear the stack down under a live walk.
  tenant->engine->Submit(
      tenant->estimator.get(), std::move(request),
      [this, owner, id, tenant](const EstimateResult& result) {
        DeliverResult(owner, id, result);
      });
}

void NetServer::HandleControl(const std::shared_ptr<Conn>& conn,
                              const WireControlRequest& wire) {
  {
    MutexLock lock(&stats_mu_);
    ++stats_.control_requests;
  }
  WireControlResponse resp;
  resp.request_id = wire.request_id;
  switch (wire.verb) {
    case ControlVerb::kList:
      resp.text = registry_->FormatTenantList();
      break;
    case ControlVerb::kStats:
      if (!wire.tenant.empty() && !registry_->HasTenant(wire.tenant)) {
        resp.status_code = StatusCode::kNotFound;
        resp.status_message =
            StrFormat("no tenant named '%s'", wire.tenant.c_str());
      } else {
        resp.text = registry_->FormatTenantStats(wire.tenant);
      }
      break;
  }
  std::string bytes;
  EncodeControlResponse(resp, &bytes);
  QueueBytes(conn, std::move(bytes));
}

void NetServer::DeliverResult(const std::shared_ptr<Conn>& conn,
                              uint64_t request_id,
                              const EstimateResult& result) {
  bool orphaned = false;
  {
    MutexLock lock(&conn->mu);
    --conn->inflight;
    if (conn->closed) {
      orphaned = true;
    } else {
      std::string bytes;
      EncodeEstimateResponse(ToWireResponse(request_id, result), &bytes);
      conn->outbox.push_back(std::move(bytes));
    }
  }
  {
    MutexLock lock(&stats_mu_);
    if (orphaned) {
      ++stats_.orphaned_responses;
    } else {
      ++stats_.responses_sent;
    }
  }
  if (!orphaned) Wake();
}

void NetServer::QueueBytes(const std::shared_ptr<Conn>& conn,
                           std::string bytes) {
  MutexLock lock(&conn->mu);
  if (!conn->closed) conn->outbox.push_back(std::move(bytes));
}

void NetServer::QueueError(const std::shared_ptr<Conn>& conn,
                           uint64_t request_id, const Status& status,
                           bool fatal) {
  WireError err;
  err.request_id = request_id;
  err.status_code = status.code();
  err.message = status.message();
  err.fatal = fatal;
  std::string bytes;
  EncodeError(err, &bytes);
  QueueBytes(conn, std::move(bytes));
  MutexLock lock(&stats_mu_);
  ++stats_.protocol_errors;
}

bool NetServer::FlushOutbox(const std::shared_ptr<Conn>& conn) {
  for (;;) {
    const std::string* front = nullptr;
    size_t offset = 0;
    {
      MutexLock lock(&conn->mu);
      if (conn->outbox.empty()) return true;
      // Deque references survive concurrent push_back; only this (I/O)
      // thread ever pops, so the front stays valid outside the lock.
      front = &conn->outbox.front();
      offset = conn->outbox_offset;
    }
    const ssize_t n = send(conn->fd, front->data() + offset,
                           front->size() - offset, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      return false;  // peer gone
    }
    offset += static_cast<size_t>(n);
    if (offset == front->size()) {
      MutexLock lock(&conn->mu);
      conn->outbox.pop_front();
      conn->outbox_offset = 0;
    } else {
      MutexLock lock(&conn->mu);
      conn->outbox_offset = offset;
      return true;  // kernel buffer full; POLLOUT resumes us
    }
  }
}

void NetServer::CloseConn(const std::shared_ptr<Conn>& conn) {
  {
    MutexLock lock(&conn->mu);
    if (conn->closed) return;
    conn->closed = true;
    conn->outbox.clear();
  }
  close(conn->fd);
  conns_.erase(conn->fd);
  MutexLock lock(&stats_mu_);
  ++stats_.connections_closed;
}

}  // namespace naru
