// TCP serving front-end: the socket accept loop over the model registry.
//
// One poll()-driven I/O thread owns every socket: it accepts connections,
// reassembles length-prefixed frames (net/protocol.h) from per-connection
// receive buffers, resolves the tenant in the registry, and feeds each
// estimate request into that tenant's AsyncEngine::Submit. Results come
// back on the tenant dispatchers' threads via the Submit callback, which
// encodes the response into the owning connection's outbox and wakes the
// I/O thread through a self-pipe — the I/O thread alone ever reads or
// writes a socket, so connection state needs no per-field locking beyond
// the outbox mutex the callbacks share.
//
// Requests are PIPELINED per connection: a client may stream any number
// of frames without waiting, and responses return in COMPLETION order
// (the request_id echo is the match key) — priorities, deadlines, and
// admission control inside each tenant's engine decide completion order,
// exactly as they do in-process.
//
// Malformed input (the robustness contract, tested in tests/test_net.cc):
//   - unusable length prefix (over-limit, or too short for version+type):
//     typed kError frame with fatal=true, then the connection closes —
//     the stream cannot be resynchronized;
//   - bad version / unknown type / truncated body / trailing bytes /
//     out-of-range enum: typed kError frame, connection keeps serving;
//   - unknown tenant / schema-mismatched query: typed kEstimateResponse
//     carrying NotFound / InvalidArgument, id echoed;
//   - a client that disconnects mid-frame or with requests in flight
//     costs nothing: its in-flight results are dropped on delivery and
//     every other connection is untouched.
// In every case the server keeps serving the next request.
//
// Graceful drain: Shutdown() (idempotent, any thread — naru_cli calls it
// on SIGINT) stops accepting and stops READING, waits for the I/O thread
// to finish submitting what it already parsed, drains every tenant's
// engine so each in-flight request resolves and its response lands in an
// outbox, then flushes the outboxes and closes. No submitted request is
// ever dropped by shutdown — a client that keeps reading receives every
// response for every request the server read.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/protocol.h"
#include "net/registry.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace naru {

struct NetServerConfig {
  /// Listen address. Tests and the loopback bench bind 127.0.0.1.
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; port() reports the bound one.
  uint16_t port = 0;
  int backlog = 128;
  /// Per-frame payload ceiling enforced on the length prefix before it is
  /// trusted (protocol.h).
  size_t max_frame_payload = kMaxFramePayloadBytes;
  /// How long Shutdown keeps flushing pending response bytes to clients
  /// that have stopped reading before giving up and closing anyway.
  double drain_flush_timeout_ms = 5000.0;
};

/// I/O-thread counters (cumulative; snapshot via stats()).
struct NetServerStats {
  size_t connections_accepted = 0;
  size_t connections_closed = 0;
  size_t frames_received = 0;        ///< well-delimited frames read
  size_t requests_submitted = 0;     ///< estimate requests handed to engines
  size_t responses_sent = 0;         ///< estimate responses queued for write
  size_t control_requests = 0;       ///< STATS/LIST verbs served
  size_t protocol_errors = 0;        ///< typed kError frames sent
  size_t poisoned_streams = 0;       ///< connections closed on a bad prefix
  size_t rejected_requests = 0;      ///< unknown tenant / schema mismatch
  /// Responses whose connection was already gone at delivery time (the
  /// client disconnected with requests in flight).
  size_t orphaned_responses = 0;
};

/// The socket front-end. One instance serves every tenant in `registry`;
/// the registry (and therefore every tenant engine) must outlive the
/// server. Start() spawns the I/O thread; Shutdown() (or destruction)
/// drains and joins it.
class NetServer {
 public:
  explicit NetServer(ModelRegistry* registry, NetServerConfig config = {});
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Binds, listens, and spawns the I/O thread. IOError on any socket
  /// failure (address in use, bad host, ...).
  Status Start();

  /// The bound port (after a successful Start; 0 before).
  uint16_t port() const { return port_; }

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Graceful drain, safe from any thread and idempotent: stop accepting,
  /// stop reading, resolve everything in flight through the registry's
  /// engines, flush every outbox, close, join.
  void Shutdown();

  NetServerStats stats() const;

 private:
  /// Per-connection state. The I/O thread owns fd/inbuf/reading; the
  /// outbox block is shared with engine callbacks under `mu`.
  struct Conn {
    int fd = -1;
    std::string inbuf;
    bool poisoned = false;     ///< bad length prefix: close after flush
    bool stopped_reading = false;

    Mutex mu;
    std::deque<std::string> outbox
        NARU_GUARDED_BY(mu);      ///< encoded frames awaiting write
    size_t outbox_offset NARU_GUARDED_BY(mu) =
        0;                        ///< bytes of outbox.front() already sent
    size_t inflight NARU_GUARDED_BY(mu) =
        0;                        ///< submitted, response not yet queued
    bool closed NARU_GUARDED_BY(mu) =
        false;                    ///< delivery after this is orphaned
  };

  void IoLoop();
  void AcceptReady();
  /// Reads, reassembles, decodes, dispatches. Returns false when the
  /// connection is finished (EOF / error / poisoned stream drained).
  bool ReadReady(const std::shared_ptr<Conn>& conn);
  void HandleFrame(const std::shared_ptr<Conn>& conn, const Frame& frame);
  void HandleEstimate(const std::shared_ptr<Conn>& conn,
                      const WireEstimateRequest& wire);
  void HandleControl(const std::shared_ptr<Conn>& conn,
                     const WireControlRequest& wire);
  /// Engine-callback delivery path: encode under the outbox lock, wake
  /// the I/O thread. Runs on tenant dispatcher threads.
  void DeliverResult(const std::shared_ptr<Conn>& conn, uint64_t request_id,
                     const EstimateResult& result);
  /// Appends an already-encoded frame to the outbox (I/O thread path).
  void QueueBytes(const std::shared_ptr<Conn>& conn, std::string bytes);
  void QueueError(const std::shared_ptr<Conn>& conn, uint64_t request_id,
                  const Status& status, bool fatal);
  /// Non-blocking flush. Returns false when the socket died.
  bool FlushOutbox(const std::shared_ptr<Conn>& conn);
  void CloseConn(const std::shared_ptr<Conn>& conn);
  void Wake();

  ModelRegistry* registry_;
  NetServerConfig cfg_;
  int listen_fd_ = -1;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  uint16_t port_ = 0;

  /// Lifecycle flags, release-stored / acquire-loaded: each one-way flip
  /// publishes the writer's preceding state to whoever observes it
  /// (Start's socket setup before running_, Shutdown's drain before
  /// finish_requested_), so readers never see the flag without the state
  /// it advertises.
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};  ///< stop accepting + reading
  std::atomic<bool> finish_requested_{false};  ///< engines drained: flush+exit

  Mutex state_mu_;  ///< serializes Shutdown (idempotence)
  Mutex quiesce_mu_;
  CondVar quiesce_cv_;  ///< wakes Shutdown once the I/O thread quiesced
  bool quiesced_ NARU_GUARDED_BY(quiesce_mu_) =
      false;  ///< I/O thread has stopped submitting

  std::unordered_map<int, std::shared_ptr<Conn>> conns_;  // I/O thread only

  mutable Mutex stats_mu_;
  NetServerStats stats_ NARU_GUARDED_BY(stats_mu_);

  std::thread io_thread_;
};

}  // namespace naru
