// Client side of the wire protocol: a blocking connection that speaks
// net/protocol.h frames.
//
// This is the library naru_cli --connect and bench_serving_net are built
// on. It is deliberately thin: a connected TCP socket, Send* helpers that
// write one encoded frame, and ReadFrame() which reassembles exactly one
// frame from the stream (frames may arrive back-to-back or split across
// reads; an internal buffer carries the remainder). Synchronous
// convenience wrappers (CallEstimate / CallControl) cover the common
// one-outstanding-request case; pipelined callers use Send*/ReadFrame
// directly and match responses by request_id, since the server replies in
// COMPLETION order, not submission order.
//
// A kError frame from the server is surfaced as a decoded Frame, not
// swallowed into a Status: callers need the fatal flag (fatal=true means
// the server will close this connection) and the echoed request_id.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "net/protocol.h"
#include "util/status.h"

namespace naru {

/// Splits "host:port", ":port", or a bare "port" (host defaults to
/// 127.0.0.1). InvalidArgument on an unparsable port or empty input.
Status ParseHostPort(std::string_view spec, std::string* host,
                     uint16_t* port);

class NetClient {
 public:
  NetClient() = default;
  ~NetClient();

  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;

  /// Opens a blocking TCP connection. IOError on failure.
  Status Connect(const std::string& host, uint16_t port);

  bool connected() const { return fd_ >= 0; }

  /// Bounds every subsequent ReadFrame (SO_RCVTIMEO). 0 restores
  /// block-forever. Tests use this so a server bug cannot hang them.
  Status SetRecvTimeoutMs(int timeout_ms);

  /// Half-close: tells the server no more requests are coming while
  /// responses can still be read — the client side of graceful drain.
  void FinishWrites();

  void Close();

  Status SendEstimate(const WireEstimateRequest& request);
  Status SendControl(const WireControlRequest& request);
  /// Writes raw bytes verbatim — the malformed-frame tests' entry point.
  Status SendRaw(std::string_view bytes);

  /// Blocks until one whole frame is decoded. IOError on EOF/timeout/
  /// socket failure; decode errors surface as the decoder's Status.
  Status ReadFrame(Frame* out);

  /// Send + read until the kEstimateResponse echoing this request_id
  /// arrives (other frame types: kError becomes a Status, unexpected
  /// responses for other ids are an error — use ReadFrame when
  /// pipelining).
  Status CallEstimate(const WireEstimateRequest& request,
                      WireEstimateResponse* response);
  Status CallControl(const WireControlRequest& request,
                     WireControlResponse* response);

 private:
  int fd_ = -1;
  std::string inbuf_;  ///< bytes read past the last decoded frame
};

}  // namespace naru
