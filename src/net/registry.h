// Multi-tenant model registry: many named (model, table) tenants served
// from ONE process.
//
// The serving stack below this point is single-tenant: one NaruEstimator
// over one model, one AsyncEngine with one cache budget and one admission
// quota. A production estimation service hosts MANY models — per table,
// per schema version, per customer — behind one endpoint, and the failure
// mode that matters is CROSS-tenant interference: one tenant's overload
// must not shed, evict, or even perturb another tenant's counters.
//
// The registry is the catalog (shape after Hyrise's StorageManager:
// add / has / get / drop / names over a mutex-guarded map). ISOLATION is
// structural, not scheduled: every tenant owns a full serving stack —
// its own NaruEstimator, its own AsyncEngine (dispatcher thread, pending
// queues, admission quota via AsyncEngineConfig::max_pending), and its
// own InferenceEngine (exact-result caches under the tenant's private
// byte budget, EngineStats counters). No map, cache, queue, or counter is
// shared between tenants, so a saturated tenant sheds against its own
// quota and evicts from its own caches while a quiet tenant's estimates
// stay bit-identical to a solo run (asserted in tests/test_net.cc).
//
// Lifetime: Get() hands out shared_ptr<Tenant>; DropTenant only removes
// the catalog entry, so a tenant a connection still holds stays alive
// (and its in-flight requests resolve) until the last reference drops.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/conditional_model.h"
#include "core/naru_estimator.h"
#include "serve/async_engine.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace naru {

/// Per-tenant serving configuration. The engine config carries the
/// tenant's ISOLATION knobs: cache byte budget
/// (engine.engine.cache_budget_bytes), admission quota
/// (engine.max_pending), thread count, and flush geometry.
struct TenantOptions {
  NaruEstimatorConfig estimator;
  AsyncEngineConfig engine;
};

/// One registered tenant: a model plus its private serving stack.
/// Created by ModelRegistry::AddTenant; immutable afterwards except
/// through the engine.
struct Tenant {
  std::string name;
  std::string table_name;
  size_t num_rows = 0;
  size_t model_size_bytes = 0;
  /// Table-column domain sizes, captured at registration: the wire
  /// front-end validates every incoming query against these BEFORE the
  /// model sees it (ValidateRegions).
  std::vector<size_t> domains;
  TenantOptions options;

  std::unique_ptr<ConditionalModel> model;
  std::unique_ptr<NaruEstimator> estimator;
  std::unique_ptr<AsyncEngine> engine;

  /// NotFound/InvalidArgument when `regions` does not match this tenant's
  /// schema (column count or any per-column domain size). A query that
  /// passes is safe to hand to the tenant's sampler.
  Status ValidateRegions(const std::vector<ValueSet>& regions) const;
};

/// The catalog. Thread-safe: any number of threads may resolve tenants
/// while others add or drop them.
class ModelRegistry {
 public:
  ModelRegistry() = default;
  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  /// Registers `model` under `name` with a freshly built estimator and
  /// AsyncEngine. `domains` are the table-column domain sizes the wire
  /// front-end validates queries against; `table_name` / `num_rows` /
  /// `model_size_bytes` are catalog metadata (LIST output, estimator
  /// construction). Fails with AlreadyExists on a duplicate name and
  /// InvalidArgument on an empty name or null model.
  Status AddTenant(const std::string& name, std::string table_name,
                   size_t num_rows, std::vector<size_t> domains,
                   std::unique_ptr<ConditionalModel> model,
                   size_t model_size_bytes, const TenantOptions& options);

  bool HasTenant(const std::string& name) const;

  /// The tenant, or nullptr when unknown. The returned shared_ptr keeps
  /// the tenant (and its engines) alive across a concurrent DropTenant.
  std::shared_ptr<Tenant> GetTenant(const std::string& name) const;

  /// Unregisters the tenant; outstanding shared_ptrs keep it alive until
  /// released. NotFound when no such tenant exists.
  Status DropTenant(const std::string& name);

  /// Registered tenant names, sorted (stable LIST output).
  std::vector<std::string> TenantNames() const;

  size_t NumTenants() const;

  /// Drains every tenant's AsyncEngine (graceful-shutdown step: every
  /// already-submitted request resolves before this returns).
  void DrainAll();

  /// One line per tenant: name, columns, rows, model KB, quota knobs —
  /// the LIST control verb's payload.
  std::string FormatTenantList() const;

  /// Rendered EngineStats (+ dispatcher counters) for one tenant, or for
  /// every tenant when `name` is empty — the STATS control verb's
  /// payload. NotFound text when the tenant is unknown.
  std::string FormatTenantStats(const std::string& name) const;

 private:
  /// Guards the catalog map only: a resolved shared_ptr<Tenant> is used
  /// outside the lock (tenant stacks synchronize themselves), so no
  /// tenant-level lock is ever taken while mu_ is held — registry is the
  /// TOP of the lock hierarchy (registry -> tenant -> engine).
  mutable Mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<Tenant>> tenants_
      NARU_GUARDED_BY(mu_);
};

}  // namespace naru
