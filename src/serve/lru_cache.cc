#include "serve/lru_cache.h"

namespace naru {

bool LruResultCache::Lookup(std::string_view key, double* value) {
  const auto it = map_.find(key);
  if (it == map_.end()) return false;
  order_.splice(order_.begin(), order_, it->second);
  *value = it->second->value;
  return true;
}

size_t LruResultCache::Insert(std::string_view key, double value,
                              size_t budget_bytes) {
  const auto it = map_.find(key);
  if (it != map_.end()) {
    it->second->value = value;
    order_.splice(order_.begin(), order_, it->second);
  } else {
    order_.push_front(Entry{std::string(key), value});
    // The view must alias the entry's own storage, not the caller's key.
    map_.emplace(std::string_view(order_.front().key), order_.begin());
    bytes_ += EntryBytes(order_.front().key);
  }
  size_t evicted = 0;
  while (bytes_ > budget_bytes && !order_.empty()) {
    const Entry& lru = order_.back();
    bytes_ -= EntryBytes(lru.key);
    map_.erase(std::string_view(lru.key));
    order_.pop_back();
    ++evicted;
  }
  evictions_ += evicted;
  return evicted;
}

void LruResultCache::Clear() {
  map_.clear();
  order_.clear();
  bytes_ = 0;
  evictions_ = 0;
}

}  // namespace naru
