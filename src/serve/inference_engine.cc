#include "serve/inference_engine.h"

#include <algorithm>

#include "core/enumerator.h"
#include "plan/plan_executor.h"
#include "plan/sampling_plan.h"
#include "serve/query_key.h"
#include "util/string_util.h"

namespace naru {

namespace {

// Enumeration runs LogProbRows through the model's shared scratch buffers,
// so it must be serialized PER MODEL, not per engine: two engines (e.g.
// two estimators' private engines) may serve one model concurrently. The
// registry leaks one mutex per model pointer ever enumerated — bounded and
// harmless (address reuse just shares a mutex).
std::mutex& EnumerationMutexFor(const ConditionalModel* model) {
  static std::mutex registry_mu;
  static auto* registry =
      new std::unordered_map<const ConditionalModel*,
                             std::unique_ptr<std::mutex>>();
  std::lock_guard<std::mutex> lock(registry_mu);
  auto& slot = (*registry)[model];
  if (slot == nullptr) slot = std::make_unique<std::mutex>();
  return *slot;
}

// The config-dependent memo-key prefix: sampled estimates depend on the
// estimator's sampling configuration, not only on the model — two
// estimators wrapping one model (e.g. Naru-1000 and Naru-4000) must never
// share memo entries. Built once per batch, not once per query.
std::string MemoPrefix(const NaruEstimatorConfig& cfg) {
  // shard_size is part of the key: the shard layout defines the RNG
  // streams, so two estimators differing only in it produce different
  // sampled estimates.
  return StrFormat("%zu|%zu|%llu|%zu|%d|", cfg.num_samples,
                   cfg.enumeration_threshold,
                   static_cast<unsigned long long>(cfg.sampler_seed),
                   cfg.shard_size, cfg.uniform_region ? 1 : 0);
}

}  // namespace

InferenceEngine::InferenceEngine(InferenceEngineConfig config)
    : cfg_(config) {
  if (cfg_.num_threads > 1) {
    own_pool_ = std::make_unique<ThreadPool>(cfg_.num_threads);
  }
}

InferenceEngine::~InferenceEngine() = default;

ThreadPool* InferenceEngine::pool() const {
  if (cfg_.num_threads == 1) return nullptr;
  if (own_pool_ != nullptr) return own_pool_.get();
  return GlobalThreadPool();
}

size_t InferenceEngine::num_threads() const {
  ThreadPool* p = pool();
  return p == nullptr ? 1 : p->num_threads();
}

EngineStats InferenceEngine::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  EngineStats snapshot = stats_;
  for (const auto& [model, cache] : caches_) {
    (void)model;
    snapshot.memo_entries += cache.result_memo.entries();
    snapshot.memo_bytes += cache.result_memo.bytes();
    snapshot.marginal_entries += cache.leading_mass.entries();
    snapshot.marginal_bytes += cache.leading_mass.bytes();
  }
  snapshot.workspaces_created = workspaces_.total_created();
  return snapshot;
}

std::string FormatEngineStats(const EngineStats& stats) {
  std::string out;
  out += StrFormat(
      "# engine: %zu queries (%zu sampled, %zu enumerated, %zu exact "
      "shortcuts)\n",
      stats.queries, stats.sampled, stats.enumerated, stats.exact_shortcuts);
  out += StrFormat(
      "# caches: memo %zu hits / %zu misses / %zu evictions (%zu entries, "
      "%.1f KB), marginal %zu hits / %zu misses / %zu evictions (%zu "
      "entries, %.1f KB)\n",
      stats.memo_hits, stats.memo_misses, stats.memo_evictions,
      stats.memo_entries, stats.memo_bytes / 1024.0, stats.marginal_hits,
      stats.marginal_misses, stats.marginal_evictions, stats.marginal_entries,
      stats.marginal_bytes / 1024.0);
  out += StrFormat(
      "# plans: %zu queries in %zu groups over %zu batches, avg group %.1f, "
      "prefix-share ratio %.3f (%zu of %zu column walks shared)\n",
      stats.planned_queries, stats.plan_groups, stats.plan_batches,
      stats.plan_groups == 0 ? 0.0
                             : static_cast<double>(stats.planned_queries) /
                                   static_cast<double>(stats.plan_groups),
      stats.prefix_share_ratio(), stats.plan_shared_cols,
      stats.plan_walk_cols);
  out += StrFormat("# workspaces created: %zu\n", stats.workspaces_created);
  return out;
}

void InferenceEngine::ClearCaches() {
  std::lock_guard<std::mutex> lock(mu_);
  caches_.clear();
  stats_ = EngineStats{};
}

void InferenceEngine::ClearCachesFor(const ConditionalModel* model) {
  std::lock_guard<std::mutex> lock(mu_);
  caches_.erase(model);
}

void InferenceEngine::EstimateBatch(NaruEstimator* est,
                                    const std::vector<Query>& queries,
                                    std::vector<double>* out) {
  const size_t n = queries.size();
  out->assign(n, 0.0);
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.queries += n;
  }
  if (n == 0) return;

  // A caller-established serial region wins over the engine's own thread
  // configuration — the same coarser-grain-wins rule the sampler follows.
  ThreadPool* p = ScopedSerialRegion::Active() ? nullptr : pool();
  const bool concurrent = est->model()->SupportsConcurrentSampling();

  // ONE keyed pass over the batch: each query's canonical key is built
  // exactly once here and reused for (a) duplicate coalescing and (b) the
  // memo lookup inside EstimateOne — the sequential code used to rebuild
  // it per call. The config-dependent memo prefix is likewise hoisted to
  // once per batch.
  //
  // Coalescing duplicates up front matters because k copies of one
  // uncached query would otherwise cost k full walks (k workers all miss
  // the memo before any finishes) — on exactly the repeated-template
  // traces the engine serves. Coalescing is exact (identical queries get
  // the one deterministic result), so it stays on even when caching is
  // disabled.
  std::vector<std::string> keys(n);
  std::unordered_map<std::string_view, size_t> first_index;
  std::vector<size_t> reps;          // one representative per distinct key
  std::vector<size_t> dup_of(n, 0);  // representative index per query
  reps.reserve(n);
  first_index.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    keys[i] = QueryKey(queries[i]);
    const auto [it, inserted] =
        first_index.emplace(std::string_view(keys[i]), i);
    if (inserted) reps.push_back(i);
    dup_of[i] = it->second;
  }
  const size_t m = reps.size();
  const std::string memo_prefix =
      cfg_.enable_cache ? MemoPrefix(est->config()) : std::string();

  // Planned route: resolve every distinct query through the exact fast
  // paths (memo, empty, enumeration, wildcard exits, leading-only), then
  // compile the sampled remainder into ONE SamplingPlan for the whole
  // batch — queries grouped by shared leading-wildcard prefix, one prefix
  // walk per (shard, group), per-column forward passes fused into stacked
  // GEMMs. Requires pure stackable sessions; the uniform-region strawman
  // takes none of the walk structure the plan exploits.
  if (cfg_.enable_plan && est->model()->SupportsStackedEvaluation() &&
      !est->sampler()->config().uniform_region) {
    std::vector<size_t> sampled_reps;
    std::vector<std::string> sampled_keys;
    auto resolve_and_plan = [&] {
      std::string memo_key;
      for (size_t k = 0; k < m; ++k) {
        double result;
        if (ResolveBeforeSampling(est, queries[reps[k]], memo_prefix,
                                  keys[reps[k]], &memo_key, &result)) {
          (*out)[reps[k]] = result;
        } else {
          sampled_reps.push_back(reps[k]);
          sampled_keys.push_back(std::move(memo_key));
        }
      }
      EstimatePlanned(est, queries, sampled_reps, sampled_keys, p, out);
    };
    if (p == nullptr) {
      // Strictly serial: one serial region over resolution AND plan
      // execution keeps every kernel inline (the num_threads=1 contract).
      ScopedSerialRegion serial;
      resolve_and_plan();
    } else {
      resolve_and_plan();
    }
    for (size_t i = 0; i < n; ++i) (*out)[i] = (*out)[dup_of[i]];
    return;
  }

  // Legacy route (models without stackable sessions, uniform-region, or
  // enable_plan off): the schedule is chosen on the COALESCED width — a
  // batch of 64 requests over 2 distinct templates is 2 queries' worth of
  // work and should shard each walk across the pool, not park it on 2 of
  // N workers.
  if (p != nullptr && concurrent && m >= p->num_threads() && m > 1) {
    // Wide batches: one distinct query per worker, sampler serial within a
    // query. Queries are independent and every cached value is exact, so
    // the schedule cannot affect results.
    p->ParallelFor(
        0, m,
        [&](size_t lo, size_t hi) {
          ScopedSerialRegion serial;
          for (size_t k = lo; k < hi; ++k) {
            (*out)[reps[k]] =
                EstimateOne(est, queries[reps[k]], memo_prefix, keys[reps[k]],
                            /*sampler_parallelism=*/1,
                            /*sampler_pool=*/nullptr);
          }
        },
        /*min_chunk=*/1);
  } else if (p == nullptr) {
    // Strictly serial: hold a serial region across the whole batch so the
    // enumeration and leading-only paths (whose kernels would otherwise
    // fan out to the global pool) honor the num_threads=1 contract too.
    ScopedSerialRegion serial;
    for (size_t k = 0; k < m; ++k) {
      (*out)[reps[k]] = EstimateOne(est, queries[reps[k]], memo_prefix,
                                    keys[reps[k]],
                                    /*sampler_parallelism=*/1,
                                    /*sampler_pool=*/nullptr);
    }
  } else {
    // Narrow batches (or a non-concurrent model): distinct queries run in
    // order; each query's sample-path shards use the engine's pool.
    for (size_t k = 0; k < m; ++k) {
      (*out)[reps[k]] = EstimateOne(est, queries[reps[k]], memo_prefix,
                                    keys[reps[k]],
                                    /*sampler_parallelism=*/0, p);
    }
  }
  for (size_t i = 0; i < n; ++i) (*out)[i] = (*out)[dup_of[i]];
}

void InferenceEngine::EstimateMixedBatch(
    const std::vector<NaruEstimator*>& ests, const std::vector<Query>& queries,
    std::vector<double>* out) {
  NARU_CHECK(ests.size() == queries.size());
  out->assign(queries.size(), 0.0);

  // Group query indices by estimator (queries against the same model share
  // sessions' weights, workspaces, and caches), then serve each group as
  // one batch.
  std::vector<NaruEstimator*> order;
  std::unordered_map<NaruEstimator*, std::vector<size_t>> groups;
  for (size_t i = 0; i < ests.size(); ++i) {
    auto& bucket = groups[ests[i]];
    if (bucket.empty()) order.push_back(ests[i]);
    bucket.push_back(i);
  }
  std::vector<Query> group_queries;
  std::vector<double> group_out;
  for (NaruEstimator* est : order) {
    const auto& idx = groups[est];
    group_queries.clear();
    group_queries.reserve(idx.size());
    for (size_t i : idx) group_queries.push_back(queries[i]);
    EstimateBatch(est, group_queries, &group_out);
    for (size_t k = 0; k < idx.size(); ++k) (*out)[idx[k]] = group_out[k];
  }
}

bool InferenceEngine::ResolveBeforeSampling(NaruEstimator* est,
                                            const Query& query,
                                            const std::string& memo_prefix,
                                            const std::string& query_key,
                                            std::string* memo_key,
                                            double* result) {
  ConditionalModel* model = est->model();
  memo_key->clear();
  if (query.HasEmptyRegion()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.exact_shortcuts;
    *result = 0.0;
    return true;
  }

  const bool use_cache = cfg_.enable_cache;
  if (use_cache) {
    memo_key->reserve(memo_prefix.size() + query_key.size());
    *memo_key += memo_prefix;
    *memo_key += query_key;
    std::lock_guard<std::mutex> lock(mu_);
    if (caches_[model].result_memo.Lookup(*memo_key, result)) {
      ++stats_.memo_hits;
      return true;
    }
    ++stats_.memo_misses;
  }

  if (est->ShouldEnumerate(query)) {
    // Serialized per model (see EnumerationMutexFor); sampling queries
    // keep flowing meanwhile.
    {
      std::lock_guard<std::mutex> lock(EnumerationMutexFor(model));
      *result = EnumerateSelectivity(model, query);
    }
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.enumerated;
  } else {
    // Route on the sampler's own path classification so the engine's fast
    // paths can never diverge from (and therefore always bit-match) the
    // sequential ProgressiveSampler::EstimateWithStdError.
    const ProgressiveSampler::Path path = est->sampler()->Classify(query);
    if (path == ProgressiveSampler::Path::kAllWildcard) {
      *result = 1.0;  // every position wildcard: the walk would exit at once
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.exact_shortcuts;
    } else if (path == ProgressiveSampler::Path::kLeadingOnly) {
      // P̂(X_0 ∈ R_0) depends only on the masked region, so repeated
      // predicate prefixes skip the forward pass entirely.
      const std::string region_key =
          RegionKey(query.region(model->TableColumnOf(0)));
      bool hit = false;
      if (use_cache) {
        std::lock_guard<std::mutex> lock(mu_);
        auto& masses = caches_[model].leading_mass;
        if (masses.Lookup(region_key, result)) {
          hit = true;
          ++stats_.marginal_hits;
          ++stats_.exact_shortcuts;
        } else {
          ++stats_.marginal_misses;
        }
      }
      if (!hit) {
        *result = est->sampler()->LeadingOnlyMass(query);
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.exact_shortcuts;
        if (use_cache) {
          stats_.marginal_evictions += caches_[model].leading_mass.Insert(
              region_key, *result, cfg_.cache_budget_bytes);
        }
      }
    } else {
      return false;  // needs a progressive-sampling walk
    }
  }

  if (use_cache) {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.memo_evictions += caches_[model].result_memo.Insert(
        *memo_key, *result, cfg_.cache_budget_bytes);
  }
  return true;
}

double InferenceEngine::EstimateOne(NaruEstimator* est, const Query& query,
                                    const std::string& memo_prefix,
                                    const std::string& query_key,
                                    size_t sampler_parallelism,
                                    ThreadPool* sampler_pool) {
  std::string memo_key;
  double result;
  if (ResolveBeforeSampling(est, query, memo_prefix, query_key, &memo_key,
                            &result)) {
    return result;
  }

  ProgressiveSampler::RunOptions options;
  options.parallelism = sampler_parallelism;
  options.thread_pool = sampler_pool;
  options.workspaces = &workspaces_;
  result = est->sampler()->EstimateWithOptions(query, nullptr, options);
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.sampled;
  if (cfg_.enable_cache) {
    stats_.memo_evictions += caches_[est->model()].result_memo.Insert(
        memo_key, result, cfg_.cache_budget_bytes);
  }
  return result;
}

void InferenceEngine::EstimatePlanned(NaruEstimator* est,
                                      const std::vector<Query>& queries,
                                      const std::vector<size_t>& reps,
                                      const std::vector<std::string>& memo_keys,
                                      ThreadPool* pool,
                                      std::vector<double>* out) {
  if (reps.empty()) return;
  std::vector<const Query*> sampled;
  sampled.reserve(reps.size());
  for (size_t rep : reps) sampled.push_back(&queries[rep]);

  const ProgressiveSamplerConfig& scfg = est->sampler()->config();
  SamplingPlanOptions plan_opts;
  if (pool != nullptr) {
    // (group, shard) tasks are the parallelism grain: when shards alone
    // cannot cover the pool (few sample paths -> one shard), shrink the
    // group width so the task count does. Grouping is an execution detail
    // — it can never change an estimate — so this cap may depend on the
    // thread count without breaking thread-count invariance.
    const size_t num_shards =
        SamplerNumShards(scfg.num_samples, scfg.shard_size);
    const size_t min_groups =
        (pool->num_threads() + num_shards - 1) / num_shards;
    const size_t width_cap =
        std::max<size_t>(1, (reps.size() + min_groups - 1) / min_groups);
    plan_opts.max_group_width =
        std::min(plan_opts.max_group_width, width_cap);
  }
  const SamplingPlan plan = CompileSamplingPlan(est->model(), sampled, plan_opts);
  PlanExecutionOptions popts;
  popts.num_samples = scfg.num_samples;
  popts.shard_size = scfg.shard_size;
  popts.seed = scfg.seed;
  // When the engine is serial (pool == nullptr) the caller already holds a
  // ScopedSerialRegion and the executor runs inline; otherwise (group,
  // shard) tasks spread across the engine's pool.
  popts.parallelism = pool == nullptr ? 1 : 0;
  popts.thread_pool = pool;
  popts.workspaces = &workspaces_;

  std::vector<double> estimates;
  ExecuteSamplingPlan(est->model(), plan, popts, &estimates);

  std::lock_guard<std::mutex> lock(mu_);
  stats_.sampled += reps.size();
  stats_.planned_queries += reps.size();
  ++stats_.plan_batches;
  stats_.plan_groups += plan.groups.size();
  stats_.plan_shared_cols += plan.SharedPrefixColumns();
  stats_.plan_walk_cols += plan.WalkColumns();
  auto& memo = caches_[est->model()].result_memo;
  for (size_t i = 0; i < reps.size(); ++i) {
    (*out)[reps[i]] = estimates[i];
    if (cfg_.enable_cache) {
      stats_.memo_evictions +=
          memo.Insert(memo_keys[i], estimates[i], cfg_.cache_budget_bytes);
    }
  }
}

}  // namespace naru
