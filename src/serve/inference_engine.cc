#include "serve/inference_engine.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <limits>

#include "core/enumerator.h"
#include "plan/plan_executor.h"
#include "plan/sampling_plan.h"
#include "serve/query_key.h"
#include "util/string_util.h"

namespace naru {

namespace {

// Enumeration runs LogProbRows through the model's shared scratch buffers,
// so it must be serialized PER MODEL, not per engine: two engines (e.g.
// two estimators' private engines) may serve one model concurrently. The
// registry leaks one mutex per model pointer ever enumerated — bounded and
// harmless (address reuse just shares a mutex).
Mutex& EnumerationMutexFor(const ConditionalModel* model) {
  static Mutex registry_mu;
  static auto* registry =
      new std::unordered_map<const ConditionalModel*, std::unique_ptr<Mutex>>();
  MutexLock lock(&registry_mu);
  auto& slot = (*registry)[model];
  if (slot == nullptr) slot = std::make_unique<Mutex>();
  return *slot;
}

// The config-dependent memo-key prefix: sampled estimates depend on the
// estimator's sampling configuration — and on the request's effective
// sample budget — not only on the model: two estimators wrapping one
// model (e.g. Naru-1000 and Naru-4000), or two requests for one query
// with different per-request budgets, must never share entries. Built
// once per (batch, budget), not once per request. Also used as the budget
// component of the duplicate-coalescing key, so it is computed even when
// caching is off.
std::string MemoPrefix(const NaruEstimatorConfig& cfg, size_t eff_samples) {
  // shard_size is part of the key: the shard layout defines the RNG
  // streams, so two estimators differing only in it produce different
  // sampled estimates. The kernel is part of the key because simd /
  // simd_int8 estimates are not bit-identical to scalar ones.
  return StrFormat("%zu|%zu|%llu|%zu|%d|%d|", eff_samples,
                   cfg.enumeration_threshold,
                   static_cast<unsigned long long>(cfg.sampler_seed),
                   cfg.shard_size, cfg.uniform_region ? 1 : 0,
                   static_cast<int>(cfg.kernel));
}

double ElapsedMs(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - since)
      .count();
}

}  // namespace

InferenceEngine::InferenceEngine(InferenceEngineConfig config)
    : cfg_(config) {
  if (cfg_.num_threads > 1) {
    own_pool_ = std::make_unique<ThreadPool>(cfg_.num_threads);
  }
}

InferenceEngine::~InferenceEngine() = default;

ThreadPool* InferenceEngine::pool() const {
  if (cfg_.num_threads == 1) return nullptr;
  if (own_pool_ != nullptr) return own_pool_.get();
  return GlobalThreadPool();
}

size_t InferenceEngine::num_threads() const {
  ThreadPool* p = pool();
  return p == nullptr ? 1 : p->num_threads();
}

EngineStats InferenceEngine::stats() const {
  MutexLock lock(&mu_);
  EngineStats snapshot = stats_;
  for (const auto& [model, cache] : caches_) {
    (void)model;
    snapshot.memo_entries += cache.result_memo.entries();
    snapshot.memo_bytes += cache.result_memo.bytes();
    snapshot.marginal_entries += cache.leading_mass.entries();
    snapshot.marginal_bytes += cache.leading_mass.bytes();
  }
  snapshot.workspaces_created = workspaces_.total_created();
  for (size_t c = 0; c < class_compute_.size(); ++c) {
    ClassLatencyStats& cls = snapshot.class_latency[c];
    cls.results = class_compute_[c].count();
    cls.compute_p50_ms = class_compute_[c].Quantile(0.5);
    cls.compute_p99_ms = class_compute_[c].Quantile(0.99);
    cls.compute_max_ms = class_compute_[c].max_ms();
  }
  return snapshot;
}

std::string FormatEngineStats(const EngineStats& stats) {
  std::string out;
  out += StrFormat(
      "# engine: %zu queries (%zu sampled, %zu enumerated, %zu exact "
      "shortcuts, %zu shed on deadline, %zu abandoned mid-walk, %zu shed "
      "at admission)\n",
      stats.queries, stats.sampled, stats.enumerated, stats.exact_shortcuts,
      stats.shed_deadline, stats.shed_midwalk, stats.shed_admission);
  out += StrFormat(
      "# results: %zu cache_hit / %zu exact / %zu enumerated / %zu sampled "
      "/ %zu planned_group / %zu shed; %zu priority flushes\n",
      stats.results_cache_hit, stats.results_exact, stats.results_enumerated,
      stats.results_sampled, stats.results_planned, stats.results_shed,
      stats.priority_flushes);
  out += StrFormat(
      "# caches: memo %zu hits / %zu misses / %zu evictions (%zu entries, "
      "%.1f KB), marginal %zu hits / %zu misses / %zu evictions (%zu "
      "entries, %.1f KB)\n",
      stats.memo_hits, stats.memo_misses, stats.memo_evictions,
      stats.memo_entries, stats.memo_bytes / 1024.0, stats.marginal_hits,
      stats.marginal_misses, stats.marginal_evictions, stats.marginal_entries,
      stats.marginal_bytes / 1024.0);
  out += StrFormat(
      "# plans: %zu queries in %zu trees over %zu batches, avg tree %.1f, "
      "prefix-share ratio %.3f (%zu of %zu column walks shared)\n",
      stats.planned_queries, stats.plan_trees, stats.plan_batches,
      stats.plan_trees == 0 ? 0.0
                            : static_cast<double>(stats.planned_queries) /
                                  static_cast<double>(stats.plan_trees),
      stats.prefix_share_ratio(), stats.plan_shared_cols,
      stats.plan_walk_cols);
  out += StrFormat(
      "# plan trees: max fork depth %zu, max fanout %zu, shared cols %zu "
      "vs %zu flat-equivalent (+%zu from multi-depth/constrained sharing)\n",
      stats.plan_max_depth, stats.plan_max_fanout, stats.plan_shared_cols,
      stats.plan_flat_shared_cols,
      stats.plan_shared_cols -
          std::min(stats.plan_flat_shared_cols, stats.plan_shared_cols));
  out += StrFormat("# workspaces created: %zu\n", stats.workspaces_created);
  if (stats.shed_expired_victims > 0) {
    out += StrFormat(
        "# admission victims already expired when evicted: %zu\n",
        stats.shed_expired_victims);
  }
  static const char* kClassNames[3] = {"low", "normal", "high"};
  for (size_t c = 0; c < stats.class_latency.size(); ++c) {
    const ClassLatencyStats& cls = stats.class_latency[c];
    if (cls.results == 0 && cls.queued == 0) continue;
    out += StrFormat(
        "# class %-6s %zu results, compute p50/p99/max %.3f/%.3f/%.3f ms",
        kClassNames[c], cls.results, cls.compute_p50_ms, cls.compute_p99_ms,
        cls.compute_max_ms);
    if (cls.queued > 0) {
      out += StrFormat(", queue (%zu measured) p50/p99/max %.3f/%.3f/%.3f ms",
                       cls.queued, cls.queue_p50_ms, cls.queue_p99_ms,
                       cls.queue_max_ms);
    }
    out += "\n";
  }
  return out;
}

void InferenceEngine::ClearCaches() {
  MutexLock lock(&mu_);
  caches_.clear();
  stats_ = EngineStats{};
  for (LatencyHistogram& h : class_compute_) h.Clear();
}

void InferenceEngine::ClearCachesFor(const ConditionalModel* model) {
  MutexLock lock(&mu_);
  caches_.erase(model);
}

void InferenceEngine::EstimateBatch(NaruEstimator* est,
                                    const std::vector<Query>& queries,
                                    std::vector<double>* out) {
  std::vector<EstimateRequest> requests;
  requests.reserve(queries.size());
  for (const Query& q : queries) requests.emplace_back(q);
  std::vector<EstimateResult> results;
  EstimateBatch(est, requests, &results);
  out->resize(results.size());
  for (size_t i = 0; i < results.size(); ++i) {
    // Default options carry no deadline, so nothing can shed: every
    // result is OK by construction.
    (*out)[i] = results[i].estimate;
  }
}

void InferenceEngine::EstimateBatch(NaruEstimator* est,
                                    const std::vector<EstimateRequest>& requests,
                                    std::vector<EstimateResult>* out) {
  const size_t n = requests.size();
  out->assign(n, EstimateResult{});
  {
    MutexLock lock(&mu_);
    stats_.queries += n;
  }
  if (n == 0) return;
  const auto compute_start = std::chrono::steady_clock::now();

  // Shed pass: a request whose deadline has already passed costs nothing
  // beyond this check — no key, no cache traffic, no walk. Checked once
  // per batch (the deadline is soft; in-batch compute is never cancelled).
  std::vector<uint8_t> live(n, 1);
  size_t shed_count = 0;
  for (size_t i = 0; i < n; ++i) {
    if (requests[i].options.ExpiredAt(compute_start)) {
      live[i] = 0;
      (*out)[i].status =
          Status::DeadlineExceeded("deadline expired before dispatch");
      (*out)[i].provenance = ResultProvenance::kShed;
      ++shed_count;
    }
  }

  const auto tally = [&] {
    MutexLock lock(&mu_);
    stats_.shed_deadline += shed_count;
    for (size_t i = 0; i < n; ++i) {
      // Per-class compute attribution (duplicates inherit their
      // representative's compute_ms — they received that computation).
      const auto cls = std::min<size_t>(
          static_cast<size_t>(requests[i].options.priority),
          class_compute_.size() - 1);
      class_compute_[cls].Add((*out)[i].compute_ms);
    }
    for (const EstimateResult& r : *out) {
      switch (r.provenance) {
        case ResultProvenance::kCacheHit: ++stats_.results_cache_hit; break;
        case ResultProvenance::kExact: ++stats_.results_exact; break;
        case ResultProvenance::kEnumerated: ++stats_.results_enumerated; break;
        case ResultProvenance::kSampled: ++stats_.results_sampled; break;
        case ResultProvenance::kPlannedGroup: ++stats_.results_planned; break;
        case ResultProvenance::kShed: ++stats_.results_shed; break;
        case ResultProvenance::kUnknown: break;
      }
    }
  };
  if (shed_count == n) {
    tally();
    return;
  }

  // A caller-established serial region wins over the engine's own thread
  // configuration — the same coarser-grain-wins rule the sampler follows.
  ThreadPool* p = ScopedSerialRegion::Active() ? nullptr : pool();
  const bool concurrent = est->model()->SupportsConcurrentSampling();

  // ONE keyed pass over the batch: each request's full memo key — the
  // config/budget prefix plus the canonical query bytes — is built
  // exactly once here and reused for (a) duplicate coalescing and (b)
  // every cache interaction below. Canonical bytes arriving in
  // request.key (serialized upstream by AsyncEngine::Submit) are reused
  // instead of re-serialized. The prefix embeds the effective per-request
  // sample budget, so two requests for one query with different budgets
  // never coalesce and never share memo entries.
  //
  // Coalescing duplicates up front matters because k copies of one
  // uncached query would otherwise cost k full walks (k workers all miss
  // the memo before any finishes) — on exactly the repeated-template
  // traces the engine serves. Coalescing is exact (identical queries get
  // the one deterministic result), so it stays on even when caching is
  // disabled.
  // Requests coalesce only when key AND cache policy agree: the
  // representative's policy governs the computation's cache interaction,
  // so folding a kBypass request onto a kReadWrite twin (or vice versa)
  // would make the policy order-dependent. Policies do NOT enter the memo
  // key — read-write and read-only requests share memo entries.
  constexpr size_t kNoRep = static_cast<size_t>(-1);
  constexpr size_t kNumPolicies = 3;
  constexpr auto kNoDeadline = EstimateOptions::kNoDeadline;
  std::vector<std::string> keys(n);
  std::vector<size_t> eff(n, 0);
  std::unordered_map<size_t, std::string> prefixes;  // budget -> prefix
  std::unordered_map<std::string_view, std::array<size_t, kNumPolicies>>
      first_index;  // key -> representative per cache policy
  std::vector<size_t> reps;          // one representative per distinct key
  std::vector<size_t> dup_of(n);     // representative index per request
  // Mid-walk abandonment instant per COMPUTATION (indexed by rep): the
  // LATEST deadline over every request coalesced into it, so a shared
  // walk is abandoned only once every interested request has expired —
  // one deadline-free duplicate (kNoDeadline = max()) pins it to "never".
  // This is the per-computation analogue of PlanTree::abandon_deadline.
  std::vector<std::chrono::steady_clock::time_point> rep_deadline(n,
                                                                  kNoDeadline);
  reps.reserve(n);
  first_index.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    dup_of[i] = i;
    if (!live[i]) continue;
    eff[i] = requests[i].options.EffectiveSamples(est->config().num_samples);
    auto [pit, inserted_prefix] = prefixes.try_emplace(eff[i]);
    if (inserted_prefix) pit->second = MemoPrefix(est->config(), eff[i]);
    const std::string& prefix = pit->second;
    const std::string& query_bytes = requests[i].key;
    keys[i].reserve(prefix.size() +
                    (query_bytes.empty() ? 32 : query_bytes.size()));
    keys[i] = prefix;
    if (query_bytes.empty()) {
      AppendQueryKey(requests[i].query, &keys[i]);
    } else {
      keys[i] += query_bytes;
    }
    const size_t policy =
        std::min(static_cast<size_t>(requests[i].options.cache_policy),
                 kNumPolicies - 1);
    auto [it, inserted] = first_index.try_emplace(
        std::string_view(keys[i]),
        std::array<size_t, kNumPolicies>{kNoRep, kNoRep, kNoRep});
    (void)inserted;
    size_t& slot = it->second[policy];
    if (slot == kNoRep) {
      slot = i;
      reps.push_back(i);
      rep_deadline[i] = requests[i].options.deadline;
    } else {
      rep_deadline[slot] =
          std::max(rep_deadline[slot], requests[i].options.deadline);
    }
    dup_of[i] = slot;
  }
  const size_t m = reps.size();

  // The distinct-request compute. The representative's cache policy
  // governs the computation; duplicates only copy its result.
  const auto run_reps = [&] {
    // Planned route: resolve every distinct request through the exact
    // fast paths (memo, empty, enumeration, wildcard exits,
    // leading-only), then compile the sampled remainder into ONE
    // SamplingPlan for the whole batch — queries grouped by shared
    // leading-wildcard prefix WITHIN each budget class, one prefix walk
    // per (shard, group), per-column forward passes fused into stacked
    // GEMMs. Requires pure stackable sessions; the uniform-region
    // strawman takes none of the walk structure the plan exploits.
    if (cfg_.enable_plan && est->model()->SupportsStackedEvaluation() &&
        !est->sampler()->config().uniform_region) {
      std::vector<SampledRep> sampled;
      for (size_t k = 0; k < m; ++k) {
        const size_t i = reps[k];
        // Phase attribution: a rep resolved here (cache hit, shortcut,
        // enumeration) is charged ONLY its own resolution time — never
        // the batch's sampling segment. That is the headline fix: a
        // cache hit used to report the whole batch's walk time.
        const auto resolve_start = std::chrono::steady_clock::now();
        if (ResolveBeforeSampling(est, requests[i].query, keys[i],
                                  requests[i].options.cache_policy,
                                  rep_deadline[i], &(*out)[i])) {
          (*out)[i].compute_ms = ElapsedMs(resolve_start);
        } else {
          SampledRep rep;
          rep.index = i;
          rep.memo_key = keys[i];
          rep.budget = eff[i];
          rep.policy = requests[i].options.cache_policy;
          rep.deadline = rep_deadline[i];
          rep.resolve_ms = ElapsedMs(resolve_start);
          sampled.push_back(std::move(rep));
        }
      }
      EstimatePlanned(est, requests, sampled, p, out);
      return;
    }

    // Legacy route (models without stackable sessions, uniform-region, or
    // enable_plan off): the schedule is chosen on the COALESCED width — a
    // batch of 64 requests over 2 distinct templates is 2 queries' worth
    // of work and should shard each walk across the pool, not park it on
    // 2 of N workers.
    if (p != nullptr && concurrent && m >= p->num_threads() && m > 1) {
      // Wide batches: one distinct query per worker, sampler serial
      // within a query. Queries are independent and every cached value is
      // exact, so the schedule cannot affect results.
      p->ParallelFor(
          0, m,
          [&](size_t lo, size_t hi) {
            ScopedSerialRegion serial;
            for (size_t k = lo; k < hi; ++k) {
              const size_t i = reps[k];
              EstimateOne(est, requests[i].query, keys[i], eff[i],
                          requests[i].options.cache_policy, rep_deadline[i],
                          /*sampler_parallelism=*/1,
                          /*sampler_pool=*/nullptr, &(*out)[i]);
            }
          },
          /*min_chunk=*/1);
    } else {
      for (size_t k = 0; k < m; ++k) {
        const size_t i = reps[k];
        EstimateOne(est, requests[i].query, keys[i], eff[i],
                    requests[i].options.cache_policy, rep_deadline[i],
                    /*sampler_parallelism=*/p == nullptr ? 1 : 0,
                    /*sampler_pool=*/p, &(*out)[i]);
      }
    }
  };
  if (p == nullptr) {
    // Strictly serial: one serial region over the whole batch keeps every
    // kernel inline (the num_threads=1 contract) — including the
    // enumeration and leading-only paths, whose kernels would otherwise
    // fan out to the global pool.
    ScopedSerialRegion serial;
    run_reps();
  } else {
    run_reps();
  }

  // compute_ms was attributed per phase above (each request's own resolve
  // / walk / fused segment), NOT stamped batch-wide: a cache hit must not
  // report a 1000-sample walk's cost. Duplicates inherit their
  // representative's attribution — they received that computation.
  for (size_t i = 0; i < n; ++i) {
    if (dup_of[i] != i) (*out)[i] = (*out)[dup_of[i]];
  }
  tally();
}

void InferenceEngine::EstimateMixedBatch(
    const std::vector<NaruEstimator*>& ests,
    const std::vector<EstimateRequest>& requests,
    std::vector<EstimateResult>* out) {
  NARU_CHECK(ests.size() == requests.size());
  out->assign(requests.size(), EstimateResult{});

  // Group request indices by estimator (queries against the same model
  // share sessions' weights, workspaces, and caches), then serve each
  // group as one batch.
  std::vector<NaruEstimator*> order;
  std::unordered_map<NaruEstimator*, std::vector<size_t>> groups;
  for (size_t i = 0; i < ests.size(); ++i) {
    auto& bucket = groups[ests[i]];
    if (bucket.empty()) order.push_back(ests[i]);
    bucket.push_back(i);
  }
  std::vector<EstimateRequest> group_requests;
  std::vector<EstimateResult> group_out;
  for (NaruEstimator* est : order) {
    const auto& idx = groups[est];
    group_requests.clear();
    group_requests.reserve(idx.size());
    for (size_t i : idx) group_requests.push_back(requests[i]);
    EstimateBatch(est, group_requests, &group_out);
    for (size_t k = 0; k < idx.size(); ++k) {
      (*out)[idx[k]] = std::move(group_out[k]);
    }
  }
}

void InferenceEngine::EstimateMixedBatch(
    const std::vector<NaruEstimator*>& ests, const std::vector<Query>& queries,
    std::vector<double>* out) {
  std::vector<EstimateRequest> requests;
  requests.reserve(queries.size());
  for (const Query& q : queries) requests.emplace_back(q);
  std::vector<EstimateResult> results;
  EstimateMixedBatch(ests, requests, &results);
  out->resize(results.size());
  for (size_t i = 0; i < results.size(); ++i) {
    (*out)[i] = results[i].estimate;
  }
}

bool InferenceEngine::ResolveBeforeSampling(
    NaruEstimator* est, const Query& query, const std::string& memo_key,
    CachePolicy cache_policy, std::chrono::steady_clock::time_point deadline,
    EstimateResult* result) {
  ConditionalModel* model = est->model();
  result->status = Status::OK();
  result->std_error = 0.0;
  result->samples_used = 0;
  if (query.HasEmptyRegion()) {
    MutexLock lock(&mu_);
    ++stats_.exact_shortcuts;
    result->estimate = 0.0;
    result->provenance = ResultProvenance::kExact;
    return true;
  }

  // A per-request policy can only restrict what the engine-level switch
  // allows: kReadOnly serves hot entries without polluting the working
  // set, kBypass recomputes (to the bit-identical value) end to end.
  const bool cache_lookup =
      cfg_.enable_cache && cache_policy != CachePolicy::kBypass;
  const bool cache_store =
      cfg_.enable_cache && cache_policy == CachePolicy::kReadWrite;
  if (cache_lookup) {
    MutexLock lock(&mu_);
    if (caches_[model].result_memo.Lookup(memo_key, &result->estimate)) {
      ++stats_.memo_hits;
      result->provenance = ResultProvenance::kCacheHit;
      return true;
    }
    ++stats_.memo_misses;
  }

  if (est->ShouldEnumerate(query)) {
    // Serialized per model (see EnumerationMutexFor); sampling queries
    // keep flowing meanwhile. The computation's deadline (max over
    // coalesced duplicates) propagates in: expiry is re-checked between
    // LogProbRows batches and the enumeration abandoned once it passes —
    // the exact-path analogue of a mid-walk abandonment.
    bool enum_abandoned = false;
    {
      MutexLock lock(&EnumerationMutexFor(model));
      result->estimate = EnumerateSelectivity(model, query, /*batch=*/2048,
                                              deadline, &enum_abandoned);
    }
    if (enum_abandoned) {
      result->estimate = std::numeric_limits<double>::quiet_NaN();
      result->std_error = 0.0;
      result->status =
          Status::DeadlineExceeded("deadline expired mid-enumeration");
      result->provenance = ResultProvenance::kShed;
      MutexLock lock(&mu_);
      ++stats_.shed_midwalk;  // never memoized: there is no value to store
      return true;
    }
    result->provenance = ResultProvenance::kEnumerated;
    MutexLock lock(&mu_);
    ++stats_.enumerated;
  } else {
    // Route on the sampler's own path classification so the engine's fast
    // paths can never diverge from (and therefore always bit-match) the
    // sequential ProgressiveSampler::EstimateWithStdError.
    const ProgressiveSampler::Path path = est->sampler()->Classify(query);
    if (path == ProgressiveSampler::Path::kAllWildcard) {
      result->estimate = 1.0;  // every position wildcard: immediate exit
      result->provenance = ResultProvenance::kExact;
      MutexLock lock(&mu_);
      ++stats_.exact_shortcuts;
    } else if (path == ProgressiveSampler::Path::kLeadingOnly) {
      // P̂(X_0 ∈ R_0) depends only on the masked region, so repeated
      // predicate prefixes skip the forward pass entirely.
      const std::string region_key =
          RegionKey(query.region(model->TableColumnOf(0)));
      result->provenance = ResultProvenance::kExact;
      bool hit = false;
      if (cache_lookup) {
        MutexLock lock(&mu_);
        auto& masses = caches_[model].leading_mass;
        if (masses.Lookup(region_key, &result->estimate)) {
          hit = true;
          ++stats_.marginal_hits;
          ++stats_.exact_shortcuts;
        } else {
          ++stats_.marginal_misses;
        }
      }
      if (!hit) {
        result->estimate = est->sampler()->LeadingOnlyMass(query);
        MutexLock lock(&mu_);
        ++stats_.exact_shortcuts;
        if (cache_store) {
          stats_.marginal_evictions += caches_[model].leading_mass.Insert(
              region_key, result->estimate, cfg_.cache_budget_bytes);
        }
      }
    } else {
      return false;  // needs a progressive-sampling walk
    }
  }

  if (cache_store) {
    MutexLock lock(&mu_);
    stats_.memo_evictions += caches_[model].result_memo.Insert(
        memo_key, result->estimate, cfg_.cache_budget_bytes);
  }
  return true;
}

void InferenceEngine::EstimateOne(NaruEstimator* est, const Query& query,
                                  const std::string& memo_key,
                                  size_t eff_samples, CachePolicy cache_policy,
                                  std::chrono::steady_clock::time_point deadline,
                                  size_t sampler_parallelism,
                                  ThreadPool* sampler_pool,
                                  EstimateResult* result) {
  // Per-request attribution: this call's own wall time is the request's
  // compute_ms — a memo hit reports its lookup, a walk its sampling.
  const auto start = std::chrono::steady_clock::now();
  if (ResolveBeforeSampling(est, query, memo_key, cache_policy, deadline,
                            result)) {
    result->compute_ms = ElapsedMs(start);
    return;
  }

  ProgressiveSampler::RunOptions options;
  options.parallelism = sampler_parallelism;
  options.thread_pool = sampler_pool;
  options.workspaces = &workspaces_;
  options.num_samples = eff_samples;
  // Mid-walk abandonment: the sampler re-checks `deadline` between
  // column steps. It is the latest deadline over every request coalesced
  // into this computation, so abandonment means every one of them had
  // expired.
  bool abandoned = false;
  options.deadline = deadline;
  options.abandoned = &abandoned;
  result->estimate =
      est->sampler()->EstimateWithOptions(query, &result->std_error, options);
  if (abandoned) {
    result->estimate = std::numeric_limits<double>::quiet_NaN();
    result->std_error = 0.0;
    result->status = Status::DeadlineExceeded("deadline expired mid-walk");
    result->provenance = ResultProvenance::kShed;
    result->samples_used = 0;
    result->compute_ms = ElapsedMs(start);  // the burn before abandoning
    MutexLock lock(&mu_);
    ++stats_.shed_midwalk;  // never memoized: there is no value to store
    return;
  }
  result->provenance = ResultProvenance::kSampled;
  result->samples_used = eff_samples;
  result->compute_ms = ElapsedMs(start);
  MutexLock lock(&mu_);
  ++stats_.sampled;
  if (cfg_.enable_cache && cache_policy == CachePolicy::kReadWrite) {
    stats_.memo_evictions += caches_[est->model()].result_memo.Insert(
        memo_key, result->estimate, cfg_.cache_budget_bytes);
  }
}

void InferenceEngine::EstimatePlanned(
    NaruEstimator* est, const std::vector<EstimateRequest>& requests,
    const std::vector<SampledRep>& reps, ThreadPool* pool,
    std::vector<EstimateResult>* out) {
  if (reps.empty()) return;
  const auto segment_start = std::chrono::steady_clock::now();
  std::vector<const Query*> sampled;
  sampled.reserve(reps.size());
  for (const SampledRep& rep : reps) {
    sampled.push_back(&requests[rep.index].query);
  }

  const ProgressiveSamplerConfig& scfg = est->sampler()->config();
  SamplingPlanOptions plan_opts;
  plan_opts.mode = cfg_.plan_mode;
  // Fork fan-out cap: pinned by config, or auto-tuned so stacked GEMM
  // shapes suit the model's hidden width, the active kernel, and the
  // shard size. Execution-only — the cap can never change an estimate.
  plan_opts.max_group_width =
      cfg_.group_width != 0
          ? cfg_.group_width
          : AutoGroupWidth(est->model()->StackedWidthHint(),
                           est->model()->inference_kernel(), scfg.shard_size);
  plan_opts.budgets.reserve(reps.size());
  plan_opts.deadlines.reserve(reps.size());
  for (const SampledRep& rep : reps) {
    plan_opts.budgets.push_back(rep.budget);  // never fused across budgets
    // Scheduling-only metadata: a group is abandonable once EVERY
    // member's (coalesced-max) deadline has passed.
    plan_opts.deadlines.push_back(rep.deadline);
  }
  if (pool != nullptr) {
    // (tree, shard) tasks are the parallelism grain: when shards alone
    // cannot cover the pool (few sample paths -> one shard), shrink the
    // tree width so the task count does. Tree shape is an execution
    // detail — it can never change an estimate — so this cap may depend
    // on the thread count without breaking thread-count invariance. (The
    // cap is sized from the estimator's default budget; per-request
    // budgets only shift how many shards each tree happens to have.)
    const size_t num_shards =
        SamplerNumShards(scfg.num_samples, scfg.shard_size);
    const size_t min_groups =
        (pool->num_threads() + num_shards - 1) / num_shards;
    const size_t width_cap =
        std::max<size_t>(1, (reps.size() + min_groups - 1) / min_groups);
    plan_opts.max_group_width =
        std::min(plan_opts.max_group_width, width_cap);
  }
  const SamplingPlan plan = CompileSamplingPlan(est->model(), sampled, plan_opts);
  PlanExecutionOptions popts;
  popts.num_samples = scfg.num_samples;
  popts.shard_size = scfg.shard_size;
  popts.seed = scfg.seed;
  // When the engine is serial (pool == nullptr) the caller already holds a
  // ScopedSerialRegion and the executor runs inline; otherwise (group,
  // shard) tasks spread across the engine's pool.
  popts.parallelism = pool == nullptr ? 1 : 0;
  popts.thread_pool = pool;
  popts.workspaces = &workspaces_;

  std::vector<double> estimates;
  std::vector<double> std_errors;
  std::vector<Status> statuses;
  ExecuteSamplingPlan(est->model(), plan, popts, &estimates, &std_errors,
                      &statuses);
  // The fused segment is shared work: every rep that sampled through it
  // is charged the segment's elapsed time on top of its own resolve time.
  const double segment_ms = ElapsedMs(segment_start);

  MutexLock lock(&mu_);
  stats_.planned_queries += reps.size();
  ++stats_.plan_batches;
  stats_.plan_trees += plan.trees.size();
  stats_.plan_shared_cols += plan.SharedColumns();
  stats_.plan_flat_shared_cols += plan.FlatSharedColumns();
  stats_.plan_walk_cols += plan.WalkColumns();
  stats_.plan_max_depth = std::max(stats_.plan_max_depth, plan.MaxForkDepth());
  stats_.plan_max_fanout = std::max(stats_.plan_max_fanout, plan.MaxFanout());
  auto& memo = caches_[est->model()].result_memo;
  for (size_t i = 0; i < reps.size(); ++i) {
    EstimateResult& r = (*out)[reps[i].index];
    r.compute_ms = reps[i].resolve_ms + segment_ms;
    if (!statuses[i].ok()) {
      // Group abandoned mid-walk: every sharer had expired. Typed, never
      // memoized (there is no value), NaN estimate.
      r.estimate = std::numeric_limits<double>::quiet_NaN();
      r.std_error = 0.0;
      r.status = statuses[i];
      r.provenance = ResultProvenance::kShed;
      r.samples_used = 0;
      ++stats_.shed_midwalk;
      continue;
    }
    ++stats_.sampled;
    r.estimate = estimates[i];
    r.std_error = std_errors[i];
    r.status = Status::OK();
    r.provenance = ResultProvenance::kPlannedGroup;
    r.samples_used = reps[i].budget;
    if (cfg_.enable_cache && reps[i].policy == CachePolicy::kReadWrite) {
      stats_.memo_evictions += memo.Insert(reps[i].memo_key, estimates[i],
                                           cfg_.cache_budget_bytes);
    }
  }
}

}  // namespace naru
