#include "serve/inference_engine.h"

#include <algorithm>

#include "core/enumerator.h"
#include "serve/query_key.h"
#include "util/string_util.h"

namespace naru {

namespace {

// Enumeration runs LogProbRows through the model's shared scratch buffers,
// so it must be serialized PER MODEL, not per engine: two engines (e.g.
// two estimators' private engines) may serve one model concurrently. The
// registry leaks one mutex per model pointer ever enumerated — bounded and
// harmless (address reuse just shares a mutex).
std::mutex& EnumerationMutexFor(const ConditionalModel* model) {
  static std::mutex registry_mu;
  static auto* registry =
      new std::unordered_map<const ConditionalModel*,
                             std::unique_ptr<std::mutex>>();
  std::lock_guard<std::mutex> lock(registry_mu);
  auto& slot = (*registry)[model];
  if (slot == nullptr) slot = std::make_unique<std::mutex>();
  return *slot;
}

// The config-dependent memo-key prefix: sampled estimates depend on the
// estimator's sampling configuration, not only on the model — two
// estimators wrapping one model (e.g. Naru-1000 and Naru-4000) must never
// share memo entries. Built once per batch, not once per query.
std::string MemoPrefix(const NaruEstimatorConfig& cfg) {
  return StrFormat("%zu|%zu|%llu|%d|", cfg.num_samples,
                   cfg.enumeration_threshold,
                   static_cast<unsigned long long>(cfg.sampler_seed),
                   cfg.uniform_region ? 1 : 0);
}

}  // namespace

InferenceEngine::InferenceEngine(InferenceEngineConfig config)
    : cfg_(config) {
  if (cfg_.num_threads > 1) {
    own_pool_ = std::make_unique<ThreadPool>(cfg_.num_threads);
  }
}

InferenceEngine::~InferenceEngine() = default;

ThreadPool* InferenceEngine::pool() const {
  if (cfg_.num_threads == 1) return nullptr;
  if (own_pool_ != nullptr) return own_pool_.get();
  return GlobalThreadPool();
}

size_t InferenceEngine::num_threads() const {
  ThreadPool* p = pool();
  return p == nullptr ? 1 : p->num_threads();
}

EngineStats InferenceEngine::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  EngineStats snapshot = stats_;
  for (const auto& [model, cache] : caches_) {
    (void)model;
    snapshot.memo_entries += cache.result_memo.entries();
    snapshot.memo_bytes += cache.result_memo.bytes();
    snapshot.marginal_entries += cache.leading_mass.entries();
    snapshot.marginal_bytes += cache.leading_mass.bytes();
  }
  return snapshot;
}

void InferenceEngine::ClearCaches() {
  std::lock_guard<std::mutex> lock(mu_);
  caches_.clear();
  stats_ = EngineStats{};
}

void InferenceEngine::ClearCachesFor(const ConditionalModel* model) {
  std::lock_guard<std::mutex> lock(mu_);
  caches_.erase(model);
}

void InferenceEngine::EstimateBatch(NaruEstimator* est,
                                    const std::vector<Query>& queries,
                                    std::vector<double>* out) {
  const size_t n = queries.size();
  out->assign(n, 0.0);
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.queries += n;
  }
  if (n == 0) return;

  // A caller-established serial region wins over the engine's own thread
  // configuration — the same coarser-grain-wins rule the sampler follows.
  ThreadPool* p = ScopedSerialRegion::Active() ? nullptr : pool();
  const bool concurrent = est->model()->SupportsConcurrentSampling();

  // ONE keyed pass over the batch: each query's canonical key is built
  // exactly once here and reused for (a) duplicate coalescing and (b) the
  // memo lookup inside EstimateOne — the sequential code used to rebuild
  // it per call. The config-dependent memo prefix is likewise hoisted to
  // once per batch.
  //
  // Coalescing duplicates up front matters because k copies of one
  // uncached query would otherwise cost k full walks (k workers all miss
  // the memo before any finishes) — on exactly the repeated-template
  // traces the engine serves. Coalescing is exact (identical queries get
  // the one deterministic result), so it stays on even when caching is
  // disabled.
  std::vector<std::string> keys(n);
  std::unordered_map<std::string_view, size_t> first_index;
  std::vector<size_t> reps;          // one representative per distinct key
  std::vector<size_t> dup_of(n, 0);  // representative index per query
  reps.reserve(n);
  first_index.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    keys[i] = QueryKey(queries[i]);
    const auto [it, inserted] =
        first_index.emplace(std::string_view(keys[i]), i);
    if (inserted) reps.push_back(i);
    dup_of[i] = it->second;
  }
  const size_t m = reps.size();
  const std::string memo_prefix =
      cfg_.enable_cache ? MemoPrefix(est->config()) : std::string();

  // The schedule is chosen on the COALESCED width: a batch of 64 requests
  // over 2 distinct templates is 2 queries' worth of work and should shard
  // each walk across the pool, not park it on 2 of N workers.
  if (p != nullptr && concurrent && m >= p->num_threads() && m > 1) {
    // Wide batches: one distinct query per worker, sampler serial within a
    // query. Queries are independent and every cached value is exact, so
    // the schedule cannot affect results.
    p->ParallelFor(
        0, m,
        [&](size_t lo, size_t hi) {
          ScopedSerialRegion serial;
          for (size_t k = lo; k < hi; ++k) {
            (*out)[reps[k]] =
                EstimateOne(est, queries[reps[k]], memo_prefix, keys[reps[k]],
                            /*sampler_parallelism=*/1,
                            /*sampler_pool=*/nullptr);
          }
        },
        /*min_chunk=*/1);
  } else if (p == nullptr) {
    // Strictly serial: hold a serial region across the whole batch so the
    // enumeration and leading-only paths (whose kernels would otherwise
    // fan out to the global pool) honor the num_threads=1 contract too.
    ScopedSerialRegion serial;
    for (size_t k = 0; k < m; ++k) {
      (*out)[reps[k]] = EstimateOne(est, queries[reps[k]], memo_prefix,
                                    keys[reps[k]],
                                    /*sampler_parallelism=*/1,
                                    /*sampler_pool=*/nullptr);
    }
  } else {
    // Narrow batches (or a non-concurrent model): distinct queries run in
    // order; each query's sample-path shards use the engine's pool.
    for (size_t k = 0; k < m; ++k) {
      (*out)[reps[k]] = EstimateOne(est, queries[reps[k]], memo_prefix,
                                    keys[reps[k]],
                                    /*sampler_parallelism=*/0, p);
    }
  }
  for (size_t i = 0; i < n; ++i) (*out)[i] = (*out)[dup_of[i]];
}

void InferenceEngine::EstimateMixedBatch(
    const std::vector<NaruEstimator*>& ests, const std::vector<Query>& queries,
    std::vector<double>* out) {
  NARU_CHECK(ests.size() == queries.size());
  out->assign(queries.size(), 0.0);

  // Group query indices by estimator (queries against the same model share
  // sessions' weights, workspaces, and caches), then serve each group as
  // one batch.
  std::vector<NaruEstimator*> order;
  std::unordered_map<NaruEstimator*, std::vector<size_t>> groups;
  for (size_t i = 0; i < ests.size(); ++i) {
    auto& bucket = groups[ests[i]];
    if (bucket.empty()) order.push_back(ests[i]);
    bucket.push_back(i);
  }
  std::vector<Query> group_queries;
  std::vector<double> group_out;
  for (NaruEstimator* est : order) {
    const auto& idx = groups[est];
    group_queries.clear();
    group_queries.reserve(idx.size());
    for (size_t i : idx) group_queries.push_back(queries[i]);
    EstimateBatch(est, group_queries, &group_out);
    for (size_t k = 0; k < idx.size(); ++k) (*out)[idx[k]] = group_out[k];
  }
}

double InferenceEngine::EstimateOne(NaruEstimator* est, const Query& query,
                                    const std::string& memo_prefix,
                                    const std::string& query_key,
                                    size_t sampler_parallelism,
                                    ThreadPool* sampler_pool) {
  ConditionalModel* model = est->model();
  if (query.HasEmptyRegion()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.exact_shortcuts;
    return 0.0;
  }

  const bool use_cache = cfg_.enable_cache;
  std::string memo_key;
  if (use_cache) {
    memo_key.reserve(memo_prefix.size() + query_key.size());
    memo_key += memo_prefix;
    memo_key += query_key;
    std::lock_guard<std::mutex> lock(mu_);
    double cached;
    if (caches_[model].result_memo.Lookup(memo_key, &cached)) {
      ++stats_.memo_hits;
      return cached;
    }
    ++stats_.memo_misses;
  }

  double result;
  if (est->ShouldEnumerate(query)) {
    // Serialized per model (see EnumerationMutexFor); sampling queries
    // keep flowing meanwhile.
    {
      std::lock_guard<std::mutex> lock(EnumerationMutexFor(model));
      result = EnumerateSelectivity(model, query);
    }
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.enumerated;
  } else {
    // Route on the sampler's own path classification so the engine's fast
    // paths can never diverge from (and therefore always bit-match) the
    // sequential ProgressiveSampler::EstimateWithStdError.
    const ProgressiveSampler::Path path = est->sampler()->Classify(query);
    if (path == ProgressiveSampler::Path::kAllWildcard) {
      result = 1.0;  // every position wildcard: the walk would exit at once
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.exact_shortcuts;
    } else if (path == ProgressiveSampler::Path::kLeadingOnly) {
      // P̂(X_0 ∈ R_0) depends only on the masked region, so repeated
      // predicate prefixes skip the forward pass entirely.
      const std::string region_key =
          RegionKey(query.region(model->TableColumnOf(0)));
      bool hit = false;
      if (use_cache) {
        std::lock_guard<std::mutex> lock(mu_);
        auto& masses = caches_[model].leading_mass;
        if (masses.Lookup(region_key, &result)) {
          hit = true;
          ++stats_.marginal_hits;
          ++stats_.exact_shortcuts;
        } else {
          ++stats_.marginal_misses;
        }
      }
      if (!hit) {
        result = est->sampler()->LeadingOnlyMass(query);
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.exact_shortcuts;
        if (use_cache) {
          stats_.marginal_evictions += caches_[model].leading_mass.Insert(
              region_key, result, cfg_.cache_budget_bytes);
        }
      }
    } else {
      ProgressiveSampler::RunOptions options;
      options.parallelism = sampler_parallelism;
      options.thread_pool = sampler_pool;
      options.workspaces = &workspaces_;
      result = est->sampler()->EstimateWithOptions(query, nullptr, options);
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.sampled;
    }
  }

  if (use_cache) {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.memo_evictions += caches_[model].result_memo.Insert(
        memo_key, result, cfg_.cache_budget_bytes);
  }
  return result;
}

}  // namespace naru
