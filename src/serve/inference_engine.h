// Batched, thread-parallel serving for Naru estimators.
//
// The sequential path (NaruEstimator::EstimateSelectivity) answers one
// query at a time; this engine serves *batches*: queries against the same
// ConditionalModel share one SamplerWorkspace pool, exact-result caches,
// and a thread pool that either spreads whole queries across workers (large
// batches) or shards one query's sample paths (small batches). Everything
// the engine caches is exact and deterministic — empty regions, trailing-
// wildcard early exits, masked first-column marginal masses keyed on the
// masked region, and full-query memo entries — so for a fixed sampler seed
// a batched estimate is bit-identical to the sequential one, regardless of
// batch size, thread count, or cache eviction history.
//
// The native surface is typed (serve/request.h): EstimateBatch maps
// EstimateRequests — query + per-request sample budget, soft deadline,
// priority class, cache policy — to EstimateResults carrying the
// estimate, a Status (DEADLINE_EXCEEDED for shed requests), the Monte
// Carlo standard error when sampled, a provenance tag, and latency
// attribution. The legacy double-returning overloads are thin adapters
// over it and stay bit-identical for default options.
//
// Caches are size-aware LRU maps (serve/lru_cache.h) bounded by a byte
// budget per model; hit/miss/eviction counters and occupancy are exposed
// through EngineStats. For an asynchronous Submit()-based surface on top
// of this engine, see serve/async_engine.h.
#pragma once

#include <array>
#include <chrono>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/naru_estimator.h"
#include "core/sampler.h"
#include "plan/sampling_plan.h"
#include "serve/lru_cache.h"
#include "serve/request.h"
#include "util/latency_histogram.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace naru {

struct InferenceEngineConfig {
  /// Compute threads: 0 = share the process-global pool, 1 = strictly
  /// serial on the calling thread, n > 1 = a dedicated pool of n workers.
  /// Only binding for models with SupportsConcurrentSampling(): other
  /// models fall back to their kernels' internal parallelism, which runs
  /// on the process-global pool regardless of this setting (it is the
  /// only parallelism they have).
  size_t num_threads = 0;
  /// Cache exact results (memo + first-column marginal masses). Hits can
  /// never change an estimate, only skip redundant forward passes. A
  /// request's CachePolicy can only further RESTRICT caching (read-only /
  /// bypass), never enable it past this switch.
  bool enable_cache = true;
  /// Per-model byte budget for EACH exact-result cache (the memo and the
  /// marginal-mass map are budgeted independently). Entries are charged
  /// key bytes + LruResultCache::kEntryOverheadBytes; once a budget is
  /// exceeded the least-recently-used entries are evicted. Eviction can
  /// never change an estimate — a re-asked query recomputes to the
  /// bit-identical value through the deterministic sampler.
  size_t cache_budget_bytes = 4 * 1024 * 1024;
  /// Compile each batch's sampled queries into a SamplingPlan (src/plan):
  /// queries compiled into prefix-forking plan trees, one walk per shared
  /// segment per shard, per-column model evaluations fused into stacked
  /// GEMMs across the tree's frontier. Only taken for models whose
  /// sessions support stacked evaluation (MADE, the transformer, and
  /// wrappers); estimates are bit-identical either way, so this is purely
  /// an execution strategy switch (kept as a flag for A/B benchmarking).
  bool enable_plan = true;
  /// Plan tree shape (plan/sampling_plan.h): hierarchical prefix-forking
  /// tries with constrained-prefix sharing (default), or the flat PR 3
  /// single-level leading-wildcard grouping (the legacy/flat/tree
  /// ablation in bench_serving_throughput). Execution strategy only —
  /// estimates are bit-identical in either mode, which is why memo keys
  /// do NOT include it (a result cached under one mode is exactly the
  /// other mode's answer).
  PlanMode plan_mode = PlanMode::kTree;
  /// Fork fan-out cap per plan tree: 0 = auto-tuned per batch from the
  /// model's StackedWidthHint, its active inference kernel, and the
  /// sampler's shard size (AutoGroupWidth, plan/sampling_plan.h); a
  /// nonzero N pins the cap (`--group-width auto|N` in the serving
  /// benches). Execution-only, like plan_mode: never part of memo keys.
  size_t group_width = 0;
};

/// Per-priority-class latency percentiles (snapshot computed by stats()
/// from fixed-memory log-bucketed histograms — see util/latency_histogram.h
/// for the ~19% resolution caveat; counts and maxima are exact). Queue
/// fields are dispatcher-side and filled only through AsyncEngine::stats()
/// (the blocking engine has no queue); compute fields cover every result
/// the engine delivered for the class, duplicates included.
struct ClassLatencyStats {
  size_t results = 0;          ///< results delivered in this class
  double compute_p50_ms = 0.0;
  double compute_p99_ms = 0.0;
  double compute_max_ms = 0.0;
  size_t queued = 0;           ///< async deliveries with a measured queue time
  double queue_p50_ms = 0.0;
  double queue_p99_ms = 0.0;
  double queue_max_ms = 0.0;
};

/// Serving counters and cache introspection. Counters are cumulative
/// since construction / ClearCaches(); occupancy fields are a snapshot
/// taken by stats(). ClearCachesFor() drops the erased model's occupancy
/// and eviction history from subsequent snapshots but leaves the
/// cumulative request counters untouched.
struct EngineStats {
  size_t queries = 0;            ///< requests accepted by EstimateBatch
  size_t memo_hits = 0;          ///< full-query cache hits
  size_t memo_misses = 0;        ///< full-query lookups that missed
  size_t marginal_hits = 0;      ///< first-column marginal-mass cache hits
  size_t marginal_misses = 0;    ///< marginal-mass lookups that missed
  size_t exact_shortcuts = 0;    ///< empty / all-wildcard / leading-only
  size_t enumerated = 0;         ///< answered by exact enumeration
  size_t sampled = 0;            ///< full progressive-sampling walks

  size_t memo_evictions = 0;     ///< LRU evictions from the memo caches
  size_t marginal_evictions = 0; ///< LRU evictions from the marginal caches
  size_t memo_entries = 0;       ///< live memo entries across all models
  size_t memo_bytes = 0;         ///< charged memo bytes across all models
  size_t marginal_entries = 0;   ///< live marginal entries across models
  size_t marginal_bytes = 0;     ///< charged marginal bytes across models

  size_t planned_queries = 0;    ///< sampled walks served through plans
  size_t plan_batches = 0;       ///< batches that compiled a sampling plan
  size_t plan_trees = 0;         ///< plan trees compiled (GEMM-fusion units)
  size_t plan_shared_cols = 0;   ///< per-shard column walks saved by sharing
  size_t plan_walk_cols = 0;     ///< column walks the sequential path runs
  /// Column walks the flat PR 3 single-level wildcard grouping would have
  /// saved on the same batches (the compiler computes both);
  /// plan_shared_cols - plan_flat_shared_cols is what multi-depth forking
  /// and constrained-prefix sharing added on top.
  size_t plan_flat_shared_cols = 0;
  /// Deepest fork nesting over all compiled trees (0 = no forks: every
  /// tree was a single chain; 1 = the flat one-fork shape).
  size_t plan_max_depth = 0;
  /// Widest single fork (children at one node) over all compiled trees.
  size_t plan_max_fanout = 0;
  size_t workspaces_created = 0; ///< sampler workspaces ever created (churn)

  /// Requests shed with DEADLINE_EXCEEDED: their deadline had already
  /// passed when the engine dispatched them, so they cost no model
  /// evaluation (the compute-vs-provenance counters above never see
  /// them).
  size_t shed_deadline = 0;
  /// Computations abandoned BETWEEN column steps because every request
  /// sharing the walk had expired mid-walk; each abandoned computation's
  /// requests resolve with DEADLINE_EXCEEDED. Counts computations, not
  /// requests (coalesced duplicates share one abandonment).
  size_t shed_midwalk = 0;
  /// Requests shed with RESOURCE_EXHAUSTED by admission control: the
  /// async pending queue was at AsyncEngineConfig::max_pending and this
  /// request was (or became) the oldest of the lowest pending priority
  /// class. Filled only through AsyncEngine::stats() — the blocking
  /// engine has no admission queue.
  size_t shed_admission = 0;
  /// Async-dispatcher flushes whose micro-batch was cut out of FIFO order
  /// because a higher priority class jumped a queue. Filled only through
  /// AsyncEngine::stats() — the blocking engine has no queue to reorder.
  size_t priority_flushes = 0;
  /// Subset of shed_admission whose victim's deadline had ALREADY expired
  /// while it waited in the pending queues: admission control prefers
  /// evicting such doomed requests (the dispatcher would shed them anyway)
  /// over the oldest-lowest-class one. Filled only through
  /// AsyncEngine::stats().
  size_t shed_expired_victims = 0;

  /// Per-priority-class latency percentiles (index = RequestPriority
  /// value: 0 low, 1 normal, 2 high). Compute fields are engine-side;
  /// queue fields are merged in by AsyncEngine::stats().
  std::array<ClassLatencyStats, 3> class_latency;

  /// Results DELIVERED per provenance (serve/request.h). Unlike the
  /// compute counters above (which count distinct computations),
  /// coalesced duplicates count here too — the columns answer "what did
  /// callers receive", not "what did the engine run".
  size_t results_cache_hit = 0;
  size_t results_exact = 0;
  size_t results_enumerated = 0;
  size_t results_sampled = 0;
  size_t results_planned = 0;
  size_t results_shed = 0;

  /// Fraction of per-shard column walks the prefix sharing eliminated.
  double prefix_share_ratio() const {
    return plan_walk_cols == 0
               ? 0.0
               : static_cast<double>(plan_shared_cols) /
                     static_cast<double>(plan_walk_cols);
  }
};

/// Multi-line human-readable rendering of the counters (what `naru_cli
/// serve` prints on exit and on SIGINT).
std::string FormatEngineStats(const EngineStats& stats);

/// Pre-LRU name for the stats struct, kept as an alias for existing
/// callers.
using InferenceEngineStats = EngineStats;

/// The blocking batch-serving engine. Thread-safe with respect to its own
/// state; see EstimateBatch for the per-model concurrency contract.
class InferenceEngine {
 public:
  explicit InferenceEngine(InferenceEngineConfig config = {});
  ~InferenceEngine();

  InferenceEngine(const InferenceEngine&) = delete;
  InferenceEngine& operator=(const InferenceEngine&) = delete;

  /// Serves all requests against `est`, one EstimateResult per request in
  /// *out. Requests whose deadline has already passed at dispatch are
  /// shed with a DEADLINE_EXCEEDED status and cost no model evaluation;
  /// everything else resolves with status OK. Requests coalesce only when
  /// their canonical query bytes, effective sample budgets, AND cache
  /// policies all match (the representative's policy governs the cache
  /// interaction). Thread-safe with respect to the engine's own state; do not
  /// call concurrently for estimators sharing a model that does not
  /// support concurrent sampling.
  void EstimateBatch(NaruEstimator* est,
                     const std::vector<EstimateRequest>& requests,
                     std::vector<EstimateResult>* out);

  /// Legacy adapter: default-option requests, estimates only. Results are
  /// bit-identical to the typed surface with default EstimateOptions
  /// (and, transitively, to the sequential path).
  void EstimateBatch(NaruEstimator* est, const std::vector<Query>& queries,
                     std::vector<double>* out);

  /// Groups a mixed batch by estimator and serves each group batched:
  /// `ests` and `requests` are parallel arrays of equal length, and
  /// (*out)[i] is ests[i]'s result for requests[i].
  void EstimateMixedBatch(const std::vector<NaruEstimator*>& ests,
                          const std::vector<EstimateRequest>& requests,
                          std::vector<EstimateResult>* out);

  /// Legacy adapter over the typed mixed batch.
  void EstimateMixedBatch(const std::vector<NaruEstimator*>& ests,
                          const std::vector<Query>& queries,
                          std::vector<double>* out);

  /// Counters plus a point-in-time cache occupancy snapshot.
  EngineStats stats() const;

  /// Drops every cached entry and zeroes all counters.
  void ClearCaches();

  /// Drops all cached entries for one model. Call when a model the engine
  /// has served is destroyed or retrained while the engine lives — cache
  /// keys are model addresses, so a replacement model allocated at the
  /// same address would otherwise hit the old model's exact-result
  /// entries.
  void ClearCachesFor(const ConditionalModel* model);

  /// Effective worker count (1 when serial, pool width otherwise).
  size_t num_threads() const;

  const InferenceEngineConfig& config() const { return cfg_; }

  SamplerWorkspacePool* workspace_pool() { return &workspaces_; }

 private:
  struct ModelCache {
    /// Keys embed the estimator's sampling config in addition to the query
    /// regions: estimators wrapping the same model with different path
    /// counts/seeds must not share entries.
    LruResultCache result_memo;
    /// Keyed on the masked region only — marginal masses are exact and
    /// config-independent.
    LruResultCache leading_mass;
  };

  /// One query, mirroring NaruEstimator::EstimateSelectivity exactly:
  /// empty region, enumeration policy, trailing-wildcard exit, leading-only
  /// marginal, then the sharded sampler with `sampler_parallelism` on
  /// `sampler_pool` (nullptr = the sampler's configured pool).
  /// `memo_key` is the batch-hoisted full cache key (config prefix +
  /// canonical query bytes); `eff_samples` the request's effective sample
  /// budget; `deadline` the computation's mid-walk abandonment instant
  /// (the LATEST deadline over every request coalesced into it;
  /// time_point::max() = never abandon). Fills *result (estimate, status,
  /// std_error, provenance, samples_used, compute_ms — this call's own
  /// wall time, the per-request attribution the whole-batch stamp used to
  /// get wrong).
  void EstimateOne(NaruEstimator* est, const Query& query,
                   const std::string& memo_key, size_t eff_samples,
                   CachePolicy cache_policy,
                   std::chrono::steady_clock::time_point deadline,
                   size_t sampler_parallelism, ThreadPool* sampler_pool,
                   EstimateResult* result);

  /// Every routing step of EstimateOne short of the sampled walk: memo
  /// lookup, empty region, enumeration, trailing-wildcard exit,
  /// leading-only marginal. Returns true with *result filled when the
  /// query resolved; false when it needs a progressive-sampling walk.
  /// Shared by EstimateOne and the planned batch path so the routing
  /// policy cannot diverge between them. `deadline` is the computation's
  /// abandonment instant (max over coalesced duplicates): exact
  /// enumeration re-checks it between LogProbRows batches and resolves to
  /// a typed DEADLINE_EXCEEDED shed (counted in shed_midwalk, never
  /// memoized) once it passes.
  bool ResolveBeforeSampling(NaruEstimator* est, const Query& query,
                             const std::string& memo_key,
                             CachePolicy cache_policy,
                             std::chrono::steady_clock::time_point deadline,
                             EstimateResult* result);

  /// One unresolved sampled representative headed for the planned batch
  /// path: everything EstimatePlanned needs that EstimateBatch's keyed
  /// pass already derived.
  struct SampledRep {
    size_t index = 0;        ///< representative's index into the batch
    std::string memo_key;    ///< full cache key (config prefix + bytes)
    size_t budget = 0;       ///< effective per-request sample budget
    CachePolicy policy = CachePolicy::kReadWrite;
    /// Mid-walk abandonment instant: the LATEST deadline over every
    /// request coalesced into this computation (max() = never abandon).
    std::chrono::steady_clock::time_point deadline =
        std::chrono::steady_clock::time_point::max();
    /// Wall time this rep spent in the keyed/exact resolve pass — folded
    /// into its compute_ms on top of the fused segment's elapsed time.
    double resolve_ms = 0.0;
  };

  /// Serves the batch's unresolved sampled requests through a compiled
  /// SamplingPlan (prefix sharing + stacked GEMMs, grouping split by
  /// per-request budget); fills (*out)[rep.index] and memoizes each
  /// completed result. Reps whose plan tree was abandoned mid-walk (all
  /// sharers expired) resolve with DEADLINE_EXCEEDED and are never
  /// memoized. compute_ms per rep = its resolve_ms + the fused planned
  /// segment's elapsed time (group work is shared, so the segment is
  /// batch-attributed).
  void EstimatePlanned(NaruEstimator* est,
                       const std::vector<EstimateRequest>& requests,
                       const std::vector<SampledRep>& reps, ThreadPool* pool,
                       std::vector<EstimateResult>* out);

  /// nullptr when the engine is strictly serial.
  ThreadPool* pool() const;

  InferenceEngineConfig cfg_;
  std::unique_ptr<ThreadPool> own_pool_;
  SamplerWorkspacePool workspaces_;

  /// One lock for caches + stats: every per-request touch is a short
  /// map/counter update, and a single capability keeps the hit-count and
  /// occupancy columns of one stats() snapshot mutually consistent.
  mutable Mutex mu_;
  std::unordered_map<const ConditionalModel*, ModelCache> caches_
      NARU_GUARDED_BY(mu_);
  EngineStats stats_ NARU_GUARDED_BY(mu_);
  /// Per-priority-class compute_ms accumulation (index = RequestPriority
  /// value); stats() renders percentiles into EngineStats::class_latency.
  std::array<LatencyHistogram, 3> class_compute_ NARU_GUARDED_BY(mu_);
};

}  // namespace naru
