// Batched, thread-parallel serving for Naru estimators.
//
// The sequential path (NaruEstimator::EstimateSelectivity) answers one
// query at a time; this engine serves *batches*: queries against the same
// ConditionalModel share one SamplerWorkspace pool, exact-result caches,
// and a thread pool that either spreads whole queries across workers (large
// batches) or shards one query's sample paths (small batches). Everything
// the engine caches is exact and deterministic — empty regions, trailing-
// wildcard early exits, masked first-column marginal masses keyed on the
// masked region, and full-query memo entries — so for a fixed sampler seed
// a batched estimate is bit-identical to the sequential one, regardless of
// batch size, thread count, or cache eviction history.
//
// Caches are size-aware LRU maps (serve/lru_cache.h) bounded by a byte
// budget per model; hit/miss/eviction counters and occupancy are exposed
// through EngineStats. For an asynchronous Submit()-based surface on top
// of this engine, see serve/async_engine.h.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/naru_estimator.h"
#include "core/sampler.h"
#include "serve/lru_cache.h"
#include "util/thread_pool.h"

namespace naru {

struct InferenceEngineConfig {
  /// Compute threads: 0 = share the process-global pool, 1 = strictly
  /// serial on the calling thread, n > 1 = a dedicated pool of n workers.
  /// Only binding for models with SupportsConcurrentSampling(): other
  /// models fall back to their kernels' internal parallelism, which runs
  /// on the process-global pool regardless of this setting (it is the
  /// only parallelism they have).
  size_t num_threads = 0;
  /// Cache exact results (memo + first-column marginal masses). Hits can
  /// never change an estimate, only skip redundant forward passes.
  bool enable_cache = true;
  /// Per-model byte budget for EACH exact-result cache (the memo and the
  /// marginal-mass map are budgeted independently). Entries are charged
  /// key bytes + LruResultCache::kEntryOverheadBytes; once a budget is
  /// exceeded the least-recently-used entries are evicted. Eviction can
  /// never change an estimate — a re-asked query recomputes to the
  /// bit-identical value through the deterministic sampler.
  size_t cache_budget_bytes = 4 * 1024 * 1024;
  /// Compile each batch's sampled queries into a SamplingPlan (src/plan):
  /// queries grouped by shared leading-wildcard prefix, one walk per
  /// (shard, prefix group), per-column model evaluations fused into
  /// stacked GEMMs across the group. Only taken for models whose sessions
  /// support stacked evaluation (MADE and wrappers); estimates are
  /// bit-identical either way, so this is purely an execution strategy
  /// switch (kept as a flag for A/B benchmarking).
  bool enable_plan = true;
};

/// Serving counters and cache introspection. Counters are cumulative
/// since construction / ClearCaches(); occupancy fields are a snapshot
/// taken by stats(). ClearCachesFor() drops the erased model's occupancy
/// and eviction history from subsequent snapshots but leaves the
/// cumulative request counters untouched.
struct EngineStats {
  size_t queries = 0;            ///< requests accepted by EstimateBatch
  size_t memo_hits = 0;          ///< full-query cache hits
  size_t memo_misses = 0;        ///< full-query lookups that missed
  size_t marginal_hits = 0;      ///< first-column marginal-mass cache hits
  size_t marginal_misses = 0;    ///< marginal-mass lookups that missed
  size_t exact_shortcuts = 0;    ///< empty / all-wildcard / leading-only
  size_t enumerated = 0;         ///< answered by exact enumeration
  size_t sampled = 0;            ///< full progressive-sampling walks

  size_t memo_evictions = 0;     ///< LRU evictions from the memo caches
  size_t marginal_evictions = 0; ///< LRU evictions from the marginal caches
  size_t memo_entries = 0;       ///< live memo entries across all models
  size_t memo_bytes = 0;         ///< charged memo bytes across all models
  size_t marginal_entries = 0;   ///< live marginal entries across models
  size_t marginal_bytes = 0;     ///< charged marginal bytes across models

  size_t planned_queries = 0;    ///< sampled walks served through plans
  size_t plan_batches = 0;       ///< batches that compiled a sampling plan
  size_t plan_groups = 0;        ///< plan groups compiled (GEMM-fusion units)
  size_t plan_shared_cols = 0;   ///< per-shard column walks saved by sharing
  size_t plan_walk_cols = 0;     ///< column walks the sequential path runs
  size_t workspaces_created = 0; ///< sampler workspaces ever created (churn)

  /// Fraction of per-shard column walks the prefix sharing eliminated.
  double prefix_share_ratio() const {
    return plan_walk_cols == 0
               ? 0.0
               : static_cast<double>(plan_shared_cols) /
                     static_cast<double>(plan_walk_cols);
  }
};

/// Multi-line human-readable rendering of the counters (what `naru_cli
/// serve` prints on exit and on SIGINT).
std::string FormatEngineStats(const EngineStats& stats);

/// Pre-LRU name for the stats struct, kept as an alias for existing
/// callers.
using InferenceEngineStats = EngineStats;

/// The blocking batch-serving engine. Thread-safe with respect to its own
/// state; see EstimateBatch for the per-model concurrency contract.
class InferenceEngine {
 public:
  explicit InferenceEngine(InferenceEngineConfig config = {});
  ~InferenceEngine();

  InferenceEngine(const InferenceEngine&) = delete;
  InferenceEngine& operator=(const InferenceEngine&) = delete;

  /// Estimates all queries against `est`, one selectivity per query in
  /// *out. Thread-safe with respect to the engine's own state; do not call
  /// concurrently for estimators sharing a model that does not support
  /// concurrent sampling.
  void EstimateBatch(NaruEstimator* est, const std::vector<Query>& queries,
                     std::vector<double>* out);

  /// Groups a mixed batch by estimator and serves each group batched:
  /// `ests` and `queries` are parallel arrays of equal length, and
  /// (*out)[i] is ests[i]'s estimate for queries[i].
  void EstimateMixedBatch(const std::vector<NaruEstimator*>& ests,
                          const std::vector<Query>& queries,
                          std::vector<double>* out);

  /// Counters plus a point-in-time cache occupancy snapshot.
  EngineStats stats() const;

  /// Drops every cached entry and zeroes all counters.
  void ClearCaches();

  /// Drops all cached entries for one model. Call when a model the engine
  /// has served is destroyed or retrained while the engine lives — cache
  /// keys are model addresses, so a replacement model allocated at the
  /// same address would otherwise hit the old model's exact-result
  /// entries.
  void ClearCachesFor(const ConditionalModel* model);

  /// Effective worker count (1 when serial, pool width otherwise).
  size_t num_threads() const;

  const InferenceEngineConfig& config() const { return cfg_; }

  SamplerWorkspacePool* workspace_pool() { return &workspaces_; }

 private:
  struct ModelCache {
    /// Keys embed the estimator's sampling config in addition to the query
    /// regions: estimators wrapping the same model with different path
    /// counts/seeds must not share entries.
    LruResultCache result_memo;
    /// Keyed on the masked region only — marginal masses are exact and
    /// config-independent.
    LruResultCache leading_mass;
  };

  /// One query, mirroring NaruEstimator::EstimateSelectivity exactly:
  /// empty region, enumeration policy, trailing-wildcard exit, leading-only
  /// marginal, then the sharded sampler with `sampler_parallelism` on
  /// `sampler_pool` (nullptr = the sampler's configured pool).
  /// `memo_prefix` and `query_key` are the batch-hoisted key parts
  /// (see EstimateBatch): the memo key is their concatenation, computed
  /// here exactly once per distinct query.
  double EstimateOne(NaruEstimator* est, const Query& query,
                     const std::string& memo_prefix,
                     const std::string& query_key, size_t sampler_parallelism,
                     ThreadPool* sampler_pool);

  /// Every routing step of EstimateOne short of the sampled walk: memo
  /// lookup, empty region, enumeration, trailing-wildcard exit,
  /// leading-only marginal. Returns true with *result set when the query
  /// resolved; false when it needs a progressive-sampling walk, leaving
  /// its memo key in *memo_key for post-walk insertion. Shared by
  /// EstimateOne and the planned batch path so the routing policy cannot
  /// diverge between them.
  bool ResolveBeforeSampling(NaruEstimator* est, const Query& query,
                             const std::string& memo_prefix,
                             const std::string& query_key,
                             std::string* memo_key, double* result);

  /// Serves the batch's unresolved sampled queries through a compiled
  /// SamplingPlan (prefix sharing + stacked GEMMs); writes (*out)[rep]
  /// and memoizes each result. `reps`/`memo_keys` are parallel arrays.
  void EstimatePlanned(NaruEstimator* est, const std::vector<Query>& queries,
                       const std::vector<size_t>& reps,
                       const std::vector<std::string>& memo_keys,
                       ThreadPool* pool, std::vector<double>* out);

  /// nullptr when the engine is strictly serial.
  ThreadPool* pool() const;

  InferenceEngineConfig cfg_;
  std::unique_ptr<ThreadPool> own_pool_;
  SamplerWorkspacePool workspaces_;

  mutable std::mutex mu_;  // caches + stats
  std::unordered_map<const ConditionalModel*, ModelCache> caches_;
  EngineStats stats_;
};

}  // namespace naru
