// Batched, thread-parallel serving for Naru estimators.
//
// The sequential path (NaruEstimator::EstimateSelectivity) answers one
// query at a time; this engine serves *batches*: queries against the same
// ConditionalModel share one SamplerWorkspace pool, an exact-result cache,
// and a thread pool that either spreads whole queries across workers (large
// batches) or shards one query's sample paths (small batches). Everything
// the engine caches is exact and deterministic — empty regions, trailing-
// wildcard early exits, masked first-column marginal masses keyed on the
// masked region, and full-query memo entries — so for a fixed sampler seed
// a batched estimate is bit-identical to the sequential one, regardless of
// batch size or thread count.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/naru_estimator.h"
#include "core/sampler.h"
#include "util/thread_pool.h"

namespace naru {

struct InferenceEngineConfig {
  /// Compute threads: 0 = share the process-global pool, 1 = strictly
  /// serial on the calling thread, n > 1 = a dedicated pool of n workers.
  /// Only binding for models with SupportsConcurrentSampling(): other
  /// models fall back to their kernels' internal parallelism, which runs
  /// on the process-global pool regardless of this setting (it is the
  /// only parallelism they have).
  size_t num_threads = 0;
  /// Cache exact results (memo + first-column marginal masses). Hits can
  /// never change an estimate, only skip redundant forward passes.
  bool enable_cache = true;
  /// Per-model bound on cached entries (memo and marginal maps each);
  /// inserts stop at capacity.
  size_t cache_capacity = 8192;
};

/// Serving counters (cumulative since construction / ClearCaches).
struct InferenceEngineStats {
  size_t queries = 0;
  size_t memo_hits = 0;          ///< full-query cache hits
  size_t marginal_hits = 0;      ///< first-column marginal-mass cache hits
  size_t exact_shortcuts = 0;    ///< empty / all-wildcard / leading-only
  size_t enumerated = 0;
  size_t sampled = 0;            ///< full progressive-sampling walks
};

class InferenceEngine {
 public:
  explicit InferenceEngine(InferenceEngineConfig config = {});
  ~InferenceEngine();

  InferenceEngine(const InferenceEngine&) = delete;
  InferenceEngine& operator=(const InferenceEngine&) = delete;

  /// Estimates all queries against `est`, one selectivity per query in
  /// *out. Thread-safe with respect to the engine's own state; do not call
  /// concurrently for estimators sharing a model that does not support
  /// concurrent sampling.
  void EstimateBatch(NaruEstimator* est, const std::vector<Query>& queries,
                     std::vector<double>* out);

  /// Groups a mixed batch by estimator and serves each group batched:
  /// `ests` and `queries` are parallel arrays of equal length, and
  /// (*out)[i] is ests[i]'s estimate for queries[i].
  void EstimateMixedBatch(const std::vector<NaruEstimator*>& ests,
                          const std::vector<Query>& queries,
                          std::vector<double>* out);

  InferenceEngineStats stats() const;
  void ClearCaches();

  /// Drops all cached entries for one model. Call when a model the engine
  /// has served is destroyed or retrained while the engine lives — cache
  /// keys are model addresses, so a replacement model allocated at the
  /// same address would otherwise hit the old model's exact-result
  /// entries.
  void ClearCachesFor(const ConditionalModel* model);

  /// Effective worker count (1 when serial, pool width otherwise).
  size_t num_threads() const;

  SamplerWorkspacePool* workspace_pool() { return &workspaces_; }

 private:
  struct ModelCache {
    /// Keys embed the estimator's sampling config in addition to the query
    /// regions: estimators wrapping the same model with different path
    /// counts/seeds must not share entries.
    std::unordered_map<std::string, double> result_memo;
    /// Keyed on the masked region only — marginal masses are exact and
    /// config-independent.
    std::unordered_map<std::string, double> leading_mass;
  };

  /// One query, mirroring NaruEstimator::EstimateSelectivity exactly:
  /// empty region, enumeration policy, trailing-wildcard exit, leading-only
  /// marginal, then the sharded sampler with `sampler_parallelism` on
  /// `sampler_pool` (nullptr = the sampler's configured pool).
  double EstimateOne(NaruEstimator* est, const Query& query,
                     size_t sampler_parallelism, ThreadPool* sampler_pool);

  /// nullptr when the engine is strictly serial.
  ThreadPool* pool() const;

  InferenceEngineConfig cfg_;
  std::unique_ptr<ThreadPool> own_pool_;
  SamplerWorkspacePool workspaces_;

  mutable std::mutex mu_;  // caches + stats
  std::unordered_map<const ConditionalModel*, ModelCache> caches_;
  InferenceEngineStats stats_;
};

}  // namespace naru
