#include "serve/async_engine.h"

#include <algorithm>
#include <stdexcept>
#include <utility>
#include <vector>

#include "serve/query_key.h"
#include "util/string_util.h"

namespace naru {

namespace {

// In-flight keys pair the estimator's identity with everything that
// decides a computation's value, schedule, and cache interaction: the
// effective sample budget, the priority class, the cache policy, and the
// canonical query bytes. Only submissions agreeing on all of them may
// share a computation (a kBypass request must never ride a twin that may
// be served from cache).
std::string InflightKeyPrefix(const NaruEstimator* est,
                              const EstimateRequest& request) {
  return StrFormat("%p|%zu|%d|%d|", static_cast<const void*>(est),
                   request.options.EffectiveSamples(est->config().num_samples),
                   static_cast<int>(request.options.priority),
                   static_cast<int>(request.options.cache_policy));
}

}  // namespace

AsyncEngine::AsyncEngine(AsyncEngineConfig config)
    : cfg_(config), engine_(config.engine) {
  cfg_.max_batch_size = std::max<size_t>(cfg_.max_batch_size, 1);
  cfg_.max_wait_ms = std::max(cfg_.max_wait_ms, 0.0);
  dispatcher_ = std::thread([this] { DispatcherLoop(); });
}

AsyncEngine::~AsyncEngine() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  dispatcher_.join();
}

size_t AsyncEngine::TotalPendingLocked() const {
  size_t total = 0;
  for (const auto& q : pending_) total += q.size();
  return total;
}

std::future<EstimateResult> AsyncEngine::Submit(
    NaruEstimator* est, EstimateRequest request,
    std::function<void(const EstimateResult&)> on_complete) {
  // Serialize the canonical query bytes ONCE, here: they become both the
  // tail of the in-flight duplicate-sharing key and — riding inside
  // request.key — the engine's batch-pass key, which used to re-serialize
  // them per batch.
  if (request.key.empty()) AppendQueryKey(request.query, &request.key);
  // Deadline-carrying requests never share a computation: whether a
  // request is shed is decided by ITS deadline alone.
  const bool sharable = !request.options.has_deadline();
  std::string key;
  if (sharable) {
    key = InflightKeyPrefix(est, request);
    key += request.key;
  }
  std::future<EstimateResult> result;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.submitted;
    if (sharable) {
      auto it = inflight_.find(key);
      if (it != inflight_.end()) {
        // An identical twin is pending or mid-walk: join it. No queue
        // entry, no extra computation — the twin's delivery resolves this
        // future.
        std::promise<EstimateResult> promise;
        result = promise.get_future();
        it->second->promises.push_back(std::move(promise));
        it->second->callbacks.push_back(std::move(on_complete));
        it->second->arrivals.push_back(std::chrono::steady_clock::now());
        ++stats_.joined_duplicates;
        return result;
      }
    }
    const size_t pri = PriorityIndex(request.options.priority);
    Pending p{est,
              std::move(request),
              std::promise<EstimateResult>(),
              std::move(on_complete),
              std::chrono::steady_clock::now(),
              next_seq_++,
              std::move(key),
              std::make_shared<Joiners>()};
    result = p.promise.get_future();
    if (sharable) inflight_.emplace(p.inflight_key, p.joiners);
    outstanding_.insert(p.seq);
    pending_[pri].push_back(std::move(p));
  }
  cv_.notify_all();
  return result;
}

std::future<double> AsyncEngine::Submit(NaruEstimator* est, Query query,
                                        std::function<void(double)> on_complete) {
  // Adapter over the typed surface: unwrap the estimate, map a non-OK
  // Status to an exceptional future (the pre-typed contract), and keep
  // the callback-failure isolation — a throwing callback fails only THIS
  // submitter's future.
  auto promise = std::make_shared<std::promise<double>>();
  std::future<double> result = promise->get_future();
  Submit(est, EstimateRequest(std::move(query)),
         [promise, callback = std::move(on_complete)](const EstimateResult& r) {
           try {
             if (!r.status.ok()) {
               throw std::runtime_error(r.status.ToString());
             }
             if (callback) callback(r.estimate);
             promise->set_value(r.estimate);
           } catch (...) {
             try {
               promise->set_exception(std::current_exception());
             } catch (const std::future_error&) {
               // value already set before the callback threw
             }
           }
         });
  return result;
}

void AsyncEngine::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  // Wait until no primary submitted before this call is still
  // outstanding. Priority flushing dispatches primaries out of
  // submission order, so the condition is set-emptiness below the
  // watermark, not a completion count. It also covers every pre-Drain
  // joiner: a joiner delivers exactly when its (earlier-submitted, hence
  // below-watermark) primary does.
  const uint64_t watermark = next_seq_;
  ++drain_waiters_;
  cv_.notify_all();  // flush pending work now instead of at the deadline
  drain_cv_.wait(lock, [&] {
    return outstanding_.empty() || *outstanding_.begin() >= watermark;
  });
  --drain_waiters_;
}

AsyncEngineStats AsyncEngine::async_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

EngineStats AsyncEngine::stats() const {
  EngineStats snapshot = engine_.stats();
  std::lock_guard<std::mutex> lock(mu_);
  snapshot.priority_flushes = stats_.priority_flushes;
  return snapshot;
}

void AsyncEngine::DispatcherLoop() {
  const auto max_wait = std::chrono::duration_cast<
      std::chrono::steady_clock::duration>(
      std::chrono::duration<double, std::milli>(cfg_.max_wait_ms));

  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_.wait(lock, [&] { return stop_ || TotalPendingLocked() > 0; });
    if (TotalPendingLocked() == 0) return;  // stop_ and nothing left: done

    // Let the micro-batch accumulate until it is full, the oldest pending
    // submission (across ALL priority classes — a waiting low-priority
    // request still bounds the flush latency) hits its deadline, or
    // someone needs results now.
    const auto oldest_arrival = [&] {
      auto oldest = std::chrono::steady_clock::time_point::max();
      for (const auto& q : pending_) {
        if (!q.empty()) oldest = std::min(oldest, q.front().arrival);
      }
      return oldest;
    };
    auto deadline = oldest_arrival() + max_wait;
    while (!stop_ && drain_waiters_ == 0 &&
           TotalPendingLocked() < cfg_.max_batch_size &&
           std::chrono::steady_clock::now() < deadline) {
      cv_.wait_until(lock, deadline);
      deadline = oldest_arrival() + max_wait;
    }

    // Cut one micro-batch off the queues, HIGHEST priority class first
    // (FIFO within a class). Later submissions keep arriving and
    // accumulating while this batch runs — that overlap is the point.
    //
    // EXCEPT while draining (or stopping): then cut FIFO BY ARRIVAL
    // across classes, so a pre-Drain low-priority request cannot be
    // starved past the barrier by ongoing higher-priority traffic —
    // Drain's "bounded by work submitted before the call" guarantee
    // outranks priority order for its duration.
    const size_t total_pending = TotalPendingLocked();
    const size_t take = std::min(total_pending, cfg_.max_batch_size);
    const bool fifo_cut = stop_ || drain_waiters_ > 0;
    std::vector<Pending> batch;
    batch.reserve(take);
    auto max_selected_arrival = std::chrono::steady_clock::time_point::min();
    if (fifo_cut) {
      while (batch.size() < take) {
        size_t best = kNumPriorities;
        for (size_t pri = 0; pri < kNumPriorities; ++pri) {
          if (!pending_[pri].empty() &&
              (best == kNumPriorities ||
               pending_[pri].front().arrival < pending_[best].front().arrival)) {
            best = pri;
          }
        }
        batch.push_back(std::move(pending_[best].front()));
        pending_[best].pop_front();
      }
    } else {
      for (size_t pri = kNumPriorities; pri-- > 0 && batch.size() < take;) {
        auto& q = pending_[pri];
        while (!q.empty() && batch.size() < take) {
          max_selected_arrival =
              std::max(max_selected_arrival, q.front().arrival);
          batch.push_back(std::move(q.front()));
          q.pop_front();
        }
      }
    }
    ++stats_.batches;
    stats_.largest_batch = std::max(stats_.largest_batch, take);
    if (take >= cfg_.max_batch_size) {
      ++stats_.size_flushes;
    } else if (stop_ || drain_waiters_ > 0) {
      ++stats_.drain_flushes;
    } else {
      ++stats_.deadline_flushes;
    }
    // A flush reordered the queue iff some selected request arrived AFTER
    // a request it left behind — exactly when the cut differs from the
    // FIFO cut. Only possible when the batch could not take everything.
    if (take < total_pending &&
        oldest_arrival() < max_selected_arrival) {
      ++stats_.priority_flushes;
    }
    lock.unlock();

    const auto flush_time = std::chrono::steady_clock::now();
    std::vector<NaruEstimator*> ests;
    std::vector<EstimateRequest> requests;
    ests.reserve(take);
    requests.reserve(take);
    for (Pending& p : batch) {
      ests.push_back(p.est);
      requests.push_back(std::move(p.request));  // batch keeps promises only
    }
    std::vector<EstimateResult> out;
    std::exception_ptr batch_error;
    try {
      engine_.EstimateMixedBatch(ests, requests, &out);
    } catch (...) {
      // Estimation itself is noexcept in practice; this guards allocation
      // failure so waiters never hang.
      batch_error = std::current_exception();
    }
    if (batch_error != nullptr) {
      // Status end to end: an engine-side failure becomes a typed
      // Internal result on every request of the batch (the legacy double
      // adapter re-raises it as an exceptional future).
      out.assign(take, EstimateResult{});
      for (EstimateResult& r : out) {
        r.status = Status::Internal("batch estimation failed");
      }
    }
    for (size_t i = 0; i < take; ++i) {
      out[i].queue_ms = std::chrono::duration<double, std::milli>(
                            flush_time - batch[i].arrival)
                            .count();
    }

    // Unregister the batch's in-flight keys BEFORE delivering: a joiner
    // that slipped in while the batch was computing is captured here (its
    // promise is already in the Joiners list), and any duplicate arriving
    // after this point starts a fresh computation that will hit the
    // engine's memo.
    size_t delivered = take;
    lock.lock();
    for (const Pending& p : batch) {
      if (!p.inflight_key.empty()) inflight_.erase(p.inflight_key);
      delivered += p.joiners->promises.size();
    }
    lock.unlock();

    // Per-request delivery: each submitter's callback runs on the
    // dispatcher thread before ITS future becomes ready, and a throwing
    // callback fails only that submitter's future — never the primary's
    // or another joiner's.
    const auto deliver =
        [](std::promise<EstimateResult>* promise,
           const std::function<void(const EstimateResult&)>& callback,
           const EstimateResult& value) {
          try {
            if (callback) callback(value);
            promise->set_value(value);
          } catch (...) {
            try {
              promise->set_exception(std::current_exception());
            } catch (const std::future_error&) {
              // value already set before the callback threw
            }
          }
        };
    for (size_t i = 0; i < take; ++i) {
      Pending& p = batch[i];
      deliver(&p.promise, p.on_complete, out[i]);
      for (size_t j = 0; j < p.joiners->promises.size(); ++j) {
        // A joiner's queue time runs from its OWN submission to the
        // twin's dispatch (0 when it joined a batch already mid-walk).
        EstimateResult joined = out[i];
        joined.queue_ms = std::max(
            0.0, std::chrono::duration<double, std::milli>(
                     flush_time - p.joiners->arrivals[j])
                     .count());
        deliver(&p.joiners->promises[j], p.joiners->callbacks[j], joined);
      }
    }

    lock.lock();
    stats_.completed += delivered;
    for (const Pending& p : batch) outstanding_.erase(p.seq);
    drain_cv_.notify_all();  // a Drain watermark may have been reached
  }
}

}  // namespace naru
