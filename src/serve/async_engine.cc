#include "serve/async_engine.h"

#include <algorithm>
#include <utility>
#include <vector>

namespace naru {

AsyncEngine::AsyncEngine(AsyncEngineConfig config)
    : cfg_(config), engine_(config.engine) {
  cfg_.max_batch_size = std::max<size_t>(cfg_.max_batch_size, 1);
  cfg_.max_wait_ms = std::max(cfg_.max_wait_ms, 0.0);
  dispatcher_ = std::thread([this] { DispatcherLoop(); });
}

AsyncEngine::~AsyncEngine() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  dispatcher_.join();
}

std::future<double> AsyncEngine::Submit(
    NaruEstimator* est, Query query, std::function<void(double)> on_complete) {
  Pending p{est, std::move(query), std::promise<double>(),
            std::move(on_complete), std::chrono::steady_clock::now()};
  std::future<double> result = p.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    pending_.push_back(std::move(p));
    ++stats_.submitted;
  }
  cv_.notify_all();
  return result;
}

void AsyncEngine::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  // Wait on a submission watermark, not queue emptiness: micro-batches are
  // cut FIFO by one dispatcher, so `completed >= watermark` proves every
  // query submitted before this call is done — even while other threads
  // keep the queue non-empty with new work.
  const size_t watermark = stats_.submitted;
  ++drain_waiters_;
  cv_.notify_all();  // flush pending work now instead of at the deadline
  drain_cv_.wait(lock, [&] { return stats_.completed >= watermark; });
  --drain_waiters_;
}

AsyncEngineStats AsyncEngine::async_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void AsyncEngine::DispatcherLoop() {
  const auto max_wait = std::chrono::duration_cast<
      std::chrono::steady_clock::duration>(
      std::chrono::duration<double, std::milli>(cfg_.max_wait_ms));

  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_.wait(lock, [&] { return stop_ || !pending_.empty(); });
    if (pending_.empty()) return;  // stop_ and nothing left: done

    // Let the micro-batch accumulate until it is full, the oldest pending
    // submission hits its deadline, or someone needs results now.
    const auto deadline = pending_.front().arrival + max_wait;
    while (!stop_ && drain_waiters_ == 0 &&
           pending_.size() < cfg_.max_batch_size &&
           std::chrono::steady_clock::now() < deadline) {
      cv_.wait_until(lock, deadline);
    }

    // Cut one micro-batch off the queue. Later submissions keep arriving
    // and accumulating while this batch runs — that overlap is the point.
    const size_t take = std::min(pending_.size(), cfg_.max_batch_size);
    std::vector<Pending> batch;
    batch.reserve(take);
    for (size_t i = 0; i < take; ++i) {
      batch.push_back(std::move(pending_.front()));
      pending_.pop_front();
    }
    ++stats_.batches;
    stats_.largest_batch = std::max(stats_.largest_batch, take);
    if (take >= cfg_.max_batch_size) {
      ++stats_.size_flushes;
    } else if (stop_ || drain_waiters_ > 0) {
      ++stats_.drain_flushes;
    } else {
      ++stats_.deadline_flushes;
    }
    lock.unlock();

    std::vector<NaruEstimator*> ests;
    std::vector<Query> queries;
    ests.reserve(take);
    queries.reserve(take);
    for (Pending& p : batch) {
      ests.push_back(p.est);
      queries.push_back(std::move(p.query));  // batch only needs promises now
    }
    std::vector<double> out;
    try {
      engine_.EstimateMixedBatch(ests, queries, &out);
      for (size_t i = 0; i < take; ++i) {
        if (batch[i].on_complete) batch[i].on_complete(out[i]);
        batch[i].promise.set_value(out[i]);
      }
    } catch (...) {
      // Estimation itself is noexcept in practice; this guards allocation
      // failure and user on_complete callbacks so waiters never hang.
      const auto err = std::current_exception();
      for (size_t i = 0; i < take; ++i) {
        try {
          batch[i].promise.set_exception(err);
        } catch (const std::future_error&) {
          // value already set before the callback threw
        }
      }
    }

    lock.lock();
    stats_.completed += take;
    drain_cv_.notify_all();  // a Drain watermark may have been reached
  }
}

}  // namespace naru
