#include "serve/async_engine.h"

#include <algorithm>
#include <cstddef>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "serve/query_key.h"
#include "util/deadline.h"
#include "util/string_util.h"

namespace naru {

namespace {

// In-flight keys pair the estimator's identity with everything that
// decides a computation's value, schedule, and cache interaction: the
// effective sample budget, the priority class, the cache policy, and the
// canonical query bytes. Only submissions agreeing on all of them may
// share a computation (a kBypass request must never ride a twin that may
// be served from cache).
std::string InflightKeyPrefix(const NaruEstimator* est,
                              const EstimateRequest& request) {
  return StrFormat("%p|%zu|%d|%d|", static_cast<const void*>(est),
                   request.options.EffectiveSamples(est->config().num_samples),
                   static_cast<int>(request.options.priority),
                   static_cast<int>(request.options.cache_policy));
}

}  // namespace

AsyncEngine::AsyncEngine(AsyncEngineConfig config)
    : cfg_(config), engine_(config.engine) {
  cfg_.max_batch_size = std::max<size_t>(cfg_.max_batch_size, 1);
  cfg_.max_wait_ms = std::max(cfg_.max_wait_ms, 0.0);
  dispatcher_ = std::thread([this] { DispatcherLoop(); });
}

AsyncEngine::~AsyncEngine() {
  {
    MutexLock lock(&mu_);
    stop_ = true;
  }
  cv_.NotifyAll();
  dispatcher_.join();
}

size_t AsyncEngine::TotalPendingLocked() const {
  size_t total = 0;
  for (const auto& q : pending_) total += q.size();
  return total;
}

std::chrono::steady_clock::time_point AsyncEngine::OldestArrivalLocked()
    const {
  auto oldest = std::chrono::steady_clock::time_point::max();
  for (const auto& q : pending_) {
    if (!q.empty()) oldest = std::min(oldest, q.front().arrival);
  }
  return oldest;
}

bool AsyncEngine::DrainSatisfiedLocked(uint64_t watermark) const {
  return outstanding_.empty() || *outstanding_.begin() >= watermark;
}

namespace {

/// The typed result an admission-shed request resolves to. queue_ms is
/// filled by the caller (victims waited; rejected incomings did not).
EstimateResult AdmissionShedResult() {
  EstimateResult result;
  result.status =
      Status::ResourceExhausted("pending queue full: admission shed");
  result.provenance = ResultProvenance::kShed;
  return result;
}

/// The typed result for an admission victim whose deadline had already
/// expired while it waited. DEADLINE_EXCEEDED, not RESOURCE_EXHAUSTED:
/// the request was doomed regardless of queue pressure, and a retry hint
/// would be misleading — resubmitting an expired request is pointless.
EstimateResult ExpiredVictimResult() {
  EstimateResult result;
  result.status = Status::DeadlineExceeded(
      "deadline expired while pending; evicted at admission");
  result.provenance = ResultProvenance::kShed;
  return result;
}

/// Resolves ONE submitter: its callback runs before its future becomes
/// ready, and a throwing callback fails only this submitter's future —
/// never another joiner's or the primary's. The single definition for
/// every delivery site (dispatcher and admission shed), because the
/// double-set / exception-to-promise fallback is easy to get subtly
/// wrong in a second copy.
void DeliverResult(std::promise<EstimateResult>* promise,
                   const std::function<void(const EstimateResult&)>& callback,
                   const EstimateResult& value) {
  try {
    if (callback) callback(value);
    promise->set_value(value);
  } catch (...) {
    try {
      promise->set_exception(std::current_exception());
    } catch (const std::future_error&) {
      // value already set before the callback threw
    }
  }
}

}  // namespace

std::future<EstimateResult> AsyncEngine::Submit(
    NaruEstimator* est, EstimateRequest request,
    std::function<void(const EstimateResult&)> on_complete) {
  // Serialize the canonical query bytes ONCE, here: they become both the
  // tail of the in-flight duplicate-sharing key and — riding inside
  // request.key — the engine's batch-pass key, which used to re-serialize
  // them per batch.
  if (request.key.empty()) AppendQueryKey(request.query, &request.key);
  // Deadline-carrying requests never share a computation: whether a
  // request is shed is decided by ITS deadline alone.
  const bool sharable = !request.options.has_deadline();
  std::string key;
  if (sharable) {
    key = InflightKeyPrefix(est, request);
    key += request.key;
  }
  std::future<EstimateResult> result;
  // An admission victim evicted from the pending queues; its (and its
  // joiners') shed results are delivered OUTSIDE the lock.
  std::unique_ptr<Pending> victim;
  bool victim_evicted = false;
  // True when the victim was chosen because its own deadline had already
  // expired (satellite of the admission policy below): such victims get a
  // DEADLINE_EXCEEDED result instead of RESOURCE_EXHAUSTED.
  bool victim_expired = false;
  // Retry-after hint priced under the lock (pending depth × smoothed
  // per-request service time); attached to RESOURCE_EXHAUSTED results.
  double retry_ms = 0.0;
  {
    MutexLock lock(&mu_);
    ++stats_.submitted;
    if (sharable) {
      auto it = inflight_.find(key);
      if (it != inflight_.end()) {
        // An identical twin is pending or mid-walk: join it. No queue
        // entry, no extra computation — the twin's delivery resolves this
        // future. Joiners never trip admission control: they add no work.
        std::promise<EstimateResult> promise;
        result = promise.get_future();
        it->second->promises.push_back(std::move(promise));
        it->second->callbacks.push_back(std::move(on_complete));
        it->second->arrivals.push_back(std::chrono::steady_clock::now());
        ++stats_.joined_duplicates;
        return result;
      }
    }
    const size_t pri = PriorityIndex(request.options.priority);
    // Admission control: bounded pending queues shed the LOWEST class
    // first. With the queues full, find the lowest class holding pending
    // work; if the incoming request outranks it, that class's OLDEST
    // request is evicted (typed RESOURCE_EXHAUSTED) to admit the
    // incoming one — otherwise the incoming request is itself (tied-)
    // lowest and is rejected the same way. A higher class is therefore
    // never admission-shed while a lower class has pending work.
    if (cfg_.max_pending > 0 && TotalPendingLocked() >= cfg_.max_pending) {
      // Retry hint for whichever request ends up RESOURCE_EXHAUSTED:
      // current depth × smoothed per-request service time, floored so
      // the hint is always positive even before any batch has run.
      retry_ms = std::max(
          0.5, static_cast<double>(TotalPendingLocked()) * ewma_service_ms_);
      // Deadline-aware victim choice FIRST: a pending request whose
      // deadline has ALREADY expired is doomed — the dispatcher would
      // shed it at dispatch anyway — so evicting it admits the incoming
      // request at zero real cost, regardless of class order (evicting
      // an expired high-priority request to admit a low one is still
      // free). The scan only touches classes that hold deadline-carrying
      // requests, so the common all-deadline-free backlog pays nothing.
      const auto admit_now = std::chrono::steady_clock::now();
      size_t vic_class = kNumPriorities;
      size_t vic_idx = 0;
      for (size_t c = 0; c < kNumPriorities && vic_class == kNumPriorities;
           ++c) {
        if (pending_deadlines_[c] == 0) continue;
        const auto& q = pending_[c];
        for (size_t j = 0; j < q.size(); ++j) {
          const EstimateOptions& opt = q[j].request.options;
          if (opt.has_deadline() && DeadlineExpired(opt.deadline, admit_now)) {
            vic_class = c;
            vic_idx = j;
            break;
          }
        }
      }
      if (vic_class != kNumPriorities) {
        auto& q = pending_[vic_class];
        victim = std::make_unique<Pending>(std::move(q[vic_idx]));
        q.erase(q.begin() + static_cast<ptrdiff_t>(vic_idx));
        --pending_deadlines_[vic_class];  // expired victims carry deadlines
        victim_evicted = true;
        victim_expired = true;
        // Deadline-carrying requests are never sharable, so an expired
        // victim has no in-flight key and no joiners.
        outstanding_.erase(victim->seq);
        ++stats_.shed_admission;
        ++stats_.expired_victims;
        ++stats_.completed;
      } else {
        size_t lowest = 0;
        while (lowest < kNumPriorities && pending_[lowest].empty()) ++lowest;
        if (lowest < pri) {
          victim = std::make_unique<Pending>(
              std::move(pending_[lowest].front()));
          pending_[lowest].pop_front();
          if (victim->request.options.has_deadline()) {
            --pending_deadlines_[lowest];
          }
          victim_evicted = true;
          if (!victim->inflight_key.empty()) {
            inflight_.erase(victim->inflight_key);
          }
          outstanding_.erase(victim->seq);
          // Joiners riding the victim are shed with it: every one of them
          // receives (and is counted as) an admission-shed delivery.
          stats_.shed_admission += 1 + victim->joiners->promises.size();
          stats_.completed += 1 + victim->joiners->promises.size();
        } else {
          // Reject the incoming request: never enqueued, never sequenced —
          // resolve it right here (below, outside the lock).
          ++stats_.shed_admission;
          ++stats_.completed;
        }
      }
    }
    if (victim == nullptr && cfg_.max_pending > 0 &&
        TotalPendingLocked() >= cfg_.max_pending) {
      // The incoming request was the one shed. (Never default-construct
      // a Pending: EstimateRequest's default query is invalid.)
      victim = std::make_unique<Pending>(
          Pending{est,
                  std::move(request),
                  std::promise<EstimateResult>(),
                  std::move(on_complete),
                  std::chrono::steady_clock::now(),
                  /*seq=*/0,
                  std::string(),
                  std::make_shared<Joiners>()});
      result = victim->promise.get_future();
    } else {
      Pending p{est,
                std::move(request),
                std::promise<EstimateResult>(),
                std::move(on_complete),
                std::chrono::steady_clock::now(),
                next_seq_++,
                std::move(key),
                std::make_shared<Joiners>()};
      result = p.promise.get_future();
      if (sharable) inflight_.emplace(p.inflight_key, p.joiners);
      outstanding_.insert(p.seq);
      if (p.request.options.has_deadline()) ++pending_deadlines_[pri];
      pending_[pri].push_back(std::move(p));
      stats_.max_pending_seen =
          std::max(stats_.max_pending_seen, TotalPendingLocked());
    }
  }
  if (victim != nullptr) {
    // Deliver the shed result on this thread: a callback failure is
    // confined to the shed request's own future, as everywhere else.
    const auto now = std::chrono::steady_clock::now();
    const size_t shed_class = PriorityIndex(victim->request.options.priority);
    std::vector<double> shed_queue_ms;  // folded into class_queue_ below
    EstimateResult shed =
        victim_expired ? ExpiredVictimResult() : AdmissionShedResult();
    shed.retry_after_ms = victim_expired ? 0.0 : retry_ms;
    shed.queue_ms = std::max(
        0.0,
        std::chrono::duration<double, std::milli>(now - victim->arrival)
            .count());
    shed_queue_ms.push_back(shed.queue_ms);
    DeliverResult(&victim->promise, victim->on_complete, shed);
    for (size_t j = 0; j < victim->joiners->promises.size(); ++j) {
      EstimateResult joined = AdmissionShedResult();
      joined.retry_after_ms = retry_ms;
      joined.queue_ms = std::max(
          0.0, std::chrono::duration<double, std::milli>(
                   now - victim->joiners->arrivals[j])
                   .count());
      shed_queue_ms.push_back(joined.queue_ms);
      DeliverResult(&victim->joiners->promises[j],
                    victim->joiners->callbacks[j], joined);
    }
    {
      // Shed deliveries count toward the per-class queue-latency view
      // too: the caller waited that long for SOME answer. Joiners share
      // the victim's in-flight key, hence its priority class.
      MutexLock lock(&mu_);
      for (double q : shed_queue_ms) class_queue_[shed_class].Add(q);
    }
    if (victim_evicted) {
      // The eviction freed a seq below some Drain watermark, and the
      // incoming request was enqueued: wake both sides.
      drain_cv_.NotifyAll();
      cv_.NotifyAll();
    }
    return result;
  }
  cv_.NotifyAll();
  return result;
}

std::future<double> AsyncEngine::Submit(NaruEstimator* est, Query query,
                                        std::function<void(double)> on_complete) {
  // Adapter over the typed surface: unwrap the estimate, map a non-OK
  // Status to an exceptional future (the pre-typed contract), and keep
  // the callback-failure isolation — a throwing callback fails only THIS
  // submitter's future.
  auto promise = std::make_shared<std::promise<double>>();
  std::future<double> result = promise->get_future();
  Submit(est, EstimateRequest(std::move(query)),
         [promise, callback = std::move(on_complete)](const EstimateResult& r) {
           try {
             if (!r.status.ok()) {
               throw std::runtime_error(r.status.ToString());
             }
             if (callback) callback(r.estimate);
             promise->set_value(r.estimate);
           } catch (...) {
             try {
               promise->set_exception(std::current_exception());
             } catch (const std::future_error&) {
               // value already set before the callback threw
             }
           }
         });
  return result;
}

void AsyncEngine::Drain() {
  MutexLock lock(&mu_);
  // Wait until no primary submitted before this call is still
  // outstanding. Priority flushing dispatches primaries out of
  // submission order, so the condition is set-emptiness below the
  // watermark, not a completion count. It also covers every pre-Drain
  // joiner: a joiner delivers exactly when its (earlier-submitted, hence
  // below-watermark) primary does.
  const uint64_t watermark = next_seq_;
  ++drain_waiters_;
  cv_.NotifyAll();  // flush pending work now instead of at the deadline
  while (!DrainSatisfiedLocked(watermark)) drain_cv_.Wait(mu_);
  --drain_waiters_;
}

AsyncEngineStats AsyncEngine::async_stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

EngineStats AsyncEngine::stats() const {
  EngineStats snapshot = engine_.stats();
  MutexLock lock(&mu_);
  snapshot.priority_flushes = stats_.priority_flushes;
  snapshot.shed_admission = stats_.shed_admission;
  snapshot.shed_expired_victims = stats_.expired_victims;
  // Admission-shed callers received a shed result the blocking engine
  // never saw; fold them into the delivered-results column.
  snapshot.results_shed += stats_.shed_admission;
  // Overlay the queue-side percentiles: only the async layer sees queue
  // time (the blocking engine fills the compute side of class_latency).
  for (size_t c = 0; c < kNumPriorities; ++c) {
    ClassLatencyStats& cls = snapshot.class_latency[c];
    cls.queued = class_queue_[c].count();
    cls.queue_p50_ms = class_queue_[c].Quantile(0.5);
    cls.queue_p99_ms = class_queue_[c].Quantile(0.99);
    cls.queue_max_ms = class_queue_[c].max_ms();
  }
  return snapshot;
}

void AsyncEngine::DispatcherLoop() {
  const auto max_wait = std::chrono::duration_cast<
      std::chrono::steady_clock::duration>(
      std::chrono::duration<double, std::milli>(cfg_.max_wait_ms));

  mu_.Lock();
  for (;;) {
    while (!stop_ && TotalPendingLocked() == 0) cv_.Wait(mu_);
    if (TotalPendingLocked() == 0) {  // stop_ and nothing left: done
      mu_.Unlock();
      return;
    }

    // Let the micro-batch accumulate until it is full, the oldest pending
    // submission (across ALL priority classes — a waiting low-priority
    // request still bounds the flush latency) hits its deadline, or
    // someone needs results now.
    auto deadline = OldestArrivalLocked() + max_wait;
    while (!stop_ && drain_waiters_ == 0 &&
           TotalPendingLocked() < cfg_.max_batch_size &&
           std::chrono::steady_clock::now() < deadline) {
      cv_.WaitUntil(mu_, deadline);
      deadline = OldestArrivalLocked() + max_wait;
    }

    // Cut one micro-batch off the queues, HIGHEST priority class first.
    // Within a class, deadline-carrying requests are cut first, TIGHTEST
    // deadline first (a near-deadline request must not be stranded
    // behind deadline-free traffic); deadline-free requests keep FIFO
    // among themselves. Later submissions keep arriving and accumulating
    // while this batch runs — that overlap is the point.
    //
    // EXCEPT while draining (or stopping): then cut FIFO BY ARRIVAL
    // across classes (ignoring deadlines too), so a pre-Drain
    // low-priority request cannot be starved past the barrier by ongoing
    // higher-priority or tighter-deadline traffic — Drain's "bounded by
    // work submitted before the call" guarantee outranks every
    // scheduling preference for its duration.
    const size_t total_pending = TotalPendingLocked();
    const size_t take = std::min(total_pending, cfg_.max_batch_size);
    const bool fifo_cut = stop_ || drain_waiters_ > 0;
    std::vector<Pending> batch;
    batch.reserve(take);
    // Per-class max arrival among selected requests (class-jump
    // detection below).
    std::array<std::chrono::steady_clock::time_point, kNumPriorities>
        selected_max_arrival;
    selected_max_arrival.fill(std::chrono::steady_clock::time_point::min());
    bool deadline_reorder = false;
    if (fifo_cut) {
      while (batch.size() < take) {
        size_t best = kNumPriorities;
        for (size_t pri = 0; pri < kNumPriorities; ++pri) {
          if (!pending_[pri].empty() &&
              (best == kNumPriorities ||
               pending_[pri].front().arrival < pending_[best].front().arrival)) {
            best = pri;
          }
        }
        if (pending_[best].front().request.options.has_deadline()) {
          --pending_deadlines_[best];
        }
        batch.push_back(std::move(pending_[best].front()));
        pending_[best].pop_front();
      }
    } else {
      for (size_t pri = kNumPriorities; pri-- > 0 && batch.size() < take;) {
        auto& q = pending_[pri];
        while (!q.empty() && batch.size() < take) {
          // Tightest deadline first; ties and the deadline-free
          // remainder resolve FIFO (index 0 = oldest). The scan only
          // runs while the class holds deadline-carrying requests — the
          // common all-deadline-free backlog stays O(1) per slot.
          size_t pick = 0;
          if (pending_deadlines_[pri] > 0) {
            auto best_deadline = EstimateOptions::kNoDeadline;
            for (size_t j = 0; j < q.size(); ++j) {
              const EstimateOptions& opt = q[j].request.options;
              if (opt.has_deadline() && opt.deadline < best_deadline) {
                best_deadline = opt.deadline;
                pick = j;
              }
            }
            --pending_deadlines_[pri];  // the pick carries a deadline
            if (pick != 0) deadline_reorder = true;
          }
          selected_max_arrival[pri] =
              std::max(selected_max_arrival[pri], q[pick].arrival);
          batch.push_back(std::move(q[pick]));
          q.erase(q.begin() + static_cast<ptrdiff_t>(pick));
        }
      }
    }
    ++stats_.batches;
    stats_.largest_batch = std::max(stats_.largest_batch, take);
    // Flush-reason attribution: a drain/stop flush is a drain flush even
    // when the queue happens to hold max_batch_size requests — the
    // results were demanded NOW, the size was incidental. (The reverse
    // ordering used to misattribute it as a size flush.)
    if (fifo_cut) {
      ++stats_.drain_flushes;
    } else if (take >= cfg_.max_batch_size) {
      ++stats_.size_flushes;
    } else {
      ++stats_.deadline_flushes;
    }
    if (deadline_reorder) ++stats_.deadline_reorders;
    // A priority flush = a CLASS jumped the queue: some selected request
    // arrived after a request left behind in a strictly lower class.
    // (Within-class deadline reordering is counted separately above and
    // must not masquerade as a class jump.)
    if (take < total_pending) {
      for (size_t pri = 1; pri < kNumPriorities && !fifo_cut; ++pri) {
        bool jumped = false;
        for (size_t lower = 0; lower < pri; ++lower) {
          if (!pending_[lower].empty() &&
              pending_[lower].front().arrival < selected_max_arrival[pri]) {
            jumped = true;
          }
        }
        if (jumped) {
          ++stats_.priority_flushes;
          break;
        }
      }
    }
    mu_.Unlock();

    const auto flush_time = std::chrono::steady_clock::now();
    std::vector<NaruEstimator*> ests;
    std::vector<EstimateRequest> requests;
    ests.reserve(take);
    requests.reserve(take);
    for (Pending& p : batch) {
      ests.push_back(p.est);
      requests.push_back(std::move(p.request));  // batch keeps promises only
    }
    std::vector<EstimateResult> out;
    std::exception_ptr batch_error;
    try {
      engine_.EstimateMixedBatch(ests, requests, &out);
    } catch (...) {
      // Estimation itself is noexcept in practice; this guards allocation
      // failure so waiters never hang.
      batch_error = std::current_exception();
    }
    if (batch_error != nullptr) {
      // Status end to end: an engine-side failure becomes a typed
      // Internal result on every request of the batch (the legacy double
      // adapter re-raises it as an exceptional future).
      out.assign(take, EstimateResult{});
      for (EstimateResult& r : out) {
        r.status = Status::Internal("batch estimation failed");
      }
    }
    // Smoothed per-request service time for the retry-after hint:
    // batch wall time amortized over its width.
    const double batch_ms = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - flush_time)
                                .count();
    for (size_t i = 0; i < take; ++i) {
      out[i].queue_ms = std::chrono::duration<double, std::milli>(
                            flush_time - batch[i].arrival)
                            .count();
    }

    // Unregister the batch's in-flight keys BEFORE delivering: a joiner
    // that slipped in while the batch was computing is captured here (its
    // promise is already in the Joiners list), and any duplicate arriving
    // after this point starts a fresh computation that will hit the
    // engine's memo.
    size_t delivered = take;
    mu_.Lock();
    for (const Pending& p : batch) {
      if (!p.inflight_key.empty()) inflight_.erase(p.inflight_key);
      delivered += p.joiners->promises.size();
    }
    mu_.Unlock();

    // Per-request delivery: each submitter's callback runs on the
    // dispatcher thread before ITS future becomes ready (DeliverResult).
    // (class, queue_ms) per delivered result, folded into class_queue_
    // under the lock below.
    std::vector<std::pair<size_t, double>> queue_samples;
    queue_samples.reserve(delivered);
    for (size_t i = 0; i < take; ++i) {
      Pending& p = batch[i];
      const size_t cls = PriorityIndex(requests[i].options.priority);
      queue_samples.emplace_back(cls, out[i].queue_ms);
      DeliverResult(&p.promise, p.on_complete, out[i]);
      for (size_t j = 0; j < p.joiners->promises.size(); ++j) {
        // A joiner's queue time runs from its OWN submission to the
        // twin's dispatch (0 when it joined a batch already mid-walk).
        EstimateResult joined = out[i];
        joined.queue_ms = std::max(
            0.0, std::chrono::duration<double, std::milli>(
                     flush_time - p.joiners->arrivals[j])
                     .count());
        queue_samples.emplace_back(cls, joined.queue_ms);
        DeliverResult(&p.joiners->promises[j], p.joiners->callbacks[j],
                      joined);
      }
    }

    mu_.Lock();
    stats_.completed += delivered;
    for (const Pending& p : batch) outstanding_.erase(p.seq);
    const double per_req = batch_ms / static_cast<double>(take);
    ewma_service_ms_ = ewma_service_ms_ == 0.0
                           ? per_req
                           : 0.8 * ewma_service_ms_ + 0.2 * per_req;
    for (const auto& s : queue_samples) class_queue_[s.first].Add(s.second);
    drain_cv_.NotifyAll();  // a Drain watermark may have been reached
  }
}

}  // namespace naru
