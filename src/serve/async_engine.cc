#include "serve/async_engine.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "serve/query_key.h"
#include "util/string_util.h"

namespace naru {

namespace {

// In-flight keys pair the estimator's identity with the canonical query
// bytes: only submissions against the same estimator (hence the same
// sampling config) may share a computation.
std::string InflightKey(const NaruEstimator* est, const Query& query) {
  std::string key =
      StrFormat("%p|", static_cast<const void*>(est));
  key += QueryKey(query);
  return key;
}

}  // namespace

AsyncEngine::AsyncEngine(AsyncEngineConfig config)
    : cfg_(config), engine_(config.engine) {
  cfg_.max_batch_size = std::max<size_t>(cfg_.max_batch_size, 1);
  cfg_.max_wait_ms = std::max(cfg_.max_wait_ms, 0.0);
  dispatcher_ = std::thread([this] { DispatcherLoop(); });
}

AsyncEngine::~AsyncEngine() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  dispatcher_.join();
}

std::future<double> AsyncEngine::Submit(
    NaruEstimator* est, Query query, std::function<void(double)> on_complete) {
  std::string key = InflightKey(est, query);
  std::future<double> result;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.submitted;
    auto it = inflight_.find(key);
    if (it != inflight_.end()) {
      // An identical twin is pending or mid-walk: join it. No queue entry,
      // no extra computation — the twin's delivery resolves this future.
      std::promise<double> promise;
      result = promise.get_future();
      it->second->promises.push_back(std::move(promise));
      it->second->callbacks.push_back(std::move(on_complete));  // may be empty
      ++stats_.joined_duplicates;
      return result;
    }
    Pending p{est,
              std::move(query),
              std::promise<double>(),
              std::move(on_complete),
              std::chrono::steady_clock::now(),
              std::move(key),
              std::make_shared<Joiners>()};
    result = p.promise.get_future();
    inflight_.emplace(p.key, p.joiners);
    pending_.push_back(std::move(p));
    ++primaries_submitted_;
  }
  cv_.notify_all();
  return result;
}

void AsyncEngine::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  // Wait on a PRIMARY watermark, not queue emptiness: micro-batches are
  // cut FIFO by one dispatcher, so `primaries_completed_ >= watermark`
  // proves every queue entry submitted before this call is done — even
  // while other threads keep the queue non-empty with new work. That also
  // covers every pre-Drain joiner: a joiner delivers exactly when its
  // (earlier-submitted, hence pre-watermark) primary does. The total
  // stats_.completed counter would NOT work here — joiner deliveries land
  // out of FIFO order and could reach a submission-count watermark while
  // later pre-Drain primaries are still queued.
  const size_t watermark = primaries_submitted_;
  ++drain_waiters_;
  cv_.notify_all();  // flush pending work now instead of at the deadline
  drain_cv_.wait(lock, [&] { return primaries_completed_ >= watermark; });
  --drain_waiters_;
}

AsyncEngineStats AsyncEngine::async_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void AsyncEngine::DispatcherLoop() {
  const auto max_wait = std::chrono::duration_cast<
      std::chrono::steady_clock::duration>(
      std::chrono::duration<double, std::milli>(cfg_.max_wait_ms));

  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_.wait(lock, [&] { return stop_ || !pending_.empty(); });
    if (pending_.empty()) return;  // stop_ and nothing left: done

    // Let the micro-batch accumulate until it is full, the oldest pending
    // submission hits its deadline, or someone needs results now.
    const auto deadline = pending_.front().arrival + max_wait;
    while (!stop_ && drain_waiters_ == 0 &&
           pending_.size() < cfg_.max_batch_size &&
           std::chrono::steady_clock::now() < deadline) {
      cv_.wait_until(lock, deadline);
    }

    // Cut one micro-batch off the queue. Later submissions keep arriving
    // and accumulating while this batch runs — that overlap is the point.
    const size_t take = std::min(pending_.size(), cfg_.max_batch_size);
    std::vector<Pending> batch;
    batch.reserve(take);
    for (size_t i = 0; i < take; ++i) {
      batch.push_back(std::move(pending_.front()));
      pending_.pop_front();
    }
    ++stats_.batches;
    stats_.largest_batch = std::max(stats_.largest_batch, take);
    if (take >= cfg_.max_batch_size) {
      ++stats_.size_flushes;
    } else if (stop_ || drain_waiters_ > 0) {
      ++stats_.drain_flushes;
    } else {
      ++stats_.deadline_flushes;
    }
    lock.unlock();

    std::vector<NaruEstimator*> ests;
    std::vector<Query> queries;
    ests.reserve(take);
    queries.reserve(take);
    for (Pending& p : batch) {
      ests.push_back(p.est);
      queries.push_back(std::move(p.query));  // batch only needs promises now
    }
    std::vector<double> out;
    std::exception_ptr batch_error;
    try {
      engine_.EstimateMixedBatch(ests, queries, &out);
    } catch (...) {
      // Estimation itself is noexcept in practice; this guards allocation
      // failure so waiters never hang.
      batch_error = std::current_exception();
    }

    // Unregister the batch's in-flight keys BEFORE delivering: a joiner
    // that slipped in while the batch was computing is captured here (its
    // promise is already in the Joiners list), and any duplicate arriving
    // after this point starts a fresh computation that will hit the
    // engine's memo.
    size_t delivered = take;
    lock.lock();
    for (const Pending& p : batch) {
      inflight_.erase(p.key);
      delivered += p.joiners->promises.size();
    }
    lock.unlock();

    if (batch_error == nullptr) {
      // Per-request delivery: each submitter's callback runs on the
      // dispatcher thread before ITS future becomes ready, and a throwing
      // callback fails only that submitter's future — never the primary's
      // or another joiner's.
      const auto deliver = [](std::promise<double>* promise,
                              const std::function<void(double)>& callback,
                              double value) {
        try {
          if (callback) callback(value);
          promise->set_value(value);
        } catch (...) {
          try {
            promise->set_exception(std::current_exception());
          } catch (const std::future_error&) {
            // value already set before the callback threw
          }
        }
      };
      for (size_t i = 0; i < take; ++i) {
        Pending& p = batch[i];
        deliver(&p.promise, p.on_complete, out[i]);
        for (size_t j = 0; j < p.joiners->promises.size(); ++j) {
          deliver(&p.joiners->promises[j], p.joiners->callbacks[j], out[i]);
        }
      }
    } else {
      for (size_t i = 0; i < take; ++i) {
        try {
          batch[i].promise.set_exception(batch_error);
        } catch (const std::future_error&) {
        }
        for (auto& joined : batch[i].joiners->promises) {
          try {
            joined.set_exception(batch_error);
          } catch (const std::future_error&) {
          }
        }
      }
    }

    lock.lock();
    stats_.completed += delivered;
    primaries_completed_ += take;
    drain_cv_.notify_all();  // a Drain watermark may have been reached
  }
}

}  // namespace naru
