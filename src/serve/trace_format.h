// Trace-line request format, shared by every serving front-end.
//
// A trace line is a predicate conjunction optionally prefixed (any order)
// by:
//   @<ms>    arrival timestamp, milliseconds since trace start — replay
//            front-ends sleep until this instant before submitting
//   ^high | ^normal | ^low
//            priority class for the micro-batch dispatcher
//   ~<ms>    soft deadline, milliseconds FROM SUBMISSION; an expired
//            request is shed with a typed DeadlineExceeded result
// e.g.  `@1250 ^high ~5 city=SF AND price<=100`
//
// One parser serves naru_cli's stdin serve loop, naru_cli --connect, and
// bench_serving_net, so a token means exactly the same thing in-process
// and over the wire: the network protocol carries the deadline as the
// same relative budget (net/protocol.h pins it to the server clock at
// decode, just as an in-process submit pins it to the local clock), and
// priorities cross as the same enum.
//
// FormatResultLine is the other half of the contract: every front-end
// prints one line per request in one format, including the retry_after_ms
// hint on admission-shed (ResourceExhausted) results.
#pragma once

#include <string>

#include "serve/request.h"

namespace naru {

/// Parsed per-request trace prefix. Fields keep their defaults when the
/// token is absent.
struct TracePrefix {
  double arrival_ms = -1.0;   ///< negative = no timestamp
  double deadline_ms = -1.0;  ///< negative = no deadline
  RequestPriority priority = RequestPriority::kNormal;

  /// Stamps priority and (when present) the relative deadline onto
  /// `options`, pinning the deadline to the local clock now — the
  /// in-process equivalent of what the server does at frame-decode time.
  void ApplyTo(EstimateOptions* options) const;
};

/// Strips the optional `@<ms>` / `^<class>` / `~<ms>` tokens (any order)
/// off the front of a trace line. `*rest` receives the predicate text.
/// Malformed tokens are left in place for the predicate parser to reject.
TracePrefix ParseTracePrefix(const std::string& line, std::string* rest);

/// The one-line-per-request result format every front-end prints
/// (trailing newline included):
///   <selectivity>\t<cardinality>\t<query text>
/// on success, and on failure
///   NA\tNA\t<query text>\t# <status>
/// with ` (retry in <N> ms)` appended when an admission-shed result
/// carries a positive retry_after_ms hint.
std::string FormatResultLine(const EstimateResult& result, double num_rows,
                             const std::string& text);

}  // namespace naru
