// Size-aware LRU map for the serving engine's exact-result caches.
//
// The InferenceEngine memoizes only exact values (full-query estimates,
// masked first-column marginal masses), so eviction is always safe: a
// dropped entry recomputes to the bit-identical value through the
// deterministic sampler. That lets the cache bound MEMORY, not
// correctness — entries are charged by their key bytes plus a fixed
// per-entry overhead, and the least-recently-used entries are evicted as
// soon as a byte budget is exceeded.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <string>
#include <string_view>
#include <unordered_map>

namespace naru {

/// An LRU-evicting map from canonical cache-key bytes to exact results,
/// charged by size in bytes rather than entry count.
///
/// Not internally synchronized: the serving engine guards each instance
/// with its cache mutex. Keys are stored once (the index is a
/// `string_view` into the entry's own storage).
class LruResultCache {
 public:
  /// Approximate fixed cost per entry beyond the key bytes: list node,
  /// hash-table slot and bookkeeping. Deliberately conservative so the
  /// configured budget bounds true memory from above, not below.
  static constexpr size_t kEntryOverheadBytes = 96;

  /// Bytes charged for an entry with this key.
  static size_t EntryBytes(std::string_view key) {
    return key.size() + kEntryOverheadBytes;
  }

  /// Looks `key` up; on a hit stores the value in *value, marks the entry
  /// most-recently-used, and returns true.
  bool Lookup(std::string_view key, double* value);

  /// Inserts (or refreshes) `key -> value` as the most-recently-used
  /// entry, then evicts least-recently-used entries until total charged
  /// bytes fit `budget_bytes`. Returns how many entries were evicted.
  /// A single entry larger than the whole budget is evicted immediately
  /// (the budget is honored unconditionally).
  size_t Insert(std::string_view key, double value, size_t budget_bytes);

  size_t entries() const { return map_.size(); }
  size_t bytes() const { return bytes_; }
  /// Cumulative evictions since construction / Clear().
  uint64_t evictions() const { return evictions_; }

  void Clear();

 private:
  struct Entry {
    std::string key;
    double value;
  };
  /// Front = most recently used. std::list keeps entries (and therefore
  /// the string_view keys of map_) stable across splices and erasures.
  std::list<Entry> order_;
  std::unordered_map<std::string_view, std::list<Entry>::iterator> map_;
  size_t bytes_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace naru
