// Asynchronous, streaming submission on top of the batch InferenceEngine.
//
// The blocking EstimateBatch surface forces a server to collect a whole
// batch before any sampling starts. AsyncEngine inverts that: callers
// Submit() single queries as they arrive and immediately get a
// std::future<double>; a background dispatcher thread coalesces pending
// submissions into adaptive micro-batches — flushed as soon as
// `max_batch_size` queries are pending OR the oldest pending query has
// waited `max_wait_ms` — and drives them through the shard-parallel
// InferenceEngine. Request arrival therefore overlaps with sampling: while
// one micro-batch is being estimated, the next one accumulates.
//
// Determinism contract: a query's estimate is independent of which
// micro-batch it lands in. EstimateBatch coalesces duplicates and serves
// every distinct query through the fixed-seed sharded sampler, and every
// cache entry is exact, so for a fixed seed Submit() returns a value
// bit-identical to the sequential NaruEstimator::EstimateSelectivity —
// regardless of arrival order, batching boundaries, thread count, or
// cache eviction history (asserted in tests/test_serving_async.cc).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>

#include "serve/inference_engine.h"

namespace naru {

struct AsyncEngineConfig {
  /// Flush a micro-batch as soon as this many submissions are pending
  /// (values below 1 are treated as 1). Larger batches amortize better;
  /// the deadline below bounds the latency cost of waiting for them.
  size_t max_batch_size = 64;
  /// Flush deadline: a pending query is dispatched at most this many
  /// milliseconds after its submission even if the batch is not full.
  /// 0 dispatches as soon as the dispatcher is free (lowest latency,
  /// least coalescing). Negative values are treated as 0.
  double max_wait_ms = 2.0;
  /// The wrapped blocking engine (threads, caching, cache budget).
  InferenceEngineConfig engine;
};

/// Dispatcher counters (cumulative since construction).
struct AsyncEngineStats {
  size_t submitted = 0;         ///< queries accepted by Submit
  size_t completed = 0;         ///< queries whose result has been delivered
  size_t batches = 0;           ///< micro-batches dispatched
  size_t size_flushes = 0;      ///< flushed because max_batch_size was hit
  size_t deadline_flushes = 0;  ///< flushed because max_wait_ms expired
  size_t drain_flushes = 0;     ///< flushed early by Drain() / destruction
  size_t largest_batch = 0;     ///< widest micro-batch dispatched
};

/// A streaming serving front-end over one InferenceEngine. Thread-safe:
/// any number of threads may Submit concurrently. Estimators passed to
/// Submit must outlive the delivery of their results.
class AsyncEngine {
 public:
  explicit AsyncEngine(AsyncEngineConfig config = {});
  /// Drains every pending submission, then joins the dispatcher.
  ~AsyncEngine();

  AsyncEngine(const AsyncEngine&) = delete;
  AsyncEngine& operator=(const AsyncEngine&) = delete;

  /// Enqueues one query and returns a future resolving to its selectivity
  /// (bit-identical to est->EstimateSelectivity(query) for a fixed seed).
  /// If `on_complete` is provided it is invoked with the result on the
  /// dispatcher thread, before the future becomes ready — keep it cheap
  /// (record a timestamp, bump a counter); heavy work there stalls every
  /// later micro-batch.
  std::future<double> Submit(NaruEstimator* est, Query query,
                             std::function<void(double)> on_complete = {});

  /// Blocks until every query submitted before this call has completed —
  /// and no longer: queries submitted concurrently with or after Drain
  /// are not waited for, so a drain cannot be starved by ongoing traffic.
  /// Pending work is flushed immediately (counted as drain_flushes)
  /// rather than waiting out max_wait_ms.
  void Drain();

  AsyncEngineStats async_stats() const;
  /// The wrapped engine's counters and cache occupancy.
  EngineStats stats() const { return engine_.stats(); }
  /// The wrapped blocking engine (e.g. for ClearCachesFor on retrain).
  InferenceEngine* engine() { return &engine_; }

 private:
  struct Pending {
    NaruEstimator* est;
    Query query;
    std::promise<double> promise;
    std::function<void(double)> on_complete;
    std::chrono::steady_clock::time_point arrival;
  };

  void DispatcherLoop();

  AsyncEngineConfig cfg_;
  InferenceEngine engine_;

  mutable std::mutex mu_;
  std::condition_variable cv_;        // wakes the dispatcher
  std::condition_variable drain_cv_;  // wakes Drain waiters
  std::deque<Pending> pending_;
  size_t drain_waiters_ = 0;    // active Drain calls: flush immediately
  bool stop_ = false;
  AsyncEngineStats stats_;

  std::thread dispatcher_;  // last member: joins before the rest dies
};

}  // namespace naru
