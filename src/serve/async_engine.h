// Asynchronous, streaming submission on top of the batch InferenceEngine.
//
// The blocking EstimateBatch surface forces a server to collect a whole
// batch before any sampling starts. AsyncEngine inverts that: callers
// Submit() single EstimateRequests as they arrive and immediately get a
// std::future<EstimateResult>; a background dispatcher thread coalesces
// pending submissions into adaptive micro-batches — flushed as soon as
// `max_batch_size` requests are pending OR the oldest pending request has
// waited `max_wait_ms` — and drives them through the shard-parallel
// InferenceEngine. Request arrival therefore overlaps with sampling: while
// one micro-batch is being estimated, the next one accumulates.
//
// Requests carry intent (serve/request.h): the dispatcher cuts each
// micro-batch HIGHEST PRIORITY CLASS FIRST instead of pure FIFO — and
// within a class, deadline-carrying requests first, tightest deadline
// first, with deadline-free requests keeping FIFO among themselves, so a
// near-deadline request is never stranded behind deadline-free traffic.
// Both preferences are STRICT: just as sustained higher-class traffic
// can starve a lower class, sustained deadline-carrying traffic at or
// above the service rate can starve deadline-free requests of the same
// class. Give latency-sensitive work a deadline (or a class) of its
// own; Drain() remains the FIFO escape hatch — it reverts the cut to
// arrival order for its duration, so a drain is never starved.
// A request whose soft deadline has expired by the time its batch
// dispatches is shed by the engine with a typed DEADLINE_EXCEEDED result
// instead of burning model evaluations on an answer nobody is waiting
// for; one that expires mid-walk is abandoned between column steps once
// every sharer has expired. Results carry the estimate, Status,
// std-error, provenance, and queue/compute latency attribution.
//
// Overload safety: with AsyncEngineConfig::max_pending set, the pending
// queues are BOUNDED. A Submit against full queues sheds the oldest
// request of the lowest pending priority class (or rejects the incoming
// request when it is itself lowest) with a typed RESOURCE_EXHAUSTED
// result — the open-loop saturation discipline: the low class degrades
// first, the queue depth and therefore worst-case queueing delay stay
// bounded, and nothing blocks.
//
// Determinism contract: a request's estimate is independent of which
// micro-batch it lands in. EstimateBatch coalesces duplicates and serves
// every distinct (query, budget) through the fixed-seed sharded sampler,
// and every cache entry is exact, so for a fixed seed Submit() returns a
// value bit-identical to the sequential
// NaruEstimator::EstimateSelectivity — regardless of arrival order,
// batching boundaries, priority interleaving, thread count, or cache
// eviction history (asserted in tests/test_serving_async.cc).
#pragma once

#include <array>
#include <chrono>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "serve/inference_engine.h"
#include "serve/request.h"
#include "util/latency_histogram.h"
#include "util/thread_annotations.h"

namespace naru {

struct AsyncEngineConfig {
  /// Flush a micro-batch as soon as this many submissions are pending
  /// (values below 1 are treated as 1). Larger batches amortize better;
  /// the deadline below bounds the latency cost of waiting for them.
  size_t max_batch_size = 64;
  /// Flush deadline: a pending request is dispatched at most this many
  /// milliseconds after the OLDEST pending request's submission even if
  /// the batch is not full. 0 dispatches as soon as the dispatcher is
  /// free (lowest latency, least coalescing). Negative values are
  /// treated as 0.
  double max_wait_ms = 2.0;
  /// Admission control: upper bound on requests pending in the
  /// dispatcher's queues (joiners of in-flight twins never count — they
  /// add no work). 0 (the default) = unbounded, the pre-admission
  /// behavior. When a Submit finds the queues full, the LOWEST priority
  /// class pays: if a class strictly below the incoming request's has
  /// pending work, its OLDEST request is shed (typed RESOURCE_EXHAUSTED,
  /// future resolved immediately) and the incoming request is admitted;
  /// otherwise the incoming request — itself (tied-)lowest — is rejected
  /// the same way. A higher class is therefore never admission-shed
  /// while a lower class has pending work. Counted in
  /// EngineStats::shed_admission.
  size_t max_pending = 0;
  /// The wrapped blocking engine (threads, caching, cache budget).
  InferenceEngineConfig engine;
};

/// Dispatcher counters (cumulative since construction).
struct AsyncEngineStats {
  size_t submitted = 0;         ///< requests accepted by Submit
  size_t completed = 0;         ///< requests whose result has been delivered
  size_t batches = 0;           ///< micro-batches dispatched
  size_t size_flushes = 0;      ///< flushed because max_batch_size was hit
  size_t deadline_flushes = 0;  ///< flushed because max_wait_ms expired
  size_t drain_flushes = 0;     ///< flushed early by Drain() / destruction
  size_t largest_batch = 0;     ///< widest micro-batch dispatched
  /// Submissions that joined an identical in-flight twin instead of
  /// enqueueing their own computation (see Submit).
  size_t joined_duplicates = 0;
  /// Micro-batches cut out of FIFO order because a higher priority class
  /// jumped the queue (also merged into EngineStats::priority_flushes by
  /// stats()).
  size_t priority_flushes = 0;
  /// Micro-batches whose within-class cut order was changed by deadlines:
  /// a deadline-carrying request was pulled ahead of an earlier-arrived
  /// request of its own class (see DispatcherLoop's tightest-deadline
  /// ordering).
  size_t deadline_reorders = 0;
  /// Requests shed by admission control (pending queues at max_pending):
  /// evicted victims (expired-deadline or oldest-lowest-class) and
  /// rejected-incoming requests. Merged into EngineStats::shed_admission /
  /// results_shed by stats().
  size_t shed_admission = 0;
  /// Subset of shed_admission: victims whose deadline had ALREADY expired
  /// while they waited. Admission control prefers these — the dispatcher
  /// would shed them at dispatch anyway, so evicting them costs nothing —
  /// over the oldest-lowest-class victim; they resolve with
  /// DEADLINE_EXCEEDED (not RESOURCE_EXHAUSTED: retrying is pointless).
  /// Merged into EngineStats::shed_expired_victims by stats().
  size_t expired_victims = 0;
  /// High-water mark of the pending-queue depth observed after any
  /// Submit. With max_pending > 0 this never exceeds it — the saturation
  /// smoke asserts exactly that.
  size_t max_pending_seen = 0;
};

/// A streaming serving front-end over one InferenceEngine. Thread-safe:
/// any number of threads may Submit concurrently. Estimators passed to
/// Submit must outlive the delivery of their results.
class AsyncEngine {
 public:
  explicit AsyncEngine(AsyncEngineConfig config = {});
  /// Drains every pending submission, then joins the dispatcher.
  ~AsyncEngine();

  AsyncEngine(const AsyncEngine&) = delete;
  AsyncEngine& operator=(const AsyncEngine&) = delete;

  /// Enqueues one typed request and returns a future resolving to its
  /// EstimateResult. For default options the estimate is bit-identical to
  /// est->EstimateSelectivity(request.query) for a fixed seed; a request
  /// whose deadline expires before dispatch resolves (never blocks) with
  /// status DEADLINE_EXCEEDED, and one that overflows a bounded pending
  /// queue (see AsyncEngineConfig::max_pending) with RESOURCE_EXHAUSTED.
  /// If `on_complete` is provided it is invoked with the result on the
  /// dispatcher thread, before the future becomes ready — keep it cheap
  /// (record a timestamp, bump a counter); heavy work there stalls every
  /// later micro-batch. (Admission-shed results are the one exception:
  /// they are delivered on the thread that triggered the shed — the
  /// victim's or the rejected request's submitter.)
  ///
  /// The request's priority class decides which micro-batch it lands in
  /// (higher classes are flushed first); its canonical query bytes are
  /// serialized HERE, once, and ride inside request.key down through the
  /// engine's keyed batch pass.
  ///
  /// In-flight duplicate sharing: a deadline-free request submitted while
  /// an identical one (same estimator, same effective sample budget, same
  /// priority class, same cache policy, identical regions by canonical key) is
  /// still pending or mid-walk JOINS the twin's computation instead of
  /// enqueueing its own — its future resolves, and its on_complete fires,
  /// when the twin's result is delivered. Exact for the same reason batch
  /// coalescing is: identical requests have identical deterministic
  /// answers. Requests carrying a deadline neither join nor accept
  /// joiners (shedding is per-request; sharing a computation would let
  /// one request's deadline decide another's fate); counted in
  /// AsyncEngineStats::joined_duplicates.
  std::future<EstimateResult> Submit(
      NaruEstimator* est, EstimateRequest request,
      std::function<void(const EstimateResult&)> on_complete = {});

  /// Legacy adapter: default-option submission returning the bare
  /// selectivity. The future carries an exception when the typed surface
  /// would have carried a non-OK status (impossible for default options
  /// short of an engine-internal failure).
  std::future<double> Submit(NaruEstimator* est, Query query,
                             std::function<void(double)> on_complete = {});

  /// Blocks until every request submitted before this call has completed —
  /// and no longer: requests submitted concurrently with or after Drain
  /// are not waited for, so a drain cannot be starved by ongoing traffic.
  /// Pending work is flushed immediately (counted as drain_flushes)
  /// rather than waiting out max_wait_ms, and flushes revert to
  /// FIFO-by-arrival for the drain's duration so ongoing higher-priority
  /// submissions cannot starve a pre-Drain low-priority request past the
  /// barrier.
  void Drain();

  AsyncEngineStats async_stats() const;
  /// The wrapped engine's counters and cache occupancy, with the
  /// dispatcher-side fields merged in: priority_flushes, shed_admission
  /// (also folded into results_shed — an admission-shed caller received a
  /// shed result). The blocking engine has no queue to reorder or bound,
  /// so those fields are dispatcher-owned.
  EngineStats stats() const;
  /// The wrapped blocking engine (e.g. for ClearCachesFor on retrain).
  InferenceEngine* engine() { return &engine_; }

 private:
  /// Followers of one in-flight computation (duplicate submissions that
  /// joined it). The vectors are parallel — callbacks[i] (possibly empty)
  /// belongs to promises[i] — so a follower's callback failure can be
  /// confined to that follower's future. Mutated only under mu_ while the
  /// key is registered in `inflight_`; read lock-free by the dispatcher
  /// after it unregisters the key.
  struct Joiners {
    std::vector<std::promise<EstimateResult>> promises;
    std::vector<std::function<void(const EstimateResult&)>> callbacks;
    /// Per-joiner submission times: each joiner's delivered queue_ms is
    /// measured from ITS OWN arrival, not the primary's.
    std::vector<std::chrono::steady_clock::time_point> arrivals;
  };

  struct Pending {
    NaruEstimator* est;
    EstimateRequest request;
    std::promise<EstimateResult> promise;
    std::function<void(const EstimateResult&)> on_complete;
    std::chrono::steady_clock::time_point arrival;
    /// Submission sequence number (Drain bookkeeping; priority flushing
    /// delivers primaries out of order, so emptiness of the
    /// below-watermark outstanding set — not a completion count — is the
    /// drain condition).
    uint64_t seq = 0;
    /// Estimator identity + budget + priority + canonical query bytes;
    /// empty when the request is not registered for duplicate sharing
    /// (deadline-carrying requests).
    std::string inflight_key;
    std::shared_ptr<Joiners> joiners;
  };

  static constexpr size_t kNumPriorities = 3;
  static size_t PriorityIndex(RequestPriority priority) {
    return static_cast<size_t>(priority) < kNumPriorities
               ? static_cast<size_t>(priority)
               : static_cast<size_t>(RequestPriority::kNormal);
  }

  void DispatcherLoop() NARU_EXCLUDES(mu_);
  size_t TotalPendingLocked() const NARU_REQUIRES(mu_);
  /// Earliest arrival over every pending queue's front (time_point::max()
  /// when nothing is pending); the dispatcher's flush-deadline anchor.
  std::chrono::steady_clock::time_point OldestArrivalLocked() const
      NARU_REQUIRES(mu_);
  /// Drain's wait predicate: no primary sequenced before `watermark` is
  /// still outstanding.
  bool DrainSatisfiedLocked(uint64_t watermark) const NARU_REQUIRES(mu_);

  AsyncEngineConfig cfg_;
  InferenceEngine engine_;

  /// One lock for the whole dispatcher state below: queues, duplicate
  /// registry, drain bookkeeping and counters move together on every
  /// submit/cut/delivery, so a single capability is both sufficient and
  /// the only ordering-free choice.
  mutable Mutex mu_;
  CondVar cv_;        ///< wakes the dispatcher: work arrived, drain, stop
  CondVar drain_cv_;  ///< wakes Drain waiters: outstanding_ shrank
  /// One FIFO queue per priority class (index = RequestPriority value).
  /// Micro-batches are cut highest class first; within a class,
  /// deadline-carrying requests tightest-first, deadline-free FIFO.
  std::array<std::deque<Pending>, kNumPriorities> pending_
      NARU_GUARDED_BY(mu_);
  /// Pending deadline-CARRYING requests per class, maintained by every
  /// enqueue/cut/evict: the dispatcher's tightest-deadline pick only
  /// scans a queue when its count is nonzero, so the common all-
  /// deadline-free cut stays O(1) pop_front per slot under mu_.
  std::array<size_t, kNumPriorities> pending_deadlines_ NARU_GUARDED_BY(mu_){};
  /// Key -> joiner list of the computation currently pending or mid-walk
  /// for that key. Registered by Submit, unregistered by the dispatcher
  /// when the result is delivered (later duplicates then hit the engine's
  /// memo instead).
  std::unordered_map<std::string, std::shared_ptr<Joiners>> inflight_
      NARU_GUARDED_BY(mu_);
  size_t drain_waiters_ NARU_GUARDED_BY(mu_) = 0;  ///< active Drain calls
  bool stop_ NARU_GUARDED_BY(mu_) = false;
  AsyncEngineStats stats_ NARU_GUARDED_BY(mu_);
  /// Per-class queue-latency accumulation over every delivered result
  /// (admission sheds and joiners included — each waited its own time);
  /// stats() renders percentiles into EngineStats::class_latency.
  std::array<LatencyHistogram, kNumPriorities> class_queue_
      NARU_GUARDED_BY(mu_);
  /// Smoothed per-request service time across dispatched micro-batches
  /// (batch wall time / batch width, EWMA α=0.2); with the pending depth
  /// it prices the retry-after hint on admission-shed results.
  double ewma_service_ms_ NARU_GUARDED_BY(mu_) = 0.0;
  /// Drain bookkeeping: sequence numbers of primaries submitted but not
  /// yet delivered. Priority flushing dispatches primaries OUT of
  /// submission order, so Drain(watermark) waits until no outstanding
  /// sequence number is below its watermark — which also covers every
  /// pre-watermark joiner, since a joiner's primary is always submitted
  /// (hence sequenced) before the joiner.
  uint64_t next_seq_ NARU_GUARDED_BY(mu_) = 0;
  std::set<uint64_t> outstanding_ NARU_GUARDED_BY(mu_);

  std::thread dispatcher_;  // last member: joins before the rest dies
};

}  // namespace naru
