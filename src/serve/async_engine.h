// Asynchronous, streaming submission on top of the batch InferenceEngine.
//
// The blocking EstimateBatch surface forces a server to collect a whole
// batch before any sampling starts. AsyncEngine inverts that: callers
// Submit() single queries as they arrive and immediately get a
// std::future<double>; a background dispatcher thread coalesces pending
// submissions into adaptive micro-batches — flushed as soon as
// `max_batch_size` queries are pending OR the oldest pending query has
// waited `max_wait_ms` — and drives them through the shard-parallel
// InferenceEngine. Request arrival therefore overlaps with sampling: while
// one micro-batch is being estimated, the next one accumulates.
//
// Determinism contract: a query's estimate is independent of which
// micro-batch it lands in. EstimateBatch coalesces duplicates and serves
// every distinct query through the fixed-seed sharded sampler, and every
// cache entry is exact, so for a fixed seed Submit() returns a value
// bit-identical to the sequential NaruEstimator::EstimateSelectivity —
// regardless of arrival order, batching boundaries, thread count, or
// cache eviction history (asserted in tests/test_serving_async.cc).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "serve/inference_engine.h"

namespace naru {

struct AsyncEngineConfig {
  /// Flush a micro-batch as soon as this many submissions are pending
  /// (values below 1 are treated as 1). Larger batches amortize better;
  /// the deadline below bounds the latency cost of waiting for them.
  size_t max_batch_size = 64;
  /// Flush deadline: a pending query is dispatched at most this many
  /// milliseconds after its submission even if the batch is not full.
  /// 0 dispatches as soon as the dispatcher is free (lowest latency,
  /// least coalescing). Negative values are treated as 0.
  double max_wait_ms = 2.0;
  /// The wrapped blocking engine (threads, caching, cache budget).
  InferenceEngineConfig engine;
};

/// Dispatcher counters (cumulative since construction).
struct AsyncEngineStats {
  size_t submitted = 0;         ///< queries accepted by Submit
  size_t completed = 0;         ///< queries whose result has been delivered
  size_t batches = 0;           ///< micro-batches dispatched
  size_t size_flushes = 0;      ///< flushed because max_batch_size was hit
  size_t deadline_flushes = 0;  ///< flushed because max_wait_ms expired
  size_t drain_flushes = 0;     ///< flushed early by Drain() / destruction
  size_t largest_batch = 0;     ///< widest micro-batch dispatched
  /// Submissions that joined an identical in-flight twin instead of
  /// enqueueing their own computation (see Submit).
  size_t joined_duplicates = 0;
};

/// A streaming serving front-end over one InferenceEngine. Thread-safe:
/// any number of threads may Submit concurrently. Estimators passed to
/// Submit must outlive the delivery of their results.
class AsyncEngine {
 public:
  explicit AsyncEngine(AsyncEngineConfig config = {});
  /// Drains every pending submission, then joins the dispatcher.
  ~AsyncEngine();

  AsyncEngine(const AsyncEngine&) = delete;
  AsyncEngine& operator=(const AsyncEngine&) = delete;

  /// Enqueues one query and returns a future resolving to its selectivity
  /// (bit-identical to est->EstimateSelectivity(query) for a fixed seed).
  /// If `on_complete` is provided it is invoked with the result on the
  /// dispatcher thread, before the future becomes ready — keep it cheap
  /// (record a timestamp, bump a counter); heavy work there stalls every
  /// later micro-batch.
  ///
  /// In-flight duplicate sharing: a query submitted while an identical
  /// query (same estimator, literally identical regions by canonical key)
  /// is still pending or mid-walk JOINS the twin's computation instead of
  /// enqueueing its own — its future resolves, and its on_complete fires,
  /// when the twin's result is delivered. Exact for the same reason batch
  /// coalescing is: identical queries have identical deterministic
  /// answers. This closes the gap where duplicates landing in different
  /// micro-batches computed twice; counted in
  /// AsyncEngineStats::joined_duplicates.
  std::future<double> Submit(NaruEstimator* est, Query query,
                             std::function<void(double)> on_complete = {});

  /// Blocks until every query submitted before this call has completed —
  /// and no longer: queries submitted concurrently with or after Drain
  /// are not waited for, so a drain cannot be starved by ongoing traffic.
  /// Pending work is flushed immediately (counted as drain_flushes)
  /// rather than waiting out max_wait_ms.
  void Drain();

  AsyncEngineStats async_stats() const;
  /// The wrapped engine's counters and cache occupancy.
  EngineStats stats() const { return engine_.stats(); }
  /// The wrapped blocking engine (e.g. for ClearCachesFor on retrain).
  InferenceEngine* engine() { return &engine_; }

 private:
  /// Followers of one in-flight computation (duplicate submissions that
  /// joined it). The vectors are parallel — callbacks[i] (possibly empty)
  /// belongs to promises[i] — so a follower's callback failure can be
  /// confined to that follower's future. Mutated only under mu_ while the
  /// key is registered in `inflight_`; read lock-free by the dispatcher
  /// after it unregisters the key.
  struct Joiners {
    std::vector<std::promise<double>> promises;
    std::vector<std::function<void(double)>> callbacks;
  };

  struct Pending {
    NaruEstimator* est;
    Query query;
    std::promise<double> promise;
    std::function<void(double)> on_complete;
    std::chrono::steady_clock::time_point arrival;
    std::string key;  // estimator identity + canonical query bytes
    std::shared_ptr<Joiners> joiners;
  };

  void DispatcherLoop();

  AsyncEngineConfig cfg_;
  InferenceEngine engine_;

  mutable std::mutex mu_;
  std::condition_variable cv_;        // wakes the dispatcher
  std::condition_variable drain_cv_;  // wakes Drain waiters
  std::deque<Pending> pending_;
  /// Key -> joiner list of the computation currently pending or mid-walk
  /// for that key. Registered by Submit, unregistered by the dispatcher
  /// when the result is delivered (later duplicates then hit the engine's
  /// memo instead).
  std::unordered_map<std::string, std::shared_ptr<Joiners>> inflight_;
  size_t drain_waiters_ = 0;    // active Drain calls: flush immediately
  bool stop_ = false;
  AsyncEngineStats stats_;
  /// Drain bookkeeping in PRIMARY terms (queue entries, not joiners).
  /// Primaries are dispatched and delivered FIFO, so `primaries_completed_
  /// >= watermark` proves every pre-watermark primary is done — and with
  /// it every pre-watermark joiner, since a joiner's primary is always
  /// submitted before the joiner. stats_.completed (primaries + joiners)
  /// is NOT FIFO-ordered and must not be used as a drain watermark.
  size_t primaries_submitted_ = 0;
  size_t primaries_completed_ = 0;

  std::thread dispatcher_;  // last member: joins before the rest dies
};

}  // namespace naru
