// Typed serving requests and results.
//
// Every serving surface in src/serve traffics in these two value types
// instead of bare doubles: an EstimateRequest carries the query plus the
// caller's intent (per-request sample budget, soft deadline, priority
// class, cache policy), and an EstimateResult carries the estimate plus
// its provenance — how it was produced, how many sample paths it spent,
// the Monte Carlo standard error when it sampled, where its latency went,
// and a Status instead of an out-of-band error channel.
//
// Contract: a request with DEFAULT options is served bit-identically to
// the sequential NaruEstimator::EstimateSelectivity path (the repo-wide
// determinism invariant, see docs/ARCHITECTURE.md). Non-default options
// change WHAT is asked (sample budget) or WHETHER it is answered
// (deadline), never silently degrade an answer: a shed request returns a
// typed DEADLINE_EXCEEDED status, not a stale or approximate value.
#pragma once

#include <chrono>
#include <cstddef>
#include <limits>
#include <string>

#include "query/query.h"
#include "util/deadline.h"
#include "util/status.h"

namespace naru {

/// Dispatch priority class of a request. The async dispatcher flushes
/// pending work highest class first (FIFO within a class); the priority
/// never affects a value, only when it is computed. Under sustained
/// saturation lower classes can be starved — admission control is the
/// ROADMAP follow-up this enum gives an API to.
enum class RequestPriority : uint8_t {
  kLow = 0,
  kNormal = 1,  ///< the default
  kHigh = 2,
};

/// Per-request result-cache policy. Hits can never change an estimate
/// (the caches store only exact values), so this is a freshness /
/// footprint knob, not a correctness one.
enum class CachePolicy : uint8_t {
  /// Look up and store through the engine's exact-result caches (subject
  /// to the engine-level enable_cache switch). The default.
  kReadWrite = 0,
  /// Look up but never insert: serve hot entries without letting this
  /// request's (e.g. one-off, scan-like) key evict the working set.
  kReadOnly = 1,
  /// Neither look up nor insert: always recompute. The recomputed value
  /// is bit-identical to a cached one by the determinism contract.
  kBypass = 2,
};

/// How an EstimateResult was produced.
enum class ResultProvenance : uint8_t {
  kUnknown = 0,
  kCacheHit,      ///< full-query memo hit (exact)
  kExact,         ///< exact shortcut: empty / all-wildcard / leading-only
  kEnumerated,    ///< exact enumeration of a small region
  kSampled,       ///< per-query progressive-sampling walk
  kPlannedGroup,  ///< sampled through a compiled SamplingPlan group
  /// Not answered: deadline expired before dispatch, the walk was
  /// abandoned mid-column after every sharer expired, or admission
  /// control dropped the request from a full pending queue. `status`
  /// distinguishes the three (DEADLINE_EXCEEDED vs RESOURCE_EXHAUSTED).
  kShed,
};

/// Short lower-case name, e.g. "cache_hit" (stats rendering, CLI output).
const char* ResultProvenanceToString(ResultProvenance provenance);

/// Per-request serving options. The default-constructed value reproduces
/// the legacy double-returning surface exactly.
struct EstimateOptions {
  /// Progressive sample paths for THIS request; 0 inherits the
  /// estimator's configured num_samples. Part of the value contract: two
  /// requests for one query with different budgets are different
  /// computations (they never coalesce and never share memo entries).
  /// Exact paths (enumeration, empty/wildcard/leading-only shortcuts)
  /// ignore it.
  size_t num_samples = 0;

  /// Soft completion deadline. A request whose deadline has already
  /// passed when the engine dispatches it is SHED: it costs no model
  /// evaluation and resolves to a DEADLINE_EXCEEDED status (counted in
  /// EngineStats::shed_deadline). The deadline also propagates INTO the
  /// compute: the sampled walk re-checks it between column steps (never
  /// inside a kernel) and is abandoned — typed DEADLINE_EXCEEDED, counted
  /// in EngineStats::shed_midwalk — once every request sharing the
  /// computation has expired; exact enumeration re-checks it between
  /// LogProbRows batches the same way. The remaining exact shortcuts
  /// (empty / all-wildcard / leading-only) are single model-free steps and
  /// run to completion once started. kNoDeadline (the default) never
  /// sheds.
  std::chrono::steady_clock::time_point deadline = kNoDeadline;

  /// Flush class in the async dispatcher; see RequestPriority.
  RequestPriority priority = RequestPriority::kNormal;

  /// Result-cache interaction; see CachePolicy.
  CachePolicy cache_policy = CachePolicy::kReadWrite;

  static constexpr std::chrono::steady_clock::time_point kNoDeadline =
      std::chrono::steady_clock::time_point::max();

  /// Convenience: a deadline `ms` milliseconds from now.
  static std::chrono::steady_clock::time_point DeadlineInMs(double ms) {
    return std::chrono::steady_clock::now() +
           std::chrono::duration_cast<std::chrono::steady_clock::duration>(
               std::chrono::duration<double, std::milli>(ms));
  }

  bool has_deadline() const { return deadline != kNoDeadline; }

  /// The shared expiry predicate (util/deadline.h — one definition for
  /// every shed site, serve-layer and below): INCLUSIVE at the deadline
  /// instant — a request whose deadline equals the check time is already
  /// expired, matching the documented "expired by dispatch time".
  static bool Expired(std::chrono::steady_clock::time_point deadline,
                      std::chrono::steady_clock::time_point now) {
    return DeadlineExpired(deadline, now);
  }
  bool ExpiredAt(std::chrono::steady_clock::time_point now) const {
    return Expired(deadline, now);
  }

  /// THE resolution of the 0-means-inherit budget rule, shared by every
  /// layer that keys or computes on the effective sample count (async
  /// in-flight keys, engine memo/coalescing keys, the sequential typed
  /// path) — they must all agree or duplicate sharing could pair requests
  /// the memo keeps apart.
  size_t EffectiveSamples(size_t configured) const {
    return num_samples != 0 ? num_samples : configured;
  }
};

/// One serving request: a query plus options. Movable and copyable; the
/// serving layers take it by value and move it through their queues.
struct EstimateRequest {
  Query query;
  EstimateOptions options;

  /// Canonical query bytes (serve/query_key.h), filled by the first
  /// serving layer that needs them and reused by every layer below —
  /// AsyncEngine::Submit serializes them once for its in-flight
  /// duplicate-sharing key and the engine's keyed batch pass reuses them
  /// instead of serializing a second time. Leave empty when constructing
  /// a request by hand; a non-empty value MUST equal QueryKey(query).
  std::string key;

  EstimateRequest() : query(std::vector<ValueSet>{}) {}
  explicit EstimateRequest(Query q, EstimateOptions opts = {})
      : query(std::move(q)), options(opts) {}
};

/// One serving result. `status` is the source of truth: when it is not OK
/// (e.g. DEADLINE_EXCEEDED for a shed request) `estimate` is NaN and must
/// not be used.
struct EstimateResult {
  /// Selectivity in [0, 1] when status.ok(); NaN otherwise.
  double estimate = std::numeric_limits<double>::quiet_NaN();
  Status status;

  /// Monte Carlo standard error of the estimate when it was sampled
  /// (provenance kSampled / kPlannedGroup); 0 for exact answers. A
  /// ±2·std_error band is the usual ~95% confidence interval.
  double std_error = 0.0;

  ResultProvenance provenance = ResultProvenance::kUnknown;

  /// Sample paths this request spent (0 for exact / cached / shed
  /// answers). Echoes the effective per-request budget.
  size_t samples_used = 0;

  /// Milliseconds spent queued before dispatch (async surface; 0 on the
  /// blocking path). Queue + compute ≈ the latency the caller observed.
  double queue_ms = 0.0;
  /// Retry-after hint, milliseconds: on a RESOURCE_EXHAUSTED result the
  /// server's estimate of how long until the pending queues drain enough
  /// to admit a resubmission (pending depth × the dispatcher's smoothed
  /// per-request service time, floored so it is always positive on an
  /// admission shed). 0 = no hint (every other status, and shed paths
  /// where retrying is pointless — e.g. an expired-deadline victim).
  double retry_after_ms = 0.0;
  /// Milliseconds of compute attributed to THIS request, per phase: a
  /// request resolved in the keyed/exact pass (cache hit, shortcut,
  /// enumeration) is charged only its own resolution, and a sampled
  /// request its walk — on the planned route the fused group segment's
  /// elapsed time (shared work is batch-attributed), on the legacy route
  /// its own EstimateOne call. A cache hit therefore always reports less
  /// compute than a sampled walk; shed requests report the compute burned
  /// before abandonment (0 when shed pre-dispatch).
  double compute_ms = 0.0;

  bool ok() const { return status.ok(); }
};

}  // namespace naru
