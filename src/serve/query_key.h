// Exact byte-string cache keys for query regions.
//
// The serving engine memoizes exact results (full-query estimates, masked
// first-column marginal masses) in hash maps. Keys are canonical byte
// serializations of ValueSets, not hashes, so two queries share an entry
// only when their allowed regions are literally identical — a cache hit can
// never change an estimate.
#pragma once

#include <string>

#include "query/query.h"
#include "query/value_set.h"

namespace naru {

/// Appends a canonical encoding of `region` to *out. Intervals and
/// explicit sets that allow the same codes encode differently; that is
/// fine (a missed hit, never a wrong one).
void AppendRegionKey(const ValueSet& region, std::string* out);

/// Canonical key of one region.
std::string RegionKey(const ValueSet& region);

/// Appends the canonical key of a whole query (all per-column regions in
/// order) to *out — the allocation-free form the serving engine's keyed
/// batch pass uses to build composite cache keys in place.
void AppendQueryKey(const Query& query, std::string* out);

/// Canonical key of a whole query: all per-column regions in order.
std::string QueryKey(const Query& query);

}  // namespace naru
