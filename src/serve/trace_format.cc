#include "serve/trace_format.h"

#include <cstdlib>
#include <string_view>

#include "util/status.h"
#include "util/string_util.h"

namespace naru {

void TracePrefix::ApplyTo(EstimateOptions* options) const {
  options->priority = priority;
  if (deadline_ms >= 0) {
    options->deadline = EstimateOptions::DeadlineInMs(deadline_ms);
  }
}

TracePrefix ParseTracePrefix(const std::string& line, std::string* rest) {
  TracePrefix prefix;
  const char* p = line.c_str();
  for (;;) {
    while (*p == ' ' || *p == '\t') ++p;
    if (*p == '@' || *p == '~') {
      char* end = nullptr;
      const double ms = std::strtod(p + 1, &end);
      if (end == p + 1 || ms < 0) break;  // malformed: leave for the parser
      (*p == '@' ? prefix.arrival_ms : prefix.deadline_ms) = ms;
      p = end;
    } else if (*p == '^') {
      const std::string_view tail(p + 1);
      if (tail.rfind("high", 0) == 0) {
        prefix.priority = RequestPriority::kHigh;
        p += 5;
      } else if (tail.rfind("low", 0) == 0) {
        prefix.priority = RequestPriority::kLow;
        p += 4;
      } else if (tail.rfind("normal", 0) == 0) {
        prefix.priority = RequestPriority::kNormal;
        p += 7;
      } else {
        break;
      }
    } else {
      break;
    }
  }
  while (*p == ' ' || *p == '\t') ++p;
  *rest = p;
  return prefix;
}

std::string FormatResultLine(const EstimateResult& result, double num_rows,
                             const std::string& text) {
  if (result.ok()) {
    return StrFormat("%.6g\t%.0f\t%s\n", result.estimate,
                     result.estimate * num_rows, text.c_str());
  }
  std::string line = StrFormat("NA\tNA\t%s\t# %s", text.c_str(),
                               result.status.ToString().c_str());
  if (result.status.code() == StatusCode::kResourceExhausted &&
      result.retry_after_ms > 0) {
    line += StrFormat(" (retry in %.0f ms)", result.retry_after_ms);
  }
  line += '\n';
  return line;
}

}  // namespace naru
