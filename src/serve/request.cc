#include "serve/request.h"

namespace naru {

const char* ResultProvenanceToString(ResultProvenance provenance) {
  switch (provenance) {
    case ResultProvenance::kUnknown:
      return "unknown";
    case ResultProvenance::kCacheHit:
      return "cache_hit";
    case ResultProvenance::kExact:
      return "exact";
    case ResultProvenance::kEnumerated:
      return "enumerated";
    case ResultProvenance::kSampled:
      return "sampled";
    case ResultProvenance::kPlannedGroup:
      return "planned_group";
    case ResultProvenance::kShed:
      return "shed";
  }
  return "unknown";
}

}  // namespace naru
