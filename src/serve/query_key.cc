#include "serve/query_key.h"

#include <cstring>

namespace naru {

namespace {

template <typename T>
void AppendRaw(T v, std::string* out) {
  char buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  out->append(buf, sizeof(T));
}

}  // namespace

void AppendRegionKey(const ValueSet& region, std::string* out) {
  switch (region.kind()) {
    case ValueSet::Kind::kAll:
      out->push_back('A');
      break;
    case ValueSet::Kind::kInterval:
      out->push_back('I');
      AppendRaw<int64_t>(region.lo(), out);
      AppendRaw<int64_t>(region.hi(), out);
      break;
    case ValueSet::Kind::kSet:
      out->push_back('S');
      AppendRaw<uint64_t>(region.codes().size(), out);
      for (int32_t c : region.codes()) AppendRaw<int32_t>(c, out);
      break;
  }
}

std::string RegionKey(const ValueSet& region) {
  std::string key;
  AppendRegionKey(region, &key);
  return key;
}

void AppendQueryKey(const Query& query, std::string* out) {
  AppendRaw<uint64_t>(query.num_columns(), out);
  for (size_t c = 0; c < query.num_columns(); ++c) {
    AppendRegionKey(query.region(c), out);
  }
}

std::string QueryKey(const Query& query) {
  std::string key;
  AppendQueryKey(query, &key);
  return key;
}

}  // namespace naru
