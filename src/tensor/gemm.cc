#include "tensor/gemm.h"

#include "tensor/gemm_kernels.h"
#include "util/thread_pool.h"

namespace naru {

namespace {
// Minimum rows per task to avoid parallelization overhead on tiny batches.
constexpr size_t kMinRowsPerTask = 16;
}  // namespace

void GemmNN(const Matrix& a, const Matrix& b, Matrix* c, bool accumulate,
            KernelKind kernel, InputHint hint) {
  const size_t m = a.rows();
  const size_t k = a.cols();
  const size_t n = b.cols();
  NARU_CHECK(b.rows() == k);
  if (accumulate) {
    NARU_CHECK(c->rows() == m && c->cols() == n);
  } else {
    c->Resize(m, n);
    c->Zero();
  }
  if (kernel != KernelKind::kScalar) {
    // Same cols() means same stride (matrix.h), which the row kernels
    // require: they cover the padded width with no remainder handling.
    NARU_CHECK(c->stride() == b.stride());
    const bool onehot = hint == InputHint::kOneHot;
    ParallelFor(
        0, m,
        [&](size_t lo, size_t hi) {
          gemm_detail::NNRowsSimd(a.data(), a.stride(), b.data(), b.stride(),
                                  c->data(), c->stride(), lo, hi, k, onehot);
        },
        kMinRowsPerTask);
    return;
  }
  const bool onehot = hint == InputHint::kOneHot;
  ParallelFor(
      0, m,
      [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) {
          const float* arow = a.Row(i);
          float* crow = c->Row(i);
          // ikj ordering: inner loop is a vectorizable axpy over B's row.
          if (onehot) {
            // Sparse fast path: one-hot input rows are almost all zeros,
            // so testing A once per k skips whole axpy rows. Exact: the
            // skipped terms contribute +0.0f. Not worth it for dense
            // activations, where the branch only impedes vectorization.
            for (size_t kk = 0; kk < k; ++kk) {
              const float av = arow[kk];
              if (av == 0.0f) continue;
              const float* brow = b.Row(kk);
              for (size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
            }
          } else {
            for (size_t kk = 0; kk < k; ++kk) {
              const float av = arow[kk];
              const float* brow = b.Row(kk);
              for (size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
            }
          }
        }
      },
      kMinRowsPerTask);
}

void GemmNT(const Matrix& a, const Matrix& b, Matrix* c, bool accumulate,
            KernelKind kernel) {
  const size_t m = a.rows();
  const size_t k = a.cols();
  const size_t n = b.rows();
  NARU_CHECK(b.cols() == k);
  if (accumulate) {
    NARU_CHECK(c->rows() == m && c->cols() == n);
  } else {
    c->Resize(m, n);
    c->Zero();
  }
  if (kernel != KernelKind::kScalar) {
    // Shared reduction dim means shared stride; the dot products run over
    // the padded width (zero padding contributes zero).
    NARU_CHECK(a.stride() == b.stride());
    ParallelFor(
        0, m,
        [&](size_t lo, size_t hi) {
          gemm_detail::NTRowsSimd(a.data(), a.stride(), b.data(), b.stride(),
                                  c->data(), c->stride(), lo, hi, a.stride(),
                                  n);
        },
        kMinRowsPerTask);
    return;
  }
  ParallelFor(
      0, m,
      [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) {
          const float* arow = a.Row(i);
          float* crow = c->Row(i);
          for (size_t j = 0; j < n; ++j) {
            const float* brow = b.Row(j);
            float acc = 0.0f;
            for (size_t kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
            crow[j] += acc;
          }
        }
      },
      kMinRowsPerTask);
}

void GemmTN(const Matrix& a, const Matrix& b, Matrix* c, bool accumulate) {
  const size_t m = a.rows();
  const size_t k = a.cols();
  const size_t n = b.cols();
  NARU_CHECK(b.rows() == m);
  if (accumulate) {
    NARU_CHECK(c->rows() == k && c->cols() == n);
  } else {
    c->Resize(k, n);
    c->Zero();
  }
  // Parallelize over output rows (columns of A) to keep writes disjoint.
  // The zero-skip stays: this is the training-side X^T * dY, where X is
  // often the sparse one-hot encoding.
  ParallelFor(
      0, k,
      [&](size_t lo, size_t hi) {
        for (size_t i = 0; i < m; ++i) {
          const float* arow = a.Row(i);
          const float* brow = b.Row(i);
          for (size_t kk = lo; kk < hi; ++kk) {
            const float av = arow[kk];
            if (av == 0.0f) continue;
            float* crow = c->Row(kk);
            for (size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
          }
        }
      },
      8);
}

void AddBiasRows(const Matrix& bias, Matrix* c) {
  NARU_CHECK(bias.rows() == 1 && bias.cols() == c->cols());
  const float* b = bias.Row(0);
  const size_t n = c->cols();
  for (size_t i = 0; i < c->rows(); ++i) {
    float* crow = c->Row(i);
    for (size_t j = 0; j < n; ++j) crow[j] += b[j];
  }
}

void AccumulateBiasGrad(const Matrix& dy, Matrix* bias_grad) {
  NARU_CHECK(bias_grad->rows() == 1 && bias_grad->cols() == dy.cols());
  float* g = bias_grad->Row(0);
  const size_t n = dy.cols();
  for (size_t i = 0; i < dy.rows(); ++i) {
    const float* row = dy.Row(i);
    for (size_t j = 0; j < n; ++j) g[j] += row[j];
  }
}

}  // namespace naru
