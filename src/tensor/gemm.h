// Matrix-multiply kernels, thread-parallel over output rows.
//
// Three explicit variants cover every case the NN forward/backward passes
// need, avoiding a general (and slower) stride-parameterized kernel:
//   GemmNN:  C = A   * B      (forward:  X * W)
//   GemmNT:  C = A   * B^T    (backward: dY * W^T, and embedding-reuse logits)
//   GemmTN:  C = A^T * B      (backward: X^T * dY for weight gradients)
// All support optional accumulation into C (beta = 1).
#pragma once

#include "tensor/matrix.h"

namespace naru {

/// C(MxN) = A(MxK) * B(KxN) [+ C if accumulate].
void GemmNN(const Matrix& a, const Matrix& b, Matrix* c,
            bool accumulate = false);

/// C(MxN) = A(MxK) * B(NxK)^T [+ C if accumulate].
void GemmNT(const Matrix& a, const Matrix& b, Matrix* c,
            bool accumulate = false);

/// C(KxN) = A(MxK)^T * B(MxN) [+ C if accumulate].
void GemmTN(const Matrix& a, const Matrix& b, Matrix* c,
            bool accumulate = false);

/// Adds a length-N bias row to every row of C(MxN).
void AddBiasRows(const Matrix& bias, Matrix* c);

/// bias_grad(1xN) += column sums of dY(MxN).
void AccumulateBiasGrad(const Matrix& dy, Matrix* bias_grad);

}  // namespace naru
